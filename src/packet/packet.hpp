// Packet buffer and wire-format codec.
//
// Every in-band HMC transaction is a packet of 1..9 FLITs (16 bytes each).
// The first 64-bit word of the packet is the *header*, the last 64-bit word
// is the *tail*; everything between is data payload.  HMC-Sim stores packets
// as little-endian 64-bit word arrays, large enough for the maximal 9-FLIT
// packet, exactly like the queue slots of a physical device (paper §IV.A).
//
// Field layouts (bit positions within the 64-bit header/tail words):
//
//   Request header : CMD[5:0] LNG[10:7] DLN[14:11] TAG[23:15] ADRS[57:24]
//                    CUB[63:61]
//   Request tail   : RRP[7:0] FRP[15:8] SEQ[18:16] Pb[19] SLID[22:20]
//                    RTC[28:26] CRC[63:32]
//   Response header: CMD[5:0] LNG[10:7] DLN[14:11] TAG[23:15] SLID[41:39]
//                    CUB[63:61]
//   Response tail  : RRP[7:0] FRP[15:8] SEQ[18:16] DINV[19] ERRSTAT[26:20]
//                    RTC[29:27] CRC[63:32]
//
// The CRC is CRC-32K computed over the whole packet with the CRC field
// zeroed, then deposited into the tail.
#pragma once

#include <array>
#include <span>

#include "common/bitops.hpp"
#include "common/limits.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "packet/command.hpp"

namespace hmcsim {

/// Fixed-capacity storage for one packet.  Cheap to copy; the simulator
/// moves these by value between queue slots.
struct PacketBuffer {
  std::array<u64, spec::kMaxPacketWords> words{};
  u32 flits{0};  ///< 1..9; 0 denotes an empty/invalid buffer.

  [[nodiscard]] usize word_count() const { return usize{flits} * 2; }

  [[nodiscard]] u64 header() const { return words[0]; }
  [[nodiscard]] u64 tail() const { return words[word_count() - 1]; }

  u64& header() { return words[0]; }
  u64& tail() { return words[word_count() - 1]; }

  /// Data payload words (between header and tail).  Empty for 1-FLIT packets.
  [[nodiscard]] std::span<const u64> payload() const {
    return {words.data() + 1, word_count() - 2};
  }
  [[nodiscard]] std::span<u64> payload() {
    return {words.data() + 1, word_count() - 2};
  }

  bool operator==(const PacketBuffer& other) const {
    if (flits != other.flits) return false;
    for (usize i = 0; i < word_count(); ++i) {
      if (words[i] != other.words[i]) return false;
    }
    return true;
  }
};

/// Decoded request-packet fields.
struct RequestFields {
  Command cmd{Command::Null};
  u32 lng{1};       ///< packet length in FLITs (LNG; DLN mirrors it)
  Tag tag{0};       ///< 9-bit transaction tag
  PhysAddr addr{0}; ///< 34-bit physical address
  u32 cub{0};       ///< destination cube id
  u32 slid{0};      ///< source link id (for response routing)
  u8 seq{0};        ///< 3-bit sequence number
  u8 rtc{0};        ///< return token count
  bool pb{false};   ///< poison bit
  u8 frp{0};        ///< forward retry pointer
  u8 rrp{0};        ///< return retry pointer
};

/// Decoded response-packet fields.
struct ResponseFields {
  Command cmd{Command::Null};
  u32 lng{1};
  Tag tag{0};
  u32 cub{0};       ///< cube id of the responding device
  u32 slid{0};      ///< link the original request arrived on
  ErrStat errstat{ErrStat::Ok};
  bool dinv{false}; ///< data-invalid indicator
  u8 seq{0};
  u8 rtc{0};
  u8 frp{0};
  u8 rrp{0};
};

// ---------------------------------------------------------------------------
// Raw header/tail field accessors.  These operate on bare 64-bit words so the
// C shim can expose the paper's (head, tail) out-parameters directly.
// ---------------------------------------------------------------------------

namespace field {

// Header fields (shared between requests and responses).
[[nodiscard]] inline Command cmd_of(u64 header) {
  return static_cast<Command>(extract(header, 0, 6));
}
[[nodiscard]] inline u32 lng_of(u64 header) {
  return static_cast<u32>(extract(header, 7, 4));
}
[[nodiscard]] inline u32 dln_of(u64 header) {
  return static_cast<u32>(extract(header, 11, 4));
}
[[nodiscard]] inline Tag tag_of(u64 header) {
  return static_cast<Tag>(extract(header, 15, 9));
}
[[nodiscard]] inline PhysAddr adrs_of(u64 header) {
  return extract(header, 24, 34);
}
[[nodiscard]] inline u32 cub_of(u64 header) {
  return static_cast<u32>(extract(header, 61, 3));
}
/// SLID field of a *response* header.
[[nodiscard]] inline u32 response_slid_of(u64 header) {
  return static_cast<u32>(extract(header, 39, 3));
}
/// SLID field of a *request* tail.
[[nodiscard]] inline u32 request_slid_of(u64 tail) {
  return static_cast<u32>(extract(tail, 20, 3));
}
[[nodiscard]] inline u32 crc_of(u64 tail) {
  return static_cast<u32>(extract(tail, 32, 32));
}
[[nodiscard]] inline ErrStat errstat_of(u64 tail) {
  return static_cast<ErrStat>(extract(tail, 20, 7));
}

[[nodiscard]] inline u64 make_request_header(Command cmd, u32 lng, Tag tag,
                                             PhysAddr addr, u32 cub) {
  u64 h = 0;
  h = deposit(h, 0, 6, static_cast<u64>(cmd));
  h = deposit(h, 7, 4, lng);
  h = deposit(h, 11, 4, lng);  // DLN mirrors LNG
  h = deposit(h, 15, 9, tag);
  h = deposit(h, 24, 34, addr);
  h = deposit(h, 61, 3, cub);
  return h;
}

[[nodiscard]] inline u64 make_request_tail(u32 slid, u8 seq, u8 rtc, bool pb,
                                           u8 frp, u8 rrp) {
  u64 t = 0;
  t = deposit(t, 0, 8, rrp);
  t = deposit(t, 8, 8, frp);
  t = deposit(t, 16, 3, seq);
  t = deposit(t, 19, 1, pb ? 1 : 0);
  t = deposit(t, 20, 3, slid);
  t = deposit(t, 26, 3, rtc);
  return t;  // CRC deposited by seal_crc
}

[[nodiscard]] inline u64 make_response_header(Command cmd, u32 lng, Tag tag,
                                              u32 slid, u32 cub) {
  u64 h = 0;
  h = deposit(h, 0, 6, static_cast<u64>(cmd));
  h = deposit(h, 7, 4, lng);
  h = deposit(h, 11, 4, lng);
  h = deposit(h, 15, 9, tag);
  h = deposit(h, 39, 3, slid);
  h = deposit(h, 61, 3, cub);
  return h;
}

[[nodiscard]] inline u64 make_response_tail(ErrStat errstat, bool dinv, u8 seq,
                                            u8 rtc, u8 frp, u8 rrp) {
  u64 t = 0;
  t = deposit(t, 0, 8, rrp);
  t = deposit(t, 8, 8, frp);
  t = deposit(t, 16, 3, seq);
  t = deposit(t, 19, 1, dinv ? 1 : 0);
  t = deposit(t, 20, 7, static_cast<u64>(errstat));
  t = deposit(t, 27, 3, rtc);
  return t;
}

}  // namespace field

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

/// Encode a request packet.  `payload` must contain exactly the number of
/// 64-bit words the command requires (request_data_bytes / 8).  The CRC is
/// computed and inserted.  LNG/DLN are derived from the command; fields.lng
/// is ignored on input.
[[nodiscard]] Status encode_request(const RequestFields& fields,
                                    std::span<const u64> payload,
                                    PacketBuffer& out);

/// Decode a request packet.  Validates command, length consistency (LNG ==
/// DLN == request_flits(cmd)) and CRC.
[[nodiscard]] Status decode_request(const PacketBuffer& in,
                                    RequestFields& out);

/// Encode a response packet.  `payload` sizing mirrors encode_request.
[[nodiscard]] Status encode_response(const ResponseFields& fields,
                                     std::span<const u64> payload,
                                     PacketBuffer& out);

/// Decode a response packet (validates command/length/CRC).
[[nodiscard]] Status decode_response(const PacketBuffer& in,
                                     ResponseFields& out);

/// Compute the CRC-32K of `p` with the tail CRC field treated as zero.
[[nodiscard]] u32 packet_crc(const PacketBuffer& p);

/// Recompute and deposit the CRC into the tail.
void seal_crc(PacketBuffer& p);

/// True when the deposited CRC matches the recomputed one.
[[nodiscard]] bool check_crc(const PacketBuffer& p);

/// Structural validation used at queue ingress: known command, LNG within
/// range and consistent with both the command table and the buffer's flit
/// count, CRC intact.
[[nodiscard]] Status validate_packet(const PacketBuffer& p);

}  // namespace hmcsim
