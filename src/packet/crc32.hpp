// CRC-32K: the Koopman polynomial CRC the HMC specification prescribes for
// packet integrity (paper ref [29], Koopman & Chakravarty, DSN 2004).
//
// Polynomial 0x741B8CD7 (normal form), reflected implementation with
// init = 0xFFFFFFFF and final xor = 0xFFFFFFFF.  Two engines are provided:
// a table-driven fast path used by the codec and a bit-at-a-time reference
// used to cross-check the table in the test suite.
#pragma once

#include <span>

#include "common/types.hpp"

namespace hmcsim::crc {

/// Koopman polynomial in normal (MSB-first) form.
inline constexpr u32 kPolyKoopman = 0x741b8cd7u;

/// Koopman polynomial in reflected (LSB-first) form.
inline constexpr u32 kPolyKoopmanReflected = 0xeb31d82eu;

/// Table-driven CRC-32K over a byte span.
[[nodiscard]] u32 crc32k(std::span<const u8> bytes);

/// Incremental interface: fold more bytes into a running CRC state.
/// `crc32k(x)` == `finish(update(init(), x))`.
[[nodiscard]] u32 init();
[[nodiscard]] u32 update(u32 state, std::span<const u8> bytes);
[[nodiscard]] u32 finish(u32 state);

/// Bit-at-a-time reference implementation (slow; for validation only).
[[nodiscard]] u32 crc32k_reference(std::span<const u8> bytes);

/// CRC over a span of 64-bit words interpreted little-endian, as packet
/// FLITs are.  Matches crc32k over the equivalent byte string.
[[nodiscard]] u32 crc32k_words(std::span<const u64> words);

}  // namespace hmcsim::crc
