// The HMC 1.0 command set.
//
// Every in-band packet carries a 6-bit CMD field.  The encodings below follow
// the Hybrid Memory Cube Specification 1.0 command tables: memory writes
// (posted and non-posted), bit writes, dual 8-byte and 16-byte atomic adds,
// mode register access, memory reads, flow control, and responses.
//
// HMC-Sim implements *all* packet variations (paper §IV requirement 5), so
// every command here is understood by the packet codec, the vault pipeline
// and the trace layer.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace hmcsim {

enum class Command : u8 {
  // -- Flow control (1 FLIT, no data) --------------------------------------
  Null = 0x00,   ///< NULL packet; ignored by receivers.
  Pret = 0x01,   ///< Retry pointer return.
  Tret = 0x02,   ///< Token return (link-level flow control credit).
  Irtry = 0x03,  ///< Init retry.

  // -- Non-posted writes: 16..128 bytes of payload --------------------------
  Wr16 = 0x08,
  Wr32 = 0x09,
  Wr48 = 0x0a,
  Wr64 = 0x0b,
  Wr80 = 0x0c,
  Wr96 = 0x0d,
  Wr112 = 0x0e,
  Wr128 = 0x0f,

  // -- Mode write / misc write-class requests -------------------------------
  ModeWrite = 0x10,  ///< MD_WR: write an internal device register in-band.
  BitWrite = 0x11,   ///< BWR: 8B data + 8B mask read-modify-write.
  TwoAdd8 = 0x12,    ///< 2ADD8: two independent 8-byte integer adds.
  Add16 = 0x13,      ///< ADD16: one 16-byte integer add.

  // -- Posted writes (no response generated) --------------------------------
  PostedWr16 = 0x18,
  PostedWr32 = 0x19,
  PostedWr48 = 0x1a,
  PostedWr64 = 0x1b,
  PostedWr80 = 0x1c,
  PostedWr96 = 0x1d,
  PostedWr112 = 0x1e,
  PostedWr128 = 0x1f,
  PostedBitWrite = 0x21,
  PostedTwoAdd8 = 0x22,
  PostedAdd16 = 0x23,

  // -- Mode read -------------------------------------------------------------
  ModeRead = 0x28,  ///< MD_RD: read an internal device register in-band.

  // -- Reads: request is always a single FLIT --------------------------------
  Rd16 = 0x30,
  Rd32 = 0x31,
  Rd48 = 0x32,
  Rd64 = 0x33,
  Rd80 = 0x34,
  Rd96 = 0x35,
  Rd112 = 0x36,
  Rd128 = 0x37,

  // -- Responses --------------------------------------------------------------
  ReadResponse = 0x38,       ///< RD_RS: carries the fetched data.
  WriteResponse = 0x39,      ///< WR_RS: completion for writes and atomics.
  ModeReadResponse = 0x3a,   ///< MD_RD_RS: carries 16B of register data.
  ModeWriteResponse = 0x3b,  ///< MD_WR_RS.
  Error = 0x3e,              ///< ERROR response; ERRSTAT describes the cause.
};

/// Error status codes carried in the ERRSTAT field of response tails.
/// Zero means success; the remaining encodings are simulator-defined but
/// stable, exposed so hosts can triage deliberate misconfigurations.
enum class ErrStat : u8 {
  Ok = 0x00,
  Unroutable = 0x01,       ///< no path from ingress link to destination cube
  InvalidAddress = 0x02,   ///< address beyond device capacity
  InvalidCommand = 0x03,   ///< CMD not understood / illegal at this point
  LengthMismatch = 0x04,   ///< LNG inconsistent with CMD
  CrcFailure = 0x05,       ///< packet failed its CRC check
  ProtocolError = 0x06,    ///< e.g. response received on a request path
  RegisterFault = 0x07,    ///< MODE access to a bad register index
  DramDbe = 0x08,          ///< uncorrectable (double-bit) DRAM error
  VaultFailed = 0x09,      ///< addressed vault is marked failed (degraded)
  LinkFailed = 0x0a,       ///< ingress link is dead (retry exhaustion)
};

// ---------------------------------------------------------------------------
// Classification helpers.
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_valid_command(u8 raw);

[[nodiscard]] constexpr bool is_flow(Command c) {
  return static_cast<u8>(c) <= 0x03;
}

[[nodiscard]] constexpr bool is_response(Command c) {
  return c == Command::ReadResponse || c == Command::WriteResponse ||
         c == Command::ModeReadResponse || c == Command::ModeWriteResponse ||
         c == Command::Error;
}

[[nodiscard]] constexpr bool is_request(Command c) {
  return !is_flow(c) && !is_response(c);
}

[[nodiscard]] constexpr bool is_read(Command c) {
  const u8 v = static_cast<u8>(c);
  return v >= 0x30 && v <= 0x37;
}

[[nodiscard]] constexpr bool is_write(Command c) {
  const u8 v = static_cast<u8>(c);
  return (v >= 0x08 && v <= 0x0f) || (v >= 0x18 && v <= 0x1f);
}

[[nodiscard]] constexpr bool is_posted(Command c) {
  const u8 v = static_cast<u8>(c);
  return (v >= 0x18 && v <= 0x1f) || v == 0x21 || v == 0x22 || v == 0x23;
}

[[nodiscard]] constexpr bool is_atomic(Command c) {
  return c == Command::TwoAdd8 || c == Command::Add16 ||
         c == Command::PostedTwoAdd8 || c == Command::PostedAdd16 ||
         c == Command::BitWrite || c == Command::PostedBitWrite;
}

[[nodiscard]] constexpr bool is_mode(Command c) {
  return c == Command::ModeRead || c == Command::ModeWrite;
}

// ---------------------------------------------------------------------------
// Size helpers.
// ---------------------------------------------------------------------------

/// Bytes of data payload carried by a request packet of this command.
/// Reads and mode-reads carry none; WRn carries n; atomics carry 16.
[[nodiscard]] usize request_data_bytes(Command c);

/// Bytes of data the *memory operation* touches (a RD64 touches 64 bytes
/// even though the request packet carries no payload).
[[nodiscard]] usize access_bytes(Command c);

/// Total packet length in FLITs for a request of this command
/// (1 header/tail FLIT + payload FLITs).
[[nodiscard]] usize request_flits(Command c);

/// The response command a vault generates after completing this request, or
/// Command::Null when no response is due (posted requests).
[[nodiscard]] Command response_command(Command c);

/// Total packet length in FLITs for the response to this request.
[[nodiscard]] usize response_flits(Command c);

/// The RDn / WRn command for an access of `bytes` (16..128, multiple of 16).
[[nodiscard]] Command read_command_for(u32 bytes);
[[nodiscard]] Command write_command_for(u32 bytes);

/// Short mnemonic, e.g. "WR64", "P_2ADD8", "RD_RS".
[[nodiscard]] std::string_view to_string(Command c);

[[nodiscard]] std::string_view to_string(ErrStat e);

}  // namespace hmcsim
