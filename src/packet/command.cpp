#include "packet/command.hpp"
#include <cassert>

#include "common/limits.hpp"

namespace hmcsim {

bool is_valid_command(u8 raw) {
  switch (static_cast<Command>(raw)) {
    case Command::Null:
    case Command::Pret:
    case Command::Tret:
    case Command::Irtry:
    case Command::Wr16:
    case Command::Wr32:
    case Command::Wr48:
    case Command::Wr64:
    case Command::Wr80:
    case Command::Wr96:
    case Command::Wr112:
    case Command::Wr128:
    case Command::ModeWrite:
    case Command::BitWrite:
    case Command::TwoAdd8:
    case Command::Add16:
    case Command::PostedWr16:
    case Command::PostedWr32:
    case Command::PostedWr48:
    case Command::PostedWr64:
    case Command::PostedWr80:
    case Command::PostedWr96:
    case Command::PostedWr112:
    case Command::PostedWr128:
    case Command::PostedBitWrite:
    case Command::PostedTwoAdd8:
    case Command::PostedAdd16:
    case Command::ModeRead:
    case Command::Rd16:
    case Command::Rd32:
    case Command::Rd48:
    case Command::Rd64:
    case Command::Rd80:
    case Command::Rd96:
    case Command::Rd112:
    case Command::Rd128:
    case Command::ReadResponse:
    case Command::WriteResponse:
    case Command::ModeReadResponse:
    case Command::ModeWriteResponse:
    case Command::Error:
      return true;
  }
  return false;
}

usize request_data_bytes(Command c) {
  const u8 v = static_cast<u8>(c);
  if (v >= 0x08 && v <= 0x0f) return (usize{v} - 0x08 + 1) * 16;  // WRn
  if (v >= 0x18 && v <= 0x1f) return (usize{v} - 0x18 + 1) * 16;  // P_WRn
  switch (c) {
    case Command::BitWrite:
    case Command::PostedBitWrite:
    case Command::TwoAdd8:
    case Command::PostedTwoAdd8:
    case Command::Add16:
    case Command::PostedAdd16:
    case Command::ModeWrite:
      return 16;
    default:
      return 0;  // reads, mode-read, flow control
  }
}

usize access_bytes(Command c) {
  const u8 v = static_cast<u8>(c);
  if (v >= 0x30 && v <= 0x37) return (usize{v} - 0x30 + 1) * 16;  // RDn
  if (is_atomic(c)) return 16;
  return request_data_bytes(c);
}

usize request_flits(Command c) {
  return 1 + request_data_bytes(c) / spec::kFlitBytes;
}

Command response_command(Command c) {
  if (is_posted(c)) return Command::Null;
  if (is_read(c)) return Command::ReadResponse;
  if (is_write(c) || c == Command::BitWrite || c == Command::TwoAdd8 ||
      c == Command::Add16) {
    return Command::WriteResponse;
  }
  if (c == Command::ModeRead) return Command::ModeReadResponse;
  if (c == Command::ModeWrite) return Command::ModeWriteResponse;
  return Command::Null;  // flow control and responses have no response
}

usize response_flits(Command c) {
  if (is_read(c)) return 1 + access_bytes(c) / spec::kFlitBytes;
  if (c == Command::ModeRead) return 2;  // MD_RD_RS carries one FLIT of data
  if (response_command(c) == Command::Null) return 0;
  return 1;  // WR_RS / MD_WR_RS
}

Command read_command_for(u32 bytes) {
  assert(bytes >= 16 && bytes <= 128 && bytes % 16 == 0);
  return static_cast<Command>(static_cast<u8>(Command::Rd16) +
                              (bytes / 16 - 1));
}

Command write_command_for(u32 bytes) {
  assert(bytes >= 16 && bytes <= 128 && bytes % 16 == 0);
  return static_cast<Command>(static_cast<u8>(Command::Wr16) +
                              (bytes / 16 - 1));
}

std::string_view to_string(Command c) {
  switch (c) {
    case Command::Null: return "NULL";
    case Command::Pret: return "PRET";
    case Command::Tret: return "TRET";
    case Command::Irtry: return "IRTRY";
    case Command::Wr16: return "WR16";
    case Command::Wr32: return "WR32";
    case Command::Wr48: return "WR48";
    case Command::Wr64: return "WR64";
    case Command::Wr80: return "WR80";
    case Command::Wr96: return "WR96";
    case Command::Wr112: return "WR112";
    case Command::Wr128: return "WR128";
    case Command::ModeWrite: return "MD_WR";
    case Command::BitWrite: return "BWR";
    case Command::TwoAdd8: return "2ADD8";
    case Command::Add16: return "ADD16";
    case Command::PostedWr16: return "P_WR16";
    case Command::PostedWr32: return "P_WR32";
    case Command::PostedWr48: return "P_WR48";
    case Command::PostedWr64: return "P_WR64";
    case Command::PostedWr80: return "P_WR80";
    case Command::PostedWr96: return "P_WR96";
    case Command::PostedWr112: return "P_WR112";
    case Command::PostedWr128: return "P_WR128";
    case Command::PostedBitWrite: return "P_BWR";
    case Command::PostedTwoAdd8: return "P_2ADD8";
    case Command::PostedAdd16: return "P_ADD16";
    case Command::ModeRead: return "MD_RD";
    case Command::Rd16: return "RD16";
    case Command::Rd32: return "RD32";
    case Command::Rd48: return "RD48";
    case Command::Rd64: return "RD64";
    case Command::Rd80: return "RD80";
    case Command::Rd96: return "RD96";
    case Command::Rd112: return "RD112";
    case Command::Rd128: return "RD128";
    case Command::ReadResponse: return "RD_RS";
    case Command::WriteResponse: return "WR_RS";
    case Command::ModeReadResponse: return "MD_RD_RS";
    case Command::ModeWriteResponse: return "MD_WR_RS";
    case Command::Error: return "ERROR";
  }
  return "INVALID";
}

std::string_view to_string(ErrStat e) {
  switch (e) {
    case ErrStat::Ok: return "OK";
    case ErrStat::Unroutable: return "UNROUTABLE";
    case ErrStat::InvalidAddress: return "INVALID_ADDRESS";
    case ErrStat::InvalidCommand: return "INVALID_COMMAND";
    case ErrStat::LengthMismatch: return "LENGTH_MISMATCH";
    case ErrStat::CrcFailure: return "CRC_FAILURE";
    case ErrStat::ProtocolError: return "PROTOCOL_ERROR";
    case ErrStat::RegisterFault: return "REGISTER_FAULT";
    case ErrStat::DramDbe: return "DRAM_DBE";
    case ErrStat::VaultFailed: return "VAULT_FAILED";
    case ErrStat::LinkFailed: return "LINK_FAILED";
  }
  return "UNKNOWN";
}

}  // namespace hmcsim
