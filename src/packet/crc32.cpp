#include "packet/crc32.hpp"

#include <array>

namespace hmcsim::crc {
namespace {

/// 256-entry lookup table for the reflected Koopman polynomial, generated at
/// static-init time by the straightforward bit loop.
constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (c >> 1) ^ kPolyKoopmanReflected : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<u32, 256> kTable = make_table();

}  // namespace

u32 init() { return 0xffffffffu; }

u32 update(u32 state, std::span<const u8> bytes) {
  for (const u8 b : bytes) {
    state = kTable[(state ^ b) & 0xffu] ^ (state >> 8);
  }
  return state;
}

u32 finish(u32 state) { return state ^ 0xffffffffu; }

u32 crc32k(std::span<const u8> bytes) {
  return finish(update(init(), bytes));
}

u32 crc32k_reference(std::span<const u8> bytes) {
  u32 state = 0xffffffffu;
  for (const u8 b : bytes) {
    state ^= b;
    for (int bit = 0; bit < 8; ++bit) {
      state = (state & 1u) ? (state >> 1) ^ kPolyKoopmanReflected
                           : (state >> 1);
    }
  }
  return state ^ 0xffffffffu;
}

u32 crc32k_words(std::span<const u64> words) {
  u32 state = init();
  for (const u64 w : words) {
    u8 bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<u8>((w >> (8 * i)) & 0xffu);
    }
    state = update(state, bytes);
  }
  return finish(state);
}

}  // namespace hmcsim::crc
