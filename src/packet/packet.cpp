#include "packet/packet.hpp"

#include <algorithm>

#include "packet/crc32.hpp"

namespace hmcsim {

u32 packet_crc(const PacketBuffer& p) {
  // CRC over the whole packet with the tail's CRC field zeroed.
  PacketBuffer scratch = p;
  scratch.tail() = deposit(scratch.tail(), 32, 32, 0);
  return crc::crc32k_words({scratch.words.data(), scratch.word_count()});
}

void seal_crc(PacketBuffer& p) {
  p.tail() = deposit(p.tail(), 32, 32, packet_crc(p));
}

bool check_crc(const PacketBuffer& p) {
  return field::crc_of(p.tail()) == packet_crc(p);
}

namespace {

Status encode_common(u64 header, u64 tail, u32 lng,
                     std::span<const u64> payload, PacketBuffer& out) {
  if (lng < spec::kMinPacketFlits || lng > spec::kMaxPacketFlits) {
    return Status::InvalidArgument;
  }
  const usize payload_words = usize{lng} * 2 - 2;
  if (payload.size() != payload_words) return Status::InvalidArgument;

  out.flits = lng;
  out.words[0] = header;
  std::copy(payload.begin(), payload.end(), out.words.begin() + 1);
  out.words[out.word_count() - 1] = tail;
  seal_crc(out);
  return Status::Ok;
}

}  // namespace

Status encode_request(const RequestFields& fields,
                      std::span<const u64> payload, PacketBuffer& out) {
  if (!is_request(fields.cmd) && !is_flow(fields.cmd)) {
    return Status::InvalidArgument;
  }
  if (fields.addr > spec::kAddrMask || fields.tag > spec::kMaxTag) {
    return Status::InvalidArgument;
  }
  const u32 lng = static_cast<u32>(request_flits(fields.cmd));
  const u64 header = field::make_request_header(fields.cmd, lng, fields.tag,
                                                fields.addr, fields.cub);
  const u64 tail = field::make_request_tail(fields.slid, fields.seq,
                                            fields.rtc, fields.pb, fields.frp,
                                            fields.rrp);
  return encode_common(header, tail, lng, payload, out);
}

Status decode_request(const PacketBuffer& in, RequestFields& out) {
  if (in.flits < spec::kMinPacketFlits || in.flits > spec::kMaxPacketFlits) {
    return Status::MalformedPacket;
  }
  const u64 header = in.header();
  const u8 raw_cmd = static_cast<u8>(extract(header, 0, 6));
  if (!is_valid_command(raw_cmd)) return Status::MalformedPacket;
  const Command cmd = static_cast<Command>(raw_cmd);
  if (!is_request(cmd) && !is_flow(cmd)) return Status::MalformedPacket;

  const u32 lng = field::lng_of(header);
  if (lng != field::dln_of(header) || lng != in.flits ||
      lng != request_flits(cmd)) {
    return Status::MalformedPacket;
  }
  if (!check_crc(in)) return Status::MalformedPacket;

  const u64 tail = in.tail();
  out.cmd = cmd;
  out.lng = lng;
  out.tag = field::tag_of(header);
  out.addr = field::adrs_of(header);
  out.cub = field::cub_of(header);
  out.rrp = static_cast<u8>(extract(tail, 0, 8));
  out.frp = static_cast<u8>(extract(tail, 8, 8));
  out.seq = static_cast<u8>(extract(tail, 16, 3));
  out.pb = extract(tail, 19, 1) != 0;
  out.slid = field::request_slid_of(tail);
  out.rtc = static_cast<u8>(extract(tail, 26, 3));
  return Status::Ok;
}

Status encode_response(const ResponseFields& fields,
                       std::span<const u64> payload, PacketBuffer& out) {
  if (!is_response(fields.cmd)) return Status::InvalidArgument;
  if (fields.tag > spec::kMaxTag) return Status::InvalidArgument;
  // Response length is data-dependent: 1 + payload FLITs.
  if (payload.size() % 2 != 0) return Status::InvalidArgument;
  const u32 lng = static_cast<u32>(1 + payload.size() / 2);
  const u64 header = field::make_response_header(fields.cmd, lng, fields.tag,
                                                 fields.slid, fields.cub);
  const u64 tail =
      field::make_response_tail(fields.errstat, fields.dinv, fields.seq,
                                fields.rtc, fields.frp, fields.rrp);
  return encode_common(header, tail, lng, payload, out);
}

Status decode_response(const PacketBuffer& in, ResponseFields& out) {
  if (in.flits < spec::kMinPacketFlits || in.flits > spec::kMaxPacketFlits) {
    return Status::MalformedPacket;
  }
  const u64 header = in.header();
  const u8 raw_cmd = static_cast<u8>(extract(header, 0, 6));
  if (!is_valid_command(raw_cmd)) return Status::MalformedPacket;
  const Command cmd = static_cast<Command>(raw_cmd);
  if (!is_response(cmd)) return Status::MalformedPacket;

  const u32 lng = field::lng_of(header);
  if (lng != field::dln_of(header) || lng != in.flits) {
    return Status::MalformedPacket;
  }
  if (!check_crc(in)) return Status::MalformedPacket;

  const u64 tail = in.tail();
  out.cmd = cmd;
  out.lng = lng;
  out.tag = field::tag_of(header);
  out.cub = field::cub_of(header);
  out.slid = field::response_slid_of(header);
  out.rrp = static_cast<u8>(extract(tail, 0, 8));
  out.frp = static_cast<u8>(extract(tail, 8, 8));
  out.seq = static_cast<u8>(extract(tail, 16, 3));
  out.dinv = extract(tail, 19, 1) != 0;
  out.errstat = field::errstat_of(tail);
  out.rtc = static_cast<u8>(extract(tail, 27, 3));
  return Status::Ok;
}

Status validate_packet(const PacketBuffer& p) {
  if (p.flits < spec::kMinPacketFlits || p.flits > spec::kMaxPacketFlits) {
    return Status::MalformedPacket;
  }
  const u8 raw_cmd = static_cast<u8>(extract(p.header(), 0, 6));
  if (!is_valid_command(raw_cmd)) return Status::MalformedPacket;
  const Command cmd = static_cast<Command>(raw_cmd);
  const u32 lng = field::lng_of(p.header());
  if (lng != p.flits || lng != field::dln_of(p.header())) {
    return Status::MalformedPacket;
  }
  if (is_request(cmd) && lng != request_flits(cmd)) {
    return Status::MalformedPacket;
  }
  if (!check_crc(p)) return Status::MalformedPacket;
  return Status::Ok;
}

}  // namespace hmcsim
