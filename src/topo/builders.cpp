// Builders for the paper's Figure 1 device topologies.
#include <sstream>

#include "topo/topology.hpp"

namespace hmcsim {
namespace {

Topology fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return Topology{};
}

bool finalize_or_fail(Topology& t, std::string* error) {
  std::string diag;
  if (!ok(t.validate(&diag))) {
    if (error) *error = diag;
    return false;
  }
  return ok(t.finalize());
}

}  // namespace

Topology make_simple(u32 links, std::string* error) {
  Topology t(1, links);
  for (u32 l = 0; l < links; ++l) {
    (void)t.connect_host(CubeId{0}, LinkId{l});
  }
  if (!finalize_or_fail(t, error)) return Topology{};
  return t;
}

Topology make_chain(u32 devices, u32 links, u32 host_links, u32 trunk_links,
                    std::string* error) {
  if (devices == 0) return fail(error, "chain needs at least one device");
  if (host_links == 0) return fail(error, "chain needs a host port");
  // Device 0 spends host_links on the host and trunk_links downstream;
  // interior devices spend 2*trunk_links.
  if (devices > 1 && (host_links + trunk_links > links ||
                      2 * trunk_links > links)) {
    return fail(error, "link budget exceeded for chain");
  }
  if (devices == 1 && host_links > links) {
    return fail(error, "link budget exceeded for chain");
  }
  Topology t(devices, links);
  for (u32 l = 0; l < host_links; ++l) {
    (void)t.connect_host(CubeId{0}, LinkId{l});
  }
  for (u32 d = 0; d + 1 < devices; ++d) {
    // Upstream device uses its top trunk_links; downstream its bottom ones.
    for (u32 k = 0; k < trunk_links; ++k) {
      const u32 up_link = links - trunk_links + k;
      const u32 down_link = k;
      if (!ok(t.connect(CubeId{d}, LinkId{up_link}, CubeId{d + 1},
                        LinkId{down_link}))) {
        return fail(error, "chain wiring conflict");
      }
    }
  }
  if (!finalize_or_fail(t, error)) return Topology{};
  return t;
}

Topology make_ring(u32 devices, u32 links, u32 host_links, std::string* error) {
  if (devices < 3) return fail(error, "a ring needs at least three devices");
  // Every device spends two links on ring neighbors; device 0 additionally
  // hosts.  Link assignment: link (links-1) goes clockwise, link (links-2)
  // counterclockwise.
  if (host_links + 2 > links) {
    return fail(error, "link budget exceeded for ring");
  }
  Topology t(devices, links);
  for (u32 l = 0; l < host_links; ++l) {
    (void)t.connect_host(CubeId{0}, LinkId{l});
  }
  for (u32 d = 0; d < devices; ++d) {
    const u32 next = (d + 1) % devices;
    if (!ok(t.connect(CubeId{d}, LinkId{links - 1}, CubeId{next},
                      LinkId{links - 2}))) {
      return fail(error, "ring wiring conflict");
    }
  }
  if (!finalize_or_fail(t, error)) return Topology{};
  return t;
}

Topology make_mesh(u32 rows, u32 cols, u32 links, u32 host_links,
                   std::string* error) {
  if (rows == 0 || cols == 0) return fail(error, "mesh dimensions are zero");
  const u32 devices = rows * cols;
  if (devices > 7) {
    return fail(error,
                "mesh exceeds 7 devices (the 3-bit CUB field reserves the "
                "top id for hosts)");
  }
  // Link plan per node: 0 = west, 1 = east, 2 = north, 3 = south; host links
  // take the highest indices of the corner node (0,0).
  if (links < 4) return fail(error, "mesh needs 4-link (or larger) devices");
  Topology t(devices, links);
  const auto id = [cols](u32 r, u32 c) { return r * cols + c; };
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        if (!ok(t.connect(CubeId{id(r, c)}, LinkId{1}, CubeId{id(r, c + 1)},
                          LinkId{0}))) {
          return fail(error, "mesh wiring conflict (east)");
        }
      }
      if (r + 1 < rows) {
        if (!ok(t.connect(CubeId{id(r, c)}, LinkId{3}, CubeId{id(r + 1, c)},
                          LinkId{2}))) {
          return fail(error, "mesh wiring conflict (south)");
        }
      }
    }
  }
  // Corner (0,0) has no west/north neighbor, so links 0 and 2 are free;
  // extra host links draw on indices >= 4 when available.
  u32 attached = 0;
  for (u32 l = 0; l < links && attached < host_links; ++l) {
    if (t.endpoint(CubeId{0}, LinkId{l}).kind == EndpointKind::Unconnected) {
      (void)t.connect_host(CubeId{0}, LinkId{l});
      ++attached;
    }
  }
  if (attached < host_links) {
    return fail(error, "not enough free links on the mesh corner for host");
  }
  if (!finalize_or_fail(t, error)) return Topology{};
  return t;
}

Topology make_torus2d(u32 rows, u32 cols, u32 links, u32 host_links,
                      std::string* error) {
  if (rows < 2 || cols < 2) {
    return fail(error, "a 2-D torus needs at least 2x2 devices");
  }
  const u32 devices = rows * cols;
  if (devices > 7) {
    return fail(error, "torus exceeds 7 devices (3-bit CUB limit)");
  }
  // Every node uses four links for wraparound neighbors; the host node
  // additionally needs host_links, so 8-link devices are required.
  if (links < 4 + host_links) {
    return fail(error, "torus needs links >= 4 + host_links (8-link parts)");
  }
  Topology t(devices, links);
  const auto id = [cols](u32 r, u32 c) { return r * cols + c; };
  // Link plan: 0 = west, 1 = east, 2 = north, 3 = south (wrapping).
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 0; c < cols; ++c) {
      const u32 east = id(r, (c + 1) % cols);
      if (!ok(t.connect(CubeId{id(r, c)}, LinkId{1}, CubeId{east},
                        LinkId{0}))) {
        return fail(error, "torus wiring conflict (east wrap)");
      }
    }
  }
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 0; c < cols; ++c) {
      const u32 south = id((r + 1) % rows, c);
      if (!ok(t.connect(CubeId{id(r, c)}, LinkId{3}, CubeId{south},
                        LinkId{2}))) {
        return fail(error, "torus wiring conflict (south wrap)");
      }
    }
  }
  for (u32 l = 0; l < host_links; ++l) {
    if (!ok(t.connect_host(CubeId{0}, LinkId{4 + l}))) {
      return fail(error, "torus host wiring conflict");
    }
  }
  if (!finalize_or_fail(t, error)) return Topology{};
  return t;
}

}  // namespace hmcsim
