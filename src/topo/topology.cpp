#include "topo/topology.hpp"

#include <deque>
#include <sstream>

namespace hmcsim {

Topology::Topology(u32 num_devices, u32 links_per_device)
    : num_devices_(num_devices),
      links_per_device_(links_per_device),
      endpoints_(usize{num_devices} * links_per_device) {}

Status Topology::connect_host(CubeId dev, LinkId link) {
  if (!valid_dev(dev) || !valid_link(link)) return Status::InvalidArgument;
  LinkEndpoint& e = ep(dev.get(), link.get());
  if (e.kind != EndpointKind::Unconnected) return Status::InvalidConfig;
  e = LinkEndpoint{EndpointKind::Host, 0, 0};
  finalized_ = false;
  return Status::Ok;
}

Status Topology::connect(CubeId a, LinkId la, CubeId b, LinkId lb) {
  if (!valid_dev(a) || !valid_dev(b) || !valid_link(la) || !valid_link(lb)) {
    return Status::InvalidArgument;
  }
  // Loopbacks have a high probability of inducing zombie response packets
  // that never reach a destination; refuse them outright (paper §V.B).
  if (a == b) return Status::InvalidConfig;
  LinkEndpoint& ea = ep(a.get(), la.get());
  LinkEndpoint& eb = ep(b.get(), lb.get());
  if (ea.kind != EndpointKind::Unconnected ||
      eb.kind != EndpointKind::Unconnected) {
    return Status::InvalidConfig;
  }
  ea = LinkEndpoint{EndpointKind::Device, b.get(), lb.get()};
  eb = LinkEndpoint{EndpointKind::Device, a.get(), la.get()};
  finalized_ = false;
  return Status::Ok;
}

Status Topology::disconnect(CubeId dev, LinkId link) {
  if (!valid_dev(dev) || !valid_link(link)) return Status::InvalidArgument;
  LinkEndpoint& e = ep(dev.get(), link.get());
  if (e.kind == EndpointKind::Device) {
    ep(e.peer_dev, e.peer_link) = LinkEndpoint{};
  }
  e = LinkEndpoint{};
  finalized_ = false;
  return Status::Ok;
}

const LinkEndpoint& Topology::endpoint(CubeId dev, LinkId link) const {
  return ep(dev.get(), link.get());
}

bool Topology::is_root(CubeId dev) const {
  for (u32 l = 0; l < links_per_device_; ++l) {
    if (ep(dev.get(), l).kind == EndpointKind::Host) return true;
  }
  return false;
}

std::vector<Topology::HostPort> Topology::host_ports() const {
  std::vector<HostPort> ports;
  for (u32 d = 0; d < num_devices_; ++d) {
    for (u32 l = 0; l < links_per_device_; ++l) {
      if (ep(d, l).kind == EndpointKind::Host) ports.push_back({d, l});
    }
  }
  return ports;
}

Status Topology::validate(std::string* diagnostic) const {
  if (num_devices_ == 0) {
    if (diagnostic) *diagnostic = "topology holds no devices";
    return Status::InvalidConfig;
  }
  // The user must configure at least one device that connects to a host
  // link; otherwise the host has no access to main memory.
  if (host_ports().empty()) {
    if (diagnostic) *diagnostic = "no host link configured on any device";
    return Status::InvalidConfig;
  }
  // Cross-check device-device symmetry (an internal invariant; connect()
  // maintains it, but user-assembled endpoint lists could break it).
  for (u32 d = 0; d < num_devices_; ++d) {
    for (u32 l = 0; l < links_per_device_; ++l) {
      const LinkEndpoint& e = ep(d, l);
      if (e.kind != EndpointKind::Device) continue;
      if (e.peer_dev >= num_devices_ || e.peer_link >= links_per_device_) {
        if (diagnostic) {
          std::ostringstream os;
          os << "device " << d << " link " << l << " points at nonexistent "
             << "peer " << e.peer_dev << ":" << e.peer_link;
          *diagnostic = os.str();
        }
        return Status::InvalidConfig;
      }
      const LinkEndpoint& back = ep(e.peer_dev, e.peer_link);
      if (back.kind != EndpointKind::Device || back.peer_dev != d ||
          back.peer_link != l) {
        if (diagnostic) {
          std::ostringstream os;
          os << "asymmetric link: " << d << ":" << l << " -> " << e.peer_dev
             << ":" << e.peer_link << " has no back edge";
          *diagnostic = os.str();
        }
        return Status::InvalidConfig;
      }
    }
  }
  return Status::Ok;
}

Status Topology::finalize() {
  const Status v = validate();
  if (!ok(v)) return v;

  route_next_.assign(usize{num_devices_} * num_devices_, kUnreachable);
  route_dist_.assign(usize{num_devices_} * num_devices_, kUnreachable);
  host_dist_.assign(num_devices_, kUnreachable);

  // BFS from every destination so route_next_[src][dst] holds the first
  // link on a shortest src->dst path.  O(D * (D + E)); device counts are
  // tiny (<= 7), this runs once per configuration.
  for (u32 dst = 0; dst < num_devices_; ++dst) {
    auto& dist_row = route_dist_;
    dist_row[usize{dst} * num_devices_ + dst] = 0;
    std::deque<u32> frontier{dst};
    while (!frontier.empty()) {
      const u32 cur = frontier.front();
      frontier.pop_front();
      const u32 cur_dist = route_dist_[usize{cur} * num_devices_ + dst];
      for (u32 l = 0; l < links_per_device_; ++l) {
        const LinkEndpoint& e = ep(cur, l);
        if (e.kind != EndpointKind::Device) continue;
        const u32 nb = e.peer_dev;
        u32& nb_dist = route_dist_[usize{nb} * num_devices_ + dst];
        if (nb_dist != kUnreachable) continue;
        nb_dist = cur_dist + 1;
        // The neighbor reaches `dst` by sending over the back edge.
        route_next_[usize{nb} * num_devices_ + dst] = e.peer_link;
        frontier.push_back(nb);
      }
    }
  }

  // Host distance: BFS from the set of root devices simultaneously.
  std::deque<u32> frontier;
  for (u32 d = 0; d < num_devices_; ++d) {
    if (is_root(CubeId{d})) {
      host_dist_[d] = 0;
      frontier.push_back(d);
    }
  }
  while (!frontier.empty()) {
    const u32 cur = frontier.front();
    frontier.pop_front();
    for (u32 l = 0; l < links_per_device_; ++l) {
      const LinkEndpoint& e = ep(cur, l);
      if (e.kind != EndpointKind::Device) continue;
      if (host_dist_[e.peer_dev] != kUnreachable) continue;
      host_dist_[e.peer_dev] = host_dist_[cur] + 1;
      frontier.push_back(e.peer_dev);
    }
  }

  finalized_ = true;
  return Status::Ok;
}

std::optional<LinkId> Topology::next_hop(CubeId dev, CubeId dst) const {
  if (!finalized_ || !valid_dev(dev) || !valid_dev(dst)) return std::nullopt;
  const u32 link = route_next_[usize{dev.get()} * num_devices_ + dst.get()];
  if (link == kUnreachable) return std::nullopt;
  return LinkId{link};
}

std::vector<LinkId> Topology::next_hops(CubeId dev, CubeId dst) const {
  std::vector<LinkId> hops_out;
  if (!finalized_ || !valid_dev(dev) || !valid_dev(dst) || dev == dst) {
    return hops_out;
  }
  const u32 my_dist = route_dist_[usize{dev.get()} * num_devices_ + dst.get()];
  if (my_dist == kUnreachable) return hops_out;
  for (u32 l = 0; l < links_per_device_; ++l) {
    const LinkEndpoint& e = ep(dev.get(), l);
    if (e.kind != EndpointKind::Device) continue;
    const u32 peer_dist =
        route_dist_[usize{e.peer_dev} * num_devices_ + dst.get()];
    if (peer_dist != kUnreachable && peer_dist + 1 == my_dist) {
      hops_out.push_back(LinkId{l});
    }
  }
  return hops_out;
}

std::optional<u32> Topology::hops(CubeId dev, CubeId dst) const {
  if (!finalized_ || !valid_dev(dev) || !valid_dev(dst)) return std::nullopt;
  const u32 d = route_dist_[usize{dev.get()} * num_devices_ + dst.get()];
  if (d == kUnreachable) return std::nullopt;
  return d;
}

std::optional<u32> Topology::host_distance(CubeId dev) const {
  if (!finalized_ || !valid_dev(dev)) return std::nullopt;
  const u32 d = host_dist_[dev.get()];
  if (d == kUnreachable) return std::nullopt;
  return d;
}

}  // namespace hmcsim
