// Multi-device link topology (paper §III.A Figure 1, §V.B).
//
// HMC links may attach a device to a host processor or to another HMC
// device ("chaining"), permitting memory subsystems larger than one cube
// without changing the packetized transaction protocol.  HMC-Sim is
// *topologically agnostic*: it supports every wiring the user requests,
// including deliberately incorrect ones — those surface as in-band error
// responses at simulation time, not configuration-time rejections.
//
// Hard constraints the simulator does enforce (paper §V.B):
//   * linked devices must live in the same simulator object (implicit here:
//     a Topology describes one object);
//   * loopback links (a device linked to itself) are rejected — they breed
//     zombie response packets that never reach a destination;
//   * at least one device must expose a host link, or the host would have
//     no access to main memory.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace hmcsim {

enum class EndpointKind : u8 {
  Unconnected,  ///< link is wired to nothing; packets cannot use it
  Host,         ///< link attaches to the host processor
  Device,       ///< link attaches to a peer device (chaining)
};

/// What one device link is wired to.
struct LinkEndpoint {
  EndpointKind kind{EndpointKind::Unconnected};
  u32 peer_dev{0};   ///< valid when kind == Device
  u32 peer_link{0};  ///< valid when kind == Device

  bool operator==(const LinkEndpoint&) const = default;
};

class Topology {
 public:
  Topology() = default;
  Topology(u32 num_devices, u32 links_per_device);

  [[nodiscard]] u32 num_devices() const { return num_devices_; }
  [[nodiscard]] u32 links_per_device() const { return links_per_device_; }

  /// Wire a link to the host.  Fails on bad indices or an already-wired
  /// link.
  Status connect_host(CubeId dev, LinkId link);

  /// Wire two device links together (both directions).  Rejects loopbacks
  /// (a == b) and already-wired links.
  Status connect(CubeId a, LinkId la, CubeId b, LinkId lb);

  /// Unwire a link (and its peer when device-connected).
  Status disconnect(CubeId dev, LinkId link);

  [[nodiscard]] const LinkEndpoint& endpoint(CubeId dev, LinkId link) const;

  /// A root device exposes at least one host link (paper §IV.C: stages 2
  /// and 5 treat root and child devices differently).
  [[nodiscard]] bool is_root(CubeId dev) const;

  /// Every host link on the topology, in (device, link) order.  This is the
  /// namespace the workload drivers inject over.
  struct HostPort {
    u32 dev;
    u32 link;
    bool operator==(const HostPort&) const = default;
  };
  [[nodiscard]] std::vector<HostPort> host_ports() const;

  /// Check the hard constraints.  Unreachable devices are NOT an error
  /// (deliberate misconfiguration is supported); a missing host link is.
  [[nodiscard]] Status validate(std::string* diagnostic = nullptr) const;

  /// Compute BFS route tables over the device-device graph.  Must be called
  /// (again) after the wiring changes; queries below require it.
  Status finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Next-hop link from `dev` toward cube `dst`, or nullopt when `dst` is
  /// unreachable (the runtime turns that into an ERROR response).
  [[nodiscard]] std::optional<LinkId> next_hop(CubeId dev, CubeId dst) const;

  /// ALL shortest-path next-hop links from `dev` toward `dst` (equal-cost
  /// multipath over parallel trunk links); empty when unreachable.  The
  /// simulator spreads request streams across these deterministically so
  /// per-(link, bank) packet order is preserved.
  [[nodiscard]] std::vector<LinkId> next_hops(CubeId dev, CubeId dst) const;

  /// Device-to-device hop distance, or nullopt when unreachable.
  [[nodiscard]] std::optional<u32> hops(CubeId dev, CubeId dst) const;

  /// Hop distance from the nearest host port to `dev` (how deep in the
  /// chain a device sits); nullopt when no host can reach it.
  [[nodiscard]] std::optional<u32> host_distance(CubeId dev) const;

 private:
  [[nodiscard]] bool valid_dev(CubeId d) const {
    return d.get() < num_devices_;
  }
  [[nodiscard]] bool valid_link(LinkId l) const {
    return l.get() < links_per_device_;
  }
  [[nodiscard]] LinkEndpoint& ep(u32 dev, u32 link) {
    return endpoints_[usize{dev} * links_per_device_ + link];
  }
  [[nodiscard]] const LinkEndpoint& ep(u32 dev, u32 link) const {
    return endpoints_[usize{dev} * links_per_device_ + link];
  }

  u32 num_devices_{0};
  u32 links_per_device_{0};
  std::vector<LinkEndpoint> endpoints_;

  bool finalized_{false};
  static constexpr u32 kUnreachable = ~u32{0};
  /// route_[src * num_devices + dst] = link index of next hop (or ~0).
  std::vector<u32> route_next_;
  std::vector<u32> route_dist_;
  std::vector<u32> host_dist_;
};

// ---------------------------------------------------------------------------
// Figure 1 builders.  Each returns a finalized topology; `error` (when
// non-null) receives a diagnostic if the parameters are unbuildable, and the
// returned topology has num_devices() == 0 in that case.
// ---------------------------------------------------------------------------

/// One device, every link attached to the host (Figure 1 "Simple").
[[nodiscard]] Topology make_simple(u32 links, std::string* error = nullptr);

/// Devices chained in a line; the host holds `host_links` links of device 0;
/// each adjacent pair is joined by `trunk_links` links.
[[nodiscard]] Topology make_chain(u32 devices, u32 links, u32 host_links = 2,
                                  u32 trunk_links = 1,
                                  std::string* error = nullptr);

/// Devices in a cycle (Figure 1 "Ring"); host on device 0.
[[nodiscard]] Topology make_ring(u32 devices, u32 links, u32 host_links = 2,
                                 std::string* error = nullptr);

/// rows x cols mesh (Figure 1 "Mesh"); host on device (0,0).  Interior
/// nodes of a 4-link mesh use all four links for neighbors, so host_links
/// must fit the corner's spare links.
[[nodiscard]] Topology make_mesh(u32 rows, u32 cols, u32 links,
                                 u32 host_links = 2,
                                 std::string* error = nullptr);

/// rows x cols 2-D torus (Figure 1 "2D Torus"); host on device (0,0).
/// Requires 8-link devices when rows > 1 and cols > 1 plus a host port.
[[nodiscard]] Topology make_torus2d(u32 rows, u32 cols, u32 links,
                                    u32 host_links = 2,
                                    std::string* error = nullptr);

}  // namespace hmcsim
