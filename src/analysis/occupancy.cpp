#include "analysis/occupancy.hpp"

#include <algorithm>
#include <ostream>

namespace hmcsim {

void OccupancyProbe::sample(const Simulator& sim) {
  if (calls_++ % interval_ != 0) return;
  if (!sim.initialized()) return;

  Sample s;
  s.cycle = sim.now();
  usize link_queues = 0, vault_queues = 0;
  double xbar_rqst = 0, xbar_rsp = 0, vault_rqst = 0, vault_rsp = 0;
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    const Device& dev = sim.device(d);
    for (const LinkState& link : dev.links) {
      xbar_rqst += static_cast<double>(link.rqst.size()) /
                   static_cast<double>(link.rqst.capacity());
      xbar_rsp += static_cast<double>(link.rsp.size()) /
                  static_cast<double>(link.rsp.capacity());
      ++link_queues;
    }
    for (const VaultState& vault : dev.vaults) {
      vault_rqst += static_cast<double>(vault.rqst.size()) /
                    static_cast<double>(vault.rqst.capacity());
      vault_rsp += static_cast<double>(vault.rsp.size()) /
                   static_cast<double>(vault.rsp.capacity());
      ++vault_queues;
    }
  }
  if (link_queues > 0) {
    s.xbar_rqst_fill = xbar_rqst / static_cast<double>(link_queues);
    s.xbar_rsp_fill = xbar_rsp / static_cast<double>(link_queues);
  }
  if (vault_queues > 0) {
    s.vault_rqst_fill = vault_rqst / static_cast<double>(vault_queues);
    s.vault_rsp_fill = vault_rsp / static_cast<double>(vault_queues);
  }
  samples_.push_back(s);
}

OccupancyProbe::Sample OccupancyProbe::mean() const {
  Sample m;
  if (samples_.empty()) return m;
  for (const Sample& s : samples_) {
    m.xbar_rqst_fill += s.xbar_rqst_fill;
    m.xbar_rsp_fill += s.xbar_rsp_fill;
    m.vault_rqst_fill += s.vault_rqst_fill;
    m.vault_rsp_fill += s.vault_rsp_fill;
  }
  const double n = static_cast<double>(samples_.size());
  m.cycle = samples_.back().cycle;
  m.xbar_rqst_fill /= n;
  m.xbar_rsp_fill /= n;
  m.vault_rqst_fill /= n;
  m.vault_rsp_fill /= n;
  return m;
}

OccupancyProbe::Sample OccupancyProbe::peak() const {
  Sample p;
  for (const Sample& s : samples_) {
    p.xbar_rqst_fill = std::max(p.xbar_rqst_fill, s.xbar_rqst_fill);
    p.xbar_rsp_fill = std::max(p.xbar_rsp_fill, s.xbar_rsp_fill);
    p.vault_rqst_fill = std::max(p.vault_rqst_fill, s.vault_rqst_fill);
    p.vault_rsp_fill = std::max(p.vault_rsp_fill, s.vault_rsp_fill);
    p.cycle = std::max(p.cycle, s.cycle);
  }
  return p;
}

void OccupancyProbe::write_csv(std::ostream& os) const {
  os << "cycle,xbar_rqst,xbar_rsp,vault_rqst,vault_rsp\n";
  for (const Sample& s : samples_) {
    os << s.cycle << ',' << s.xbar_rqst_fill << ',' << s.xbar_rsp_fill << ','
       << s.vault_rqst_fill << ',' << s.vault_rsp_fill << '\n';
  }
}

}  // namespace hmcsim
