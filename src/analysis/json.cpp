#include "analysis/json.hpp"

#include <cmath>
#include <ostream>

#include "analysis/report.hpp"

namespace hmcsim {

void JsonWriter::separator() {
  if (need_comma_) *os_ << ',';
  need_comma_ = false;
}

void JsonWriter::escape(std::string_view text) {
  *os_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"': *os_ << "\\\""; break;
      case '\\': *os_ << "\\\\"; break;
      case '\n': *os_ << "\\n"; break;
      case '\t': *os_ << "\\t"; break;
      case '\r': *os_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *os_ << buf;
        } else {
          *os_ << c;
        }
    }
  }
  *os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  *os_ << '{';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  *os_ << '}';
  --depth_;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  *os_ << '[';
  ++depth_;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  *os_ << ']';
  --depth_;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separator();
  escape(name);
  *os_ << ':';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  separator();
  *os_ << v;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  separator();
  *os_ << v;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    *os_ << buf;
  } else {
    *os_ << "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  *os_ << (v ? "true" : "false");
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  escape(v);
  need_comma_ = true;
  return *this;
}

namespace {

void write_device_stats(JsonWriter& json, const DeviceStats& s) {
  json.begin_object();
  json.kv("reads", s.reads);
  json.kv("writes", s.writes);
  json.kv("atomics", s.atomics);
  json.kv("mode_ops", s.mode_ops);
  json.kv("custom_ops", s.custom_ops);
  json.kv("bytes_read", s.bytes_read);
  json.kv("bytes_written", s.bytes_written);
  json.kv("responses", s.responses);
  json.kv("error_responses", s.error_responses);
  json.kv("bank_conflicts", s.bank_conflicts);
  json.kv("xbar_rqst_stalls", s.xbar_rqst_stalls);
  json.kv("xbar_rsp_stalls", s.xbar_rsp_stalls);
  json.kv("vault_rsp_stalls", s.vault_rsp_stalls);
  json.kv("latency_penalties", s.latency_penalties);
  json.kv("route_hops", s.route_hops);
  json.kv("misroutes", s.misroutes);
  json.kv("link_errors", s.link_errors);
  json.kv("link_retries", s.link_retries);
  json.kv("refreshes", s.refreshes);
  json.kv("row_hits", s.row_hits);
  json.kv("row_misses", s.row_misses);
  json.kv("sends", s.sends);
  json.kv("send_stalls", s.send_stalls);
  json.kv("recvs", s.recvs);
  json.kv("flow_packets", s.flow_packets);
  json.kv("dram_sbes", s.dram_sbes);
  json.kv("dram_dbes", s.dram_dbes);
  json.kv("scrub_steps", s.scrub_steps);
  json.kv("scrub_corrections", s.scrub_corrections);
  json.kv("scrub_uncorrectables", s.scrub_uncorrectables);
  json.kv("vault_failures", s.vault_failures);
  json.kv("vault_remaps", s.vault_remaps);
  json.kv("degraded_drops", s.degraded_drops);
  json.kv("link_crc_errors", s.link_crc_errors);
  json.kv("link_seq_errors", s.link_seq_errors);
  json.kv("link_abort_entries", s.link_abort_entries);
  json.kv("link_irtry_tx", s.link_irtry_tx);
  json.kv("link_irtry_rx", s.link_irtry_rx);
  json.kv("link_pret_tx", s.link_pret_tx);
  json.kv("link_tret_tx", s.link_tret_tx);
  json.kv("link_replayed_flits", s.link_replayed_flits);
  json.kv("link_token_stalls", s.link_token_stalls);
  json.kv("link_retrain_cycles", s.link_retrain_cycles);
  json.kv("link_failures", s.link_failures);
  json.kv("link_tokens_debited", s.link_tokens_debited);
  json.kv("link_tokens_returned", s.link_tokens_returned);
  json.kv("pcm_write_throttle_stalls", s.pcm_write_throttle_stalls);
  json.end_object();
}

void write_device_ras(JsonWriter& json, const Device& dev) {
  json.begin_object();
  json.kv("failed_vaults", dev.ras.failed_vaults);
  json.kv("scrub_cursor", dev.ras.scrub_cursor);
  json.kv("scrub_passes", dev.ras.scrub_passes);
  json.kv("last_error_addr", dev.ras.last_error_addr);
  json.kv("last_error_stat", u64{dev.ras.last_error_stat});
  json.kv("pending_faults", dev.store.fault_count());
  json.end_object();
}

void write_latency_stats(JsonWriter& json, const LatencyStats& s) {
  json.begin_object();
  json.kv("count", s.count);
  json.kv("mean", s.mean());
  json.kv("min", s.count == 0 ? u64{0} : s.min);
  json.kv("max", s.max);
  json.kv("p50", s.percentile(0.50));
  json.kv("p95", s.percentile(0.95));
  json.kv("p99", s.percentile(0.99));
  json.end_object();
}

void write_latency_breakdown(JsonWriter& json, const LifecycleSink& sink) {
  json.key("latency_breakdown").begin_object();
  json.kv("completed", sink.completed());
  json.kv("conflicted", sink.conflicted());
  json.key("classes").begin_object();
  for (usize c = 0; c < kOpClassCount; ++c) {
    const auto cls = static_cast<OpClass>(c);
    json.key(to_string(cls)).begin_object();
    for (usize seg = 0; seg < kLifecycleSegmentCount; ++seg) {
      const auto segment = static_cast<LifecycleSegment>(seg);
      json.key(to_string(segment));
      write_latency_stats(json, sink.stats(cls, segment));
    }
    json.end_object();
  }
  json.end_object();
  json.key("merged").begin_object();
  for (usize seg = 0; seg < kLifecycleSegmentCount; ++seg) {
    const auto segment = static_cast<LifecycleSegment>(seg);
    json.key(to_string(segment));
    write_latency_stats(json, sink.merged(segment));
  }
  json.end_object();
  json.end_object();
}

void write_samples(JsonWriter& json, const MetricsSampler& sampler) {
  json.key("samples").begin_object();
  json.kv("interval", sampler.interval());
  json.key("data").begin_array();
  for (const MetricsSampler::Sample& s : sampler.samples()) {
    json.begin_object();
    json.kv("cycle", s.cycle);
    json.kv("link_rqst", s.link_rqst);
    json.kv("link_rsp", s.link_rsp);
    json.kv("vault_rqst", s.vault_rqst);
    json.kv("vault_rsp", s.vault_rsp);
    json.kv("mode_rsp", s.mode_rsp);
    json.kv("bank_conflicts", s.bank_conflicts);
    json.kv("xbar_rqst_stalls", s.xbar_rqst_stalls);
    json.kv("xbar_rsp_stalls", s.xbar_rsp_stalls);
    json.kv("vault_rsp_stalls", s.vault_rsp_stalls);
    json.kv("send_stalls", s.send_stalls);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_occupancy_track(JsonWriter& json, const OccupancyTrack& t) {
  json.begin_object();
  json.kv("high_water", t.high_water);
  json.kv("samples", t.samples);
  json.kv("mean", t.mean());
  json.key("buckets").begin_array();
  for (const u64 b : t.buckets) json.value(b);
  json.end_array();
  json.end_object();
}

void write_profile(JsonWriter& json, const StageProfiler& prof) {
  json.key("profile").begin_object();
  json.kv("staged_cycles", prof.staged_cycles());
  json.kv("fast_cycles", prof.fast_cycles());
  json.kv("skip_spans", prof.skip_spans());
  json.kv("total_ns", prof.total_ns());
  json.key("stages").begin_object();
  for (usize s = 0; s < kProfileStageCount; ++s) {
    const auto stage = static_cast<ProfileStage>(s);
    json.kv(profile_stage_name(stage), prof.stage_ns(stage));
  }
  json.end_object();
  json.key("devices").begin_array();
  for (u32 d = 0; d < prof.num_devices(); ++d) {
    json.begin_object();
    json.kv("stage1_xbar_ns", prof.device_ns(ProfileStage::Stage1Xbar, d));
    json.kv("stage2_root_xbar_ns",
            prof.device_ns(ProfileStage::Stage2RootXbar, d));
    json.key("vault_ns").begin_array();
    for (u32 v = 0; v < prof.vaults_per_device(); ++v) {
      json.value(prof.vault_ns(d, v));
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_telemetry(JsonWriter& json, const Telemetry& tel) {
  json.key("telemetry").begin_object();
  json.kv("sample_passes", tel.sample_passes());
  json.key("host_tags");
  write_occupancy_track(json, tel.host_tags());
  json.key("devices").begin_array();
  for (u32 d = 0; d < tel.num_devices(); ++d) {
    json.begin_object();
    for (usize t = 0; t < kTelemetryTrackCount; ++t) {
      const auto track = static_cast<TelemetryTrack>(t);
      json.key(telemetry_track_name(track));
      write_occupancy_track(json, tel.track(track, d));
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_flight_recorder(JsonWriter& json, const FlightRecorder& rec) {
  // Summary only: full event dumps go to the text / Chrome-trace renders.
  json.key("flight_recorder").begin_object();
  json.kv("depth", u64{rec.depth()});
  json.key("devices").begin_array();
  for (u32 d = 0; d < rec.num_devices(); ++d) {
    json.begin_object();
    json.kv("recorded", rec.recorded(d));
    json.kv("retained", u64{rec.size(d)});
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string_view map_mode_name(AddrMapMode mode) {
  switch (mode) {
    case AddrMapMode::LowInterleave: return "low_interleave";
    case AddrMapMode::BankFirst: return "bank_first";
    case AddrMapMode::Linear: return "linear";
  }
  return "unknown";
}

}  // namespace

void write_stats_json(std::ostream& os, const Simulator& sim,
                      const PowerConfig& power, const ReportExtras& extras) {
  JsonWriter json(os);
  json.begin_object();
  json.kv("simulator", "hmcsim++");
  json.kv("cycle", sim.now());
  json.kv("cycles_skipped", sim.cycles_skipped());

  if (sim.initialized()) {
    const DeviceConfig& dc = sim.config().device;
    json.key("config").begin_object();
    json.kv("num_devices", u64{sim.num_devices()});
    json.kv("num_links", u64{dc.num_links});
    json.kv("num_vaults", u64{dc.num_vaults()});
    json.kv("banks_per_vault", u64{dc.banks_per_vault});
    json.kv("capacity_bytes", dc.derived_capacity());
    json.kv("xbar_depth", u64{dc.xbar_depth});
    json.kv("vault_depth", u64{dc.vault_depth});
    json.kv("max_block_bytes", dc.max_block_bytes);
    json.kv("map_mode", map_mode_name(dc.map_mode));
    json.kv("bank_busy_cycles", u64{dc.bank_busy_cycles});
    json.kv("xbar_flits_per_cycle", u64{dc.xbar_flits_per_cycle});
    json.kv("vault_schedule",
            dc.vault_schedule == VaultSchedule::BankReady ? "bank_ready"
                                                          : "strict_fifo");
    json.kv("link_error_rate_ppm", u64{dc.link_error_rate_ppm});
    json.kv("model_data", dc.model_data);
    json.kv("dram_sbe_rate_ppm", u64{dc.dram_sbe_rate_ppm});
    json.kv("dram_dbe_rate_ppm", u64{dc.dram_dbe_rate_ppm});
    json.kv("scrub_interval_cycles", u64{dc.scrub_interval_cycles});
    json.kv("scrub_window_bytes", dc.scrub_window_bytes);
    json.kv("vault_fail_threshold", u64{dc.vault_fail_threshold});
    json.kv("failed_vault_mask", dc.failed_vault_mask);
    json.kv("vault_remap", dc.vault_remap);
    json.kv("watchdog_cycles", u64{dc.watchdog_cycles});
    json.kv("link_protocol", dc.link_protocol);
    json.kv("link_tokens", u64{dc.link_tokens});
    json.kv("link_retry_buffer_flits", u64{dc.link_retry_buffer_flits});
    json.kv("link_retry_latency", u64{dc.link_retry_latency});
    json.kv("link_error_burst_len", u64{dc.link_error_burst_len});
    json.kv("link_stuck_interval_cycles", u64{dc.link_stuck_interval_cycles});
    json.kv("link_stuck_window_cycles", u64{dc.link_stuck_window_cycles});
    json.kv("link_fail_threshold", u64{dc.link_fail_threshold});
    json.kv("sim_threads", u64{sim.sim_threads()});
    json.kv("fast_forward", dc.fast_forward);
    json.kv("self_profile", dc.self_profile);
    json.kv("telemetry_interval_cycles", u64{dc.telemetry_interval_cycles});
    json.kv("flight_recorder_depth", u64{dc.flight_recorder_depth});
    json.kv("chaos_invariants", u64{dc.chaos_invariants});
    json.kv("timing_backend", to_string(dc.timing_backend));
    json.key("vault_backends").begin_array();
    for (const auto& [vault, backend] : dc.vault_backends) {
      json.begin_object();
      json.kv("vault", u64{vault});
      json.kv("backend", to_string(backend));
      json.end_object();
    }
    json.end_array();
    json.kv("ddr_tcl", u64{dc.ddr_tcl});
    json.kv("ddr_trcd", u64{dc.ddr_trcd});
    json.kv("ddr_trp", u64{dc.ddr_trp});
    json.kv("ddr_tras", u64{dc.ddr_tras});
    json.kv("pcm_read_cycles", u64{dc.pcm_read_cycles});
    json.kv("pcm_write_cycles", u64{dc.pcm_write_cycles});
    json.kv("pcm_write_gap_cycles", u64{dc.pcm_write_gap_cycles});
    json.end_object();

    json.key("totals");
    write_device_stats(json, sim.total_stats());

    json.key("devices").begin_array();
    for (u32 d = 0; d < sim.num_devices(); ++d) {
      write_device_stats(json, sim.stats(d));
    }
    json.end_array();

    json.key("ras").begin_object();
    json.kv("watchdog_fired", sim.watchdog_fired());
    json.key("devices").begin_array();
    for (u32 d = 0; d < sim.num_devices(); ++d) {
      write_device_ras(json, sim.device(d));
    }
    json.end_array();
    json.end_object();

    json.key("links").begin_array();
    for (const LinkUtilization& u : link_utilization(sim)) {
      json.begin_object();
      json.kv("dev", u64{u.dev});
      json.kv("link", u64{u.link});
      json.kv("rqst_flits", u.rqst_flits);
      json.kv("rsp_flits", u.rsp_flits);
      json.kv("rqst_util", u.rqst_util);
      json.kv("rsp_util", u.rsp_util);
      json.end_object();
    }
    json.end_array();

    const PowerReport p = estimate_power(sim, power);
    json.key("power").begin_object();
    json.kv("dram_nj", p.dram_nj);
    json.kv("logic_nj", p.logic_nj);
    json.kv("link_nj", p.link_nj);
    json.kv("routing_nj", p.routing_nj);
    json.kv("static_nj", p.static_nj);
    json.kv("total_nj", p.total_nj);
    json.kv("average_w", p.average_w);
    json.kv("pj_per_byte", p.pj_per_byte);
    json.kv("elapsed_ns", p.elapsed_ns);
    json.end_object();

    if (extras.lifecycle != nullptr) {
      write_latency_breakdown(json, *extras.lifecycle);
    }
    if (extras.sampler != nullptr) {
      write_samples(json, *extras.sampler);
    }
    if (sim.profiler() != nullptr) write_profile(json, *sim.profiler());
    if (sim.telemetry() != nullptr) write_telemetry(json, *sim.telemetry());
    if (sim.flight_recorder() != nullptr) {
      write_flight_recorder(json, *sim.flight_recorder());
    }
    if (const ChaosEngine* chaos = sim.chaos()) {
      json.key("chaos").begin_object();
      json.kv("plan_events", u64{chaos->plan().events.size()});
      json.kv("cursor", chaos->cursor());
      json.kv("events_applied", chaos->events_applied());
      json.kv("invariant_checks", chaos->invariant_checks());
      json.kv("violated", chaos->violated());
      if (chaos->violated()) {
        json.kv("violation_invariant", chaos->violation().invariant);
        json.kv("violation_cycle", chaos->violation().cycle);
      }
      json.end_object();
    }
  }

  json.end_object();
  os << '\n';
}

}  // namespace hmcsim
