// Queue occupancy probe.
//
// The paper sizes its experiments around queue depths (128 crossbar / 64
// vault slots) and reads contention off stall events.  The probe gives the
// complementary view: a time series of how full each queue class actually
// runs, which is what you need to pick depths for a new workload
// ("transaction efficiency" analysis, §IV.E).
//
// Usage: call sample(sim) once per cycle (or at any coarser cadence you
// like); each due sample snapshots the mean fill fraction of the four
// queue classes across every device.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/simulator.hpp"

namespace hmcsim {

class OccupancyProbe {
 public:
  struct Sample {
    Cycle cycle{0};
    double xbar_rqst_fill{0.0};   ///< mean fill of link request queues
    double xbar_rsp_fill{0.0};    ///< mean fill of link response queues
    double vault_rqst_fill{0.0};  ///< mean fill of vault request queues
    double vault_rsp_fill{0.0};   ///< mean fill of vault response queues
  };

  /// Record one sample every `interval` calls to sample().
  explicit OccupancyProbe(Cycle interval = 1)
      : interval_(interval == 0 ? 1 : interval) {}

  /// Snapshot the simulator if a sample is due at its current cycle.
  void sample(const Simulator& sim);

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }

  /// Column-wise arithmetic means over all samples.
  [[nodiscard]] Sample mean() const;
  /// Column-wise maxima over all samples.
  [[nodiscard]] Sample peak() const;

  /// CSV: cycle,xbar_rqst,xbar_rsp,vault_rqst,vault_rsp
  void write_csv(std::ostream& os) const;

 private:
  Cycle interval_;
  Cycle calls_{0};
  std::vector<Sample> samples_;
};

}  // namespace hmcsim
