// Periodic metrics sampler.
//
// Complements the OccupancyProbe (mean fill fractions) with the raw view a
// dashboard wants: absolute queue occupancies per class plus the cumulative
// stall/conflict counters, snapshotted every N cycles.  Deltas between
// consecutive samples localize *when* contention happened in a run, which
// end-of-run totals cannot.
//
// Attach to a simulator with attach() — it installs the simulator's cycle
// hook so samples land exactly every `interval` cycles without the host
// loop having to count — or call sample() manually at any cadence.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/simulator.hpp"

namespace hmcsim {

class MetricsSampler {
 public:
  struct Sample {
    Cycle cycle{0};
    // Entries currently queued, summed across every device.
    u64 link_rqst{0};   ///< link (crossbar) request queues
    u64 link_rsp{0};    ///< link (crossbar) response queues
    u64 vault_rqst{0};  ///< vault controller request queues
    u64 vault_rsp{0};   ///< vault controller response queues
    u64 mode_rsp{0};    ///< register-access response staging queues
    // Cumulative counters at sample time (monotone; diff adjacent samples
    // for per-interval rates).
    u64 bank_conflicts{0};
    u64 xbar_rqst_stalls{0};
    u64 xbar_rsp_stalls{0};
    u64 vault_rsp_stalls{0};
    u64 send_stalls{0};
  };

  /// Install this sampler as `sim`'s cycle hook, firing every `interval`
  /// cycles (0 detaches).  The sampler must outlive the hook — detach (or
  /// destroy the simulator) before destroying the sampler.
  void attach(Simulator& sim, Cycle interval);

  /// Snapshot the simulator at its current cycle.
  void sample(const Simulator& sim);

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }
  [[nodiscard]] Cycle interval() const { return interval_; }

  void clear() { samples_.clear(); }

  /// CSV with a header row:
  /// cycle,link_rqst,link_rsp,vault_rqst,vault_rsp,mode_rsp,
  /// bank_conflicts,xbar_rqst_stalls,xbar_rsp_stalls,vault_rsp_stalls,
  /// send_stalls
  void write_csv(std::ostream& os) const;

 private:
  Cycle interval_{0};
  std::vector<Sample> samples_;
};

}  // namespace hmcsim
