#include "analysis/power.hpp"

namespace hmcsim {

PowerReport estimate_power(const Simulator& sim, const PowerConfig& config) {
  PowerReport report;
  if (!sim.initialized()) return report;

  u64 bank_bytes = 0;
  u64 link_flits = 0;
  u64 extra_hops = 0;
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    const Device& dev = sim.device(d);
    bank_bytes += dev.stats.bytes_read + dev.stats.bytes_written;
    extra_hops += dev.stats.latency_penalties + dev.stats.route_hops;
    for (const LinkState& link : dev.links) {
      link_flits += link.rqst_flits_forwarded + link.rsp_flits_forwarded;
    }
  }

  report.dram_nj =
      static_cast<double>(bank_bytes) * config.dram_pj_per_byte * 1e-3;
  report.logic_nj =
      static_cast<double>(bank_bytes) * config.logic_pj_per_byte * 1e-3;
  report.link_nj =
      static_cast<double>(link_flits) * config.link_pj_per_flit * 1e-3;
  report.routing_nj =
      static_cast<double>(extra_hops) * config.xbar_hop_pj * 1e-3;

  report.elapsed_ns =
      static_cast<double>(sim.now()) / config.clock_ghz;  // cycles / GHz
  report.static_nj = config.static_w_per_device *
                     static_cast<double>(sim.num_devices()) *
                     report.elapsed_ns;  // W * ns = nJ

  report.total_nj = report.dram_nj + report.logic_nj + report.link_nj +
                    report.routing_nj + report.static_nj;
  if (report.elapsed_ns > 0.0) {
    report.average_w = report.total_nj / report.elapsed_ns;  // nJ/ns = W
  }
  if (bank_bytes > 0) {
    report.pj_per_byte =
        report.total_nj * 1e3 / static_cast<double>(bank_bytes);
  }
  return report;
}

}  // namespace hmcsim
