// Activity-based energy/power estimation.
//
// The 2014 paper leaves power as future work (HMC-Sim's successor grew a
// power model); we provide one in the same activity-counting tradition:
// every retired operation, forwarded FLIT and elapsed cycle contributes
// energy from a configurable coefficient table.  Default coefficients
// follow the published HMC energy story — ~3.7 pJ/bit of DRAM access
// energy inside a ~10.5 pJ/bit total device budget, with the SERDES links
// the dominant non-DRAM consumer.
//
// This is an estimation layer over the always-on statistics, not a circuit
// model; use it for relative comparisons between configurations and
// workloads (which is how the ablation bench applies it).
#pragma once

#include "core/simulator.hpp"

namespace hmcsim {

struct PowerConfig {
  /// DRAM array access energy per byte moved to/from a bank (3.7 pJ/bit).
  double dram_pj_per_byte{29.6};
  /// Crossbar + vault-controller logic energy per byte of bank traffic
  /// (the remainder of the ~10.5 pJ/bit device budget less the SERDES).
  double logic_pj_per_byte{24.0};
  /// SERDES energy per 16-byte FLIT crossing a link (~2 pJ/bit).
  double link_pj_per_flit{256.0};
  /// Extra crossbar traversal energy for non-co-located routing: charged
  /// once per routed-latency penalty event and per chained route hop.
  double xbar_hop_pj{128.0};
  /// Static (leakage + PLL + refresh) power per device, in watts.
  double static_w_per_device{0.85};
  /// Device clock for converting cycles to time.
  double clock_ghz{1.25};
};

struct PowerReport {
  double dram_nj{0.0};
  double logic_nj{0.0};
  double link_nj{0.0};
  double routing_nj{0.0};
  double static_nj{0.0};
  double total_nj{0.0};
  /// Mean power over the simulated interval, in watts.
  double average_w{0.0};
  /// Energy efficiency of the run: total pJ per byte of bank traffic
  /// (infinite when no data moved; reported as 0 in that case).
  double pj_per_byte{0.0};
  /// Simulated wall time in nanoseconds.
  double elapsed_ns{0.0};
};

/// Estimate energy for everything the simulator has executed so far.
[[nodiscard]] PowerReport estimate_power(const Simulator& sim,
                                         const PowerConfig& config = {});

}  // namespace hmcsim
