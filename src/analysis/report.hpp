// Trace post-processing: summaries and CSV emission for the paper's
// evaluation artifacts (Figure 5 series, Table I rows), plus a simple
// bandwidth model.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/simulator.hpp"
#include "core/stats.hpp"
#include "trace/lifecycle.hpp"
#include "trace/series.hpp"

namespace hmcsim {

/// Scalar summary of one Figure 5 run.
struct Fig5Summary {
  Cycle cycles{0};
  u64 total_conflicts{0};
  u64 total_reads{0};
  u64 total_writes{0};
  u64 total_xbar_stalls{0};
  u64 total_latency_penalties{0};
  double mean_conflicts_per_cycle{0.0};
  double mean_reads_per_cycle{0.0};
  double mean_writes_per_cycle{0.0};
  double peak_conflicts_per_cycle{0.0};  ///< per-bucket max, width-normalized
};

[[nodiscard]] Fig5Summary summarize_series(const VaultSeriesSink& series);

/// Emit the Figure 5 series as CSV: one row per bucket with device-wide
/// columns plus per-vault conflict/read/write columns.
void write_fig5_csv(std::ostream& os, const VaultSeriesSink& series);

/// One Table I row.
struct Table1Row {
  std::string label;        ///< e.g. "4-Link; 8-Bank; 2GB"
  Cycle cycles{0};          ///< simulated runtime in clock cycles
  u64 requests{0};
  DeviceStats stats{};
};

/// Render Table I (with speedup columns relative to the first row) as
/// fixed-width text, mirroring the paper's table plus the derived speedups
/// the text reports (banks: 8->16 at equal links; links: 4->8 at equal
/// banks).
[[nodiscard]] std::string format_table1(const std::vector<Table1Row>& rows);

/// Effective data bandwidth in GB/s for `bytes` moved over `cycles` device
/// clocks at `clock_ghz` (HMC vault-logic domain; 1.25 GHz by default).
[[nodiscard]] double effective_bandwidth_gbs(u64 bytes, Cycle cycles,
                                             double clock_ghz = 1.25);

/// Crossbar FLIT budget equivalent to a physical SERDES link: `lanes`
/// bidirectional lanes at `gbps` each, against the device clock.  A 16-lane
/// 10 Gbps link at 1.25 GHz moves exactly one 16-byte FLIT per clock per
/// direction (spec §III.A rates: 10 / 12.5 / 15 Gbps).
[[nodiscard]] double link_flits_per_cycle(u32 lanes, double gbps,
                                          double clock_ghz = 1.25);

/// Per-link crossbar utilization over a run.
struct LinkUtilization {
  u32 dev{0};
  u32 link{0};
  u64 rqst_flits{0};
  u64 rsp_flits{0};
  double rqst_util{0.0};  ///< fraction of the per-cycle request budget used
  double rsp_util{0.0};
};

/// Utilization of every link of every device at the simulator's current
/// clock, against its configured xbar_flits_per_cycle budget.
[[nodiscard]] std::vector<LinkUtilization> link_utilization(
    const Simulator& sim);

/// Render the per-segment latency breakdown as a fixed-width text table:
/// one row per lifecycle segment (all classes merged) with count, mean and
/// p50/p95/p99, followed by per-class Total rows.  Empty-string when the
/// sink observed no packets.
[[nodiscard]] std::string format_latency_breakdown(const LifecycleSink& sink);

/// Render the self-profiler as a fixed-width text table: one row per clock
/// stage with wall time, share of the total, and ns per executed cycle,
/// followed by a per-device breakdown (crossbar-stage shard time plus the
/// summed and hottest vault).  Empty string when profiling is off.
[[nodiscard]] std::string format_profile_table(const Simulator& sim);

/// Render occupancy telemetry as a fixed-width text table: high-water mark
/// and mean occupancy per track per device, plus the host tag table.  Empty
/// string when telemetry is off or never sampled.
[[nodiscard]] std::string format_telemetry_table(const Simulator& sim);

/// Jain's fairness index over per-vault retirement counts, in (0, 1]:
/// 1.0 means every vault served the same number of requests, 1/num_vaults
/// means one vault served everything.  The quantitative form of the
/// paper's "naively balance the traffic across all possible injection
/// points" goal.
[[nodiscard]] double vault_load_fairness(const Simulator& sim);

}  // namespace hmcsim
