#include "analysis/sampler.hpp"

#include <ostream>

namespace hmcsim {

void MetricsSampler::attach(Simulator& sim, Cycle interval) {
  interval_ = interval;
  if (interval == 0) {
    sim.set_cycle_hook(0, {});
    return;
  }
  sim.set_cycle_hook(interval,
                     [this](const Simulator& s) { sample(s); });
}

void MetricsSampler::sample(const Simulator& sim) {
  Sample s;
  s.cycle = sim.now();
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    const Device& dev = sim.device(d);
    for (const LinkState& link : dev.links) {
      s.link_rqst += link.rqst.size();
      s.link_rsp += link.rsp.size();
    }
    for (const VaultState& vault : dev.vaults) {
      s.vault_rqst += vault.rqst.size();
      s.vault_rsp += vault.rsp.size();
    }
    s.mode_rsp += dev.mode_rsp.size();
    s.bank_conflicts += dev.stats.bank_conflicts;
    s.xbar_rqst_stalls += dev.stats.xbar_rqst_stalls;
    s.xbar_rsp_stalls += dev.stats.xbar_rsp_stalls;
    s.vault_rsp_stalls += dev.stats.vault_rsp_stalls;
    s.send_stalls += dev.stats.send_stalls;
  }
  samples_.push_back(s);
}

void MetricsSampler::write_csv(std::ostream& os) const {
  os << "cycle,link_rqst,link_rsp,vault_rqst,vault_rsp,mode_rsp,"
        "bank_conflicts,xbar_rqst_stalls,xbar_rsp_stalls,vault_rsp_stalls,"
        "send_stalls\n";
  for (const Sample& s : samples_) {
    os << s.cycle << ',' << s.link_rqst << ',' << s.link_rsp << ','
       << s.vault_rqst << ',' << s.vault_rsp << ',' << s.mode_rsp << ','
       << s.bank_conflicts << ',' << s.xbar_rqst_stalls << ','
       << s.xbar_rsp_stalls << ',' << s.vault_rsp_stalls << ','
       << s.send_stalls << '\n';
  }
}

}  // namespace hmcsim
