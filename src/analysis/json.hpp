// Machine-readable run reports.
//
// Downstream tooling (plotting scripts, regression dashboards) wants the
// simulator's configuration, counters, link utilization and energy estimate
// in one structured document.  `JsonWriter` is a minimal, dependency-free
// streaming JSON emitter with correct string escaping and nesting checks;
// `write_stats_json` renders the full simulator report with it.
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "analysis/power.hpp"
#include "analysis/sampler.hpp"
#include "core/simulator.hpp"
#include "trace/lifecycle.hpp"

namespace hmcsim {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  /// Without this overload, string literals would convert to bool.
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }

  /// key+value conveniences.
  JsonWriter& kv(std::string_view name, u64 v) { return key(name).value(v); }
  JsonWriter& kv(std::string_view name, double v) {
    return key(name).value(v);
  }
  JsonWriter& kv(std::string_view name, bool v) { return key(name).value(v); }
  JsonWriter& kv(std::string_view name, std::string_view v) {
    return key(name).value(v);
  }
  JsonWriter& kv(std::string_view name, const char* v) {
    return key(name).value(std::string_view{v});
  }

  /// True when every container has been closed.
  [[nodiscard]] bool balanced() const { return depth_ == 0; }

 private:
  void separator();
  void escape(std::string_view text);

  std::ostream* os_;
  int depth_{0};
  bool need_comma_{false};
};

/// Optional observability attachments for the JSON report.  Null members
/// simply omit their section.
struct ReportExtras {
  const LifecycleSink* lifecycle{nullptr};  ///< "latency_breakdown" section
  const MetricsSampler* sampler{nullptr};   ///< "samples" section
};

/// Full simulator report: configuration, per-device statistics, per-link
/// utilization, and the activity-based energy estimate — plus the
/// per-segment latency breakdown and periodic metric samples when attached.
void write_stats_json(std::ostream& os, const Simulator& sim,
                      const PowerConfig& power = {},
                      const ReportExtras& extras = {});

}  // namespace hmcsim
