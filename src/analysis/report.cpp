#include "analysis/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hmcsim {

Fig5Summary summarize_series(const VaultSeriesSink& series) {
  Fig5Summary s;
  const auto& buckets = series.buckets();
  if (buckets.empty()) return s;
  s.cycles = static_cast<Cycle>(buckets.size()) * series.bucket_width();
  s.total_conflicts = series.total_conflicts();
  s.total_reads = series.total_reads();
  s.total_writes = series.total_writes();
  s.total_xbar_stalls = series.total_xbar_stalls();
  s.total_latency_penalties = series.total_latency_penalties();
  const double cycles = static_cast<double>(s.cycles);
  s.mean_conflicts_per_cycle = static_cast<double>(s.total_conflicts) / cycles;
  s.mean_reads_per_cycle = static_cast<double>(s.total_reads) / cycles;
  s.mean_writes_per_cycle = static_cast<double>(s.total_writes) / cycles;

  const double width = static_cast<double>(series.bucket_width());
  for (const auto& b : buckets) {
    u64 conflicts = 0;
    for (const u32 v : b.conflicts) conflicts += v;
    s.peak_conflicts_per_cycle = std::max(
        s.peak_conflicts_per_cycle, static_cast<double>(conflicts) / width);
  }
  return s;
}

void write_fig5_csv(std::ostream& os, const VaultSeriesSink& series) {
  os << "cycle,xbar_stalls,latency_penalties,conflicts,reads,writes";
  for (u32 v = 0; v < series.vaults(); ++v) os << ",conflicts_v" << v;
  for (u32 v = 0; v < series.vaults(); ++v) os << ",reads_v" << v;
  for (u32 v = 0; v < series.vaults(); ++v) os << ",writes_v" << v;
  os << '\n';
  for (const auto& b : series.buckets()) {
    u64 conflicts = 0, reads = 0, writes = 0;
    for (const u32 x : b.conflicts) conflicts += x;
    for (const u32 x : b.reads) reads += x;
    for (const u32 x : b.writes) writes += x;
    os << b.first_cycle << ',' << b.xbar_stalls << ',' << b.latency_penalties
       << ',' << conflicts << ',' << reads << ',' << writes;
    for (const u32 x : b.conflicts) os << ',' << x;
    for (const u32 x : b.reads) os << ',' << x;
    for (const u32 x : b.writes) os << ',' << x;
    os << '\n';
  }
}

std::string format_table1(const std::vector<Table1Row>& rows) {
  std::ostringstream os;
  os << "Simulation Runtime in Clock Cycles\n";
  os << std::left << std::setw(28) << "Device Configuration" << std::right
     << std::setw(16) << "Cycles" << std::setw(12) << "Speedup" << '\n';
  const double base =
      rows.empty() ? 1.0 : static_cast<double>(rows.front().cycles);
  for (const auto& row : rows) {
    os << std::left << std::setw(28) << row.label << std::right
       << std::setw(16) << row.cycles << std::setw(11) << std::fixed
       << std::setprecision(3)
       << (row.cycles == 0 ? 0.0 : base / static_cast<double>(row.cycles))
       << "x\n";
  }
  return os.str();
}

std::string format_latency_breakdown(const LifecycleSink& sink) {
  if (sink.completed() == 0) return {};
  std::ostringstream os;
  os << "Latency Breakdown (cycles per packet)\n";
  os << std::left << std::setw(16) << "Segment" << std::right << std::setw(10)
     << "Count" << std::setw(10) << "Mean" << std::setw(8) << "p50"
     << std::setw(8) << "p95" << std::setw(8) << "p99" << '\n';
  const auto row = [&os](std::string_view label, const LatencyStats& s) {
    if (s.count == 0) return;
    os << std::left << std::setw(16) << label << std::right << std::setw(10)
       << s.count << std::setw(10) << std::fixed << std::setprecision(1)
       << s.mean() << std::setw(8) << std::setprecision(0) << s.percentile(0.50)
       << std::setw(8) << s.percentile(0.95) << std::setw(8)
       << s.percentile(0.99) << '\n';
  };
  for (usize seg = 0; seg < kLifecycleSegmentCount; ++seg) {
    row(to_string(static_cast<LifecycleSegment>(seg)),
        sink.merged(static_cast<LifecycleSegment>(seg)));
  }
  for (usize c = 0; c < kOpClassCount; ++c) {
    const auto cls = static_cast<OpClass>(c);
    std::string label = "total (";
    label += to_string(cls);
    label += ')';
    row(label, sink.stats(cls, LifecycleSegment::Total));
  }
  os << "conflicted packets: " << sink.conflicted() << " / "
     << sink.completed() << '\n';
  return os.str();
}

std::string format_profile_table(const Simulator& sim) {
  const StageProfiler* prof = sim.profiler();
  if (prof == nullptr) return {};
  const u64 total_ns = prof->total_ns();
  const u64 cycles = prof->staged_cycles() + prof->fast_cycles();
  std::ostringstream os;
  os << "Self-Profile (clock-engine wall time)\n";
  os << std::left << std::setw(20) << "Stage" << std::right << std::setw(14)
     << "Time(ms)" << std::setw(8) << "%" << std::setw(12) << "ns/cycle"
     << '\n';
  const auto row = [&](std::string_view label, u64 ns) {
    os << std::left << std::setw(20) << label << std::right << std::setw(14)
       << std::fixed << std::setprecision(3)
       << static_cast<double>(ns) / 1e6 << std::setw(8)
       << std::setprecision(1)
       << (total_ns == 0 ? 0.0
                         : 100.0 * static_cast<double>(ns) /
                               static_cast<double>(total_ns))
       << std::setw(12) << std::setprecision(1)
       << (cycles == 0 ? 0.0
                       : static_cast<double>(ns) / static_cast<double>(cycles))
       << '\n';
  };
  for (usize s = 0; s < kProfileStageCount; ++s) {
    const auto stage = static_cast<ProfileStage>(s);
    row(profile_stage_name(stage), prof->stage_ns(stage));
  }
  row("total", total_ns);
  os << "staged cycles: " << prof->staged_cycles()
     << "   fast cycles: " << prof->fast_cycles()
     << "   skip spans: " << prof->skip_spans() << '\n';

  os << '\n' << "Per-device shard time (ms)\n";
  os << std::left << std::setw(6) << "Dev" << std::right << std::setw(14)
     << "stage1_xbar" << std::setw(14) << "stage2_xbar" << std::setw(14)
     << "vaults(sum)" << std::setw(16) << "hottest vault" << '\n';
  for (u32 d = 0; d < prof->num_devices(); ++d) {
    u64 vault_sum = 0, hot_ns = 0;
    u32 hot_vault = 0;
    for (u32 v = 0; v < prof->vaults_per_device(); ++v) {
      const u64 ns = prof->vault_ns(d, v);
      vault_sum += ns;
      if (ns > hot_ns) {
        hot_ns = ns;
        hot_vault = v;
      }
    }
    os << std::left << std::setw(6) << d << std::right << std::setw(14)
       << std::fixed << std::setprecision(3)
       << static_cast<double>(prof->device_ns(ProfileStage::Stage1Xbar, d)) /
              1e6
       << std::setw(14)
       << static_cast<double>(
              prof->device_ns(ProfileStage::Stage2RootXbar, d)) /
              1e6
       << std::setw(14) << static_cast<double>(vault_sum) / 1e6
       << std::setw(10) << static_cast<double>(hot_ns) / 1e6 << " (v"
       << hot_vault << ")\n";
  }
  return os.str();
}

std::string format_telemetry_table(const Simulator& sim) {
  const Telemetry* tel = sim.telemetry();
  if (tel == nullptr || tel->sample_passes() == 0) return {};
  std::ostringstream os;
  os << "Occupancy Telemetry (" << tel->sample_passes()
     << " sample passes)\n";
  os << std::left << std::setw(20) << "Track" << std::right << std::setw(6)
     << "Dev" << std::setw(12) << "HighWater" << std::setw(12) << "Mean"
     << std::setw(12) << "Samples" << '\n';
  const auto row = [&](std::string_view label, std::string_view dev,
                       const OccupancyTrack& t) {
    os << std::left << std::setw(20) << label << std::right << std::setw(6)
       << dev << std::setw(12) << t.high_water << std::setw(12) << std::fixed
       << std::setprecision(2) << t.mean() << std::setw(12) << t.samples
       << '\n';
  };
  for (u32 d = 0; d < tel->num_devices(); ++d) {
    const std::string dev = std::to_string(d);
    for (usize t = 0; t < kTelemetryTrackCount; ++t) {
      const auto track = static_cast<TelemetryTrack>(t);
      row(telemetry_track_name(track), dev, tel->track(track, d));
    }
  }
  row("host_tags", "-", tel->host_tags());
  return os.str();
}

double effective_bandwidth_gbs(u64 bytes, Cycle cycles, double clock_ghz) {
  if (cycles == 0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(cycles) * clock_ghz;
}

double link_flits_per_cycle(u32 lanes, double gbps, double clock_ghz) {
  // lanes * gbps Gbit/s  /  (clock_ghz GHz * 128 bit/FLIT)
  return static_cast<double>(lanes) * gbps / (clock_ghz * 128.0);
}

double vault_load_fairness(const Simulator& sim) {
  if (!sim.initialized()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  usize n = 0;
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    for (const VaultState& vault : sim.device(d).vaults) {
      const double load = static_cast<double>(vault.rqst.stats().total_pops);
      sum += load;
      sum_sq += load * load;
      ++n;
    }
  }
  if (sum == 0.0 || n == 0) return 0.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

std::vector<LinkUtilization> link_utilization(const Simulator& sim) {
  std::vector<LinkUtilization> result;
  if (!sim.initialized() || sim.now() == 0) return result;
  const double budget =
      static_cast<double>(sim.config().device.xbar_flits_per_cycle) *
      static_cast<double>(sim.now());
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    const Device& dev = sim.device(d);
    for (u32 l = 0; l < sim.config().device.num_links; ++l) {
      LinkUtilization u;
      u.dev = d;
      u.link = l;
      u.rqst_flits = dev.links[l].rqst_flits_forwarded;
      u.rsp_flits = dev.links[l].rsp_flits_forwarded;
      u.rqst_util = static_cast<double>(u.rqst_flits) / budget;
      u.rsp_util = static_cast<double>(u.rsp_flits) / budget;
      result.push_back(u);
    }
  }
  return result;
}

}  // namespace hmcsim
