// Chrome-trace (Trace Event Format) export of packet lifecycles.
//
// Renders every completed packet as a chain of duration ("ph":"X") events
// across per-device link and vault tracks, connected by flow arrows, in
// the JSON format chrome://tracing and Perfetto load directly:
//
//   pid  = cube id
//   tid  = link index (xbar + drain segments) or
//          kVaultTidBase + vault index (queue/conflict/response segments)
//   ts   = stamp cycle, dur = segment length (1 cycle == 1 "microsecond")
//
// The emitter streams: each complete() appends the packet's events, and
// finish() closes the JSON document (also invoked by flush()).  Output is
// a single JSON object {"traceEvents": [...], ...} — the format's
// canonical framing.
#pragma once

#include <iosfwd>
#include <vector>

#include "trace/lifecycle.hpp"

namespace hmcsim {

class ChromeTraceSink final : public LifecycleObserver {
 public:
  /// tids for vault tracks start here so they sort after link tracks.
  static constexpr u32 kVaultTidBase = 1000;

  /// The stream must outlive the sink.  The document is opened eagerly so
  /// an empty run still produces valid JSON.
  explicit ChromeTraceSink(std::ostream& os);
  ~ChromeTraceSink() override;

  void complete(const PacketLifecycle& lc) override;

  /// Close the JSON document (idempotent).  After this, further
  /// complete() calls are ignored.
  void finish();
  void flush() override { finish(); }

  [[nodiscard]] u64 packets_emitted() const { return packets_; }

 private:
  void emit_event(const char* name, char phase, Cycle ts, Cycle dur, u32 pid,
                  u32 tid, const PacketLifecycle& lc, u64 flow_id,
                  bool flow_end);
  void ensure_track_metadata(u32 dev, u32 tid, const char* kind, u32 index);

  std::ostream* os_;
  bool finished_{false};
  bool first_event_{true};
  u64 packets_{0};
  /// Track-metadata dedup: (dev, tid) pairs already named.
  std::vector<u64> named_tracks_;
};

}  // namespace hmcsim
