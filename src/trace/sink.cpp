#include "trace/sink.hpp"

#include <ostream>
#include <sstream>

namespace hmcsim {

std::string_view to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::BankConflict: return "BANK_CONFLICT";
    case TraceEvent::XbarRqstStall: return "XBAR_RQST_STALL";
    case TraceEvent::XbarRspStall: return "XBAR_RSP_STALL";
    case TraceEvent::LatencyPenalty: return "LATENCY_PENALTY";
    case TraceEvent::Misroute: return "MISROUTE";
    case TraceEvent::VaultRspStall: return "VAULT_RSP_STALL";
    case TraceEvent::ReadRequest: return "RD_REQUEST";
    case TraceEvent::WriteRequest: return "WR_REQUEST";
    case TraceEvent::AtomicRequest: return "ATOMIC_REQUEST";
    case TraceEvent::ModeRequest: return "MODE_REQUEST";
    case TraceEvent::CustomRequest: return "CMC_REQUEST";
    case TraceEvent::ResponseRegistered: return "RESPONSE";
    case TraceEvent::ErrorResponse: return "ERROR_RESPONSE";
    case TraceEvent::RouteHop: return "ROUTE_HOP";
    case TraceEvent::PacketSend: return "SEND";
    case TraceEvent::PacketRecv: return "RECV";
    case TraceEvent::VaultArrival: return "VAULT_ARRIVAL";
    case TraceEvent::Count: break;
  }
  return "UNKNOWN";
}

TraceLevel level_for(TraceEvent e) {
  switch (e) {
    case TraceEvent::BankConflict:
    case TraceEvent::XbarRqstStall:
    case TraceEvent::XbarRspStall:
    case TraceEvent::LatencyPenalty:
    case TraceEvent::Misroute:
    case TraceEvent::VaultRspStall:
    case TraceEvent::ErrorResponse:
      return TraceLevel::Stalls;
    case TraceEvent::ReadRequest:
    case TraceEvent::WriteRequest:
    case TraceEvent::AtomicRequest:
    case TraceEvent::ModeRequest:
    case TraceEvent::CustomRequest:
    case TraceEvent::ResponseRegistered:
      return TraceLevel::Events;
    case TraceEvent::RouteHop:
    case TraceEvent::PacketSend:
    case TraceEvent::PacketRecv:
    case TraceEvent::VaultArrival:
    case TraceEvent::Count:
      return TraceLevel::SubCycle;
  }
  return TraceLevel::SubCycle;
}

namespace {

void append_coord(std::ostringstream& os, u32 value) {
  if (value == kNoCoord) {
    os << '-';
  } else {
    os << value;
  }
}

}  // namespace

std::string TextSink::format(const TraceRecord& rec) {
  std::ostringstream os;
  os << "HMCSIM_TRACE : " << rec.cycle << " : s" << static_cast<int>(rec.stage)
     << " : " << to_string(rec.event) << " : ";
  append_coord(os, rec.dev);
  os << ':';
  append_coord(os, rec.link);
  os << ':';
  append_coord(os, rec.quad);
  os << ':';
  append_coord(os, rec.vault);
  os << ':';
  append_coord(os, rec.bank);
  os << " : 0x" << std::hex << rec.addr << std::dec << " : " << rec.tag
     << " : " << to_string(rec.cmd);
  return os.str();
}

void TextSink::record(const TraceRecord& rec) {
  *os_ << format(rec) << '\n';
}

void TextSink::flush() { os_->flush(); }

void MemorySink::record(const TraceRecord& rec) {
  ++total_;
  if (max_records_ != 0 && records_.size() >= max_records_) {
    // Keep the most recent window: overwrite in ring fashion.
    records_[static_cast<usize>(total_ - 1) % max_records_] = rec;
    return;
  }
  records_.push_back(rec);
}

}  // namespace hmcsim
