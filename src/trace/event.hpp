// Trace event taxonomy (paper §IV.E).
//
// Every internal sub-cycle operation can be recorded: each record carries
// its *physical locality* (device / link / quad / vault / bank, with ~0
// meaning "not applicable") and the internal clock tick at which the event
// was raised, so entire application memory traces can be revisited and
// analyzed for accuracy, latency characteristics, bandwidth utilization and
// transaction efficiency.
#pragma once

#include <string_view>

#include "common/types.hpp"
#include "packet/command.hpp"

namespace hmcsim {

enum class TraceEvent : u8 {
  /// A vault request queue holds a packet whose bank collides with an
  /// earlier packet or a busy bank (sub-cycle stage 3).
  BankConflict,
  /// A crossbar arbiter could not route a request to its target vault
  /// because the vault request queue had no open slot (stages 1-2).
  XbarRqstStall,
  /// A crossbar response queue was full when a vault tried to register a
  /// response (stage 5).
  XbarRspStall,
  /// A request arrived on a link that is not co-located with the
  /// destination quadrant: a routed-latency penalty is paid (stages 1-2).
  LatencyPenalty,
  /// A packet's destination cube is unreachable from this device; an error
  /// response is generated (deliberate misconfiguration support).
  Misroute,
  /// A vault could not accept a response into its response queue and the
  /// request stayed queued (stage 4 backpressure).
  VaultRspStall,
  /// A memory read request retired at a bank (stage 4).
  ReadRequest,
  /// A memory write request retired at a bank (stage 4).
  WriteRequest,
  /// A read-modify-write (atomic / bit-write) retired at a bank (stage 4).
  AtomicRequest,
  /// A MODE_READ / MODE_WRITE register access was performed (stage 4).
  ModeRequest,
  /// A registered custom (CMC) command retired at a bank (stage 4).
  CustomRequest,
  /// A response packet was registered with a crossbar response queue
  /// (stage 5).
  ResponseRegistered,
  /// An in-band error response was generated (ERRSTAT != 0).
  ErrorResponse,
  /// A packet was forwarded one hop toward another cube (chaining).
  RouteHop,
  /// Host-facing send accepted a packet into a crossbar request queue.
  PacketSend,
  /// Host-facing recv drained a packet from a crossbar response queue.
  PacketRecv,
  /// The crossbar arbiter routed a request into its destination vault
  /// request queue (stages 1-2): the lifecycle Xbar -> VaultQueue edge.
  VaultArrival,

  Count,
};

inline constexpr usize kTraceEventCount = static_cast<usize>(TraceEvent::Count);

[[nodiscard]] std::string_view to_string(TraceEvent e);

/// Sentinel for locality coordinates that do not apply to an event.
inline constexpr u32 kNoCoord = ~u32{0};

/// One trace record.  POD; sinks may retain millions of these.
struct TraceRecord {
  TraceEvent event{TraceEvent::Count};
  u8 stage{0};  ///< sub-cycle stage 1..6 that raised the event (0 = API edge)
  Cycle cycle{0};
  u32 dev{kNoCoord};
  u32 link{kNoCoord};
  u32 quad{kNoCoord};
  u32 vault{kNoCoord};
  u32 bank{kNoCoord};
  PhysAddr addr{0};
  Tag tag{0};
  Command cmd{Command::Null};
};

/// Trace verbosity.  Higher levels strictly include lower ones.
enum class TraceLevel : u8 {
  Off = 0,      ///< nothing recorded
  Stalls = 1,   ///< stalls, conflicts, latency penalties, errors
  Events = 2,   ///< + every retired memory operation and response
  SubCycle = 3, ///< + per-hop routing and host send/recv edges
};

/// Minimum level at which each event class is recorded.
[[nodiscard]] TraceLevel level_for(TraceEvent e);

}  // namespace hmcsim
