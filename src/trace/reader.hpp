// Trace reader: parses the canonical text trace format back into
// TraceRecords, so "entire application memory traces can be revisited and
// analyzed for accuracy, latency characteristics, bandwidth utilization and
// overall transaction efficiency" (paper §IV.E) — including traces written
// by earlier runs or other tools emitting the same format.
//
// The format (see TextSink::format) is one record per line:
//   HMCSIM_TRACE : <cycle> : s<stage> : <EVENT> : d:l:q:v:b : 0x<addr>
//     : <tag> : <CMD>
// with `-` for not-applicable locality coordinates.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>

#include "trace/sink.hpp"

namespace hmcsim {

/// Parse one trace line.  Returns nullopt for malformed lines (including
/// non-trace lines, which interleaved logs commonly contain).
[[nodiscard]] std::optional<TraceRecord> parse_trace_line(
    std::string_view line);

/// Reverse lookups for the symbolic fields.
[[nodiscard]] std::optional<TraceEvent> trace_event_from_string(
    std::string_view name);
[[nodiscard]] std::optional<Command> command_from_string(
    std::string_view name);

/// Stream every parseable record from `in` into `sink`.  Returns the number
/// of records replayed; `malformed_lines` (when non-null) receives the
/// count of lines that did not parse.
usize replay_trace(std::istream& in, TraceSink& sink,
                   usize* malformed_lines = nullptr);

}  // namespace hmcsim
