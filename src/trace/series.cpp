#include "trace/series.hpp"

namespace hmcsim {

VaultSeriesSink::VaultSeriesSink(u32 vaults, Cycle bucket_width,
                                 u32 dev_filter)
    : vaults_(vaults),
      bucket_width_(bucket_width == 0 ? 1 : bucket_width),
      dev_filter_(dev_filter) {}

VaultSeriesSink::Bucket& VaultSeriesSink::bucket_for(Cycle cycle) {
  const usize index = static_cast<usize>(cycle / bucket_width_);
  while (buckets_.size() <= index) {
    Bucket b;
    b.first_cycle = static_cast<Cycle>(buckets_.size()) * bucket_width_;
    b.conflicts.assign(vaults_, 0);
    b.reads.assign(vaults_, 0);
    b.writes.assign(vaults_, 0);
    buckets_.push_back(std::move(b));
  }
  return buckets_[index];
}

void VaultSeriesSink::record(const TraceRecord& rec) {
  if (dev_filter_ != kNoCoord && rec.dev != dev_filter_) return;
  switch (rec.event) {
    case TraceEvent::BankConflict:
      if (rec.vault < vaults_) ++bucket_for(rec.cycle).conflicts[rec.vault];
      break;
    case TraceEvent::ReadRequest:
      if (rec.vault < vaults_) ++bucket_for(rec.cycle).reads[rec.vault];
      break;
    case TraceEvent::WriteRequest:
    case TraceEvent::AtomicRequest:
    case TraceEvent::CustomRequest:
      if (rec.vault < vaults_) ++bucket_for(rec.cycle).writes[rec.vault];
      break;
    case TraceEvent::XbarRqstStall:
      ++bucket_for(rec.cycle).xbar_stalls;
      break;
    case TraceEvent::LatencyPenalty:
      ++bucket_for(rec.cycle).latency_penalties;
      break;
    default:
      break;
  }
}

u64 VaultSeriesSink::total_conflicts() const {
  u64 sum = 0;
  for (const auto& b : buckets_) {
    for (const u32 v : b.conflicts) sum += v;
  }
  return sum;
}

u64 VaultSeriesSink::total_reads() const {
  u64 sum = 0;
  for (const auto& b : buckets_) {
    for (const u32 v : b.reads) sum += v;
  }
  return sum;
}

u64 VaultSeriesSink::total_writes() const {
  u64 sum = 0;
  for (const auto& b : buckets_) {
    for (const u32 v : b.writes) sum += v;
  }
  return sum;
}

u64 VaultSeriesSink::total_xbar_stalls() const {
  u64 sum = 0;
  for (const auto& b : buckets_) sum += b.xbar_stalls;
  return sum;
}

u64 VaultSeriesSink::total_latency_penalties() const {
  u64 sum = 0;
  for (const auto& b : buckets_) sum += b.latency_penalties;
  return sum;
}

}  // namespace hmcsim
