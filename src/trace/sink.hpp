// Trace sinks: destinations for trace records.
//
// The paper lets users designate "the target output file buffers"; we
// generalize to a sink interface so benches can aggregate in memory
// (the paper's full-verbosity text traces ran to 40 GB) while tests and
// examples can still write the classic text format.
#pragma once

#include <array>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace hmcsim {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& rec) = 0;
  virtual void flush() {}
};

/// Formats one record per line into a std::ostream, in the spirit of the
/// original HMC-Sim text traces:
///   `HMCSIM_TRACE : <cycle> : <stage> : <EVENT> : dev:link:quad:vault:bank
///    : addr : tag : cmd`
class TextSink final : public TraceSink {
 public:
  /// The stream must outlive the sink.
  explicit TextSink(std::ostream& os) : os_(&os) {}

  void record(const TraceRecord& rec) override;
  void flush() override;

  /// Render a record to the canonical text form (used by tests).
  static std::string format(const TraceRecord& rec);

 private:
  std::ostream* os_;
};

/// Buffers records in memory, optionally bounded (oldest records are
/// dropped once `max_records` is reached, keeping the most recent window).
class MemorySink final : public TraceSink {
 public:
  explicit MemorySink(usize max_records = 0) : max_records_(max_records) {}

  void record(const TraceRecord& rec) override;

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] u64 total_recorded() const { return total_; }
  void clear() {
    records_.clear();
    total_ = 0;
  }

 private:
  usize max_records_;
  u64 total_{0};
  std::vector<TraceRecord> records_;
};

/// Counts records per event kind; O(1) memory regardless of run length.
class CountingSink final : public TraceSink {
 public:
  void record(const TraceRecord& rec) override {
    ++counts_[static_cast<usize>(rec.event)];
  }

  [[nodiscard]] u64 count(TraceEvent e) const {
    return counts_[static_cast<usize>(e)];
  }
  [[nodiscard]] u64 total() const {
    u64 sum = 0;
    for (const u64 c : counts_) sum += c;
    return sum;
  }
  void clear() { counts_.fill(0); }

 private:
  std::array<u64, kTraceEventCount> counts_{};
};

}  // namespace hmcsim
