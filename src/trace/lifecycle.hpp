// Packet-lifecycle observability: per-stage latency attribution.
//
// Every in-flight request is stamped with the cycle at which it crossed
// each pipeline stage (see simulator.hpp's stage list):
//
//   inject          host send() accepted the packet into a crossbar
//                   arbitration queue                         (API edge)
//   vault_arrive    the crossbar arbiter routed it into the destination
//                   vault request queue                       (stage 1/2)
//   first_conflict  the first cycle stage 3 recognized its bank as busy
//                   or contended (0 = never conflicted)       (stage 3)
//   retire          the bank served the request               (stage 4)
//   rsp_register    the response was registered with a crossbar response
//                   queue at the serving device               (stage 5)
//   drain           host recv() drained the response          (API edge)
//
// The stamps decompose end-to-end latency into five contiguous segments
// (Xbar, VaultQueue, BankConflict, Response, Drain) whose sum is exactly
// the driver-observed send->recv latency — the attribution layer hardware
// characterization studies derive by inference on real parts.
#pragma once

#include <string_view>

#include "common/latency.hpp"
#include "common/types.hpp"
#include "packet/command.hpp"

namespace hmcsim {

/// The complete stamp record one packet accumulates between send() and
/// recv().  Carried on RequestEntry, copied onto the ResponseEntry at
/// bank retire, and dispatched to observers at host drain.
struct PacketLifecycle {
  Cycle inject{0};
  Cycle vault_arrive{0};
  Cycle first_conflict{0};  ///< 0 = no conflict was ever recognized
  Cycle retire{0};
  Cycle rsp_register{0};
  Cycle drain{0};
  /// Locality and identity of the serving access, fixed at retire.
  u32 dev{0};
  u32 vault{0};
  u32 link{0};  ///< home (injection/drain) host link
  Tag tag{0};
  Command cmd{Command::Null};  ///< the *request* command
};

/// Contiguous latency segments derived from the stamps.  Total is the
/// end-to-end send->recv latency and equals the sum of the other five.
enum class LifecycleSegment : u8 {
  Xbar,          ///< inject -> vault_arrive (arbitration queues + hops)
  VaultQueue,    ///< vault_arrive -> first conflict (or retire)
  BankConflict,  ///< first conflict -> retire (0 when never conflicted)
  Response,      ///< retire -> rsp_register (vault response queue wait)
  Drain,         ///< rsp_register -> drain (response queue + host)
  Total,         ///< inject -> drain
  Count,
};

inline constexpr usize kLifecycleSegmentCount =
    static_cast<usize>(LifecycleSegment::Count);

[[nodiscard]] std::string_view to_string(LifecycleSegment s);

/// Request classes the aggregation splits on.
enum class OpClass : u8 { Read, Write, Atomic, Other, Count };

inline constexpr usize kOpClassCount = static_cast<usize>(OpClass::Count);

[[nodiscard]] std::string_view to_string(OpClass c);

/// Classify a request command (Other covers CMC and anything unexpected).
[[nodiscard]] OpClass op_class_of(Command cmd);

/// Cycle length of one segment, computed with saturating subtraction so a
/// partially stamped record can never produce a wrapped-around huge value.
[[nodiscard]] Cycle segment_cycles(const PacketLifecycle& lc,
                                   LifecycleSegment s);

/// Consumer of completed packet lifecycles.  Unlike TraceSink (which sees
/// individual stage events as they happen), an observer sees one complete
/// stamp record per packet, at host-drain time.
class LifecycleObserver {
 public:
  virtual ~LifecycleObserver() = default;
  virtual void complete(const PacketLifecycle& lc) = 0;
  virtual void flush() {}
};

/// Aggregates completed lifecycles into per-(class, segment) log2 latency
/// histograms with percentiles.  O(1) memory regardless of run length.
class LifecycleSink final : public LifecycleObserver {
 public:
  void complete(const PacketLifecycle& lc) override;

  [[nodiscard]] const LatencyStats& stats(OpClass c,
                                          LifecycleSegment s) const {
    return stats_[static_cast<usize>(c)][static_cast<usize>(s)];
  }
  /// One segment's distribution merged across every request class.
  [[nodiscard]] LatencyStats merged(LifecycleSegment s) const;
  /// Completed packets observed (all classes).
  [[nodiscard]] u64 completed() const { return completed_; }
  /// Packets whose BankConflict segment was non-zero.
  [[nodiscard]] u64 conflicted() const { return conflicted_; }

  void clear();

 private:
  u64 completed_{0};
  u64 conflicted_{0};
  LatencyStats stats_[kOpClassCount][kLifecycleSegmentCount];
};

}  // namespace hmcsim
