// The tracer: verbosity filtering plus fan-out to registered sinks.
#pragma once

#include <memory>
#include <vector>

#include "trace/event.hpp"
#include "trace/sink.hpp"

namespace hmcsim {

class Tracer {
 public:
  Tracer() = default;

  void set_level(TraceLevel level) { level_ = level; }
  [[nodiscard]] TraceLevel level() const { return level_; }

  /// Attach a sink; the tracer shares ownership so callers can keep a handle
  /// for post-run inspection.
  void add_sink(std::shared_ptr<TraceSink> sink) {
    sinks_.push_back(std::move(sink));
  }
  void clear_sinks() { sinks_.clear(); }

  /// Fast gate for hot paths: is an event of this class recorded at all?
  [[nodiscard]] bool enabled(TraceEvent e) const {
    return level_ >= level_for(e) && !sinks_.empty();
  }

  /// Record unconditionally (callers should gate on enabled()).
  void emit(const TraceRecord& rec) {
    for (const auto& sink : sinks_) sink->record(rec);
  }

  /// Gate + record in one call for cold paths.
  void emit_if_enabled(const TraceRecord& rec) {
    if (enabled(rec.event)) emit(rec);
  }

  void flush() {
    for (const auto& sink : sinks_) sink->flush();
  }

 private:
  TraceLevel level_{TraceLevel::Off};
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

}  // namespace hmcsim
