#include "trace/reader.hpp"

#include <charconv>

#include "common/limits.hpp"
#include <istream>
#include <string>
#include <vector>

namespace hmcsim {
namespace {

/// Split on " : " separators, trimming nothing (the writer emits exactly
/// one space around each colon separator at the field level).
std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  usize pos = 0;
  while (pos <= line.size()) {
    const usize next = line.find(" : ", pos);
    if (next == std::string_view::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, next - pos));
    pos = next + 3;
  }
  return fields;
}

std::optional<u64> parse_u64(std::string_view text, int base = 10) {
  u64 value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

/// Parse one locality coordinate: a decimal number or `-` for kNoCoord.
std::optional<u32> parse_coord(std::string_view text) {
  if (text == "-") return kNoCoord;
  const auto v = parse_u64(text);
  if (!v || *v > 0xffffffffull) return std::nullopt;
  return static_cast<u32>(*v);
}

}  // namespace

std::optional<TraceEvent> trace_event_from_string(std::string_view name) {
  for (usize i = 0; i < kTraceEventCount; ++i) {
    const auto event = static_cast<TraceEvent>(i);
    if (to_string(event) == name) return event;
  }
  return std::nullopt;
}

std::optional<Command> command_from_string(std::string_view name) {
  for (u8 raw = 0; raw < 64; ++raw) {
    if (!is_valid_command(raw)) continue;
    const auto cmd = static_cast<Command>(raw);
    if (to_string(cmd) == name) return cmd;
  }
  return std::nullopt;
}

std::optional<TraceRecord> parse_trace_line(std::string_view line) {
  const auto fields = split_fields(line);
  // HMCSIM_TRACE, cycle, stage, event, locality, addr, tag, cmd
  if (fields.size() != 8 || fields[0] != "HMCSIM_TRACE") return std::nullopt;

  TraceRecord rec;

  const auto cycle = parse_u64(fields[1]);
  if (!cycle) return std::nullopt;
  rec.cycle = *cycle;

  if (fields[2].size() < 2 || fields[2][0] != 's') return std::nullopt;
  const auto stage = parse_u64(fields[2].substr(1));
  if (!stage || *stage > 6) return std::nullopt;
  rec.stage = static_cast<u8>(*stage);

  const auto event = trace_event_from_string(fields[3]);
  if (!event) return std::nullopt;
  rec.event = *event;

  // Locality: dev:link:quad:vault:bank with ':' separators (no spaces).
  {
    std::vector<std::string_view> coords;
    std::string_view loc = fields[4];
    usize pos = 0;
    while (pos <= loc.size()) {
      const usize next = loc.find(':', pos);
      if (next == std::string_view::npos) {
        coords.push_back(loc.substr(pos));
        break;
      }
      coords.push_back(loc.substr(pos, next - pos));
      pos = next + 1;
    }
    if (coords.size() != 5) return std::nullopt;
    const auto dev = parse_coord(coords[0]);
    const auto link = parse_coord(coords[1]);
    const auto quad = parse_coord(coords[2]);
    const auto vault = parse_coord(coords[3]);
    const auto bank = parse_coord(coords[4]);
    if (!dev || !link || !quad || !vault || !bank) return std::nullopt;
    rec.dev = *dev;
    rec.link = *link;
    rec.quad = *quad;
    rec.vault = *vault;
    rec.bank = *bank;
  }

  if (fields[5].size() < 3 || fields[5].substr(0, 2) != "0x") {
    return std::nullopt;
  }
  const auto addr = parse_u64(fields[5].substr(2), 16);
  if (!addr || *addr > spec::kAddrMask) return std::nullopt;
  rec.addr = *addr;

  const auto tag = parse_u64(fields[6]);
  if (!tag || *tag > 0xffff) return std::nullopt;
  rec.tag = static_cast<Tag>(*tag);

  const auto cmd = command_from_string(fields[7]);
  if (!cmd) return std::nullopt;
  rec.cmd = *cmd;

  return rec;
}

usize replay_trace(std::istream& in, TraceSink& sink,
                   usize* malformed_lines) {
  usize replayed = 0;
  usize malformed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (const auto rec = parse_trace_line(line)) {
      sink.record(*rec);
      ++replayed;
    } else {
      ++malformed;
    }
  }
  if (malformed_lines != nullptr) *malformed_lines = malformed;
  return replayed;
}

}  // namespace hmcsim
