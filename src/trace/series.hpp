// Per-cycle, per-vault aggregation used to regenerate the paper's Figure 5.
//
// Figure 5 plots, against the simulated clock, the number of bank conflicts,
// read requests and write requests within each vault, plus the device-wide
// crossbar request stalls and routed-latency penalty events.  This sink
// accumulates exactly those five series, bucketed by a configurable cycle
// width so arbitrarily long runs fit in memory (bucket width 1 gives the
// paper's raw per-cycle data).
#pragma once

#include <vector>

#include "trace/sink.hpp"

namespace hmcsim {

class VaultSeriesSink final : public TraceSink {
 public:
  struct Bucket {
    Cycle first_cycle{0};
    std::vector<u32> conflicts;  ///< per vault
    std::vector<u32> reads;      ///< per vault
    std::vector<u32> writes;     ///< per vault
    u64 xbar_stalls{0};          ///< device-wide
    u64 latency_penalties{0};    ///< device-wide
  };

  /// `vaults` sizes the per-vault arrays; `bucket_width` is in cycles.
  /// Records from devices other than `dev_filter` are ignored when
  /// dev_filter != kNoCoord (Figure 5 traces one device at a time).
  VaultSeriesSink(u32 vaults, Cycle bucket_width, u32 dev_filter = kNoCoord);

  void record(const TraceRecord& rec) override;

  [[nodiscard]] const std::vector<Bucket>& buckets() const { return buckets_; }
  [[nodiscard]] u32 vaults() const { return vaults_; }
  [[nodiscard]] Cycle bucket_width() const { return bucket_width_; }

  /// Column totals across all buckets (used for summaries and tests).
  [[nodiscard]] u64 total_conflicts() const;
  [[nodiscard]] u64 total_reads() const;
  [[nodiscard]] u64 total_writes() const;
  [[nodiscard]] u64 total_xbar_stalls() const;
  [[nodiscard]] u64 total_latency_penalties() const;

 private:
  Bucket& bucket_for(Cycle cycle);

  u32 vaults_;
  Cycle bucket_width_;
  u32 dev_filter_;
  std::vector<Bucket> buckets_;
};

}  // namespace hmcsim
