#include "trace/lifecycle.hpp"

namespace hmcsim {

std::string_view to_string(LifecycleSegment s) {
  switch (s) {
    case LifecycleSegment::Xbar: return "xbar";
    case LifecycleSegment::VaultQueue: return "vault_queue";
    case LifecycleSegment::BankConflict: return "bank_conflict";
    case LifecycleSegment::Response: return "response";
    case LifecycleSegment::Drain: return "drain";
    case LifecycleSegment::Total: return "total";
    case LifecycleSegment::Count: break;
  }
  return "unknown";
}

std::string_view to_string(OpClass c) {
  switch (c) {
    case OpClass::Read: return "read";
    case OpClass::Write: return "write";
    case OpClass::Atomic: return "atomic";
    case OpClass::Other: return "other";
    case OpClass::Count: break;
  }
  return "unknown";
}

OpClass op_class_of(Command cmd) {
  if (is_read(cmd)) return OpClass::Read;
  if (is_write(cmd)) return OpClass::Write;
  if (is_atomic(cmd)) return OpClass::Atomic;
  return OpClass::Other;
}

namespace {

Cycle saturating_delta(Cycle later, Cycle earlier) {
  return later > earlier ? later - earlier : 0;
}

}  // namespace

Cycle segment_cycles(const PacketLifecycle& lc, LifecycleSegment s) {
  // The queue wait splits at the first recognized conflict; without one
  // the whole vault_arrive -> retire span is queue wait.
  const Cycle conflict_start =
      lc.first_conflict != 0 ? lc.first_conflict : lc.retire;
  switch (s) {
    case LifecycleSegment::Xbar:
      return saturating_delta(lc.vault_arrive, lc.inject);
    case LifecycleSegment::VaultQueue:
      return saturating_delta(conflict_start, lc.vault_arrive);
    case LifecycleSegment::BankConflict:
      return saturating_delta(lc.retire, conflict_start);
    case LifecycleSegment::Response:
      return saturating_delta(lc.rsp_register, lc.retire);
    case LifecycleSegment::Drain:
      return saturating_delta(lc.drain, lc.rsp_register);
    case LifecycleSegment::Total:
      return saturating_delta(lc.drain, lc.inject);
    case LifecycleSegment::Count:
      break;
  }
  return 0;
}

void LifecycleSink::complete(const PacketLifecycle& lc) {
  ++completed_;
  const usize c = static_cast<usize>(op_class_of(lc.cmd));
  for (usize s = 0; s < kLifecycleSegmentCount; ++s) {
    stats_[c][s].add(segment_cycles(lc, static_cast<LifecycleSegment>(s)));
  }
  if (segment_cycles(lc, LifecycleSegment::BankConflict) != 0) ++conflicted_;
}

LatencyStats LifecycleSink::merged(LifecycleSegment s) const {
  LatencyStats out;
  for (usize c = 0; c < kOpClassCount; ++c) {
    out.merge(stats_[c][static_cast<usize>(s)]);
  }
  return out;
}

void LifecycleSink::clear() {
  completed_ = 0;
  conflicted_ = 0;
  for (auto& per_class : stats_) {
    for (auto& st : per_class) st = LatencyStats{};
  }
}

}  // namespace hmcsim
