#include "trace/chrome.hpp"

#include <algorithm>
#include <ostream>

namespace hmcsim {

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(&os) {
  *os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { finish(); }

void ChromeTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  *os_ << "\n]}\n";
  os_->flush();
}

void ChromeTraceSink::ensure_track_metadata(u32 dev, u32 tid,
                                            const char* kind, u32 index) {
  const u64 key = (u64{dev} << 32) | tid;
  if (std::find(named_tracks_.begin(), named_tracks_.end(), key) !=
      named_tracks_.end()) {
    return;
  }
  named_tracks_.push_back(key);
  *os_ << (first_event_ ? "\n" : ",\n");
  first_event_ = false;
  *os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << dev
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << kind << ' '
       << index << "\"}}";
  // Name the process once, keyed as tid ~0 (never used by a real track).
  const u64 dev_key = (u64{dev} << 32) | 0xffffffffull;
  if (std::find(named_tracks_.begin(), named_tracks_.end(), dev_key) ==
      named_tracks_.end()) {
    named_tracks_.push_back(dev_key);
    *os_ << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << dev
         << ",\"args\":{\"name\":\"cube " << dev << "\"}}";
  }
}

void ChromeTraceSink::emit_event(const char* name, char phase, Cycle ts,
                                 Cycle dur, u32 pid, u32 tid,
                                 const PacketLifecycle& lc, u64 flow_id,
                                 bool flow_end) {
  *os_ << (first_event_ ? "\n" : ",\n");
  first_event_ = false;
  *os_ << "{\"name\":\"" << name << "\",\"cat\":\"packet\",\"ph\":\"" << phase
       << "\",\"ts\":" << ts << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (phase == 'X') {
    *os_ << ",\"dur\":" << dur << ",\"args\":{\"tag\":" << lc.tag
         << ",\"cmd\":\"" << to_string(lc.cmd) << "\",\"vault\":" << lc.vault
         << "}";
  } else {
    *os_ << ",\"id\":" << flow_id;
    if (flow_end) *os_ << ",\"bp\":\"e\"";
  }
  *os_ << "}";
}

void ChromeTraceSink::complete(const PacketLifecycle& lc) {
  if (finished_) return;
  const u32 link_tid = lc.link;
  const u32 vault_tid = kVaultTidBase + lc.vault;
  ensure_track_metadata(lc.dev, link_tid, "link", lc.link);
  ensure_track_metadata(lc.dev, vault_tid, "vault", lc.vault);

  const Cycle xbar = segment_cycles(lc, LifecycleSegment::Xbar);
  const Cycle queue = segment_cycles(lc, LifecycleSegment::VaultQueue);
  const Cycle conflict = segment_cycles(lc, LifecycleSegment::BankConflict);
  const Cycle response = segment_cycles(lc, LifecycleSegment::Response);
  const Cycle drain = segment_cycles(lc, LifecycleSegment::Drain);

  // Duration chain: link track holds the crossbar and drain phases, the
  // vault track holds everything between.
  emit_event("xbar", 'X', lc.inject, xbar, lc.dev, link_tid, lc, 0, false);
  emit_event("vault_queue", 'X', lc.vault_arrive, queue, lc.dev, vault_tid,
             lc, 0, false);
  if (conflict != 0) {
    emit_event("bank_conflict", 'X', lc.first_conflict, conflict, lc.dev,
               vault_tid, lc, 0, false);
  }
  emit_event("response", 'X', lc.retire, response, lc.dev, vault_tid, lc, 0,
             false);
  emit_event("drain", 'X', lc.rsp_register, drain, lc.dev, link_tid, lc, 0,
             false);

  // Flow arrows: link -> vault at vault arrival, vault -> link at response
  // registration.  Two distinct ids per packet.
  const u64 flow = packets_ * 2;
  emit_event("pkt", 's', lc.inject, 0, lc.dev, link_tid, lc, flow, false);
  emit_event("pkt", 'f', lc.vault_arrive, 0, lc.dev, vault_tid, lc, flow,
             true);
  emit_event("pkt", 's', lc.retire, 0, lc.dev, vault_tid, lc, flow + 1,
             false);
  emit_event("pkt", 'f', lc.rsp_register, 0, lc.dev, link_tid, lc, flow + 1,
             true);

  ++packets_;
}

}  // namespace hmcsim
