// Deterministic I/O failpoints (simulator-level RAS; see docs/RAS.md).
//
// Crash-consistency code is only trustworthy when every failure path has
// been executed.  A Failpoint makes the checkpoint writer's failure modes
// deterministic and unit-testable: once armed, the byte stream flowing
// through AtomicFileWriter is counted, and the write that crosses the
// configured trigger offset fails in the configured way — a short write, a
// full-disk error, a generic I/O error, or a hard process exit that leaves
// a torn temporary file behind exactly as `kill -9` would.
//
// Failpoints are process-global (checkpointing is single-threaded by
// contract) and disarm after firing, so a test arms one failure, observes
// it, and continues clean.  For out-of-process testing the environment
// variable HMCSIM_FAILPOINT arms the same machinery in tools:
//
//   HMCSIM_FAILPOINT=short:4096    write crossing byte 4096 truncates, EIO
//   HMCSIM_FAILPOINT=enospc:4096   write crossing byte 4096 fails ENOSPC
//   HMCSIM_FAILPOINT=eio:4096      write crossing byte 4096 fails EIO
//   HMCSIM_FAILPOINT=crash:4096    _exit(9) once byte 4096 has been written
//
// The byte counter is cumulative across every failpoint-observed write in
// the process, so one trigger offset interrupts a run of many checkpoint
// generations at a reproducible point.
#pragma once

#include <string>

#include "common/types.hpp"

namespace hmcsim::io {

enum class FailMode : u8 {
  None,       ///< disarmed: writes pass through untouched
  ShortWrite, ///< the crossing write stops at the trigger byte, then EIO
  Enospc,     ///< the crossing write fails with ENOSPC
  Eio,        ///< the crossing write fails with EIO
  Crash,      ///< _exit(9) once the trigger byte has reached the kernel
};

/// Arm the process-global failpoint: the observed write that would move the
/// cumulative byte counter past `trigger_bytes` fails with `mode`.  Re-arms
/// over any previous setting; resets the cumulative counter.
void arm_failpoint(FailMode mode, u64 trigger_bytes);

/// Disarm and reset the counter.
void disarm_failpoint();

/// True while a failpoint is armed and has not fired yet.
[[nodiscard]] bool failpoint_armed();

/// Parse HMCSIM_FAILPOINT from the environment and arm it.  Returns false
/// (disarmed) when the variable is unset; malformed values are reported on
/// stderr and ignored.  Called once by tools that opt in.
bool arm_failpoint_from_env();

/// Clamp a write of `want` bytes against the armed failpoint.  The error
/// modes allow the prefix up to the trigger byte through; the call that
/// finds no budget left sets `*injected_errno` (EIO, or ENOSPC for the
/// Enospc mode), fires, and disarms.  Returns the number of bytes the
/// caller may write now.  None/Crash modes pass `want` through untouched.
usize failpoint_clamp_write(usize want, int* injected_errno);

/// Record `n` bytes as durably handed to the kernel.  The Crash mode
/// _exit(9)s here — after the trigger byte is on disk, before any fsync or
/// rename — leaving exactly the torn temporary file a SIGKILL would.
void failpoint_note_written(usize n);

}  // namespace hmcsim::io
