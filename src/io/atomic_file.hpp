// Crash-safe whole-file writes: temp file + fsync + rename.
//
// atomic_write_file() guarantees that a reader of `path` sees either the
// complete previous contents or the complete new contents — never a torn
// mixture — no matter where the writing process dies.  The payload lands
// in `<path>.tmp.<pid>` first, is fsync'd, and only then renamed over the
// destination (rename(2) is atomic within a filesystem); finally the
// parent directory is fsync'd so the rename itself is durable.
//
// All writes flow through the failpoint shim (io/failpoint.hpp), so every
// failure branch — short write, ENOSPC, EIO, death mid-write — is
// deterministically reachable from tests.  On any failure the temporary
// file is unlinked (except after a simulated crash, which by design leaves
// it: the generation scanner must ignore `*.tmp.*` debris).
#pragma once

#include <string>

#include "common/types.hpp"

namespace hmcsim::io {

/// Write `size` bytes to `path` atomically.  Returns true on success; on
/// failure fills `*error` (when non-null) with "op: strerror" context and
/// removes the temporary file.
bool atomic_write_file(const std::string& path, const void* data, usize size,
                       std::string* error = nullptr);

/// Read the whole of `path` into `out`.  Returns true on success; fills
/// `*error` with context otherwise.  Rejects files larger than
/// `max_bytes` (hostile-input guard) without reading them.
bool read_file(const std::string& path, std::string& out,
               u64 max_bytes = u64{1} << 32, std::string* error = nullptr);

}  // namespace hmcsim::io
