#include "io/failpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

namespace hmcsim::io {
namespace {

// Process-global armed state.  Checkpoint writes are serialized by
// contract (one simulator saving at a time), so plain globals suffice;
// tests arm, observe one failure, and the failpoint disarms itself.
FailMode g_mode = FailMode::None;
u64 g_trigger = 0;
u64 g_written = 0;

}  // namespace

void arm_failpoint(FailMode mode, u64 trigger_bytes) {
  g_mode = mode;
  g_trigger = trigger_bytes;
  g_written = 0;
}

void disarm_failpoint() {
  g_mode = FailMode::None;
  g_trigger = 0;
  g_written = 0;
}

bool failpoint_armed() { return g_mode != FailMode::None; }

bool arm_failpoint_from_env() {
  const char* spec = std::getenv("HMCSIM_FAILPOINT");
  if (spec == nullptr || spec[0] == '\0') return false;
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr) {
    std::fprintf(stderr, "HMCSIM_FAILPOINT: expected <mode>:<bytes>, got '%s'\n",
                 spec);
    return false;
  }
  const std::string mode(spec, colon);
  char* end = nullptr;
  errno = 0;
  const unsigned long long trigger = std::strtoull(colon + 1, &end, 0);
  if (end == colon + 1 || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "HMCSIM_FAILPOINT: bad byte offset in '%s'\n", spec);
    return false;
  }
  FailMode m = FailMode::None;
  if (mode == "short") {
    m = FailMode::ShortWrite;
  } else if (mode == "enospc") {
    m = FailMode::Enospc;
  } else if (mode == "eio") {
    m = FailMode::Eio;
  } else if (mode == "crash") {
    m = FailMode::Crash;
  } else {
    std::fprintf(stderr, "HMCSIM_FAILPOINT: unknown mode '%s'\n",
                 mode.c_str());
    return false;
  }
  arm_failpoint(m, trigger);
  return true;
}

usize failpoint_clamp_write(usize want, int* injected_errno) {
  switch (g_mode) {
    case FailMode::None:
    case FailMode::Crash:
      return want;
    case FailMode::ShortWrite:
    case FailMode::Enospc:
    case FailMode::Eio:
      break;
  }
  const u64 remaining = g_trigger > g_written ? g_trigger - g_written : 0;
  if (want <= remaining) return want;
  if (remaining > 0) return static_cast<usize>(remaining);
  if (injected_errno != nullptr) {
    *injected_errno = g_mode == FailMode::Enospc ? ENOSPC : EIO;
  }
  disarm_failpoint();  // one failure per arming
  return 0;
}

void failpoint_note_written(usize n) {
  if (g_mode == FailMode::None) return;
  g_written += n;
  if (g_mode == FailMode::Crash && g_written >= g_trigger) {
    // Simulated kill -9: no stream flushes, no fsync, no rename — the torn
    // temporary file is all that survives.
    _exit(9);
  }
}

}  // namespace hmcsim::io
