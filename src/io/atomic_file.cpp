#include "io/atomic_file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "io/failpoint.hpp"

namespace hmcsim::io {
namespace {

void set_error(std::string* error, const char* op, int err) {
  if (error == nullptr) return;
  *error = std::string(op) + ": " + std::strerror(err);
}

/// Write the whole buffer through the failpoint shim.  Returns false with
/// errno-style context on any failure (including injected ones).
bool write_all(int fd, const u8* data, usize size, std::string* error) {
  usize done = 0;
  while (done < size) {
    int injected = 0;
    const usize allowed = failpoint_clamp_write(size - done, &injected);
    if (allowed == 0) {
      set_error(error, "write", injected != 0 ? injected : EIO);
      return false;
    }
    const ssize_t n = ::write(fd, data + done, allowed);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write", errno);
      return false;
    }
    failpoint_note_written(static_cast<usize>(n));
    done += static_cast<usize>(n);
  }
  return true;
}

/// fsync the directory containing `path` so a completed rename survives a
/// crash.  Best-effort: some filesystems refuse directory fsync.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

bool atomic_write_file(const std::string& path, const void* data, usize size,
                       std::string* error) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_error(error, "open", errno);
    return false;
  }
  if (!write_all(fd, static_cast<const u8*>(data), size, error)) {
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    set_error(error, "fsync", errno);
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close", errno);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename", errno);
    (void)::unlink(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

bool read_file(const std::string& path, std::string& out, u64 max_bytes,
               std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, "open", errno);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    set_error(error, "fstat", errno);
    (void)::close(fd);
    return false;
  }
  if (!S_ISREG(st.st_mode)) {
    set_error(error, "open", EINVAL);
    (void)::close(fd);
    return false;
  }
  if (static_cast<u64>(st.st_size) > max_bytes) {
    set_error(error, "size", EFBIG);
    (void)::close(fd);
    return false;
  }
  out.clear();
  out.resize(static_cast<usize>(st.st_size));
  usize done = 0;
  while (done < out.size()) {
    const ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "read", errno);
      (void)::close(fd);
      return false;
    }
    if (n == 0) break;  // truncated under us; return what exists
    done += static_cast<usize>(n);
  }
  out.resize(done);
  (void)::close(fd);
  return true;
}

}  // namespace hmcsim::io
