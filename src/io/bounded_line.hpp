// Bounded line reading for the text loaders (config, trace, chaos plans).
//
// std::getline buffers an arbitrarily long line before the caller can see
// its size, so a pathological input (one multi-gigabyte "line") turns into
// unbounded allocation.  getline_bounded stops buffering at the cap,
// discards the remainder of the offending line, and reports it as TooLong
// so the loader can emit a typed file:line error and keep its line
// numbering intact.
#pragma once

#include <istream>
#include <string>

#include "common/types.hpp"

namespace hmcsim::io {

/// Longest line any hmcsim text loader accepts.
inline constexpr usize kMaxLineBytes = usize{64} * 1024;

enum class LineRead {
  Ok,       ///< `out` holds the next line (without its terminator)
  Eof,      ///< no more input; `out` is empty
  TooLong,  ///< the line exceeded `max_bytes`; its tail was discarded
};

/// Read one '\n'-terminated line into `out`, buffering at most `max_bytes`
/// of it.  A final line without a terminator still counts as a line; any
/// trailing '\r' (CRLF input) is left for the caller's trim step.  On
/// TooLong the stream is advanced past the rest of the line so subsequent
/// reads and line numbers stay correct.
inline LineRead getline_bounded(std::istream& in, std::string& out,
                                usize max_bytes = kMaxLineBytes) {
  out.clear();
  std::streambuf* sb = in.rdbuf();
  if (sb == nullptr || !in.good()) return LineRead::Eof;
  constexpr int kEof = std::char_traits<char>::eof();
  bool saw_any = false;
  for (;;) {
    const int c = sb->sbumpc();
    if (c == kEof) {
      in.setstate(std::ios::eofbit);
      return saw_any ? LineRead::Ok : LineRead::Eof;
    }
    saw_any = true;
    if (c == '\n') return LineRead::Ok;
    if (out.size() >= max_bytes) {
      // Drain the oversized line without buffering it.
      for (;;) {
        const int d = sb->sbumpc();
        if (d == kEof) {
          in.setstate(std::ios::eofbit);
          break;
        }
        if (d == '\n') break;
      }
      return LineRead::TooLong;
    }
    out.push_back(static_cast<char>(c));
  }
}

}  // namespace hmcsim::io
