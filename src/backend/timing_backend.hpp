// Pluggable vault bank-timing backends (docs/BACKENDS.md).
//
// The clock engine owns everything around the banks — queues, crossbar
// arbitration, refresh scheduling, vault ordering, RAS — and delegates
// exactly one question to the backend: when may a bank accept a command,
// and how long does it stay occupied afterwards.  The seam is deliberately
// narrow so memory models compose instead of fork (Ramulator-style
// implementable interfaces):
//
//   gate()     may (bank, access class) issue at cycle `now`?
//   issue()    commit the access: update the bank timing arrays and any
//              backend-private state, attribute stats
//   refresh()  take every bank offline for the refresh window
//   reset()    return to power-on state
//   serialize()/restore()  checkpoint the backend-private state (the
//              shared bank arrays are serialized by the container)
//
// Contract highlights (the backend-parity suite enforces these):
//   * The shared per-bank arrays `VaultState::bank_busy_until` and
//     `VaultState::open_row` remain the single source of truth for bank
//     occupancy: the watchdog diagnostics, the conflict scanner, tools
//     (--wedge-vaults) and tests read — and sometimes write — them
//     directly.  A backend must honor external writes to the arrays (a
//     wedged bank stays wedged) and must keep them current on issue().
//   * All methods are called from exactly one shard at a time (the clock
//     engine shards by (device, vault)), so backends need no locking, but
//     must be deterministic: identical call sequences produce identical
//     state for any sim_threads / fast_forward setting.
//   * Timing decisions compare against the absolute cycle `now`; a
//     backend never mutates state merely because time passed (required
//     for idle-cycle fast-forward).
#pragma once

#include <iosfwd>
#include <memory>

#include "common/types.hpp"
#include "core/config.hpp"

namespace hmcsim {

struct VaultState;
struct DeviceStats;

/// Coarse access classification the timing models key on.  Atomics and
/// custom (CMC) commands are read-modify-writes.
enum class AccessClass : u8 { Read, Write, Rmw };

/// Why a bank can / cannot accept a command this cycle.
enum class BankGate : u8 {
  Ready,      ///< the command may issue now
  Busy,       ///< the bank itself is occupied
  Throttled,  ///< bank free, but a backend-wide limit gates this class
};

class VaultTimingBackend {
 public:
  virtual ~VaultTimingBackend() = default;

  virtual TimingBackend kind() const = 0;

  /// Power-on: clear backend-private state.  The container resets the
  /// shared bank arrays itself.
  virtual void reset() = 0;

  /// May (bank, access) issue at cycle `now`?
  virtual BankGate gate(const VaultState& vault, u32 bank, AccessClass access,
                        Cycle now) const = 0;

  /// Commit the access at cycle `now`: set the bank's busy window, manage
  /// the row buffer, update backend-private state, attribute stats
  /// (row_hits / row_misses / backend-specific counters).
  virtual void issue(VaultState& vault, u32 bank, u64 row, AccessClass access,
                     Cycle now, DeviceStats& stats) = 0;

  /// Refresh participation: every bank goes offline until at least
  /// now + busy_cycles and all open rows precharge.  The default
  /// implementation performs exactly that on the shared arrays.
  virtual void refresh(VaultState& vault, Cycle now, u32 busy_cycles);

  /// Checkpoint the backend-private state as a sequence of 8-byte LE
  /// words (the container frames it with kind + length + CRC).  The
  /// default is stateless: writes nothing, restores only a zero-length
  /// blob.
  virtual void serialize(std::ostream& os) const;
  /// Restore from a `len`-byte blob; false on malformed contents.
  virtual bool restore(std::istream& is, u64 len);
};

/// Construct the backend configured for `vault` (honoring per-vault
/// overrides).
std::unique_ptr<VaultTimingBackend> make_timing_backend(
    const DeviceConfig& config, u32 vault);

}  // namespace hmcsim
