#include "backend/timing_backend.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "core/device.hpp"
#include "core/stats.hpp"

namespace hmcsim {

namespace {

// Checkpoint word primitives, matching the container's convention
// (core/checkpoint.cpp): every integer rides in an 8-byte LE word.
void put_word(std::ostream& os, u64 v) {
  u8 bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<u8>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(bytes), 8);
}

bool get_word(std::istream& is, u64* v) {
  u8 bytes[8];
  if (!is.read(reinterpret_cast<char*>(bytes), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= u64{bytes[i]} << (8 * i);
  return true;
}

/// The paper's DRAM model, verbatim: under ClosedPage every access
/// occupies the bank for bank_busy_cycles; under OpenPage a row-buffer hit
/// costs row_hit_cycles and a miss (precharge + activate) costs
/// row_miss_cycles and leaves the new row open.  Stateless beyond the
/// shared arrays — bit-identical to the pre-refactor inline code.
class HmcDramBackend final : public VaultTimingBackend {
 public:
  explicit HmcDramBackend(const DeviceConfig& config) : config_(&config) {}

  TimingBackend kind() const override { return TimingBackend::HmcDram; }

  void reset() override {}

  BankGate gate(const VaultState& vault, u32 bank, AccessClass /*access*/,
                Cycle now) const override {
    return vault.bank_busy_until[bank] > now ? BankGate::Busy
                                             : BankGate::Ready;
  }

  void issue(VaultState& vault, u32 bank, u64 row, AccessClass /*access*/,
             Cycle now, DeviceStats& stats) override {
    if (config_->row_policy == RowPolicy::OpenPage) {
      if (vault.open_row[bank] == row) {
        vault.bank_busy_until[bank] = now + config_->row_hit_cycles;
        ++stats.row_hits;
      } else {
        vault.bank_busy_until[bank] = now + config_->row_miss_cycles;
        vault.open_row[bank] = row;
        ++stats.row_misses;
      }
    } else {
      vault.bank_busy_until[bank] = now + config_->bank_busy_cycles;
    }
  }

 private:
  const DeviceConfig* config_;
};

/// Parameterized DDR-style timing: a row-buffer hit costs tCL; a miss (or
/// any access under ClosedPage, where every row closes immediately) costs
/// max(tRCD + tCL, tRAS) + tRP — activate-to-read plus the column latency,
/// floored by the row-active minimum, plus the precharge.  With
/// tRCD = tRP = tRAS = 0 this degenerates to a flat tCL busy window,
/// which is how the hmc_dram ClosedPage equivalence mapping works.
class GenericDdrBackend final : public VaultTimingBackend {
 public:
  explicit GenericDdrBackend(const DeviceConfig& config) : config_(&config) {}

  TimingBackend kind() const override { return TimingBackend::GenericDdr; }

  void reset() override {}

  BankGate gate(const VaultState& vault, u32 bank, AccessClass /*access*/,
                Cycle now) const override {
    return vault.bank_busy_until[bank] > now ? BankGate::Busy
                                             : BankGate::Ready;
  }

  void issue(VaultState& vault, u32 bank, u64 row, AccessClass /*access*/,
             Cycle now, DeviceStats& stats) override {
    const Cycle miss_cost =
        std::max<Cycle>(Cycle{config_->ddr_trcd} + config_->ddr_tcl,
                        config_->ddr_tras) +
        config_->ddr_trp;
    if (config_->row_policy == RowPolicy::OpenPage) {
      if (vault.open_row[bank] == row) {
        vault.bank_busy_until[bank] = now + config_->ddr_tcl;
        ++stats.row_hits;
      } else {
        vault.bank_busy_until[bank] = now + miss_cost;
        vault.open_row[bank] = row;
        ++stats.row_misses;
      }
    } else {
      vault.bank_busy_until[bank] = now + miss_cost;
    }
  }

 private:
  const DeviceConfig* config_;
};

/// Phase-change-memory-style timing (HybridSim's PCMSim shape): reads and
/// writes occupy the bank asymmetrically (writes are several times
/// slower), and a vault-wide write gap throttles sustained write
/// bandwidth: after any write issues, further writes to the same vault
/// wait until now + pcm_write_gap_cycles.  The throttle is a gate, not a
/// bank occupancy — reads flow past a throttled write — and gated issue
/// attempts are counted in pcm_write_throttle_stalls.  Row buffers are
/// not modeled (PCM reads are non-destructive); open_row stays at
/// kNoOpenRow.
class PcmLikeBackend final : public VaultTimingBackend {
 public:
  explicit PcmLikeBackend(const DeviceConfig& config) : config_(&config) {}

  TimingBackend kind() const override { return TimingBackend::PcmLike; }

  void reset() override { write_ok_ = 0; }

  BankGate gate(const VaultState& vault, u32 bank, AccessClass access,
                Cycle now) const override {
    if (vault.bank_busy_until[bank] > now) return BankGate::Busy;
    if (access != AccessClass::Read && write_ok_ > now) {
      return BankGate::Throttled;
    }
    return BankGate::Ready;
  }

  void issue(VaultState& vault, u32 bank, u64 /*row*/, AccessClass access,
             Cycle now, DeviceStats& /*stats*/) override {
    if (access == AccessClass::Read) {
      vault.bank_busy_until[bank] = now + config_->pcm_read_cycles;
    } else {
      vault.bank_busy_until[bank] = now + config_->pcm_write_cycles;
      if (config_->pcm_write_gap_cycles != 0) {
        write_ok_ = now + config_->pcm_write_gap_cycles;
      }
    }
  }

  void serialize(std::ostream& os) const override { put_word(os, write_ok_); }

  bool restore(std::istream& is, u64 len) override {
    if (len != 8) return false;
    u64 v = 0;
    if (!get_word(is, &v)) return false;
    write_ok_ = v;
    return true;
  }

 private:
  const DeviceConfig* config_;
  /// Earliest cycle the next write may issue (vault-wide write throttle).
  Cycle write_ok_{0};
};

}  // namespace

void VaultTimingBackend::refresh(VaultState& vault, Cycle now,
                                 u32 busy_cycles) {
  const Cycle until = now + busy_cycles;
  for (Cycle& busy : vault.bank_busy_until) busy = std::max(busy, until);
  // Refresh precharges every bank: open rows close.
  std::fill(vault.open_row.begin(), vault.open_row.end(), kNoOpenRow);
}

void VaultTimingBackend::serialize(std::ostream& /*os*/) const {}

bool VaultTimingBackend::restore(std::istream& /*is*/, u64 len) {
  return len == 0;
}

std::unique_ptr<VaultTimingBackend> make_timing_backend(
    const DeviceConfig& config, u32 vault) {
  switch (config.backend_for_vault(vault)) {
    case TimingBackend::HmcDram:
      return std::make_unique<HmcDramBackend>(config);
    case TimingBackend::GenericDdr:
      return std::make_unique<GenericDdrBackend>(config);
    case TimingBackend::PcmLike:
      return std::make_unique<PcmLikeBackend>(config);
  }
  return std::make_unique<HmcDramBackend>(config);
}

}  // namespace hmcsim
