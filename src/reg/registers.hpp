// Device configuration/status register file (paper §IV.D).
//
// The HMC specification groups internal registers into three classes:
// read-write (RW), read-only (RO) and self-clearing-after-write (RWS).
// Physical register indices are neither linear nor zero-based (they encode
// a block address, e.g. link configuration lives at 0x24xxxx); HMC-Sim
// translates them to a dense linear space for storage efficiency via "a
// series of macros" — here, constexpr lookup over the register table.
//
// Registers are accessible two ways:
//   * in-band, via MODE_READ / MODE_WRITE packets that route like any other
//     request (and consume link bandwidth);
//   * side-band, via the JTAG / I2C interface, outside the clock domains.
// Both paths resolve to RegisterFile::read / write below.
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "common/status.hpp"
#include "common/types.hpp"

namespace hmcsim {

enum class RegClass : u8 {
  RW,   ///< read-write
  RO,   ///< read-only (host writes are rejected)
  RWS,  ///< write-set; the device self-clears it at the next clock edge
};

/// Symbolic names for the architected registers.  The values are *linear*
/// indices into the register file's storage.
enum class Reg : u32 {
  // Error detect registers, one per link group.
  Edr0 = 0, Edr1, Edr2, Edr3,
  // Global error status.
  Err,
  // Global configuration.
  Gc,
  // Per-link configuration.
  Lc0, Lc1, Lc2, Lc3, Lc4, Lc5, Lc6, Lc7,
  // Per-link run-length limit.
  Lrll0, Lrll1, Lrll2, Lrll3, Lrll4, Lrll5, Lrll6, Lrll7,
  // Global link retry.
  Grl,
  // Per-link retry.
  Lr0, Lr1, Lr2, Lr3, Lr4, Lr5, Lr6, Lr7,
  // Per-link input buffer token counts.
  Ibtc0, Ibtc1, Ibtc2, Ibtc3, Ibtc4, Ibtc5, Ibtc6, Ibtc7,
  // Address configuration (selects the address map mode).
  Ac,
  // Vault control.
  Vcr,
  // Feature register (capacity / vault / bank geometry; read-only).
  Feat,
  // Revision and vendor id (read-only).
  Rvid,
  // RAS error-log block (0x2Exxxx; read-only, live):
  // corrected-SBE count (demand | scrub<<32).
  RasSbe,
  // uncorrectable-DBE count (demand | scrub<<32).
  RasDbe,
  // scrub progress: cursor-page[31:0] | completed-passes[63:32].
  RasScrub,
  // address of the most recent error response.
  RasLastAddr,
  // ERRSTAT of the most recent error response.
  RasLastStat,
  // failed-vault bitmask (static + dynamic), remaps in the high word.
  RasVaultFail,
  // Link retry protocol (live): replays[31:0] | abort-entries[47:32] |
  // dead-link bitmask[55:48] (zero unless link_protocol is on).
  RasLinkRetry,
  // Link token flow control (live): stalls[31:0] | min-tokens-now[47:32].
  RasLinkToken,

  Count,
};

inline constexpr usize kRegCount = static_cast<usize>(Reg::Count);

/// Static description of one register.
struct RegisterDef {
  Reg linear;           ///< dense index
  u32 phys;             ///< architected (non-linear) device index
  RegClass cls;
  std::string_view name;
  u64 reset_value;
};

/// The architected register table.  Physical indices follow the HMC 1.0
/// block layout: 0x2Bxxxx error block, 0x28xxxx global config, 0x24xxxx +
/// link*0x10000 link blocks, 0x2Cxxxx addressing/vault block, 0x2Fxxxx
/// identification block.
[[nodiscard]] const std::array<RegisterDef, kRegCount>& register_table();

/// Translate an architected physical index to the linear index.
/// Returns nullopt for indices that do not exist on any device.
[[nodiscard]] std::optional<Reg> reg_from_phys(u32 phys_index);

/// Translate a linear index back to the architected physical index.
[[nodiscard]] u32 phys_from_reg(Reg r);

[[nodiscard]] std::string_view to_string(Reg r);

/// Storage plus access-class enforcement for one device's registers.
class RegisterFile {
 public:
  /// `links` controls which per-link registers exist (4 or 8).
  explicit RegisterFile(u32 links = 4);

  /// Reset every register to its architected reset value.
  void reset();

  /// Read by linear index.  RO/RW/RWS are all readable.
  [[nodiscard]] Status read(Reg r, u64& value) const;

  /// Write by linear index.  RO writes are rejected; RWS writes land and
  /// are flagged for self-clear at the next clock edge.
  [[nodiscard]] Status write(Reg r, u64 value);

  /// Read/write by architected physical index (the MODE_READ/MODE_WRITE and
  /// JTAG paths carry physical indices on the wire).
  [[nodiscard]] Status read_phys(u32 phys_index, u64& value) const;
  [[nodiscard]] Status write_phys(u32 phys_index, u64 value);

  /// Called by the device at sub-cycle stage 6: clears any RWS register
  /// written during the elapsed cycle.
  void clock_edge();

  /// True when any RWS register awaits its self-clearing edge — i.e. the
  /// next clock_edge() is not a no-op.  The idle-cycle fast-forward engine
  /// refuses to arm until this drains (it clears within one slow cycle).
  [[nodiscard]] bool any_pending_self_clear() const {
    for (const bool pending : pending_self_clear_) {
      if (pending) return true;
    }
    return false;
  }

  [[nodiscard]] u32 links() const { return links_; }

  /// True when the register exists for this device's link count.
  [[nodiscard]] bool present(Reg r) const;

  /// Raw state capture for checkpointing: every register value plus the
  /// pending RWS self-clear flags, bypassing access-class enforcement.
  struct Snapshot {
    std::array<u64, kRegCount> values{};
    std::array<bool, kRegCount> pending_self_clear{};
  };
  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{values_, pending_self_clear_};
  }
  void restore(const Snapshot& s) {
    values_ = s.values;
    pending_self_clear_ = s.pending_self_clear;
  }

 private:
  u32 links_;
  std::array<u64, kRegCount> values_{};
  std::array<bool, kRegCount> pending_self_clear_{};
};

}  // namespace hmcsim
