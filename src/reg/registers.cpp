#include "reg/registers.hpp"

namespace hmcsim {
namespace {

constexpr u64 kFeatReset = 0x0000000000000001ull;   // HMC gen1 feature word
constexpr u64 kRvidReset = 0x0000000001002014ull;   // rev 1.0, vendor tag

constexpr std::array<RegisterDef, kRegCount> kTable = {{
    {Reg::Edr0, 0x2b0000u, RegClass::RWS, "EDR0", 0},
    {Reg::Edr1, 0x2b0001u, RegClass::RWS, "EDR1", 0},
    {Reg::Edr2, 0x2b0002u, RegClass::RWS, "EDR2", 0},
    {Reg::Edr3, 0x2b0003u, RegClass::RWS, "EDR3", 0},
    {Reg::Err, 0x2b0004u, RegClass::RO, "ERR", 0},
    {Reg::Gc, 0x280000u, RegClass::RW, "GC", 0},
    {Reg::Lc0, 0x240000u, RegClass::RW, "LC0", 0},
    {Reg::Lc1, 0x250000u, RegClass::RW, "LC1", 0},
    {Reg::Lc2, 0x260000u, RegClass::RW, "LC2", 0},
    {Reg::Lc3, 0x270000u, RegClass::RW, "LC3", 0},
    {Reg::Lc4, 0x240008u, RegClass::RW, "LC4", 0},
    {Reg::Lc5, 0x250008u, RegClass::RW, "LC5", 0},
    {Reg::Lc6, 0x260008u, RegClass::RW, "LC6", 0},
    {Reg::Lc7, 0x270008u, RegClass::RW, "LC7", 0},
    {Reg::Lrll0, 0x240003u, RegClass::RO, "LRLL0", 0},
    {Reg::Lrll1, 0x250003u, RegClass::RO, "LRLL1", 0},
    {Reg::Lrll2, 0x260003u, RegClass::RO, "LRLL2", 0},
    {Reg::Lrll3, 0x270003u, RegClass::RO, "LRLL3", 0},
    {Reg::Lrll4, 0x24000bu, RegClass::RO, "LRLL4", 0},
    {Reg::Lrll5, 0x25000bu, RegClass::RO, "LRLL5", 0},
    {Reg::Lrll6, 0x26000bu, RegClass::RO, "LRLL6", 0},
    {Reg::Lrll7, 0x27000bu, RegClass::RO, "LRLL7", 0},
    {Reg::Grl, 0x2c0000u, RegClass::RW, "GRL", 0},
    {Reg::Lr0, 0x240004u, RegClass::RW, "LR0", 0},
    {Reg::Lr1, 0x250004u, RegClass::RW, "LR1", 0},
    {Reg::Lr2, 0x260004u, RegClass::RW, "LR2", 0},
    {Reg::Lr3, 0x270004u, RegClass::RW, "LR3", 0},
    {Reg::Lr4, 0x24000cu, RegClass::RW, "LR4", 0},
    {Reg::Lr5, 0x25000cu, RegClass::RW, "LR5", 0},
    {Reg::Lr6, 0x26000cu, RegClass::RW, "LR6", 0},
    {Reg::Lr7, 0x27000cu, RegClass::RW, "LR7", 0},
    {Reg::Ibtc0, 0x240005u, RegClass::RW, "IBTC0", 0},
    {Reg::Ibtc1, 0x250005u, RegClass::RW, "IBTC1", 0},
    {Reg::Ibtc2, 0x260005u, RegClass::RW, "IBTC2", 0},
    {Reg::Ibtc3, 0x270005u, RegClass::RW, "IBTC3", 0},
    {Reg::Ibtc4, 0x24000du, RegClass::RW, "IBTC4", 0},
    {Reg::Ibtc5, 0x25000du, RegClass::RW, "IBTC5", 0},
    {Reg::Ibtc6, 0x26000du, RegClass::RW, "IBTC6", 0},
    {Reg::Ibtc7, 0x27000du, RegClass::RW, "IBTC7", 0},
    {Reg::Ac, 0x2c0001u, RegClass::RW, "AC", 0},
    {Reg::Vcr, 0x2c0002u, RegClass::RW, "VCR", 0},
    {Reg::Feat, 0x2f0000u, RegClass::RO, "FEAT", kFeatReset},
    {Reg::Rvid, 0x2f0001u, RegClass::RO, "RVID", kRvidReset},
    {Reg::RasSbe, 0x2e0000u, RegClass::RO, "RAS_SBE", 0},
    {Reg::RasDbe, 0x2e0001u, RegClass::RO, "RAS_DBE", 0},
    {Reg::RasScrub, 0x2e0002u, RegClass::RO, "RAS_SCRUB", 0},
    {Reg::RasLastAddr, 0x2e0003u, RegClass::RO, "RAS_LAST_ADDR", 0},
    {Reg::RasLastStat, 0x2e0004u, RegClass::RO, "RAS_LAST_STAT", 0},
    {Reg::RasVaultFail, 0x2e0005u, RegClass::RO, "RAS_VAULT_FAIL", 0},
    {Reg::RasLinkRetry, 0x2e0006u, RegClass::RO, "RAS_LINK_RETRY", 0},
    {Reg::RasLinkToken, 0x2e0007u, RegClass::RO, "RAS_LINK_TOKEN", 0},
}};

}  // namespace

const std::array<RegisterDef, kRegCount>& register_table() { return kTable; }

std::optional<Reg> reg_from_phys(u32 phys_index) {
  for (const auto& def : kTable) {
    if (def.phys == phys_index) return def.linear;
  }
  return std::nullopt;
}

u32 phys_from_reg(Reg r) {
  return kTable[static_cast<usize>(r)].phys;
}

std::string_view to_string(Reg r) {
  if (r >= Reg::Count) return "INVALID";
  return kTable[static_cast<usize>(r)].name;
}

RegisterFile::RegisterFile(u32 links) : links_(links) { reset(); }

void RegisterFile::reset() {
  for (const auto& def : kTable) {
    values_[static_cast<usize>(def.linear)] = def.reset_value;
  }
  pending_self_clear_.fill(false);
}

bool RegisterFile::present(Reg r) const {
  if (r >= Reg::Count) return false;
  if (links_ >= 8) return true;
  // Per-link registers 4..7 only exist on eight-link parts.
  switch (r) {
    case Reg::Lc4: case Reg::Lc5: case Reg::Lc6: case Reg::Lc7:
    case Reg::Lrll4: case Reg::Lrll5: case Reg::Lrll6: case Reg::Lrll7:
    case Reg::Lr4: case Reg::Lr5: case Reg::Lr6: case Reg::Lr7:
    case Reg::Ibtc4: case Reg::Ibtc5: case Reg::Ibtc6: case Reg::Ibtc7:
      return false;
    default:
      return true;
  }
}

Status RegisterFile::read(Reg r, u64& value) const {
  if (!present(r)) return Status::NoSuchRegister;
  value = values_[static_cast<usize>(r)];
  return Status::Ok;
}

Status RegisterFile::write(Reg r, u64 value) {
  if (!present(r)) return Status::NoSuchRegister;
  const RegisterDef& def = kTable[static_cast<usize>(r)];
  switch (def.cls) {
    case RegClass::RO:
      return Status::ReadOnlyRegister;
    case RegClass::RW:
      values_[static_cast<usize>(r)] = value;
      return Status::Ok;
    case RegClass::RWS:
      values_[static_cast<usize>(r)] = value;
      pending_self_clear_[static_cast<usize>(r)] = true;
      return Status::Ok;
  }
  return Status::Internal;
}

Status RegisterFile::read_phys(u32 phys_index, u64& value) const {
  const auto r = reg_from_phys(phys_index);
  if (!r) return Status::NoSuchRegister;
  return read(*r, value);
}

Status RegisterFile::write_phys(u32 phys_index, u64 value) {
  const auto r = reg_from_phys(phys_index);
  if (!r) return Status::NoSuchRegister;
  return write(*r, value);
}

void RegisterFile::clock_edge() {
  for (usize i = 0; i < kRegCount; ++i) {
    if (pending_self_clear_[i]) {
      values_[i] = 0;
      pending_self_clear_[i] = false;
    }
  }
}

}  // namespace hmcsim
