#include "mem/address_map.hpp"

#include <sstream>

#include "common/bitops.hpp"
#include "common/limits.hpp"

namespace hmcsim {

unsigned Geometry::addr_bits() const {
  const u64 cap = capacity_bytes();
  return is_pow2(cap) ? log2_exact(cap) : 0;
}

namespace {

/// Width of the field that must address `count` units.
unsigned width_for(u64 count) {
  return is_pow2(count) ? log2_exact(count) : ~0u;
}

}  // namespace

AddressMap::AddressMap(Geometry geometry, std::vector<AddrFieldSpec> fields)
    : geometry_(geometry), fields_(std::move(fields)) {
  std::ostringstream diag;

  if (!is_pow2(geometry_.vaults) || !is_pow2(geometry_.banks) ||
      !is_pow2(geometry_.drams) || !is_pow2(geometry_.bank_bytes)) {
    error_ = "geometry dimensions must be powers of two";
    return;
  }

  unsigned total = 0;
  unsigned vault_width = 0, bank_width = 0, dram_width = 0;
  unsigned vault_fields = 0, bank_fields = 0, row_fields = 0;
  unsigned row_width = 0;
  for (const auto& f : fields_) {
    switch (f.kind) {
      case AddrField::Offset:
        offset_width_ += f.width;
        break;
      case AddrField::Vault:
        if (++vault_fields == 1) vault_shift_ = total;
        vault_width += f.width;
        break;
      case AddrField::Bank:
        if (++bank_fields == 1) bank_shift_ = total;
        bank_width += f.width;
        break;
      case AddrField::Dram:
        dram_width += f.width;
        break;
      case AddrField::Row:
        if (++row_fields == 1) row_shift_ = total;
        row_width += f.width;
        break;
    }
    total += f.width;
  }

  if (vault_width != width_for(geometry_.vaults)) {
    diag << "vault field width " << vault_width << " does not address "
         << geometry_.vaults << " vaults";
    error_ = diag.str();
    return;
  }
  if (bank_width != width_for(geometry_.banks)) {
    diag << "bank field width " << bank_width << " does not address "
         << geometry_.banks << " banks";
    error_ = diag.str();
    return;
  }
  if (dram_width != width_for(geometry_.drams)) {
    diag << "dram field width " << dram_width << " does not address "
         << geometry_.drams << " drams";
    error_ = diag.str();
    return;
  }
  if (total != geometry_.addr_bits()) {
    diag << "field widths total " << total << " bits but the geometry needs "
         << geometry_.addr_bits();
    error_ = diag.str();
    return;
  }
  if (total > spec::kAddrBits) {
    diag << "map spans " << total << " bits; the HMC address field is only "
         << spec::kAddrBits;
    error_ = diag.str();
    return;
  }

  vault_mask_ = (vault_fields == 1) ? mask(vault_width) : 0;
  bank_mask_ = (bank_fields == 1) ? mask(bank_width) : 0;
  row_mask_ = (row_fields == 1) ? mask(row_width) : 0;
  valid_ = true;
  error_.clear();
}

AddressMap AddressMap::low_interleave(const Geometry& g, u64 max_block_bytes) {
  const unsigned off = is_pow2(max_block_bytes) ? log2_exact(max_block_bytes)
                                                : 5;
  const unsigned vaults = width_for(g.vaults);
  const unsigned banks = width_for(g.banks);
  const unsigned drams = width_for(g.drams);
  const unsigned row = g.addr_bits() - off - vaults - banks - drams;
  return AddressMap(g, {{AddrField::Offset, off},
                        {AddrField::Vault, vaults},
                        {AddrField::Bank, banks},
                        {AddrField::Dram, drams},
                        {AddrField::Row, row}});
}

AddressMap AddressMap::bank_first(const Geometry& g, u64 max_block_bytes) {
  const unsigned off = is_pow2(max_block_bytes) ? log2_exact(max_block_bytes)
                                                : 5;
  const unsigned vaults = width_for(g.vaults);
  const unsigned banks = width_for(g.banks);
  const unsigned drams = width_for(g.drams);
  const unsigned row = g.addr_bits() - off - vaults - banks - drams;
  return AddressMap(g, {{AddrField::Offset, off},
                        {AddrField::Bank, banks},
                        {AddrField::Vault, vaults},
                        {AddrField::Dram, drams},
                        {AddrField::Row, row}});
}

AddressMap AddressMap::linear(const Geometry& g, u64 max_block_bytes) {
  const unsigned off = is_pow2(max_block_bytes) ? log2_exact(max_block_bytes)
                                                : 5;
  const unsigned vaults = width_for(g.vaults);
  const unsigned banks = width_for(g.banks);
  const unsigned drams = width_for(g.drams);
  const unsigned row = g.addr_bits() - off - vaults - banks - drams;
  return AddressMap(g, {{AddrField::Offset, off},
                        {AddrField::Dram, drams},
                        {AddrField::Row, row},
                        {AddrField::Bank, banks},
                        {AddrField::Vault, vaults}});
}

Status AddressMap::decode(PhysAddr addr, DecodedAddr& out) const {
  if (!valid_) return Status::InvalidConfig;
  if (!in_range(addr)) return Status::InvalidArgument;

  out = DecodedAddr{};
  unsigned lo = 0;
  for (const auto& f : fields_) {
    const u64 v = extract(addr, lo, f.width);
    switch (f.kind) {
      case AddrField::Offset:
        out.offset = (out.offset) | (v << 0);  // offsets are always lowest
        break;
      case AddrField::Vault:
        out.vault = VaultId{static_cast<u32>((out.vault.get() << f.width) | v)};
        break;
      case AddrField::Bank:
        out.bank = BankId{static_cast<u32>((out.bank.get() << f.width) | v)};
        break;
      case AddrField::Dram:
        out.dram = DramId{static_cast<u32>((out.dram.get() << f.width) | v)};
        break;
      case AddrField::Row:
        out.row = (out.row << f.width) | v;
        break;
    }
    lo += f.width;
  }
  return Status::Ok;
}

Status AddressMap::encode(const DecodedAddr& in, PhysAddr& out) const {
  if (!valid_) return Status::InvalidConfig;
  if (in.vault.get() >= geometry_.vaults || in.bank.get() >= geometry_.banks ||
      in.dram.get() >= geometry_.drams) {
    return Status::InvalidArgument;
  }

  // Walk fields from the MSB down so multi-field (split) coordinates are
  // consumed most-significant-chunk first, mirroring decode's accumulation.
  u64 addr = 0;
  u64 vault = in.vault.get(), bank = in.bank.get(), dram = in.dram.get();
  u64 row = in.row, offset = in.offset;
  unsigned lo = geometry_.addr_bits();
  for (auto it = fields_.rbegin(); it != fields_.rend(); ++it) {
    lo -= it->width;
    u64 v = 0;
    switch (it->kind) {
      case AddrField::Offset:
        v = offset & mask(it->width);
        offset >>= it->width;
        break;
      case AddrField::Vault:
        v = vault & mask(it->width);
        vault >>= it->width;
        break;
      case AddrField::Bank:
        v = bank & mask(it->width);
        bank >>= it->width;
        break;
      case AddrField::Dram:
        v = dram & mask(it->width);
        dram >>= it->width;
        break;
      case AddrField::Row:
        v = row & mask(it->width);
        row >>= it->width;
        break;
    }
    addr = deposit(addr, lo, it->width, v);
  }
  if (row != 0 || offset != 0) return Status::InvalidArgument;
  out = addr;
  return Status::Ok;
}

}  // namespace hmcsim
