// Physical address interpretation for HMC devices.
//
// HMC physical addresses are 34-bit fields carrying vault, bank and DRAM
// address bits (paper §III.B).  The specification deliberately does NOT fix
// one layout: it offers *default map modes* that marry the vault/bank
// structure to the desired maximum block size, and allows implementers to
// define their own.  The default modes implement a *low interleave* order —
// less-significant bits select the vault, then the bank — so that sequential
// addresses first spread across vaults, then across banks within a vault,
// avoiding bank conflicts.
//
// `AddressMap` reproduces that flexibility: it is an ordered list of bit
// fields (offset / vault / bank / dram / row) assembled from the LSB up.
// Factory functions build the spec's default modes plus two deliberately
// worse layouts used by the ablation benches.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace hmcsim {

/// Physical geometry of one device, as the address map sees it.
struct Geometry {
  u32 vaults{16};       ///< 16 (4-link) or 32 (8-link)
  u32 banks{8};         ///< banks per vault: 8 or 16
  u32 drams{8};         ///< DRAMs per bank (data-lane slices)
  u64 bank_bytes{u64{16} * 1024 * 1024};

  [[nodiscard]] u64 capacity_bytes() const {
    return u64{vaults} * banks * bank_bytes;
  }
  /// Number of significant physical address bits for this capacity.
  [[nodiscard]] unsigned addr_bits() const;

  bool operator==(const Geometry&) const = default;
};

/// A physical address decomposed into its structural coordinates.
struct DecodedAddr {
  VaultId vault{};
  BankId bank{};
  DramId dram{};
  u64 row{0};     ///< block row within (vault, bank, dram)
  u64 offset{0};  ///< byte offset within the maximum request block

  bool operator==(const DecodedAddr&) const = default;
};

/// Kinds of bit fields an address map may contain, LSB upward.
enum class AddrField : u8 { Offset, Vault, Bank, Dram, Row };

/// One contiguous bit field of an address map.
struct AddrFieldSpec {
  AddrField kind;
  unsigned width;

  bool operator==(const AddrFieldSpec&) const = default;
};

class AddressMap {
 public:
  /// Build a map from an explicit field list.  The widths of the vault,
  /// bank and dram fields must exactly cover the geometry; the total width
  /// must equal geometry.addr_bits().  Returns an invalid map (see valid())
  /// on inconsistency, with a diagnostic in error().
  AddressMap(Geometry geometry, std::vector<AddrFieldSpec> fields);

  AddressMap() = default;

  /// Spec default mode: [offset][vault][bank][dram][row], low interleave.
  /// `max_block_bytes` is the maximum request size (32/64/128/256) and sets
  /// the offset width.
  static AddressMap low_interleave(const Geometry& g, u64 max_block_bytes);

  /// Bank bits below vault bits: sequential addresses hit the same vault's
  /// banks first.  Used by the A2 ablation.
  static AddressMap bank_first(const Geometry& g, u64 max_block_bytes);

  /// Vault/bank bits at the top: large contiguous regions land in a single
  /// bank.  The worst case for parallelism; used by the A2 ablation.
  static AddressMap linear(const Geometry& g, u64 max_block_bytes);

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const Geometry& geometry() const { return geometry_; }
  [[nodiscard]] const std::vector<AddrFieldSpec>& fields() const {
    return fields_;
  }
  [[nodiscard]] u64 max_block_bytes() const { return u64{1} << offset_width_; }

  /// Decompose a physical address.  Addresses beyond capacity yield
  /// Status::InvalidArgument (the vault pipeline turns that into an
  /// InvalidAddress error response).
  [[nodiscard]] Status decode(PhysAddr addr, DecodedAddr& out) const;

  /// Recompose coordinates into a physical address (inverse of decode).
  [[nodiscard]] Status encode(const DecodedAddr& in, PhysAddr& out) const;

  /// Fast path used by the simulator's hot loop: vault and bank only,
  /// no bounds diagnostics (caller has validated the address).
  [[nodiscard]] u32 vault_of(PhysAddr addr) const {
    return static_cast<u32>((addr >> vault_shift_) & vault_mask_);
  }
  [[nodiscard]] u32 bank_of(PhysAddr addr) const {
    return static_cast<u32>((addr >> bank_shift_) & bank_mask_);
  }
  /// Row coordinate fast path (valid for every built-in mode, where the
  /// row bits form one contiguous field; 0 when the field is split).
  [[nodiscard]] u64 row_of(PhysAddr addr) const {
    return (addr >> row_shift_) & row_mask_;
  }
  [[nodiscard]] bool in_range(PhysAddr addr) const {
    return addr < geometry_.capacity_bytes();
  }

 private:
  Geometry geometry_{};
  std::vector<AddrFieldSpec> fields_{};
  bool valid_{false};
  std::string error_{"default-constructed map"};
  unsigned offset_width_{0};
  // Cached single-field shift/mask fast paths.  Valid only when the vault
  // (resp. bank) bits form one contiguous field, which holds for every
  // built-in mode; the generic decode() handles arbitrary splits.
  unsigned vault_shift_{0};
  u64 vault_mask_{0};
  unsigned bank_shift_{0};
  u64 bank_mask_{0};
  unsigned row_shift_{0};
  u64 row_mask_{0};
};

}  // namespace hmcsim
