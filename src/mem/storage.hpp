// Sparse backing store for simulated DRAM contents.
//
// An 8 GB device cannot be eagerly allocated on a development host, and the
// paper's random-access workloads touch only a fraction of the address
// space.  `SparseStore` allocates 4 KiB pages on first write; reads of
// never-written memory return zeros (matching a device reset state).
//
// The store is indexed by the device-local 34-bit physical address.  The
// vault pipeline performs all accesses in 16-byte blocks (the HMC vault
// controller's block granularity), but arbitrary byte spans are supported
// for host-side convenience and tests.
//
// DRAM fault domain: faults are planted per 64-bit word as real bit flips in
// the stored data plus a sidecar record of the ground-truth flip masks.  The
// sidecar lets discovery (a demand read or the background scrubber) rebuild
// the word's SECDED check byte and run a genuine syndrome decode — a
// "corrected" SBE is an actual codec repair, an uncorrectable DBE an actual
// detection, not a counter bump.  Writes overwrite faults (fresh data means
// fresh check bits).  With no faults planted every fault hook is a single
// branch on an empty map, so the RAS-off cost is ~0.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/types.hpp"

namespace hmcsim {

class SparseStore {
 public:
  static constexpr usize kPageBytes = 4096;

  /// Result of running the SECDED codec over a span's fault records.
  struct FaultSummary {
    u32 corrected = 0;      ///< single-bit errors repaired in place
    u32 uncorrectable = 0;  ///< double-bit (or worse) errors detected
  };

  explicit SparseStore(u64 capacity_bytes) : capacity_(capacity_bytes) {}

  [[nodiscard]] u64 capacity() const { return capacity_; }

  /// Number of pages currently materialized (observability / tests).
  [[nodiscard]] usize resident_pages() const { return pages_.size(); }

  /// Read `out.size()` bytes at `addr`.  Returns false when the range
  /// exceeds capacity.  Unwritten bytes read as zero.
  bool read(u64 addr, std::span<u8> out) const;

  /// Write `in.size()` bytes at `addr`.  Returns false when out of range.
  /// Any fault records overlapping the written words are cleared first
  /// (their planted flips are backed out, then the new data lands).
  bool write(u64 addr, std::span<const u8> in);

  /// 64-bit word helpers used by the vault pipeline (little-endian).
  bool read_words(u64 addr, std::span<u64> out) const;
  bool write_words(u64 addr, std::span<const u64> in);

  /// Reset to the zero-filled state, releasing all pages and faults.
  void clear() {
    pages_.clear();
    faults_.clear();
  }

  // --- DRAM fault domain ----------------------------------------------

  /// Flip the given codeword bit positions of the 64-bit word containing
  /// `addr`.  Positions 0..63 flip stored data bits; 64..71 flip the word's
  /// (virtual) SECDED check bits.  Flipping the same position twice cancels.
  /// Returns false when `addr` is out of range.
  bool plant_fault(u64 addr, std::span<const u32> codeword_bits);

  /// Run the SECDED codec over every faulted word overlapping
  /// [addr, addr+bytes).  Corrected words are repaired in the store and
  /// their records erased; uncorrectable words stay poisoned so subsequent
  /// reads keep failing until overwritten.
  FaultSummary check_and_repair(u64 addr, usize bytes);

  /// Scrubber variant of check_and_repair: uncorrectable words are also
  /// rebuilt from the ground-truth masks and their records dropped,
  /// modeling page retirement + rebuild after the scrubber reports them.
  FaultSummary scrub_span(u64 addr, u64 bytes);

  /// Outstanding (undiscovered or poisoned) fault records.
  [[nodiscard]] usize fault_count() const { return faults_.size(); }

  /// True when any fault record overlaps [addr, addr+bytes).
  [[nodiscard]] bool has_fault(u64 addr, usize bytes) const;

  /// Visit every fault record in ascending word order (checkpointing).
  template <typename Fn>  // Fn(u64 word_index, u64 data_flips, u8 check_flips)
  void for_each_fault(Fn&& fn) const {
    for (const auto& [word, rec] : faults_) {
      fn(word, rec.data_flips, rec.check_flips);
    }
  }

  /// Re-create one fault record verbatim (checkpoint restore; the flipped
  /// data bits are already present in the restored pages).  Returns false
  /// when the word lies beyond capacity or both masks are zero.
  bool restore_fault(u64 word_index, u64 data_flips, u8 check_flips);

  /// Visit every materialized page (for checkpointing).  Order is
  /// unspecified; pages are kPageBytes long.
  template <typename Fn>  // Fn(u64 page_index, std::span<const u8> bytes)
  void for_each_page(Fn&& fn) const {
    for (const auto& [index, page] : pages_) {
      fn(index, std::span<const u8>(page->data(), kPageBytes));
    }
  }

  /// Materialize one page with exact contents (for checkpoint restore).
  /// Returns false when the page lies beyond capacity or the span is not
  /// kPageBytes long.
  bool restore_page(u64 page_index, std::span<const u8> bytes);

 private:
  using Page = std::array<u8, kPageBytes>;

  struct FaultRecord {
    u64 data_flips = 0;  ///< xor mask currently applied to the stored word
    u8 check_flips = 0;  ///< xor mask applied to the virtual check byte
  };
  // Ordered so scrub windows and checkpoints walk words deterministically.
  using FaultMap = std::map<u64, FaultRecord>;

  [[nodiscard]] const Page* find_page(u64 page_index) const;
  Page& materialize_page(u64 page_index);

  /// Raw aligned-word access that bypasses the fault hooks.
  [[nodiscard]] u64 load_word(u64 word_index) const;
  void store_word(u64 word_index, u64 value);

  /// Decode one record; repairs/erases per the rules above.  Returns the
  /// iterator past the (possibly erased) record.
  FaultMap::iterator decode_record(FaultMap::iterator it, FaultSummary& out,
                                   bool retire_uncorrectable);

  /// Back planted flips out of words overlapping [addr, addr+bytes) and
  /// drop their records (a write is about to supersede them).
  void clear_faults_in(u64 addr, usize bytes);

  u64 capacity_;
  std::unordered_map<u64, std::unique_ptr<Page>> pages_;
  FaultMap faults_;
};

}  // namespace hmcsim
