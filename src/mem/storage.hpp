// Sparse backing store for simulated DRAM contents.
//
// An 8 GB device cannot be eagerly allocated on a development host, and the
// paper's random-access workloads touch only a fraction of the address
// space.  `SparseStore` allocates 4 KiB pages on first write; reads of
// never-written memory return zeros (matching a device reset state).
//
// The store is indexed by the device-local 34-bit physical address.  The
// vault pipeline performs all accesses in 16-byte blocks (the HMC vault
// controller's block granularity), but arbitrary byte spans are supported
// for host-side convenience and tests.
//
// Concurrency: the parallel clock engine retires requests for different
// vaults on different threads, and a 4 KiB page spans many vaults'
// interleaved blocks — so the page table is a flat array of atomic page
// pointers.  Lookups are lock-free loads; first-touch materialization is a
// compare-exchange (the loser frees its zero-filled candidate, so page
// contents are identical regardless of which thread wins).  Concurrent
// accesses to one page always target disjoint byte ranges (each vault owns
// its interleaved blocks), which is race-free by the C++ memory model.
// The flat table also makes page iteration order deterministic by
// construction (ascending index), which checkpointing relies on.
//
// DRAM fault domain: faults are planted per 64-bit word as real bit flips in
// the stored data plus a sidecar record of the ground-truth flip masks.  The
// sidecar lets discovery (a demand read or the background scrubber) rebuild
// the word's SECDED check byte and run a genuine syndrome decode — a
// "corrected" SBE is an actual codec repair, an uncorrectable DBE an actual
// detection, not a counter bump.  Writes overwrite faults (fresh data means
// fresh check bits).  The sidecar map is guarded by a mutex (different
// vaults only ever touch faults in their own address ranges, so the lock
// protects map structure, never logical state), and the hot-path "any
// faults at all?" gate is a relaxed atomic counter — with no faults planted
// every fault hook is a single load, so the RAS-off cost stays ~0.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace hmcsim {

class SparseStore {
 public:
  static constexpr usize kPageBytes = 4096;

  /// Result of running the SECDED codec over a span's fault records.
  struct FaultSummary {
    u32 corrected = 0;      ///< single-bit errors repaired in place
    u32 uncorrectable = 0;  ///< double-bit (or worse) errors detected
  };

  explicit SparseStore(u64 capacity_bytes)
      : capacity_(capacity_bytes),
        pages_((capacity_bytes + kPageBytes - 1) / kPageBytes) {}

  ~SparseStore() { release_pages(); }

  SparseStore(const SparseStore&) = delete;
  SparseStore& operator=(const SparseStore&) = delete;

  [[nodiscard]] u64 capacity() const { return capacity_; }

  /// Number of pages currently materialized (observability / tests).
  [[nodiscard]] usize resident_pages() const {
    return resident_.load(std::memory_order_relaxed);
  }

  /// Read `out.size()` bytes at `addr`.  Returns false when the range
  /// exceeds capacity.  Unwritten bytes read as zero.
  bool read(u64 addr, std::span<u8> out) const;

  /// Write `in.size()` bytes at `addr`.  Returns false when out of range.
  /// Any fault records overlapping the written words are cleared first
  /// (their planted flips are backed out, then the new data lands).
  bool write(u64 addr, std::span<const u8> in);

  /// 64-bit word helpers used by the vault pipeline (little-endian).
  bool read_words(u64 addr, std::span<u64> out) const;
  bool write_words(u64 addr, std::span<const u64> in);

  /// Reset to the zero-filled state, releasing all pages and faults.
  /// Not thread-safe; callers quiesce the clock engine first.
  void clear() {
    release_pages();
    resident_.store(0, std::memory_order_relaxed);
    faults_.clear();
    fault_count_.store(0, std::memory_order_relaxed);
  }

  // --- DRAM fault domain ----------------------------------------------

  /// Flip the given codeword bit positions of the 64-bit word containing
  /// `addr`.  Positions 0..63 flip stored data bits; 64..71 flip the word's
  /// (virtual) SECDED check bits.  Flipping the same position twice cancels.
  /// Returns false when `addr` is out of range.
  bool plant_fault(u64 addr, std::span<const u32> codeword_bits);

  /// Run the SECDED codec over every faulted word overlapping
  /// [addr, addr+bytes).  Corrected words are repaired in the store and
  /// their records erased; uncorrectable words stay poisoned so subsequent
  /// reads keep failing until overwritten.
  FaultSummary check_and_repair(u64 addr, usize bytes);

  /// Scrubber variant of check_and_repair: uncorrectable words are also
  /// rebuilt from the ground-truth masks and their records dropped,
  /// modeling page retirement + rebuild after the scrubber reports them.
  FaultSummary scrub_span(u64 addr, u64 bytes);

  /// Outstanding (undiscovered or poisoned) fault records.  The count may
  /// be momentarily stale while another thread plants or repairs faults in
  /// ITS OWN address range; a vault's own faults are always visible to it.
  [[nodiscard]] usize fault_count() const {
    return fault_count_.load(std::memory_order_relaxed);
  }

  /// True when any fault record overlaps [addr, addr+bytes).
  [[nodiscard]] bool has_fault(u64 addr, usize bytes) const;

  /// Visit every fault record in ascending word order (checkpointing).
  /// Not thread-safe against concurrent fault mutation; checkpoint-time
  /// only (the clock engine is quiescent between cycles).
  template <typename Fn>  // Fn(u64 word_index, u64 data_flips, u8 check_flips)
  void for_each_fault(Fn&& fn) const {
    for (const auto& [word, rec] : faults_) {
      fn(word, rec.data_flips, rec.check_flips);
    }
  }

  /// Re-create one fault record verbatim (checkpoint restore; the flipped
  /// data bits are already present in the restored pages).  Returns false
  /// when the word lies beyond capacity or both masks are zero.
  bool restore_fault(u64 word_index, u64 data_flips, u8 check_flips);

  /// Visit every materialized page in ascending index order (for
  /// checkpointing).  Pages are kPageBytes long.
  template <typename Fn>  // Fn(u64 page_index, std::span<const u8> bytes)
  void for_each_page(Fn&& fn) const {
    for (usize i = 0; i < pages_.size(); ++i) {
      if (const Page* page = pages_[i].load(std::memory_order_acquire)) {
        fn(i, std::span<const u8>(page->data(), kPageBytes));
      }
    }
  }

  /// Materialize one page with exact contents (for checkpoint restore).
  /// Returns false when the page lies beyond capacity or the span is not
  /// kPageBytes long.
  bool restore_page(u64 page_index, std::span<const u8> bytes);

 private:
  using Page = std::array<u8, kPageBytes>;

  struct FaultRecord {
    u64 data_flips = 0;  ///< xor mask currently applied to the stored word
    u8 check_flips = 0;  ///< xor mask applied to the virtual check byte
  };
  // Ordered so scrub windows and checkpoints walk words deterministically.
  using FaultMap = std::map<u64, FaultRecord>;

  [[nodiscard]] const Page* find_page(u64 page_index) const;
  Page& materialize_page(u64 page_index);
  void release_pages();

  /// Raw aligned-word access that bypasses the fault hooks.
  [[nodiscard]] u64 load_word(u64 word_index) const;
  void store_word(u64 word_index, u64 value);

  /// Decode one record; repairs/erases per the rules above.  Returns the
  /// iterator past the (possibly erased) record.  Caller holds fault_mutex_.
  FaultMap::iterator decode_record(FaultMap::iterator it, FaultSummary& out,
                                   bool retire_uncorrectable);

  /// Back planted flips out of words overlapping [addr, addr+bytes) and
  /// drop their records (a write is about to supersede them).
  void clear_faults_in(u64 addr, usize bytes);

  u64 capacity_;
  /// Flat page table: slot i holds page i or nullptr.  ~2 MiB of pointers
  /// per simulated GiB — cheaper than the hash map it replaced, lock-free,
  /// and deterministically ordered.
  std::vector<std::atomic<Page*>> pages_;
  std::atomic<usize> resident_{0};
  FaultMap faults_;
  std::atomic<usize> fault_count_{0};
  mutable std::mutex fault_mutex_;
};

}  // namespace hmcsim
