// Sparse backing store for simulated DRAM contents.
//
// An 8 GB device cannot be eagerly allocated on a development host, and the
// paper's random-access workloads touch only a fraction of the address
// space.  `SparseStore` allocates 4 KiB pages on first write; reads of
// never-written memory return zeros (matching a device reset state).
//
// The store is indexed by the device-local 34-bit physical address.  The
// vault pipeline performs all accesses in 16-byte blocks (the HMC vault
// controller's block granularity), but arbitrary byte spans are supported
// for host-side convenience and tests.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/types.hpp"

namespace hmcsim {

class SparseStore {
 public:
  static constexpr usize kPageBytes = 4096;

  explicit SparseStore(u64 capacity_bytes) : capacity_(capacity_bytes) {}

  [[nodiscard]] u64 capacity() const { return capacity_; }

  /// Number of pages currently materialized (observability / tests).
  [[nodiscard]] usize resident_pages() const { return pages_.size(); }

  /// Read `out.size()` bytes at `addr`.  Returns false when the range
  /// exceeds capacity.  Unwritten bytes read as zero.
  bool read(u64 addr, std::span<u8> out) const;

  /// Write `in.size()` bytes at `addr`.  Returns false when out of range.
  bool write(u64 addr, std::span<const u8> in);

  /// 64-bit word helpers used by the vault pipeline (little-endian).
  bool read_words(u64 addr, std::span<u64> out) const;
  bool write_words(u64 addr, std::span<const u64> in);

  /// Reset to the zero-filled state, releasing all pages.
  void clear() { pages_.clear(); }

  /// Visit every materialized page (for checkpointing).  Order is
  /// unspecified; pages are kPageBytes long.
  template <typename Fn>  // Fn(u64 page_index, std::span<const u8> bytes)
  void for_each_page(Fn&& fn) const {
    for (const auto& [index, page] : pages_) {
      fn(index, std::span<const u8>(page->data(), kPageBytes));
    }
  }

  /// Materialize one page with exact contents (for checkpoint restore).
  /// Returns false when the page lies beyond capacity or the span is not
  /// kPageBytes long.
  bool restore_page(u64 page_index, std::span<const u8> bytes);

 private:
  using Page = std::array<u8, kPageBytes>;

  [[nodiscard]] const Page* find_page(u64 page_index) const;
  Page& materialize_page(u64 page_index);

  u64 capacity_;
  std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

}  // namespace hmcsim
