#include "mem/ecc.hpp"

#include <array>
#include <bit>

namespace hmcsim::ecc {
namespace {

// Each codeword bit carries a 7-bit syndrome column.  Check bit j owns the
// power-of-two column (1 << j); the 64 data bits take the first 64 non-zero,
// non-power-of-two values in ascending order.  A single flipped bit then
// reproduces exactly its own column as the syndrome, which is how decode
// locates it.
constexpr std::array<u8, kDataBits> make_columns() {
  std::array<u8, kDataBits> cols{};
  u32 next = 0;
  for (u32 v = 3; v < 128 && next < kDataBits; ++v) {
    if ((v & (v - 1)) == 0) continue;  // powers of two belong to check bits
    cols[next++] = static_cast<u8>(v);
  }
  return cols;
}
constexpr std::array<u8, kDataBits> kColumns = make_columns();

// mask[j]: the data bits participating in Hamming check j.
constexpr std::array<u64, 7> make_masks() {
  std::array<u64, 7> masks{};
  for (u32 i = 0; i < kDataBits; ++i) {
    for (u32 j = 0; j < 7; ++j) {
      if (kColumns[i] & (1u << j)) masks[j] |= u64{1} << i;
    }
  }
  return masks;
}
constexpr std::array<u64, 7> kMasks = make_masks();

constexpr u32 parity64(u64 v) { return std::popcount(v) & 1u; }

}  // namespace

u8 secded_encode(u64 data) {
  u8 check = 0;
  for (u32 j = 0; j < 7; ++j) {
    check |= static_cast<u8>(parity64(data & kMasks[j]) << j);
  }
  // Bit 7: overall parity over data plus the seven Hamming checks, making
  // the full 72-bit codeword even-weight.
  const u32 overall = parity64(data) ^ parity64(u64{check} & 0x7f);
  check |= static_cast<u8>(overall << 7);
  return check;
}

SecdedOutcome secded_decode(u64& data, u8& check) {
  u8 syndrome = 0;
  for (u32 j = 0; j < 7; ++j) {
    const u32 expect = parity64(data & kMasks[j]);
    const u32 stored = (check >> j) & 1u;
    syndrome |= static_cast<u8>((expect ^ stored) << j);
  }
  const u32 overall = parity64(data) ^ parity64(u64{check});

  if (syndrome == 0 && overall == 0) return SecdedOutcome::Clean;

  if (overall == 1) {
    // Odd total weight: exactly one bit flipped (or an odd-weight burst,
    // which SECDED cannot distinguish — standard behavior).
    if (syndrome == 0) {
      check ^= 0x80;  // the overall-parity bit itself
      return SecdedOutcome::Corrected;
    }
    if ((syndrome & (syndrome - 1)) == 0) {
      // Power-of-two syndrome: a Hamming check bit flipped.
      check ^= syndrome;
      return SecdedOutcome::Corrected;
    }
    for (u32 i = 0; i < kDataBits; ++i) {
      if (kColumns[i] == syndrome) {
        data ^= u64{1} << i;
        return SecdedOutcome::Corrected;
      }
    }
    // Syndrome matches no column: multi-bit corruption masquerading with
    // odd weight — refuse to "correct" into a third wrong word.
    return SecdedOutcome::Uncorrectable;
  }

  // Even weight with a non-zero syndrome: double-bit error.
  return SecdedOutcome::Uncorrectable;
}

}  // namespace hmcsim::ecc
