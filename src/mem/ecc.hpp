// SECDED(72,64) error-correcting code for the simulated DRAM fault domain.
//
// Classic Hsiao-style construction: a Hamming(71,64) code extended with an
// overall parity bit, giving single-error correction and double-error
// detection over a 64-bit data word plus 8 check bits — the layout real
// DDR/HMC DRAM dies use per burst beat.  Bit positions 0..63 are data bits,
// 64..71 are check bits (64..70 the Hamming checks, 71 overall parity).
//
// The fault-injection layer (mem/storage.hpp) records ground-truth flips in
// a sidecar and routes every discovered fault through this codec, so a
// "corrected" SBE really is a syndrome decode and a "DBE" really is an
// uncorrectable-syndrome detection, not just a counter bump.
#pragma once

#include "common/types.hpp"

namespace hmcsim::ecc {

/// Codeword width: 64 data bits + 8 check bits.
inline constexpr u32 kCodewordBits = 72;
inline constexpr u32 kDataBits = 64;

enum class SecdedOutcome : u8 {
  Clean,          ///< syndrome zero, parity even: no error
  Corrected,      ///< single-bit error located and repaired
  Uncorrectable,  ///< double-bit (or worse even-weight) error detected
};

/// Compute the 8 check bits for a 64-bit data word.
[[nodiscard]] u8 secded_encode(u64 data);

/// Decode a (possibly corrupted) codeword.  `data` and `check` are repaired
/// in place when a single-bit error is found.  Returns the outcome; on
/// Uncorrectable the data must be treated as poisoned.
[[nodiscard]] SecdedOutcome secded_decode(u64& data, u8& check);

}  // namespace hmcsim::ecc
