#include "mem/storage.hpp"

#include <algorithm>
#include <cstring>

#include "mem/ecc.hpp"

namespace hmcsim {

void SparseStore::release_pages() {
  for (auto& slot : pages_) {
    delete slot.exchange(nullptr, std::memory_order_relaxed);
  }
}

const SparseStore::Page* SparseStore::find_page(u64 page_index) const {
  return pages_[page_index].load(std::memory_order_acquire);
}

SparseStore::Page& SparseStore::materialize_page(u64 page_index) {
  std::atomic<Page*>& slot = pages_[page_index];
  Page* page = slot.load(std::memory_order_acquire);
  if (page != nullptr) return *page;
  // First touch: race to install a zero-filled page.  The loser frees its
  // candidate and adopts the winner's — contents are identical either way,
  // so materialization order cannot affect simulation results.
  Page* fresh = new Page();
  fresh->fill(0);
  if (slot.compare_exchange_strong(page, fresh, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    resident_.fetch_add(1, std::memory_order_relaxed);
    return *fresh;
  }
  delete fresh;
  return *page;
}

u64 SparseStore::load_word(u64 word_index) const {
  const u64 addr = word_index * 8;
  const Page* page = find_page(addr / kPageBytes);
  if (page == nullptr) return 0;
  u64 value = 0;
  std::memcpy(&value, page->data() + addr % kPageBytes, 8);
  return value;
}

void SparseStore::store_word(u64 word_index, u64 value) {
  const u64 addr = word_index * 8;
  Page& page = materialize_page(addr / kPageBytes);
  std::memcpy(page.data() + addr % kPageBytes, &value, 8);
}

bool SparseStore::read(u64 addr, std::span<u8> out) const {
  if (addr + out.size() > capacity_ || addr + out.size() < addr) return false;
  usize done = 0;
  while (done < out.size()) {
    const u64 pos = addr + done;
    const u64 page_index = pos / kPageBytes;
    const usize in_page = static_cast<usize>(pos % kPageBytes);
    const usize chunk = std::min(out.size() - done, kPageBytes - in_page);
    if (const Page* page = find_page(page_index)) {
      std::memcpy(out.data() + done, page->data() + in_page, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return true;
}

bool SparseStore::write(u64 addr, std::span<const u8> in) {
  if (addr + in.size() > capacity_ || addr + in.size() < addr) return false;
  if (fault_count() != 0) clear_faults_in(addr, in.size());
  usize done = 0;
  while (done < in.size()) {
    const u64 pos = addr + done;
    const u64 page_index = pos / kPageBytes;
    const usize in_page = static_cast<usize>(pos % kPageBytes);
    const usize chunk = std::min(in.size() - done, kPageBytes - in_page);
    Page& page = materialize_page(page_index);
    std::memcpy(page.data() + in_page, in.data() + done, chunk);
    done += chunk;
  }
  return true;
}

bool SparseStore::restore_page(u64 page_index, std::span<const u8> bytes) {
  if (bytes.size() != kPageBytes) return false;
  if (page_index * kPageBytes >= capacity_) return false;
  Page& page = materialize_page(page_index);
  std::memcpy(page.data(), bytes.data(), kPageBytes);
  return true;
}

bool SparseStore::read_words(u64 addr, std::span<u64> out) const {
  return read(addr, {reinterpret_cast<u8*>(out.data()), out.size() * 8});
}

bool SparseStore::write_words(u64 addr, std::span<const u64> in) {
  return write(addr,
               {reinterpret_cast<const u8*>(in.data()), in.size() * 8});
}

bool SparseStore::plant_fault(u64 addr, std::span<const u32> codeword_bits) {
  if (addr >= capacity_) return false;
  const u64 word = addr / 8;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  FaultRecord& rec = faults_[word];
  for (const u32 bit : codeword_bits) {
    if (bit < ecc::kDataBits) {
      const u64 mask = u64{1} << bit;
      rec.data_flips ^= mask;
      store_word(word, load_word(word) ^ mask);
    } else if (bit < ecc::kCodewordBits) {
      rec.check_flips ^= static_cast<u8>(1u << (bit - ecc::kDataBits));
    }
  }
  if (rec.data_flips == 0 && rec.check_flips == 0) faults_.erase(word);
  fault_count_.store(faults_.size(), std::memory_order_relaxed);
  return true;
}

bool SparseStore::restore_fault(u64 word_index, u64 data_flips,
                                u8 check_flips) {
  if (word_index * 8 >= capacity_) return false;
  if (data_flips == 0 && check_flips == 0) return false;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  faults_[word_index] = FaultRecord{data_flips, check_flips};
  fault_count_.store(faults_.size(), std::memory_order_relaxed);
  return true;
}

bool SparseStore::has_fault(u64 addr, usize bytes) const {
  if (fault_count() == 0 || bytes == 0) return false;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  const auto it = faults_.lower_bound(addr / 8);
  return it != faults_.end() && it->first <= (addr + bytes - 1) / 8;
}

SparseStore::FaultMap::iterator SparseStore::decode_record(
    FaultMap::iterator it, FaultSummary& out, bool retire_uncorrectable) {
  u64 data = load_word(it->first);
  // The check byte was consistent with the pre-fault data; rebuild it from
  // the ground-truth masks so the codec sees exactly the stored codeword.
  u8 check = static_cast<u8>(ecc::secded_encode(data ^ it->second.data_flips) ^
                             it->second.check_flips);
  switch (ecc::secded_decode(data, check)) {
    case ecc::SecdedOutcome::Corrected:
      ++out.corrected;
      [[fallthrough]];
    case ecc::SecdedOutcome::Clean:
      store_word(it->first, data);
      return faults_.erase(it);
    case ecc::SecdedOutcome::Uncorrectable:
      ++out.uncorrectable;
      if (retire_uncorrectable) {
        store_word(it->first, load_word(it->first) ^ it->second.data_flips);
        return faults_.erase(it);
      }
      return std::next(it);
  }
  return std::next(it);  // unreachable; silences -Werror=return-type
}

SparseStore::FaultSummary SparseStore::check_and_repair(u64 addr,
                                                        usize bytes) {
  FaultSummary out;
  if (fault_count() == 0 || bytes == 0) return out;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  const u64 last = (addr + bytes - 1) / 8;
  auto it = faults_.lower_bound(addr / 8);
  while (it != faults_.end() && it->first <= last) {
    it = decode_record(it, out, /*retire_uncorrectable=*/false);
  }
  fault_count_.store(faults_.size(), std::memory_order_relaxed);
  return out;
}

SparseStore::FaultSummary SparseStore::scrub_span(u64 addr, u64 bytes) {
  FaultSummary out;
  if (fault_count() == 0 || bytes == 0) return out;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  const u64 last = (addr + bytes - 1) / 8;
  auto it = faults_.lower_bound(addr / 8);
  while (it != faults_.end() && it->first <= last) {
    it = decode_record(it, out, /*retire_uncorrectable=*/true);
  }
  fault_count_.store(faults_.size(), std::memory_order_relaxed);
  return out;
}

void SparseStore::clear_faults_in(u64 addr, usize bytes) {
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  const u64 last = (addr + bytes - 1) / 8;
  auto it = faults_.lower_bound(addr / 8);
  while (it != faults_.end() && it->first <= last) {
    store_word(it->first, load_word(it->first) ^ it->second.data_flips);
    it = faults_.erase(it);
  }
  fault_count_.store(faults_.size(), std::memory_order_relaxed);
}

}  // namespace hmcsim
