#include "mem/storage.hpp"

#include <algorithm>
#include <cstring>

namespace hmcsim {

const SparseStore::Page* SparseStore::find_page(u64 page_index) const {
  const auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

SparseStore::Page& SparseStore::materialize_page(u64 page_index) {
  auto& slot = pages_[page_index];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

bool SparseStore::read(u64 addr, std::span<u8> out) const {
  if (addr + out.size() > capacity_ || addr + out.size() < addr) return false;
  usize done = 0;
  while (done < out.size()) {
    const u64 pos = addr + done;
    const u64 page_index = pos / kPageBytes;
    const usize in_page = static_cast<usize>(pos % kPageBytes);
    const usize chunk = std::min(out.size() - done, kPageBytes - in_page);
    if (const Page* page = find_page(page_index)) {
      std::memcpy(out.data() + done, page->data() + in_page, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return true;
}

bool SparseStore::write(u64 addr, std::span<const u8> in) {
  if (addr + in.size() > capacity_ || addr + in.size() < addr) return false;
  usize done = 0;
  while (done < in.size()) {
    const u64 pos = addr + done;
    const u64 page_index = pos / kPageBytes;
    const usize in_page = static_cast<usize>(pos % kPageBytes);
    const usize chunk = std::min(in.size() - done, kPageBytes - in_page);
    Page& page = materialize_page(page_index);
    std::memcpy(page.data() + in_page, in.data() + done, chunk);
    done += chunk;
  }
  return true;
}

bool SparseStore::restore_page(u64 page_index, std::span<const u8> bytes) {
  if (bytes.size() != kPageBytes) return false;
  if (page_index * kPageBytes >= capacity_) return false;
  Page& page = materialize_page(page_index);
  std::memcpy(page.data(), bytes.data(), kPageBytes);
  return true;
}

bool SparseStore::read_words(u64 addr, std::span<u64> out) const {
  return read(addr, {reinterpret_cast<u8*>(out.data()), out.size() * 8});
}

bool SparseStore::write_words(u64 addr, std::span<const u64> in) {
  return write(addr,
               {reinterpret_cast<const u8*>(in.data()), in.size() * 8});
}

}  // namespace hmcsim
