// The uniform queue structure shared by every queuing point in the device
// hierarchy (paper §IV.A, "Queue Structure").
//
// A physical HMC implementation registers packets in queue slots, each with
// a valid designator and storage for the largest 9-FLIT packet.  The
// crossbar and vault queue depths are chosen by the user at initialization
// time (paper §IV requirement 3, "Flexible Queuing").
//
// `BoundedQueue<Entry>` models one such queue: a fixed-capacity FIFO whose
// entries can also be *removed from the middle*, because the HMC weak
// ordering model allows selected packets to pass others (packets destined
// for ancillary devices may pass those waiting for local vault access, and
// vaults may retire non-head packets whose banks are free — §III.C).
//
// Entries are held in FIFO order in a contiguous array; middle removal is
// O(n) with n <= the configured depth (128 in the paper's experiments),
// which profiles faster than a linked structure at these sizes.
#pragma once

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hmcsim {

/// Occupancy statistics every queue keeps; exposed through the trace layer.
struct QueueStats {
  u64 total_pushes{0};
  u64 total_pops{0};
  u64 rejected_full{0};  ///< push attempts refused because the queue was full
  usize high_water{0};   ///< maximum simultaneous occupancy observed
};

template <typename Entry>
class BoundedQueue {
 public:
  BoundedQueue() = default;
  explicit BoundedQueue(usize capacity) : capacity_(capacity) {
    entries_.reserve(capacity);
  }

  [[nodiscard]] usize capacity() const { return capacity_; }
  [[nodiscard]] usize size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] usize free_slots() const {
    // Saturating: push_front can transiently overfill (bounced forwards).
    return entries_.size() >= capacity_ ? 0 : capacity_ - entries_.size();
  }

  /// Append at the FIFO back.  Returns false (and counts a rejection) when
  /// every slot is valid — the caller turns this into a stall signal.
  bool push(Entry e) {
    if (full()) {
      ++stats_.rejected_full;
      return false;
    }
    entries_.push_back(std::move(e));
    ++stats_.total_pushes;
    stats_.high_water = std::max(stats_.high_water, entries_.size());
    return true;
  }

  /// Reinstate an entry at the FIFO head, bypassing the capacity check.
  /// Used only to bounce an optimistically removed entry back (the parallel
  /// crossbar's two-phase forward when the destination filled up in the
  /// meantime); the queue may transiently exceed its capacity until the
  /// entry moves on, during which free_slots() saturates at zero.
  void push_front(Entry e) {
    entries_.insert(entries_.begin(), std::move(e));
    stats_.high_water = std::max(stats_.high_water, entries_.size());
  }

  /// FIFO-ordered access; index 0 is the oldest entry.
  [[nodiscard]] Entry& at(usize i) {
    assert(i < entries_.size());
    return entries_[i];
  }
  [[nodiscard]] const Entry& at(usize i) const {
    assert(i < entries_.size());
    return entries_[i];
  }

  [[nodiscard]] Entry& front() { return at(0); }

  /// Remove the entry at FIFO position `i` (0 == head).  Preserves the
  /// relative order of everything else, which is what keeps the
  /// link-to-bank stream ordering intact when non-head entries retire.
  Entry remove(usize i) {
    assert(i < entries_.size());
    Entry e = std::move(entries_[i]);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    ++stats_.total_pops;
    return e;
  }

  Entry pop_front() { return remove(0); }

  void clear() { entries_.clear(); }

  [[nodiscard]] const QueueStats& stats() const { return stats_; }
  void reset_stats() { stats_ = QueueStats{}; }
  /// Checkpoint-restore path: reinstate previously captured statistics.
  void restore_stats(const QueueStats& s) { stats_ = s; }

  /// Iteration in FIFO order (oldest first).
  [[nodiscard]] auto begin() { return entries_.begin(); }
  [[nodiscard]] auto end() { return entries_.end(); }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  usize capacity_{0};
  std::vector<Entry> entries_;
  QueueStats stats_;
};

}  // namespace hmcsim
