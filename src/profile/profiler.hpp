// Simulator self-profiler: steady-clock wall-time attribution for the
// six-stage clock engine.
//
// The clock() dispatch loop times each stage serially (the span includes
// thread-pool fan-out and the fixed-order merge), while the shard lambdas
// additionally time their own bodies — per device for the crossbar stages
// (1-2, where shard == device) and per vault for the fused stage 3-4.  Each
// shard owns its accounting slot exclusively (the shard *is* the device or
// (device, vault)), so concurrent shards never write the same counter and
// no merge step is needed: the accumulation order per slot is the shard's
// own execution order, and cross-slot totals are order-independent sums.
//
// The profiler is pure observation: it reads the monotonic clock and adds
// to counters, never branching simulation behavior — runs with it on are
// bit-identical to runs with it off (differential-proven).  Wall times are
// inherently non-deterministic; everything the simulation can observe is
// not derived from them.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace hmcsim {

/// Profiled phases of one clock() call.  Stages 3 and 4 are fused in the
/// engine (one pass per vault does conflict recognition + retirement), so
/// they are attributed as one phase; FastForward accounts the O(1) skip
/// path (see DeviceConfig::fast_forward).
enum class ProfileStage : u8 {
  Stage1Xbar,     ///< child-device link crossbar
  Stage2RootXbar, ///< root-device link crossbar
  Stage34Vaults,  ///< bank-conflict recognition + vault retirement (fused)
  Stage5Responses,///< response registration and link transfer (serial)
  Stage6Clock,    ///< scrub step, register edge, clock update, watchdog
  FastForward,    ///< idle-cycle skip path (arm checks + fast cycles)
};

inline constexpr usize kProfileStageCount = 6;

[[nodiscard]] const char* profile_stage_name(ProfileStage stage);

class StageProfiler {
 public:
  /// Size the per-device / per-vault slot arrays.  `vaults_per_device` uses
  /// the homogeneous-device geometry (all cubes alike).
  StageProfiler(u32 num_devices, u32 vaults_per_device);

  /// Monotonic nanoseconds (std::chrono::steady_clock).
  [[nodiscard]] static u64 now_ns();

  // ---- recording (hot path; plain adds, no locking needed — see header) --
  void add_stage(ProfileStage stage, u64 ns) {
    stage_ns_[static_cast<usize>(stage)] += ns;
  }
  /// Shard-side attribution for the crossbar stages (slot owner: device).
  void add_device(ProfileStage stage, u32 dev, u64 ns) {
    device_ns_[static_cast<usize>(stage)][dev] += ns;
  }
  /// Shard-side attribution for stage 3-4 (slot owner: (device, vault)).
  /// The engine feeds this on a 1-in-16-cycle sample (keyed to the
  /// deterministic cycle counter), so vault_ns values are relative weights
  /// for ranking vaults, not wall-time totals.
  void add_vault(u32 dev, u32 vault, u64 ns) {
    vault_ns_[usize{dev} * vaults_per_device_ + vault] += ns;
  }
  void note_staged_cycle() { ++staged_cycles_; }
  void note_fast_cycle() { ++fast_cycles_; }
  void note_skip_span() { ++skip_spans_; }

  // ---- reporting ---------------------------------------------------------
  [[nodiscard]] u64 stage_ns(ProfileStage stage) const {
    return stage_ns_[static_cast<usize>(stage)];
  }
  [[nodiscard]] u64 total_ns() const;
  [[nodiscard]] u64 device_ns(ProfileStage stage, u32 dev) const {
    return device_ns_[static_cast<usize>(stage)][dev];
  }
  [[nodiscard]] u64 vault_ns(u32 dev, u32 vault) const {
    return vault_ns_[usize{dev} * vaults_per_device_ + vault];
  }
  [[nodiscard]] u32 num_devices() const { return num_devices_; }
  [[nodiscard]] u32 vaults_per_device() const { return vaults_per_device_; }
  /// clock() calls that executed the full six-stage pass.
  [[nodiscard]] u64 staged_cycles() const { return staged_cycles_; }
  /// clock() calls absorbed by the fast-forward skip path.
  [[nodiscard]] u64 fast_cycles() const { return fast_cycles_; }
  /// Contiguous fast-forward spans (disarm events close a span).
  [[nodiscard]] u64 skip_spans() const { return skip_spans_; }

  void reset();

 private:
  u32 num_devices_;
  u32 vaults_per_device_;
  u64 stage_ns_[kProfileStageCount]{};
  u64 staged_cycles_{0};
  u64 fast_cycles_{0};
  u64 skip_spans_{0};
  /// Per-device shard time for Stage1Xbar / Stage2RootXbar (other stages
  /// unused but kept uniform for simple indexing).
  std::vector<u64> device_ns_[kProfileStageCount];
  std::vector<u64> vault_ns_;  ///< [dev * vaults_per_device + vault]
};

}  // namespace hmcsim
