// Occupancy telemetry: high-water marks and log2 occupancy histograms for
// the structures whose fill levels explain throughput — vault queues,
// crossbar slots, the host tag table, link token pools, and link retry
// buffers.
//
// The simulator samples its queues every DeviceConfig::
// telemetry_interval_cycles clocks at the stage-6 dispatch point (the same
// place the user cycle hook fires); the host driver feeds the tag-table
// track once per drive-loop iteration.  Sampling is pure observation —
// reads of queue sizes folded into counters — so runs with telemetry on
// are bit-identical to runs with it off.  (The fast-forward engine bounds
// its skip at the next sample cycle, exactly as it does for the cycle
// hook, so sampling cadence survives skipping; this shortens skip *spans*
// but never changes simulated state.)
//
// Histograms use power-of-two buckets of the sampled value: bucket 0 holds
// zero samples, bucket i>=1 holds values in [2^(i-1), 2^i).  That spans
// 0..65535 in 17 buckets — deep enough for every queue the simulator owns
// — and makes "mostly empty, occasionally slammed" distributions legible
// at a glance.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace hmcsim {

inline constexpr usize kOccupancyBuckets = 17;

/// Running occupancy aggregate for one structure (or one per-device
/// aggregation of homogeneous structures — e.g. all vault request queues of
/// a cube sample into one track).
struct OccupancyTrack {
  u64 high_water{0};
  u64 samples{0};
  u64 sum{0};
  u64 buckets[kOccupancyBuckets]{};

  void sample(u64 value) {
    if (value > high_water) high_water = value;
    ++samples;
    sum += value;
    usize b = 0;
    while (value != 0) {
      ++b;
      value >>= 1;
    }
    if (b >= kOccupancyBuckets) b = kOccupancyBuckets - 1;
    ++buckets[b];
  }

  [[nodiscard]] double mean() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(samples);
  }
};

/// Per-device track families the simulator feeds.
enum class TelemetryTrack : u8 {
  VaultRqst,     ///< vault request-queue occupancy (per vault sample)
  VaultRsp,      ///< vault response-queue occupancy (per vault sample)
  XbarRqst,      ///< crossbar request-queue occupancy (per link sample)
  XbarRsp,       ///< crossbar response-queue occupancy (per link sample)
  LinkTokens,    ///< link token-pool *deficit* in FLITs (per link sample)
  LinkRetryBuf,  ///< link retry-buffer fill in FLITs (per link sample)
};

inline constexpr usize kTelemetryTrackCount = 6;

[[nodiscard]] const char* telemetry_track_name(TelemetryTrack track);

class Telemetry {
 public:
  explicit Telemetry(u32 num_devices);

  [[nodiscard]] u32 num_devices() const {
    return static_cast<u32>(tracks_[0].size());
  }

  void sample(TelemetryTrack track, u32 dev, u64 value) {
    tracks_[static_cast<usize>(track)][dev].sample(value);
  }
  /// Host-side tag-table occupancy (outstanding tags across all ports);
  /// fed by HostDriver once per drive-loop iteration.
  void sample_host_tags(u64 outstanding) { host_tags_.sample(outstanding); }

  [[nodiscard]] const OccupancyTrack& track(TelemetryTrack track,
                                            u32 dev) const {
    return tracks_[static_cast<usize>(track)][dev];
  }
  [[nodiscard]] const OccupancyTrack& host_tags() const { return host_tags_; }

  /// Occupancy-sampling passes taken (one per telemetry interval).
  [[nodiscard]] u64 sample_passes() const { return sample_passes_; }
  void note_sample_pass() { ++sample_passes_; }

  void reset();

 private:
  std::vector<OccupancyTrack> tracks_[kTelemetryTrackCount];
  OccupancyTrack host_tags_;
  u64 sample_passes_{0};
};

}  // namespace hmcsim
