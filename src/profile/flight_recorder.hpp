// Post-mortem flight recorder: a fixed-capacity per-device ring buffer of
// compact structured events (link retries, IRTRY recoveries, RAS faults,
// vault degradation, watchdog transitions, backpressure stalls, fast-forward
// skip spans).
//
// The recorder is pure observation: recording an event never influences
// simulation state, so runs with the recorder on are bit-identical to runs
// with it off (the differential harness proves this).  Each device owns an
// independent ring; once full, the oldest events are overwritten — the tail
// of history is exactly what a post-mortem wants.
//
// Events are cycle-stamped, not wall-clock-stamped, so the ring contents
// are themselves deterministic for a given workload.  Renders:
//   * text  — one line per event, chronological, for the watchdog report
//             and `hmcsim_run --flight-recorder=<path>`;
//   * Chrome trace — instant events on per-unit tracks (skip spans as
//             durations), loadable in chrome://tracing / Perfetto alongside
//             the packet-lifecycle export (trace/chrome.hpp).
#pragma once

#include <iosfwd>
#include <vector>

#include "common/types.hpp"

namespace hmcsim {

enum class FlightEventType : u8 {
  LinkRetry,      ///< packet replayed from a retry buffer (unit = link)
  LinkIrtry,      ///< receiver entered IRTRY error-abort (unit = link)
  LinkRetrain,    ///< stuck-link retraining window opened (unit = link)
  LinkFailed,     ///< link escalated to dead (unit = link)
  RasSbe,         ///< single-bit DRAM error corrected (unit = vault)
  RasDbe,         ///< uncorrectable DRAM error surfaced (unit = vault)
  VaultFailed,    ///< vault dynamically marked failed (unit = vault)
  WatchdogArm,    ///< first cycle of a no-progress streak
  WatchdogFire,   ///< forward-progress watchdog tripped
  Backpressure,   ///< crossbar forwarding refused (unit = link, arg = kind)
  FfSkipSpan,     ///< fast-forward span ended (arg = cycles skipped)
};

/// Number of distinct FlightEventType values (decode bound).
inline constexpr u8 kFlightEventTypeCount = 11;

[[nodiscard]] const char* flight_event_name(FlightEventType type);

/// One recorded event.  Compact and trivially copyable; `arg` carries the
/// event-specific payload (retry count, ERRSTAT, skipped-cycle count, ...).
struct FlightEvent {
  Cycle cycle{0};
  u64 arg{0};
  u32 dev{0};
  u16 unit{0};  ///< link or vault index, 0 when not applicable
  u8 stage{0};  ///< sub-cycle stage that observed the event (0 = none)
  FlightEventType type{FlightEventType::LinkRetry};

  bool operator==(const FlightEvent&) const = default;
};

/// Wire size of one encoded event (little-endian packed).
inline constexpr usize kFlightEventEncodedSize = 24;

/// Encode `ev` into exactly kFlightEventEncodedSize bytes (little-endian,
/// layout independent of host padding — the dump-file format).
void flight_event_encode(const FlightEvent& ev, u8* out);

/// Decode an event previously produced by flight_event_encode.  Returns
/// false (leaving `out` untouched) when the type byte is out of range.
[[nodiscard]] bool flight_event_decode(const u8* in, FlightEvent& out);

class FlightRecorder {
 public:
  /// One ring of `depth` events per device.  depth is clamped to >= 1.
  FlightRecorder(u32 num_devices, u32 depth);

  [[nodiscard]] u32 num_devices() const {
    return static_cast<u32>(rings_.size());
  }
  [[nodiscard]] u32 depth() const { return depth_; }

  void record(u32 dev, const FlightEvent& ev);

  /// Events a device has ever recorded (monotonic; exceeds depth() once the
  /// ring wraps).
  [[nodiscard]] u64 recorded(u32 dev) const { return rings_[dev].total; }
  /// Events currently held (min(recorded, depth)).
  [[nodiscard]] u32 size(u32 dev) const;

  /// The retained events of one device, oldest first.
  [[nodiscard]] std::vector<FlightEvent> snapshot(u32 dev) const;

  void clear();

  /// Text render: a chronological per-device listing, oldest first, with
  /// a header line giving retained/total counts.
  void dump_text(std::ostream& os) const;

  /// Chrome-trace (Trace Event Format) render: instant events per device
  /// (pid = device) on per-unit tracks; FfSkipSpan renders as a duration
  /// covering the skipped window.  Same framing as trace/chrome.hpp, so
  /// the two exports can be merged in Perfetto.
  void dump_chrome(std::ostream& os) const;

 private:
  struct Ring {
    std::vector<FlightEvent> events;  ///< capacity depth_, circular
    u32 head{0};                      ///< next write slot
    u64 total{0};                     ///< lifetime record() count
  };

  u32 depth_;
  std::vector<Ring> rings_;
};

}  // namespace hmcsim
