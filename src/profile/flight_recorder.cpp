#include "profile/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

namespace hmcsim {

const char* flight_event_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::LinkRetry:
      return "LINK_RETRY";
    case FlightEventType::LinkIrtry:
      return "LINK_IRTRY";
    case FlightEventType::LinkRetrain:
      return "LINK_RETRAIN";
    case FlightEventType::LinkFailed:
      return "LINK_FAILED";
    case FlightEventType::RasSbe:
      return "RAS_SBE";
    case FlightEventType::RasDbe:
      return "RAS_DBE";
    case FlightEventType::VaultFailed:
      return "VAULT_FAILED";
    case FlightEventType::WatchdogArm:
      return "WATCHDOG_ARM";
    case FlightEventType::WatchdogFire:
      return "WATCHDOG_FIRE";
    case FlightEventType::Backpressure:
      return "BACKPRESSURE";
    case FlightEventType::FfSkipSpan:
      return "FF_SKIP_SPAN";
  }
  return "UNKNOWN";
}

namespace {

void put_u64(u8* out, u64 v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<u8>(v >> (8 * i));
}

u64 get_u64(const u8* in) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= u64{in[i]} << (8 * i);
  return v;
}

}  // namespace

void flight_event_encode(const FlightEvent& ev, u8* out) {
  put_u64(out, ev.cycle);
  put_u64(out + 8, ev.arg);
  out[16] = static_cast<u8>(ev.dev);
  out[17] = static_cast<u8>(ev.dev >> 8);
  out[18] = static_cast<u8>(ev.dev >> 16);
  out[19] = static_cast<u8>(ev.dev >> 24);
  out[20] = static_cast<u8>(ev.unit);
  out[21] = static_cast<u8>(ev.unit >> 8);
  out[22] = ev.stage;
  out[23] = static_cast<u8>(ev.type);
}

bool flight_event_decode(const u8* in, FlightEvent& out) {
  if (in[23] >= kFlightEventTypeCount) return false;
  out.cycle = get_u64(in);
  out.arg = get_u64(in + 8);
  out.dev = u32{in[16]} | u32{in[17]} << 8 | u32{in[18]} << 16 |
            u32{in[19]} << 24;
  out.unit = static_cast<u16>(u32{in[20]} | u32{in[21]} << 8);
  out.stage = in[22];
  out.type = static_cast<FlightEventType>(in[23]);
  return true;
}

FlightRecorder::FlightRecorder(u32 num_devices, u32 depth)
    : depth_(std::max(depth, 1u)), rings_(num_devices) {
  for (Ring& r : rings_) r.events.resize(depth_);
}

void FlightRecorder::record(u32 dev, const FlightEvent& ev) {
  Ring& r = rings_[dev];
  r.events[r.head] = ev;
  r.head = (r.head + 1) % depth_;
  ++r.total;
}

u32 FlightRecorder::size(u32 dev) const {
  const Ring& r = rings_[dev];
  return static_cast<u32>(std::min<u64>(r.total, depth_));
}

std::vector<FlightEvent> FlightRecorder::snapshot(u32 dev) const {
  const Ring& r = rings_[dev];
  const u32 n = size(dev);
  std::vector<FlightEvent> out;
  out.reserve(n);
  // Oldest first: when wrapped, the oldest entry sits at head.
  const u32 start = (r.total > depth_) ? r.head : 0;
  for (u32 i = 0; i < n; ++i) out.push_back(r.events[(start + i) % depth_]);
  return out;
}

void FlightRecorder::clear() {
  for (Ring& r : rings_) {
    r.head = 0;
    r.total = 0;
  }
}

void FlightRecorder::dump_text(std::ostream& os) const {
  for (u32 dev = 0; dev < num_devices(); ++dev) {
    const std::vector<FlightEvent> events = snapshot(dev);
    os << "flight recorder dev " << dev << ": " << events.size()
       << " retained of " << recorded(dev) << " recorded (depth " << depth_
       << ")\n";
    for (const FlightEvent& ev : events) {
      os << "  cycle " << ev.cycle << "  " << flight_event_name(ev.type);
      if (ev.stage != 0) os << "  stage=" << u32{ev.stage};
      os << "  unit=" << ev.unit << "  arg=" << ev.arg << "\n";
    }
  }
}

void FlightRecorder::dump_chrome(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (u32 dev = 0; dev < num_devices(); ++dev) {
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << dev
       << ",\"args\":{\"name\":\"cube " << dev << " flight recorder\"}}";
    for (const FlightEvent& ev : snapshot(dev)) {
      comma();
      if (ev.type == FlightEventType::FfSkipSpan) {
        // The span ends at ev.cycle and covers the previous `arg` cycles.
        const Cycle start = ev.cycle >= ev.arg ? ev.cycle - ev.arg : 0;
        os << "{\"name\":\"" << flight_event_name(ev.type)
           << "\",\"ph\":\"X\",\"ts\":" << start << ",\"dur\":" << ev.arg
           << ",\"pid\":" << dev << ",\"tid\":" << ev.unit
           << ",\"args\":{\"cycles\":" << ev.arg << "}}";
      } else {
        os << "{\"name\":\"" << flight_event_name(ev.type)
           << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ev.cycle
           << ",\"pid\":" << dev << ",\"tid\":" << ev.unit
           << ",\"args\":{\"stage\":" << u32{ev.stage} << ",\"arg\":" << ev.arg
           << "}}";
      }
    }
  }
  os << "],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace hmcsim
