#include "profile/telemetry.hpp"

namespace hmcsim {

const char* telemetry_track_name(TelemetryTrack track) {
  switch (track) {
    case TelemetryTrack::VaultRqst:
      return "vault_rqst";
    case TelemetryTrack::VaultRsp:
      return "vault_rsp";
    case TelemetryTrack::XbarRqst:
      return "xbar_rqst";
    case TelemetryTrack::XbarRsp:
      return "xbar_rsp";
    case TelemetryTrack::LinkTokens:
      return "link_token_deficit";
    case TelemetryTrack::LinkRetryBuf:
      return "link_retry_buf";
  }
  return "unknown";
}

Telemetry::Telemetry(u32 num_devices) {
  for (auto& family : tracks_) family.assign(num_devices, OccupancyTrack{});
}

void Telemetry::reset() {
  const u32 devices = num_devices();
  for (auto& family : tracks_) family.assign(devices, OccupancyTrack{});
  host_tags_ = OccupancyTrack{};
  sample_passes_ = 0;
}

}  // namespace hmcsim
