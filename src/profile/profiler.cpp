#include "profile/profiler.hpp"

#include <chrono>

namespace hmcsim {

const char* profile_stage_name(ProfileStage stage) {
  switch (stage) {
    case ProfileStage::Stage1Xbar:
      return "stage1_child_xbar";
    case ProfileStage::Stage2RootXbar:
      return "stage2_root_xbar";
    case ProfileStage::Stage34Vaults:
      return "stage3_4_vaults";
    case ProfileStage::Stage5Responses:
      return "stage5_responses";
    case ProfileStage::Stage6Clock:
      return "stage6_clock_update";
    case ProfileStage::FastForward:
      return "fast_forward";
  }
  return "unknown";
}

StageProfiler::StageProfiler(u32 num_devices, u32 vaults_per_device)
    : num_devices_(num_devices), vaults_per_device_(vaults_per_device) {
  for (auto& v : device_ns_) v.assign(num_devices_, 0);
  vault_ns_.assign(usize{num_devices_} * vaults_per_device_, 0);
}

u64 StageProfiler::now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

u64 StageProfiler::total_ns() const {
  u64 total = 0;
  for (const u64 ns : stage_ns_) total += ns;
  return total;
}

void StageProfiler::reset() {
  for (u64& ns : stage_ns_) ns = 0;
  staged_cycles_ = 0;
  fast_cycles_ = 0;
  skip_spans_ = 0;
  for (auto& v : device_ns_) v.assign(num_devices_, 0);
  vault_ns_.assign(usize{num_devices_} * vaults_per_device_, 0);
}

}  // namespace hmcsim
