// C shim implementation: marshals the classic hmcsim_* calls onto the C++
// core.  The shim holds the configuration until the first operational call,
// because the original API wires the topology *after* hmcsim_init.
#include "capi/hmc_sim.h"

#include <cstdio>
#include <memory>
#include <string>
#include <ostream>
#include <vector>

#include "analysis/json.hpp"
#include "analysis/report.hpp"
#include "core/simulator.hpp"

namespace {

using namespace hmcsim;

/// std::streambuf adapter so TextSink can write to a client FILE*.
class FileStreambuf final : public std::streambuf {
 public:
  explicit FileStreambuf(FILE* f) : file_(f) {}

 protected:
  int overflow(int ch) override {
    if (ch == EOF) return EOF;
    return std::fputc(ch, file_) == EOF ? EOF : ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return static_cast<std::streamsize>(
        std::fwrite(s, 1, static_cast<size_t>(n), file_));
  }
  int sync() override { return std::fflush(file_); }

 private:
  FILE* file_;
};

struct Shim {
  SimConfig config;
  Topology topo;
  Simulator sim;
  bool frozen{false};

  std::unique_ptr<FileStreambuf> trace_buf;
  std::unique_ptr<std::ostream> trace_stream;
  TraceLevel pending_level{TraceLevel::Off};
  std::shared_ptr<LifecycleSink> lifecycle;

  /// Freeze the topology and bring the simulator up on first use.
  Status freeze() {
    if (frozen) return Status::Ok;
    const Status s = sim.init(config, topo);
    if (!ok(s)) return s;
    sim.tracer().set_level(pending_level);
    if (trace_stream) {
      sim.tracer().add_sink(std::make_shared<TextSink>(*trace_stream));
    }
    if (lifecycle) sim.add_lifecycle_observer(lifecycle);
    frozen = true;
    return Status::Ok;
  }
};

Shim* shim_of(struct hmcsim_t* hmc) {
  return (hmc != nullptr) ? static_cast<Shim*>(hmc->impl) : nullptr;
}

Command command_of(hmc_rqst_t type) {
  switch (type) {
    case HMC_RD16: return Command::Rd16;
    case HMC_RD32: return Command::Rd32;
    case HMC_RD48: return Command::Rd48;
    case HMC_RD64: return Command::Rd64;
    case HMC_RD80: return Command::Rd80;
    case HMC_RD96: return Command::Rd96;
    case HMC_RD112: return Command::Rd112;
    case HMC_RD128: return Command::Rd128;
    case HMC_WR16: return Command::Wr16;
    case HMC_WR32: return Command::Wr32;
    case HMC_WR48: return Command::Wr48;
    case HMC_WR64: return Command::Wr64;
    case HMC_WR80: return Command::Wr80;
    case HMC_WR96: return Command::Wr96;
    case HMC_WR112: return Command::Wr112;
    case HMC_WR128: return Command::Wr128;
    case HMC_P_WR16: return Command::PostedWr16;
    case HMC_P_WR32: return Command::PostedWr32;
    case HMC_P_WR48: return Command::PostedWr48;
    case HMC_P_WR64: return Command::PostedWr64;
    case HMC_P_WR80: return Command::PostedWr80;
    case HMC_P_WR96: return Command::PostedWr96;
    case HMC_P_WR112: return Command::PostedWr112;
    case HMC_P_WR128: return Command::PostedWr128;
    case HMC_BWR: return Command::BitWrite;
    case HMC_P_BWR: return Command::PostedBitWrite;
    case HMC_TWOADD8: return Command::TwoAdd8;
    case HMC_P_TWOADD8: return Command::PostedTwoAdd8;
    case HMC_ADD16: return Command::Add16;
    case HMC_P_ADD16: return Command::PostedAdd16;
    case HMC_MD_RD: return Command::ModeRead;
    case HMC_MD_WR: return Command::ModeWrite;
    case HMC_FLOW_NULL: return Command::Null;
    case HMC_PRET: return Command::Pret;
    case HMC_TRET: return Command::Tret;
    case HMC_IRTRY: return Command::Irtry;
  }
  return Command::Null;
}

}  // namespace

extern "C" {

int hmcsim_init(struct hmcsim_t* hmc, uint32_t num_devs, uint32_t num_links,
                uint32_t num_vaults, uint32_t queue_depth, uint32_t num_banks,
                uint32_t num_drams, uint64_t capacity, uint32_t xbar_depth) {
  if (hmc == nullptr) return -1;
  if (num_vaults != num_links * spec::kVaultsPerQuad) return -1;

  auto shim = std::make_unique<Shim>();
  shim->config.num_devices = num_devs;
  DeviceConfig& dc = shim->config.device;
  dc.num_links = num_links;
  dc.banks_per_vault = num_banks;
  dc.drams_per_bank = (num_drams == 0) ? 8 : num_drams;
  dc.vault_depth = queue_depth;
  dc.xbar_depth = xbar_depth;
  dc.capacity_bytes = capacity * (u64{1} << 30);  // GB, as in the paper

  if (!ok(shim->config.validate())) return -1;

  shim->topo = Topology(num_devs, num_links);
  hmc->impl = shim.release();
  hmc->num_devs = num_devs;
  hmc->num_links = num_links;
  return 0;
}

int hmcsim_link_config(struct hmcsim_t* hmc, uint32_t src_dev,
                       uint32_t dest_dev, uint32_t src_link,
                       uint32_t dest_link, hmc_link_def_t type) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || shim->frozen) return -1;
  Status s = Status::InvalidArgument;
  if (type == HMC_LINK_HOST_DEV) {
    // Hosts carry ids greater than the device count (paper §IV.B); the
    // device-side endpoint is (dest_dev, dest_link).
    if (src_dev < shim->config.num_devices) return -1;
    s = shim->topo.connect_host(CubeId{dest_dev}, LinkId{dest_link});
  } else {
    s = shim->topo.connect(CubeId{src_dev}, LinkId{src_link},
                           CubeId{dest_dev}, LinkId{dest_link});
  }
  return to_c_return(s);
}

int hmcsim_trace_handle(struct hmcsim_t* hmc, FILE* tfile) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || tfile == nullptr) return -1;
  shim->trace_buf = std::make_unique<FileStreambuf>(tfile);
  shim->trace_stream = std::make_unique<std::ostream>(shim->trace_buf.get());
  if (shim->frozen) {
    shim->sim.tracer().add_sink(
        std::make_shared<TextSink>(*shim->trace_stream));
  }
  return 0;
}

int hmcsim_trace_level(struct hmcsim_t* hmc, uint32_t level) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || level > 3) return -1;
  shim->pending_level = static_cast<TraceLevel>(level);
  if (shim->frozen) shim->sim.tracer().set_level(shim->pending_level);
  return 0;
}

int hmcsim_build_memrequest(struct hmcsim_t* hmc, uint8_t cub, uint64_t addr,
                            uint16_t tag, hmc_rqst_t type, uint8_t link,
                            const uint64_t* payload, uint64_t* rqst_head,
                            uint64_t* rqst_tail, uint64_t* packet) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || packet == nullptr) return -1;
  const Command cmd = command_of(type);
  const usize payload_words = request_data_bytes(cmd) / 8;
  if (payload_words > 0 && payload == nullptr) return -1;

  PacketBuffer buf;
  const Status s = build_memrequest(cub, addr, tag, cmd, link,
                                    {payload, payload_words}, buf);
  if (!ok(s)) return to_c_return(s);
  for (usize i = 0; i < buf.word_count(); ++i) packet[i] = buf.words[i];
  if (rqst_head != nullptr) *rqst_head = buf.header();
  if (rqst_tail != nullptr) *rqst_tail = buf.tail();
  return 0;
}

int hmcsim_send(struct hmcsim_t* hmc, uint64_t* packet) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || packet == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;

  PacketBuffer buf;
  const u32 lng = field::lng_of(packet[0]);
  if (lng < spec::kMinPacketFlits || lng > spec::kMaxPacketFlits) return -1;
  buf.flits = lng;
  for (usize i = 0; i < buf.word_count(); ++i) buf.words[i] = packet[i];
  // A zero CRC asks the shim to seal the packet for the caller.
  if (field::crc_of(buf.tail()) == 0) seal_crc(buf);

  // The injection point is the root device exposing host link SLID.
  const u32 slid = field::request_slid_of(buf.tail());
  const Topology& topo = shim->sim.topology();
  for (u32 d = 0; d < shim->sim.num_devices(); ++d) {
    if (topo.endpoint(CubeId{d}, LinkId{slid}).kind == EndpointKind::Host) {
      return to_c_return(shim->sim.send(d, slid, buf));
    }
  }
  return -1;  // no root device exposes that host link
}

int hmcsim_recv(struct hmcsim_t* hmc, uint32_t dev, uint32_t link,
                uint64_t* packet) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || packet == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  PacketBuffer buf;
  const Status s = shim->sim.recv(dev, link, buf);
  if (!ok(s)) return to_c_return(s);
  for (usize i = 0; i < buf.word_count(); ++i) packet[i] = buf.words[i];
  return 0;
}

int hmcsim_decode_memresponse(struct hmcsim_t* hmc, const uint64_t* packet,
                              hmc_rsp_t* type, uint16_t* tag,
                              uint32_t* errstat) {
  if (hmc == nullptr || packet == nullptr) return -1;
  PacketBuffer buf;
  const u32 lng = field::lng_of(packet[0]);
  if (lng < spec::kMinPacketFlits || lng > spec::kMaxPacketFlits) return -1;
  buf.flits = lng;
  for (usize i = 0; i < buf.word_count(); ++i) buf.words[i] = packet[i];
  ResponseFields f;
  if (!ok(decode_response(buf, f))) return -1;
  if (type != nullptr) {
    switch (f.cmd) {
      case Command::ReadResponse: *type = HMC_RSP_RD; break;
      case Command::WriteResponse: *type = HMC_RSP_WR; break;
      case Command::ModeReadResponse: *type = HMC_RSP_MD_RD; break;
      case Command::ModeWriteResponse: *type = HMC_RSP_MD_WR; break;
      case Command::Error: *type = HMC_RSP_ERROR; break;
      default: *type = HMC_RSP_NONE; break;
    }
  }
  if (tag != nullptr) *tag = f.tag;
  if (errstat != nullptr) *errstat = static_cast<uint32_t>(f.errstat);
  return 0;
}

int hmcsim_clock(struct hmcsim_t* hmc) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  shim->sim.clock();
  return 0;
}

uint64_t hmcsim_get_clock(struct hmcsim_t* hmc) {
  Shim* shim = shim_of(hmc);
  return (shim != nullptr && shim->frozen) ? shim->sim.now() : 0;
}

int hmcsim_jtag_reg_read(struct hmcsim_t* hmc, uint32_t dev, uint64_t reg,
                         uint64_t* result) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || result == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  return to_c_return(
      shim->sim.jtag_reg_read(dev, static_cast<u32>(reg), *result));
}

int hmcsim_jtag_reg_write(struct hmcsim_t* hmc, uint32_t dev, uint64_t reg,
                          uint64_t value) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  return to_c_return(
      shim->sim.jtag_reg_write(dev, static_cast<u32>(reg), value));
}

int hmcsim_util_set_max_blocksize(struct hmcsim_t* hmc, uint32_t dev,
                                  uint32_t bsize) {
  Shim* shim = shim_of(hmc);
  // Devices are homogeneous: the block size applies to every cube, so any
  // valid device index is accepted.
  if (shim == nullptr || shim->frozen || dev >= shim->config.num_devices) {
    return -1;
  }
  if (bsize != 32 && bsize != 64 && bsize != 128 && bsize != 256) return -1;
  shim->config.device.max_block_bytes = bsize;
  return ok(shim->config.validate()) ? 0 : -1;
}

int hmcsim_timing_backend(struct hmcsim_t* hmc, const char* name) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || shim->frozen || name == nullptr) return -1;
  TimingBackend backend;
  if (!timing_backend_from_string(name, &backend)) return -1;
  shim->config.device.timing_backend = backend;
  return ok(shim->config.validate()) ? 0 : -1;
}

int hmcsim_vault_timing_backend(struct hmcsim_t* hmc, uint32_t vault,
                                const char* name) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || shim->frozen || name == nullptr) return -1;
  TimingBackend backend;
  if (!timing_backend_from_string(name, &backend)) return -1;
  auto& overrides = shim->config.device.vault_backends;
  const auto saved = overrides;
  std::erase_if(overrides,
                [&](const auto& e) { return e.first == vault; });
  overrides.emplace_back(vault, backend);
  if (ok(shim->config.validate())) return 0;
  overrides = saved;  // e.g. vault out of range: leave the config usable
  return -1;
}

int hmcsim_util_get_max_blocksize(struct hmcsim_t* hmc, uint32_t dev,
                                  uint32_t* bsize) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || bsize == nullptr ||
      dev >= shim->config.num_devices) {
    return -1;
  }
  *bsize = static_cast<uint32_t>(shim->config.device.max_block_bytes);
  return 0;
}

namespace {

int decode_coord(struct hmcsim_t* hmc, uint64_t addr, uint32_t* out,
                 int which) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || out == nullptr) return -1;
  const AddressMap map = shim->config.device.make_address_map();
  if (!map.valid() || !map.in_range(addr)) return -1;
  switch (which) {
    case 0: *out = map.vault_of(addr); break;
    case 1: *out = map.bank_of(addr); break;
    case 2: *out = map.vault_of(addr) / spec::kVaultsPerQuad; break;
    default: return -1;
  }
  return 0;
}

}  // namespace

int hmcsim_util_decode_vault(struct hmcsim_t* hmc, uint64_t addr,
                             uint32_t* vault) {
  return decode_coord(hmc, addr, vault, 0);
}

int hmcsim_util_decode_bank(struct hmcsim_t* hmc, uint64_t addr,
                            uint32_t* bank) {
  return decode_coord(hmc, addr, bank, 1);
}

int hmcsim_util_decode_quad(struct hmcsim_t* hmc, uint64_t addr,
                            uint32_t* quad) {
  return decode_coord(hmc, addr, quad, 2);
}

int hmcsim_get_stat(struct hmcsim_t* hmc, uint32_t dev, const char* name,
                    uint64_t* value) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || name == nullptr || value == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  if (dev >= shim->sim.num_devices()) return -1;
  const DeviceStats& s = shim->sim.stats(dev);
  const std::string_view key{name};
  if (key == "reads") *value = s.reads;
  else if (key == "writes") *value = s.writes;
  else if (key == "atomics") *value = s.atomics;
  else if (key == "mode_ops") *value = s.mode_ops;
  else if (key == "custom_ops") *value = s.custom_ops;
  else if (key == "responses") *value = s.responses;
  else if (key == "error_responses") *value = s.error_responses;
  else if (key == "bank_conflicts") *value = s.bank_conflicts;
  else if (key == "xbar_rqst_stalls") *value = s.xbar_rqst_stalls;
  else if (key == "xbar_rsp_stalls") *value = s.xbar_rsp_stalls;
  else if (key == "vault_rsp_stalls") *value = s.vault_rsp_stalls;
  else if (key == "latency_penalties") *value = s.latency_penalties;
  else if (key == "route_hops") *value = s.route_hops;
  else if (key == "misroutes") *value = s.misroutes;
  else if (key == "sends") *value = s.sends;
  else if (key == "send_stalls") *value = s.send_stalls;
  else if (key == "recvs") *value = s.recvs;
  else if (key == "flow_packets") *value = s.flow_packets;
  else if (key == "bytes_read") *value = s.bytes_read;
  else if (key == "bytes_written") *value = s.bytes_written;
  else if (key == "link_errors") *value = s.link_errors;
  else if (key == "link_retries") *value = s.link_retries;
  else if (key == "refreshes") *value = s.refreshes;
  else if (key == "row_hits") *value = s.row_hits;
  else if (key == "row_misses") *value = s.row_misses;
  else if (key == "dram_sbes") *value = s.dram_sbes;
  else if (key == "dram_dbes") *value = s.dram_dbes;
  else if (key == "scrub_steps") *value = s.scrub_steps;
  else if (key == "scrub_corrections") *value = s.scrub_corrections;
  else if (key == "scrub_uncorrectables") *value = s.scrub_uncorrectables;
  else if (key == "vault_failures") *value = s.vault_failures;
  else if (key == "vault_remaps") *value = s.vault_remaps;
  else if (key == "degraded_drops") *value = s.degraded_drops;
  else if (key == "link_crc_errors") *value = s.link_crc_errors;
  else if (key == "link_seq_errors") *value = s.link_seq_errors;
  else if (key == "link_abort_entries") *value = s.link_abort_entries;
  else if (key == "link_irtry_tx") *value = s.link_irtry_tx;
  else if (key == "link_irtry_rx") *value = s.link_irtry_rx;
  else if (key == "link_pret_tx") *value = s.link_pret_tx;
  else if (key == "link_tret_tx") *value = s.link_tret_tx;
  else if (key == "link_replayed_flits") *value = s.link_replayed_flits;
  else if (key == "link_token_stalls") *value = s.link_token_stalls;
  else if (key == "link_retrain_cycles") *value = s.link_retrain_cycles;
  else if (key == "link_failures") *value = s.link_failures;
  else if (key == "link_tokens_debited") *value = s.link_tokens_debited;
  else if (key == "link_tokens_returned") *value = s.link_tokens_returned;
  else if (key == "pcm_write_throttle_stalls") {
    *value = s.pcm_write_throttle_stalls;
  }
  else if (key == "sim_threads") *value = shim->sim.sim_threads();
  else if (key == "cycles_skipped") *value = shim->sim.cycles_skipped();
  else return -1;
  return 0;
}

int hmcsim_get_stats(struct hmcsim_t* hmc, uint32_t dev,
                     struct hmcsim_stats* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || out == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  if (dev >= shim->sim.num_devices()) return -1;
  const DeviceStats& s = shim->sim.stats(dev);
  out->reads = s.reads;
  out->writes = s.writes;
  out->atomics = s.atomics;
  out->mode_ops = s.mode_ops;
  out->custom_ops = s.custom_ops;
  out->bytes_read = s.bytes_read;
  out->bytes_written = s.bytes_written;
  out->responses = s.responses;
  out->error_responses = s.error_responses;
  out->bank_conflicts = s.bank_conflicts;
  out->xbar_rqst_stalls = s.xbar_rqst_stalls;
  out->xbar_rsp_stalls = s.xbar_rsp_stalls;
  out->vault_rsp_stalls = s.vault_rsp_stalls;
  out->latency_penalties = s.latency_penalties;
  out->route_hops = s.route_hops;
  out->misroutes = s.misroutes;
  out->link_errors = s.link_errors;
  out->link_retries = s.link_retries;
  out->refreshes = s.refreshes;
  out->row_hits = s.row_hits;
  out->row_misses = s.row_misses;
  out->sends = s.sends;
  out->send_stalls = s.send_stalls;
  out->recvs = s.recvs;
  out->flow_packets = s.flow_packets;
  out->dram_sbes = s.dram_sbes;
  out->dram_dbes = s.dram_dbes;
  out->scrub_steps = s.scrub_steps;
  out->scrub_corrections = s.scrub_corrections;
  out->scrub_uncorrectables = s.scrub_uncorrectables;
  out->vault_failures = s.vault_failures;
  out->vault_remaps = s.vault_remaps;
  out->degraded_drops = s.degraded_drops;
  out->link_crc_errors = s.link_crc_errors;
  out->link_seq_errors = s.link_seq_errors;
  out->link_abort_entries = s.link_abort_entries;
  out->link_irtry_tx = s.link_irtry_tx;
  out->link_irtry_rx = s.link_irtry_rx;
  out->link_pret_tx = s.link_pret_tx;
  out->link_tret_tx = s.link_tret_tx;
  out->link_replayed_flits = s.link_replayed_flits;
  out->link_token_stalls = s.link_token_stalls;
  out->link_retrain_cycles = s.link_retrain_cycles;
  out->link_failures = s.link_failures;
  out->link_tokens_debited = s.link_tokens_debited;
  out->link_tokens_returned = s.link_tokens_returned;
  out->pcm_write_throttle_stalls = s.pcm_write_throttle_stalls;
  return 0;
}

int hmcsim_watchdog_fired(struct hmcsim_t* hmc, FILE* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr) return -1;
  if (!shim->sim.watchdog_fired()) return 0;
  if (out != nullptr) {
    const std::string report = shim->sim.watchdog_report();
    std::fwrite(report.data(), 1, report.size(), out);
  }
  return 1;
}

int hmcsim_lifecycle_enable(struct hmcsim_t* hmc) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr) return -1;
  if (shim->lifecycle) return 0;  /* idempotent */
  shim->lifecycle = std::make_shared<LifecycleSink>();
  if (shim->frozen) shim->sim.add_lifecycle_observer(shim->lifecycle);
  return 0;
}

int hmcsim_lifecycle_stats(struct hmcsim_t* hmc, hmc_op_class_t op,
                           hmc_lifecycle_segment_t segment,
                           hmcsim_latency_t* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || out == nullptr || !shim->lifecycle) return -1;
  if (static_cast<int>(segment) < static_cast<int>(HMC_LC_XBAR) ||
      static_cast<int>(segment) > static_cast<int>(HMC_LC_TOTAL)) {
    return -1;
  }
  const auto seg = static_cast<LifecycleSegment>(segment);
  LatencyStats stats;
  switch (op) {
    case HMC_OP_READ: stats = shim->lifecycle->stats(OpClass::Read, seg); break;
    case HMC_OP_WRITE:
      stats = shim->lifecycle->stats(OpClass::Write, seg);
      break;
    case HMC_OP_ATOMIC:
      stats = shim->lifecycle->stats(OpClass::Atomic, seg);
      break;
    case HMC_OP_OTHER:
      stats = shim->lifecycle->stats(OpClass::Other, seg);
      break;
    case HMC_OP_ALL: stats = shim->lifecycle->merged(seg); break;
    default: return -1;
  }
  out->count = stats.count;
  out->mean = stats.mean();
  out->min = stats.count == 0 ? 0 : stats.min;
  out->max = stats.max;
  out->p50 = stats.percentile(0.50);
  out->p95 = stats.percentile(0.95);
  out->p99 = stats.percentile(0.99);
  return 0;
}

int hmcsim_dump_stats_json(struct hmcsim_t* hmc, FILE* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || out == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  FileStreambuf buf(out);
  std::ostream os(&buf);
  write_stats_json(os, shim->sim);
  os.flush();
  return 0;
}

int hmcsim_profile_enable(struct hmcsim_t* hmc) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || shim->frozen) return -1;
  shim->config.device.self_profile = true;
  return 0;
}

int hmcsim_telemetry_interval(struct hmcsim_t* hmc, uint32_t cycles) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || shim->frozen) return -1;
  shim->config.device.telemetry_interval_cycles = cycles;
  return 0;
}

int hmcsim_flight_recorder_depth(struct hmcsim_t* hmc, uint32_t depth) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || shim->frozen) return -1;
  shim->config.device.flight_recorder_depth = depth;
  return 0;
}

int hmcsim_chaos_invariants(struct hmcsim_t* hmc, uint32_t cadence) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || shim->frozen) return -1;
  shim->config.device.chaos_invariants = cadence;
  return 0;
}

int hmcsim_chaos_plan(struct hmcsim_t* hmc, const char* plan, FILE* err) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || plan == nullptr) return -1;
  const auto report = [err](const std::string& diag) {
    if (err != nullptr && !diag.empty()) {
      std::fprintf(err, "%s\n", diag.c_str());
    }
    return -1;
  };
  ChaosPlanParseResult parsed = parse_chaos_plan_string(plan);
  if (!parsed.ok) return report(parsed.error);
  if (!ok(shim->freeze())) return report("topology rejected");
  std::string diag;
  if (!ok(shim->sim.set_chaos_plan(std::move(parsed.plan), &diag))) {
    return report(diag);
  }
  return 0;
}

int hmcsim_chaos_violated(struct hmcsim_t* hmc, FILE* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr) return -1;
  if (!shim->sim.chaos_violated()) return 0;
  if (out != nullptr) {
    const std::string& report = shim->sim.chaos_report();
    std::fwrite(report.data(), 1, report.size(), out);
  }
  return 1;
}

int hmcsim_dump_profile(struct hmcsim_t* hmc, FILE* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || out == nullptr) return -1;
  if (!shim->frozen || shim->sim.profiler() == nullptr) return -1;
  shim->sim.flush_observability();
  std::string text = format_profile_table(shim->sim);
  const std::string telemetry = format_telemetry_table(shim->sim);
  if (!telemetry.empty()) {
    text += '\n';
    text += telemetry;
  }
  std::fwrite(text.data(), 1, text.size(), out);
  return 0;
}

int hmcsim_dump_flight_recorder(struct hmcsim_t* hmc, FILE* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || out == nullptr || !shim->frozen) return -1;
  FileStreambuf buf(out);
  std::ostream os(&buf);
  const bool dumped = shim->sim.dump_flight_recorder(os);
  os.flush();
  return dumped ? 0 : -1;
}

int hmcsim_dump_flight_recorder_chrome(struct hmcsim_t* hmc, FILE* out) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || out == nullptr || !shim->frozen) return -1;
  FileStreambuf buf(out);
  std::ostream os(&buf);
  const bool dumped = shim->sim.dump_flight_recorder_chrome(os);
  os.flush();
  return dumped ? 0 : -1;
}

int hmcsim_register_cmc(struct hmcsim_t* hmc, uint8_t raw_cmd,
                        uint32_t rqst_flits, uint32_t rsp_flits,
                        uint32_t access_bytes, hmc_cmc_handler_t handler,
                        void* user) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || handler == nullptr) return -1;
  if (!ok(shim->freeze())) return -1;
  CustomCommandDef def;
  def.name = "CMC_" + std::to_string(raw_cmd);
  def.request_flits = rqst_flits;
  def.response_flits = rsp_flits;
  def.access_bytes = access_bytes;
  def.handler = [handler, user](std::span<u64> memory,
                                std::span<const u64> operand,
                                std::span<u64> response) {
    handler(memory.data(), operand.data(), response.data(), user);
  };
  return to_c_return(shim->sim.register_custom_command(raw_cmd,
                                                       std::move(def)));
}

int hmcsim_build_custom_request(struct hmcsim_t* hmc, uint8_t cub,
                                uint64_t addr, uint16_t tag, uint8_t raw_cmd,
                                uint8_t link, const uint64_t* payload,
                                uint64_t* packet) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || packet == nullptr || !shim->frozen) return -1;
  const CustomCommandDef* def = shim->sim.custom_commands().find(raw_cmd);
  if (def == nullptr) return -1;
  const usize payload_words = usize{def->request_flits} * 2 - 2;
  if (payload_words > 0 && payload == nullptr) return -1;
  PacketBuffer buf;
  const Status s = build_custom_request(shim->sim.custom_commands(), raw_cmd,
                                        cub, addr, tag, link,
                                        {payload, payload_words}, buf);
  if (!ok(s)) return to_c_return(s);
  for (usize i = 0; i < buf.word_count(); ++i) packet[i] = buf.words[i];
  return 0;
}

namespace {

/// Backing store for hmcsim_last_error.  Thread-local so concurrent
/// simulators on different threads cannot clobber each other's reason.
thread_local std::string g_last_error;

}  // namespace

int hmcsim_checkpoint_save(struct hmcsim_t* hmc, const char* path) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || path == nullptr) {
    g_last_error = "invalid handle or path";
    return -1;
  }
  if (!ok(shim->freeze())) {
    g_last_error = "simulator bring-up failed";
    return -1;
  }
  CheckpointError err;
  if (!ok(shim->sim.save_checkpoint_file(path, &err))) {
    g_last_error = err.message();
    return -1;
  }
  g_last_error.clear();
  return 0;
}

int hmcsim_checkpoint_restore(struct hmcsim_t* hmc, const char* path) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr || path == nullptr) {
    g_last_error = "invalid handle or path";
    return -1;
  }
  CheckpointError err;
  if (!ok(shim->sim.restore_checkpoint_file(path, &err))) {
    g_last_error = err.message();
    return -1;
  }
  // The restored simulator is initialized: mirror its configuration into
  // the shim and freeze the topology, wiring the deferred trace/lifecycle
  // hooks exactly as the first send/clock would have.
  shim->config = shim->sim.config();
  if (!shim->frozen) {
    shim->sim.tracer().set_level(shim->pending_level);
    if (shim->trace_stream) {
      shim->sim.tracer().add_sink(
          std::make_shared<TextSink>(*shim->trace_stream));
    }
    if (shim->lifecycle) shim->sim.add_lifecycle_observer(shim->lifecycle);
    shim->frozen = true;
  }
  hmc->num_devs = shim->config.num_devices;
  hmc->num_links = shim->config.device.num_links;
  g_last_error.clear();
  return 0;
}

const char* hmcsim_last_error(void) { return g_last_error.c_str(); }

int hmcsim_free(struct hmcsim_t* hmc) {
  Shim* shim = shim_of(hmc);
  if (shim == nullptr) return -1;
  if (shim->frozen) shim->sim.tracer().flush();
  delete shim;
  hmc->impl = nullptr;
  return 0;
}

}  // extern "C"
