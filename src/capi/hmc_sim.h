/*
 * hmc_sim.h — C-compatible HMC-Sim application programming interface.
 *
 * The original HMC-Sim is implemented in ANSI-style C and packaged as a
 * single library object so it can be dropped into existing simulation
 * infrastructures without modification (paper §V).  This header reproduces
 * that API surface — the four major function classes: device
 * initialization, topology initialization, packet handlers and register
 * interface functions — as a thin shim over the C++ core.
 *
 * Return protocol (classic C convention):
 *    0  success
 *    2  HMC_STALL — the target crossbar arbitration queue is full
 *    1  no response packet pending (hmcsim_recv only)
 *   -1  error (bad argument / configuration / malformed packet)
 *
 * Packets are arrays of 64-bit words: packet[0] is the header, the last
 * word of the packet (2*LNG - 1) is the tail.  HMC_MAX_UQ_PACKET (18)
 * words always suffice.  If the tail's CRC field is zero, hmcsim_send
 * seals the packet with the correct CRC-32K on the caller's behalf.
 */
#ifndef HMCSIM_CAPI_HMC_SIM_H
#define HMCSIM_CAPI_HMC_SIM_H

#include <stdint.h>
#include <stdio.h>

#ifdef __cplusplus
extern "C" {
#endif

#define HMC_MAX_UQ_PACKET 18u
#define HMC_STALL 2

/* Request types, matching the HMC 1.0 command set. */
typedef enum {
  HMC_RD16, HMC_RD32, HMC_RD48, HMC_RD64,
  HMC_RD80, HMC_RD96, HMC_RD112, HMC_RD128,
  HMC_WR16, HMC_WR32, HMC_WR48, HMC_WR64,
  HMC_WR80, HMC_WR96, HMC_WR112, HMC_WR128,
  HMC_P_WR16, HMC_P_WR32, HMC_P_WR48, HMC_P_WR64,
  HMC_P_WR80, HMC_P_WR96, HMC_P_WR112, HMC_P_WR128,
  HMC_BWR, HMC_P_BWR,
  HMC_TWOADD8, HMC_P_TWOADD8,
  HMC_ADD16, HMC_P_ADD16,
  HMC_MD_RD, HMC_MD_WR,
  HMC_FLOW_NULL, HMC_PRET, HMC_TRET, HMC_IRTRY
} hmc_rqst_t;

/* Response types surfaced by hmcsim_decode_memresponse. */
typedef enum {
  HMC_RSP_RD, HMC_RSP_WR, HMC_RSP_MD_RD, HMC_RSP_MD_WR, HMC_RSP_ERROR,
  HMC_RSP_NONE
} hmc_rsp_t;

/* Link endpoint classes for hmcsim_link_config. */
typedef enum {
  HMC_LINK_HOST_DEV, /* host <-> device */
  HMC_LINK_DEV_DEV   /* device <-> device (chaining) */
} hmc_link_def_t;

/* Opaque simulator object.  Treat the contents as private. */
struct hmcsim_t {
  void* impl;
  uint32_t num_devs;
  uint32_t num_links;
};

/*
 * Section A: device and API initialization.
 *
 * num_vaults must equal num_links * 4; num_banks is per vault;
 * queue_depth sizes the vault request/response queues and xbar_depth the
 * crossbar arbitration queues; capacity is the device capacity in
 * gigabytes (0 derives it from the geometry).  Devices within one object
 * are physically homogeneous.
 */
int hmcsim_init(struct hmcsim_t* hmc, uint32_t num_devs, uint32_t num_links,
                uint32_t num_vaults, uint32_t queue_depth, uint32_t num_banks,
                uint32_t num_drams, uint64_t capacity, uint32_t xbar_depth);

/*
 * Section B: link and topology configuration.
 *
 * For HMC_LINK_HOST_DEV, src_dev must be the host id (num_devs + 1 works,
 * as in the paper) and dest_dev/dest_link name the device port.  For
 * HMC_LINK_DEV_DEV both endpoints are devices; loopbacks are rejected.
 * The topology is frozen on the first send/recv/clock call.
 */
int hmcsim_link_config(struct hmcsim_t* hmc, uint32_t src_dev,
                       uint32_t dest_dev, uint32_t src_link,
                       uint32_t dest_link, hmc_link_def_t type);

/* Tracing: attach a stdio stream and pick a verbosity level 0..3. */
int hmcsim_trace_handle(struct hmcsim_t* hmc, FILE* tfile);
int hmcsim_trace_level(struct hmcsim_t* hmc, uint32_t level);

/*
 * Section C: packet handlers.
 *
 * hmcsim_build_memrequest fills a fully formed request packet into
 * `packet` (HMC_MAX_UQ_PACKET words) and, when head/tail are non-NULL,
 * also returns the raw header and tail words.  `payload` supplies the
 * write/atomic data words (may be NULL for reads).
 */
int hmcsim_build_memrequest(struct hmcsim_t* hmc, uint8_t cub, uint64_t addr,
                            uint16_t tag, hmc_rqst_t type, uint8_t link,
                            const uint64_t* payload, uint64_t* rqst_head,
                            uint64_t* rqst_tail, uint64_t* packet);

/*
 * Inject a request packet.  The destination cube rides in the header CUB
 * field; the injection link is the tail SLID field; the injection device
 * is the (unique) root device exposing that host link.
 */
int hmcsim_send(struct hmcsim_t* hmc, uint64_t* packet);

/* Drain one response packet from host link `link` of device `dev`. */
int hmcsim_recv(struct hmcsim_t* hmc, uint32_t dev, uint32_t link,
                uint64_t* packet);

/* Decode a response packet previously returned by hmcsim_recv. */
int hmcsim_decode_memresponse(struct hmcsim_t* hmc, const uint64_t* packet,
                              hmc_rsp_t* type, uint16_t* tag,
                              uint32_t* errstat);

/* Progress all internal device state by one clock cycle. */
int hmcsim_clock(struct hmcsim_t* hmc);

/* Current 64-bit clock value. */
uint64_t hmcsim_get_clock(struct hmcsim_t* hmc);

/*
 * Section D: register interface (side-band JTAG / I2C path; does not
 * consume memory bandwidth and exists outside the clock domains).
 * `reg` is the architected physical register index.
 */
int hmcsim_jtag_reg_read(struct hmcsim_t* hmc, uint32_t dev, uint64_t reg,
                         uint64_t* result);
int hmcsim_jtag_reg_write(struct hmcsim_t* hmc, uint32_t dev, uint64_t reg,
                          uint64_t value);

/*
 * Utility functions.
 *
 * hmcsim_util_set_max_blocksize selects the default address-map mode for
 * the given maximum request block size (32/64/128/256 bytes); it must be
 * called before the topology freezes (first send/recv/clock).
 * hmcsim_util_decode_* decompose a physical address under the configured
 * map, mirroring the structural coordinates the trace stream reports.
 */
int hmcsim_util_set_max_blocksize(struct hmcsim_t* hmc, uint32_t dev,
                                  uint32_t bsize);
int hmcsim_util_get_max_blocksize(struct hmcsim_t* hmc, uint32_t dev,
                                  uint32_t* bsize);

/*
 * Vault timing-backend selection (docs/BACKENDS.md).  `name` is one of
 * "hmc_dram" (default), "generic_ddr", "pcm_like".  The device-wide form
 * applies to every vault; the per-vault form overrides one vault (a
 * repeated call for the same vault replaces the earlier choice).  Both
 * must be called before the topology freezes (first send/recv/clock) and
 * return -1 on an unknown name, a frozen topology, or parameters the
 * configuration validator rejects.
 */
int hmcsim_timing_backend(struct hmcsim_t* hmc, const char* name);
int hmcsim_vault_timing_backend(struct hmcsim_t* hmc, uint32_t vault,
                                const char* name);
int hmcsim_util_decode_vault(struct hmcsim_t* hmc, uint64_t addr,
                             uint32_t* vault);
int hmcsim_util_decode_bank(struct hmcsim_t* hmc, uint64_t addr,
                            uint32_t* bank);
int hmcsim_util_decode_quad(struct hmcsim_t* hmc, uint64_t addr,
                            uint32_t* quad);

/* Current per-device counters (Table I quantities).  The key
 * "sim_threads" additionally reports the resolved clock-engine worker
 * count, and "cycles_skipped" the clocks advanced via the idle-cycle
 * fast-forward path (simulation results never depend on either; see
 * docs/TESTING.md). */
int hmcsim_get_stat(struct hmcsim_t* hmc, uint32_t dev, const char* name,
                    uint64_t* value);

/* The complete per-device counter set, fetched in one call. */
struct hmcsim_stats {
  uint64_t reads;
  uint64_t writes;
  uint64_t atomics;
  uint64_t mode_ops;
  uint64_t custom_ops;
  uint64_t bytes_read;
  uint64_t bytes_written;
  uint64_t responses;
  uint64_t error_responses;
  uint64_t bank_conflicts;
  uint64_t xbar_rqst_stalls;
  uint64_t xbar_rsp_stalls;
  uint64_t vault_rsp_stalls;
  uint64_t latency_penalties;
  uint64_t route_hops;
  uint64_t misroutes;
  uint64_t link_errors;
  uint64_t link_retries;
  uint64_t refreshes;
  uint64_t row_hits;
  uint64_t row_misses;
  uint64_t sends;
  uint64_t send_stalls;
  uint64_t recvs;
  uint64_t flow_packets;
  /* RAS counters (zero unless DRAM fault injection / scrubbing / vault
   * degradation are configured). */
  uint64_t dram_sbes;
  uint64_t dram_dbes;
  uint64_t scrub_steps;
  uint64_t scrub_corrections;
  uint64_t scrub_uncorrectables;
  uint64_t vault_failures;
  uint64_t vault_remaps;
  uint64_t degraded_drops;
  /* Link-layer retry/token protocol counters (zero unless link_protocol
   * is configured). */
  uint64_t link_crc_errors;
  uint64_t link_seq_errors;
  uint64_t link_abort_entries;
  uint64_t link_irtry_tx;
  uint64_t link_irtry_rx;
  uint64_t link_pret_tx;
  uint64_t link_tret_tx;
  uint64_t link_replayed_flits;
  uint64_t link_token_stalls;
  uint64_t link_retrain_cycles;
  uint64_t link_failures;
  uint64_t link_tokens_debited;
  uint64_t link_tokens_returned;
  /* Timing-backend counter (zero unless the pcm_like backend with a write
   * gap is configured). */
  uint64_t pcm_write_throttle_stalls;
};

/* Fill `out` with device `dev`'s current counters. */
int hmcsim_get_stats(struct hmcsim_t* hmc, uint32_t dev,
                     struct hmcsim_stats* out);

/*
 * Packet-lifecycle observability.
 *
 * hmcsim_lifecycle_enable attaches the aggregation sink; from then on
 * every drained response contributes its per-stage latency segments.
 * hmcsim_lifecycle_stats reads one (class, segment) distribution summary;
 * HMC_OP_ALL merges the request classes.  Cycle counts throughout.
 */
typedef enum {
  HMC_LC_XBAR,          /* host send -> vault-queue arrival   */
  HMC_LC_VAULT_QUEUE,   /* arrival -> first conflict / retire */
  HMC_LC_BANK_CONFLICT, /* first conflict -> retire           */
  HMC_LC_RESPONSE,      /* retire -> crossbar registration    */
  HMC_LC_DRAIN,         /* registration -> host recv          */
  HMC_LC_TOTAL          /* host send -> host recv             */
} hmc_lifecycle_segment_t;

typedef enum {
  HMC_OP_READ, HMC_OP_WRITE, HMC_OP_ATOMIC, HMC_OP_OTHER, HMC_OP_ALL
} hmc_op_class_t;

typedef struct {
  uint64_t count;
  double mean;
  uint64_t min;
  uint64_t max;
  uint64_t p50;
  uint64_t p95;
  uint64_t p99;
} hmcsim_latency_t;

int hmcsim_lifecycle_enable(struct hmcsim_t* hmc);
int hmcsim_lifecycle_stats(struct hmcsim_t* hmc, hmc_op_class_t op,
                           hmc_lifecycle_segment_t segment,
                           hmcsim_latency_t* out);

/* Dump the full run report (config, counters, link utilization, energy
 * estimate) as a JSON document to `out`. */
int hmcsim_dump_stats_json(struct hmcsim_t* hmc, FILE* out);

/*
 * RAS: forward-progress watchdog status.  Returns 1 when the watchdog has
 * tripped (the simulator refuses further clocks), 0 when it has not, -1 on
 * a bad handle.  When tripped and `out` is non-NULL, the diagnostic dump
 * (queue occupancies, in-flight tags, lifecycle stamps) is written there.
 */
int hmcsim_watchdog_fired(struct hmcsim_t* hmc, FILE* out);

/*
 * Observability: self-profiling, occupancy telemetry, and the post-mortem
 * flight recorder (docs/OBSERVABILITY.md).  The three knobs must be set
 * after hmcsim_init and before the topology freezes (first
 * send/recv/clock).  All three are pure observation: simulation results
 * are bit-identical with them on or off.
 */
/* Enable steady-clock wall-time attribution for the clock stages. */
int hmcsim_profile_enable(struct hmcsim_t* hmc);
/* Sample queue/token/tag occupancy every `cycles` clocks (0 disables). */
int hmcsim_telemetry_interval(struct hmcsim_t* hmc, uint32_t cycles);
/* Keep a per-device ring of the last `depth` structured events
 * (0 disables). */
int hmcsim_flight_recorder_depth(struct hmcsim_t* hmc, uint32_t depth);

/* Print the per-stage wall-time table (and, when telemetry is on, the
 * occupancy table) to `out`.  -1 when profiling was never enabled. */
int hmcsim_dump_profile(struct hmcsim_t* hmc, FILE* out);
/* Dump the flight-recorder rings to `out`: chronological text, or Chrome
 * trace-event JSON (about:tracing / Perfetto).  -1 when the recorder is
 * off. */
int hmcsim_dump_flight_recorder(struct hmcsim_t* hmc, FILE* out);
int hmcsim_dump_flight_recorder_chrome(struct hmcsim_t* hmc, FILE* out);

/*
 * Chaos orchestration (docs/CHAOS.md): deterministic fault campaigns plus
 * a live invariant checker.
 */
/* Run the invariant suite every `cadence` cycles (0 disables).  Must be
 * set after hmcsim_init and before the topology freezes. */
int hmcsim_chaos_invariants(struct hmcsim_t* hmc, uint32_t cadence);
/* Compile the chaos plan text in `plan` (the docs/CHAOS.md directive
 * grammar) and arm it; freezes the topology.  Returns 0 on success, -1 on
 * a bad handle or a plan the compiler/validator rejects (the diagnostic is
 * written to `err` when non-NULL). */
int hmcsim_chaos_plan(struct hmcsim_t* hmc, const char* plan, FILE* err);
/* Returns 1 when an invariant violation froze the machine (the post-mortem
 * report is written to `out` when non-NULL), 0 when it has not, -1 on a
 * bad handle. */
int hmcsim_chaos_violated(struct hmcsim_t* hmc, FILE* out);

/*
 * Custom memory cube (CMC) commands.
 *
 * Register `handler` under a reserved 6-bit CMD encoding; the handler runs
 * at the vault as a read-modify-write of `access_bytes` (16..128, multiple
 * of 16) under full bank timing.  `memory` holds access_bytes/8 words and
 * is written back after the call; `operand` holds (rqst_flits-1)*2 request
 * payload words; `response` has (rsp_flits-1)*2 words to fill (rsp_flits 0
 * makes the command posted).  Registration requires a quiescent device and
 * must follow the first send/clock (which freezes the topology).
 * hmcsim_build_custom_request assembles a sealed request packet for a
 * registered encoding.
 */
typedef void (*hmc_cmc_handler_t)(uint64_t* memory, const uint64_t* operand,
                                  uint64_t* response, void* user);
int hmcsim_register_cmc(struct hmcsim_t* hmc, uint8_t raw_cmd,
                        uint32_t rqst_flits, uint32_t rsp_flits,
                        uint32_t access_bytes, hmc_cmc_handler_t handler,
                        void* user);
int hmcsim_build_custom_request(struct hmcsim_t* hmc, uint8_t cub,
                                uint64_t addr, uint16_t tag, uint8_t raw_cmd,
                                uint8_t link, const uint64_t* payload,
                                uint64_t* packet);

/*
 * Crash-consistent checkpointing (docs/FORMATS.md section 5).
 *
 * hmcsim_checkpoint_save writes the complete simulator state to `path`
 * atomically (temp file + fsync + rename): an interrupted save can never
 * tear an existing checkpoint.  Implicitly freezes the topology, like the
 * first send/clock.
 *
 * hmcsim_checkpoint_restore rebuilds the simulator from `path`.  Every
 * failure mode — missing file, truncation, bit-rot (per-section CRC),
 * impossible field values, unknown version — returns -1 with a
 * human-readable reason available from hmcsim_last_error(); no input can
 * crash the process.  On success the topology is frozen and the run
 * continues cycle-for-cycle identically to the saved one.
 */
int hmcsim_checkpoint_save(struct hmcsim_t* hmc, const char* path);
int hmcsim_checkpoint_restore(struct hmcsim_t* hmc, const char* path);

/* One-line description of why the most recent checkpoint save/restore on
 * this thread failed ("" when it succeeded), e.g.
 * "section crc mismatch in section DEVC at byte 4242".  The pointer stays
 * valid until the next checkpoint call on the same thread. */
const char* hmcsim_last_error(void);

/* Section A (teardown): release the devices. */
int hmcsim_free(struct hmcsim_t* hmc);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HMCSIM_CAPI_HMC_SIM_H */
