#include "common/thread_pool.hpp"

namespace hmcsim {
namespace {

// Spin iterations before an idle worker falls back to the condvar.  Large
// enough to cover back-to-back parallel sections of one simulated cycle,
// small enough that an idle simulator releases its CPUs within ~1 ms.
constexpr u32 kSpinIterations = 4096;

}  // namespace

ThreadPool::ThreadPool(u32 num_threads) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads - 1);
  for (u32 w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_range(u32 worker_index) {
  // Contiguous static partition: worker w owns [w*n/T, (w+1)*n/T).
  const u32 threads = num_threads();
  const u64 n = job_shards_;
  const u32 begin = static_cast<u32>(n * worker_index / threads);
  const u32 end = static_cast<u32>(n * (worker_index + 1) / threads);
  for (u32 s = begin; s < end; ++s) (*job_)(s);
}

void ThreadPool::worker_loop(u32 worker_index) {
  u64 seen_epoch = 0;
  for (;;) {
    // Wait for the next dispatch: spin briefly, then sleep.
    u32 spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen_epoch) {
      if (++spins < kSpinIterations) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_acquire) != seen_epoch;
      });
      break;
    }
    ++seen_epoch;
    if (stop_.load(std::memory_order_relaxed)) return;
    run_range(worker_index);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::parallel_for(u32 num_shards,
                              const std::function<void(u32)>& fn) {
  if (workers_.empty() || num_shards <= 1) {
    for (u32 s = 0; s < num_shards; ++s) fn(s);
    return;
  }
  job_ = &fn;
  job_shards_ = num_shards;
  done_.store(0, std::memory_order_relaxed);
  {
    // The lock orders the epoch bump against a worker's wait-predicate
    // check, closing the missed-wakeup window for sleeping workers.
    std::lock_guard<std::mutex> lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
  run_range(0);
  const u32 expected = static_cast<u32>(workers_.size());
  while (done_.load(std::memory_order_acquire) != expected) {
    std::this_thread::yield();
  }
  job_ = nullptr;
  job_shards_ = 0;
}

}  // namespace hmcsim
