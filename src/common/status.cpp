#include "common/status.hpp"

namespace hmcsim {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::Ok:
      return "Ok";
    case Status::Stalled:
      return "Stalled";
    case Status::NoResponse:
      return "NoResponse";
    case Status::InvalidArgument:
      return "InvalidArgument";
    case Status::InvalidConfig:
      return "InvalidConfig";
    case Status::MalformedPacket:
      return "MalformedPacket";
    case Status::Unroutable:
      return "Unroutable";
    case Status::NoSuchRegister:
      return "NoSuchRegister";
    case Status::ReadOnlyRegister:
      return "ReadOnlyRegister";
    case Status::Deadlock:
      return "Deadlock";
    case Status::Internal:
      return "Internal";
  }
  return "Unknown";
}

int to_c_return(Status s) {
  switch (s) {
    case Status::Ok:
      return 0;
    case Status::Stalled:
      return 2;  // HMC_STALL in the original C API.
    case Status::NoResponse:
      return 1;  // no packet available; distinct from a hard error.
    default:
      return -1;
  }
}

}  // namespace hmcsim
