#include "common/random.hpp"

#include <cstdint>

namespace hmcsim {

GlibcRandom::GlibcRandom(u32 seed) {
  // glibc __srandom_r for TYPE_3 (degree 31, separation 3).
  if (seed == 0) seed = 1;
  // r[i] = 16807 * r[i-1] mod 2^31-1, computed via Schrage's method exactly
  // as glibc does (with signed 32-bit words promoted to 64-bit).
  ring_[0] = seed;
  for (int i = 1; i < 31; ++i) {
    const std::int64_t prev =
        static_cast<std::int64_t>(static_cast<std::int32_t>(ring_[i - 1]));
    const std::int64_t hi = prev / 127773;
    const std::int64_t lo = prev % 127773;
    std::int64_t word = 16807 * lo - 2836 * hi;
    if (word < 0) word += 2147483647;
    ring_[static_cast<usize>(i)] = static_cast<u32>(word);
  }

  // glibc starts the front pointer `separation` (3) words ahead of the tap
  // pointer, then discards 10 * degree (310) outputs as warm-up.
  f_ = 3;
  t_ = 0;
  for (int i = 0; i < 310; ++i) (void)next();
}

u32 GlibcRandom::next() {
  ring_[static_cast<usize>(f_)] += ring_[static_cast<usize>(t_)];
  const u32 result = (ring_[static_cast<usize>(f_)] >> 1) & 0x7fffffffu;
  if (++f_ >= 31) f_ = 0;
  if (++t_ >= 31) t_ = 0;
  return result;
}

}  // namespace hmcsim
