// Latency accounting shared by the host driver and the lifecycle
// observability layer.
//
// A LatencyStats is a fixed-footprint summary of a cycle-latency
// distribution: count/sum/min/max plus a log2-bucketed histogram from
// which approximate percentiles are interpolated.  The footprint is
// independent of the sample count, so one can be kept per (operation
// class, lifecycle segment) pair without memory concerns.
#pragma once

#include <algorithm>
#include <array>
#include <bit>

#include "common/types.hpp"

namespace hmcsim {

/// Aggregate request latency (e.g. send cycle -> response-drain cycle).
struct LatencyStats {
  u64 count{0};
  u64 sum{0};
  Cycle min{~Cycle{0}};
  Cycle max{0};
  /// log2-bucketed histogram: bucket i counts latencies in [2^i, 2^(i+1)).
  std::array<u64, 40> log2_buckets{};

  void add(Cycle latency) {
    ++count;
    sum += latency;
    min = std::min(min, latency);
    max = std::max(max, latency);
    const unsigned bucket =
        latency == 0 ? 0
                     : std::min<unsigned>(63 - static_cast<unsigned>(
                                                   std::countl_zero(latency)),
                                          log2_buckets.size() - 1);
    ++log2_buckets[bucket];
  }

  /// Fold another summary into this one (histograms are additive).
  void merge(const LatencyStats& other) {
    if (other.count == 0) return;
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    for (usize i = 0; i < log2_buckets.size(); ++i) {
      log2_buckets[i] += other.log2_buckets[i];
    }
  }

  /// Exact histogram equality (count/sum/extremes/buckets), used by the
  /// differential test harness to prove latency attribution is independent
  /// of the clock-engine thread count.
  bool operator==(const LatencyStats&) const = default;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) /
                                  static_cast<double>(count);
  }

  /// Approximate percentile (p in [0,1]) from the log2 histogram: locate
  /// the bucket holding the target rank and interpolate linearly inside
  /// it.  Exact for p=0/p=1 (min/max); within a factor of 2 elsewhere.
  [[nodiscard]] Cycle percentile(double p) const {
    if (count == 0) return 0;
    if (p <= 0.0) return min;
    if (p >= 1.0) return max;
    const double rank = p * static_cast<double>(count);
    double seen = 0;
    for (usize bucket = 0; bucket < log2_buckets.size(); ++bucket) {
      const double in_bucket = static_cast<double>(log2_buckets[bucket]);
      if (seen + in_bucket < rank) {
        seen += in_bucket;
        continue;
      }
      // Interpolate within [2^bucket, 2^(bucket+1)), clamped to the
      // observed extremes so p-values near 0/1 stay inside [min, max].
      const double lo =
          bucket == 0 ? 0.0 : static_cast<double>(Cycle{1} << bucket);
      const double hi = static_cast<double>(Cycle{1} << (bucket + 1));
      const double frac = in_bucket == 0.0 ? 0.0 : (rank - seen) / in_bucket;
      const double value = lo + frac * (hi - lo);
      const double clamped = std::min(
          static_cast<double>(max),
          std::max(static_cast<double>(min), value));
      return static_cast<Cycle>(clamped);
    }
    return max;
  }
};

}  // namespace hmcsim
