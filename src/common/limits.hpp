// Architectural constants from the Hybrid Memory Cube Specification 1.0 and
// the HMC-Sim paper.  Everything here is a hard property of the wire format
// or of the simulator's structural model; run-time configuration lives in
// core/config.hpp.
#pragma once

#include "common/types.hpp"

namespace hmcsim::spec {

/// One flow unit (FLIT) is 16 bytes == two 64-bit words.
inline constexpr usize kFlitBytes = 16;
inline constexpr usize kFlitWords = 2;

/// Packets span 1..9 FLITs; 9 FLITs == 144 bytes == header + 128B payload +
/// tail.
inline constexpr usize kMinPacketFlits = 1;
inline constexpr usize kMaxPacketFlits = 9;
inline constexpr usize kMaxPacketWords = kMaxPacketFlits * kFlitWords;  // 18
inline constexpr usize kMaxPayloadBytes = 128;

/// The physical address field is 34 bits wide.  Four-link devices use the
/// lower 32 bits, eight-link devices the lower 33 bits.
inline constexpr unsigned kAddrBits = 34;
inline constexpr u64 kAddrMask = (u64{1} << kAddrBits) - 1;

/// The in-band cube id (CUB) field is 3 bits.
inline constexpr unsigned kCubBits = 3;
inline constexpr u32 kMaxDevices = 7;  // id kMaxDevices.. reserved for hosts

/// The transaction tag is 9 bits.
inline constexpr unsigned kTagBits = 9;
inline constexpr u16 kMaxTag = (1u << kTagBits) - 1;

/// Valid link counts, and the fixed quad fan-out of four vaults per quad.
inline constexpr u32 kLinks4 = 4;
inline constexpr u32 kLinks8 = 8;
inline constexpr u32 kVaultsPerQuad = 4;

/// Valid banks-per-vault counts (== stacked DRAM die layers).
inline constexpr u32 kBanks8 = 8;
inline constexpr u32 kBanks16 = 16;

/// The vault controller addresses DRAM as 1Mi blocks of 16 bytes each, so a
/// bank holds 16 MiB regardless of configuration (capacity scales with the
/// vault and bank counts).
inline constexpr u64 kBankBytes = u64{16} * 1024 * 1024;
inline constexpr u64 kBlockBytes = 16;

/// Column accesses always move 32 bytes per fetch (spec §III.A).
inline constexpr u64 kColumnFetchBytes = 32;

/// Link serialization rates (Gbps per lane) permitted by the spec; used by
/// the bandwidth model and validated at configuration time.
inline constexpr double kLinkRates4[] = {10.0, 12.5, 15.0};
inline constexpr double kLinkRates8[] = {10.0};

/// Aggregate bandwidth ceiling the spec advertises per device.
inline constexpr double kMaxDeviceBandwidthGBs = 320.0;

}  // namespace hmcsim::spec
