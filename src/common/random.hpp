// Deterministic random number generators.
//
// The paper drives its random-access harness "via a simple linear
// congruential method provided by the GNU libc library".  To keep results
// reproducible on every platform we re-implement both glibc generators:
//
//  * `Lcg31`        — the classic TYPE_0 linear congruential generator
//                     (x' = x*1103515245 + 12345 mod 2^31), the "simple
//                     linear congruential method" the paper names.
//  * `GlibcRandom`  — glibc's default TYPE_3 additive-feedback generator
//                     (what `rand()` actually runs when seeded via
//                     `srand`), provided for bit-exact comparison runs.
//  * `SplitMix64`   — a fast 64-bit mixer for internal simulator needs
//                     (workload shuffles, property-test case generation).
//
// All generators are value types: copyable, comparable, no global state.
#pragma once

#include <array>

#include "common/types.hpp"

namespace hmcsim {

/// glibc TYPE_0 LCG.  Matches `rand()` after `initstate(seed, buf, 8)`, and
/// the traditional K&R-style rand implementations.
class Lcg31 {
 public:
  constexpr explicit Lcg31(u32 seed = 1) : state_(seed) {}

  /// Next value in [0, 2^31).
  constexpr u32 next() {
    state_ = state_ * 1103515245u + 12345u;
    return state_ & 0x7fffffffu;
  }

  /// Next value folded into [0, bound).  Uses 64-bit multiply-shift to avoid
  /// the low-bit correlation of modulo on an LCG.
  constexpr u32 next_below(u32 bound) {
    return static_cast<u32>((static_cast<u64>(next()) * bound) >> 31);
  }

  constexpr bool operator==(const Lcg31&) const = default;

 private:
  u32 state_;
};

/// glibc TYPE_3 additive-feedback generator: r[i] = r[i-3] + r[i-31],
/// output (r[i] >> 1) & 0x7fffffff.  Bit-exact with glibc's rand()/random()
/// after srand(seed), including the 310-value warm-up discard.
class GlibcRandom {
 public:
  explicit GlibcRandom(u32 seed = 1);

  /// Next value in [0, 2^31), identical to glibc rand().
  u32 next();

  bool operator==(const GlibcRandom&) const = default;

 private:
  std::array<u32, 31> ring_{};  // additive-feedback state ring
  int f_{0};                    // front pointer
  int t_{0};                    // tap pointer
};

/// SplitMix64: tiny, statistically strong, used wherever the simulator needs
/// randomness that is not part of the paper's reproduction contract.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(u64 seed = 0x9e3779b97f4a7c15ull)
      : state_(seed) {}

  constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  constexpr u64 next_below(u64 bound) {
    // 128-bit multiply-shift rejection-free bound (bias < 2^-64 * bound).
    return static_cast<u64>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  constexpr double next_double() {  // [0,1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Raw state for checkpointing; reconstruct with SplitMix64(state()).
  [[nodiscard]] constexpr u64 state() const { return state_; }

  constexpr bool operator==(const SplitMix64&) const = default;

 private:
  u64 state_;
};

}  // namespace hmcsim
