// Bit-field extraction/insertion helpers used by the packet codec, the
// address maps and the register file.
//
// All HMC wire formats are little-endian bit fields inside 64-bit words; the
// helpers below take (word, low-bit, width) triples so call sites read like
// the specification tables they implement.
#pragma once

#include <cassert>
#include <bit>

#include "common/types.hpp"

namespace hmcsim {

/// Mask with the low `width` bits set.  width == 64 yields all-ones.
[[nodiscard]] constexpr u64 mask(unsigned width) {
  assert(width <= 64);
  return width >= 64 ? ~u64{0} : ((u64{1} << width) - 1);
}

/// Extract `width` bits starting at bit `lo` of `word`.
[[nodiscard]] constexpr u64 extract(u64 word, unsigned lo, unsigned width) {
  assert(lo < 64 && lo + width <= 64);
  return (word >> lo) & mask(width);
}

/// Return `word` with `width` bits starting at `lo` replaced by the low bits
/// of `value`.  Bits of `value` above `width` are discarded.
[[nodiscard]] constexpr u64 deposit(u64 word, unsigned lo, unsigned width,
                                    u64 value) {
  assert(lo < 64 && lo + width <= 64);
  const u64 m = mask(width) << lo;
  return (word & ~m) | ((value << lo) & m);
}

/// True when `v` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(u64 v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_exact(u64 v) {
  assert(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Ceiling division for unsigned integers.
[[nodiscard]] constexpr u64 ceil_div(u64 a, u64 b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

}  // namespace hmcsim
