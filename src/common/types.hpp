// Fundamental type aliases and strong identifier types shared by every
// HMC-Sim++ subsystem.
//
// The HMC specification addresses structures by small dense indices (cube
// id, link id, quad id, vault id, bank id, ...).  We wrap each in a distinct
// enum-backed strong type so that a vault index can never be passed where a
// bank index is expected; the cost is zero after inlining.
#pragma once

#include <cstdint>
#include <compare>
#include <cstddef>

namespace hmcsim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Simulated clock value.  The paper mandates an unsigned 64-bit counter
/// updated by sub-cycle stage 6.
using Cycle = std::uint64_t;

namespace detail {

/// CRTP-free strong index: a thin wrapper over an integral value with a tag
/// type to prevent accidental cross-assignment between index spaces.
template <typename Tag, typename Rep = std::uint32_t>
struct StrongIndex {
  Rep value{0};

  constexpr StrongIndex() = default;
  constexpr explicit StrongIndex(Rep v) : value(v) {}

  [[nodiscard]] constexpr Rep get() const { return value; }
  constexpr auto operator<=>(const StrongIndex&) const = default;

  constexpr StrongIndex& operator++() {
    ++value;
    return *this;
  }
};

}  // namespace detail

/// Identifies one HMC device (a "cube") inside a simulator object.
/// The in-band CUB field is 3 bits wide, so cube ids range over [0,7];
/// ids strictly greater than the device count denote host endpoints.
using CubeId = detail::StrongIndex<struct CubeTag, std::uint32_t>;

/// Identifies a physical link (0..3 or 0..7) on one device.
using LinkId = detail::StrongIndex<struct LinkTag, std::uint32_t>;

/// Identifies a quadrant (locality domain of four vaults).
using QuadId = detail::StrongIndex<struct QuadTag, std::uint32_t>;

/// Identifies a vault within a device (0..15 or 0..31).
using VaultId = detail::StrongIndex<struct VaultTag, std::uint32_t>;

/// Identifies a bank within a vault (0..7 or 0..15).
using BankId = detail::StrongIndex<struct BankTag, std::uint32_t>;

/// Identifies a DRAM within a bank.
using DramId = detail::StrongIndex<struct DramTag, std::uint32_t>;

/// In-band transaction tag.  9 bits on the wire (0..511).
using Tag = std::uint16_t;

/// A 34-bit HMC physical address, stored in the low bits of a u64.
using PhysAddr = std::uint64_t;

}  // namespace hmcsim
