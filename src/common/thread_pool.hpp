// Deterministic fork-join thread pool for the parallel clock engine.
//
// Design constraints (see docs/TESTING.md, "differential harness"):
//
//  * Static index-range partitioning, no work stealing: shard s of n is
//    always executed by worker floor(s * T / n)'s range, so the
//    shard-to-thread assignment is a pure function of (n, T).  Because the
//    clock engine gives every shard exclusive state and merges shared
//    state in fixed shard order at the barrier, simulation results are
//    bit-identical for ANY thread count — the pool only changes wall-clock
//    time, never behavior.
//  * Low dispatch latency: the simulator runs one to three parallel
//    sections per simulated cycle, so a condvar handshake per section
//    (~10 us) would dominate the actual work.  Workers spin briefly on an
//    atomic epoch before falling back to a condvar sleep, keeping the
//    dispatch cost in the ~1 us range while a simulation is clocking and
//    releasing the CPUs when it is not.
//  * Exceptions must not escape a worker (the stage functions do not
//    throw); a throwing task terminates, matching the engine's contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace hmcsim {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is worker 0).
  /// `num_threads <= 1` creates no workers; parallel_for then runs inline.
  explicit ThreadPool(u32 num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] u32 num_threads() const {
    return static_cast<u32>(workers_.size()) + 1;
  }

  /// Invoke `fn(shard)` for every shard in [0, num_shards), partitioned
  /// into contiguous static ranges across the pool's threads, and block
  /// until all shards complete (a full barrier).  Shards must not touch
  /// each other's state; within one thread's range shards run in ascending
  /// order.  Runs inline (in shard order) when the pool has one thread or
  /// there is at most one shard.
  void parallel_for(u32 num_shards, const std::function<void(u32)>& fn);

  /// The machine's hardware thread count (>= 1).
  [[nodiscard]] static u32 hardware_threads() {
    const u32 n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

 private:
  void worker_loop(u32 worker_index);
  void run_range(u32 worker_index);

  std::vector<std::thread> workers_;

  // Dispatch state: bumping epoch_ publishes {job_, job_shards_} to the
  // workers; done_ counts finished workers back in.
  std::atomic<u64> epoch_{0};
  std::atomic<u32> done_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(u32)>* job_{nullptr};
  u32 job_shards_{0};

  // Sleep fallback for idle workers (spin budget exhausted).
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace hmcsim
