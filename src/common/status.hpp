// Status codes returned across the HMC-Sim++ public API.
//
// The original HMC-Sim is ANSI C and signals errors through negative int
// returns plus a handful of sentinel values (notably HMC_STALL).  We keep the
// same taxonomy but as a scoped enumeration, and provide helpers for the C
// shim to translate back to the classic integer protocol.
#pragma once

#include <string_view>

namespace hmcsim {

enum class Status : int {
  Ok = 0,
  /// A send could not be accepted because the target crossbar arbitration
  /// queue is full.  This is the normal backpressure signal, not an error:
  /// clock the simulation and retry.
  Stalled,
  /// A receive found no pending response packet on the polled link.
  NoResponse,
  /// A structurally invalid argument (bad index, null span, wrong length).
  InvalidArgument,
  /// Device/topology configuration violates a hard simulator constraint
  /// (loopback link, heterogeneous devices, no host link, too many cubes).
  InvalidConfig,
  /// Packet failed validation: unknown command, length mismatch, bad CRC.
  MalformedPacket,
  /// The destination cube id is not reachable from the ingress point.  The
  /// simulator still accepts such packets at configuration time (deliberate
  /// misconfiguration is supported, per the paper) and returns in-band error
  /// responses at simulation time; this code is for immediate API misuse.
  Unroutable,
  /// Register access to an index that does not exist on the device.
  NoSuchRegister,
  /// Write attempted on a read-only register.
  ReadOnlyRegister,
  /// The forward-progress watchdog tripped: `watchdog_cycles` consecutive
  /// clocks passed with queued work but zero progress anywhere in the
  /// device set.  Further clocks are refused; consult
  /// Simulator::watchdog_report() for the diagnostic dump.
  Deadlock,
  /// Internal invariant violation; indicates a simulator bug.
  Internal,
};

[[nodiscard]] constexpr bool ok(Status s) { return s == Status::Ok; }

/// Human-readable name for diagnostics and trace output.
[[nodiscard]] std::string_view to_string(Status s);

/// Translation to the classic C-return protocol: Ok => 0, Stalled => +2
/// (HMC_STALL in the original), everything else => -1.
[[nodiscard]] int to_c_return(Status s);

}  // namespace hmcsim
