#include "core/link_layer.hpp"

#include <algorithm>
#include <utility>

#include "common/bitops.hpp"
#include "packet/packet.hpp"

namespace hmcsim {

namespace {

// One fault-model roll for a transmission on the link.  Burst continuations
// consume no RNG draw (the burst is one wire event); a fresh hit arms
// `link_error_burst_len - 1` forced follow-on failures.  `seq_flavor`
// reports whether the corruption presents to the receiver as a SEQ
// discontinuity (odd rolls) or a CRC failure.
bool roll_corrupt(Device& dev, LinkProtoState& st, bool& seq_flavor) {
  const DeviceConfig& cfg = dev.config();
  seq_flavor = false;
  if (st.burst_remaining > 0) {
    --st.burst_remaining;
    return true;
  }
  if (cfg.link_error_rate_ppm == 0) return false;
  const u64 roll = dev.fault_rng.next_below(1'000'000);
  if (roll >= cfg.link_error_rate_ppm) return false;
  st.burst_remaining = cfg.link_error_burst_len - 1;
  seq_flavor = (roll & 1) != 0;
  return true;
}

// The receiver detected the corruption and drops into error-abort: it
// discards the FLITs, streams StartRetry IRTRYs for the whole retrain
// window, and the transmitter acknowledges with a PRET before holding the
// packet for replay.  The link transmits nothing else until the window
// elapses and the replay lands.
void enter_abort(Device& dev, LinkProtoState& st, RequestEntry&& entry,
                 Cycle cycle, bool seq_flavor) {
  const DeviceConfig& cfg = dev.config();
  if (seq_flavor) {
    ++dev.stats.link_seq_errors;
  } else {
    ++dev.stats.link_crc_errors;
  }
  ++dev.stats.link_abort_entries;
  dev.stats.link_irtry_tx += cfg.link_retry_latency;
  ++dev.stats.link_pret_tx;
  st.retrain_until = cycle + cfg.link_retry_latency;
  st.replay_pending = true;
  st.replay = std::move(entry);
}

// Stamp the link-layer tail fields (piggybacked RRP, the transmit FRP, the
// 3-bit SEQ, the packet's RTC), reseal the CRC, debit the token pool and
// retry-buffer space, and land the packet in the input queue.  The caller
// verified capacity, so the push cannot fail.  The receiver's SEQ check is
// folded in: injected SEQ errors are modelled in roll_corrupt, so an
// accepted transmission always matches rx_seq and both ends advance.
void accept(Device& dev, u32 link, RequestEntry&& entry) {
  LinkProtoState& st = dev.links[link].proto;
  const u32 flits = entry.pkt.flits;
  u64 tail = entry.pkt.tail();
  tail = deposit(tail, 0, 8, st.rx_rrp);
  tail = deposit(tail, 8, 8, st.tx_frp);
  tail = deposit(tail, 16, 3, st.tx_seq);
  tail = deposit(tail, 26, 3, std::min<u64>(flits, 7));
  entry.pkt.tail() = tail;
  seal_crc(entry.pkt);
  entry.req.rrp = st.rx_rrp;
  entry.req.frp = st.tx_frp;
  entry.req.seq = st.tx_seq;
  entry.req.rtc = static_cast<u8>(std::min<u32>(flits, 7));
  st.tx_seq = (st.tx_seq + 1) & 7;
  st.rx_seq = st.tx_seq;
  st.tx_frp = static_cast<u8>(st.tx_frp + flits);
  st.retry_buf_flits += flits;
  st.tokens -= flits;
  st.tokens_debited += flits;
  dev.stats.link_tokens_debited += flits;
  (void)dev.links[link].rqst.push(std::move(entry));
}

}  // namespace

LinkArrival LinkLayer::arrive(Device& dev, u32 link, RequestEntry& entry,
                              Cycle cycle) {
  LinkState& ls = dev.links[link];
  LinkProtoState& st = ls.proto;
  const DeviceConfig& cfg = dev.config();
  if (st.dead) return LinkArrival::Dead;
  if (retraining(dev, link, cycle)) {
    ++dev.stats.link_token_stalls;
    return LinkArrival::TokenStall;
  }
  const u32 flits = entry.pkt.flits;
  if (st.tokens < static_cast<i64>(flits) ||
      st.retry_buf_flits + flits > cfg.link_retry_buffer_flits ||
      ls.rqst.full()) {
    ++dev.stats.link_token_stalls;
    return LinkArrival::TokenStall;
  }
  bool seq_flavor = false;
  if (roll_corrupt(dev, st, seq_flavor)) {
    enter_abort(dev, st, std::move(entry), cycle, seq_flavor);
    return LinkArrival::Corrupted;
  }
  accept(dev, link, std::move(entry));
  return LinkArrival::Accepted;
}

bool LinkLayer::step_replay(Device& dev, u32 link, Cycle cycle,
                            RequestEntry& failed) {
  LinkState& ls = dev.links[link];
  LinkProtoState& st = ls.proto;
  const DeviceConfig& cfg = dev.config();
  if (!st.replay_pending || st.dead) return false;
  if (cycle < st.retrain_until || link_in_stuck_retrain(cfg, cycle)) {
    return false;
  }
  // The replay needs the same resources a fresh transmission would; stay
  // pending (without consuming a retry) until they free up.
  const u32 flits = st.replay.pkt.flits;
  if (st.tokens < static_cast<i64>(flits) ||
      st.retry_buf_flits + flits > cfg.link_retry_buffer_flits ||
      ls.rqst.full()) {
    ++dev.stats.link_token_stalls;
    return false;
  }
  RequestEntry entry = std::move(st.replay);
  st.replay = RequestEntry{};
  st.replay_pending = false;
  // Bugfix over the legacy model: re-validate the stored copy before
  // replaying it.  A corrupt retry-buffer image must die as a CRC failure,
  // not be silently re-injected into the pipeline.
  if (!check_crc(entry.pkt)) {
    failed = std::move(entry);
    return true;
  }
  ++entry.retries;
  ++dev.stats.link_retries;
  dev.stats.link_replayed_flits += flits;
  bool seq_flavor = false;
  if (roll_corrupt(dev, st, seq_flavor)) {
    if (entry.retries >= cfg.link_retry_limit) {
      // Retry budget exhausted: the packet dies and the link accrues one
      // failure toward dead-link escalation.
      ++st.fail_count;
      if (cfg.link_fail_threshold != 0 &&
          st.fail_count >= cfg.link_fail_threshold) {
        st.dead = true;
        ++dev.stats.link_failures;
      }
      failed = std::move(entry);
      return true;
    }
    enter_abort(dev, st, std::move(entry), cycle, seq_flavor);
    return false;
  }
  // Replay landed: the receiver leaves error-abort, confirming with a
  // stream of ClearError IRTRYs.
  dev.stats.link_irtry_tx += cfg.link_retry_latency;
  entry.ready_cycle = cycle + 1;
  accept(dev, link, std::move(entry));
  return false;
}

void LinkLayer::complete(Device& dev, u32 link, u32 flits, u8 frp) {
  LinkProtoState& st = dev.links[link].proto;
  st.rx_rrp = frp;
  st.retry_buf_flits =
      st.retry_buf_flits >= flits ? st.retry_buf_flits - flits : 0;
  st.tokens += flits;
  st.tokens_returned += flits;
  dev.stats.link_tokens_returned += flits;
  ++dev.stats.link_tret_tx;
}

bool LinkLayer::retraining(const Device& dev, u32 link, Cycle cycle) {
  const LinkProtoState& st = dev.links[link].proto;
  return st.replay_pending || link_in_stuck_retrain(dev.config(), cycle);
}

bool LinkLayer::quiescent(const Device& dev, Cycle /*cycle*/) {
  const DeviceConfig& cfg = dev.config();
  if (!cfg.link_protocol) return true;
  const i64 pool = resolved_link_tokens(cfg);
  for (const LinkState& ls : dev.links) {
    const LinkProtoState& st = ls.proto;
    if (st.replay_pending) return false;
    // Tokens away from the pool fixed point (or an occupied retry buffer)
    // mean FLITs in flight somewhere the fast path cannot see.
    if (st.tokens != pool || st.retry_buf_flits != 0) return false;
  }
  return true;
}

void LinkLayer::reset(const DeviceConfig& cfg, LinkProtoState& st) {
  st = LinkProtoState{};
  if (cfg.link_protocol) st.tokens = resolved_link_tokens(cfg);
}

}  // namespace hmcsim
