// The HMC-Sim simulator object: one or more homogeneous HMC devices, a link
// topology, and the six-stage sub-cycle clock engine (paper §IV.C).
//
// External memory operations (host-visible API):
//   * send()  — inject a request packet on a host link (stalls when the
//               crossbar arbitration queue is full);
//   * recv()  — drain a response packet from a host link;
//   * jtag_*  — side-band register access outside the clock domains.
//
// Internal memory operations advance only on clock():
//   stage 1: process child-device link crossbar transactions
//   stage 2: process root-device link crossbar request transactions
//   stage 3: recognize bank conflicts on vault request queues
//   stage 4: process vault queue memory request transactions
//   stage 5: register response packets with crossbar response queues
//            (root devices first, then children)
//   stage 6: update the internal 64-bit clock value
//
// A packet progresses by at most one internal stage per clock — it cannot
// move from the crossbar interface to a memory bank in a single cycle.
//
// Parallel execution (DeviceConfig::sim_threads): within one clock, stages
// 1-2 fan out per device and stages 3-4 per (device, vault) across a
// deterministic thread pool, with a barrier between stages preserving the
// one-stage-per-clock contract.  Every shard owns its state exclusively;
// the shared state a stage would otherwise update in interleaved order —
// stats counters, trace records, dynamic vault-failure bits, the RAS error
// log — accumulates per shard and merges in fixed shard order at the
// barrier, and the DRAM fault RNG is sharded per vault.  Results are
// therefore bit-identical for every thread count (the differential harness
// in tests/integration/test_differential.cpp enforces this).  Stage 5 runs
// serially by design: link response queues are shared across all vaults
// and exit-link selection balances on live queue occupancy, so the stage
// is inherently order-coupled — and it is cheap queue movement, not the
// hot loop.  See docs/TESTING.md.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "common/thread_pool.hpp"
#include "core/checkpoint.hpp"
#include "core/custom_command.hpp"
#include "core/device.hpp"
#include "profile/flight_recorder.hpp"
#include "profile/profiler.hpp"
#include "profile/telemetry.hpp"
#include "topo/topology.hpp"
#include "trace/lifecycle.hpp"
#include "trace/tracer.hpp"

namespace hmcsim {

class Simulator {
 public:
  Simulator() = default;

  /// Master initialization (paper §V.A): configure `config.num_devices`
  /// homogeneous devices wired by `topo`, and reset them to an identical
  /// power-on state.  The topology's device/link counts must match the
  /// config.  Must be called before any other member.
  Status init(const SimConfig& config, Topology topo,
              std::string* diagnostic = nullptr);

  /// Convenience initialization for the single-device, all-links-to-host
  /// configuration (Figure 1 "Simple").
  Status init_simple(const DeviceConfig& device,
                     std::string* diagnostic = nullptr);

  [[nodiscard]] bool initialized() const { return !devices_.empty(); }

  // ---- host-edge packet interface -----------------------------------------

  /// Inject a fully formed, CRC-sealed request packet on host link `link`
  /// of root device `dev`.  Returns:
  ///   Stalled          — crossbar arbitration queue full; clock and retry.
  ///   InvalidArgument  — bad device/link, or the link is not host-wired.
  ///   MalformedPacket  — packet fails structural validation.
  Status send(u32 dev, u32 link, const PacketBuffer& packet);

  /// Drain the next response packet pending on host link `link`; returns
  /// NoResponse when none is ready.  Responses may arrive out of order;
  /// hosts correlate via the 9-bit TAG.
  Status recv(u32 dev, u32 link, PacketBuffer& out);

  /// Progress every internal device operation by one clock cycle (one full
  /// pass of sub-cycle stages 1..6).
  ///
  /// When DeviceConfig::fast_forward is on and every crossbar/vault queue
  /// is empty, the call takes an O(queues) fast path instead of executing
  /// the six stages: the clock still advances by exactly one cycle and all
  /// observable state (stats, checkpoint bytes, register views, watchdog
  /// accounting) stays bit-identical to the staged path — the fast path
  /// only arms once the per-cycle idle mutations (link budget refills, RWS
  /// register self-clears) have reached their fixed point, and it disarms
  /// before any cycle with a non-idempotent event (scrub step, staggered
  /// vault refresh, user cycle hook).  See docs/INTERNALS.md.
  void clock();

  [[nodiscard]] Cycle now() const { return cycle_; }

  /// Clock cycles advanced via the idle fast path since init/reset.  Always
  /// `cycles_skipped() <= now()`; the difference is the number of cycles
  /// that executed the full six-stage pass.  Restoring a checkpoint resets
  /// this counter (it is an execution statistic, not device state, and is
  /// deliberately not serialized).
  [[nodiscard]] u64 cycles_skipped() const { return cycles_skipped_; }

  // ---- side-band register interface (JTAG / I2C; paper §V.D) ---------------

  /// Read/write a device register by its architected physical index.  These
  /// bypass the packet path and the clock domains entirely.
  ///
  /// Status registers are LIVE: FEAT reports the device geometry
  /// (capacity-GB[7:0] | links[11:8] | banks[19:12] | vaults[27:20]),
  /// IBTCn reports the current free input-buffer token count of link n
  /// (its request-queue free slots), and ERR reports the cumulative error
  /// response count (injected link errors in the high word).
  Status jtag_reg_read(u32 dev, u32 phys_index, u64& value) const;
  Status jtag_reg_write(u32 dev, u32 phys_index, u64 value);

  // ---- tracing ---------------------------------------------------------------

  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

  // ---- lifecycle observability ----------------------------------------------

  /// Attach an observer of completed packet lifecycles (per-stage cycle
  /// stamps; see trace/lifecycle.hpp).  Observers fire at recv() for every
  /// drained response that traversed a vault.  Stamping itself is always
  /// on (plain cycle stores at queue hops); only the dispatch is gated on
  /// observer presence.
  void add_lifecycle_observer(std::shared_ptr<LifecycleObserver> observer) {
    lifecycle_observers_.push_back(std::move(observer));
  }
  void clear_lifecycle_observers() { lifecycle_observers_.clear(); }

  /// Install `hook` to run at the end of every clock() whose resulting
  /// cycle count is a multiple of `interval` (0 uninstalls).  Used by the
  /// periodic metrics sampler; costs one branch per clock when idle.
  void set_cycle_hook(Cycle interval,
                      std::function<void(const Simulator&)> hook) {
    hook_interval_ = interval;
    cycle_hook_ = std::move(hook);
    ff_invalidate();  // the hook schedule bounds the fast-forward stop cycle
  }

  // ---- observability -----------------------------------------------------------

  [[nodiscard]] const SimConfig& config() const { return config_; }
  /// Resolved clock-engine worker count (sim_threads with 0 resolved to the
  /// hardware concurrency at init time).  Purely an execution property:
  /// simulation results are identical for every value.
  [[nodiscard]] u32 sim_threads() const { return resolved_threads_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] u32 num_devices() const {
    return static_cast<u32>(devices_.size());
  }
  [[nodiscard]] const Device& device(u32 dev) const { return *devices_[dev]; }
  [[nodiscard]] Device& device(u32 dev) { return *devices_[dev]; }
  [[nodiscard]] const DeviceStats& stats(u32 dev) const {
    return devices_[dev]->stats;
  }
  [[nodiscard]] DeviceStats total_stats() const;

  /// True when every queue in every device is empty (all in-flight traffic
  /// has drained to the host or died as an error response).
  [[nodiscard]] bool quiescent() const;

  // ---- self-observation (src/profile/; all off by default) -----------------

  /// Stage wall-time profiler; null unless DeviceConfig::self_profile.
  [[nodiscard]] const StageProfiler* profiler() const {
    return profiler_.get();
  }
  /// Occupancy telemetry; null unless telemetry_interval_cycles != 0.
  [[nodiscard]] Telemetry* telemetry() { return telemetry_.get(); }
  [[nodiscard]] const Telemetry* telemetry() const { return telemetry_.get(); }
  /// Flight recorder; null unless flight_recorder_depth != 0.
  [[nodiscard]] const FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }
  /// Close any open fast-forward skip span so profiler span counts and the
  /// recorder's FF_SKIP_SPAN events reflect skipping up to now().  Call
  /// before reading the profiler/recorder at end of run; the clock engine
  /// closes spans itself whenever the staged path resumes.
  void flush_observability() { ff_close_skip_span(); }

  /// Text dump of the flight recorder (oldest events first).  Returns false
  /// when the recorder is off.
  bool dump_flight_recorder(std::ostream& os);
  /// Chrome-trace (Trace Event Format) dump of the flight recorder.
  bool dump_flight_recorder_chrome(std::ostream& os);

  // ---- forward-progress watchdog -------------------------------------------

  /// True once the watchdog has tripped: `watchdog_cycles` consecutive
  /// clocks saw queued work but zero progress anywhere (no retire, no
  /// response, no hop, no retry, no host drain).  Further clock() calls are
  /// ignored; the simulation is frozen for post-mortem inspection.
  [[nodiscard]] bool watchdog_fired() const { return watchdog_fired_; }

  /// Diagnostic dump captured at the moment the watchdog fired: per-device
  /// queue occupancies and the in-flight entries (tags, addresses,
  /// lifecycle stamps).  Empty until watchdog_fired().
  [[nodiscard]] const std::string& watchdog_report() const {
    return watchdog_report_;
  }

  // ---- chaos orchestration (src/chaos/; docs/CHAOS.md) ---------------------

  /// Arm a compiled chaos plan: events apply deterministically from the
  /// clock loop at their exact cycles, on the staged and the fast-forward
  /// path alike.  Structural indices are validated against the
  /// configuration; on a checkpoint resume, re-passing the same plan is a
  /// no-op (the restored cursor survives) while a different plan is
  /// rejected.  Requires an initialized simulator.
  Status set_chaos_plan(ChaosPlan plan, std::string* diagnostic = nullptr);

  /// The engine; null unless a plan was armed or chaos_invariants != 0.
  [[nodiscard]] ChaosEngine* chaos() { return chaos_.get(); }
  [[nodiscard]] const ChaosEngine* chaos() const { return chaos_.get(); }

  /// True once a live invariant check has failed.  Like the watchdog, the
  /// machine freezes at the first violation: further clock() calls are
  /// ignored so the state can be inspected post-mortem.
  [[nodiscard]] bool chaos_violated() const {
    return chaos_ != nullptr && chaos_->violated();
  }

  /// Violation + machine state dump captured at the first failing check
  /// ("" until chaos_violated()).
  [[nodiscard]] const std::string& chaos_report() const;

  /// Reset devices and the clock to the power-on state (topology intact).
  void reset(bool clear_memory = true);

  // ---- custom memory cube commands (CMC) -----------------------------------

  /// Register a user-defined command under a reserved 6-bit encoding.
  /// Registered commands flow through the full pipeline (crossbar routing,
  /// bank timing, ordering, responses) on every device of this object.
  /// Registration is only permitted while the devices are quiescent.
  Status register_custom_command(u8 raw_cmd, CustomCommandDef def);

  [[nodiscard]] const CustomCommandSet& custom_commands() const {
    return custom_;
  }

  // ---- checkpointing (implemented in core/checkpoint.cpp) ------------------

  /// Serialize the complete simulator state — configuration, topology,
  /// clock, every queue entry and in-flight packet, registers, bank timing
  /// and memory contents — to a versioned binary stream (format v6:
  /// per-section length + CRC-32K framing and a trailer magic; see
  /// docs/FORMATS.md §5).  A restored simulator continues cycle-for-cycle
  /// identically.  Host-side state (outstanding-tag bookkeeping in
  /// drivers) rides in the optional HOST section: pass it as `host_blob`.
  Status save_checkpoint(std::ostream& os) const;
  Status save_checkpoint(std::ostream& os, CheckpointError* err,
                         std::string_view host_blob) const;

  /// Rebuild this simulator from a checkpoint stream.  Any existing state
  /// is discarded.  Accepts every version back to v2; every failure —
  /// bad magic, short read, section CRC mismatch, impossible field value,
  /// unknown version — is converted into a typed CheckpointError (never an
  /// abort or out-of-bounds access, whatever the input).  Status mapping:
  /// MalformedPacket for structural damage, InvalidConfig for impossible
  /// decoded values.  A v6 HOST section, when present, is handed back
  /// verbatim through `host_blob_out`.
  Status restore_checkpoint(std::istream& is);
  Status restore_checkpoint(std::istream& is, CheckpointError* err,
                            std::string* host_blob_out);

  /// File entry points: save writes atomically (temp + fsync + rename via
  /// io/atomic_file.hpp) so an interrupted save can never tear an existing
  /// checkpoint; restore memory-buffers the file.  Both surface typed
  /// errors through `err`.
  Status save_checkpoint_file(const std::string& path,
                              CheckpointError* err = nullptr,
                              std::string_view host_blob = {}) const;
  Status restore_checkpoint_file(const std::string& path,
                                 CheckpointError* err = nullptr,
                                 std::string* host_blob_out = nullptr);

 private:
  // Version-dispatched restore bodies (core/checkpoint.cpp).  The legacy
  // path parses the pre-v6 continuous stream; the v6 path walks the
  // section frames.
  Status restore_checkpoint_legacy_(std::istream& is, u32 version,
                                    CheckpointError* err);
  Status restore_checkpoint_v6_(std::istream& is, u32 version,
                                CheckpointError* err,
                                std::string* host_blob_out);

  /// Per-shard mutable context for one parallel stage execution.  Stage
  /// code funnels every update to logically-shared state through this so
  /// that (a) no two shards write the same cache line and (b) the merge at
  /// the stage barrier applies updates in fixed shard order, independent of
  /// thread count.  In device-exclusive contexts (stages 1-2, where shard ==
  /// device) `stats` points directly at the device's counters and `trace`
  /// buffers only for emission ordering; in vault shards `stats` points at
  /// a scratch accumulator merged with DeviceStats::operator+=.
  struct ShardCtx {
    DeviceStats* stats{nullptr};
    /// Null: emit trace records directly (serial context).  Non-null:
    /// buffer; the stage merge emits buffers in shard order.
    std::vector<TraceRecord>* trace{nullptr};
    /// Flight-recorder events, following the same buffering discipline as
    /// `trace`: null = record into the ring directly (serial context),
    /// non-null = buffer and merge in fixed shard order at the barrier.
    std::vector<FlightEvent>* events{nullptr};
    /// Vault-failure bits discovered this stage; OR-merged into
    /// RasState::failed_vaults at the barrier.
    u64 pending_failed_vaults{0};
    /// RAS error-log update (last writer in shard order wins, matching the
    /// serial engine's last-writer-in-vault-order).
    u64 last_error_addr{0};
    u8 last_error_stat{0};
    bool has_last_error{false};
  };

  /// A cross-device request forward staged during the parallel crossbar
  /// phase and flushed serially at the stage barrier (two-phase push: the
  /// destination queue is shared between devices, so the actual push must
  /// happen in fixed device order).
  struct StagedForward {
    RequestEntry entry;
    u32 src_link{0};      ///< source-device queue the entry left
    u32 out_link{0};      ///< egress link chosen by routing (for tracing)
    u32 dst_dev{0};
    u32 dst_link{0};
    u32 flits{0};
    /// Original ingress fields, restored if the flush bounces the entry
    /// back to the source queue.
    u32 src_ingress{0};
    bool src_penalty{false};
  };

  /// Per-device scratch for the stage 1-2 parallel phase.
  struct XbarScratch {
    std::vector<TraceRecord> trace;
    std::vector<FlightEvent> events;
    std::vector<StagedForward> outbox;
    /// Forwards staged toward each global (device, link) request queue,
    /// checked against the pre-stage free-slot snapshot `xbar_free_`.
    std::vector<u32> staged;
  };

  /// Per-(device, vault) scratch for the fused stage 3-4 parallel phase.
  struct VaultScratch {
    DeviceStats stats;
    std::vector<TraceRecord> trace;
    std::vector<FlightEvent> events;
    u64 pending_failed_vaults{0};
    u64 last_error_addr{0};
    u8 last_error_stat{0};
    bool has_last_error{false};
  };

  // Sub-cycle stages.
  void stage1_child_xbar();
  void stage2_root_xbar();
  void stage3_and_4_vaults();
  void stage5_responses();
  void stage6_clock_update();

  /// Dispatch `fn(0..num_shards)` across the pool (deterministic static
  /// partition), or inline ascending when running serial.
  void run_shards(u32 num_shards, const std::function<void(u32)>& fn);

  /// Stages 1-2 driver: snapshot destination capacity, run process_xbar
  /// over `devs` in parallel, then merge trace buffers and flush the
  /// cross-device outboxes serially in shard order.
  void run_xbar_stage(const std::vector<u32>& devs, u8 stage);
  void flush_outboxes(const std::vector<u32>& devs, u8 stage);

  /// Shared crossbar logic for stages 1 and 2.
  void process_xbar(Device& dev, u8 stage, ShardCtx& ctx, XbarScratch& sc);

  /// Stage 3 for one vault: scan the request queue's conflict window.
  void scan_bank_conflicts(Device& dev, u32 vault_index, ShardCtx& ctx);
  /// Stage 4 helpers.
  void process_vault(Device& dev, u32 vault_index, ShardCtx& ctx);
  /// Drain a failed vault's queued requests as VAULT_FAILED errors.
  /// Serial-only (touches the shared mode_rsp staging queue).
  void drain_failed_vault(Device& dev, u32 vault_index);
  /// Retire one request at a bank: perform the memory/register operation
  /// and enqueue the response (when non-posted).  Returns false when the
  /// vault response queue is full (the entry must stay queued).
  bool retire_request(Device& dev, u32 vault_index, RequestEntry& entry,
                      ShardCtx& ctx);

  /// Build an error response for a failed request and route it home.
  /// Returns false when the destination staging queue is full.  Only called
  /// from device-exclusive or serial contexts (writes dev.mode_rsp and the
  /// RAS error log directly).
  bool emit_error_response(Device& dev, const RequestEntry& entry,
                           ErrStat errstat, u8 stage, ShardCtx& ctx);

  /// Outcome of the legacy (link_protocol off) per-transmission fault roll.
  enum class LegacyFault : u8 {
    None,     ///< no injected error; the transmission proceeds
    Replay,   ///< retried from the retry buffer; the link is blocked
    Killed,   ///< retry budget exhausted; error response emitted, remove
    Blocked,  ///< kill wanted but the staging queue is full; retry later
  };

  /// Shared legacy fault-injection roll for both crossbar forwarding sites
  /// (peer-forward and link-to-vault).  Rolls the device fault generator,
  /// charges retries against the budget, re-validating the retry-buffer
  /// copy's CRC before every replay, and emits the CRC_FAILURE error once
  /// the budget is spent.  No-op (no RNG draw) when the spec link protocol
  /// is on — injection then happens at link arrival instead.
  LegacyFault legacy_link_fault(Device& dev, LinkState& link_state,
                                RequestEntry& entry, u8 stage, ShardCtx& ctx);

  /// Link-layer protocol prologue for one crossbar link: drain a dead
  /// link's queue as LINK_FAILED errors, account retraining cycles, and
  /// step the error-abort replay machine.  Returns false when the link is
  /// dead (the caller skips normal processing).
  bool step_link_protocol(Device& dev, u32 link, u8 stage, ShardCtx& ctx);

  /// Stage 5 helpers.
  void drain_response_queue(Device& dev, BoundedQueue<ResponseEntry>& queue,
                            u32 vault_for_trace);
  void transfer_link_responses(Device& dev);

  /// Exit link a response should take from `dev` toward its home port, or
  /// kNoCoord when unreachable.
  [[nodiscard]] u32 response_exit_link(const Device& dev,
                                       const ResponseEntry& e) const;

  void trace(TraceEvent event, u8 stage, u32 dev, u32 link, u32 quad,
             u32 vault, u32 bank, PhysAddr addr, Tag tag, Command cmd);
  /// As trace(), but routed through the shard context: buffered when the
  /// context carries a buffer, emitted directly otherwise.
  void trace_to(ShardCtx& ctx, TraceEvent event, u8 stage, u32 dev, u32 link,
                u32 quad, u32 vault, u32 bank, PhysAddr addr, Tag tag,
                Command cmd);

  /// Register read with live status-register interception (FEAT geometry,
  /// IBTC token counts, ERR error totals, RAS error log); shared by the
  /// JTAG and MODE_READ paths.
  [[nodiscard]] Status read_register_live(const Device& dev, u32 phys_index,
                                          u64& value) const;

  // ---- RAS helpers (core/ras.cpp) ------------------------------------------

  /// Roll the DRAM fault model for one retired access and plant the
  /// resulting bit flips (transient on read, latent on write).  Draws from
  /// the serving vault's sharded generator.
  void inject_dram_fault(Device& dev, u32 vault_index, PhysAddr addr,
                         usize bytes);
  /// Run the SECDED codec over a read footprint.  Returns true when an
  /// uncorrectable error poisons the access (the caller must answer
  /// DRAM_DBE instead of data).
  bool ras_check_read(Device& dev, u32 vault_index, PhysAddr addr,
                      usize bytes, ShardCtx& ctx);
  /// One background-scrubber step over the device's next window.
  void scrub_step(Device& dev);
  /// Count one uncorrectable error against a vault; marks it failed at the
  /// configured threshold (deferred to the stage merge via the context).
  void note_vault_uncorrectable(Device& dev, u32 vault_index, ShardCtx& ctx);
  /// Forward-progress tracking (end of stage 6).
  [[nodiscard]] u64 progress_fingerprint() const;
  void check_watchdog();
  [[nodiscard]] std::string build_watchdog_report() const;
  /// Machine snapshot (queues, link protocol state, in-flight entries,
  /// flight-recorder tail) shared by the watchdog report and the chaos
  /// invariant-violation report.
  [[nodiscard]] std::string build_state_dump() const;

  // ---- observability helpers (src/profile/ wiring) -------------------------

  /// Record one flight-recorder event through the shard context (buffered in
  /// parallel contexts, direct otherwise).  No-op when the recorder is off.
  void record_event(ShardCtx& ctx, FlightEventType type, u32 dev, u8 stage,
                    u16 unit, u64 arg);
  /// As record_event() from serial / device-exclusive contexts.
  void record_event_direct(FlightEventType type, u32 dev, u8 stage, u16 unit,
                           u64 arg);
  /// One telemetry sampling pass over every device's queues/token pools.
  void sample_telemetry();
  /// Close an open fast-forward skip span: bump the profiler span count and
  /// record the FF_SKIP_SPAN event (on device 0's ring — spans are global).
  void ff_close_skip_span();
  /// Record the watchdog transition on every device's ring.
  void record_watchdog_event(FlightEventType type, u64 arg);

  // ---- idle-cycle fast-forward engine (core/simulator.cpp) -----------------

  /// Arm the fast path: prove that a full six-stage pass over the current
  /// state would only perform idempotent idle mutations, and compute the
  /// stop cycle — the next clock whose pass has an effect the fast path
  /// does not emulate (scrub step, staggered vault refresh, cycle hook).
  /// Returns false when idle cycles cannot be proven side-effect-free yet
  /// (non-empty queues, link budgets below their refill fixed point, RWS
  /// registers awaiting their self-clearing edge).
  bool ff_arm();
  /// One fast cycle: re-verify queue emptiness (guarding against direct
  /// Device mutation between calls), advance the clock, and emulate the
  /// watchdog bookkeeping against the quiescence/fingerprint facts frozen
  /// at arm time.  Returns false when the staged path must run instead.
  bool ff_fast_cycle();
  /// Every queue a clock stage would consume is empty.  Host-link response
  /// queues are exempt: stage 5 never touches them (they drain via recv()),
  /// so pending host responses are inert during a skip — though they do
  /// keep quiescent() false, which the watchdog emulation accounts for.
  [[nodiscard]] bool ff_queues_idle() const;
  /// Drop the armed state.  Called by every mutation outside the clock
  /// domain (send/recv/JTAG writes/hook changes/custom-command
  /// registration); state is always materialized, so invalidation is just
  /// a flag clear and the next clock() re-proves eligibility.
  void ff_invalidate() { ff_armed_ = false; }

  SimConfig config_{};
  Topology topo_{};
  CustomCommandSet custom_{};
  std::vector<std::unique_ptr<Device>> devices_;
  Cycle cycle_{0};
  Tracer tracer_{};
  std::vector<std::shared_ptr<LifecycleObserver>> lifecycle_observers_;
  Cycle hook_interval_{0};
  std::function<void(const Simulator&)> cycle_hook_;
  /// Device processing order caches for stages 1/2/5.
  std::vector<u32> root_devices_;
  std::vector<u32> child_devices_;
  /// Clock-engine parallelism (see DeviceConfig::sim_threads).  The pool is
  /// only instantiated for resolved_threads_ > 1; the sharded algorithm and
  /// fixed-order merges run identically either way.
  u32 resolved_threads_{1};
  std::unique_ptr<ThreadPool> pool_;
  /// Stage scratch, sized at init so the hot loop never allocates.
  std::vector<XbarScratch> xbar_scratch_;
  std::vector<VaultScratch> vault_scratch_;
  /// Pre-stage snapshot of every (device, link) request queue's free slots
  /// (capacity reservation base for the two-phase cross-device forward).
  std::vector<u32> xbar_free_;
  /// Start-of-stage-4 failed-vault masks (shard selection reads a stable
  /// copy; bits earned during the stage merge at the barrier).
  std::vector<u64> failed_snapshot_;
  /// flush_outboxes working state (members to avoid per-cycle allocation).
  std::vector<u8> bounce_mark_;
  std::vector<StagedForward> bounced_;
  /// Forward-progress watchdog state.
  bool watchdog_fired_{false};
  u32 watchdog_stall_cycles_{0};
  u64 watchdog_fingerprint_{0};
  std::string watchdog_report_;
  /// Idle-cycle fast-forward state (see DeviceConfig::fast_forward).  Not
  /// serialized: like sim_threads, an execution property — checkpoints are
  /// byte-identical with the knob on or off.
  u64 cycles_skipped_{0};
  bool ff_armed_{false};
  /// First cycle whose clock() call must run the staged path (exclusive
  /// skip bound); kNoStopCycle when nothing bounds the skip.
  Cycle ff_stop_cycle_{0};
  /// quiescent() / progress_fingerprint() frozen at arm time; both are
  /// invariant across fast cycles (only host recv/send change them, and
  /// those invalidate), letting the watchdog emulation run in O(1).
  bool ff_quiescent_{false};
  u64 ff_fingerprint_{0};
  /// Self-observation layer (src/profile/); all null unless the matching
  /// DeviceConfig knob enables them.  Pure observation: none of these may
  /// influence simulated state (differential-proven).
  std::unique_ptr<StageProfiler> profiler_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<FlightRecorder> recorder_;
  /// Fast cycles in the currently open skip span (0 = no open span); only
  /// tracked when the profiler or recorder is on.
  u64 ff_span_len_{0};
  /// Per-device bitmask of links whose dead-escalation event has been
  /// recorded (LinkProtoState itself is checkpointed and must not grow a
  /// bookkeeping field).
  std::vector<u64> fr_dead_logged_;
  /// Chaos-orchestration engine (src/chaos/engine.cpp); created by init()
  /// when chaos_invariants != 0, by set_chaos_plan(), or by a checkpoint
  /// restore that carries a CHAO section.  The engine applies plan events
  /// and runs invariant checks from inside the clock loop, so it needs the
  /// same private access the stages have.
  std::unique_ptr<ChaosEngine> chaos_;
  friend class ChaosEngine;
};

/// Build a compliant, CRC-sealed memory request packet (paper Figure 4's
/// hmcsim_build_memrequest).  `link` lands in the SLID field so the device
/// can route the response back to the injection link.
[[nodiscard]] Status build_memrequest(u32 cub, PhysAddr addr, Tag tag,
                                      Command cmd, u32 link,
                                      std::span<const u64> payload,
                                      PacketBuffer& out);

/// Build a MODE_READ / MODE_WRITE register access request.  The register's
/// architected physical index rides in the ADRS field.
[[nodiscard]] Status build_moderequest(u32 cub, u32 phys_reg_index, Tag tag,
                                       bool write, u64 value, u32 link,
                                       PacketBuffer& out);

}  // namespace hmcsim
