// Checkpoint robustness layer: typed restore errors, the v6 section-framed
// container, and generation-directory management for periodic
// auto-checkpointing (docs/FORMATS.md §5).
//
// The simulator's value is long deterministic runs; PRs 1-6 made the
// *simulated* device fault-tolerant, and this layer extends the same RAS
// discipline to the simulator process itself:
//
//   * every restore failure — bad magic, short read, CRC mismatch,
//     impossible field value, unknown version — becomes a typed
//     CheckpointError instead of an abort or silent corruption;
//   * checkpoints are written atomically (io/atomic_file.hpp) and framed
//     per section with a length and CRC-32K plus a trailer magic, so a
//     torn or bit-rotted file is *detected*, never restored;
//   * a checkpoint directory holds rotated generations
//     (ckpt-<gen 12-digit>.bin) and resume scans them newest-first,
//     falling back past damaged files to the newest valid one.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace hmcsim {

class Simulator;

// ---- typed restore/save errors ---------------------------------------------

enum class CheckpointErrorCode : u8 {
  None = 0,
  IoError,             ///< OS-level open/read failure (file entry points)
  BadMagic,            ///< leading container magic mismatch
  UnsupportedVersion,  ///< version outside [kMinVersion, kVersion]
  ShortRead,           ///< stream ended inside a field or section
  BadSectionType,      ///< v6 section header carries an unknown/misplaced type
  SectionTooLarge,     ///< v6 section length above the hostile-input cap
  SectionCrcMismatch,  ///< v6 section payload fails its CRC-32K
  TrailerMissing,      ///< v6 trailer magic absent (file truncated at the end)
  BadFieldValue,       ///< a decoded value fails validation (impossible state)
  BadHostState,        ///< HOST section blob fails its consumer's validation
  WriteFailed,         ///< checkpoint write failed (short write/ENOSPC/EIO)
};

[[nodiscard]] const char* to_string(CheckpointErrorCode code);

struct CheckpointError {
  CheckpointErrorCode code{CheckpointErrorCode::None};
  /// Byte offset into the checkpoint stream where the failure was detected
  /// (0 when not meaningful, e.g. write failures).
  u64 offset{0};
  /// v6 section type the failure occurred in (0 = preamble/trailer).
  u32 section{0};
  std::string detail;

  [[nodiscard]] bool failed() const {
    return code != CheckpointErrorCode::None;
  }
  /// One-line human-readable rendering: code, section, offset, detail.
  [[nodiscard]] std::string message() const;
};

// ---- v6 container constants ------------------------------------------------

namespace ckpt {

constexpr u32 fourcc(char a, char b, char c, char d) {
  return static_cast<u32>(static_cast<u8>(a)) |
         static_cast<u32>(static_cast<u8>(b)) << 8 |
         static_cast<u32>(static_cast<u8>(c)) << 16 |
         static_cast<u32>(static_cast<u8>(d)) << 24;
}

/// Section types, in their mandatory order.  DEVC repeats once per device;
/// CHAO (v8) is optional (present when a chaos campaign is armed) and
/// HOST is optional (present when the saver attached host-side state).
constexpr u32 kSectionConfig = fourcc('C', 'F', 'G', ' ');
constexpr u32 kSectionTopology = fourcc('T', 'O', 'P', 'O');
constexpr u32 kSectionClock = fourcc('C', 'L', 'K', ' ');
constexpr u32 kSectionDevice = fourcc('D', 'E', 'V', 'C');
constexpr u32 kSectionWatchdog = fourcc('W', 'D', 'O', 'G');
constexpr u32 kSectionChaos = fourcc('C', 'H', 'A', 'O');
constexpr u32 kSectionHost = fourcc('H', 'O', 'S', 'T');

/// Hostile-input guard: no legitimate section approaches this (a maximal
/// 8 GB device image is dominated by DEVC page records, and those are
/// bounded by resident pages, not capacity).
constexpr u64 kMaxSectionBytes = u64{1} << 32;

/// Short name for error messages ("CFG", "DEVC", ...); "?" when unknown.
[[nodiscard]] const char* section_name(u32 type);

}  // namespace ckpt

// ---- generation directories ------------------------------------------------

struct CheckpointGeneration {
  u64 gen{0};
  std::string path;
};

/// `<dir>/ckpt-<gen, 12 decimal digits>.bin`.
[[nodiscard]] std::string checkpoint_generation_path(const std::string& dir,
                                                     u64 gen);

/// Every well-named generation file in `dir`, ascending by generation.
/// Temp debris (`*.tmp.*`) and foreign files are ignored.  A missing or
/// unreadable directory yields an empty list.
[[nodiscard]] std::vector<CheckpointGeneration> list_checkpoint_generations(
    const std::string& dir);

/// Delete all but the newest `keep` generations (keep == 0 keeps them all).
void prune_checkpoint_generations(const std::string& dir, u32 keep);

/// Scan `dir` newest-first and restore the first generation that validates,
/// falling back past torn or corrupt files (that fallback is the point of
/// rotation).  On success returns Ok with `*gen_out` set and the HOST blob
/// (when present) in `*host_blob_out`.  Returns NoResponse when the
/// directory holds no generation files at all; otherwise the failure of the
/// newest generation, described in `*err`.
Status resume_from_directory(Simulator& sim, const std::string& dir,
                             u64* gen_out = nullptr,
                             std::string* host_blob_out = nullptr,
                             CheckpointError* err = nullptr);

}  // namespace hmcsim
