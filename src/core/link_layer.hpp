// Spec-faithful link-layer reliability (HMC 1.0 §Link Retry / Flow Control).
//
// Every external link of a device carries the retry/flow-control machinery
// the specification mandates:
//
//   * a transmit retry buffer addressed by the 8-bit FRP (forward retry
//     pointer): every packet accepted onto the link occupies FLIT slots in
//     the buffer until the receiver's RRP (return retry pointer) — modelled
//     at the moment the packet leaves the receiver's input buffer —
//     deallocates them;
//   * token-based injection gating: the receiver's input buffer is a pool
//     of `link_tokens` FLIT credits.  A transmission debits its FLIT count
//     (RTC on the wire) and blocks at zero tokens instead of silently
//     overflowing the queue; credits return (TRET / piggybacked RTC) when
//     the receiver drains the packet onward;
//   * 3-bit SEQ continuity stamping on transmit and checking on receive;
//   * the error-abort state machine: on a CRC or SEQ failure the receiver
//     drops into error-abort, discards the corrupted FLITs, and streams
//     StartRetry IRTRYs; the transmitter answers with a PRET, replays the
//     packet from its retry buffer (re-validating the stored CRC — the
//     legacy model charged a retransmission without ever re-checking it),
//     and the receiver clears the abort with ClearError IRTRYs.  The
//     exchange occupies the link for `link_retry_latency` cycles.
//
// The state for one link direction lives in `LinkProtoState`, owned by the
// RECEIVING device (the input-buffer side): the token pool, the expected
// SEQ, and a model of the upstream transmitter's retry buffer.  That single
// ownership is what keeps the layer deterministic under the parallel clock
// engine — stages 1-2 mutate a link's state only from its owning device's
// shard, and cross-device arrivals only from the serial flush at the stage
// barrier.
//
// Fault modes beyond the uniform per-packet ppm roll:
//   * burst errors (`link_error_burst_len`): one roll corrupts the next N
//     transmissions on the link;
//   * stuck link (`link_stuck_interval/window_cycles`): a periodic
//     retraining window during which the link backpressures — pure
//     arithmetic on the cycle counter, so an idle device stays
//     fast-forwardable through it;
//   * dead link (`link_fail_threshold`): after that many retry-exhaustion
//     escalations the link is marked dead and every queued or arriving
//     request is answered with a host-visible ERRSTAT=LINK_FAILED error,
//     mirroring the VAULT_FAILED degradation path.
//
// See docs/LINK_LAYER.md for the state machine diagram and knob table.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/device.hpp"

namespace hmcsim {

/// Outcome of an arrival attempt at a link's input buffer.
enum class LinkArrival : u8 {
  Accepted,    ///< packet entered the input buffer (tokens debited)
  TokenStall,  ///< insufficient tokens / retry-buffer space / retraining
  Corrupted,   ///< injected CRC/SEQ error; packet held for replay
  Dead,        ///< link is dead; caller answers LINK_FAILED
};

/// Resolved token pool size for one link (0 = auto from the queue depth).
[[nodiscard]] constexpr u32 resolved_link_tokens(const DeviceConfig& cfg) {
  return cfg.link_tokens != 0
             ? cfg.link_tokens
             : static_cast<u32>(cfg.xbar_depth) * 4;
}

/// True when the link sits inside a stuck-link retraining window at
/// `cycle`.  The window closes each interval: a fresh link starts trained
/// and first drops out after `interval - window` cycles.  Pure arithmetic —
/// no state — so idle devices fast-forward straight through the schedule.
[[nodiscard]] constexpr bool link_in_stuck_retrain(const DeviceConfig& cfg,
                                                   Cycle cycle) {
  return cfg.link_stuck_window_cycles != 0 &&
         cycle % cfg.link_stuck_interval_cycles >=
             cfg.link_stuck_interval_cycles - cfg.link_stuck_window_cycles;
}

class LinkLayer {
 public:
  /// Attempt to land `entry` in link `link`'s input buffer on `dev`.
  /// On Accepted the entry is SEQ/FRP-stamped (tail rewritten, CRC
  /// resealed), pushed, and consumed; tokens and retry-buffer FLITs are
  /// debited.  On Corrupted the entry moved into the link's replay slot
  /// (the transmitter's retry buffer) and the link entered error-abort.
  /// On TokenStall / Dead the entry is untouched and stays with the
  /// caller.  Never call when the protocol is off.
  static LinkArrival arrive(Device& dev, u32 link, RequestEntry& entry,
                            Cycle cycle);

  /// Per-cycle transmitter step for one link, run from the owning device's
  /// crossbar stage: when the error-abort retrain window has elapsed,
  /// replay the held packet from the retry buffer (re-validating its
  /// stored CRC), re-rolling the fault model per replay.  Returns true
  /// when a replay exhausted its budget and `failed` now holds the dead
  /// packet (the caller answers CRC_FAILURE / escalates the link).
  static bool step_replay(Device& dev, u32 link, Cycle cycle,
                          RequestEntry& failed);

  /// Receiver-side completion: a packet of `flits` FLITs stamped with
  /// retry pointer `frp` left link `link`'s input buffer onward (vault
  /// push, mode handling, error response, or a committed cross-device
  /// hop).  Advances RRP, deallocates retry-buffer FLITs and returns the
  /// tokens (TRET).
  static void complete(Device& dev, u32 link, u32 flits, u8 frp);

  /// True when the link can make no transmission progress this cycle
  /// (error-abort retrain pending or stuck-link retraining window).
  [[nodiscard]] static bool retraining(const Device& dev, u32 link,
                                       Cycle cycle);

  /// Link-layer quiescence for the fast-forward proof: no replay pending,
  /// no retrain armed beyond `cycle`, and every non-dead token pool back
  /// at its fixed point.
  [[nodiscard]] static bool quiescent(const Device& dev, Cycle cycle);

  /// Reset one link's protocol state to power-on (full token pool).
  static void reset(const DeviceConfig& cfg, LinkProtoState& st);
};

}  // namespace hmcsim
