// Host-side policies shared by the workload drivers and the MemorySystem
// facade.
#pragma once

#include "common/types.hpp"

namespace hmcsim {

/// Which host link a request is injected on.
enum class InjectionPolicy : u8 {
  RoundRobin,     ///< the paper's naive balancing (§VI.A)
  LocalityAware,  ///< inject on the link co-located with the target quad
};

}  // namespace hmcsim
