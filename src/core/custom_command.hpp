// Custom Memory Cube commands (CMC).
//
// The HMC command space leaves a number of 6-bit encodings reserved; real
// devices (and HMC-Sim's successor) expose them as vendor-defined commands
// — typically near-memory atomics that the host's processor-in-memory
// runtime needs (the paper's Goblin-Core64 context).  This extension lets
// an application register handlers for reserved encodings; registered
// commands flow through the full packet/crossbar/vault pipeline like
// built-ins:
//
//   * the request carries `request_flits` FLITs (operand payload),
//   * the vault performs a read-modify-write of `access_bytes` at the
//     target address under the usual bank timing and ordering rules,
//   * a response of `response_flits` FLITs returns (0 = posted), encoded
//     as WR_RS (1 FLIT) or RD_RS (with payload) so hosts decode it with
//     the standard machinery.
//
// Handlers are user code and are NOT serialized by checkpoints; re-register
// them before restore_checkpoint() when custom traffic may be in flight.
#pragma once

#include <array>
#include <functional>
#include <string>

#include "common/limits.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "packet/packet.hpp"

namespace hmcsim {

struct CustomCommandDef {
  std::string name;
  /// Total request packet length in FLITs (1..9); operand payload is
  /// (request_flits - 1) * 16 bytes.
  u32 request_flits{1};
  /// Total response length in FLITs; 0 makes the command posted.
  u32 response_flits{1};
  /// Memory footprint at the target address (16..128, multiple of 16).
  usize access_bytes{16};

  /// The memory operation.  `memory` holds access_bytes/8 words (read from
  /// the backing store; zeros when data modelling is off) and is written
  /// back after the call.  `operand` is the request payload.  `response`
  /// has (response_flits - 1) * 2 words to fill for RD_RS-style replies.
  using Handler = std::function<void(std::span<u64> memory,
                                     std::span<const u64> operand,
                                     std::span<u64> response)>;
  Handler handler;
};

/// True when `raw` is one of the encodings the HMC 1.0 command tables leave
/// reserved (usable for CMC registration).
[[nodiscard]] bool is_reserved_command(u8 raw);

/// The set of registered custom commands for one simulator object (devices
/// are homogeneous, so the set is shared by every cube).
class CustomCommandSet {
 public:
  /// Register `def` under the reserved encoding `raw_cmd`.  Fails with
  /// InvalidArgument for non-reserved encodings or inconsistent FLIT/size
  /// parameters, and InvalidConfig when the encoding is already taken.
  Status define(u8 raw_cmd, CustomCommandDef def);

  /// Lookup; nullptr when not registered.
  [[nodiscard]] const CustomCommandDef* find(u8 raw_cmd) const {
    return (raw_cmd < defs_.size() && defs_[raw_cmd].handler)
               ? &defs_[raw_cmd]
               : nullptr;
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] usize size() const { return count_; }

 private:
  std::array<CustomCommandDef, 64> defs_{};
  usize count_{0};
};

/// Build a CRC-sealed custom-command request packet.  The payload must hold
/// (request_flits - 1) * 2 words as declared at registration.
[[nodiscard]] Status build_custom_request(const CustomCommandSet& set,
                                          u8 raw_cmd, u32 cub, PhysAddr addr,
                                          Tag tag, u32 link,
                                          std::span<const u64> payload,
                                          PacketBuffer& out);

/// Decode/validate a custom-command request against its registered
/// definition (length consistency + CRC).
[[nodiscard]] Status decode_custom_request(const PacketBuffer& in,
                                           const CustomCommandDef& def,
                                           RequestFields& out);

}  // namespace hmcsim
