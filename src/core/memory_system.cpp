#include "core/memory_system.hpp"

#include <algorithm>

#include "common/limits.hpp"

namespace hmcsim {

MemorySystem::MemorySystem(const DeviceConfig& device, Options options)
    : owned_sim_(std::make_unique<Simulator>()),
      sim_(owned_sim_.get()),
      options_(options) {
  std::string diag;
  const Status s = owned_sim_->init_simple(device, &diag);
  if (!ok(s)) {
    // A facade cannot report construction errors through the C++ type
    // system without exceptions; fail loudly.
    std::fprintf(stderr, "MemorySystem: init failed: %s\n", diag.c_str());
    std::abort();
  }
  attach_ports();
}

MemorySystem::MemorySystem(Simulator& sim, Options options)
    : sim_(&sim), options_(options) {
  attach_ports();
}

void MemorySystem::attach_ports() {
  const u32 cap = std::min<u32>(options_.max_outstanding_per_port, 512);
  for (const auto& hp : sim_->topology().host_ports()) {
    Port port;
    port.dev = hp.dev;
    port.link = hp.link;
    for (u32 t = 0; t < cap; ++t) {
      port.free_tags.push_back(static_cast<u16>(t));
    }
    ports_.push_back(std::move(port));
  }
}

u64 MemorySystem::read(PhysAddr addr, usize bytes, Callback cb) {
  return submit(addr, bytes, /*is_write=*/false, {}, std::move(cb));
}

u64 MemorySystem::write(PhysAddr addr, usize bytes,
                        std::span<const u64> data, Callback cb) {
  if (data.size() != bytes / 8) return 0;
  return submit(addr, bytes, /*is_write=*/true, data, std::move(cb));
}

u64 MemorySystem::atomic(PhysAddr addr, Command op,
                         std::span<const u64, 2> operand, Callback cb) {
  if (!is_atomic(op)) return 0;
  if (addr % spec::kBlockBytes != 0 || addr + 16 > spec::kAddrMask + 1) {
    return 0;
  }
  const u64 id = next_id_++;
  Txn txn;
  txn.result.id = id;
  txn.result.addr = addr;
  txn.result.bytes = 16;
  txn.result.is_write = true;
  txn.result.issued_at = sim_->now();
  txn.cb = std::move(cb);
  txn.fragments_total = 1;

  Fragment frag;
  frag.txn = id;
  frag.addr = addr;
  frag.cmd = op;
  frag.payload.assign(operand.begin(), operand.end());
  pending_.push_back(std::move(frag));

  if (is_posted(op)) {
    // Fire-and-forget: the transaction completes at injection; callbacks
    // for posted atomics fire with completed_at == issue-drain time.
    txn.fragments_done = 0;
  }
  txns_.emplace(id, std::move(txn));
  ++live_count_;
  return id;
}

u64 MemorySystem::submit(PhysAddr addr, usize bytes, bool is_write,
                         std::span<const u64> data, Callback cb) {
  if (bytes == 0 || bytes % spec::kBlockBytes != 0 ||
      addr % spec::kBlockBytes != 0 || addr + bytes > spec::kAddrMask + 1) {
    return 0;
  }

  const u64 id = next_id_++;
  Txn txn;
  txn.result.id = id;
  txn.result.addr = addr;
  txn.result.bytes = bytes;
  txn.result.is_write = is_write;
  txn.result.issued_at = sim_->now();
  if (!is_write) txn.result.data.assign(bytes / 8, 0);
  txn.cb = std::move(cb);

  // Split into maximal HMC requests (up to 128 bytes each).
  usize offset = 0;
  while (offset < bytes) {
    const usize chunk = std::min<usize>(spec::kMaxPayloadBytes,
                                        bytes - offset);
    Fragment frag;
    frag.txn = id;
    frag.addr = addr + offset;
    const u32 chunk32 = static_cast<u32>(chunk);
    frag.cmd = is_write ? write_command_for(chunk32)
                        : read_command_for(chunk32);
    if (is_write) {
      frag.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(offset / 8),
                          data.begin() +
                              static_cast<std::ptrdiff_t>((offset + chunk) / 8));
    }
    pending_.push_back(std::move(frag));
    ++txn.fragments_total;
    offset += chunk;
  }

  txns_.emplace(id, std::move(txn));
  ++live_count_;
  return id;
}

MemorySystem::Port* MemorySystem::pick_port(PhysAddr addr) {
  if (ports_.empty()) return nullptr;
  if (options_.policy == InjectionPolicy::LocalityAware) {
    const u32 cub = std::min(options_.target_cub, sim_->num_devices() - 1);
    const Device& dev = sim_->device(cub);
    if (dev.address_map().in_range(addr)) {
      const u32 quad =
          dev.address_map().vault_of(addr) / spec::kVaultsPerQuad;
      for (auto& port : ports_) {
        if (port.link == quad && !port.free_tags.empty()) return &port;
      }
    }
  }
  for (usize n = 0; n < ports_.size(); ++n) {
    const usize i = (rr_next_ + n) % ports_.size();
    if (!ports_[i].free_tags.empty()) {
      rr_next_ = (i + 1) % ports_.size();
      return &ports_[i];
    }
  }
  return nullptr;
}

void MemorySystem::complete_fragment(u64 txn_id) {
  const auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  if (++txn.fragments_done < txn.fragments_total) return;
  txn.result.completed_at = sim_->now();
  MemTransaction result = std::move(txn.result);
  Callback cb = std::move(txn.cb);
  txns_.erase(it);
  --live_count_;
  if (cb) cb(result);
}

void MemorySystem::inject_pending() {
  usize i = 0;
  while (i < pending_.size()) {
    Fragment& frag = pending_[i];
    Port* port = pick_port(frag.addr);
    if (port == nullptr) return;  // no tags anywhere; try next tick

    // Posted fragments never respond, so they must not consume a tag; any
    // tag value rides the wire.
    const bool posted = is_posted(frag.cmd);
    const u16 tag = port->free_tags.back();
    PacketBuffer pkt;
    const Status bs = build_memrequest(options_.target_cub, frag.addr, tag,
                                       frag.cmd, port->link, frag.payload,
                                       pkt);
    if (!ok(bs)) {
      // Structurally impossible by construction; drop defensively.
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    const Status ss = sim_->send(port->dev, port->link, pkt);
    if (ss == Status::Stalled) {
      ++i;  // port full this cycle; leave the fragment queued
      continue;
    }
    if (!ok(ss)) {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    const u64 txn_id = frag.txn;
    if (!posted) {
      port->free_tags.pop_back();
      port->txn_of[tag] = txn_id;
      port->addr_of[tag] = frag.addr;
    }
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    if (posted) complete_fragment(txn_id);
  }
}

void MemorySystem::drain_responses() {
  PacketBuffer pkt;
  for (auto& port : ports_) {
    while (ok(sim_->recv(port.dev, port.link, pkt))) {
      ResponseFields f;
      if (!ok(decode_response(pkt, f))) continue;
      const u64 id = port.txn_of[f.tag];
      const PhysAddr frag_addr = port.addr_of[f.tag];
      port.free_tags.push_back(f.tag);

      const auto it = txns_.find(id);
      if (it == txns_.end()) continue;
      Txn& txn = it->second;
      if (f.cmd == Command::Error) {
        txn.result.failed = true;
      } else if (f.cmd == Command::ReadResponse) {
        const usize word_offset =
            static_cast<usize>((frag_addr - txn.result.addr) / 8);
        const auto payload = pkt.payload();
        for (usize w = 0;
             w < payload.size() && word_offset + w < txn.result.data.size();
             ++w) {
          txn.result.data[word_offset + w] = payload[w];
        }
      }
      complete_fragment(id);
    }
  }
}

void MemorySystem::tick() {
  drain_responses();
  inject_pending();
  sim_->clock();
}

bool MemorySystem::drain(Cycle max_cycles) {
  const Cycle deadline = sim_->now() + max_cycles;
  // Posted traffic completes at injection but is still in flight inside
  // the device, so drain until the simulator itself is quiescent too.
  while ((live_count_ > 0 || !pending_.empty() || !sim_->quiescent()) &&
         sim_->now() < deadline) {
    tick();
  }
  drain_responses();  // collect anything registered on the last cycle
  return live_count_ == 0 && pending_.empty() && sim_->quiescent();
}

}  // namespace hmcsim
