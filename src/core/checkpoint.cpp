// Checkpoint serialization for Simulator (see simulator.hpp for the API
// contract).  Versioned little-endian binary format:
//
//   magic "HMCSIMCK" | version u32
//   SimConfig fields
//   topology: devices u32, links u32, endpoints[devices*links]
//   clock u64
//   per device:
//     stats (fixed u64 array)
//     register snapshot (values + self-clear flags)
//     memory pages: count u64, then (index u64, 4096 raw bytes)*
//     link queues, vault queues (+ bank timing), mode staging queue
//
// Queue entries serialize the raw packet plus routing metadata; decoded
// request fields are re-derived on load so the packet remains the single
// source of truth.
#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <vector>

#include "core/simulator.hpp"

namespace hmcsim {
namespace {

constexpr char kMagic[8] = {'H', 'M', 'C', 'S', 'I', 'M', 'C', 'K'};
// Version 2 added per-entry PacketLifecycle stamps to both queue records.
// Version 3 added the RAS subsystem: new config knobs and stats counters,
// the fault-injection RNG state (previously lost across restore, so
// fault-injected runs diverged), the DRAM fault sidecar, scrubber/
// degradation state, and the forward-progress watchdog state.
// Version 4 sharded the DRAM fault RNG per vault (parallel clock engine):
// each vault block now carries its generator state.  sim_threads is
// deliberately NOT serialized — it is an execution knob, and checkpoints
// must be byte-identical for every thread count (the differential harness
// asserts exactly that); the same goes for fast_forward.
//
// Version 5 added the spec link-layer reliability protocol: the
// link_protocol config knobs, 13 link-layer stats counters, two RAS
// registers (RAS_LINK_RETRY / RAS_LINK_TOKEN), and per-link LinkProtoState
// (token pool, retry pointers, SEQ, error-abort machine including a
// possibly-held replay packet).
//
// Restore accepts every version back to 2 (the oldest format any released
// tool wrote).  Fields a version lacks keep their init() values: v2/v3
// restores keep the deterministic init-seeded per-vault DRAM RNGs, v2
// restores additionally keep default RAS config, zeroed RAS counters, the
// init fault RNG, and a quiet watchdog, and pre-v5 restores keep the link
// protocol off with quiescent (reset) per-link state.  Save always writes
// the current version.  Committed fixtures for every readable version live
// under tests/golden/checkpoints/ and are replayed by
// test_checkpoint_compat.
constexpr u32 kVersion = 5;
constexpr u32 kMinVersion = 2;
// Registers that existed in version 2 (enum prefix through Rvid); the RAS
// error-log block was appended in version 3 and the two link-layer RAS
// registers in version 5.
constexpr usize kV2RegCount = 43;
constexpr usize kV3RegCount = 49;
// DeviceStats fields in version 2 (through flow_packets); version 3
// appended the 8 RAS counters, version 5 the 13 link-layer counters.
constexpr usize kV2StatsCount = 25;
constexpr usize kV3StatsCount = 33;

// ---- primitive writers/readers --------------------------------------------

void put_bytes(std::ostream& os, const void* data, usize size) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(size));
}

bool get_bytes(std::istream& is, void* data, usize size) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  return static_cast<bool>(is);
}

void put_u64(std::ostream& os, u64 v) {
  u8 bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<u8>(v >> (8 * i));
  put_bytes(os, bytes, 8);
}

bool get_u64(std::istream& is, u64& v) {
  u8 bytes[8];
  if (!get_bytes(is, bytes, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(bytes[i]) << (8 * i);
  return true;
}

void put_u32(std::ostream& os, u32 v) { put_u64(os, v); }

bool get_u32(std::istream& is, u32& v) {
  u64 wide = 0;
  if (!get_u64(is, wide) || wide > 0xffffffffull) return false;
  v = static_cast<u32>(wide);
  return true;
}

void put_u8(std::ostream& os, u8 v) { put_u64(os, v); }

bool get_u8(std::istream& is, u8& v) {
  u64 wide = 0;
  if (!get_u64(is, wide) || wide > 0xffull) return false;
  v = static_cast<u8>(wide);
  return true;
}

// ---- aggregate writers/readers --------------------------------------------

void put_packet(std::ostream& os, const PacketBuffer& pkt) {
  put_u32(os, pkt.flits);
  for (usize i = 0; i < pkt.word_count(); ++i) put_u64(os, pkt.words[i]);
}

bool get_packet(std::istream& is, PacketBuffer& pkt) {
  u32 flits = 0;
  if (!get_u32(is, flits) || flits < spec::kMinPacketFlits ||
      flits > spec::kMaxPacketFlits) {
    return false;
  }
  pkt = PacketBuffer{};
  pkt.flits = flits;
  for (usize i = 0; i < pkt.word_count(); ++i) {
    if (!get_u64(is, pkt.words[i])) return false;
  }
  return true;
}

void put_queue_stats(std::ostream& os, const QueueStats& s) {
  put_u64(os, s.total_pushes);
  put_u64(os, s.total_pops);
  put_u64(os, s.rejected_full);
  put_u64(os, s.high_water);
}

bool get_queue_stats(std::istream& is, QueueStats& s) {
  u64 high_water = 0;
  if (!get_u64(is, s.total_pushes) || !get_u64(is, s.total_pops) ||
      !get_u64(is, s.rejected_full) || !get_u64(is, high_water)) {
    return false;
  }
  s.high_water = static_cast<usize>(high_water);
  return true;
}

void put_lifecycle(std::ostream& os, const PacketLifecycle& lc) {
  put_u64(os, lc.inject);
  put_u64(os, lc.vault_arrive);
  put_u64(os, lc.first_conflict);
  put_u64(os, lc.retire);
  put_u64(os, lc.rsp_register);
  put_u64(os, lc.drain);
  put_u32(os, lc.dev);
  put_u32(os, lc.vault);
  put_u32(os, lc.link);
  put_u32(os, lc.tag);
  put_u8(os, static_cast<u8>(lc.cmd));
}

bool get_lifecycle(std::istream& is, PacketLifecycle& lc) {
  u32 tag = 0;
  u8 cmd = 0;
  if (!get_u64(is, lc.inject) || !get_u64(is, lc.vault_arrive) ||
      !get_u64(is, lc.first_conflict) || !get_u64(is, lc.retire) ||
      !get_u64(is, lc.rsp_register) || !get_u64(is, lc.drain) ||
      !get_u32(is, lc.dev) || !get_u32(is, lc.vault) ||
      !get_u32(is, lc.link) || !get_u32(is, tag) || !get_u8(is, cmd)) {
    return false;
  }
  lc.tag = static_cast<Tag>(tag);
  lc.cmd = static_cast<Command>(cmd);
  return true;
}

void put_request_entry(std::ostream& os, const RequestEntry& e) {
  put_packet(os, e.pkt);
  put_u64(os, e.ready_cycle);
  put_u32(os, e.home_dev);
  put_u32(os, e.home_link);
  put_u32(os, e.ingress_link);
  put_u8(os, e.penalty_applied ? 1 : 0);
  put_u8(os, e.retries);
  put_lifecycle(os, e.life);
}

bool get_request_entry(std::istream& is, RequestEntry& e,
                       const CustomCommandSet& custom) {
  u8 penalty = 0;
  if (!get_packet(is, e.pkt) || !get_u64(is, e.ready_cycle) ||
      !get_u32(is, e.home_dev) || !get_u32(is, e.home_link) ||
      !get_u32(is, e.ingress_link) || !get_u8(is, penalty) ||
      !get_u8(is, e.retries) || !get_lifecycle(is, e.life)) {
    return false;
  }
  e.penalty_applied = penalty != 0;
  const u8 raw_cmd = static_cast<u8>(extract(e.pkt.header(), 0, 6));
  if (const CustomCommandDef* def = custom.find(raw_cmd)) {
    if (!ok(decode_custom_request(e.pkt, *def, e.req))) return false;
    e.custom = def;
  } else if (!ok(decode_request(e.pkt, e.req))) {
    return false;
  }
  return true;
}

void put_request_queue(std::ostream& os,
                       const BoundedQueue<RequestEntry>& q) {
  put_u64(os, q.size());
  for (const RequestEntry& e : q) put_request_entry(os, e);
  put_queue_stats(os, q.stats());
}

bool get_request_queue(std::istream& is, BoundedQueue<RequestEntry>& q,
                       const CustomCommandSet& custom) {
  u64 count = 0;
  if (!get_u64(is, count) || count > q.capacity()) return false;
  q.clear();
  for (u64 i = 0; i < count; ++i) {
    RequestEntry e;
    if (!get_request_entry(is, e, custom)) return false;
    if (!q.push(std::move(e))) return false;
  }
  QueueStats stats;
  if (!get_queue_stats(is, stats)) return false;
  q.restore_stats(stats);
  return true;
}

void put_response_queue(std::ostream& os,
                        const BoundedQueue<ResponseEntry>& q) {
  put_u64(os, q.size());
  for (const ResponseEntry& e : q) {
    put_packet(os, e.pkt);
    put_u64(os, e.ready_cycle);
    put_u32(os, e.home_dev);
    put_u32(os, e.home_link);
    put_lifecycle(os, e.life);
  }
  put_queue_stats(os, q.stats());
}

bool get_response_queue(std::istream& is, BoundedQueue<ResponseEntry>& q) {
  u64 count = 0;
  if (!get_u64(is, count) || count > q.capacity()) return false;
  q.clear();
  for (u64 i = 0; i < count; ++i) {
    ResponseEntry e;
    if (!get_packet(is, e.pkt) || !get_u64(is, e.ready_cycle) ||
        !get_u32(is, e.home_dev) || !get_u32(is, e.home_link) ||
        !get_lifecycle(is, e.life)) {
      return false;
    }
    ResponseFields f;
    if (!ok(decode_response(e.pkt, f))) return false;
    e.tag = f.tag;
    e.cmd = f.cmd;
    if (!q.push(std::move(e))) return false;
  }
  QueueStats stats;
  if (!get_queue_stats(is, stats)) return false;
  q.restore_stats(stats);
  return true;
}

void put_stats(std::ostream& os, const DeviceStats& s) {
  const u64 fields[] = {s.reads, s.writes, s.atomics, s.mode_ops,
                        s.custom_ops, s.bytes_read, s.bytes_written,
                        s.responses, s.error_responses, s.bank_conflicts,
                        s.xbar_rqst_stalls, s.xbar_rsp_stalls,
                        s.vault_rsp_stalls, s.latency_penalties,
                        s.route_hops, s.misroutes, s.link_errors, s.link_retries, s.refreshes, s.row_hits, s.row_misses, s.sends,
                        s.send_stalls,
                        s.recvs, s.flow_packets,
                        s.dram_sbes, s.dram_dbes, s.scrub_steps,
                        s.scrub_corrections, s.scrub_uncorrectables,
                        s.vault_failures, s.vault_remaps, s.degraded_drops,
                        s.link_crc_errors, s.link_seq_errors,
                        s.link_abort_entries, s.link_irtry_tx,
                        s.link_irtry_rx, s.link_pret_tx, s.link_tret_tx,
                        s.link_replayed_flits, s.link_token_stalls,
                        s.link_retrain_cycles, s.link_failures,
                        s.link_tokens_debited, s.link_tokens_returned};
  for (const u64 f : fields) put_u64(os, f);
}

bool get_stats(std::istream& is, DeviceStats& s, u32 version) {
  u64* fields[] = {&s.reads, &s.writes, &s.atomics, &s.mode_ops,
                   &s.custom_ops, &s.bytes_read, &s.bytes_written,
                   &s.responses, &s.error_responses, &s.bank_conflicts,
                   &s.xbar_rqst_stalls, &s.xbar_rsp_stalls,
                   &s.vault_rsp_stalls, &s.latency_penalties, &s.route_hops,
                   &s.misroutes, &s.link_errors, &s.link_retries, &s.refreshes, &s.row_hits,
                   &s.row_misses, &s.sends,
                   &s.send_stalls,
                   &s.recvs, &s.flow_packets,
                   &s.dram_sbes, &s.dram_dbes, &s.scrub_steps,
                   &s.scrub_corrections, &s.scrub_uncorrectables,
                   &s.vault_failures, &s.vault_remaps, &s.degraded_drops,
                   &s.link_crc_errors, &s.link_seq_errors,
                   &s.link_abort_entries, &s.link_irtry_tx, &s.link_irtry_rx,
                   &s.link_pret_tx, &s.link_tret_tx, &s.link_replayed_flits,
                   &s.link_token_stalls, &s.link_retrain_cycles,
                   &s.link_failures, &s.link_tokens_debited,
                   &s.link_tokens_returned};
  const usize count = version >= 5 ? std::size(fields)
                      : version >= 3 ? kV3StatsCount
                                     : kV2StatsCount;
  for (usize i = 0; i < count; ++i) {
    if (!get_u64(is, *fields[i])) return false;
  }
  return true;
}

void put_device_config(std::ostream& os, const DeviceConfig& c) {
  put_u32(os, c.num_links);
  put_u32(os, c.banks_per_vault);
  put_u32(os, c.drams_per_bank);
  put_u64(os, c.xbar_depth);
  put_u64(os, c.vault_depth);
  put_u64(os, c.capacity_bytes);
  put_u8(os, static_cast<u8>(c.map_mode));
  put_u64(os, c.max_block_bytes);
  put_u32(os, c.bank_busy_cycles);
  put_u32(os, c.xbar_flits_per_cycle);
  put_u32(os, c.vault_drain_limit);
  put_u32(os, c.nonlocal_penalty_cycles);
  put_u32(os, c.conflict_window);
  put_u8(os, static_cast<u8>(c.vault_schedule));
  put_u32(os, c.link_error_rate_ppm);
  put_u64(os, c.fault_seed);
  put_u32(os, c.link_retry_limit);
  put_u32(os, c.refresh_interval_cycles);
  put_u32(os, c.refresh_busy_cycles);
  put_u8(os, static_cast<u8>(c.row_policy));
  put_u32(os, c.row_hit_cycles);
  put_u32(os, c.row_miss_cycles);
  put_u8(os, c.model_data ? 1 : 0);
  put_u32(os, c.dram_sbe_rate_ppm);
  put_u32(os, c.dram_dbe_rate_ppm);
  put_u32(os, c.scrub_interval_cycles);
  put_u64(os, c.scrub_window_bytes);
  put_u32(os, c.vault_fail_threshold);
  put_u64(os, c.failed_vault_mask);
  put_u8(os, c.vault_remap ? 1 : 0);
  put_u32(os, c.watchdog_cycles);
  put_u8(os, c.link_protocol ? 1 : 0);
  put_u32(os, c.link_tokens);
  put_u32(os, c.link_retry_buffer_flits);
  put_u32(os, c.link_retry_latency);
  put_u32(os, c.link_error_burst_len);
  put_u32(os, c.link_stuck_interval_cycles);
  put_u32(os, c.link_stuck_window_cycles);
  put_u32(os, c.link_fail_threshold);
}

bool get_device_config(std::istream& is, DeviceConfig& c, u32 version) {
  u64 xbar = 0, vault = 0;
  u8 map_mode = 0, schedule = 0, model_data = 0, row_policy = 0;
  if (!get_u32(is, c.num_links) || !get_u32(is, c.banks_per_vault) ||
      !get_u32(is, c.drams_per_bank) || !get_u64(is, xbar) ||
      !get_u64(is, vault) || !get_u64(is, c.capacity_bytes) ||
      !get_u8(is, map_mode) || !get_u64(is, c.max_block_bytes) ||
      !get_u32(is, c.bank_busy_cycles) ||
      !get_u32(is, c.xbar_flits_per_cycle) ||
      !get_u32(is, c.vault_drain_limit) ||
      !get_u32(is, c.nonlocal_penalty_cycles) ||
      !get_u32(is, c.conflict_window) || !get_u8(is, schedule) ||
      !get_u32(is, c.link_error_rate_ppm) || !get_u64(is, c.fault_seed) ||
      !get_u32(is, c.link_retry_limit) ||
      !get_u32(is, c.refresh_interval_cycles) ||
      !get_u32(is, c.refresh_busy_cycles) || !get_u8(is, row_policy) ||
      !get_u32(is, c.row_hit_cycles) || !get_u32(is, c.row_miss_cycles) ||
      !get_u8(is, model_data)) {
    return false;
  }
  u8 vault_remap = 0;
  if (version >= 3) {
    // Version 2 predates RAS; its restores keep the (all-off) defaults.
    if (!get_u32(is, c.dram_sbe_rate_ppm) ||
        !get_u32(is, c.dram_dbe_rate_ppm) ||
        !get_u32(is, c.scrub_interval_cycles) ||
        !get_u64(is, c.scrub_window_bytes) ||
        !get_u32(is, c.vault_fail_threshold) ||
        !get_u64(is, c.failed_vault_mask) || !get_u8(is, vault_remap) ||
        !get_u32(is, c.watchdog_cycles)) {
      return false;
    }
    c.vault_remap = vault_remap != 0;
  }
  if (version >= 5) {
    // Pre-v5 checkpoints predate the link protocol; restores keep it off
    // with quiescent per-link state.
    u8 link_protocol = 0;
    if (!get_u8(is, link_protocol) || !get_u32(is, c.link_tokens) ||
        !get_u32(is, c.link_retry_buffer_flits) ||
        !get_u32(is, c.link_retry_latency) ||
        !get_u32(is, c.link_error_burst_len) ||
        !get_u32(is, c.link_stuck_interval_cycles) ||
        !get_u32(is, c.link_stuck_window_cycles) ||
        !get_u32(is, c.link_fail_threshold)) {
      return false;
    }
    c.link_protocol = link_protocol != 0;
  }
  c.xbar_depth = static_cast<usize>(xbar);
  c.vault_depth = static_cast<usize>(vault);
  c.map_mode = static_cast<AddrMapMode>(map_mode);
  c.vault_schedule = static_cast<VaultSchedule>(schedule);
  c.row_policy = static_cast<RowPolicy>(row_policy);
  c.model_data = model_data != 0;
  return true;
}

// Per-link retry/token protocol state (v5).  The held replay packet is only
// present while the error-abort machine is mid-recovery.
void put_link_proto(std::ostream& os, const LinkProtoState& st) {
  put_u64(os, static_cast<u64>(st.tokens));
  put_u64(os, st.tokens_debited);
  put_u64(os, st.tokens_returned);
  put_u32(os, st.retry_buf_flits);
  put_u8(os, st.tx_frp);
  put_u8(os, st.rx_rrp);
  put_u8(os, st.tx_seq);
  put_u8(os, st.rx_seq);
  put_u64(os, st.retrain_until);
  put_u32(os, st.burst_remaining);
  put_u32(os, st.fail_count);
  put_u8(os, st.dead ? 1 : 0);
  put_u8(os, st.replay_pending ? 1 : 0);
  if (st.replay_pending) put_request_entry(os, st.replay);
}

bool get_link_proto(std::istream& is, LinkProtoState& st,
                    const CustomCommandSet& custom) {
  u64 tokens = 0;
  u8 dead = 0, replay_pending = 0;
  if (!get_u64(is, tokens) || !get_u64(is, st.tokens_debited) ||
      !get_u64(is, st.tokens_returned) || !get_u32(is, st.retry_buf_flits) ||
      !get_u8(is, st.tx_frp) || !get_u8(is, st.rx_rrp) ||
      !get_u8(is, st.tx_seq) || !get_u8(is, st.rx_seq) ||
      !get_u64(is, st.retrain_until) || !get_u32(is, st.burst_remaining) ||
      !get_u32(is, st.fail_count) || !get_u8(is, dead) ||
      !get_u8(is, replay_pending)) {
    return false;
  }
  st.tokens = static_cast<i64>(tokens);
  st.dead = dead != 0;
  st.replay_pending = replay_pending != 0;
  if (st.replay_pending && !get_request_entry(is, st.replay, custom)) {
    return false;
  }
  return true;
}

}  // namespace

Status Simulator::save_checkpoint(std::ostream& os) const {
  if (!initialized()) return Status::InvalidArgument;
  put_bytes(os, kMagic, sizeof kMagic);
  put_u32(os, kVersion);

  put_u32(os, config_.num_devices);
  put_device_config(os, config_.device);

  // Topology endpoints.
  put_u32(os, topo_.num_devices());
  put_u32(os, topo_.links_per_device());
  for (u32 d = 0; d < topo_.num_devices(); ++d) {
    for (u32 l = 0; l < topo_.links_per_device(); ++l) {
      const LinkEndpoint& e = topo_.endpoint(CubeId{d}, LinkId{l});
      put_u8(os, static_cast<u8>(e.kind));
      put_u32(os, e.peer_dev);
      put_u32(os, e.peer_link);
    }
  }

  put_u64(os, cycle_);

  for (const auto& dev_ptr : devices_) {
    const Device& dev = *dev_ptr;
    put_stats(os, dev.stats);

    const RegisterFile::Snapshot regs = dev.regs.snapshot();
    for (const u64 v : regs.values) put_u64(os, v);
    for (const bool b : regs.pending_self_clear) put_u8(os, b ? 1 : 0);

    // Pages are emitted in ascending index order so that checkpoints are
    // deterministic (byte-identical for identical state) regardless of the
    // hash map's insertion history.
    std::vector<u64> page_indices;
    page_indices.reserve(dev.store.resident_pages());
    dev.store.for_each_page([&](u64 index, std::span<const u8>) {
      page_indices.push_back(index);
    });
    std::sort(page_indices.begin(), page_indices.end());
    put_u64(os, page_indices.size());
    std::vector<u8> page_bytes(SparseStore::kPageBytes);
    for (const u64 index : page_indices) {
      put_u64(os, index);
      (void)dev.store.read(index * SparseStore::kPageBytes, page_bytes);
      put_bytes(os, page_bytes.data(), page_bytes.size());
    }

    for (const LinkState& link : dev.links) {
      put_request_queue(os, link.rqst);
      put_response_queue(os, link.rsp);
      put_u64(os, link.rqst_flits_forwarded);
      put_u64(os, link.rsp_flits_forwarded);
      put_u64(os, static_cast<u64>(link.rqst_budget));
      put_u64(os, static_cast<u64>(link.rsp_budget));
      put_link_proto(os, link.proto);  // v5
    }
    for (const VaultState& vault : dev.vaults) {
      put_request_queue(os, vault.rqst);
      put_response_queue(os, vault.rsp);
      for (const Cycle busy : vault.bank_busy_until) put_u64(os, busy);
      for (const u64 row : vault.open_row) put_u64(os, row);
      put_u64(os, vault.dram_rng.state());  // v4
    }
    put_response_queue(os, dev.mode_rsp);

    // RAS state (v3): RNG, fault sidecar (ascending order by construction),
    // degradation, error log, scrub cursor.
    put_u64(os, dev.fault_rng.state());
    put_u64(os, dev.store.fault_count());
    dev.store.for_each_fault([&](u64 word, u64 data_flips, u8 check_flips) {
      put_u64(os, word);
      put_u64(os, data_flips);
      put_u8(os, check_flips);
    });
    put_u64(os, dev.ras.failed_vaults);
    for (const u32 count : dev.ras.vault_uncorrectable) put_u32(os, count);
    put_u64(os, dev.ras.scrub_cursor);
    put_u64(os, dev.ras.scrub_passes);
    put_u64(os, dev.ras.last_error_addr);
    put_u8(os, dev.ras.last_error_stat);
  }

  // Forward-progress watchdog (v3).  The report is rebuilt on restore.
  put_u8(os, watchdog_fired_ ? 1 : 0);
  put_u32(os, watchdog_stall_cycles_);
  put_u64(os, watchdog_fingerprint_);

  os.flush();
  return os ? Status::Ok : Status::Internal;
}

Status Simulator::restore_checkpoint(std::istream& is) {
  char magic[8];
  u32 version = 0;
  if (!get_bytes(is, magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof magic) != 0 ||
      !get_u32(is, version) || version < kMinVersion || version > kVersion) {
    return Status::MalformedPacket;
  }

  SimConfig config;
  if (!get_u32(is, config.num_devices) ||
      !get_device_config(is, config.device, version)) {
    return Status::MalformedPacket;
  }

  u32 topo_devices = 0, topo_links = 0;
  if (!get_u32(is, topo_devices) || !get_u32(is, topo_links) ||
      topo_devices != config.num_devices ||
      topo_links != config.device.num_links) {
    return Status::InvalidConfig;
  }
  Topology topo(topo_devices, topo_links);
  for (u32 d = 0; d < topo_devices; ++d) {
    for (u32 l = 0; l < topo_links; ++l) {
      u8 kind = 0;
      u32 peer_dev = 0, peer_link = 0;
      if (!get_u8(is, kind) || !get_u32(is, peer_dev) ||
          !get_u32(is, peer_link)) {
        return Status::MalformedPacket;
      }
      switch (static_cast<EndpointKind>(kind)) {
        case EndpointKind::Unconnected:
          break;
        case EndpointKind::Host:
          if (!ok(topo.connect_host(CubeId{d}, LinkId{l}))) {
            return Status::InvalidConfig;
          }
          break;
        case EndpointKind::Device:
          // connect() wires both directions; only apply the "forward" edge.
          if (d < peer_dev || (d == peer_dev && l < peer_link)) {
            if (!ok(topo.connect(CubeId{d}, LinkId{l}, CubeId{peer_dev},
                                 LinkId{peer_link}))) {
              return Status::InvalidConfig;
            }
          }
          break;
        default:
          return Status::MalformedPacket;
      }
    }
  }

  // sim_threads and fast_forward are not serialized (checkpoints are
  // agnostic to the execution strategy); a restored simulator keeps the
  // parallelism and skip setting it already had.  The observability knobs
  // (self_profile / telemetry_interval_cycles / flight_recorder_depth) are
  // likewise pure observation: checkpoint bytes are identical with them on
  // or off, and a restore keeps the current simulator's settings.
  if (initialized()) {
    config.device.sim_threads = config_.device.sim_threads;
    config.device.fast_forward = config_.device.fast_forward;
    config.device.self_profile = config_.device.self_profile;
    config.device.telemetry_interval_cycles =
        config_.device.telemetry_interval_cycles;
    config.device.flight_recorder_depth =
        config_.device.flight_recorder_depth;
  }
  const Status init_status = init(config, std::move(topo));
  if (!ok(init_status)) return init_status;

  if (!get_u64(is, cycle_)) return Status::MalformedPacket;

  for (auto& dev_ptr : devices_) {
    Device& dev = *dev_ptr;
    if (!get_stats(is, dev.stats, version)) return Status::MalformedPacket;

    // Older versions serialized only the register prefix that existed then;
    // the appended RAS error-log (v3) and link-layer (v5) registers keep
    // their init() values (they are live views recomputed from device state
    // anyway).
    RegisterFile::Snapshot regs = dev.regs.snapshot();
    const usize reg_count = version >= 5   ? regs.values.size()
                            : version >= 3 ? kV3RegCount
                                           : kV2RegCount;
    for (usize r = 0; r < reg_count; ++r) {
      if (!get_u64(is, regs.values[r])) return Status::MalformedPacket;
    }
    for (usize r = 0; r < reg_count; ++r) {
      u8 flag = 0;
      if (!get_u8(is, flag)) return Status::MalformedPacket;
      regs.pending_self_clear[r] = flag != 0;
    }
    dev.regs.restore(regs);

    u64 pages = 0;
    if (!get_u64(is, pages)) return Status::MalformedPacket;
    std::vector<u8> page(SparseStore::kPageBytes);
    for (u64 p = 0; p < pages; ++p) {
      u64 index = 0;
      if (!get_u64(is, index) || !get_bytes(is, page.data(), page.size()) ||
          !dev.store.restore_page(index, page)) {
        return Status::MalformedPacket;
      }
    }

    for (LinkState& link : dev.links) {
      if (!get_request_queue(is, link.rqst, custom_) ||
          !get_response_queue(is, link.rsp)) {
        return Status::MalformedPacket;
      }
      u64 rqst_budget = 0, rsp_budget = 0;
      if (!get_u64(is, link.rqst_flits_forwarded) ||
          !get_u64(is, link.rsp_flits_forwarded) ||
          !get_u64(is, rqst_budget) || !get_u64(is, rsp_budget)) {
        return Status::MalformedPacket;
      }
      link.rqst_budget = static_cast<i64>(rqst_budget);
      link.rsp_budget = static_cast<i64>(rsp_budget);
      if (version >= 5 && !get_link_proto(is, link.proto, custom_)) {
        return Status::MalformedPacket;
      }
      // Pre-v5 checkpoints keep the reset (quiescent) link protocol state.
    }
    for (VaultState& vault : dev.vaults) {
      if (!get_request_queue(is, vault.rqst, custom_) ||
          !get_response_queue(is, vault.rsp)) {
        return Status::MalformedPacket;
      }
      for (Cycle& busy : vault.bank_busy_until) {
        if (!get_u64(is, busy)) return Status::MalformedPacket;
      }
      for (u64& row : vault.open_row) {
        if (!get_u64(is, row)) return Status::MalformedPacket;
      }
      if (version >= 4) {
        u64 dram_rng_state = 0;
        if (!get_u64(is, dram_rng_state)) return Status::MalformedPacket;
        vault.dram_rng = SplitMix64(dram_rng_state);
      }
      // Pre-v4 checkpoints keep the deterministic init-seeded vault RNGs.
    }
    if (!get_response_queue(is, dev.mode_rsp)) return Status::MalformedPacket;

    if (version < 3) continue;  // no RAS block: init() state stands

    u64 rng_state = 0, fault_count = 0;
    if (!get_u64(is, rng_state) || !get_u64(is, fault_count)) {
      return Status::MalformedPacket;
    }
    dev.fault_rng = SplitMix64(rng_state);
    for (u64 f = 0; f < fault_count; ++f) {
      u64 word = 0, data_flips = 0;
      u8 check_flips = 0;
      if (!get_u64(is, word) || !get_u64(is, data_flips) ||
          !get_u8(is, check_flips) ||
          !dev.store.restore_fault(word, data_flips, check_flips)) {
        return Status::MalformedPacket;
      }
    }
    if (!get_u64(is, dev.ras.failed_vaults)) return Status::MalformedPacket;
    for (u32& count : dev.ras.vault_uncorrectable) {
      if (!get_u32(is, count)) return Status::MalformedPacket;
    }
    if (!get_u64(is, dev.ras.scrub_cursor) ||
        !get_u64(is, dev.ras.scrub_passes) ||
        !get_u64(is, dev.ras.last_error_addr) ||
        !get_u8(is, dev.ras.last_error_stat)) {
      return Status::MalformedPacket;
    }
  }

  if (version < 3) return Status::Ok;  // no watchdog tail

  u8 fired = 0;
  if (!get_u8(is, fired) || !get_u32(is, watchdog_stall_cycles_) ||
      !get_u64(is, watchdog_fingerprint_)) {
    return Status::MalformedPacket;
  }
  watchdog_fired_ = fired != 0;
  watchdog_report_ = watchdog_fired_ ? build_watchdog_report() : std::string{};

  return Status::Ok;
}

}  // namespace hmcsim
