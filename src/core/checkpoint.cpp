// Checkpoint serialization for Simulator (see simulator.hpp for the API
// contract and checkpoint.hpp for the robustness layer).  Versioned
// little-endian binary format; since v6 the body is section-framed:
//
//   magic "HMCSIMCK" | version u32
//   section*:  type u32 | payload_len u64 | payload crc32k u32 | payload
//   trailer magic "HMCSIMEN"
//
// Mandatory section order: CFG, TOPO, CLK, DEVC (once per device), WDOG,
// CHAO (mandatory since v8), an optional HOST blob, then the trailer.
// Section payloads:
//
//   CFG   SimConfig fields
//   TOPO  devices u32, links u32, endpoints[devices*links]
//   CLK   clock u64
//   DEVC  stats, register snapshot, memory pages (count u64, then
//         (index u64, 4096 raw bytes)*), link queues + protocol state,
//         vault queues (+ bank timing + rng + backend state frame), mode
//         staging queue, RAS block
//   WDOG  forward-progress watchdog state
//   CHAO  chaos campaign: plan CRC, cursor/progress counters, host-timeout
//         override, the restore baselines, then the compiled event list
//   HOST  opaque host-driver blob (workload/driver.hpp), passed through
//
// Queue entries serialize the raw packet plus routing metadata; decoded
// request fields are re-derived on load so the packet remains the single
// source of truth.
//
// Restore is hostile-input safe: every failure mode — bad magic, short
// read, CRC mismatch, impossible field value, unknown version — becomes a
// typed CheckpointError, and no input can make it allocate unboundedly
// (section lengths are capped and payloads are read in bounded chunks, so
// a forged length only ever costs the bytes actually present).
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/simulator.hpp"
#include "io/atomic_file.hpp"
#include "packet/crc32.hpp"

namespace hmcsim {
namespace {

constexpr char kMagic[8] = {'H', 'M', 'C', 'S', 'I', 'M', 'C', 'K'};
constexpr char kTrailer[8] = {'H', 'M', 'C', 'S', 'I', 'M', 'E', 'N'};
// Version 2 added per-entry PacketLifecycle stamps to both queue records.
// Version 3 added the RAS subsystem: new config knobs and stats counters,
// the fault-injection RNG state (previously lost across restore, so
// fault-injected runs diverged), the DRAM fault sidecar, scrubber/
// degradation state, and the forward-progress watchdog state.
// Version 4 sharded the DRAM fault RNG per vault (parallel clock engine):
// each vault block now carries its generator state.  sim_threads is
// deliberately NOT serialized — it is an execution knob, and checkpoints
// must be byte-identical for every thread count (the differential harness
// asserts exactly that); the same goes for fast_forward.
//
// Version 5 added the spec link-layer reliability protocol: the
// link_protocol config knobs, 13 link-layer stats counters, two RAS
// registers (RAS_LINK_RETRY / RAS_LINK_TOKEN), and per-link LinkProtoState
// (token pool, retry pointers, SEQ, error-abort machine including a
// possibly-held replay packet).
//
// Version 6 changed the container, not the payload encoding: the body is
// now split into sections, each framed with a type, byte length, and
// CRC-32K, and the file ends with a trailer magic.  Truncation and bit-rot
// are therefore *detected* instead of being misparsed, which is what makes
// crash-consistent auto-checkpointing (checkpoint.hpp) safe.  v6 also
// introduced the optional HOST section carrying opaque host-driver state.
//
// Version 7 added pluggable vault timing backends: the backend selection
// and parameter config knobs (device-wide kind, per-vault overrides, the
// generic_ddr and pcm_like timing parameters), one stats counter
// (pcm_write_throttle_stalls), and a per-vault backend-private state frame
// (kind + length + opaque blob) after the vault RNG.
//
// Version 8 added the CHAO section: a mid-campaign chaos
// checkpoint carries the compiled plan (so the resumed run needs nothing
// but the same plan file, verified by CRC), the event cursor and progress
// counters, any live host-timeout override, and the four fault-rate
// baselines `restore` events re-arm (the live config in CFG already holds
// the mid-campaign mutated rates, so the originals must travel
// separately).  The section is written even with no campaign armed (a
// fixed pristine payload): a v8 stream must never parse as v7 under a
// relabeled version word.  The chaos_invariants cadence knob is
// deliberately NOT serialized — it is an observability knob like
// telemetry_interval_cycles.
//
// Restore accepts every version back to 2 (the oldest format any released
// tool wrote).  Fields a version lacks keep their init() values: v2/v3
// restores keep the deterministic init-seeded per-vault DRAM RNGs, v2
// restores additionally keep default RAS config, zeroed RAS counters, the
// init fault RNG, and a quiet watchdog, pre-v5 restores keep the link
// protocol off with quiescent (reset) per-link state, and pre-v7 restores
// keep the default hmc_dram backend with power-on (reset) backend state.
// Save always writes the current version.  Committed fixtures for every
// readable version live under tests/golden/checkpoints/ and are replayed
// by test_checkpoint_compat.
constexpr u32 kVersion = 8;
constexpr u32 kMinVersion = 2;
// Registers that existed in version 2 (enum prefix through Rvid); the RAS
// error-log block was appended in version 3 and the two link-layer RAS
// registers in version 5.
constexpr usize kV2RegCount = 43;
constexpr usize kV3RegCount = 49;
// DeviceStats fields in version 2 (through flow_packets); version 3
// appended the 8 RAS counters, version 5 the 13 link-layer counters,
// version 7 the backend counter.
constexpr usize kV2StatsCount = 25;
constexpr usize kV3StatsCount = 33;
constexpr usize kV5StatsCount = 46;
// Per-vault backend override list cap (config_file caps indices below 64,
// so more entries can never validate) and backend-private blob cap: both
// bound what a forged CFG/DEVC payload can make restore allocate.
constexpr u64 kMaxVaultOverrides = 64;
constexpr u64 kMaxBackendBlobBytes = 4096;

constexpr u64 le_word(const char (&bytes)[8]) {
  u64 w = 0;
  for (int i = 0; i < 8; ++i) {
    w |= static_cast<u64>(static_cast<u8>(bytes[i])) << (8 * i);
  }
  return w;
}
constexpr u64 kTrailerWord = le_word(kTrailer);

// ---- primitive writers/readers --------------------------------------------

void put_bytes(std::ostream& os, const void* data, usize size) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(size));
}

bool get_bytes(std::istream& is, void* data, usize size) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  return static_cast<bool>(is);
}

void put_u64(std::ostream& os, u64 v) {
  u8 bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<u8>(v >> (8 * i));
  put_bytes(os, bytes, 8);
}

bool get_u64(std::istream& is, u64& v) {
  u8 bytes[8];
  if (!get_bytes(is, bytes, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(bytes[i]) << (8 * i);
  return true;
}

void put_u32(std::ostream& os, u32 v) { put_u64(os, v); }

bool get_u32(std::istream& is, u32& v) {
  u64 wide = 0;
  if (!get_u64(is, wide) || wide > 0xffffffffull) return false;
  v = static_cast<u32>(wide);
  return true;
}

void put_u8(std::ostream& os, u8 v) { put_u64(os, v); }

bool get_u8(std::istream& is, u8& v) {
  u64 wide = 0;
  if (!get_u64(is, wide) || wide > 0xffull) return false;
  v = static_cast<u8>(wide);
  return true;
}

u32 payload_crc(const std::string& payload) {
  return crc::crc32k(std::span<const u8>(
      reinterpret_cast<const u8*>(payload.data()), payload.size()));
}

// ---- aggregate writers/readers --------------------------------------------

void put_packet(std::ostream& os, const PacketBuffer& pkt) {
  put_u32(os, pkt.flits);
  for (usize i = 0; i < pkt.word_count(); ++i) put_u64(os, pkt.words[i]);
}

bool get_packet(std::istream& is, PacketBuffer& pkt) {
  u32 flits = 0;
  if (!get_u32(is, flits) || flits < spec::kMinPacketFlits ||
      flits > spec::kMaxPacketFlits) {
    return false;
  }
  pkt = PacketBuffer{};
  pkt.flits = flits;
  for (usize i = 0; i < pkt.word_count(); ++i) {
    if (!get_u64(is, pkt.words[i])) return false;
  }
  return true;
}

void put_queue_stats(std::ostream& os, const QueueStats& s) {
  put_u64(os, s.total_pushes);
  put_u64(os, s.total_pops);
  put_u64(os, s.rejected_full);
  put_u64(os, s.high_water);
}

bool get_queue_stats(std::istream& is, QueueStats& s) {
  u64 high_water = 0;
  if (!get_u64(is, s.total_pushes) || !get_u64(is, s.total_pops) ||
      !get_u64(is, s.rejected_full) || !get_u64(is, high_water)) {
    return false;
  }
  s.high_water = static_cast<usize>(high_water);
  return true;
}

void put_lifecycle(std::ostream& os, const PacketLifecycle& lc) {
  put_u64(os, lc.inject);
  put_u64(os, lc.vault_arrive);
  put_u64(os, lc.first_conflict);
  put_u64(os, lc.retire);
  put_u64(os, lc.rsp_register);
  put_u64(os, lc.drain);
  put_u32(os, lc.dev);
  put_u32(os, lc.vault);
  put_u32(os, lc.link);
  put_u32(os, lc.tag);
  put_u8(os, static_cast<u8>(lc.cmd));
}

bool get_lifecycle(std::istream& is, PacketLifecycle& lc) {
  u32 tag = 0;
  u8 cmd = 0;
  if (!get_u64(is, lc.inject) || !get_u64(is, lc.vault_arrive) ||
      !get_u64(is, lc.first_conflict) || !get_u64(is, lc.retire) ||
      !get_u64(is, lc.rsp_register) || !get_u64(is, lc.drain) ||
      !get_u32(is, lc.dev) || !get_u32(is, lc.vault) ||
      !get_u32(is, lc.link) || !get_u32(is, tag) || !get_u8(is, cmd)) {
    return false;
  }
  lc.tag = static_cast<Tag>(tag);
  lc.cmd = static_cast<Command>(cmd);
  return true;
}

void put_request_entry(std::ostream& os, const RequestEntry& e) {
  put_packet(os, e.pkt);
  put_u64(os, e.ready_cycle);
  put_u32(os, e.home_dev);
  put_u32(os, e.home_link);
  put_u32(os, e.ingress_link);
  put_u8(os, e.penalty_applied ? 1 : 0);
  put_u8(os, e.retries);
  put_lifecycle(os, e.life);
}

bool get_request_entry(std::istream& is, RequestEntry& e,
                       const CustomCommandSet& custom) {
  u8 penalty = 0;
  if (!get_packet(is, e.pkt) || !get_u64(is, e.ready_cycle) ||
      !get_u32(is, e.home_dev) || !get_u32(is, e.home_link) ||
      !get_u32(is, e.ingress_link) || !get_u8(is, penalty) ||
      !get_u8(is, e.retries) || !get_lifecycle(is, e.life)) {
    return false;
  }
  e.penalty_applied = penalty != 0;
  const u8 raw_cmd = static_cast<u8>(extract(e.pkt.header(), 0, 6));
  if (const CustomCommandDef* def = custom.find(raw_cmd)) {
    if (!ok(decode_custom_request(e.pkt, *def, e.req))) return false;
    e.custom = def;
  } else if (!ok(decode_request(e.pkt, e.req))) {
    return false;
  }
  return true;
}

void put_request_queue(std::ostream& os,
                       const BoundedQueue<RequestEntry>& q) {
  put_u64(os, q.size());
  for (const RequestEntry& e : q) put_request_entry(os, e);
  put_queue_stats(os, q.stats());
}

bool get_request_queue(std::istream& is, BoundedQueue<RequestEntry>& q,
                       const CustomCommandSet& custom) {
  u64 count = 0;
  if (!get_u64(is, count) || count > q.capacity()) return false;
  q.clear();
  for (u64 i = 0; i < count; ++i) {
    RequestEntry e;
    if (!get_request_entry(is, e, custom)) return false;
    if (!q.push(std::move(e))) return false;
  }
  QueueStats stats;
  if (!get_queue_stats(is, stats)) return false;
  q.restore_stats(stats);
  return true;
}

void put_response_queue(std::ostream& os,
                        const BoundedQueue<ResponseEntry>& q) {
  put_u64(os, q.size());
  for (const ResponseEntry& e : q) {
    put_packet(os, e.pkt);
    put_u64(os, e.ready_cycle);
    put_u32(os, e.home_dev);
    put_u32(os, e.home_link);
    put_lifecycle(os, e.life);
  }
  put_queue_stats(os, q.stats());
}

bool get_response_queue(std::istream& is, BoundedQueue<ResponseEntry>& q) {
  u64 count = 0;
  if (!get_u64(is, count) || count > q.capacity()) return false;
  q.clear();
  for (u64 i = 0; i < count; ++i) {
    ResponseEntry e;
    if (!get_packet(is, e.pkt) || !get_u64(is, e.ready_cycle) ||
        !get_u32(is, e.home_dev) || !get_u32(is, e.home_link) ||
        !get_lifecycle(is, e.life)) {
      return false;
    }
    ResponseFields f;
    if (!ok(decode_response(e.pkt, f))) return false;
    e.tag = f.tag;
    e.cmd = f.cmd;
    if (!q.push(std::move(e))) return false;
  }
  QueueStats stats;
  if (!get_queue_stats(is, stats)) return false;
  q.restore_stats(stats);
  return true;
}

void put_stats(std::ostream& os, const DeviceStats& s) {
  const u64 fields[] = {s.reads, s.writes, s.atomics, s.mode_ops,
                        s.custom_ops, s.bytes_read, s.bytes_written,
                        s.responses, s.error_responses, s.bank_conflicts,
                        s.xbar_rqst_stalls, s.xbar_rsp_stalls,
                        s.vault_rsp_stalls, s.latency_penalties,
                        s.route_hops, s.misroutes, s.link_errors, s.link_retries, s.refreshes, s.row_hits, s.row_misses, s.sends,
                        s.send_stalls,
                        s.recvs, s.flow_packets,
                        s.dram_sbes, s.dram_dbes, s.scrub_steps,
                        s.scrub_corrections, s.scrub_uncorrectables,
                        s.vault_failures, s.vault_remaps, s.degraded_drops,
                        s.link_crc_errors, s.link_seq_errors,
                        s.link_abort_entries, s.link_irtry_tx,
                        s.link_irtry_rx, s.link_pret_tx, s.link_tret_tx,
                        s.link_replayed_flits, s.link_token_stalls,
                        s.link_retrain_cycles, s.link_failures,
                        s.link_tokens_debited, s.link_tokens_returned,
                        s.pcm_write_throttle_stalls};
  for (const u64 f : fields) put_u64(os, f);
}

bool get_stats(std::istream& is, DeviceStats& s, u32 version) {
  u64* fields[] = {&s.reads, &s.writes, &s.atomics, &s.mode_ops,
                   &s.custom_ops, &s.bytes_read, &s.bytes_written,
                   &s.responses, &s.error_responses, &s.bank_conflicts,
                   &s.xbar_rqst_stalls, &s.xbar_rsp_stalls,
                   &s.vault_rsp_stalls, &s.latency_penalties, &s.route_hops,
                   &s.misroutes, &s.link_errors, &s.link_retries, &s.refreshes, &s.row_hits,
                   &s.row_misses, &s.sends,
                   &s.send_stalls,
                   &s.recvs, &s.flow_packets,
                   &s.dram_sbes, &s.dram_dbes, &s.scrub_steps,
                   &s.scrub_corrections, &s.scrub_uncorrectables,
                   &s.vault_failures, &s.vault_remaps, &s.degraded_drops,
                   &s.link_crc_errors, &s.link_seq_errors,
                   &s.link_abort_entries, &s.link_irtry_tx, &s.link_irtry_rx,
                   &s.link_pret_tx, &s.link_tret_tx, &s.link_replayed_flits,
                   &s.link_token_stalls, &s.link_retrain_cycles,
                   &s.link_failures, &s.link_tokens_debited,
                   &s.link_tokens_returned, &s.pcm_write_throttle_stalls};
  const usize count = version >= 7   ? std::size(fields)
                      : version >= 5 ? kV5StatsCount
                      : version >= 3 ? kV3StatsCount
                                     : kV2StatsCount;
  for (usize i = 0; i < count; ++i) {
    if (!get_u64(is, *fields[i])) return false;
  }
  return true;
}

void put_device_config(std::ostream& os, const DeviceConfig& c) {
  put_u32(os, c.num_links);
  put_u32(os, c.banks_per_vault);
  put_u32(os, c.drams_per_bank);
  put_u64(os, c.xbar_depth);
  put_u64(os, c.vault_depth);
  put_u64(os, c.capacity_bytes);
  put_u8(os, static_cast<u8>(c.map_mode));
  put_u64(os, c.max_block_bytes);
  put_u32(os, c.bank_busy_cycles);
  put_u32(os, c.xbar_flits_per_cycle);
  put_u32(os, c.vault_drain_limit);
  put_u32(os, c.nonlocal_penalty_cycles);
  put_u32(os, c.conflict_window);
  put_u8(os, static_cast<u8>(c.vault_schedule));
  put_u32(os, c.link_error_rate_ppm);
  put_u64(os, c.fault_seed);
  put_u32(os, c.link_retry_limit);
  put_u32(os, c.refresh_interval_cycles);
  put_u32(os, c.refresh_busy_cycles);
  put_u8(os, static_cast<u8>(c.row_policy));
  put_u32(os, c.row_hit_cycles);
  put_u32(os, c.row_miss_cycles);
  put_u8(os, c.model_data ? 1 : 0);
  put_u32(os, c.dram_sbe_rate_ppm);
  put_u32(os, c.dram_dbe_rate_ppm);
  put_u32(os, c.scrub_interval_cycles);
  put_u64(os, c.scrub_window_bytes);
  put_u32(os, c.vault_fail_threshold);
  put_u64(os, c.failed_vault_mask);
  put_u8(os, c.vault_remap ? 1 : 0);
  put_u32(os, c.watchdog_cycles);
  put_u8(os, c.link_protocol ? 1 : 0);
  put_u32(os, c.link_tokens);
  put_u32(os, c.link_retry_buffer_flits);
  put_u32(os, c.link_retry_latency);
  put_u32(os, c.link_error_burst_len);
  put_u32(os, c.link_stuck_interval_cycles);
  put_u32(os, c.link_stuck_window_cycles);
  put_u32(os, c.link_fail_threshold);
  // v7: timing-backend selection and parameters.
  put_u8(os, static_cast<u8>(c.timing_backend));
  put_u32(os, c.ddr_tcl);
  put_u32(os, c.ddr_trcd);
  put_u32(os, c.ddr_trp);
  put_u32(os, c.ddr_tras);
  put_u32(os, c.pcm_read_cycles);
  put_u32(os, c.pcm_write_cycles);
  put_u32(os, c.pcm_write_gap_cycles);
  put_u64(os, c.vault_backends.size());
  for (const auto& [vault, backend] : c.vault_backends) {
    put_u32(os, vault);
    put_u8(os, static_cast<u8>(backend));
  }
}

bool get_timing_backend(std::istream& is, TimingBackend& out) {
  u8 kind = 0;
  if (!get_u8(is, kind) || kind > static_cast<u8>(TimingBackend::PcmLike)) {
    return false;
  }
  out = static_cast<TimingBackend>(kind);
  return true;
}

bool get_device_config(std::istream& is, DeviceConfig& c, u32 version) {
  u64 xbar = 0, vault = 0;
  u8 map_mode = 0, schedule = 0, model_data = 0, row_policy = 0;
  if (!get_u32(is, c.num_links) || !get_u32(is, c.banks_per_vault) ||
      !get_u32(is, c.drams_per_bank) || !get_u64(is, xbar) ||
      !get_u64(is, vault) || !get_u64(is, c.capacity_bytes) ||
      !get_u8(is, map_mode) || !get_u64(is, c.max_block_bytes) ||
      !get_u32(is, c.bank_busy_cycles) ||
      !get_u32(is, c.xbar_flits_per_cycle) ||
      !get_u32(is, c.vault_drain_limit) ||
      !get_u32(is, c.nonlocal_penalty_cycles) ||
      !get_u32(is, c.conflict_window) || !get_u8(is, schedule) ||
      !get_u32(is, c.link_error_rate_ppm) || !get_u64(is, c.fault_seed) ||
      !get_u32(is, c.link_retry_limit) ||
      !get_u32(is, c.refresh_interval_cycles) ||
      !get_u32(is, c.refresh_busy_cycles) || !get_u8(is, row_policy) ||
      !get_u32(is, c.row_hit_cycles) || !get_u32(is, c.row_miss_cycles) ||
      !get_u8(is, model_data)) {
    return false;
  }
  u8 vault_remap = 0;
  if (version >= 3) {
    // Version 2 predates RAS; its restores keep the (all-off) defaults.
    if (!get_u32(is, c.dram_sbe_rate_ppm) ||
        !get_u32(is, c.dram_dbe_rate_ppm) ||
        !get_u32(is, c.scrub_interval_cycles) ||
        !get_u64(is, c.scrub_window_bytes) ||
        !get_u32(is, c.vault_fail_threshold) ||
        !get_u64(is, c.failed_vault_mask) || !get_u8(is, vault_remap) ||
        !get_u32(is, c.watchdog_cycles)) {
      return false;
    }
    c.vault_remap = vault_remap != 0;
  }
  if (version >= 5) {
    // Pre-v5 checkpoints predate the link protocol; restores keep it off
    // with quiescent per-link state.
    u8 link_protocol = 0;
    if (!get_u8(is, link_protocol) || !get_u32(is, c.link_tokens) ||
        !get_u32(is, c.link_retry_buffer_flits) ||
        !get_u32(is, c.link_retry_latency) ||
        !get_u32(is, c.link_error_burst_len) ||
        !get_u32(is, c.link_stuck_interval_cycles) ||
        !get_u32(is, c.link_stuck_window_cycles) ||
        !get_u32(is, c.link_fail_threshold)) {
      return false;
    }
    c.link_protocol = link_protocol != 0;
  }
  if (version >= 7) {
    // Pre-v7 checkpoints predate pluggable backends; restores keep the
    // default hmc_dram selection and parameter defaults.
    u64 overrides = 0;
    if (!get_timing_backend(is, c.timing_backend) ||
        !get_u32(is, c.ddr_tcl) || !get_u32(is, c.ddr_trcd) ||
        !get_u32(is, c.ddr_trp) || !get_u32(is, c.ddr_tras) ||
        !get_u32(is, c.pcm_read_cycles) || !get_u32(is, c.pcm_write_cycles) ||
        !get_u32(is, c.pcm_write_gap_cycles) || !get_u64(is, overrides) ||
        overrides > kMaxVaultOverrides) {
      return false;
    }
    c.vault_backends.clear();
    c.vault_backends.reserve(static_cast<usize>(overrides));
    for (u64 i = 0; i < overrides; ++i) {
      u32 vault = 0;
      TimingBackend backend;
      if (!get_u32(is, vault) || !get_timing_backend(is, backend)) {
        return false;
      }
      c.vault_backends.emplace_back(vault, backend);
    }
  }
  c.xbar_depth = static_cast<usize>(xbar);
  c.vault_depth = static_cast<usize>(vault);
  c.map_mode = static_cast<AddrMapMode>(map_mode);
  c.vault_schedule = static_cast<VaultSchedule>(schedule);
  c.row_policy = static_cast<RowPolicy>(row_policy);
  c.model_data = model_data != 0;
  return true;
}

// Per-link retry/token protocol state (v5).  The held replay packet is only
// present while the error-abort machine is mid-recovery.
void put_link_proto(std::ostream& os, const LinkProtoState& st) {
  put_u64(os, static_cast<u64>(st.tokens));
  put_u64(os, st.tokens_debited);
  put_u64(os, st.tokens_returned);
  put_u32(os, st.retry_buf_flits);
  put_u8(os, st.tx_frp);
  put_u8(os, st.rx_rrp);
  put_u8(os, st.tx_seq);
  put_u8(os, st.rx_seq);
  put_u64(os, st.retrain_until);
  put_u32(os, st.burst_remaining);
  put_u32(os, st.fail_count);
  put_u8(os, st.dead ? 1 : 0);
  put_u8(os, st.replay_pending ? 1 : 0);
  if (st.replay_pending) put_request_entry(os, st.replay);
}

bool get_link_proto(std::istream& is, LinkProtoState& st,
                    const CustomCommandSet& custom) {
  u64 tokens = 0;
  u8 dead = 0, replay_pending = 0;
  if (!get_u64(is, tokens) || !get_u64(is, st.tokens_debited) ||
      !get_u64(is, st.tokens_returned) || !get_u32(is, st.retry_buf_flits) ||
      !get_u8(is, st.tx_frp) || !get_u8(is, st.rx_rrp) ||
      !get_u8(is, st.tx_seq) || !get_u8(is, st.rx_seq) ||
      !get_u64(is, st.retrain_until) || !get_u32(is, st.burst_remaining) ||
      !get_u32(is, st.fail_count) || !get_u8(is, dead) ||
      !get_u8(is, replay_pending)) {
    return false;
  }
  st.tokens = static_cast<i64>(tokens);
  st.dead = dead != 0;
  st.replay_pending = replay_pending != 0;
  if (st.replay_pending && !get_request_entry(is, st.replay, custom)) {
    return false;
  }
  return true;
}

// ---- whole-device block (shared by the legacy stream and DEVC sections) ----

void put_device_block(std::ostream& os, const Device& dev) {
  put_stats(os, dev.stats);

  const RegisterFile::Snapshot regs = dev.regs.snapshot();
  for (const u64 v : regs.values) put_u64(os, v);
  for (const bool b : regs.pending_self_clear) put_u8(os, b ? 1 : 0);

  // Pages are emitted in ascending index order so that checkpoints are
  // deterministic (byte-identical for identical state) regardless of the
  // hash map's insertion history.
  std::vector<u64> page_indices;
  page_indices.reserve(dev.store.resident_pages());
  dev.store.for_each_page([&](u64 index, std::span<const u8>) {
    page_indices.push_back(index);
  });
  std::sort(page_indices.begin(), page_indices.end());
  put_u64(os, page_indices.size());
  std::vector<u8> page_bytes(SparseStore::kPageBytes);
  for (const u64 index : page_indices) {
    put_u64(os, index);
    (void)dev.store.read(index * SparseStore::kPageBytes, page_bytes);
    put_bytes(os, page_bytes.data(), page_bytes.size());
  }

  for (const LinkState& link : dev.links) {
    put_request_queue(os, link.rqst);
    put_response_queue(os, link.rsp);
    put_u64(os, link.rqst_flits_forwarded);
    put_u64(os, link.rsp_flits_forwarded);
    put_u64(os, static_cast<u64>(link.rqst_budget));
    put_u64(os, static_cast<u64>(link.rsp_budget));
    put_link_proto(os, link.proto);  // v5
  }
  for (const VaultState& vault : dev.vaults) {
    put_request_queue(os, vault.rqst);
    put_response_queue(os, vault.rsp);
    for (const Cycle busy : vault.bank_busy_until) put_u64(os, busy);
    for (const u64 row : vault.open_row) put_u64(os, row);
    put_u64(os, vault.dram_rng.state());  // v4
    // v7: backend-private state frame (kind, length, opaque blob).  The
    // shared bank arrays above stay in the container's own encoding.
    put_u8(os, static_cast<u8>(vault.timing->kind()));
    std::ostringstream blob;
    vault.timing->serialize(blob);
    const std::string bytes = blob.str();
    put_u64(os, bytes.size());
    put_bytes(os, bytes.data(), bytes.size());
  }
  put_response_queue(os, dev.mode_rsp);

  // RAS state (v3): RNG, fault sidecar (ascending order by construction),
  // degradation, error log, scrub cursor.
  put_u64(os, dev.fault_rng.state());
  put_u64(os, dev.store.fault_count());
  dev.store.for_each_fault([&](u64 word, u64 data_flips, u8 check_flips) {
    put_u64(os, word);
    put_u64(os, data_flips);
    put_u8(os, check_flips);
  });
  put_u64(os, dev.ras.failed_vaults);
  for (const u32 count : dev.ras.vault_uncorrectable) put_u32(os, count);
  put_u64(os, dev.ras.scrub_cursor);
  put_u64(os, dev.ras.scrub_passes);
  put_u64(os, dev.ras.last_error_addr);
  put_u8(os, dev.ras.last_error_stat);
}

/// Mirror of put_device_block with version gating.  On failure `*what`
/// names the sub-record that could not be decoded.
bool get_device_block(std::istream& is, Device& dev, u32 version,
                      const CustomCommandSet& custom, const char** what) {
  *what = "device stats";
  if (!get_stats(is, dev.stats, version)) return false;

  // Older versions serialized only the register prefix that existed then;
  // the appended RAS error-log (v3) and link-layer (v5) registers keep
  // their init() values (they are live views recomputed from device state
  // anyway).
  *what = "register snapshot";
  RegisterFile::Snapshot regs = dev.regs.snapshot();
  const usize reg_count = version >= 5   ? regs.values.size()
                          : version >= 3 ? kV3RegCount
                                         : kV2RegCount;
  for (usize r = 0; r < reg_count; ++r) {
    if (!get_u64(is, regs.values[r])) return false;
  }
  for (usize r = 0; r < reg_count; ++r) {
    u8 flag = 0;
    if (!get_u8(is, flag)) return false;
    regs.pending_self_clear[r] = flag != 0;
  }
  dev.regs.restore(regs);

  *what = "memory page";
  u64 pages = 0;
  if (!get_u64(is, pages)) return false;
  std::vector<u8> page(SparseStore::kPageBytes);
  for (u64 p = 0; p < pages; ++p) {
    u64 index = 0;
    if (!get_u64(is, index) || !get_bytes(is, page.data(), page.size()) ||
        !dev.store.restore_page(index, page)) {
      return false;
    }
  }

  for (LinkState& link : dev.links) {
    *what = "link queue";
    if (!get_request_queue(is, link.rqst, custom) ||
        !get_response_queue(is, link.rsp)) {
      return false;
    }
    *what = "link budgets";
    u64 rqst_budget = 0, rsp_budget = 0;
    if (!get_u64(is, link.rqst_flits_forwarded) ||
        !get_u64(is, link.rsp_flits_forwarded) ||
        !get_u64(is, rqst_budget) || !get_u64(is, rsp_budget)) {
      return false;
    }
    link.rqst_budget = static_cast<i64>(rqst_budget);
    link.rsp_budget = static_cast<i64>(rsp_budget);
    *what = "link protocol state";
    if (version >= 5 && !get_link_proto(is, link.proto, custom)) {
      return false;
    }
    // Pre-v5 checkpoints keep the reset (quiescent) link protocol state.
  }
  for (VaultState& vault : dev.vaults) {
    *what = "vault queue";
    if (!get_request_queue(is, vault.rqst, custom) ||
        !get_response_queue(is, vault.rsp)) {
      return false;
    }
    *what = "bank timing";
    for (Cycle& busy : vault.bank_busy_until) {
      if (!get_u64(is, busy)) return false;
    }
    for (u64& row : vault.open_row) {
      if (!get_u64(is, row)) return false;
    }
    if (version >= 4) {
      *what = "vault rng";
      u64 dram_rng_state = 0;
      if (!get_u64(is, dram_rng_state)) return false;
      vault.dram_rng = SplitMix64(dram_rng_state);
    }
    // Pre-v4 checkpoints keep the deterministic init-seeded vault RNGs.
    if (version >= 7) {
      // The backend was already constructed from the restored config, so
      // the frame's kind must agree; the blob is the backend's own state.
      *what = "vault backend state";
      u8 kind = 0;
      u64 blob_len = 0;
      if (!get_u8(is, kind) ||
          kind != static_cast<u8>(vault.timing->kind()) ||
          !get_u64(is, blob_len) || blob_len > kMaxBackendBlobBytes ||
          !vault.timing->restore(is, blob_len)) {
        return false;
      }
    }
    // Pre-v7 checkpoints keep the power-on (reset) backend state.
  }
  *what = "mode response queue";
  if (!get_response_queue(is, dev.mode_rsp)) return false;

  if (version < 3) return true;  // no RAS block: init() state stands

  *what = "fault sidecar";
  u64 rng_state = 0, fault_count = 0;
  if (!get_u64(is, rng_state) || !get_u64(is, fault_count)) return false;
  dev.fault_rng = SplitMix64(rng_state);
  for (u64 f = 0; f < fault_count; ++f) {
    u64 word = 0, data_flips = 0;
    u8 check_flips = 0;
    if (!get_u64(is, word) || !get_u64(is, data_flips) ||
        !get_u8(is, check_flips) ||
        !dev.store.restore_fault(word, data_flips, check_flips)) {
      return false;
    }
  }
  *what = "ras counters";
  if (!get_u64(is, dev.ras.failed_vaults)) return false;
  for (u32& count : dev.ras.vault_uncorrectable) {
    if (!get_u32(is, count)) return false;
  }
  if (!get_u64(is, dev.ras.scrub_cursor) ||
      !get_u64(is, dev.ras.scrub_passes) ||
      !get_u64(is, dev.ras.last_error_addr) ||
      !get_u8(is, dev.ras.last_error_stat)) {
    return false;
  }
  return true;
}

}  // namespace

// ---- error rendering -------------------------------------------------------

const char* to_string(CheckpointErrorCode code) {
  switch (code) {
    case CheckpointErrorCode::None: return "ok";
    case CheckpointErrorCode::IoError: return "io error";
    case CheckpointErrorCode::BadMagic: return "bad magic";
    case CheckpointErrorCode::UnsupportedVersion:
      return "unsupported version";
    case CheckpointErrorCode::ShortRead: return "short read";
    case CheckpointErrorCode::BadSectionType: return "bad section type";
    case CheckpointErrorCode::SectionTooLarge: return "section too large";
    case CheckpointErrorCode::SectionCrcMismatch:
      return "section crc mismatch";
    case CheckpointErrorCode::TrailerMissing: return "trailer missing";
    case CheckpointErrorCode::BadFieldValue: return "bad field value";
    case CheckpointErrorCode::BadHostState: return "bad host state";
    case CheckpointErrorCode::WriteFailed: return "write failed";
  }
  return "unknown error";
}

std::string CheckpointError::message() const {
  if (code == CheckpointErrorCode::None) return "ok";
  std::string m = to_string(code);
  if (section != 0) {
    m += " in section ";
    m += ckpt::section_name(section);
  }
  if (offset != 0) m += " at byte " + std::to_string(offset);
  if (!detail.empty()) m += ": " + detail;
  return m;
}

namespace ckpt {

const char* section_name(u32 type) {
  switch (type) {
    case kSectionConfig: return "CFG";
    case kSectionTopology: return "TOPO";
    case kSectionClock: return "CLK";
    case kSectionDevice: return "DEVC";
    case kSectionWatchdog: return "WDOG";
    case kSectionChaos: return "CHAO";
    case kSectionHost: return "HOST";
    default: return "?";
  }
}

}  // namespace ckpt

// ---- save ------------------------------------------------------------------

Status Simulator::save_checkpoint(std::ostream& os) const {
  return save_checkpoint(os, nullptr, {});
}

Status Simulator::save_checkpoint(std::ostream& os, CheckpointError* err,
                                  std::string_view host_blob) const {
  if (err != nullptr) *err = CheckpointError{};
  if (!initialized()) {
    if (err != nullptr) {
      err->code = CheckpointErrorCode::BadFieldValue;
      err->detail = "simulator not initialized";
    }
    return Status::InvalidArgument;
  }

  put_bytes(os, kMagic, sizeof kMagic);
  put_u32(os, kVersion);

  std::ostringstream sec;
  const auto emit = [&](u32 type) {
    const std::string payload = sec.str();
    put_u32(os, type);
    put_u64(os, payload.size());
    put_u32(os, payload_crc(payload));
    put_bytes(os, payload.data(), payload.size());
    sec.str(std::string{});
    sec.clear();
  };

  put_u32(sec, config_.num_devices);
  put_device_config(sec, config_.device);
  emit(ckpt::kSectionConfig);

  put_u32(sec, topo_.num_devices());
  put_u32(sec, topo_.links_per_device());
  for (u32 d = 0; d < topo_.num_devices(); ++d) {
    for (u32 l = 0; l < topo_.links_per_device(); ++l) {
      const LinkEndpoint& e = topo_.endpoint(CubeId{d}, LinkId{l});
      put_u8(sec, static_cast<u8>(e.kind));
      put_u32(sec, e.peer_dev);
      put_u32(sec, e.peer_link);
    }
  }
  emit(ckpt::kSectionTopology);

  put_u64(sec, cycle_);
  emit(ckpt::kSectionClock);

  for (const auto& dev_ptr : devices_) {
    put_device_block(sec, *dev_ptr);
    emit(ckpt::kSectionDevice);
  }

  // Forward-progress watchdog (v3).  The report is rebuilt on restore.
  put_u8(sec, watchdog_fired_ ? 1 : 0);
  put_u32(sec, watchdog_stall_cycles_);
  put_u64(sec, watchdog_fingerprint_);
  emit(ckpt::kSectionWatchdog);

  // Chaos campaign (v8).  The section is self-contained (plan bytes travel
  // with the cursor) so a resume needs no side files, and the CRC lets a
  // re-passed --chaos-plan be verified against the checkpointed campaign.
  // With no campaign armed the payload is a fixed pristine form (empty-plan
  // CRC, zero counters) rather than being omitted: every v8 stream then
  // carries bytes a v7 parser cannot consume, so relabeling the version
  // word can never turn one valid stream into another.
  if (chaos_ != nullptr && !chaos_->plan().empty()) {
    const ChaosPlan& plan = chaos_->plan();
    put_u64(sec, chaos_->plan_crc());
    put_u64(sec, chaos_->cursor());
    put_u64(sec, chaos_->events_applied());
    put_u64(sec, chaos_->invariant_checks());
    put_u8(sec, chaos_->host_timeout_active() ? 1 : 0);
    put_u64(sec, chaos_->host_timeout_value());
    const DeviceConfig& base = chaos_->baseline();
    put_u32(sec, base.link_error_rate_ppm);
    put_u32(sec, base.link_error_burst_len);
    put_u32(sec, base.dram_sbe_rate_ppm);
    put_u32(sec, base.dram_dbe_rate_ppm);
    put_u64(sec, plan.events.size());
    for (const ChaosEvent& ev : plan.events) {
      put_u64(sec, ev.cycle);
      put_u8(sec, static_cast<u8>(ev.action));
      put_u64(sec, ev.a);
      put_u64(sec, ev.b);
      put_u8(sec, ev.restore ? 1 : 0);
      put_u32(sec, ev.line);
    }
  } else {
    put_u64(sec, chaos_plan_crc(ChaosPlan{}));
    put_u64(sec, 0);  // cursor
    put_u64(sec, 0);  // events applied
    put_u64(sec, 0);  // invariant checks
    put_u8(sec, 0);   // host-timeout inactive
    put_u64(sec, 0);  // host-timeout value
    put_u32(sec, 0);  // baseline rates (unused without a campaign)
    put_u32(sec, 0);
    put_u32(sec, 0);
    put_u32(sec, 0);
    put_u64(sec, 0);  // event count
  }
  emit(ckpt::kSectionChaos);

  if (!host_blob.empty()) {
    put_bytes(sec, host_blob.data(), host_blob.size());
    emit(ckpt::kSectionHost);
  }

  put_bytes(os, kTrailer, sizeof kTrailer);

  os.flush();
  if (!os) {
    if (err != nullptr) {
      err->code = CheckpointErrorCode::WriteFailed;
      err->detail = "checkpoint stream write failed";
    }
    return Status::Internal;
  }
  return Status::Ok;
}

// ---- restore ---------------------------------------------------------------

Status Simulator::restore_checkpoint(std::istream& is) {
  return restore_checkpoint(is, nullptr, nullptr);
}

Status Simulator::restore_checkpoint(std::istream& is, CheckpointError* err,
                                     std::string* host_blob_out) {
  if (err != nullptr) *err = CheckpointError{};
  if (host_blob_out != nullptr) host_blob_out->clear();

  const auto preamble_fail = [&](CheckpointErrorCode code, u64 offset,
                                 std::string detail) {
    if (err != nullptr) {
      err->code = code;
      err->offset = offset;
      err->section = 0;
      err->detail = std::move(detail);
    }
    return Status::MalformedPacket;
  };

  char magic[8];
  if (!get_bytes(is, magic, sizeof magic)) {
    return preamble_fail(CheckpointErrorCode::ShortRead, 0,
                         "stream ended inside magic");
  }
  if (std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return preamble_fail(CheckpointErrorCode::BadMagic, 0,
                         "not a checkpoint stream");
  }
  u64 version_word = 0;
  if (!get_u64(is, version_word)) {
    return preamble_fail(CheckpointErrorCode::ShortRead, 8,
                         "stream ended inside version");
  }
  if (version_word < kMinVersion || version_word > kVersion) {
    return preamble_fail(CheckpointErrorCode::UnsupportedVersion, 8,
                         "version " + std::to_string(version_word) +
                             " outside [" + std::to_string(kMinVersion) +
                             ", " + std::to_string(kVersion) + "]");
  }
  const u32 version = static_cast<u32>(version_word);
  if (version >= 6) {
    return restore_checkpoint_v6_(is, version, err, host_blob_out);
  }
  return restore_checkpoint_legacy_(is, version, err);
}

// Pre-v6 checkpoints are one continuous unframed stream; damage is only
// detectable as a decode failure.  Errors are therefore coarser than the
// v6 path: no section attribution and no byte offsets.
Status Simulator::restore_checkpoint_legacy_(std::istream& is, u32 version,
                                             CheckpointError* err) {
  const auto fail = [&](Status st, CheckpointErrorCode code,
                        std::string detail) {
    if (err != nullptr) {
      err->code = code;
      err->offset = 0;
      err->section = 0;
      err->detail = std::move(detail);
    }
    return st;
  };

  SimConfig config;
  if (!get_u32(is, config.num_devices) ||
      !get_device_config(is, config.device, version)) {
    return fail(Status::MalformedPacket, CheckpointErrorCode::ShortRead,
                "config block");
  }
  // Validate before sizing anything from file-supplied values: a hostile
  // device count must not reach the Topology/Device allocators.
  std::string diag;
  if (!ok(config.validate(&diag))) {
    return fail(Status::InvalidConfig, CheckpointErrorCode::BadFieldValue,
                diag);
  }

  u32 topo_devices = 0, topo_links = 0;
  if (!get_u32(is, topo_devices) || !get_u32(is, topo_links)) {
    return fail(Status::MalformedPacket, CheckpointErrorCode::ShortRead,
                "topology header");
  }
  if (topo_devices != config.num_devices ||
      topo_links != config.device.num_links) {
    return fail(Status::InvalidConfig, CheckpointErrorCode::BadFieldValue,
                "topology shape disagrees with config");
  }
  Topology topo(topo_devices, topo_links);
  for (u32 d = 0; d < topo_devices; ++d) {
    for (u32 l = 0; l < topo_links; ++l) {
      u8 kind = 0;
      u32 peer_dev = 0, peer_link = 0;
      if (!get_u8(is, kind) || !get_u32(is, peer_dev) ||
          !get_u32(is, peer_link)) {
        return fail(Status::MalformedPacket, CheckpointErrorCode::ShortRead,
                    "topology endpoint");
      }
      switch (static_cast<EndpointKind>(kind)) {
        case EndpointKind::Unconnected:
          break;
        case EndpointKind::Host:
          if (!ok(topo.connect_host(CubeId{d}, LinkId{l}))) {
            return fail(Status::InvalidConfig,
                        CheckpointErrorCode::BadFieldValue,
                        "host endpoint rejected");
          }
          break;
        case EndpointKind::Device:
          // connect() wires both directions; only apply the "forward" edge.
          if (d < peer_dev || (d == peer_dev && l < peer_link)) {
            if (!ok(topo.connect(CubeId{d}, LinkId{l}, CubeId{peer_dev},
                                 LinkId{peer_link}))) {
              return fail(Status::InvalidConfig,
                          CheckpointErrorCode::BadFieldValue,
                          "device endpoint rejected");
            }
          }
          break;
        default:
          return fail(Status::MalformedPacket,
                      CheckpointErrorCode::BadFieldValue,
                      "unknown endpoint kind");
      }
    }
  }

  // sim_threads and fast_forward are not serialized (checkpoints are
  // agnostic to the execution strategy); a restored simulator keeps the
  // parallelism and skip setting it already had.  The observability knobs
  // (self_profile / telemetry_interval_cycles / flight_recorder_depth) are
  // likewise pure observation: checkpoint bytes are identical with them on
  // or off, and a restore keeps the current simulator's settings.  The
  // checkpoint_interval_cycles knob follows the same rule: how often a run
  // snapshots itself must not leak into the snapshot, and neither does the
  // chaos_invariants check cadence (the campaign itself travels in CHAO).
  if (initialized()) {
    config.device.sim_threads = config_.device.sim_threads;
    config.device.fast_forward = config_.device.fast_forward;
    config.device.self_profile = config_.device.self_profile;
    config.device.telemetry_interval_cycles =
        config_.device.telemetry_interval_cycles;
    config.device.flight_recorder_depth =
        config_.device.flight_recorder_depth;
    config.device.checkpoint_interval_cycles =
        config_.device.checkpoint_interval_cycles;
    config.device.chaos_invariants = config_.device.chaos_invariants;
  }
  const Status init_status = init(config, std::move(topo));
  if (!ok(init_status)) {
    return fail(init_status, CheckpointErrorCode::BadFieldValue,
                "init rejected restored configuration");
  }

  if (!get_u64(is, cycle_)) {
    return fail(Status::MalformedPacket, CheckpointErrorCode::ShortRead,
                "clock");
  }

  for (auto& dev_ptr : devices_) {
    const char* what = "device block";
    if (!get_device_block(is, *dev_ptr, version, custom_, &what)) {
      return fail(Status::MalformedPacket, CheckpointErrorCode::ShortRead,
                  what);
    }
  }

  if (version < 3) return Status::Ok;  // no watchdog tail

  u8 fired = 0;
  if (!get_u8(is, fired) || !get_u32(is, watchdog_stall_cycles_) ||
      !get_u64(is, watchdog_fingerprint_)) {
    return fail(Status::MalformedPacket, CheckpointErrorCode::ShortRead,
                "watchdog tail");
  }
  watchdog_fired_ = fired != 0;
  watchdog_report_ = watchdog_fired_ ? build_watchdog_report() : std::string{};

  return Status::Ok;
}

Status Simulator::restore_checkpoint_v6_(std::istream& is, u32 version,
                                         CheckpointError* err,
                                         std::string* host_blob_out) {
  // Byte offset of the next unread stream byte (magic + version consumed).
  u64 offset = 16;
  u32 cur_section = 0;
  const auto fail = [&](CheckpointErrorCode code, u64 at,
                        std::string detail) {
    if (err != nullptr) {
      err->code = code;
      err->offset = at;
      err->section = cur_section;
      err->detail = std::move(detail);
    }
    return code == CheckpointErrorCode::BadFieldValue
               ? Status::InvalidConfig
               : Status::MalformedPacket;
  };

  std::string payload;
  u64 payload_off = 0;
  Status frame_status = Status::Ok;

  // Read length + CRC + payload for the section whose type word has
  // already been consumed.  Payload bytes are pulled in bounded chunks so
  // a forged length never drives a huge up-front allocation — memory grows
  // only with bytes actually present in the stream.
  const auto read_frame_body = [&]() -> bool {
    u64 len = 0;
    if (!get_u64(is, len)) {
      frame_status = fail(CheckpointErrorCode::ShortRead, offset,
                          "stream ended inside section length");
      return false;
    }
    if (len > ckpt::kMaxSectionBytes) {
      frame_status =
          fail(CheckpointErrorCode::SectionTooLarge, offset,
               std::to_string(len) + " bytes exceeds section cap");
      return false;
    }
    offset += 8;
    u64 crc_word = 0;
    if (!get_u64(is, crc_word)) {
      frame_status = fail(CheckpointErrorCode::ShortRead, offset,
                          "stream ended inside section crc");
      return false;
    }
    if (crc_word > 0xffffffffull) {
      frame_status = fail(CheckpointErrorCode::BadFieldValue, offset,
                          "crc word out of range");
      return false;
    }
    offset += 8;
    payload_off = offset;
    payload.clear();
    u64 got = 0;
    while (got < len) {
      constexpr u64 kChunk = u64{1} << 20;
      const usize chunk = static_cast<usize>(std::min(len - got, kChunk));
      const usize old_size = payload.size();
      payload.resize(old_size + chunk);
      is.read(payload.data() + old_size,
              static_cast<std::streamsize>(chunk));
      const u64 n = static_cast<u64>(is.gcount());
      if (n < chunk) {
        frame_status = fail(CheckpointErrorCode::ShortRead,
                            payload_off + got + n,
                            "stream ended inside section payload");
        return false;
      }
      got += n;
    }
    offset += len;
    if (payload_crc(payload) != static_cast<u32>(crc_word)) {
      frame_status = fail(CheckpointErrorCode::SectionCrcMismatch,
                          payload_off, "payload fails its crc32k");
      return false;
    }
    return true;
  };

  // Read one mandatory section: type word, then frame body.
  const auto read_section = [&](u32 expected) -> bool {
    u64 type_word = 0;
    if (!get_u64(is, type_word)) {
      cur_section = expected;
      frame_status = fail(CheckpointErrorCode::ShortRead, offset,
                          "stream ended at section header");
      return false;
    }
    if (type_word != expected) {
      cur_section = expected;
      const char* found =
          type_word <= 0xffffffffull
              ? ckpt::section_name(static_cast<u32>(type_word))
              : "?";
      frame_status = fail(CheckpointErrorCode::BadSectionType, offset,
                          std::string("expected ") +
                              ckpt::section_name(expected) + ", found " +
                              found);
      return false;
    }
    cur_section = expected;
    offset += 8;
    return read_frame_body();
  };

  std::istringstream ps;
  const auto open_payload = [&]() {
    ps.clear();
    ps.str(payload);
  };
  // A failure while decoding a CRC-verified payload is never stream
  // truncation of the container; distinguish a payload that ran out of
  // bytes (ShortRead) from a decoded value that failed validation.
  const auto payload_fail = [&](const char* what) {
    const auto pos = ps.tellg();
    const u64 at =
        payload_off + (pos >= 0 ? static_cast<u64>(pos) : payload.size());
    const CheckpointErrorCode code = ps.eof()
                                         ? CheckpointErrorCode::ShortRead
                                         : CheckpointErrorCode::BadFieldValue;
    return fail(code, at, what);
  };
  const auto payload_drained = [&]() {
    return ps.peek() == std::istringstream::traits_type::eof();
  };

  // CFG ----------------------------------------------------------------
  if (!read_section(ckpt::kSectionConfig)) return frame_status;
  open_payload();
  SimConfig config;
  if (!get_u32(ps, config.num_devices) ||
      !get_device_config(ps, config.device, version)) {
    return payload_fail("config block");
  }
  if (!payload_drained()) return payload_fail("trailing bytes after config");
  // Validate before sizing anything from file-supplied values: a hostile
  // device count must not reach the Topology/Device allocators.
  std::string diag;
  if (!ok(config.validate(&diag))) {
    return fail(CheckpointErrorCode::BadFieldValue, payload_off, diag);
  }

  // TOPO ---------------------------------------------------------------
  if (!read_section(ckpt::kSectionTopology)) return frame_status;
  open_payload();
  u32 topo_devices = 0, topo_links = 0;
  if (!get_u32(ps, topo_devices) || !get_u32(ps, topo_links)) {
    return payload_fail("topology header");
  }
  if (topo_devices != config.num_devices ||
      topo_links != config.device.num_links) {
    return fail(CheckpointErrorCode::BadFieldValue, payload_off,
                "topology shape disagrees with config");
  }
  Topology topo(topo_devices, topo_links);
  for (u32 d = 0; d < topo_devices; ++d) {
    for (u32 l = 0; l < topo_links; ++l) {
      u8 kind = 0;
      u32 peer_dev = 0, peer_link = 0;
      if (!get_u8(ps, kind) || !get_u32(ps, peer_dev) ||
          !get_u32(ps, peer_link)) {
        return payload_fail("topology endpoint");
      }
      switch (static_cast<EndpointKind>(kind)) {
        case EndpointKind::Unconnected:
          break;
        case EndpointKind::Host:
          if (!ok(topo.connect_host(CubeId{d}, LinkId{l}))) {
            return fail(CheckpointErrorCode::BadFieldValue, payload_off,
                        "host endpoint rejected");
          }
          break;
        case EndpointKind::Device:
          // connect() wires both directions; only apply the "forward" edge.
          if (d < peer_dev || (d == peer_dev && l < peer_link)) {
            if (!ok(topo.connect(CubeId{d}, LinkId{l}, CubeId{peer_dev},
                                 LinkId{peer_link}))) {
              return fail(CheckpointErrorCode::BadFieldValue, payload_off,
                          "device endpoint rejected");
            }
          }
          break;
        default:
          return fail(CheckpointErrorCode::BadFieldValue, payload_off,
                      "unknown endpoint kind");
      }
    }
  }
  if (!payload_drained()) {
    return payload_fail("trailing bytes after topology");
  }

  // Execution/observability knobs are never serialized; a restored
  // simulator keeps its own (see restore_checkpoint_legacy_ for the full
  // rationale).
  if (initialized()) {
    config.device.sim_threads = config_.device.sim_threads;
    config.device.fast_forward = config_.device.fast_forward;
    config.device.self_profile = config_.device.self_profile;
    config.device.telemetry_interval_cycles =
        config_.device.telemetry_interval_cycles;
    config.device.flight_recorder_depth =
        config_.device.flight_recorder_depth;
    config.device.checkpoint_interval_cycles =
        config_.device.checkpoint_interval_cycles;
    config.device.chaos_invariants = config_.device.chaos_invariants;
  }
  const Status init_status = init(config, std::move(topo));
  if (!ok(init_status)) {
    (void)fail(CheckpointErrorCode::BadFieldValue, payload_off,
               "init rejected restored configuration");
    return init_status;
  }

  // CLK ----------------------------------------------------------------
  if (!read_section(ckpt::kSectionClock)) return frame_status;
  open_payload();
  if (!get_u64(ps, cycle_)) return payload_fail("clock");
  if (!payload_drained()) return payload_fail("trailing bytes after clock");

  // DEVC × num_devices -------------------------------------------------
  for (auto& dev_ptr : devices_) {
    if (!read_section(ckpt::kSectionDevice)) return frame_status;
    open_payload();
    const char* what = "device block";
    if (!get_device_block(ps, *dev_ptr, version, custom_, &what)) {
      return payload_fail(what);
    }
    if (!payload_drained()) {
      return payload_fail("trailing bytes after device block");
    }
  }

  // WDOG ---------------------------------------------------------------
  if (!read_section(ckpt::kSectionWatchdog)) return frame_status;
  open_payload();
  u8 fired = 0;
  if (!get_u8(ps, fired) || !get_u32(ps, watchdog_stall_cycles_) ||
      !get_u64(ps, watchdog_fingerprint_)) {
    return payload_fail("watchdog tail");
  }
  if (!payload_drained()) {
    return payload_fail("trailing bytes after watchdog");
  }
  watchdog_fired_ = fired != 0;
  watchdog_report_ = watchdog_fired_ ? build_watchdog_report() : std::string{};

  // CHAO (mandatory in v8), optional HOST, then trailer -----------------
  cur_section = 0;
  u64 tail_word = 0;
  if (!get_u64(is, tail_word)) {
    return fail(CheckpointErrorCode::TrailerMissing, offset,
                "stream ended before trailer");
  }
  if (version >= 8 && tail_word != ckpt::kSectionChaos) {
    return fail(CheckpointErrorCode::BadSectionType, offset,
                "v8 stream is missing its chaos section");
  }
  // Version-gated both ways: a pre-v8 stream carrying a CHAO section is a
  // forgery (e.g. a relabeled version word), not a legal layout.
  if (version >= 8 && tail_word == ckpt::kSectionChaos) {
    cur_section = ckpt::kSectionChaos;
    offset += 8;
    if (!read_frame_body()) return frame_status;
    open_payload();
    u64 stored_crc = 0, cursor = 0, events_applied = 0, invariant_checks = 0;
    u8 ht_active = 0;
    u64 ht_value = 0;
    u32 base_ppm = 0, base_burst = 0, base_sbe = 0, base_dbe = 0;
    u64 event_count = 0;
    if (!get_u64(ps, stored_crc) || !get_u64(ps, cursor) ||
        !get_u64(ps, events_applied) || !get_u64(ps, invariant_checks) ||
        !get_u8(ps, ht_active) || !get_u64(ps, ht_value) ||
        !get_u32(ps, base_ppm) || !get_u32(ps, base_burst) ||
        !get_u32(ps, base_sbe) || !get_u32(ps, base_dbe) ||
        !get_u64(ps, event_count)) {
      return payload_fail("chaos campaign header");
    }
    if (event_count > kMaxChaosEvents) {
      return payload_fail("chaos event count out of range");
    }
    if (cursor > event_count) {
      return payload_fail("chaos cursor runs past the plan");
    }
    ChaosPlan plan;
    plan.events.reserve(static_cast<usize>(event_count));
    for (u64 i = 0; i < event_count; ++i) {
      ChaosEvent ev;
      u8 action = 0, restore_flag = 0;
      if (!get_u64(ps, ev.cycle) || !get_u8(ps, action) ||
          !get_u64(ps, ev.a) || !get_u64(ps, ev.b) ||
          !get_u8(ps, restore_flag) || !get_u32(ps, ev.line)) {
        return payload_fail("chaos event record");
      }
      if (action > static_cast<u8>(ChaosAction::BreakInvariant)) {
        return payload_fail("unknown chaos action");
      }
      if (restore_flag > 1) {
        return payload_fail("chaos restore flag out of range");
      }
      ev.action = static_cast<ChaosAction>(action);
      ev.restore = restore_flag != 0;
      plan.events.push_back(ev);
    }
    if (!payload_drained()) {
      return payload_fail("trailing bytes after chaos campaign");
    }
    if (chaos_plan_crc(plan) != stored_crc) {
      return payload_fail("chaos plan fails its own crc");
    }
    if (event_count == 0) {
      // No campaign was armed at save time.  The payload is a fixed
      // pristine form; anything else is bit damage, not a legal state.
      if (events_applied != 0 || invariant_checks != 0 || ht_active != 0 ||
          ht_value != 0 || base_ppm != 0 || base_burst != 0 ||
          base_sbe != 0 || base_dbe != 0) {
        return payload_fail("empty chaos campaign is not pristine");
      }
      // No engine to rebuild: the checker (if chaos_invariants is set on
      // the live config) was already instantiated by init.
    } else {
      // Rebuild the engine self-contained.  arm() re-validates structural
      // indices against the restored configuration, and the baselines are
      // overwritten afterwards because the live config restored from CFG
      // already carries mid-campaign mutated rates.
      chaos_ = std::make_unique<ChaosEngine>(config_.device);
      chaos_->restore_baseline(base_ppm, base_burst, base_sbe, base_dbe);
      std::string chaos_diag;
      if (!ok(chaos_->arm(std::move(plan), config_.device, &chaos_diag))) {
        return fail(CheckpointErrorCode::BadFieldValue, payload_off,
                    "chaos plan rejected: " + chaos_diag);
      }
      if (!ok(chaos_->restore_progress(cursor, events_applied,
                                       invariant_checks, ht_active != 0,
                                       ht_value))) {
        return payload_fail("chaos campaign progress rejected");
      }
    }
    cur_section = 0;
    if (!get_u64(is, tail_word)) {
      return fail(CheckpointErrorCode::TrailerMissing, offset,
                  "stream ended before trailer");
    }
  }
  if (tail_word == ckpt::kSectionHost) {
    cur_section = ckpt::kSectionHost;
    offset += 8;
    if (!read_frame_body()) return frame_status;
    if (host_blob_out != nullptr) *host_blob_out = payload;
    cur_section = 0;
    if (!get_u64(is, tail_word)) {
      return fail(CheckpointErrorCode::TrailerMissing, offset,
                  "stream ended before trailer");
    }
  }
  if (tail_word != kTrailerWord) {
    return fail(CheckpointErrorCode::TrailerMissing, offset,
                "expected trailer magic");
  }

  return Status::Ok;
}

// ---- file entry points -----------------------------------------------------

Status Simulator::save_checkpoint_file(const std::string& path,
                                       CheckpointError* err,
                                       std::string_view host_blob) const {
  std::ostringstream os;
  const Status st = save_checkpoint(os, err, host_blob);
  if (!ok(st)) return st;
  const std::string bytes = os.str();
  std::string io_detail;
  if (!io::atomic_write_file(path, bytes.data(), bytes.size(),
                             &io_detail)) {
    if (err != nullptr) {
      *err = CheckpointError{};
      err->code = CheckpointErrorCode::WriteFailed;
      err->detail = path + ": " + io_detail;
    }
    return Status::Internal;
  }
  return Status::Ok;
}

Status Simulator::restore_checkpoint_file(const std::string& path,
                                          CheckpointError* err,
                                          std::string* host_blob_out) {
  std::string bytes;
  std::string io_detail;
  // The cap only bounds what we buffer; restore itself enforces the
  // per-section limits.
  if (!io::read_file(path, bytes, u64{1} << 33, &io_detail)) {
    if (err != nullptr) {
      *err = CheckpointError{};
      err->code = CheckpointErrorCode::IoError;
      err->detail = path + ": " + io_detail;
    }
    return Status::Internal;
  }
  std::istringstream is(std::move(bytes));
  return restore_checkpoint(is, err, host_blob_out);
}

// ---- generation directories ------------------------------------------------

std::string checkpoint_generation_path(const std::string& dir, u64 gen) {
  char name[32];
  std::snprintf(name, sizeof name, "ckpt-%012llu.bin",
                static_cast<unsigned long long>(gen));
  return dir + "/" + name;
}

std::vector<CheckpointGeneration> list_checkpoint_generations(
    const std::string& dir) {
  std::vector<CheckpointGeneration> gens;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return gens;
  for (const auto& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "ckpt-";
    constexpr std::string_view kSuffix = ".bin";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (digits.empty() || digits.size() > 20 ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long gen = std::strtoull(digits.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') continue;
    gens.push_back(CheckpointGeneration{static_cast<u64>(gen),
                                        entry.path().string()});
  }
  std::sort(gens.begin(), gens.end(),
            [](const CheckpointGeneration& a, const CheckpointGeneration& b) {
              return a.gen < b.gen;
            });
  return gens;
}

void prune_checkpoint_generations(const std::string& dir, u32 keep) {
  if (keep == 0) return;
  const std::vector<CheckpointGeneration> gens =
      list_checkpoint_generations(dir);
  if (gens.size() <= keep) return;
  for (usize i = 0; i + keep < gens.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(gens[i].path, ec);
  }
}

Status resume_from_directory(Simulator& sim, const std::string& dir,
                             u64* gen_out, std::string* host_blob_out,
                             CheckpointError* err) {
  const std::vector<CheckpointGeneration> gens =
      list_checkpoint_generations(dir);
  if (gens.empty()) {
    if (err != nullptr) {
      *err = CheckpointError{};
      err->code = CheckpointErrorCode::IoError;
      err->detail = "no checkpoint generations in " + dir;
    }
    return Status::NoResponse;
  }
  CheckpointError newest_err;
  Status newest_status = Status::MalformedPacket;
  bool newest = true;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    CheckpointError gen_err;
    std::string blob;
    const Status st = sim.restore_checkpoint_file(it->path, &gen_err, &blob);
    if (ok(st)) {
      if (gen_out != nullptr) *gen_out = it->gen;
      if (host_blob_out != nullptr) *host_blob_out = std::move(blob);
      if (err != nullptr) *err = CheckpointError{};
      return Status::Ok;
    }
    if (newest) {
      newest_err = std::move(gen_err);
      newest_err.detail =
          it->path + ": " +
          (newest_err.detail.empty() ? to_string(newest_err.code)
                                     : newest_err.detail);
      newest_status = st;
      newest = false;
    }
  }
  if (err != nullptr) *err = std::move(newest_err);
  return newest_status;
}

}  // namespace hmcsim
