// Always-on per-device counters.
//
// Unlike trace records (which are gated by verbosity and fan out to sinks),
// these counters are maintained unconditionally — they are cheap, and the
// Table I bench reads them without paying for tracing.
#pragma once

#include "common/types.hpp"

namespace hmcsim {

struct DeviceStats {
  // Retired memory operations (sub-cycle stage 4).
  u64 reads{0};
  u64 writes{0};
  u64 atomics{0};
  u64 mode_ops{0};
  u64 custom_ops{0};  ///< registered CMC commands retired
  u64 bytes_read{0};     ///< data bytes fetched from banks
  u64 bytes_written{0};  ///< data bytes stored to banks

  // Response generation (stages 4-5).
  u64 responses{0};
  u64 error_responses{0};

  // Contention events.
  u64 bank_conflicts{0};     ///< stage 3 recognitions (per queued packet-cycle)
  u64 xbar_rqst_stalls{0};   ///< crossbar -> vault/peer forwarding refusals
  u64 xbar_rsp_stalls{0};    ///< response registration refusals (stage 5)
  u64 vault_rsp_stalls{0};   ///< vault response queue full during stage 4
  u64 latency_penalties{0};  ///< non-co-located link/quad ingress events

  // Chaining.
  u64 route_hops{0};
  u64 misroutes{0};

  // Fault injection.
  u64 link_errors{0};   ///< packets killed by the injected link error model
  u64 link_retries{0};  ///< retransmissions absorbed by the retry protocol

  // Link layer (spec retry/token protocol; zero unless link_protocol on).
  u64 link_crc_errors{0};      ///< injected CRC failures detected on receive
  u64 link_seq_errors{0};      ///< injected SEQ discontinuities detected
  u64 link_abort_entries{0};   ///< times a receiver entered error-abort
  u64 link_irtry_tx{0};        ///< StartRetry/ClearError IRTRYs streamed
  u64 link_irtry_rx{0};        ///< IRTRY flow packets received from hosts
  u64 link_pret_tx{0};         ///< PRET acknowledgements sent
  u64 link_tret_tx{0};         ///< TRET/piggybacked token-return events
  u64 link_replayed_flits{0};  ///< FLITs replayed out of retry buffers
  u64 link_token_stalls{0};    ///< transmissions blocked on tokens/buffer
  u64 link_retrain_cycles{0};  ///< cycles a loaded link spent retraining
  u64 link_failures{0};        ///< links escalated to dead (LINK_FAILED)
  u64 link_tokens_debited{0};  ///< lifetime FLIT credits consumed
  u64 link_tokens_returned{0};  ///< lifetime FLIT credits returned

  // RAS: DRAM fault domain.
  u64 dram_sbes{0};  ///< single-bit errors corrected by SECDED on read
  u64 dram_dbes{0};  ///< uncorrectable errors returned as DRAM_DBE responses
  u64 scrub_steps{0};           ///< scrubber windows processed
  u64 scrub_corrections{0};     ///< SBEs the scrubber repaired
  u64 scrub_uncorrectables{0};  ///< DBEs the scrubber found (page retired)

  // RAS: vault degradation.
  u64 vault_failures{0};  ///< vaults dynamically marked failed
  u64 vault_remaps{0};    ///< requests rerouted to a partner vault
  u64 degraded_drops{0};  ///< requests answered VAULT_FAILED (incl. drains)

  // DRAM maintenance.
  u64 refreshes{0};  ///< vault refresh windows issued (tREFI events)

  // Row-buffer behavior (OpenPage policy only).
  u64 row_hits{0};
  u64 row_misses{0};

  // Backend-specific timing (zero unless the pcm_like backend with a
  // write gap is configured): issue attempts gated by the vault-wide
  // write-bandwidth throttle while the bank itself was free.
  u64 pcm_write_throttle_stalls{0};

  // Host-edge traffic.
  u64 sends{0};
  u64 send_stalls{0};
  u64 recvs{0};
  u64 flow_packets{0};

  DeviceStats& operator+=(const DeviceStats& o) {
    reads += o.reads;
    writes += o.writes;
    atomics += o.atomics;
    mode_ops += o.mode_ops;
    custom_ops += o.custom_ops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    responses += o.responses;
    error_responses += o.error_responses;
    bank_conflicts += o.bank_conflicts;
    xbar_rqst_stalls += o.xbar_rqst_stalls;
    xbar_rsp_stalls += o.xbar_rsp_stalls;
    vault_rsp_stalls += o.vault_rsp_stalls;
    latency_penalties += o.latency_penalties;
    route_hops += o.route_hops;
    misroutes += o.misroutes;
    link_errors += o.link_errors;
    link_retries += o.link_retries;
    link_crc_errors += o.link_crc_errors;
    link_seq_errors += o.link_seq_errors;
    link_abort_entries += o.link_abort_entries;
    link_irtry_tx += o.link_irtry_tx;
    link_irtry_rx += o.link_irtry_rx;
    link_pret_tx += o.link_pret_tx;
    link_tret_tx += o.link_tret_tx;
    link_replayed_flits += o.link_replayed_flits;
    link_token_stalls += o.link_token_stalls;
    link_retrain_cycles += o.link_retrain_cycles;
    link_failures += o.link_failures;
    link_tokens_debited += o.link_tokens_debited;
    link_tokens_returned += o.link_tokens_returned;
    dram_sbes += o.dram_sbes;
    dram_dbes += o.dram_dbes;
    scrub_steps += o.scrub_steps;
    scrub_corrections += o.scrub_corrections;
    scrub_uncorrectables += o.scrub_uncorrectables;
    vault_failures += o.vault_failures;
    vault_remaps += o.vault_remaps;
    degraded_drops += o.degraded_drops;
    refreshes += o.refreshes;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    pcm_write_throttle_stalls += o.pcm_write_throttle_stalls;
    sends += o.sends;
    send_stalls += o.send_stalls;
    recvs += o.recvs;
    flow_packets += o.flow_packets;
    return *this;
  }

  /// Total retired memory requests (the unit Table I counts).
  [[nodiscard]] u64 retired() const {
    return reads + writes + atomics + custom_ops;
  }

  /// Field-wise equality; the differential test harness compares serial and
  /// parallel runs with it.
  bool operator==(const DeviceStats&) const = default;
};

}  // namespace hmcsim
