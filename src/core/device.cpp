#include "core/device.hpp"

#include "core/link_layer.hpp"

namespace hmcsim {
namespace {

/// Seed for one vault's DRAM fault generator: decorrelated from the
/// device-wide link-error generator and from every other vault.
SplitMix64 vault_rng(u64 fault_seed, u32 dev, u32 vault) {
  return SplitMix64(fault_seed + dev * 0x9e3779b97f4a7c15ull +
                    (u64{vault} + 1) * 0xbf58476d1ce4e5b9ull);
}

}  // namespace

Device::Device(u32 cube_id, const DeviceConfig& config)
    : regs(config.num_links),
      store(config.derived_capacity()),
      id_(cube_id),
      config_(config),
      map_(config.make_address_map()) {
  links.reserve(config.num_links);
  for (u32 l = 0; l < config.num_links; ++l) {
    LinkState link;
    link.rqst = BoundedQueue<RequestEntry>(config.xbar_depth);
    link.rsp = BoundedQueue<ResponseEntry>(config.xbar_depth);
    LinkLayer::reset(config, link.proto);
    links.push_back(std::move(link));
  }
  vaults.reserve(config.num_vaults());
  for (u32 v = 0; v < config.num_vaults(); ++v) {
    VaultState vault;
    vault.rqst = BoundedQueue<RequestEntry>(config.vault_depth);
    vault.rsp = BoundedQueue<ResponseEntry>(config.vault_depth);
    vault.bank_busy_until.assign(config.banks_per_vault, 0);
    vault.open_row.assign(config.banks_per_vault, kNoOpenRow);
    vault.dram_rng = vault_rng(config.fault_seed, cube_id, v);
    // The backend references the device's own config copy (config_), whose
    // address is stable for the device's lifetime.
    vault.timing = make_timing_backend(config_, v);
    vaults.push_back(std::move(vault));
  }
  mode_rsp = BoundedQueue<ResponseEntry>(config.xbar_depth);
  fault_rng = SplitMix64(config.fault_seed + cube_id * 0x9e3779b97f4a7c15ull);
  ras.failed_vaults = config.failed_vault_mask;
  ras.vault_uncorrectable.assign(config.num_vaults(), 0);
}

void Device::reset(bool clear_memory) {
  for (auto& link : links) {
    link.rqst.clear();
    link.rsp.clear();
    link.rqst.reset_stats();
    link.rsp.reset_stats();
    link.rqst_flits_forwarded = 0;
    link.rsp_flits_forwarded = 0;
    link.rqst_budget = 0;
    link.rsp_budget = 0;
    LinkLayer::reset(config_, link.proto);
  }
  u32 v = 0;
  for (auto& vault : vaults) {
    vault.rqst.clear();
    vault.rsp.clear();
    vault.rqst.reset_stats();
    vault.rsp.reset_stats();
    std::fill(vault.bank_busy_until.begin(), vault.bank_busy_until.end(), 0);
    std::fill(vault.open_row.begin(), vault.open_row.end(), kNoOpenRow);
    vault.dram_rng = vault_rng(config_.fault_seed, id_, v++);
    vault.timing->reset();
  }
  mode_rsp.clear();
  regs.reset();
  if (clear_memory) store.clear();
  stats = DeviceStats{};
  fault_rng = SplitMix64(config_.fault_seed + id_ * 0x9e3779b97f4a7c15ull);
  ras = RasState{};
  ras.failed_vaults = config_.failed_vault_mask;
  ras.vault_uncorrectable.assign(config_.num_vaults(), 0);
}

}  // namespace hmcsim
