// Key/value configuration files.
//
// Experiment runners and downstream integrations want device
// configurations in files rather than code.  The format is minimal INI:
//
//   # Table I configuration C
//   num_devices   = 1
//   num_links     = 8
//   banks_per_vault = 8
//   xbar_depth    = 128
//   vault_depth   = 64
//   capacity_gb   = 4
//   map_mode      = low_interleave      # bank_first | linear
//   vault_schedule = bank_ready         # strict_fifo
//   link_error_rate_ppm = 0
//
// Unknown keys are errors (they are invariably typos); every key is
// optional and defaults to the in-code DeviceConfig defaults.  The parser
// reports the first problem with its line number.
#pragma once

#include <iosfwd>
#include <string>

#include "core/config.hpp"

namespace hmcsim {

struct ConfigParseResult {
  bool ok{false};
  SimConfig config{};
  /// Diagnostic for the first error: "<line>: <message>".
  std::string error{};
};

/// Parse a configuration stream.  On success the returned config has also
/// passed SimConfig::validate().
[[nodiscard]] ConfigParseResult parse_config(std::istream& in);

/// Parse from a string (convenience for tests and embedded configs).
[[nodiscard]] ConfigParseResult parse_config_string(const std::string& text);

/// Serialize a config in the same format (inverse of the parser).
void write_config(std::ostream& os, const SimConfig& config);

}  // namespace hmcsim
