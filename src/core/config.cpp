#include "core/config.hpp"

#include <sstream>

#include "common/bitops.hpp"

namespace hmcsim {

const char* to_string(TimingBackend backend) {
  switch (backend) {
    case TimingBackend::HmcDram: return "hmc_dram";
    case TimingBackend::GenericDdr: return "generic_ddr";
    case TimingBackend::PcmLike: return "pcm_like";
  }
  return "hmc_dram";
}

bool timing_backend_from_string(std::string_view name, TimingBackend* out) {
  if (name == "hmc_dram") *out = TimingBackend::HmcDram;
  else if (name == "generic_ddr") *out = TimingBackend::GenericDdr;
  else if (name == "pcm_like") *out = TimingBackend::PcmLike;
  else return false;
  return true;
}

bool DeviceConfig::uses_backend(TimingBackend backend) const {
  if (timing_backend == backend) return true;
  for (const auto& [vault, override] : vault_backends) {
    (void)vault;
    if (override == backend) return true;
  }
  return false;
}

TimingBackend DeviceConfig::backend_for_vault(u32 vault) const {
  for (const auto& [index, override] : vault_backends) {
    if (index == vault) return override;
  }
  return timing_backend;
}

AddressMap DeviceConfig::make_address_map() const {
  switch (map_mode) {
    case AddrMapMode::LowInterleave:
      return AddressMap::low_interleave(geometry(), max_block_bytes);
    case AddrMapMode::BankFirst:
      return AddressMap::bank_first(geometry(), max_block_bytes);
    case AddrMapMode::Linear:
      return AddressMap::linear(geometry(), max_block_bytes);
  }
  return AddressMap{};
}

Status DeviceConfig::validate(std::string* diagnostic) const {
  std::ostringstream os;
  const auto fail = [&](Status s) {
    if (diagnostic) *diagnostic = os.str();
    return s;
  };

  if (num_links != spec::kLinks4 && num_links != spec::kLinks8) {
    os << "num_links must be 4 or 8, got " << num_links;
    return fail(Status::InvalidConfig);
  }
  if (banks_per_vault != spec::kBanks8 && banks_per_vault != spec::kBanks16) {
    os << "banks_per_vault must be 8 or 16, got " << banks_per_vault;
    return fail(Status::InvalidConfig);
  }
  if (!is_pow2(drams_per_bank) || drams_per_bank > 32) {
    os << "drams_per_bank must be a power of two <= 32, got "
       << drams_per_bank;
    return fail(Status::InvalidConfig);
  }
  if (xbar_depth == 0 || vault_depth == 0) {
    os << "queue depths must be at least one slot";
    return fail(Status::InvalidConfig);
  }
  if (max_block_bytes != 32 && max_block_bytes != 64 &&
      max_block_bytes != 128 && max_block_bytes != 256) {
    os << "max_block_bytes must be 32/64/128/256, got " << max_block_bytes;
    return fail(Status::InvalidConfig);
  }
  if (capacity_bytes != 0 && capacity_bytes != derived_capacity()) {
    os << "capacity " << capacity_bytes << " does not match geometry ("
       << num_vaults() << " vaults x " << banks_per_vault << " banks x "
       << spec::kBankBytes << " B = " << derived_capacity() << " B)";
    return fail(Status::InvalidConfig);
  }
  if (xbar_flits_per_cycle == 0) {
    os << "xbar_flits_per_cycle must be nonzero";
    return fail(Status::InvalidConfig);
  }
  if (bank_busy_cycles == 0) {
    os << "bank_busy_cycles must be nonzero";
    return fail(Status::InvalidConfig);
  }
  for (usize i = 0; i < vault_backends.size(); ++i) {
    const u32 index = vault_backends[i].first;
    if (index >= num_vaults()) {
      os << "vault_backend index " << index << " is beyond the device's "
         << num_vaults() << " vaults";
      return fail(Status::InvalidConfig);
    }
    for (usize j = 0; j < i; ++j) {
      if (vault_backends[j].first == index) {
        os << "vault_backend index " << index << " is listed twice";
        return fail(Status::InvalidConfig);
      }
    }
  }
  if (uses_backend(TimingBackend::GenericDdr) && ddr_tcl == 0) {
    os << "generic_ddr requires ddr_tcl >= 1 (a command must occupy the "
          "bank for at least one cycle)";
    return fail(Status::InvalidConfig);
  }
  if (uses_backend(TimingBackend::PcmLike)) {
    if (pcm_read_cycles == 0) {
      os << "pcm_like requires pcm_read_cycles >= 1";
      return fail(Status::InvalidConfig);
    }
    if (pcm_write_cycles < pcm_read_cycles) {
      os << "pcm_like requires pcm_write_cycles (" << pcm_write_cycles
         << ") >= pcm_read_cycles (" << pcm_read_cycles
         << "): PCM writes are never faster than reads";
      return fail(Status::InvalidConfig);
    }
  }
  if (!model_data && (dram_sbe_rate_ppm != 0 || dram_dbe_rate_ppm != 0 ||
                      scrub_interval_cycles != 0)) {
    os << "DRAM fault injection and scrubbing require model_data=true "
          "(faults are real bit flips in the backing store)";
    return fail(Status::InvalidConfig);
  }
  if (scrub_interval_cycles != 0 &&
      (scrub_window_bytes == 0 || scrub_window_bytes % 16 != 0)) {
    os << "scrub_window_bytes must be a nonzero multiple of 16, got "
       << scrub_window_bytes;
    return fail(Status::InvalidConfig);
  }
  if (num_vaults() < 64 && (failed_vault_mask >> num_vaults()) != 0) {
    os << "failed_vault_mask 0x" << std::hex << failed_vault_mask << std::dec
       << " marks vaults beyond the device's " << num_vaults();
    return fail(Status::InvalidConfig);
  }
  if (link_protocol) {
    if (link_retry_limit == 0 || link_retry_limit > 256) {
      os << "link_protocol requires link_retry_limit in [1,256] (the spec "
            "retry machine always replays), got " << link_retry_limit;
      return fail(Status::InvalidConfig);
    }
    if (link_retry_buffer_flits < spec::kMaxPacketFlits ||
        link_retry_buffer_flits > 256) {
      os << "link_retry_buffer_flits must hold one maximal packet and fit "
            "the 8-bit FRP: [" << spec::kMaxPacketFlits << ",256], got "
         << link_retry_buffer_flits;
      return fail(Status::InvalidConfig);
    }
    if (link_tokens != 0 && link_tokens < spec::kMaxPacketFlits) {
      os << "link_tokens must be 0 (auto) or at least one maximal packet ("
         << spec::kMaxPacketFlits << " FLITs), got " << link_tokens;
      return fail(Status::InvalidConfig);
    }
    if (link_retry_latency == 0 || link_retry_latency > 4096) {
      os << "link_retry_latency must be in [1,4096] cycles, got "
         << link_retry_latency;
      return fail(Status::InvalidConfig);
    }
    // One error-abort exchange makes no visible progress for up to
    // link_retry_latency cycles (plus a stuck-retraining window delaying
    // the replay); a tighter watchdog would misread recovery as deadlock.
    if (watchdog_cycles != 0 &&
        watchdog_cycles <=
            link_retry_latency + link_stuck_window_cycles) {
      os << "watchdog_cycles (" << watchdog_cycles
         << ") must exceed link_retry_latency + link_stuck_window_cycles ("
         << link_retry_latency + link_stuck_window_cycles
         << ") or the watchdog misreads link recovery as deadlock";
      return fail(Status::InvalidConfig);
    }
  } else if (link_tokens != 0 || link_stuck_window_cycles != 0 ||
             link_error_burst_len > 1 || link_fail_threshold != 0) {
    os << "link_tokens / link_error_burst_len / link_stuck_* / "
          "link_fail_threshold require link_protocol = true";
    return fail(Status::InvalidConfig);
  }
  if (link_error_burst_len == 0 || link_error_burst_len > 64) {
    os << "link_error_burst_len must be in [1,64], got "
       << link_error_burst_len;
    return fail(Status::InvalidConfig);
  }
  if (link_stuck_window_cycles != 0 &&
      (link_stuck_interval_cycles == 0 ||
       link_stuck_window_cycles >= link_stuck_interval_cycles)) {
    os << "link_stuck_window_cycles (" << link_stuck_window_cycles
       << ") must be smaller than a nonzero link_stuck_interval_cycles ("
       << link_stuck_interval_cycles << ")";
    return fail(Status::InvalidConfig);
  }
  if (link_stuck_interval_cycles != 0 && link_stuck_window_cycles == 0) {
    os << "link_stuck_interval_cycles needs a nonzero "
          "link_stuck_window_cycles";
    return fail(Status::InvalidConfig);
  }
  if (sim_threads > 256) {
    os << "sim_threads must be 0 (hardware) or 1..256, got " << sim_threads;
    return fail(Status::InvalidConfig);
  }
  const AddressMap map = make_address_map();
  if (!map.valid()) {
    os << "address map construction failed: " << map.error();
    return fail(Status::InvalidConfig);
  }
  return Status::Ok;
}

Status SimConfig::validate(std::string* diagnostic) const {
  if (num_devices == 0 || num_devices > spec::kMaxDevices) {
    if (diagnostic) {
      std::ostringstream os;
      os << "num_devices must be in [1," << spec::kMaxDevices
         << "] (the 3-bit CUB field must leave room for host ids), got "
         << num_devices;
      *diagnostic = os.str();
    }
    return Status::InvalidConfig;
  }
  return device.validate(diagnostic);
}

DeviceConfig table1_config_4link_8bank() {
  DeviceConfig c;
  c.num_links = 4;
  c.banks_per_vault = 8;
  c.xbar_depth = 128;
  c.vault_depth = 64;
  c.capacity_bytes = u64{2} * 1024 * 1024 * 1024;
  return c;
}

DeviceConfig table1_config_4link_16bank() {
  DeviceConfig c = table1_config_4link_8bank();
  c.banks_per_vault = 16;
  c.capacity_bytes = u64{4} * 1024 * 1024 * 1024;
  return c;
}

DeviceConfig table1_config_8link_8bank() {
  DeviceConfig c = table1_config_4link_8bank();
  c.num_links = 8;
  c.capacity_bytes = u64{4} * 1024 * 1024 * 1024;
  return c;
}

DeviceConfig table1_config_8link_16bank() {
  DeviceConfig c = table1_config_4link_8bank();
  c.num_links = 8;
  c.banks_per_vault = 16;
  c.capacity_bytes = u64{8} * 1024 * 1024 * 1024;
  return c;
}

}  // namespace hmcsim
