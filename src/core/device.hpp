// The internal software representation of one HMC device (paper §IV.A).
//
// The structure hierarchy deliberately mirrors the physical package:
//
//   Device
//     ├── links[]     (external SERDES links; each with crossbar queues)
//     ├── quads[]     (locality domains; quad i is closest to link i)
//     │     └── vaults[4]
//     │           ├── request / response queues (the vault controller)
//     │           └── banks[] -> DRAMs (bank state + backing storage)
//     ├── register file (RW / RO / RWS configuration & status registers)
//     └── sparse backing store for DRAM contents
//
// `Device` is a data holder owned and driven by `Simulator`; the sub-cycle
// stage logic lives there because stages 1, 2 and 5 move packets *between*
// devices.  Members are public by design — this is the C struct hierarchy
// of the original simulator, kept intact for traceability to the paper.
#pragma once

#include <memory>
#include <vector>

#include "backend/timing_backend.hpp"
#include "common/random.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "core/stats.hpp"
#include "mem/address_map.hpp"
#include "mem/storage.hpp"
#include "packet/packet.hpp"
#include "queue/queue.hpp"
#include "reg/registers.hpp"
#include "trace/lifecycle.hpp"

namespace hmcsim {

struct CustomCommandDef;

/// A request packet in flight, decoded once at ingress.
struct RequestEntry {
  PacketBuffer pkt;
  RequestFields req;
  /// Non-null when req.cmd is a registered custom (CMC) command; points at
  /// the simulator's registration (resolved at ingress and after
  /// checkpoint restore).
  const CustomCommandDef* custom{nullptr};
  /// Earliest cycle any stage may act on this entry; every queue hop sets
  /// it to now+1 so a packet advances at most one stage per clock
  /// (paper §IV.C / Figure 3).
  Cycle ready_cycle{0};
  /// Host injection point, used to route the response back.
  u32 home_dev{0};
  u32 home_link{0};
  /// Link the packet entered the *current* device on.
  u32 ingress_link{0};
  /// The routed-latency penalty is paid (and traced) at most once.
  bool penalty_applied{false};
  /// Link-retry transmissions consumed by this packet (IRTRY protocol).
  u8 retries{0};
  /// Per-stage cycle stamps (lifecycle observability; see
  /// trace/lifecycle.hpp for the segment decomposition they feed).
  PacketLifecycle life{};
};

/// A response packet in flight.
struct ResponseEntry {
  PacketBuffer pkt;
  Cycle ready_cycle{0};
  u32 home_dev{0};
  u32 home_link{0};
  // Decoded essentials retained for tracing.
  Tag tag{0};
  Command cmd{Command::Null};
  /// Stamps inherited from the request at bank retire (life.retire != 0
  /// marks a response that actually traversed a vault; error and mode
  /// responses leave it zero and are excluded from lifecycle accounting).
  PacketLifecycle life{};
};

/// Link-layer reliability state for one link direction (HMC 1.0 retry /
/// token protocol; see core/link_layer.hpp).  Owned by the RECEIVING
/// device: the token pool models this device's input buffer, the tx_*
/// fields model the upstream transmitter's retry machinery.  Only used
/// when DeviceConfig::link_protocol is on; checkpoint v5 serializes it.
struct LinkProtoState {
  // Token flow control (FLIT credits of the input buffer).
  i64 tokens{0};           ///< credits the upstream transmitter holds
  u64 tokens_debited{0};   ///< lifetime FLITs debited on accept
  u64 tokens_returned{0};  ///< lifetime FLITs returned (TRET/piggyback)
  // Transmit retry buffer (upstream side), addressed by 8-bit FRP.
  u32 retry_buf_flits{0};  ///< FLITs awaiting RRP deallocation
  u8 tx_frp{0};            ///< next forward-retry-pointer slot
  u8 rx_rrp{0};            ///< last good FRP returned as RRP
  // 3-bit SEQ continuity.
  u8 tx_seq{0};            ///< next SEQ stamped on an accepted packet
  u8 rx_seq{0};            ///< next SEQ the receiver expects
  // Error-abort state machine.
  Cycle retrain_until{0};  ///< link blocked until this cycle (IRTRY exchange)
  bool replay_pending{false};  ///< a corrupted packet awaits replay
  RequestEntry replay;         ///< the transmitter's held copy
  u32 burst_remaining{0};  ///< forced failures left in the current burst
  u32 fail_count{0};       ///< retry exhaustions (toward link_fail_threshold)
  bool dead{false};        ///< escalated: all traffic answered LINK_FAILED
};

/// One external link and its crossbar arbitration queues.
struct LinkState {
  BoundedQueue<RequestEntry> rqst;  ///< host/peer -> vaults direction
  BoundedQueue<ResponseEntry> rsp;  ///< vaults -> host/peer direction
  /// Link-layer retry/token protocol state (quiescent unless
  /// DeviceConfig::link_protocol is on).
  LinkProtoState proto;
  /// FLITs the crossbar arbiter moved out of each queue (utilization
  /// accounting against the xbar_flits_per_cycle budget).
  u64 rqst_flits_forwarded{0};
  u64 rsp_flits_forwarded{0};
  /// Serialization budget accumulators: refilled by xbar_flits_per_cycle
  /// each clock (unused bandwidth does not bank beyond one cycle) and
  /// drawn down by forwarded packets.  A large packet may overdraw and
  /// then blocks the link until the debt is repaid — multi-cycle
  /// serialization of 2..9-FLIT packets.
  i64 rqst_budget{0};
  i64 rsp_budget{0};
};

/// Sentinel for "no row open" in VaultState::open_row.
inline constexpr u64 kNoOpenRow = ~u64{0};

/// One vault: controller queues plus per-bank timing state.
struct VaultState {
  BoundedQueue<RequestEntry> rqst;
  BoundedQueue<ResponseEntry> rsp;
  /// busy_until[bank] is the first cycle the bank is free again.
  std::vector<Cycle> bank_busy_until;
  /// Per-bank open row under RowPolicy::OpenPage (kNoOpenRow when closed).
  std::vector<u64> open_row;
  /// Deterministic DRAM fault-injection source for accesses retired by THIS
  /// vault.  Sharding the DRAM fault domain per vault (rather than drawing
  /// from the device-wide generator) is what lets stage 4 retire vaults on
  /// parallel threads without the draw order — and therefore the fault
  /// pattern — depending on thread count.  Seeded from (fault_seed, device,
  /// vault); checkpointed.
  SplitMix64 dram_rng{0};
  /// Bank-timing backend (src/backend/): decides when banks accept
  /// commands and how long they stay busy.  Owns only backend-private
  /// state; the shared arrays above remain the source of truth for bank
  /// occupancy.
  std::unique_ptr<VaultTimingBackend> timing;
};

/// Per-device RAS runtime state: the error log the 0x2E register block
/// exposes, vault degradation tracking, and the scrubber cursor.
struct RasState {
  /// Bit i set: vault i is failed (statically via failed_vault_mask or
  /// dynamically after vault_fail_threshold uncorrectable errors).
  u64 failed_vaults{0};
  /// Uncorrectable DRAM errors served by each vault (toward the threshold).
  std::vector<u32> vault_uncorrectable;
  /// Next byte address the background scrubber checks (wraps at capacity).
  u64 scrub_cursor{0};
  /// Completed full-capacity scrub sweeps.
  u64 scrub_passes{0};
  /// Most recent error-response cause (address + raw ErrStat), for the
  /// RAS_LAST_* registers.  Zero until the first error.
  u64 last_error_addr{0};
  u8 last_error_stat{0};
};

class Device {
 public:
  Device(u32 cube_id, const DeviceConfig& config);

  /// Reset queues, banks, registers and (optionally) memory contents to the
  /// power-on state.
  void reset(bool clear_memory = true);

  [[nodiscard]] u32 id() const { return id_; }
  [[nodiscard]] const DeviceConfig& config() const { return config_; }
  /// Chaos campaigns retarget fault-rate knobs mid-run (chaos/engine.cpp);
  /// everyone else treats the configuration as immutable after construction.
  [[nodiscard]] DeviceConfig& mutable_config() { return config_; }
  [[nodiscard]] const AddressMap& address_map() const { return map_; }

  [[nodiscard]] u32 quad_of_vault(u32 vault) const {
    return vault / spec::kVaultsPerQuad;
  }
  /// Link i is physically closest to quad i (paper §III.A / §IV.A).
  [[nodiscard]] u32 quad_of_link(u32 link) const { return link; }

  // Structure hierarchy (public: see file comment).
  std::vector<LinkState> links;
  std::vector<VaultState> vaults;
  /// Staging queue for MODE_READ/MODE_WRITE responses generated at the
  /// crossbar (register accesses never traverse a vault).
  BoundedQueue<ResponseEntry> mode_rsp;
  RegisterFile regs;
  SparseStore store;
  DeviceStats stats;
  /// Deterministic fault-injection source (link error model).
  SplitMix64 fault_rng{0};
  RasState ras;

  /// True when vault `v` is serving traffic (not marked failed).
  [[nodiscard]] bool vault_alive(u32 v) const {
    return (ras.failed_vaults >> v & 1) == 0;
  }

 private:
  u32 id_;
  DeviceConfig config_;
  AddressMap map_;
};

}  // namespace hmcsim
