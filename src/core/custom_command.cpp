#include "core/custom_command.hpp"

namespace hmcsim {

bool is_reserved_command(u8 raw) {
  if (raw >= 64) return false;
  return !is_valid_command(raw);
}

Status CustomCommandSet::define(u8 raw_cmd, CustomCommandDef def) {
  if (!is_reserved_command(raw_cmd)) return Status::InvalidArgument;
  if (!def.handler) return Status::InvalidArgument;
  if (def.request_flits < spec::kMinPacketFlits ||
      def.request_flits > spec::kMaxPacketFlits ||
      def.response_flits > spec::kMaxPacketFlits) {
    return Status::InvalidArgument;
  }
  if (def.access_bytes < spec::kBlockBytes ||
      def.access_bytes > spec::kMaxPayloadBytes ||
      def.access_bytes % spec::kBlockBytes != 0) {
    return Status::InvalidArgument;
  }
  if (defs_[raw_cmd].handler) return Status::InvalidConfig;
  defs_[raw_cmd] = std::move(def);
  ++count_;
  return Status::Ok;
}

Status build_custom_request(const CustomCommandSet& set, u8 raw_cmd, u32 cub,
                            PhysAddr addr, Tag tag, u32 link,
                            std::span<const u64> payload, PacketBuffer& out) {
  const CustomCommandDef* def = set.find(raw_cmd);
  if (def == nullptr) return Status::InvalidArgument;
  if (addr > spec::kAddrMask || tag > spec::kMaxTag) {
    return Status::InvalidArgument;
  }
  const usize payload_words = usize{def->request_flits} * 2 - 2;
  if (payload.size() != payload_words) return Status::InvalidArgument;

  out.flits = def->request_flits;
  out.words[0] = field::make_request_header(static_cast<Command>(raw_cmd),
                                            def->request_flits, tag, addr,
                                            cub);
  std::copy(payload.begin(), payload.end(), out.words.begin() + 1);
  out.words[out.word_count() - 1] =
      field::make_request_tail(link, 0, 0, false, 0, 0);
  seal_crc(out);
  return Status::Ok;
}

Status decode_custom_request(const PacketBuffer& in,
                             const CustomCommandDef& def,
                             RequestFields& out) {
  if (in.flits != def.request_flits) return Status::MalformedPacket;
  const u64 header = in.header();
  const u32 lng = field::lng_of(header);
  if (lng != in.flits || lng != field::dln_of(header)) {
    return Status::MalformedPacket;
  }
  if (!check_crc(in)) return Status::MalformedPacket;
  const u64 tail = in.tail();
  out = RequestFields{};
  out.cmd = field::cmd_of(header);
  out.lng = lng;
  out.tag = field::tag_of(header);
  out.addr = field::adrs_of(header);
  out.cub = field::cub_of(header);
  out.slid = field::request_slid_of(tail);
  return Status::Ok;
}

}  // namespace hmcsim
