// Run-time configuration of HMC-Sim devices and simulator objects.
//
// Mirrors the paper's master initialization call:
//
//   hmcsim_init(&hmc, num_devs, num_links, num_vaults, queue_depth,
//               num_banks, num_drams, capacity, xbar_depth)
//
// plus the timing/behavior knobs our clock model exposes.  All devices
// within a single simulator object must be physically homogeneous (paper
// §V.A) — hence one DeviceConfig shared by every cube.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/limits.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"

namespace hmcsim {

/// Which default address map mode the device uses (paper §III.B).
enum class AddrMapMode : u8 {
  LowInterleave,  ///< spec default: vault bits lowest, then bank bits
  BankFirst,      ///< bank bits lowest (ablation A2)
  Linear,         ///< vault/bank bits highest (ablation A2, worst case)
};

/// Bank row-buffer management policy.
/// ClosedPage (the paper's implicit model): every access costs the full
/// bank cycle.  OpenPage: each bank keeps its last row open; a row hit
/// costs `row_hit_cycles`, a miss (precharge + activate) costs
/// `row_miss_cycles`.
enum class RowPolicy : u8 {
  ClosedPage,
  OpenPage,
};

/// How the vault controller picks requests to retire each cycle.
/// The spec's weak ordering model allows vaults to "reorder queued packets
/// in order to make most efficient use of bandwidth to and from the
/// respective vault banks" (§III.C) while preserving per-(link, bank)
/// stream order; StrictFifo disables that freedom (ablation A6).
enum class VaultSchedule : u8 {
  BankReady,   ///< retire any queued request whose bank is free (default)
  StrictFifo,  ///< retire in strict arrival order only
};

/// Vault bank-timing backend (see docs/BACKENDS.md).  The backend decides
/// when a bank can accept a command and how long it stays busy; everything
/// else — queues, crossbar, refresh scheduling, RAS — is backend-agnostic.
enum class TimingBackend : u8 {
  HmcDram,     ///< the paper's DRAM model (bank_busy_cycles / row policy)
  GenericDdr,  ///< parameterized tCL/tRCD/tRP/tRAS timing
  PcmLike,     ///< asymmetric read/write latency + write throttling
};

/// Canonical config-file / CLI spelling of a backend ("hmc_dram",
/// "generic_ddr", "pcm_like").
const char* to_string(TimingBackend backend);
/// Parse a backend name; returns false (and leaves `out` alone) on an
/// unknown spelling.
bool timing_backend_from_string(std::string_view name, TimingBackend* out);

struct DeviceConfig {
  // ---- structural (the paper's init parameters) ------------------------
  u32 num_links{4};        ///< 4 or 8
  u32 banks_per_vault{8};  ///< 8 or 16 (stacked die layers)
  u32 drams_per_bank{8};
  usize xbar_depth{128};   ///< crossbar arbitration queue slots per link
  usize vault_depth{64};   ///< vault request/response queue slots
  /// Expected device capacity in bytes; 0 derives it from the geometry.
  /// A nonzero value is validated against vaults * banks * 16 MiB, catching
  /// configuration mistakes early (the paper's init takes capacity
  /// explicitly).
  u64 capacity_bytes{0};

  // ---- addressing -------------------------------------------------------
  AddrMapMode map_mode{AddrMapMode::LowInterleave};
  u64 max_block_bytes{128};  ///< 32/64/128/256; sets the offset field width

  // ---- timing model -----------------------------------------------------
  /// Cycles a bank stays busy after serving one request (row cycle time in
  /// device clocks).
  u32 bank_busy_cycles{16};
  /// FLITs one crossbar link arbiter may forward toward vaults / peer
  /// devices per clock (link serialization bandwidth in the device domain).
  u32 xbar_flits_per_cycle{10};
  /// Maximum requests one vault controller retires per clock; 0 = bounded
  /// only by bank availability.
  u32 vault_drain_limit{0};
  /// Extra cycles a request pays when it enters on a link whose quadrant is
  /// not the destination vault's quadrant (paper: routed latency penalty).
  u32 nonlocal_penalty_cycles{1};
  /// Spatial window (in queue slots) stage 3 scans for bank conflicts.
  u32 conflict_window{16};
  /// DRAM refresh: every `refresh_interval_cycles` device clocks each vault
  /// controller takes all of its banks offline for `refresh_busy_cycles`
  /// (tREFI / tRFC).  Vault refreshes are staggered across the interval so
  /// the device never refreshes everywhere at once.  0 disables refresh
  /// (the paper's model).  Realistic values at 1.25 GHz: interval ~9750
  /// (7.8 us), busy ~440 (350 ns).
  u32 refresh_interval_cycles{0};
  u32 refresh_busy_cycles{440};
  /// Row-buffer policy (see RowPolicy).  Under OpenPage the bank busy time
  /// is row_hit_cycles on a row-buffer hit and row_miss_cycles on a miss;
  /// bank_busy_cycles is ignored.  Refresh closes every open row.
  RowPolicy row_policy{RowPolicy::ClosedPage};
  u32 row_hit_cycles{6};
  u32 row_miss_cycles{22};
  /// Vault retirement order (see VaultSchedule).
  VaultSchedule vault_schedule{VaultSchedule::BankReady};
  /// Bank-timing backend for every vault (see TimingBackend and
  /// docs/BACKENDS.md); individual vaults may override via
  /// `vault_backends`.
  TimingBackend timing_backend{TimingBackend::HmcDram};
  /// Per-vault backend overrides: pairs of (vault index, backend).  Vaults
  /// not listed use `timing_backend`.  Indices must be unique and below
  /// num_vaults().
  std::vector<std::pair<u32, TimingBackend>> vault_backends;
  /// generic_ddr timing knobs, in device clocks.  A row-buffer hit costs
  /// tCL; a miss (or any access under ClosedPage) costs
  /// max(tRCD + tCL, tRAS) + tRP.  With ddr_trcd = ddr_trp = ddr_tras = 0
  /// the model degenerates to a flat ddr_tcl busy window.  The defaults
  /// reproduce the hmc_dram default (bank_busy_cycles = 16):
  /// max(5 + 6, 11) + 5 = 16.
  u32 ddr_tcl{6};
  u32 ddr_trcd{5};
  u32 ddr_trp{5};
  u32 ddr_tras{11};
  /// pcm_like timing knobs, in device clocks.  Reads occupy the bank for
  /// pcm_read_cycles; writes (and atomics, which are read-modify-writes)
  /// for pcm_write_cycles.  pcm_write_gap_cycles additionally throttles
  /// write bandwidth vault-wide: after any write issues, further writes to
  /// the same vault wait that many cycles (0 = no throttle); stalled
  /// cycles are counted in the pcm_write_throttle_stalls statistic.
  u32 pcm_read_cycles{16};
  u32 pcm_write_cycles{48};
  u32 pcm_write_gap_cycles{0};
  /// True when `vault` (or any vault, with kAllVaults) resolves to
  /// `backend` under timing_backend + vault_backends.
  bool uses_backend(TimingBackend backend) const;
  /// The backend vault `vault` resolves to.
  TimingBackend backend_for_vault(u32 vault) const;

  // ---- fault injection ---------------------------------------------------
  /// Probability, in parts per million, that a request packet crossing a
  /// crossbar link suffers an unrecoverable link error (CRC failure after
  /// retry exhaustion).  The packet dies and an ERROR response with
  /// ERRSTAT=CRC_FAILURE returns to the host.  Deterministic per seed.
  u32 link_error_rate_ppm{0};
  /// Seed for the per-device fault-injection generator.
  u64 fault_seed{0x5eed};
  /// Link-level retry budget (spec: IRTRY/retry-pointer protocol).  A
  /// packet hit by an injected link error is retransmitted from the retry
  /// buffer up to this many times before it is dropped and an ERROR
  /// response returns; each retransmission costs one cycle of link time.
  /// 0 disables retry (every injected error is fatal) — illegal when
  /// link_protocol is on (the spec protocol always retries).
  u32 link_retry_limit{0};

  // ---- link layer: spec-faithful retry / token protocol -------------------
  /// Enable the HMC 1.0 link reliability layer (core/link_layer.hpp):
  /// FRP-addressed transmit retry buffers with RRP deallocation, 3-bit SEQ
  /// continuity, token-based injection gating, and the IRTRY error-abort
  /// recovery machine.  Off (the default) keeps the legacy abstract model:
  /// a per-packet coin flip with a bare retry counter.
  bool link_protocol{false};
  /// Input-buffer token pool per link, in FLITs.  A transmission debits its
  /// FLIT count and blocks at zero tokens; credits return when the receiver
  /// drains the packet onward.  0 derives xbar_depth * 4.  An explicit
  /// value must fit at least one maximal 9-FLIT packet.
  u32 link_tokens{0};
  /// Transmit retry-buffer capacity in FLITs (8-bit FRP: at most 256).
  /// Packets occupy slots from transmission until RRP acknowledgement.
  u32 link_retry_buffer_flits{256};
  /// Cycles one error-abort exchange occupies the link: the receiver
  /// streams StartRetry IRTRYs, the transmitter answers PRET and replays,
  /// the receiver clears with ClearError IRTRYs.
  u32 link_retry_latency{8};
  /// Burst fault mode: one fault-model hit corrupts this many consecutive
  /// transmissions on the link (1 = uniform single-packet errors).
  u32 link_error_burst_len{1};
  /// Stuck-link fault mode: every `interval` cycles the link retrains for
  /// `window` cycles, backpressuring traffic (no loss).  0 disables.
  u32 link_stuck_interval_cycles{0};
  u32 link_stuck_window_cycles{0};
  /// Dead-link escalation: after this many retry-exhaustion events a link
  /// is marked dead and all queued or arriving requests are answered with
  /// ERRSTAT=LINK_FAILED (the VAULT_FAILED-style host-visible error).
  /// 0 disables escalation.
  u32 link_fail_threshold{0};

  // ---- RAS: DRAM fault domain -------------------------------------------
  /// Probability, in parts per million, that a retired DRAM access plants a
  /// single-bit fault in one 64-bit word of the addressed block.  Reads
  /// discover (and the SECDED codec corrects) such faults immediately;
  /// writes plant latent faults found later by reads or the scrubber.
  u32 dram_sbe_rate_ppm{0};
  /// As above but two bits flip in the same word: reads of the word return
  /// an ERROR response with ERRSTAT=DRAM_DBE and the word stays poisoned
  /// until overwritten or retired by the scrubber.
  u32 dram_dbe_rate_ppm{0};
  /// Background scrubber: every this-many device clocks the scrubber checks
  /// one window of `scrub_window_bytes` and advances its cursor, wrapping at
  /// capacity.  Discovered SBEs are repaired; DBEs are counted and the page
  /// retired (word rebuilt).  0 disables scrubbing.
  u32 scrub_interval_cycles{0};
  u64 scrub_window_bytes{4096};

  // ---- RAS: vault degradation -------------------------------------------
  /// A vault that accumulates this many uncorrectable DRAM errors is marked
  /// failed (dynamic degradation).  0 disables dynamic failure.
  u32 vault_fail_threshold{0};
  /// Bit i set marks vault i failed from reset (static degradation).
  u64 failed_vault_mask{0};
  /// When true, traffic addressed to a failed vault is remapped to its
  /// partner vault (vault ^ 1) if that partner is alive; otherwise (or when
  /// false) the request is answered with ERRSTAT=VAULT_FAILED.
  bool vault_remap{false};

  // ---- RAS: forward-progress watchdog -----------------------------------
  /// After this many consecutive clocks with queued work but no progress
  /// anywhere in the device set, the simulator trips its watchdog and
  /// refuses further clocks (Status::Deadlock + diagnostic report).  Must
  /// comfortably exceed refresh_busy_cycles and worst-case queue latency;
  /// 0 disables the watchdog.
  u32 watchdog_cycles{0};

  // ---- execution ----------------------------------------------------------
  /// Worker threads the clock engine fans sub-cycle stages across (stages
  /// 1-2 per device, stages 3-4 per vault).  Scheduling is deterministic —
  /// static shard partitioning with fixed-order merges — so simulation
  /// results are bit-identical for every value of this knob; it only
  /// changes wall-clock speed.  1 = serial (default), 0 = one thread per
  /// hardware core.  Not serialized into checkpoints (an execution knob,
  /// not device state).
  u32 sim_threads{1};
  /// Idle-cycle fast-forward: when every crossbar and vault queue is empty
  /// the clock engine skips the six sub-cycle stages and advances time with
  /// an O(1) fast path, emulating the per-cycle state mutations (link budget
  /// refills, refresh events, watchdog stall accounting) in closed form at
  /// the moment traffic resumes.  Bit-identical to the slow path — the
  /// differential harness proves stats, checkpoint bytes, and latency
  /// histograms match with the knob on and off.  Like sim_threads, this is
  /// an execution knob, not device state, and is not serialized into
  /// checkpoints.
  bool fast_forward{true};

  // ---- observability (execution knobs, never serialized) ------------------
  /// Time the six clock stages with the monotonic clock, attributed per
  /// device and per vault (src/profile/profiler.hpp).  Pure observation:
  /// simulation results are bit-identical with the knob on or off.  Like
  /// sim_threads, not serialized into checkpoints.
  bool self_profile{false};
  /// Sample queue/token/retry-buffer occupancy into high-water marks and
  /// histograms every this-many clocks (src/profile/telemetry.hpp); 0
  /// disables.  Sampling rides the stage-6 dispatch point and bounds the
  /// fast-forward skip window (like the cycle hook).  Not serialized.
  u32 telemetry_interval_cycles{0};
  /// Retain the last N structured events per device in a post-mortem ring
  /// buffer (src/profile/flight_recorder.hpp); 0 disables.  The retained
  /// window dumps into the watchdog diagnostic report and on demand.  Not
  /// serialized.
  u32 flight_recorder_depth{0};
  /// Write a rotated checkpoint generation every this-many clocks when a
  /// run harness supplies a checkpoint directory (tools/hmcsim_run.cpp);
  /// 0 disables.  Like the other knobs in this block it describes how the
  /// run is supervised, not device state, and is never serialized: a
  /// checkpoint must be byte-identical whether or not the run that wrote
  /// it was auto-checkpointing.
  u32 checkpoint_interval_cycles{0};
  /// Run the chaos live invariant checker (closed-form conservation
  /// identities, queue bounds, watchdog liveness; src/chaos/engine.cpp)
  /// every this-many clocks; 0 disables.  The check cadence rides the
  /// stage-6 dispatch point and bounds the fast-forward skip window.  An
  /// execution knob like the rest of this block: checks read simulated
  /// state but never change it, and the knob is never serialized.
  u32 chaos_invariants{0};

  // ---- data model ---------------------------------------------------------
  /// When false, memory payloads are not stored/fetched (reads return
  /// zeros).  Benches disable data to keep multi-GB random-access runs
  /// resident-set friendly; functional users keep it on.
  bool model_data{true};

  // ---- derived ------------------------------------------------------------
  [[nodiscard]] u32 num_quads() const { return num_links; }
  [[nodiscard]] u32 num_vaults() const {
    return num_links * spec::kVaultsPerQuad;
  }
  [[nodiscard]] u64 derived_capacity() const {
    return u64{num_vaults()} * banks_per_vault * spec::kBankBytes;
  }
  [[nodiscard]] Geometry geometry() const {
    return Geometry{num_vaults(), banks_per_vault, drams_per_bank,
                    spec::kBankBytes};
  }

  /// Build the configured address map.
  [[nodiscard]] AddressMap make_address_map() const;

  /// Check every structural constraint; returns a diagnostic on failure.
  [[nodiscard]] Status validate(std::string* diagnostic = nullptr) const;
};

struct SimConfig {
  u32 num_devices{1};
  DeviceConfig device{};

  [[nodiscard]] Status validate(std::string* diagnostic = nullptr) const;

  /// The cube id the paper assigns to host endpoints: one greater than the
  /// number of devices.
  [[nodiscard]] u32 host_cub() const { return num_devices; }
};

/// Convenience constructors for the paper's four Table I configurations.
[[nodiscard]] DeviceConfig table1_config_4link_8bank();   // 2 GB
[[nodiscard]] DeviceConfig table1_config_4link_16bank();  // 4 GB
[[nodiscard]] DeviceConfig table1_config_8link_8bank();   // 4 GB
[[nodiscard]] DeviceConfig table1_config_8link_16bank();  // 8 GB

}  // namespace hmcsim
