#include "core/simulator.hpp"

#include <algorithm>

#include "core/link_layer.hpp"

namespace hmcsim {

// ---------------------------------------------------------------------------
// Packet builders (paper Figure 4).
// ---------------------------------------------------------------------------

Status build_memrequest(u32 cub, PhysAddr addr, Tag tag, Command cmd,
                        u32 link, std::span<const u64> payload,
                        PacketBuffer& out) {
  RequestFields f;
  f.cmd = cmd;
  f.addr = addr;
  f.tag = tag;
  f.cub = cub;
  f.slid = link;
  return encode_request(f, payload, out);
}

Status build_moderequest(u32 cub, u32 phys_reg_index, Tag tag, bool write,
                         u64 value, u32 link, PacketBuffer& out) {
  RequestFields f;
  f.cmd = write ? Command::ModeWrite : Command::ModeRead;
  f.addr = phys_reg_index;  // the register index rides in ADRS
  f.tag = tag;
  f.cub = cub;
  f.slid = link;
  if (write) {
    const u64 payload[2] = {value, 0};
    return encode_request(f, payload, out);
  }
  return encode_request(f, {}, out);
}

// ---------------------------------------------------------------------------
// Initialization.
// ---------------------------------------------------------------------------

Status Simulator::init(const SimConfig& config, Topology topo,
                       std::string* diagnostic) {
  Status s = config.validate(diagnostic);
  if (!ok(s)) return s;

  if (topo.num_devices() != config.num_devices ||
      topo.links_per_device() != config.device.num_links) {
    if (diagnostic) {
      *diagnostic = "topology device/link counts do not match the config";
    }
    return Status::InvalidConfig;
  }
  s = topo.validate(diagnostic);
  if (!ok(s)) return s;
  if (!topo.finalized()) {
    s = topo.finalize();
    if (!ok(s)) return s;
  }

  config_ = config;
  topo_ = std::move(topo);
  cycle_ = 0;
  watchdog_fired_ = false;
  watchdog_stall_cycles_ = 0;
  watchdog_fingerprint_ = 0;
  watchdog_report_.clear();
  cycles_skipped_ = 0;
  ff_armed_ = false;
  devices_.clear();
  root_devices_.clear();
  child_devices_.clear();
  for (u32 d = 0; d < config.num_devices; ++d) {
    devices_.push_back(std::make_unique<Device>(d, config.device));
    if (topo_.is_root(CubeId{d})) {
      root_devices_.push_back(d);
    } else {
      child_devices_.push_back(d);
    }
  }

  // Clock-engine parallelism: resolve the thread knob and size the stage
  // scratch once, so the hot loop never allocates.  The sharded algorithm
  // runs identically with or without the pool (see the file comment in
  // simulator.hpp for the determinism argument).
  resolved_threads_ = config.device.sim_threads == 0
                          ? ThreadPool::hardware_threads()
                          : config.device.sim_threads;
  pool_.reset();
  if (resolved_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(resolved_threads_);
  }
  const u32 links = config.device.num_links;
  const u32 vaults = config.device.num_vaults();
  xbar_scratch_.resize(config.num_devices);
  for (auto& sc : xbar_scratch_) {
    sc.trace.clear();
    sc.outbox.clear();
    sc.staged.assign(usize{config.num_devices} * links, 0);
  }
  vault_scratch_.assign(usize{config.num_devices} * vaults, VaultScratch{});
  xbar_free_.assign(usize{config.num_devices} * links, 0);
  failed_snapshot_.assign(config.num_devices, 0);
  bounce_mark_.assign(usize{config.num_devices} * links, 0);
  bounced_.clear();

  // Self-observation layer: all pure observation, so (like sim_threads and
  // fast_forward) these knobs never change simulated state or checkpoint
  // bytes — the observability axis of the differential harness proves it.
  profiler_.reset();
  telemetry_.reset();
  recorder_.reset();
  if (config.device.self_profile) {
    profiler_ = std::make_unique<StageProfiler>(config.num_devices, vaults);
  }
  if (config.device.telemetry_interval_cycles != 0) {
    telemetry_ = std::make_unique<Telemetry>(config.num_devices);
  }
  if (config.device.flight_recorder_depth != 0) {
    recorder_ = std::make_unique<FlightRecorder>(
        config.num_devices, config.device.flight_recorder_depth);
  }
  ff_span_len_ = 0;
  fr_dead_logged_.assign(config.num_devices, 0);
  // Live invariant checking without a plan is a valid configuration (the
  // checker is useful against organic bugs, not only injected chaos); a
  // plan armed later through set_chaos_plan() creates the engine itself.
  chaos_.reset();
  if (config.device.chaos_invariants != 0) {
    chaos_ = std::make_unique<ChaosEngine>(config.device);
  }
  return Status::Ok;
}

Status Simulator::init_simple(const DeviceConfig& device,
                              std::string* diagnostic) {
  SimConfig config;
  config.num_devices = 1;
  config.device = device;
  Topology topo = make_simple(device.num_links, diagnostic);
  if (topo.num_devices() == 0) return Status::InvalidConfig;
  return init(config, std::move(topo), diagnostic);
}

void Simulator::reset(bool clear_memory) {
  for (auto& dev : devices_) dev->reset(clear_memory);
  cycle_ = 0;
  watchdog_fired_ = false;
  watchdog_stall_cycles_ = 0;
  watchdog_fingerprint_ = 0;
  watchdog_report_.clear();
  cycles_skipped_ = 0;
  ff_armed_ = false;
  if (profiler_) profiler_->reset();
  if (telemetry_) telemetry_->reset();
  if (recorder_) recorder_->clear();
  ff_span_len_ = 0;
  std::fill(fr_dead_logged_.begin(), fr_dead_logged_.end(), u64{0});
  if (chaos_) {
    chaos_->reset_progress();
    // Re-arm the baseline fault rates the campaign may have retargeted
    // (Device::reset keeps the construction-time config, which rate events
    // mutate in place).
    const DeviceConfig& base = chaos_->baseline();
    const auto restore_rate = [&](u32 DeviceConfig::*field) {
      config_.device.*field = base.*field;
      for (auto& dev : devices_) dev->mutable_config().*field = base.*field;
    };
    restore_rate(&DeviceConfig::link_error_rate_ppm);
    restore_rate(&DeviceConfig::link_error_burst_len);
    restore_rate(&DeviceConfig::dram_sbe_rate_ppm);
    restore_rate(&DeviceConfig::dram_dbe_rate_ppm);
  }
}

DeviceStats Simulator::total_stats() const {
  DeviceStats total;
  for (const auto& dev : devices_) total += dev->stats;
  return total;
}

bool Simulator::quiescent() const {
  for (const auto& dev : devices_) {
    if (!dev->mode_rsp.empty()) return false;
    for (const auto& link : dev->links) {
      if (!link.rqst.empty() || !link.rsp.empty()) return false;
      // A packet parked in a link's replay slot is still in flight.
      if (link.proto.replay_pending) return false;
    }
    for (const auto& vault : dev->vaults) {
      if (!vault.rqst.empty() || !vault.rsp.empty()) return false;
    }
  }
  return true;
}

void Simulator::trace(TraceEvent event, u8 stage, u32 dev, u32 link, u32 quad,
                      u32 vault, u32 bank, PhysAddr addr, Tag tag,
                      Command cmd) {
  if (!tracer_.enabled(event)) return;
  TraceRecord rec;
  rec.event = event;
  rec.stage = stage;
  rec.cycle = cycle_;
  rec.dev = dev;
  rec.link = link;
  rec.quad = quad;
  rec.vault = vault;
  rec.bank = bank;
  rec.addr = addr;
  rec.tag = tag;
  rec.cmd = cmd;
  tracer_.emit(rec);
}

void Simulator::trace_to(ShardCtx& ctx, TraceEvent event, u8 stage, u32 dev,
                         u32 link, u32 quad, u32 vault, u32 bank,
                         PhysAddr addr, Tag tag, Command cmd) {
  if (!tracer_.enabled(event)) return;
  TraceRecord rec;
  rec.event = event;
  rec.stage = stage;
  rec.cycle = cycle_;
  rec.dev = dev;
  rec.link = link;
  rec.quad = quad;
  rec.vault = vault;
  rec.bank = bank;
  rec.addr = addr;
  rec.tag = tag;
  rec.cmd = cmd;
  if (ctx.trace != nullptr) {
    ctx.trace->push_back(rec);
  } else {
    tracer_.emit(rec);
  }
}

// ---------------------------------------------------------------------------
// Host-edge interface.
// ---------------------------------------------------------------------------

Status Simulator::send(u32 dev, u32 link, const PacketBuffer& packet) {
  if (!initialized() || dev >= devices_.size() ||
      link >= config_.device.num_links) {
    return Status::InvalidArgument;
  }
  if (topo_.endpoint(CubeId{dev}, LinkId{link}).kind != EndpointKind::Host) {
    return Status::InvalidArgument;
  }

  Device& d = *devices_[dev];
  RequestEntry entry;
  entry.pkt = packet;
  const u8 raw_cmd = static_cast<u8>(extract(packet.header(), 0, 6));
  if (const CustomCommandDef* custom = custom_.find(raw_cmd)) {
    const Status ds = decode_custom_request(packet, *custom, entry.req);
    if (!ok(ds)) return ds;
    entry.custom = custom;
  } else {
    const Status v = validate_packet(packet);
    if (!ok(v)) return v;
    const Status ds = decode_request(packet, entry.req);
    if (!ok(ds)) return ds;
  }

  // Every path below mutates device state (a queue push or a stats
  // counter), so the idle fast path must re-prove eligibility.
  ff_invalidate();

  if (is_flow(entry.req.cmd)) {
    // Link-layer flow control terminates at the link interface.  Host
    // TRETs deliberately do not mint tokens — the simulator models both
    // ends of the credit loop itself, and an externally-minted credit
    // would break the conservation identity debited == returned +
    // in-flight.
    ++d.stats.flow_packets;
    if (config_.device.link_protocol && entry.req.cmd == Command::Irtry) {
      ++d.stats.link_irtry_rx;
    }
    return Status::Ok;
  }

  entry.ready_cycle = cycle_ + 1;
  entry.home_dev = dev;
  entry.home_link = link;
  entry.ingress_link = link;
  entry.life.inject = cycle_;
  const PhysAddr addr = entry.req.addr;
  const Tag tag = entry.req.tag;
  const Command cmd = entry.req.cmd;
  if (config_.device.link_protocol) {
    ShardCtx ctx;
    ctx.stats = &d.stats;  // host context is serial
    switch (LinkLayer::arrive(d, link, entry, cycle_)) {
      case LinkArrival::Corrupted:
        // Corrupted still counts as a successful injection: the wire event
        // is the link layer's to recover (replay) or escalate.
        record_event_direct(FlightEventType::LinkIrtry, dev, 0,
                            static_cast<u16>(link), tag);
        break;
      case LinkArrival::Accepted:
        break;
      case LinkArrival::TokenStall:
        ++d.stats.send_stalls;
        return Status::Stalled;
      case LinkArrival::Dead:
        // Dead link: the host sees a deterministic LINK_FAILED error
        // response instead of a hang.
        if (!emit_error_response(d, entry, ErrStat::LinkFailed, 0, ctx)) {
          ++d.stats.send_stalls;
          return Status::Stalled;
        }
        break;
    }
  } else if (!d.links[link].rqst.push(std::move(entry))) {
    ++d.stats.send_stalls;
    return Status::Stalled;
  }
  ++d.stats.sends;
  trace(TraceEvent::PacketSend, 0, dev, link, kNoCoord, kNoCoord, kNoCoord,
        addr, tag, cmd);
  return Status::Ok;
}

Status Simulator::recv(u32 dev, u32 link, PacketBuffer& out) {
  if (!initialized() || dev >= devices_.size() ||
      link >= config_.device.num_links) {
    return Status::InvalidArgument;
  }
  if (topo_.endpoint(CubeId{dev}, LinkId{link}).kind != EndpointKind::Host) {
    return Status::InvalidArgument;
  }
  Device& d = *devices_[dev];
  BoundedQueue<ResponseEntry>& queue = d.links[link].rsp;
  if (queue.empty() || queue.front().ready_cycle > cycle_) {
    return Status::NoResponse;
  }
  // Draining a host response changes quiescence and the progress
  // fingerprint, both frozen into the armed fast path.  (The no-response
  // path above stays armed — polling drivers must not disarm every step.)
  ff_invalidate();
  ResponseEntry entry = queue.pop_front();
  out = entry.pkt;
  ++d.stats.recvs;
  trace(TraceEvent::PacketRecv, 0, dev, link, kNoCoord, kNoCoord, kNoCoord, 0,
        entry.tag, entry.cmd);
  // Close the lifecycle and hand the completed record to observers.  Only
  // responses that actually retired at a bank carry stamps; error and mode
  // responses stay out of lifecycle accounting.
  if (entry.life.retire != 0 && !lifecycle_observers_.empty()) {
    entry.life.drain = cycle_;
    for (auto& obs : lifecycle_observers_) obs->complete(entry.life);
  }
  return Status::Ok;
}

// ---------------------------------------------------------------------------
// Side-band register access (outside the clock domains).
// ---------------------------------------------------------------------------

Status Simulator::register_custom_command(u8 raw_cmd, CustomCommandDef def) {
  if (!initialized()) return Status::InvalidArgument;
  // Registration while packets are in flight could leave entries with a
  // stale decode; require quiescence (the natural time to configure).
  if (!quiescent()) return Status::InvalidConfig;
  ff_invalidate();
  return custom_.define(raw_cmd, std::move(def));
}

Status Simulator::read_register_live(const Device& dev, u32 phys_index,
                                     u64& value) const {
  const auto reg = reg_from_phys(phys_index);
  if (reg && dev.regs.present(*reg)) {
    switch (*reg) {
      case Reg::Feat: {
        // Geometry word: capacity-GB[7:0] | links[11:8] | banks[19:12] |
        // vaults[27:20].
        const DeviceConfig& cfg = dev.config();
        value = (cfg.derived_capacity() >> 30) |
                (u64{cfg.num_links} << 8) |
                (u64{cfg.banks_per_vault} << 12) |
                (u64{cfg.num_vaults()} << 20);
        return Status::Ok;
      }
      case Reg::Err:
        // Cumulative error responses; injected link errors in the high
        // word so hosts can split protocol faults from link faults.
        value = dev.stats.error_responses |
                (dev.stats.link_errors << 32);
        return Status::Ok;
      case Reg::Ibtc0: case Reg::Ibtc1: case Reg::Ibtc2: case Reg::Ibtc3:
      case Reg::Ibtc4: case Reg::Ibtc5: case Reg::Ibtc6: case Reg::Ibtc7: {
        // Live input-buffer token count: free request-queue slots.
        const usize link = static_cast<usize>(*reg) -
                           static_cast<usize>(Reg::Ibtc0);
        value = dev.links[link].rqst.free_slots();
        return Status::Ok;
      }
      // RAS error-log block (0x2E): live views of the DRAM fault domain,
      // scrubber and degradation state.
      case Reg::RasSbe:
        value = dev.stats.dram_sbes | (dev.stats.scrub_corrections << 32);
        return Status::Ok;
      case Reg::RasDbe:
        value = dev.stats.dram_dbes | (dev.stats.scrub_uncorrectables << 32);
        return Status::Ok;
      case Reg::RasScrub:
        value = (dev.ras.scrub_cursor / SparseStore::kPageBytes) |
                (dev.ras.scrub_passes << 32);
        return Status::Ok;
      case Reg::RasLastAddr:
        value = dev.ras.last_error_addr;
        return Status::Ok;
      case Reg::RasLastStat:
        value = dev.ras.last_error_stat;
        return Status::Ok;
      case Reg::RasVaultFail:
        value = dev.ras.failed_vaults | (dev.stats.vault_remaps << 32);
        return Status::Ok;
      case Reg::RasLinkRetry: {
        // Link retry protocol: replays[31:0] | abort-entries[47:32] |
        // dead-link bitmask[55:48].
        u64 dead = 0;
        for (usize l = 0; l < dev.links.size(); ++l) {
          if (dev.links[l].proto.dead) dead |= u64{1} << l;
        }
        value = (dev.stats.link_retries & 0xffffffffull) |
                ((dev.stats.link_abort_entries & 0xffffull) << 32) |
                (dead << 48);
        return Status::Ok;
      }
      case Reg::RasLinkToken: {
        // Token flow control: stalls[31:0] | min-tokens-now[47:32].
        i64 min_tokens = 0;
        if (dev.config().link_protocol) {
          min_tokens = resolved_link_tokens(dev.config());
          for (const LinkState& l : dev.links) {
            min_tokens = std::min(min_tokens, l.proto.tokens);
          }
        }
        value = (dev.stats.link_token_stalls & 0xffffffffull) |
                ((static_cast<u64>(std::max<i64>(min_tokens, 0)) & 0xffffull)
                 << 32);
        return Status::Ok;
      }
      default:
        break;
    }
  }
  return dev.regs.read_phys(phys_index, value);
}

Status Simulator::jtag_reg_read(u32 dev, u32 phys_index, u64& value) const {
  if (!initialized() || dev >= devices_.size()) return Status::InvalidArgument;
  return read_register_live(*devices_[dev], phys_index, value);
}

Status Simulator::jtag_reg_write(u32 dev, u32 phys_index, u64 value) {
  if (!initialized() || dev >= devices_.size()) return Status::InvalidArgument;
  // An RWS write re-arms a pending self-clear, so the next clock edge is
  // no longer a no-op; the fast path must re-prove eligibility.
  ff_invalidate();
  return devices_[dev]->regs.write_phys(phys_index, value);
}

// ---------------------------------------------------------------------------
// Clock engine.
// ---------------------------------------------------------------------------

void Simulator::clock() {
  // Once the watchdog has tripped — or a chaos invariant check has failed —
  // the machine is frozen for post-mortem inspection; further clocks are
  // refused.
  if (watchdog_fired_) return;
  if (chaos_) {
    if (chaos_->violated()) return;
    // Chaos events apply before any dispatch so they land at their exact
    // cycle on the staged and the fast-forward path alike (the fast path
    // advances one cycle per clock() and an applied event invalidates it).
    chaos_->apply_due(*this);
  }
  // Idle fast-forward: when the device set is provably idle, advance time
  // without executing the stages.  Bit-identical to the staged path — see
  // ff_arm() for the eligibility proof and docs/INTERNALS.md for the
  // horizon construction.
  if (config_.device.fast_forward) {
    if (profiler_) {
      const u64 t0 = StageProfiler::now_ns();
      const bool skipped = (ff_armed_ || ff_arm()) && ff_fast_cycle();
      profiler_->add_stage(ProfileStage::FastForward,
                           StageProfiler::now_ns() - t0);
      if (skipped) return;
    } else if ((ff_armed_ || ff_arm()) && ff_fast_cycle()) {
      return;
    }
  }
  // The staged path is about to run: any open skip span ends here.
  if (ff_span_len_ != 0) ff_close_skip_span();
  if (profiler_) {
    profiler_->note_staged_cycle();
    u64 t0 = StageProfiler::now_ns();
    stage1_child_xbar();
    u64 t1 = StageProfiler::now_ns();
    profiler_->add_stage(ProfileStage::Stage1Xbar, t1 - t0);
    stage2_root_xbar();
    t0 = StageProfiler::now_ns();
    profiler_->add_stage(ProfileStage::Stage2RootXbar, t0 - t1);
    stage3_and_4_vaults();
    t1 = StageProfiler::now_ns();
    profiler_->add_stage(ProfileStage::Stage34Vaults, t1 - t0);
    stage5_responses();
    t0 = StageProfiler::now_ns();
    profiler_->add_stage(ProfileStage::Stage5Responses, t0 - t1);
    stage6_clock_update();
    t1 = StageProfiler::now_ns();
    profiler_->add_stage(ProfileStage::Stage6Clock, t1 - t0);
  } else {
    stage1_child_xbar();
    stage2_root_xbar();
    stage3_and_4_vaults();
    stage5_responses();
    stage6_clock_update();
  }
  if (config_.device.watchdog_cycles != 0) check_watchdog();
}

void Simulator::ff_close_skip_span() {
  if (ff_span_len_ == 0) return;
  if (profiler_) profiler_->note_skip_span();
  if (recorder_) {
    // Spans are global (the whole device set was idle); record once, on
    // device 0's ring.  cycle_ is the first cycle after the span.
    FlightEvent ev;
    ev.cycle = cycle_;
    ev.arg = ff_span_len_;
    ev.type = FlightEventType::FfSkipSpan;
    recorder_->record(0, ev);
  }
  ff_span_len_ = 0;
}

bool Simulator::dump_flight_recorder(std::ostream& os) {
  if (!recorder_) return false;
  ff_close_skip_span();
  recorder_->dump_text(os);
  return true;
}

bool Simulator::dump_flight_recorder_chrome(std::ostream& os) {
  if (!recorder_) return false;
  ff_close_skip_span();
  recorder_->dump_chrome(os);
  return true;
}

void Simulator::record_event(ShardCtx& ctx, FlightEventType type, u32 dev,
                             u8 stage, u16 unit, u64 arg) {
  if (!recorder_) return;
  FlightEvent ev;
  ev.cycle = cycle_;
  ev.arg = arg;
  ev.dev = dev;
  ev.unit = unit;
  ev.stage = stage;
  ev.type = type;
  if (ctx.events != nullptr) {
    ctx.events->push_back(ev);
  } else {
    recorder_->record(dev, ev);
  }
}

void Simulator::record_event_direct(FlightEventType type, u32 dev, u8 stage,
                                    u16 unit, u64 arg) {
  if (!recorder_) return;
  FlightEvent ev;
  ev.cycle = cycle_;
  ev.arg = arg;
  ev.dev = dev;
  ev.unit = unit;
  ev.stage = stage;
  ev.type = type;
  recorder_->record(dev, ev);
}

void Simulator::record_watchdog_event(FlightEventType type, u64 arg) {
  if (!recorder_) return;
  // The watchdog is a whole-simulator condition: every device's post-mortem
  // window should show the transition.
  for (u32 d = 0; d < num_devices(); ++d) {
    record_event_direct(type, d, 0, 0, arg);
  }
}

void Simulator::sample_telemetry() {
  const DeviceConfig& cfg = config_.device;
  const i64 pool = cfg.link_protocol ? resolved_link_tokens(cfg) : 0;
  for (u32 d = 0; d < num_devices(); ++d) {
    const Device& dev = *devices_[d];
    for (u32 l = 0; l < cfg.num_links; ++l) {
      const LinkState& link = dev.links[l];
      telemetry_->sample(TelemetryTrack::XbarRqst, d, link.rqst.size());
      telemetry_->sample(TelemetryTrack::XbarRsp, d, link.rsp.size());
      if (cfg.link_protocol) {
        // Deficit view: 0 = full credit pool, pool-size = fully drawn.
        const i64 deficit = pool - link.proto.tokens;
        telemetry_->sample(TelemetryTrack::LinkTokens, d,
                           deficit > 0 ? static_cast<u64>(deficit) : 0);
        telemetry_->sample(TelemetryTrack::LinkRetryBuf, d,
                           link.proto.retry_buf_flits);
      }
    }
    for (const VaultState& vault : dev.vaults) {
      telemetry_->sample(TelemetryTrack::VaultRqst, d, vault.rqst.size());
      telemetry_->sample(TelemetryTrack::VaultRsp, d, vault.rsp.size());
    }
  }
  telemetry_->note_sample_pass();
}

bool Simulator::ff_queues_idle() const {
  for (const auto& dev_ptr : devices_) {
    const Device& dev = *dev_ptr;
    if (!dev.mode_rsp.empty()) return false;
    for (u32 l = 0; l < config_.device.num_links; ++l) {
      const LinkState& link = dev.links[l];
      if (!link.rqst.empty()) return false;
      // A packet held for replay lives outside the queues but still has
      // a pending retrain-timer event the fast path cannot emulate.
      if (link.proto.replay_pending) return false;
      // Host-link responses are inert (stage 5 skips host links; only
      // recv() pops them, and recv() invalidates), so they do not block.
      if (!link.rsp.empty() &&
          topo_.endpoint(CubeId{dev.id()}, LinkId{l}).kind ==
              EndpointKind::Device) {
        return false;
      }
    }
    for (const auto& vault : dev.vaults) {
      if (!vault.rqst.empty() || !vault.rsp.empty()) return false;
    }
  }
  return true;
}

bool Simulator::ff_arm() {
  if (!ff_queues_idle()) return false;
  const DeviceConfig& cfg = config_.device;
  // A staged pass over an idle device still mutates per-cycle state; the
  // fast path arms only once every such mutation has reached its fixed
  // point, so skipping a cycle leaves exactly the bytes the stages would:
  //   * link budget refills  b = min(b, 0) + flits_per_cycle  are identity
  //     once b equals the refill quantum (reached within a cycle or two of
  //     the queues draining);
  //   * regs.clock_edge() is a no-op once no RWS self-clear is pending.
  const i64 steady = cfg.xbar_flits_per_cycle;
  for (const auto& dev_ptr : devices_) {
    const Device& dev = *dev_ptr;
    if (dev.regs.any_pending_self_clear()) return false;
    // Link-layer quiescence: token pools at their fixed point, no replay
    // or abort state pending.  (Stuck-link retraining windows are pure
    // arithmetic on the cycle counter and need no stop cycle.)
    if (!LinkLayer::quiescent(dev, cycle_)) return false;
    for (u32 l = 0; l < cfg.num_links; ++l) {
      const LinkState& link = dev.links[l];
      if (link.rqst_budget != steady) return false;
      // Response budgets refill only on device-to-device links (stage 5
      // never touches host links), so host-link rsp budgets sit at their
      // last value and need no check.
      if (topo_.endpoint(CubeId{dev.id()}, LinkId{l}).kind ==
              EndpointKind::Device &&
          link.rsp_budget != steady) {
        return false;
      }
    }
  }

  // Stop cycle: the first clock whose staged pass has an effect the fast
  // path does not emulate.  The call at cycle c runs a scrub step when
  // c % scrub_interval == 0, fires vault v's refresh when
  // (c + offset_v) % refresh_interval == 0, and fires the cycle hook when
  // (c + 1) % hook_interval == 0 (the hook sees the post-increment count).
  constexpr Cycle kNoStopCycle = ~Cycle{0};
  Cycle stop = kNoStopCycle;
  if (cfg.scrub_interval_cycles != 0) {
    const Cycle interval = cfg.scrub_interval_cycles;
    const Cycle rem = cycle_ % interval;
    stop = std::min(stop, rem == 0 ? cycle_ : cycle_ + (interval - rem));
  }
  if (hook_interval_ != 0 && cycle_hook_) {
    const Cycle h = hook_interval_;
    stop = std::min(stop, ((cycle_ + 1 + h - 1) / h) * h - 1);
  }
  // Telemetry sampling rides the same stage-6 dispatch point as the hook
  // and must keep its cadence through a skip.  This shortens skip spans
  // when telemetry is on, but sampling reads state the skip leaves frozen,
  // so simulated bytes stay identical.
  if (telemetry_ && cfg.telemetry_interval_cycles != 0) {
    const Cycle h = cfg.telemetry_interval_cycles;
    stop = std::min(stop, ((cycle_ + 1 + h - 1) / h) * h - 1);
  }
  if (cfg.refresh_interval_cycles != 0) {
    const Cycle interval = cfg.refresh_interval_cycles;
    for (u32 v = 0; v < cfg.num_vaults(); ++v) {
      const Cycle offset = Cycle{v} * interval / cfg.num_vaults();
      const Cycle rem = (cycle_ + offset) % interval;
      stop = std::min(stop, rem == 0 ? cycle_ : cycle_ + (interval - rem));
    }
  }
  if (chaos_) {
    // Pending plan events are event-horizon entries: the skip must hand
    // the clock at an event's cycle back to clock(), which applies it and
    // re-proves eligibility against the mutated state.
    stop = std::min(stop, chaos_->next_event_cycle());
    // Invariant-check cadence rides the stage-6 post-increment dispatch
    // like the cycle hook, so cadence cycles must execute staged — both to
    // keep the check count deterministic across execution modes and to
    // detect a violation at the same first cycle the staged path would.
    if (cfg.chaos_invariants != 0) {
      const Cycle h = cfg.chaos_invariants;
      stop = std::min(stop, ((cycle_ + 1 + h - 1) / h) * h - 1);
    }
  }
  if (stop <= cycle_) return false;  // this very call has a bounded event
  ff_stop_cycle_ = stop;

  // Freeze the watchdog's inputs: across fast cycles no queue changes and
  // no stat in the progress fingerprint moves (refresh/scrub cycles are
  // outside the skip), so quiescence and the fingerprint are invariant.
  if (cfg.watchdog_cycles != 0) {
    ff_quiescent_ = quiescent();
    ff_fingerprint_ = progress_fingerprint();
  }
  ff_armed_ = true;
  return true;
}

bool Simulator::ff_fast_cycle() {
  // Re-verify emptiness every call: tests (and embedders) may reach
  // through device() and push queue entries directly between clocks.
  if (cycle_ >= ff_stop_cycle_ || !ff_queues_idle()) {
    ff_armed_ = false;
    return false;
  }
  ++cycle_;
  ++cycles_skipped_;
  if (profiler_ || recorder_) {
    if (profiler_) profiler_->note_fast_cycle();
    ++ff_span_len_;
  }
  // check_watchdog(), verbatim, against the frozen arm-time facts.  Host
  // responses awaiting recv() keep quiescence false with a constant
  // fingerprint, so the stall count must keep climbing during a skip —
  // and may trip the watchdog mid-skip, freezing the machine exactly as
  // the staged path would.
  if (config_.device.watchdog_cycles != 0) {
    if (ff_quiescent_) {
      watchdog_stall_cycles_ = 0;
    } else if (watchdog_fingerprint_ != ff_fingerprint_) {
      watchdog_fingerprint_ = ff_fingerprint_;
      watchdog_stall_cycles_ = 0;
    } else {
      if (++watchdog_stall_cycles_ == 1) {
        record_watchdog_event(FlightEventType::WatchdogArm,
                              config_.device.watchdog_cycles);
      }
      if (watchdog_stall_cycles_ >= config_.device.watchdog_cycles) {
        watchdog_fired_ = true;
        ff_close_skip_span();
        record_watchdog_event(FlightEventType::WatchdogFire,
                              watchdog_stall_cycles_);
        watchdog_report_ = build_watchdog_report();
        ff_armed_ = false;
      }
    }
  }
  return true;
}

void Simulator::run_shards(u32 num_shards, const std::function<void(u32)>& fn) {
  if (pool_) {
    pool_->parallel_for(num_shards, fn);
  } else {
    for (u32 s = 0; s < num_shards; ++s) fn(s);
  }
}

void Simulator::stage1_child_xbar() { run_xbar_stage(child_devices_, 1); }

void Simulator::stage2_root_xbar() { run_xbar_stage(root_devices_, 2); }

void Simulator::run_xbar_stage(const std::vector<u32>& devs, u8 stage) {
  if (devs.empty()) return;
  const u32 links = config_.device.num_links;
  const bool multi_device = devices_.size() > 1;
  if (multi_device) {
    // Pre-stage capacity snapshot: the base against which every shard
    // reserves cross-device forward slots during the parallel phase.
    for (usize d = 0; d < devices_.size(); ++d) {
      for (u32 l = 0; l < links; ++l) {
        xbar_free_[d * links + l] =
            static_cast<u32>(devices_[d]->links[l].rqst.free_slots());
      }
    }
  }
  auto shard = [&](u32 s) {
    const u64 t0 = profiler_ ? StageProfiler::now_ns() : 0;
    Device& dev = *devices_[devs[s]];
    XbarScratch& sc = xbar_scratch_[s];
    sc.trace.clear();
    sc.events.clear();
    sc.outbox.clear();
    if (multi_device) std::fill(sc.staged.begin(), sc.staged.end(), 0u);
    ShardCtx ctx;
    ctx.stats = &dev.stats;  // shard == device: counters are exclusive
    ctx.trace = &sc.trace;
    ctx.events = &sc.events;
    process_xbar(dev, stage, ctx, sc);
    if (profiler_) {
      // The shard IS the device, so the accounting slot is exclusive.
      profiler_->add_device(stage == 1 ? ProfileStage::Stage1Xbar
                                       : ProfileStage::Stage2RootXbar,
                            devs[s], StageProfiler::now_ns() - t0);
    }
  };
  run_shards(static_cast<u32>(devs.size()), shard);
  // Barrier merge: emit the buffered trace records (and flight-recorder
  // events) in fixed shard order.
  for (usize s = 0; s < devs.size(); ++s) {
    for (const TraceRecord& rec : xbar_scratch_[s].trace) tracer_.emit(rec);
    xbar_scratch_[s].trace.clear();
    if (recorder_) {
      for (const FlightEvent& ev : xbar_scratch_[s].events) {
        recorder_->record(ev.dev, ev);
      }
    }
    xbar_scratch_[s].events.clear();
  }
  if (multi_device) flush_outboxes(devs, stage);
}

void Simulator::flush_outboxes(const std::vector<u32>& devs, u8 stage) {
  const u32 links = config_.device.num_links;
  for (usize s = 0; s < devs.size(); ++s) {
    XbarScratch& sc = xbar_scratch_[s];
    if (sc.outbox.empty()) continue;
    Device& src = *devices_[devs[s]];
    // The parallel phase reserved against a per-source snapshot, so
    // combined staging from several sources can still overfill one
    // destination.  Losers bounce back to the head of their source queue;
    // a bounced destination is marked so later same-destination forwards
    // from this source bounce too, preserving stream order.
    std::fill(bounce_mark_.begin(), bounce_mark_.end(), u8{0});
    bounced_.clear();
    for (StagedForward& fwd : sc.outbox) {
      const usize slot = usize{fwd.dst_dev} * links + fwd.dst_link;
      Device& peer = *devices_[fwd.dst_dev];
      const PhysAddr addr = fwd.entry.req.addr;
      const Tag tag = fwd.entry.req.tag;
      const Command cmd = fwd.entry.req.cmd;
      bool committed = false;  // the hop landed (or is the peer's to replay)
      bool consumed = false;   // the entry left this device for good
      if (bounce_mark_[slot] == 0 && !peer.links[fwd.dst_link].rqst.full()) {
        if (config_.device.link_protocol) {
          // The hop is a link transmission: it passes through the peer's
          // ingress reliability layer.  Capture the source-side retry
          // pointer before arrive() re-stamps the tail for the peer.
          const u8 src_frp = fwd.entry.req.frp;
          switch (LinkLayer::arrive(peer, fwd.dst_link, fwd.entry, cycle_)) {
            case LinkArrival::Corrupted:
              record_event_direct(FlightEventType::LinkIrtry, fwd.dst_dev,
                                  stage, static_cast<u16>(fwd.dst_link), tag);
              [[fallthrough]];
            case LinkArrival::Accepted:
              // Either way the transmission left this device — a corrupted
              // hop is now the peer's error-abort machine's to recover.
              committed = consumed = true;
              LinkLayer::complete(src, fwd.src_link, fwd.flits, src_frp);
              break;
            case LinkArrival::TokenStall:
              break;  // bounce below
            case LinkArrival::Dead: {
              // The peer's ingress is dead: the packet dies here with a
              // host-visible LINK_FAILED (bounce when staging is full).
              ShardCtx sctx;
              sctx.stats = &src.stats;
              if (emit_error_response(src, fwd.entry, ErrStat::LinkFailed,
                                      stage, sctx)) {
                LinkLayer::complete(src, fwd.src_link, fwd.flits, src_frp);
                consumed = true;
              }
              break;
            }
          }
        } else {
          (void)peer.links[fwd.dst_link].rqst.push(std::move(fwd.entry));
          committed = consumed = true;
        }
      }
      if (committed) {
        ++src.stats.route_hops;
        trace(TraceEvent::RouteHop, stage, src.id(), fwd.out_link, kNoCoord,
              kNoCoord, kNoCoord, addr, tag, cmd);
        src.links[fwd.src_link].rqst_flits_forwarded += fwd.flits;
      } else if (!consumed) {
        bounce_mark_[slot] = 1;
        ++src.stats.xbar_rqst_stalls;
        trace(TraceEvent::XbarRqstStall, stage, src.id(), fwd.src_link,
              kNoCoord, kNoCoord, kNoCoord, addr, tag, cmd);
        record_event_direct(FlightEventType::Backpressure, src.id(), stage,
                            static_cast<u16>(fwd.src_link),
                            /*kind: cross-device bounce*/ 2);
        // Restore the ingress fields the parallel phase rewrote for the
        // destination; the consumed link budget stays consumed (the wasted
        // transmission time is the cost of the lost arbitration).
        fwd.entry.ingress_link = fwd.src_ingress;
        fwd.entry.penalty_applied = fwd.src_penalty;
        bounced_.push_back(std::move(fwd));
      }
    }
    // Reinstate bounced entries at their source queue heads; reverse
    // iteration restores their original relative order.
    for (auto it = bounced_.rbegin(); it != bounced_.rend(); ++it) {
      src.links[it->src_link].rqst.push_front(std::move(it->entry));
    }
    bounced_.clear();
  }
}

Simulator::LegacyFault Simulator::legacy_link_fault(Device& dev,
                                                    LinkState& link_state,
                                                    RequestEntry& entry,
                                                    u8 stage, ShardCtx& ctx) {
  const DeviceConfig& cfg = dev.config();
  if (cfg.link_protocol || cfg.link_error_rate_ppm == 0 ||
      dev.fault_rng.next_below(1'000'000) >= cfg.link_error_rate_ppm) {
    return LegacyFault::None;
  }
  // The transmission is corrupted.  With retry budget remaining — and a
  // retry-buffer copy whose CRC still checks out (the model used to charge
  // the retransmission without ever re-validating the stored copy) — the
  // link replays the packet, costing the transmission's link time.  Once
  // the budget is exhausted the packet dies and an ERROR response with
  // CRC_FAILURE returns to the host.
  if (entry.retries < cfg.link_retry_limit && check_crc(entry.pkt)) {
    ++entry.retries;
    ++dev.stats.link_retries;
    link_state.rqst_budget -= entry.pkt.flits;  // wasted link time
    record_event(ctx, FlightEventType::LinkRetry, dev.id(), stage,
                 static_cast<u16>(&link_state - dev.links.data()),
                 entry.retries);
    return LegacyFault::Replay;
  }
  if (emit_error_response(dev, entry, ErrStat::CrcFailure, stage, ctx)) {
    ++dev.stats.link_errors;
    return LegacyFault::Killed;
  }
  return LegacyFault::Blocked;
}

bool Simulator::step_link_protocol(Device& dev, u32 link, u8 stage,
                                   ShardCtx& ctx) {
  LinkState& link_state = dev.links[link];
  LinkProtoState& st = link_state.proto;
  if (st.dead) {
    // First sighting of the escalation: one LINK_FAILED event per link.
    // (LinkProtoState is checkpointed, so the logged bit lives simulator-
    // side in fr_dead_logged_; the shard owns its device's mask.)
    if (recorder_ && (fr_dead_logged_[dev.id()] >> link & 1) == 0) {
      fr_dead_logged_[dev.id()] |= u64{1} << link;
      record_event(ctx, FlightEventType::LinkFailed, dev.id(), stage,
                   static_cast<u16>(link), st.fail_count);
    }
    // Dead-link drain: every queued request was accepted (tokens debited)
    // before escalation, so completion returns its credits and the
    // conservation identity debited == returned + in-flight survives.
    while (!link_state.rqst.empty()) {
      RequestEntry& head = link_state.rqst.front();
      const u32 flits = head.pkt.flits;
      const u8 frp = head.req.frp;
      if (!emit_error_response(dev, head, ErrStat::LinkFailed, stage, ctx)) {
        break;  // staging full; drain the remainder next cycle
      }
      LinkLayer::complete(dev, link, flits, frp);
      (void)link_state.rqst.pop_front();
    }
    return false;
  }
  if (LinkLayer::retraining(dev, link, cycle_) &&
      (st.replay_pending || !link_state.rqst.empty())) {
    ++dev.stats.link_retrain_cycles;
    // Record the window-open edge only (a loaded retraining window can
    // last hundreds of cycles; one event per window keeps the ring useful).
    if (recorder_ &&
        (cycle_ == 0 || !LinkLayer::retraining(dev, link, cycle_ - 1))) {
      record_event(ctx, FlightEventType::LinkRetrain, dev.id(), stage,
                   static_cast<u16>(link),
                   st.retrain_until > cycle_ ? st.retrain_until - cycle_ : 0);
    }
  }
  if (st.replay_pending && !dev.mode_rsp.full()) {
    RequestEntry failed;
    if (LinkLayer::step_replay(dev, link, cycle_, failed)) {
      // Retry budget exhausted (or a corrupt retry-buffer copy): the packet
      // dies as a CRC failure.  The emit cannot fail — mode_rsp space was
      // checked before stepping the replay machine.
      (void)emit_error_response(dev, failed, ErrStat::CrcFailure, stage, ctx);
      ++dev.stats.link_errors;
    }
  }
  return true;
}

void Simulator::process_xbar(Device& dev, u8 stage, ShardCtx& ctx,
                             XbarScratch& sc) {
  const DeviceConfig& cfg = dev.config();
  for (u32 link = 0; link < cfg.num_links; ++link) {
    LinkState& link_state = dev.links[link];
    BoundedQueue<RequestEntry>& queue = link_state.rqst;
    // Refill the serialization budget; unused bandwidth does not bank
    // beyond one cycle.
    link_state.rqst_budget =
        std::min<i64>(link_state.rqst_budget, 0) + cfg.xbar_flits_per_cycle;
    if (cfg.link_protocol && !step_link_protocol(dev, link, stage, ctx)) {
      continue;  // dead link: the queue drains as LINK_FAILED errors
    }
    if (queue.empty()) continue;
    u64 blocked_vaults = 0;   // local vaults that must not be passed
    u32 blocked_links = 0;    // peer-forwarding links that are full
    bool mode_blocked = false;

    usize i = 0;
    while (i < queue.size() && link_state.rqst_budget > 0) {
      RequestEntry& entry = queue.at(i);
      const u32 cub = entry.req.cub;

      // ---- packets for other cubes: forward one hop ---------------------
      if (cub != dev.id()) {
        const auto hops = cub >= devices_.size()
                              ? std::vector<LinkId>{}
                              : topo_.next_hops(CubeId{dev.id()}, CubeId{cub});
        if (hops.empty()) {
          // Nonexistent or unreachable cube: deliberate misconfiguration.
          // Count the misroute only when the error response actually lands
          // (a full staging queue retries next cycle).
          if (emit_error_response(dev, entry, ErrStat::Unroutable, stage,
                                  ctx)) {
            ++dev.stats.misroutes;
            trace_to(ctx, TraceEvent::Misroute, stage, dev.id(), link,
                     kNoCoord, kNoCoord, kNoCoord, entry.req.addr,
                     entry.req.tag, entry.req.cmd);
            link_state.rqst_budget -= entry.pkt.flits;
            if (cfg.link_protocol) {
              LinkLayer::complete(dev, link, entry.pkt.flits, entry.req.frp);
            }
            queue.remove(i);
            continue;
          }
          ++i;
          continue;
        }
        // Equal-cost multipath: the trunk link is chosen by a deterministic
        // hash of (ingress link, destination bank), so each link-to-bank
        // stream always rides one trunk and stays ordered while aggregate
        // traffic spreads across every parallel link.
        const u32 bank_hash = dev.address_map().in_range(entry.req.addr)
                                  ? dev.address_map().bank_of(entry.req.addr)
                                  : static_cast<u32>(entry.req.addr);
        const u32 out_link =
            hops[(entry.ingress_link * 7 + bank_hash) % hops.size()].get();
        if (entry.ready_cycle > cycle_ || (blocked_links & (1u << out_link))) {
          blocked_links |= 1u << out_link;
          ++i;
          continue;
        }
        // Injected link error (legacy abstract model; under link_protocol
        // the roll already happened at arrival and this is a no-op).
        switch (legacy_link_fault(dev, link_state, entry, stage, ctx)) {
          case LegacyFault::None:
            break;
          case LegacyFault::Replay:
            blocked_links |= 1u << out_link;  // nothing may pass the replay
            ++i;
            continue;
          case LegacyFault::Killed:
            link_state.rqst_budget -= entry.pkt.flits;
            queue.remove(i);
            continue;
          case LegacyFault::Blocked:
            ++i;
            continue;
        }
        const LinkEndpoint& e =
            topo_.endpoint(CubeId{dev.id()}, LinkId{out_link});
        // Two-phase forward: the destination queue belongs to another
        // device, so the actual push happens serially at the stage barrier
        // (flush_outboxes).  Capacity here is reserved against the
        // pre-stage free-slot snapshot minus this device's own staged
        // entries; over-commitment from several sources resolves at the
        // flush, which bounces losers back to this queue's head.
        const usize slot = usize{e.peer_dev} * cfg.num_links + e.peer_link;
        if (sc.staged[slot] >= xbar_free_[slot]) {
          ++dev.stats.xbar_rqst_stalls;
          trace_to(ctx, TraceEvent::XbarRqstStall, stage, dev.id(), link,
                   kNoCoord, kNoCoord, kNoCoord, entry.req.addr,
                   entry.req.tag, entry.req.cmd);
          record_event(ctx, FlightEventType::Backpressure, dev.id(), stage,
                       static_cast<u16>(link), /*kind: peer reserve full*/ 0);
          blocked_links |= 1u << out_link;
          ++i;
          continue;
        }
        ++sc.staged[slot];
        StagedForward fwd;
        fwd.entry = entry;  // copy; remove() below invalidates
        fwd.src_ingress = entry.ingress_link;
        fwd.src_penalty = entry.penalty_applied;
        fwd.entry.ready_cycle = cycle_ + 1;
        fwd.entry.ingress_link = e.peer_link;
        fwd.entry.penalty_applied = false;  // penalty is per-device locality
        fwd.src_link = link;
        fwd.out_link = out_link;
        fwd.dst_dev = e.peer_dev;
        fwd.dst_link = e.peer_link;
        fwd.flits = entry.pkt.flits;
        sc.outbox.push_back(std::move(fwd));
        // RouteHop accounting (route_hops, flits_forwarded, the trace
        // record) lands at the flush, when the hop actually commits.
        link_state.rqst_budget -= entry.pkt.flits;
        queue.remove(i);
        continue;
      }

      // ---- register access requests terminate at the crossbar ------------
      if (is_mode(entry.req.cmd)) {
        // The staging-space check precedes the register access: a full
        // queue must not re-execute the (side-effecting) operation when
        // the entry retries next cycle.
        if (entry.ready_cycle > cycle_ || mode_blocked ||
            dev.mode_rsp.full()) {
          mode_blocked = true;
          ++i;
          continue;
        }
        const u32 phys_index = static_cast<u32>(entry.req.addr);
        ResponseFields rf;
        rf.tag = entry.req.tag;
        rf.cub = dev.id();
        rf.slid = entry.req.slid;
        ResponseEntry rsp;
        rsp.home_dev = entry.home_dev;
        rsp.home_link = entry.home_link;
        rsp.tag = entry.req.tag;
        Status rs;
        if (entry.req.cmd == Command::ModeRead) {
          u64 value = 0;
          rs = read_register_live(dev, phys_index, value);
          if (ok(rs)) {
            rf.cmd = Command::ModeReadResponse;
            const u64 payload[2] = {value, 0};
            (void)encode_response(rf, payload, rsp.pkt);
          }
        } else {
          rs = dev.regs.write_phys(phys_index,
                                   entry.pkt.payload().empty()
                                       ? 0
                                       : entry.pkt.payload()[0]);
          if (ok(rs)) {
            rf.cmd = Command::ModeWriteResponse;
            (void)encode_response(rf, {}, rsp.pkt);
          }
        }
        if (!ok(rs)) {
          rf.cmd = Command::Error;
          rf.errstat = ErrStat::RegisterFault;
          (void)encode_response(rf, {}, rsp.pkt);
          ++dev.stats.error_responses;
          trace_to(ctx, TraceEvent::ErrorResponse, stage, dev.id(), link,
                   kNoCoord, kNoCoord, kNoCoord, entry.req.addr,
                   entry.req.tag, entry.req.cmd);
        }
        rsp.cmd = field::cmd_of(rsp.pkt.header());
        rsp.ready_cycle = cycle_ + 1;
        // Space was reserved above; this push cannot fail.
        (void)dev.mode_rsp.push(std::move(rsp));
        ++dev.stats.mode_ops;
        trace_to(ctx, TraceEvent::ModeRequest, stage, dev.id(), link,
                 kNoCoord, kNoCoord, kNoCoord, entry.req.addr, entry.req.tag,
                 entry.req.cmd);
        link_state.rqst_flits_forwarded += entry.pkt.flits;
        link_state.rqst_budget -= entry.pkt.flits;
        if (cfg.link_protocol) {
          LinkLayer::complete(dev, link, entry.pkt.flits, entry.req.frp);
        }
        queue.remove(i);
        continue;
      }

      // ---- local memory requests: route to the destination vault ---------
      if (!dev.address_map().in_range(entry.req.addr)) {
        if (emit_error_response(dev, entry, ErrStat::InvalidAddress, stage,
                                ctx)) {
          link_state.rqst_budget -= entry.pkt.flits;
          if (cfg.link_protocol) {
            LinkLayer::complete(dev, link, entry.pkt.flits, entry.req.frp);
          }
          queue.remove(i);
          continue;
        }
        ++i;
        continue;
      }
      u32 vault = dev.address_map().vault_of(entry.req.addr);

      // Degraded mode: traffic for a failed vault is remapped to its
      // partner (vault ^ 1) when configured and alive, else answered
      // VAULT_FAILED — never forwarded into a dead queue.
      bool remapped = false;
      if (dev.ras.failed_vaults != 0 && !dev.vault_alive(vault)) {
        const u32 partner = vault ^ 1;
        if (cfg.vault_remap && dev.vault_alive(partner)) {
          vault = partner;
          remapped = true;
        } else if (emit_error_response(dev, entry, ErrStat::VaultFailed,
                                       stage, ctx)) {
          ++dev.stats.degraded_drops;
          link_state.rqst_budget -= entry.pkt.flits;
          if (cfg.link_protocol) {
            LinkLayer::complete(dev, link, entry.pkt.flits, entry.req.frp);
          }
          queue.remove(i);
          continue;
        } else {
          ++i;
          continue;
        }
      }

      // Routed-latency penalty: the packet entered on a link that is not
      // co-located with the destination quadrant.  Pay it once per device.
      if (!entry.penalty_applied &&
          dev.quad_of_link(entry.ingress_link) != dev.quad_of_vault(vault)) {
        entry.penalty_applied = true;
        entry.ready_cycle =
            std::max(entry.ready_cycle, cycle_ + cfg.nonlocal_penalty_cycles);
        ++dev.stats.latency_penalties;
        trace_to(ctx, TraceEvent::LatencyPenalty, stage, dev.id(), link,
                 dev.quad_of_vault(vault), vault, kNoCoord, entry.req.addr,
                 entry.req.tag, entry.req.cmd);
      }

      if (entry.ready_cycle > cycle_ || (blocked_vaults & (u64{1} << vault))) {
        blocked_vaults |= u64{1} << vault;
        ++i;
        continue;
      }

      // Injected link error on the internal hop (see above).
      switch (legacy_link_fault(dev, link_state, entry, stage, ctx)) {
        case LegacyFault::None:
          break;
        case LegacyFault::Replay:
          blocked_vaults |= u64{1} << vault;  // preserve stream order
          ++i;
          continue;
        case LegacyFault::Killed:
          link_state.rqst_budget -= entry.pkt.flits;
          queue.remove(i);
          continue;
        case LegacyFault::Blocked:
          ++i;
          continue;
      }

      RequestEntry moved = entry;
      moved.ready_cycle = cycle_ + 1;
      moved.life.vault_arrive = cycle_;
      if (!dev.vaults[vault].rqst.push(std::move(moved))) {
        ++dev.stats.xbar_rqst_stalls;
        trace_to(ctx, TraceEvent::XbarRqstStall, stage, dev.id(), link,
                 dev.quad_of_vault(vault), vault, kNoCoord, entry.req.addr,
                 entry.req.tag, entry.req.cmd);
        record_event(ctx, FlightEventType::Backpressure, dev.id(), stage,
                     static_cast<u16>(link), /*kind: vault queue full*/ 1);
        blocked_vaults |= u64{1} << vault;
        ++i;
        continue;
      }
      if (remapped) ++dev.stats.vault_remaps;
      trace_to(ctx, TraceEvent::VaultArrival, stage, dev.id(), link,
               dev.quad_of_vault(vault), vault, kNoCoord, entry.req.addr,
               entry.req.tag, entry.req.cmd);
      link_state.rqst_flits_forwarded += entry.pkt.flits;
      link_state.rqst_budget -= entry.pkt.flits;
      if (cfg.link_protocol) {
        LinkLayer::complete(dev, link, entry.pkt.flits, entry.req.frp);
      }
      queue.remove(i);
    }
  }
}

void Simulator::scan_bank_conflicts(Device& dev, u32 vault_index,
                                    ShardCtx& ctx) {
  const DeviceConfig& cfg = dev.config();
  const u32 window = cfg.conflict_window == 0
                         ? static_cast<u32>(cfg.vault_depth)
                         : cfg.conflict_window;
  VaultState& vault = dev.vaults[vault_index];
  if (vault.rqst.empty()) return;
  u32 seen_banks = 0;
  const usize limit = std::min<usize>(window, vault.rqst.size());
  for (usize i = 0; i < limit; ++i) {
    RequestEntry& entry = vault.rqst.at(i);
    if (entry.ready_cycle > cycle_) continue;
    const u32 bank = dev.address_map().bank_of(entry.req.addr);
    const bool busy = vault.bank_busy_until[bank] > cycle_;
    const bool duplicated = (seen_banks & (1u << bank)) != 0;
    seen_banks |= 1u << bank;
    if (busy || duplicated) {
      if (entry.life.first_conflict == 0) {
        entry.life.first_conflict = cycle_;
      }
      ++ctx.stats->bank_conflicts;
      trace_to(ctx, TraceEvent::BankConflict, 3, dev.id(), kNoCoord,
               dev.quad_of_vault(vault_index), vault_index, bank,
               entry.req.addr, entry.req.tag, entry.req.cmd);
    }
  }
}

void Simulator::stage3_and_4_vaults() {
  const u32 vaults = config_.device.num_vaults();
  const u32 total = static_cast<u32>(devices_.size()) * vaults;
  // Stage-start snapshot of the failure masks: shard selection and the
  // serial drain below read a stable copy; bits earned during this stage
  // accumulate per shard and merge at the barrier.
  for (usize d = 0; d < devices_.size(); ++d) {
    failed_snapshot_[d] = devices_[d]->ras.failed_vaults;
  }
  // Per-vault attribution is sampled 1 cycle in 16: two clock reads per
  // vault per cycle would dominate the profiler's own cost on many-vault
  // devices, and the per-vault table only needs relative weights.  The
  // sampling key is the deterministic cycle counter, never wall time.
  const bool time_vaults = profiler_ != nullptr && (cycle_ & 0xF) == 0;
  auto shard = [&](u32 s) {
    const u64 t0 = time_vaults ? StageProfiler::now_ns() : 0;
    const u32 d = s / vaults;
    const u32 v = s % vaults;
    Device& dev = *devices_[d];
    VaultScratch& sc = vault_scratch_[s];
    sc.stats = DeviceStats{};
    sc.trace.clear();
    sc.events.clear();
    ShardCtx ctx;
    ctx.stats = &sc.stats;
    ctx.trace = &sc.trace;
    ctx.events = &sc.events;
    // Stage 3 scans every vault's conflict window (failed vaults
    // included, as the serial engine did); stage 4 then retires on the
    // same shard.  All state both touch is per-vault, and for one vault
    // the scan-then-retire order matches the serial stage sequence.
    scan_bank_conflicts(dev, v, ctx);
    if ((failed_snapshot_[d] >> v & 1) == 0) process_vault(dev, v, ctx);
    sc.pending_failed_vaults = ctx.pending_failed_vaults;
    sc.last_error_addr = ctx.last_error_addr;
    sc.last_error_stat = ctx.last_error_stat;
    sc.has_last_error = ctx.has_last_error;
    // The shard IS the (device, vault) pair: the slot is exclusive.
    if (time_vaults) profiler_->add_vault(d, v, StageProfiler::now_ns() - t0);
  };
  run_shards(total, shard);
  // Barrier merge in fixed (device, vault) shard order, independent of
  // thread count: stats, trace records, flight-recorder events, failure
  // bits, the RAS error log.
  for (u32 s = 0; s < total; ++s) {
    Device& dev = *devices_[s / vaults];
    VaultScratch& sc = vault_scratch_[s];
    dev.stats += sc.stats;
    for (const TraceRecord& rec : sc.trace) tracer_.emit(rec);
    sc.trace.clear();
    if (recorder_) {
      for (const FlightEvent& ev : sc.events) recorder_->record(ev.dev, ev);
    }
    sc.events.clear();
    dev.ras.failed_vaults |= sc.pending_failed_vaults;
    if (sc.has_last_error) {
      dev.ras.last_error_addr = sc.last_error_addr;
      dev.ras.last_error_stat = sc.last_error_stat;
    }
  }
  // Vaults already failed at stage start drain serially after the barrier:
  // their VAULT_FAILED error responses stage into the shared mode_rsp
  // queue, which no alive-vault shard touches.
  for (usize d = 0; d < devices_.size(); ++d) {
    if (failed_snapshot_[d] == 0) continue;
    Device& dev = *devices_[d];
    for (u32 v = 0; v < vaults; ++v) {
      if (failed_snapshot_[d] >> v & 1) drain_failed_vault(dev, v);
    }
  }
}

void Simulator::process_vault(Device& dev, u32 vault_index, ShardCtx& ctx) {
  const DeviceConfig& cfg = dev.config();
  VaultState& vault = dev.vaults[vault_index];

  // DRAM refresh: when this vault's (staggered) refresh slot comes due,
  // the timing backend takes every bank offline for the refresh window and
  // nothing retires.
  if (cfg.refresh_interval_cycles != 0) {
    const Cycle offset = Cycle{vault_index} * cfg.refresh_interval_cycles /
                         cfg.num_vaults();
    if ((cycle_ + offset) % cfg.refresh_interval_cycles == 0) {
      vault.timing->refresh(vault, cycle_, cfg.refresh_busy_cycles);
      ++ctx.stats->refreshes;
    }
  }

  if (vault.rqst.empty()) return;

  const bool strict = cfg.vault_schedule == VaultSchedule::StrictFifo;
  u32 retired = 0;
  u32 used_banks = 0;     // banks that already served a request this cycle
  u32 blocked_banks = 0;  // banks with an earlier, still-queued request
  bool rsp_stalled_logged = false;

  usize i = 0;
  while (i < vault.rqst.size()) {
    if (cfg.vault_drain_limit != 0 && retired >= cfg.vault_drain_limit) break;
    RequestEntry& entry = vault.rqst.at(i);
    if (entry.ready_cycle > cycle_) {
      if (strict) break;  // strict FIFO: nothing may pass the head
      // Not yet visible to this stage; it still holds its bank's order slot.
      blocked_banks |= 1u << dev.address_map().bank_of(entry.req.addr);
      ++i;
      continue;
    }
    const u32 bank = dev.address_map().bank_of(entry.req.addr);
    const u32 bit = 1u << bank;
    // Ordering gates (blocked/used) are the engine's; bank readiness is
    // the timing backend's.  Atomics and custom commands run at the vault
    // as read-modify-writes.
    const AccessClass access =
        entry.custom != nullptr || is_atomic(entry.req.cmd)
            ? AccessClass::Rmw
            : (is_write(entry.req.cmd) ? AccessClass::Write
                                       : AccessClass::Read);
    const BankGate gate = (blocked_banks & bit) || (used_banks & bit)
                              ? BankGate::Busy
                              : vault.timing->gate(vault, bank, access, cycle_);
    if (gate != BankGate::Ready) {
      if (gate == BankGate::Throttled) {
        ++ctx.stats->pcm_write_throttle_stalls;
      }
      if (strict) break;
      blocked_banks |= bit;
      ++i;
      continue;
    }
    // Non-posted requests need response queue space before they may retire.
    const bool entry_posted = entry.custom != nullptr
                                  ? entry.custom->response_flits == 0
                                  : is_posted(entry.req.cmd);
    if (!entry_posted && vault.rsp.full()) {
      ++ctx.stats->vault_rsp_stalls;
      if (!rsp_stalled_logged) {
        trace_to(ctx, TraceEvent::VaultRspStall, 4, dev.id(), kNoCoord,
                 dev.quad_of_vault(vault_index), vault_index, bank,
                 entry.req.addr, entry.req.tag, entry.req.cmd);
        record_event(ctx, FlightEventType::Backpressure, dev.id(), 4,
                     static_cast<u16>(vault_index),
                     /*kind: vault rsp full*/ 3);
        rsp_stalled_logged = true;
      }
      if (strict) break;
      blocked_banks |= bit;
      ++i;
      continue;
    }
    if (!retire_request(dev, vault_index, entry, ctx)) {
      if (strict) break;
      blocked_banks |= bit;
      ++i;
      continue;
    }
    used_banks |= bit;
    vault.timing->issue(vault, bank, dev.address_map().row_of(entry.req.addr),
                        access, cycle_, *ctx.stats);
    vault.rqst.remove(i);
    ++retired;
  }
}

bool Simulator::retire_request(Device& dev, u32 vault_index,
                               RequestEntry& entry, ShardCtx& ctx) {
  const Command cmd = entry.req.cmd;
  const PhysAddr addr = entry.req.addr;
  const bool posted = entry.custom != nullptr
                          ? entry.custom->response_flits == 0
                          : is_posted(cmd);
  const usize bytes =
      entry.custom != nullptr ? entry.custom->access_bytes : access_bytes(cmd);
  VaultState& vault = dev.vaults[vault_index];
  const u32 bank = dev.address_map().bank_of(addr);

  // Range check against capacity for the full access footprint.
  if (addr + bytes > dev.store.capacity()) {
    ResponseFields rf;
    rf.cmd = Command::Error;
    rf.tag = entry.req.tag;
    rf.cub = dev.id();
    rf.slid = entry.req.slid;
    rf.errstat = ErrStat::InvalidAddress;
    ResponseEntry rsp;
    (void)encode_response(rf, {}, rsp.pkt);
    rsp.cmd = Command::Error;
    rsp.tag = entry.req.tag;
    rsp.home_dev = entry.home_dev;
    rsp.home_link = entry.home_link;
    rsp.ready_cycle = cycle_ + 1;
    if (!posted && !vault.rsp.push(std::move(rsp))) return false;
    ++ctx.stats->error_responses;
    trace_to(ctx, TraceEvent::ErrorResponse, 4, dev.id(), kNoCoord,
             dev.quad_of_vault(vault_index), vault_index, bank, addr,
             entry.req.tag, cmd);
    return true;
  }

  u64 data[spec::kMaxPayloadBytes / 8] = {};
  const DeviceConfig& cfg = dev.config();
  const bool model_data = cfg.model_data;
  // DRAM fault domain: active when rates are configured or latent faults
  // from earlier accesses are still outstanding.  One branch when off.
  const bool dram_ras = cfg.dram_sbe_rate_ppm != 0 ||
                        cfg.dram_dbe_rate_ppm != 0 ||
                        dev.store.fault_count() != 0;
  // Answer an uncorrectable DRAM error.  Posted operations have no response
  // channel; the error is logged and counted, the operation dropped.
  const auto poison_response = [&]() -> bool {
    if (posted) return true;
    ResponseFields rf;
    rf.cmd = Command::Error;
    rf.tag = entry.req.tag;
    rf.cub = dev.id();
    rf.slid = entry.req.slid;
    rf.errstat = ErrStat::DramDbe;
    ResponseEntry rsp;
    (void)encode_response(rf, {}, rsp.pkt);
    rsp.cmd = Command::Error;
    rsp.tag = entry.req.tag;
    rsp.home_dev = entry.home_dev;
    rsp.home_link = entry.home_link;
    rsp.ready_cycle = cycle_ + 1;
    if (!vault.rsp.push(std::move(rsp))) return false;
    ++ctx.stats->error_responses;
    trace_to(ctx, TraceEvent::ErrorResponse, 4, dev.id(), kNoCoord,
             dev.quad_of_vault(vault_index), vault_index, bank, addr,
             entry.req.tag, cmd);
    return true;
  };

  // Registered custom (CMC) commands: read-modify-write of access_bytes
  // under the same bank timing, with a user-defined operation.
  if (entry.custom != nullptr) {
    const CustomCommandDef& def = *entry.custom;
    if (dram_ras && ras_check_read(dev, vault_index, addr, bytes, ctx)) {
      return poison_response();
    }
    if (model_data) (void)dev.store.read_words(addr, {data, bytes / 8});
    u64 rsp_payload[spec::kMaxPacketWords] = {};
    const usize rsp_words =
        def.response_flits > 0 ? (usize{def.response_flits} - 1) * 2 : 0;
    def.handler({data, bytes / 8}, entry.pkt.payload(),
                {rsp_payload, rsp_words});
    if (model_data) (void)dev.store.write_words(addr, {data, bytes / 8});
    ++ctx.stats->custom_ops;
    ctx.stats->bytes_read += bytes;
    ctx.stats->bytes_written += bytes;
    trace_to(ctx, TraceEvent::CustomRequest, 4, dev.id(), entry.home_link,
             dev.quad_of_vault(vault_index), vault_index, bank, addr,
             entry.req.tag, cmd);
    if (posted) return true;

    ResponseFields rf;
    rf.cmd = def.response_flits > 1 ? Command::ReadResponse
                                    : Command::WriteResponse;
    rf.tag = entry.req.tag;
    rf.cub = dev.id();
    rf.slid = entry.req.slid;
    ResponseEntry rsp;
    (void)encode_response(rf, {rsp_payload, rsp_words}, rsp.pkt);
    rsp.cmd = rf.cmd;
    rsp.tag = rf.tag;
    rsp.home_dev = entry.home_dev;
    rsp.home_link = entry.home_link;
    rsp.ready_cycle = cycle_ + 1;
    rsp.life = entry.life;
    rsp.life.retire = cycle_;
    rsp.life.dev = dev.id();
    rsp.life.vault = vault_index;
    rsp.life.link = entry.home_link;
    rsp.life.tag = entry.req.tag;
    rsp.life.cmd = cmd;
    const bool pushed = vault.rsp.push(std::move(rsp));
    if (pushed) ++ctx.stats->responses;
    return pushed;
  }

  if (is_read(cmd)) {
    if (dram_ras && ras_check_read(dev, vault_index, addr, bytes, ctx)) {
      return poison_response();
    }
    if (model_data) {
      (void)dev.store.read_words(addr, {data, bytes / 8});
    }
    ++ctx.stats->reads;
    ctx.stats->bytes_read += bytes;
    trace_to(ctx, TraceEvent::ReadRequest, 4, dev.id(), entry.home_link,
             dev.quad_of_vault(vault_index), vault_index, bank, addr,
             entry.req.tag, cmd);
  } else if (is_write(cmd)) {
    if (model_data) {
      (void)dev.store.write_words(addr, entry.pkt.payload());
    }
    // Latent fault: planted on write, discovered by a later read or the
    // background scrubber.
    if ((cfg.dram_sbe_rate_ppm | cfg.dram_dbe_rate_ppm) != 0) {
      inject_dram_fault(dev, vault_index, addr, bytes);
    }
    ++ctx.stats->writes;
    ctx.stats->bytes_written += bytes;
    trace_to(ctx, TraceEvent::WriteRequest, 4, dev.id(), entry.home_link,
             dev.quad_of_vault(vault_index), vault_index, bank, addr,
             entry.req.tag, cmd);
  } else if (is_atomic(cmd)) {
    if (dram_ras && ras_check_read(dev, vault_index, addr, bytes, ctx)) {
      return poison_response();
    }
    // All atomics are 16-byte read-modify-write operations.
    u64 current[2] = {0, 0};
    if (model_data) (void)dev.store.read_words(addr, current);
    const std::span<const u64> operand = entry.pkt.payload();
    u64 updated[2] = {current[0], current[1]};
    switch (cmd) {
      case Command::TwoAdd8:
      case Command::PostedTwoAdd8:
        updated[0] = current[0] + operand[0];
        updated[1] = current[1] + operand[1];
        break;
      case Command::Add16:
      case Command::PostedAdd16: {
        // 128-bit add with carry propagation.
        updated[0] = current[0] + operand[0];
        const u64 carry = (updated[0] < current[0]) ? 1 : 0;
        updated[1] = current[1] + operand[1] + carry;
        break;
      }
      case Command::BitWrite:
      case Command::PostedBitWrite:
        // 8 bytes of data + 8 bytes of mask: only masked bits change.
        updated[0] = (current[0] & ~operand[1]) | (operand[0] & operand[1]);
        break;
      default:
        break;
    }
    if (model_data) (void)dev.store.write_words(addr, updated);
    ++ctx.stats->atomics;
    ctx.stats->bytes_read += bytes;
    ctx.stats->bytes_written += bytes;
    trace_to(ctx, TraceEvent::AtomicRequest, 4, dev.id(), entry.home_link,
             dev.quad_of_vault(vault_index), vault_index, bank, addr,
             entry.req.tag, cmd);
  } else {
    // Unsupported at a vault (flow/mode should never get here).
    ResponseFields rf;
    rf.cmd = Command::Error;
    rf.tag = entry.req.tag;
    rf.cub = dev.id();
    rf.slid = entry.req.slid;
    rf.errstat = ErrStat::InvalidCommand;
    ResponseEntry rsp;
    (void)encode_response(rf, {}, rsp.pkt);
    rsp.cmd = Command::Error;
    rsp.tag = entry.req.tag;
    rsp.home_dev = entry.home_dev;
    rsp.home_link = entry.home_link;
    rsp.ready_cycle = cycle_ + 1;
    if (!vault.rsp.push(std::move(rsp))) return false;
    ++ctx.stats->error_responses;
    return true;
  }

  if (posted) return true;

  ResponseFields rf;
  rf.cmd = response_command(cmd);
  rf.tag = entry.req.tag;
  rf.cub = dev.id();
  rf.slid = entry.req.slid;
  ResponseEntry rsp;
  if (rf.cmd == Command::ReadResponse) {
    (void)encode_response(rf, {data, bytes / 8}, rsp.pkt);
  } else {
    (void)encode_response(rf, {}, rsp.pkt);
  }
  rsp.cmd = rf.cmd;
  rsp.tag = rf.tag;
  rsp.home_dev = entry.home_dev;
  rsp.home_link = entry.home_link;
  rsp.ready_cycle = cycle_ + 1;
  rsp.life = entry.life;
  rsp.life.retire = cycle_;
  rsp.life.dev = dev.id();
  rsp.life.vault = vault_index;
  rsp.life.link = entry.home_link;
  rsp.life.tag = entry.req.tag;
  rsp.life.cmd = cmd;
  const bool pushed = vault.rsp.push(std::move(rsp));
  // Callers checked for space before retiring; a failure here is a bug.
  if (pushed) ++ctx.stats->responses;
  return pushed;
}

bool Simulator::emit_error_response(Device& dev, const RequestEntry& entry,
                                    ErrStat errstat, u8 stage,
                                    ShardCtx& ctx) {
  if (dev.mode_rsp.full()) return false;
  ResponseFields rf;
  rf.cmd = Command::Error;
  rf.tag = entry.req.tag;
  rf.cub = dev.id();
  rf.slid = entry.req.slid;
  rf.errstat = errstat;
  ResponseEntry rsp;
  (void)encode_response(rf, {}, rsp.pkt);
  rsp.cmd = Command::Error;
  rsp.tag = entry.req.tag;
  rsp.home_dev = entry.home_dev;
  rsp.home_link = entry.home_link;
  rsp.ready_cycle = cycle_ + 1;
  const bool pushed = dev.mode_rsp.push(std::move(rsp));
  if (pushed) {
    // mode_rsp and the RAS error log are written directly: every caller
    // runs either device-exclusive (stages 1-2) or serial (failed-vault
    // drain after the stage 3-4 barrier).
    ++dev.stats.error_responses;
    dev.ras.last_error_addr = entry.req.addr;
    dev.ras.last_error_stat = static_cast<u8>(errstat);
    trace_to(ctx, TraceEvent::ErrorResponse, stage, dev.id(), kNoCoord,
             kNoCoord, kNoCoord, kNoCoord, entry.req.addr, entry.req.tag,
             entry.req.cmd);
  }
  return pushed;
}

// ---------------------------------------------------------------------------
// Stage 5: response registration, root devices first (paper §IV.C: child
// responses must not see falsely congested root queues).
// ---------------------------------------------------------------------------

u32 Simulator::response_exit_link(const Device& dev,
                                  const ResponseEntry& e) const {
  if (dev.id() == e.home_dev) return e.home_link;
  // Responses may arrive out of order (§V.C), so equal-cost trunk links are
  // balanced by occupancy rather than by stream hashing.
  const auto hops = topo_.next_hops(CubeId{dev.id()}, CubeId{e.home_dev});
  if (hops.empty()) return kNoCoord;
  u32 best = hops.front().get();
  usize best_size = dev.links[best].rsp.size();
  for (usize i = 1; i < hops.size(); ++i) {
    const u32 candidate = hops[i].get();
    const usize size = dev.links[candidate].rsp.size();
    if (size < best_size) {
      best = candidate;
      best_size = size;
    }
  }
  return best;
}

void Simulator::drain_response_queue(Device& dev,
                                     BoundedQueue<ResponseEntry>& queue,
                                     u32 vault_for_trace) {
  while (!queue.empty()) {
    ResponseEntry& head = queue.front();
    if (head.ready_cycle > cycle_) break;
    const u32 exit = response_exit_link(dev, head);
    if (exit == kNoCoord) {
      // The injection port is unreachable (topology was rewired mid-flight
      // or deliberately misconfigured): the response dies here.
      ++dev.stats.misroutes;
      trace(TraceEvent::Misroute, 5, dev.id(), kNoCoord, kNoCoord,
            vault_for_trace, kNoCoord, 0, head.tag, head.cmd);
      (void)queue.pop_front();
      continue;
    }
    ResponseEntry moved = head;
    moved.ready_cycle = cycle_ + 1;
    // The first crossbar registration (at the device that owns the vault)
    // closes the lifecycle Response segment; later hops keep the stamp.
    if (moved.life.retire != 0 && moved.life.rsp_register == 0) {
      moved.life.rsp_register = cycle_;
    }
    if (!dev.links[exit].rsp.push(std::move(moved))) {
      ++dev.stats.xbar_rsp_stalls;
      trace(TraceEvent::XbarRspStall, 5, dev.id(), exit, kNoCoord,
            vault_for_trace, kNoCoord, 0, head.tag, head.cmd);
      break;  // FIFO: later responses must not pass
    }
    trace(TraceEvent::ResponseRegistered, 5, dev.id(), exit, kNoCoord,
          vault_for_trace, kNoCoord, 0, head.tag, head.cmd);
    dev.links[exit].rsp_flits_forwarded += head.pkt.flits;
    (void)queue.pop_front();
  }
}

void Simulator::transfer_link_responses(Device& dev) {
  const DeviceConfig& cfg = dev.config();
  for (u32 link = 0; link < cfg.num_links; ++link) {
    const LinkEndpoint& ep = topo_.endpoint(CubeId{dev.id()}, LinkId{link});
    if (ep.kind != EndpointKind::Device) continue;  // host links drain by recv
    LinkState& link_state = dev.links[link];
    BoundedQueue<ResponseEntry>& queue = link_state.rsp;
    link_state.rsp_budget =
        std::min<i64>(link_state.rsp_budget, 0) + cfg.xbar_flits_per_cycle;
    while (!queue.empty() && link_state.rsp_budget > 0) {
      ResponseEntry& head = queue.front();
      if (head.ready_cycle > cycle_) break;
      Device& peer = *devices_[ep.peer_dev];
      const u32 peer_exit = response_exit_link(peer, head);
      if (peer_exit == kNoCoord) {
        ++dev.stats.misroutes;
        (void)queue.pop_front();
        continue;
      }
      ResponseEntry moved = head;
      moved.ready_cycle = cycle_ + 1;
      if (!peer.links[peer_exit].rsp.push(std::move(moved))) {
        ++dev.stats.xbar_rsp_stalls;
        trace(TraceEvent::XbarRspStall, 5, dev.id(), link, kNoCoord, kNoCoord,
              kNoCoord, 0, head.tag, head.cmd);
        break;
      }
      link_state.rsp_flits_forwarded += head.pkt.flits;
      link_state.rsp_budget -= head.pkt.flits;
      trace(TraceEvent::RouteHop, 5, dev.id(), link, kNoCoord, kNoCoord,
            kNoCoord, 0, head.tag, head.cmd);
      (void)queue.pop_front();
    }
  }
}

void Simulator::stage5_responses() {
  // Root devices first, then children.
  for (const u32 d : root_devices_) {
    Device& dev = *devices_[d];
    drain_response_queue(dev, dev.mode_rsp, kNoCoord);
    for (u32 v = 0; v < dev.config().num_vaults(); ++v) {
      drain_response_queue(dev, dev.vaults[v].rsp, v);
    }
    transfer_link_responses(dev);
  }
  for (const u32 d : child_devices_) {
    Device& dev = *devices_[d];
    drain_response_queue(dev, dev.mode_rsp, kNoCoord);
    for (u32 v = 0; v < dev.config().num_vaults(); ++v) {
      drain_response_queue(dev, dev.vaults[v].rsp, v);
    }
    transfer_link_responses(dev);
  }
}

void Simulator::stage6_clock_update() {
  if (config_.device.scrub_interval_cycles != 0 &&
      cycle_ % config_.device.scrub_interval_cycles == 0) {
    for (auto& dev : devices_) scrub_step(*dev);
  }
  for (auto& dev : devices_) dev->regs.clock_edge();
  ++cycle_;
  if (telemetry_ && config_.device.telemetry_interval_cycles != 0 &&
      cycle_ % config_.device.telemetry_interval_cycles == 0) {
    sample_telemetry();
  }
  if (hook_interval_ != 0 && cycle_ % hook_interval_ == 0 && cycle_hook_) {
    cycle_hook_(*this);
  }
  if (chaos_) chaos_->check_cadence(*this);
}

// ---------------------------------------------------------------------------
// Chaos orchestration (engine in src/chaos/engine.cpp).
// ---------------------------------------------------------------------------

Status Simulator::set_chaos_plan(ChaosPlan plan, std::string* diagnostic) {
  if (!initialized()) {
    if (diagnostic) *diagnostic = "simulator is not initialized";
    return Status::InvalidArgument;
  }
  if (!chaos_) chaos_ = std::make_unique<ChaosEngine>(config_.device);
  const Status s = chaos_->arm(std::move(plan), config_.device, diagnostic);
  if (ok(s)) ff_invalidate();  // the plan bounds the fast-forward horizon
  return s;
}

const std::string& Simulator::chaos_report() const {
  static const std::string kEmpty;
  return chaos_ ? chaos_->report() : kEmpty;
}

}  // namespace hmcsim
