// RAS (reliability/availability/serviceability) helpers for Simulator:
// the DRAM fault model rolls, the background scrubber, vault degradation
// bookkeeping, and the forward-progress watchdog.
//
// Perf contract: every entry point here is behind a single config-gated
// branch in the clock engine, so with all RAS knobs at their defaults the
// per-cycle cost is ~0 (see bench/bench_ras_overhead.cpp).
#include <algorithm>
#include <sstream>

#include "core/link_layer.hpp"
#include "core/simulator.hpp"
#include "mem/ecc.hpp"

namespace hmcsim {

void Simulator::inject_dram_fault(Device& dev, u32 vault_index, PhysAddr addr,
                                  usize bytes) {
  const DeviceConfig& cfg = dev.config();
  const u64 sbe = cfg.dram_sbe_rate_ppm;
  const u64 dbe = cfg.dram_dbe_rate_ppm;
  if ((sbe | dbe) == 0 || bytes < 8) return;
  // The fault domain is sharded per vault: each vault's accesses draw from
  // its own generator, so the fault pattern is independent of the order
  // vaults retire in — and therefore of the thread count.
  SplitMix64& rng = dev.vaults[vault_index].dram_rng;
  // One roll decides the access's fate: [0,sbe) plants a single-bit fault,
  // [sbe,sbe+dbe) a double-bit fault, the rest nothing.
  const u64 roll = rng.next_below(1'000'000);
  if (roll >= sbe + dbe) return;
  const u64 word_addr = addr + 8 * rng.next_below(bytes / 8);
  const u32 first = static_cast<u32>(rng.next_below(ecc::kCodewordBits));
  if (roll < sbe) {
    const u32 bits[1] = {first};
    (void)dev.store.plant_fault(word_addr, bits);
  } else {
    // Two distinct codeword positions: guaranteed detectable-uncorrectable.
    u32 second = static_cast<u32>(rng.next_below(ecc::kCodewordBits - 1));
    if (second >= first) ++second;
    const u32 bits[2] = {first, second};
    (void)dev.store.plant_fault(word_addr, bits);
  }
}

bool Simulator::ras_check_read(Device& dev, u32 vault_index, PhysAddr addr,
                               usize bytes, ShardCtx& ctx) {
  // Transient fault on this access, then codec over the whole footprint —
  // which also discovers latent faults planted by earlier writes.
  inject_dram_fault(dev, vault_index, addr, bytes);
  const SparseStore::FaultSummary sum = dev.store.check_and_repair(addr, bytes);
  ctx.stats->dram_sbes += sum.corrected;
  if (sum.corrected != 0) {
    record_event(ctx, FlightEventType::RasSbe, dev.id(), 4,
                 static_cast<u16>(vault_index), sum.corrected);
  }
  if (sum.uncorrectable == 0) return false;
  ctx.stats->dram_dbes += sum.uncorrectable;
  record_event(ctx, FlightEventType::RasDbe, dev.id(), 4,
               static_cast<u16>(vault_index), sum.uncorrectable);
  ctx.last_error_addr = addr;
  ctx.last_error_stat = static_cast<u8>(ErrStat::DramDbe);
  ctx.has_last_error = true;
  note_vault_uncorrectable(dev, vault_index, ctx);
  return true;
}

void Simulator::note_vault_uncorrectable(Device& dev, u32 vault_index,
                                         ShardCtx& ctx) {
  const u32 threshold = dev.config().vault_fail_threshold;
  if (threshold == 0) return;
  // vault_uncorrectable[vault_index] is only ever touched by the shard
  // retiring this vault, so the increment is race-free; the failure bit is
  // deferred to the stage merge (the pending mask doubles as the
  // only-count-once guard for repeat errors within one cycle).
  if (++dev.ras.vault_uncorrectable[vault_index] >= threshold &&
      dev.vault_alive(vault_index) &&
      (ctx.pending_failed_vaults >> vault_index & 1) == 0) {
    ctx.pending_failed_vaults |= u64{1} << vault_index;
    ++ctx.stats->vault_failures;
    trace_to(ctx, TraceEvent::ErrorResponse, 4, dev.id(), kNoCoord,
             dev.quad_of_vault(vault_index), vault_index, kNoCoord, 0, 0,
             Command::Error);
    record_event(ctx, FlightEventType::VaultFailed, dev.id(), 4,
                 static_cast<u16>(vault_index),
                 dev.ras.vault_uncorrectable[vault_index]);
  }
}

void Simulator::scrub_step(Device& dev) {
  const DeviceConfig& cfg = dev.config();
  const u64 capacity = dev.store.capacity();
  const u64 window =
      std::min<u64>(cfg.scrub_window_bytes, capacity - dev.ras.scrub_cursor);
  const SparseStore::FaultSummary sum =
      dev.store.scrub_span(dev.ras.scrub_cursor, window);
  ++dev.stats.scrub_steps;
  dev.stats.scrub_corrections += sum.corrected;
  if (sum.uncorrectable != 0) {
    // The scrubber retires the page (scrub_span rebuilt the word), so the
    // fault never reaches traffic — it is logged but not counted against
    // the vault-failure threshold, which tracks errors served to hosts.
    dev.stats.scrub_uncorrectables += sum.uncorrectable;
    dev.ras.last_error_addr = dev.ras.scrub_cursor;
    dev.ras.last_error_stat = static_cast<u8>(ErrStat::DramDbe);
  }
  dev.ras.scrub_cursor += window;
  if (dev.ras.scrub_cursor >= capacity) {
    dev.ras.scrub_cursor = 0;
    ++dev.ras.scrub_passes;
  }
}

void Simulator::drain_failed_vault(Device& dev, u32 vault_index) {
  // A failed vault retires nothing; its queued requests answer VAULT_FAILED
  // instead of wedging the pipeline.  Responses the vault produced before
  // failing still drain through stage 5 untouched.
  VaultState& vault = dev.vaults[vault_index];
  // Serial context: runs after the stage 3-4 barrier, so stats and traces
  // apply directly.
  ShardCtx ctx;
  ctx.stats = &dev.stats;
  usize i = 0;
  while (i < vault.rqst.size()) {
    RequestEntry& entry = vault.rqst.at(i);
    if (entry.ready_cycle > cycle_) {
      ++i;
      continue;
    }
    // Staging space is bounded; retry the remainder next cycle when full.
    if (!emit_error_response(dev, entry, ErrStat::VaultFailed, 4, ctx)) return;
    ++dev.stats.degraded_drops;
    vault.rqst.remove(i);
  }
}

u64 Simulator::progress_fingerprint() const {
  // Any of these moving means the machine made forward progress: a packet
  // retired, hopped, retried, errored out, or crossed the host edge.
  // Scrub steps deliberately do not count — background scrubbing must not
  // mask a wedged pipeline.
  u64 f = 0;
  for (const auto& dev : devices_) {
    const DeviceStats& s = dev->stats;
    f += s.retired() + s.responses + s.error_responses + s.mode_ops +
         s.route_hops + s.link_retries + s.flow_packets + s.sends + s.recvs;
  }
  return f;
}

void Simulator::check_watchdog() {
  if (quiescent()) {
    watchdog_stall_cycles_ = 0;
    return;
  }
  const u64 fp = progress_fingerprint();
  if (fp != watchdog_fingerprint_) {
    watchdog_fingerprint_ = fp;
    watchdog_stall_cycles_ = 0;
    return;
  }
  if (++watchdog_stall_cycles_ == 1) {
    // Stall onset: the watchdog is now counting toward the threshold.
    record_watchdog_event(FlightEventType::WatchdogArm,
                          config_.device.watchdog_cycles);
  }
  if (watchdog_stall_cycles_ >= config_.device.watchdog_cycles) {
    watchdog_fired_ = true;
    ff_close_skip_span();
    record_watchdog_event(FlightEventType::WatchdogFire,
                          watchdog_stall_cycles_);
    watchdog_report_ = build_watchdog_report();
  }
}

std::string Simulator::build_watchdog_report() const {
  std::ostringstream os;
  os << "forward-progress watchdog fired at cycle " << cycle_ << " after "
     << watchdog_stall_cycles_ << " stalled cycles\n"
     << build_state_dump();
  return os.str();
}

// Post-mortem machine snapshot shared by the watchdog report and the chaos
// invariant-violation report (chaos/engine.cpp).
std::string Simulator::build_state_dump() const {
  std::ostringstream os;
  usize listed = 0;
  constexpr usize kMaxListed = 64;
  const auto list_request = [&](const char* where, u32 index,
                                const RequestEntry& e) {
    if (listed >= kMaxListed) return;
    ++listed;
    os << "    " << where << index << " tag=" << e.req.tag << " cmd=0x"
       << std::hex << static_cast<u32>(e.req.cmd) << " addr=0x" << e.req.addr
       << std::dec << " ready=" << e.ready_cycle << " retries="
       << static_cast<u32>(e.retries) << " inject=" << e.life.inject
       << " vault_arrive=" << e.life.vault_arrive << '\n';
  };
  const auto list_response = [&](const char* where, u32 index,
                                 const ResponseEntry& e) {
    if (listed >= kMaxListed) return;
    ++listed;
    os << "    " << where << index << " tag=" << e.tag << " cmd=0x" << std::hex
       << static_cast<u32>(e.cmd) << std::dec << " ready=" << e.ready_cycle
       << " retire=" << e.life.retire << '\n';
  };
  for (const auto& dev_ptr : devices_) {
    const Device& dev = *dev_ptr;
    os << "  dev " << dev.id() << ": retired=" << dev.stats.retired()
       << " responses=" << dev.stats.responses
       << " errors=" << dev.stats.error_responses
       << " failed_vaults=0x" << std::hex << dev.ras.failed_vaults << std::dec
       << " mode_rsp=" << dev.mode_rsp.size() << '\n';
    if (dev.config().link_protocol) {
      // Link-layer protocol state: a wedged machine is often a token leak,
      // a stuck replay, or a permanently retraining link — all visible here.
      const u32 pool = resolved_link_tokens(dev.config());
      for (u32 l = 0; l < dev.config().num_links; ++l) {
        const LinkProtoState& st = dev.links[l].proto;
        os << "  dev " << dev.id() << " link " << l << " proto:"
           << " tokens=" << st.tokens << '/' << pool
           << " debited=" << st.tokens_debited
           << " returned=" << st.tokens_returned
           << " retry_buf_flits=" << st.retry_buf_flits
           << " frp=" << static_cast<u32>(st.tx_frp)
           << " rrp=" << static_cast<u32>(st.rx_rrp)
           << " seq=" << static_cast<u32>(st.tx_seq) << '/'
           << static_cast<u32>(st.rx_seq)
           << " replay_pending=" << (st.replay_pending ? 1 : 0)
           << " fail_count=" << st.fail_count;
        if (st.retrain_until > cycle_) {
          os << " retraining_until=" << st.retrain_until;
        }
        if (st.dead) os << " DEAD";
        os << '\n';
      }
    }
    for (u32 l = 0; l < dev.config().num_links; ++l) {
      const LinkState& link = dev.links[l];
      if (link.rqst.empty() && link.rsp.empty()) continue;
      os << "  dev " << dev.id() << " link " << l << ": rqst="
         << link.rqst.size() << " rsp=" << link.rsp.size() << '\n';
      for (const RequestEntry& e : link.rqst) list_request("link.rqst ", l, e);
      for (const ResponseEntry& e : link.rsp) list_response("link.rsp ", l, e);
    }
    for (u32 v = 0; v < dev.config().num_vaults(); ++v) {
      const VaultState& vault = dev.vaults[v];
      if (vault.rqst.empty() && vault.rsp.empty()) continue;
      os << "  dev " << dev.id() << " vault " << v << ": rqst="
         << vault.rqst.size() << " rsp=" << vault.rsp.size()
         << " bank_busy_until=[";
      for (usize b = 0; b < vault.bank_busy_until.size(); ++b) {
        os << (b == 0 ? "" : ",") << vault.bank_busy_until[b];
      }
      os << "]\n";
      for (const RequestEntry& e : vault.rqst) list_request("vault.rqst ", v, e);
      for (const ResponseEntry& e : vault.rsp) list_response("vault.rsp ", v, e);
    }
    for (const ResponseEntry& e : dev.mode_rsp) {
      list_response("mode_rsp ", dev.id(), e);
    }
  }
  if (listed >= kMaxListed) os << "  ... (listing truncated)\n";
  if (recorder_) {
    // Post-mortem tail: the last flight-recorder events leading up to the
    // stall.  The callers close any open fast-forward skip span and record
    // the WATCHDOG_FIRE event before building this report.
    os << "flight recorder tail:\n";
    recorder_->dump_text(os);
  }
  return os.str();
}

}  // namespace hmcsim
