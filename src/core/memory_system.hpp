// MemorySystem: a gem5-style front end over the simulator.
//
// HMC-Sim is designed to slot into existing architectural simulation
// infrastructures "without modification" (paper §V) — a CPU model wants a
// memory system it can hand transactions to and tick, not packets, tags
// and link arbitration.  This facade owns all of that plumbing:
//
//   * transactions of any size (split into <=128-byte HMC requests),
//   * tag allocation and response correlation,
//   * injection-port selection (locality-aware by default),
//   * completion callbacks fired from tick() when the last fragment's
//     response arrives.
//
// The underlying Simulator remains fully accessible for tracing, register
// access, and statistics.
#pragma once

#include <cstdio>
#include <functional>
#include <unordered_map>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "core/simulator.hpp"

namespace hmcsim {

/// Completion record handed to the callback.
struct MemTransaction {
  u64 id{0};            ///< token returned by read()/write()
  PhysAddr addr{0};
  usize bytes{0};
  bool is_write{false};
  bool failed{false};   ///< true when any fragment returned an error
  Cycle issued_at{0};
  Cycle completed_at{0};
  /// Read data, valid for successful reads (bytes/8 words).
  std::vector<u64> data;
};

class MemorySystem {
 public:
  using Callback = std::function<void(const MemTransaction&)>;

  struct Options {
    InjectionPolicy policy{InjectionPolicy::LocalityAware};
    u32 target_cub{0};
    /// Per-port in-flight cap (tag space bound).
    u32 max_outstanding_per_port{512};
  };

  /// Single-device system, all links host-attached.
  explicit MemorySystem(const DeviceConfig& device)
      : MemorySystem(device, Options{}) {}
  MemorySystem(const DeviceConfig& device, Options options);

  /// Wrap an externally configured simulator (multi-device topologies).
  /// The simulator must already be initialized and must outlive this
  /// object.
  MemorySystem(Simulator& sim, Options options);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  /// Queue a read of `bytes` at `addr`.  Returns the transaction id, or 0
  /// when the transaction is structurally invalid (misaligned / zero / out
  /// of the 34-bit address space).  Fragments are injected as ports free
  /// up, so issue never fails on backpressure.
  u64 read(PhysAddr addr, usize bytes, Callback cb);

  /// Queue a write; `data` must hold bytes/8 words (little-endian).
  u64 write(PhysAddr addr, usize bytes, std::span<const u64> data,
            Callback cb);

  /// Queue a 16-byte in-memory atomic.  `op` selects the HMC atomic
  /// command (TwoAdd8 / Add16 / BitWrite, or their posted variants);
  /// `operand` holds the two payload words.  Non-posted atomics complete
  /// through the callback like writes.
  u64 atomic(PhysAddr addr, Command op, std::span<const u64, 2> operand,
             Callback cb);

  /// Advance one device clock: inject pending fragments, drain responses,
  /// fire callbacks for completed transactions.
  void tick();

  /// Convenience: tick until every queued transaction has completed or
  /// `max_cycles` pass.  Returns true when fully drained.
  bool drain(Cycle max_cycles = 1'000'000);

  [[nodiscard]] usize pending_transactions() const { return live_count_; }
  [[nodiscard]] Cycle now() const { return sim_->now(); }
  [[nodiscard]] Simulator& simulator() { return *sim_; }
  [[nodiscard]] const Simulator& simulator() const { return *sim_; }

 private:
  struct Fragment {
    u64 txn{0};          ///< owning transaction id
    PhysAddr addr{0};
    Command cmd{Command::Null};
    std::vector<u64> payload;  ///< write data; empty for reads
  };

  struct Txn {
    MemTransaction result;
    Callback cb;
    u32 fragments_total{0};
    u32 fragments_done{0};
  };

  struct Port {
    u32 dev;
    u32 link;
    std::vector<u16> free_tags;
    // tag -> (transaction id, fragment addr offset) for data placement.
    std::array<u64, 512> txn_of{};
    std::array<PhysAddr, 512> addr_of{};
  };

  void attach_ports();
  /// Mark one fragment of `txn_id` done; fires the callback and retires
  /// the transaction when it was the last.
  void complete_fragment(u64 txn_id);
  u64 submit(PhysAddr addr, usize bytes, bool is_write,
             std::span<const u64> data, Callback cb);
  void inject_pending();
  void drain_responses();
  Port* pick_port(PhysAddr addr);

  std::unique_ptr<Simulator> owned_sim_;
  Simulator* sim_;
  Options options_;
  std::vector<Port> ports_;
  usize rr_next_{0};

  u64 next_id_{1};
  std::unordered_map<u64, Txn> txns_;
  usize live_count_{0};
  std::vector<Fragment> pending_;  ///< fragments not yet accepted by a port
};

}  // namespace hmcsim
