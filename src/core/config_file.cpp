#include "core/config_file.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "io/bounded_line.hpp"

namespace hmcsim {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool parse_number(const std::string& text, u64& out) {
  const std::string t = trim(text);
  if (t.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(t.data(), t.data() + t.size(), out, 10);
  return ec == std::errc{} && ptr == t.data() + t.size();
}

ConfigParseResult fail(usize line, const std::string& message) {
  ConfigParseResult r;
  r.error = std::to_string(line) + ": " + message;
  return r;
}

}  // namespace

ConfigParseResult parse_config(std::istream& in) {
  SimConfig config;
  std::string raw;
  usize line_no = 0;

  for (;;) {
    const io::LineRead lr = io::getline_bounded(in, raw);
    if (lr == io::LineRead::Eof) break;
    ++line_no;
    if (lr == io::LineRead::TooLong) {
      return fail(line_no, "line exceeds " +
                               std::to_string(io::kMaxLineBytes) + " bytes");
    }
    // Strip comments and whitespace.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return fail(line_no, "expected key = value");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return fail(line_no, "empty key or value");
    }

    DeviceConfig& dc = config.device;
    u64 number = 0;
    const bool is_number = parse_number(value, number);

    if (key == "num_devices") {
      if (!is_number) return fail(line_no, "num_devices needs a number");
      config.num_devices = static_cast<u32>(number);
    } else if (key == "num_links") {
      if (!is_number) return fail(line_no, "num_links needs a number");
      dc.num_links = static_cast<u32>(number);
    } else if (key == "banks_per_vault") {
      if (!is_number) return fail(line_no, "banks_per_vault needs a number");
      dc.banks_per_vault = static_cast<u32>(number);
    } else if (key == "drams_per_bank") {
      if (!is_number) return fail(line_no, "drams_per_bank needs a number");
      dc.drams_per_bank = static_cast<u32>(number);
    } else if (key == "xbar_depth") {
      if (!is_number) return fail(line_no, "xbar_depth needs a number");
      dc.xbar_depth = static_cast<usize>(number);
    } else if (key == "vault_depth") {
      if (!is_number) return fail(line_no, "vault_depth needs a number");
      dc.vault_depth = static_cast<usize>(number);
    } else if (key == "capacity_gb") {
      if (!is_number) return fail(line_no, "capacity_gb needs a number");
      dc.capacity_bytes = number << 30;
    } else if (key == "max_block_bytes") {
      if (!is_number) return fail(line_no, "max_block_bytes needs a number");
      dc.max_block_bytes = number;
    } else if (key == "bank_busy_cycles") {
      if (!is_number) return fail(line_no, "bank_busy_cycles needs a number");
      dc.bank_busy_cycles = static_cast<u32>(number);
    } else if (key == "xbar_flits_per_cycle") {
      if (!is_number) {
        return fail(line_no, "xbar_flits_per_cycle needs a number");
      }
      dc.xbar_flits_per_cycle = static_cast<u32>(number);
    } else if (key == "vault_drain_limit") {
      if (!is_number) return fail(line_no, "vault_drain_limit needs a number");
      dc.vault_drain_limit = static_cast<u32>(number);
    } else if (key == "nonlocal_penalty_cycles") {
      if (!is_number) {
        return fail(line_no, "nonlocal_penalty_cycles needs a number");
      }
      dc.nonlocal_penalty_cycles = static_cast<u32>(number);
    } else if (key == "conflict_window") {
      if (!is_number) return fail(line_no, "conflict_window needs a number");
      dc.conflict_window = static_cast<u32>(number);
    } else if (key == "link_error_rate_ppm") {
      if (!is_number) {
        return fail(line_no, "link_error_rate_ppm needs a number");
      }
      dc.link_error_rate_ppm = static_cast<u32>(number);
    } else if (key == "fault_seed") {
      if (!is_number) return fail(line_no, "fault_seed needs a number");
      dc.fault_seed = number;
    } else if (key == "link_retry_limit") {
      if (!is_number) return fail(line_no, "link_retry_limit needs a number");
      dc.link_retry_limit = static_cast<u32>(number);
    } else if (key == "link_protocol") {
      if (value == "true" || value == "1") {
        dc.link_protocol = true;
      } else if (value == "false" || value == "0") {
        dc.link_protocol = false;
      } else {
        return fail(line_no, "link_protocol must be true/false");
      }
    } else if (key == "link_tokens") {
      if (!is_number) return fail(line_no, "link_tokens needs a number");
      dc.link_tokens = static_cast<u32>(number);
    } else if (key == "link_retry_buffer_flits") {
      if (!is_number) {
        return fail(line_no, "link_retry_buffer_flits needs a number");
      }
      dc.link_retry_buffer_flits = static_cast<u32>(number);
    } else if (key == "link_retry_latency") {
      if (!is_number) {
        return fail(line_no, "link_retry_latency needs a number");
      }
      dc.link_retry_latency = static_cast<u32>(number);
    } else if (key == "link_error_burst_len") {
      if (!is_number) {
        return fail(line_no, "link_error_burst_len needs a number");
      }
      dc.link_error_burst_len = static_cast<u32>(number);
    } else if (key == "link_stuck_interval_cycles") {
      if (!is_number) {
        return fail(line_no, "link_stuck_interval_cycles needs a number");
      }
      dc.link_stuck_interval_cycles = static_cast<u32>(number);
    } else if (key == "link_stuck_window_cycles") {
      if (!is_number) {
        return fail(line_no, "link_stuck_window_cycles needs a number");
      }
      dc.link_stuck_window_cycles = static_cast<u32>(number);
    } else if (key == "link_fail_threshold") {
      if (!is_number) {
        return fail(line_no, "link_fail_threshold needs a number");
      }
      dc.link_fail_threshold = static_cast<u32>(number);
    } else if (key == "dram_sbe_rate_ppm") {
      if (!is_number) return fail(line_no, "dram_sbe_rate_ppm needs a number");
      dc.dram_sbe_rate_ppm = static_cast<u32>(number);
    } else if (key == "dram_dbe_rate_ppm") {
      if (!is_number) return fail(line_no, "dram_dbe_rate_ppm needs a number");
      dc.dram_dbe_rate_ppm = static_cast<u32>(number);
    } else if (key == "scrub_interval_cycles") {
      if (!is_number) {
        return fail(line_no, "scrub_interval_cycles needs a number");
      }
      dc.scrub_interval_cycles = static_cast<u32>(number);
    } else if (key == "scrub_window_bytes") {
      if (!is_number) return fail(line_no, "scrub_window_bytes needs a number");
      dc.scrub_window_bytes = number;
    } else if (key == "vault_fail_threshold") {
      if (!is_number) {
        return fail(line_no, "vault_fail_threshold needs a number");
      }
      dc.vault_fail_threshold = static_cast<u32>(number);
    } else if (key == "failed_vault_mask") {
      if (!is_number) return fail(line_no, "failed_vault_mask needs a number");
      dc.failed_vault_mask = number;
    } else if (key == "vault_remap") {
      if (value == "true" || value == "1") {
        dc.vault_remap = true;
      } else if (value == "false" || value == "0") {
        dc.vault_remap = false;
      } else {
        return fail(line_no, "vault_remap must be true/false");
      }
    } else if (key == "watchdog_cycles") {
      if (!is_number) return fail(line_no, "watchdog_cycles needs a number");
      dc.watchdog_cycles = static_cast<u32>(number);
    } else if (key == "checkpoint_interval_cycles") {
      if (!is_number) {
        return fail(line_no, "checkpoint_interval_cycles needs a number");
      }
      dc.checkpoint_interval_cycles = static_cast<u32>(number);
    } else if (key == "chaos_invariants") {
      if (!is_number) {
        return fail(line_no, "chaos_invariants needs a number");
      }
      dc.chaos_invariants = static_cast<u32>(number);
    } else if (key == "refresh_interval_cycles") {
      if (!is_number) {
        return fail(line_no, "refresh_interval_cycles needs a number");
      }
      dc.refresh_interval_cycles = static_cast<u32>(number);
    } else if (key == "refresh_busy_cycles") {
      if (!is_number) {
        return fail(line_no, "refresh_busy_cycles needs a number");
      }
      dc.refresh_busy_cycles = static_cast<u32>(number);
    } else if (key == "row_policy") {
      if (value == "closed_page") {
        dc.row_policy = RowPolicy::ClosedPage;
      } else if (value == "open_page") {
        dc.row_policy = RowPolicy::OpenPage;
      } else {
        return fail(line_no, "row_policy must be closed_page/open_page");
      }
    } else if (key == "row_hit_cycles") {
      if (!is_number) return fail(line_no, "row_hit_cycles needs a number");
      dc.row_hit_cycles = static_cast<u32>(number);
    } else if (key == "row_miss_cycles") {
      if (!is_number) return fail(line_no, "row_miss_cycles needs a number");
      dc.row_miss_cycles = static_cast<u32>(number);
    } else if (key == "sim_threads") {
      if (!is_number) return fail(line_no, "sim_threads needs a number");
      dc.sim_threads = static_cast<u32>(number);
    } else if (key == "fast_forward") {
      if (value == "true" || value == "1") {
        dc.fast_forward = true;
      } else if (value == "false" || value == "0") {
        dc.fast_forward = false;
      } else {
        return fail(line_no, "fast_forward must be true/false");
      }
    } else if (key == "model_data") {
      if (value == "true" || value == "1") {
        dc.model_data = true;
      } else if (value == "false" || value == "0") {
        dc.model_data = false;
      } else {
        return fail(line_no, "model_data must be true/false");
      }
    } else if (key == "map_mode") {
      if (value == "low_interleave") {
        dc.map_mode = AddrMapMode::LowInterleave;
      } else if (value == "bank_first") {
        dc.map_mode = AddrMapMode::BankFirst;
      } else if (value == "linear") {
        dc.map_mode = AddrMapMode::Linear;
      } else {
        return fail(line_no,
                    "map_mode must be low_interleave/bank_first/linear");
      }
    } else if (key == "timing_backend") {
      TimingBackend backend;
      if (!timing_backend_from_string(value, &backend)) {
        return fail(line_no, "unknown timing_backend '" + value +
                                 "' (hmc_dram/generic_ddr/pcm_like)");
      }
      dc.timing_backend = backend;
    } else if (key == "vault_backend") {
      // Repeatable per-vault override: "<index>:<name>" or
      // "<lo>-<hi>:<name>".
      const auto colon = value.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= value.size()) {
        return fail(line_no,
                    "vault_backend needs <vault|lo-hi>:<backend name>");
      }
      const std::string range = trim(value.substr(0, colon));
      const std::string name = trim(value.substr(colon + 1));
      TimingBackend backend;
      if (!timing_backend_from_string(name, &backend)) {
        return fail(line_no, "unknown vault_backend '" + name +
                                 "' (hmc_dram/generic_ddr/pcm_like)");
      }
      u64 lo = 0;
      u64 hi = 0;
      const auto dash = range.find('-');
      if (dash == std::string::npos) {
        if (!parse_number(range, lo)) {
          return fail(line_no, "vault_backend needs a vault index");
        }
        hi = lo;
      } else {
        if (!parse_number(range.substr(0, dash), lo) ||
            !parse_number(range.substr(dash + 1), hi) || hi < lo) {
          return fail(line_no, "vault_backend range must be <lo>-<hi>");
        }
      }
      if (hi >= 64) {
        return fail(line_no, "vault_backend index " + std::to_string(hi) +
                                 " is beyond any device geometry");
      }
      for (u64 v = lo; v <= hi; ++v) {
        for (const auto& existing : dc.vault_backends) {
          if (existing.first == v) {
            return fail(line_no, "vault_backend index " + std::to_string(v) +
                                     " is listed twice");
          }
        }
        dc.vault_backends.emplace_back(static_cast<u32>(v), backend);
      }
    } else if (key == "ddr_tcl") {
      if (!is_number) return fail(line_no, "ddr_tcl needs a number");
      dc.ddr_tcl = static_cast<u32>(number);
    } else if (key == "ddr_trcd") {
      if (!is_number) return fail(line_no, "ddr_trcd needs a number");
      dc.ddr_trcd = static_cast<u32>(number);
    } else if (key == "ddr_trp") {
      if (!is_number) return fail(line_no, "ddr_trp needs a number");
      dc.ddr_trp = static_cast<u32>(number);
    } else if (key == "ddr_tras") {
      if (!is_number) return fail(line_no, "ddr_tras needs a number");
      dc.ddr_tras = static_cast<u32>(number);
    } else if (key == "pcm_read_cycles") {
      if (!is_number) return fail(line_no, "pcm_read_cycles needs a number");
      dc.pcm_read_cycles = static_cast<u32>(number);
    } else if (key == "pcm_write_cycles") {
      if (!is_number) return fail(line_no, "pcm_write_cycles needs a number");
      dc.pcm_write_cycles = static_cast<u32>(number);
    } else if (key == "pcm_write_gap_cycles") {
      if (!is_number) {
        return fail(line_no, "pcm_write_gap_cycles needs a number");
      }
      dc.pcm_write_gap_cycles = static_cast<u32>(number);
    } else if (key == "vault_schedule") {
      if (value == "bank_ready") {
        dc.vault_schedule = VaultSchedule::BankReady;
      } else if (value == "strict_fifo") {
        dc.vault_schedule = VaultSchedule::StrictFifo;
      } else {
        return fail(line_no,
                    "vault_schedule must be bank_ready/strict_fifo");
      }
    } else {
      return fail(line_no, "unknown key '" + key + "'");
    }
  }

  std::string diag;
  if (!ok(config.validate(&diag))) {
    return fail(line_no, "invalid configuration: " + diag);
  }
  ConfigParseResult r;
  r.ok = true;
  r.config = config;
  return r;
}

ConfigParseResult parse_config_string(const std::string& text) {
  std::istringstream in(text);
  return parse_config(in);
}

void write_config(std::ostream& os, const SimConfig& config) {
  const DeviceConfig& dc = config.device;
  os << "# hmcsim device configuration\n";
  os << "num_devices = " << config.num_devices << '\n';
  os << "num_links = " << dc.num_links << '\n';
  os << "banks_per_vault = " << dc.banks_per_vault << '\n';
  os << "drams_per_bank = " << dc.drams_per_bank << '\n';
  os << "xbar_depth = " << dc.xbar_depth << '\n';
  os << "vault_depth = " << dc.vault_depth << '\n';
  os << "capacity_gb = " << (dc.derived_capacity() >> 30) << '\n';
  os << "max_block_bytes = " << dc.max_block_bytes << '\n';
  os << "map_mode = "
     << (dc.map_mode == AddrMapMode::LowInterleave ? "low_interleave"
         : dc.map_mode == AddrMapMode::BankFirst   ? "bank_first"
                                                   : "linear")
     << '\n';
  os << "bank_busy_cycles = " << dc.bank_busy_cycles << '\n';
  os << "xbar_flits_per_cycle = " << dc.xbar_flits_per_cycle << '\n';
  os << "vault_drain_limit = " << dc.vault_drain_limit << '\n';
  os << "nonlocal_penalty_cycles = " << dc.nonlocal_penalty_cycles << '\n';
  os << "conflict_window = " << dc.conflict_window << '\n';
  os << "vault_schedule = "
     << (dc.vault_schedule == VaultSchedule::BankReady ? "bank_ready"
                                                       : "strict_fifo")
     << '\n';
  os << "link_error_rate_ppm = " << dc.link_error_rate_ppm << '\n';
  os << "fault_seed = " << dc.fault_seed << '\n';
  os << "link_retry_limit = " << dc.link_retry_limit << '\n';
  os << "link_protocol = " << (dc.link_protocol ? "true" : "false") << '\n';
  os << "link_tokens = " << dc.link_tokens << '\n';
  os << "link_retry_buffer_flits = " << dc.link_retry_buffer_flits << '\n';
  os << "link_retry_latency = " << dc.link_retry_latency << '\n';
  os << "link_error_burst_len = " << dc.link_error_burst_len << '\n';
  os << "link_stuck_interval_cycles = " << dc.link_stuck_interval_cycles
     << '\n';
  os << "link_stuck_window_cycles = " << dc.link_stuck_window_cycles << '\n';
  os << "link_fail_threshold = " << dc.link_fail_threshold << '\n';
  os << "dram_sbe_rate_ppm = " << dc.dram_sbe_rate_ppm << '\n';
  os << "dram_dbe_rate_ppm = " << dc.dram_dbe_rate_ppm << '\n';
  os << "scrub_interval_cycles = " << dc.scrub_interval_cycles << '\n';
  os << "scrub_window_bytes = " << dc.scrub_window_bytes << '\n';
  os << "vault_fail_threshold = " << dc.vault_fail_threshold << '\n';
  os << "failed_vault_mask = " << dc.failed_vault_mask << '\n';
  os << "vault_remap = " << (dc.vault_remap ? "true" : "false") << '\n';
  os << "watchdog_cycles = " << dc.watchdog_cycles << '\n';
  os << "checkpoint_interval_cycles = " << dc.checkpoint_interval_cycles
     << '\n';
  os << "chaos_invariants = " << dc.chaos_invariants << '\n';
  os << "refresh_interval_cycles = " << dc.refresh_interval_cycles << '\n';
  os << "refresh_busy_cycles = " << dc.refresh_busy_cycles << '\n';
  os << "row_policy = "
     << (dc.row_policy == RowPolicy::OpenPage ? "open_page" : "closed_page")
     << '\n';
  os << "row_hit_cycles = " << dc.row_hit_cycles << '\n';
  os << "row_miss_cycles = " << dc.row_miss_cycles << '\n';
  os << "timing_backend = " << to_string(dc.timing_backend) << '\n';
  for (const auto& [vault, backend] : dc.vault_backends) {
    os << "vault_backend = " << vault << ':' << to_string(backend) << '\n';
  }
  os << "ddr_tcl = " << dc.ddr_tcl << '\n';
  os << "ddr_trcd = " << dc.ddr_trcd << '\n';
  os << "ddr_trp = " << dc.ddr_trp << '\n';
  os << "ddr_tras = " << dc.ddr_tras << '\n';
  os << "pcm_read_cycles = " << dc.pcm_read_cycles << '\n';
  os << "pcm_write_cycles = " << dc.pcm_write_cycles << '\n';
  os << "pcm_write_gap_cycles = " << dc.pcm_write_gap_cycles << '\n';
  os << "sim_threads = " << dc.sim_threads << '\n';
  os << "fast_forward = " << (dc.fast_forward ? "true" : "false") << '\n';
  os << "model_data = " << (dc.model_data ? "true" : "false") << '\n';
}

}  // namespace hmcsim
