#include "chaos/engine.hpp"

#include <algorithm>
#include <sstream>

#include "core/device.hpp"
#include "core/link_layer.hpp"
#include "core/simulator.hpp"

namespace hmcsim {
namespace {

u32 clamp_u32(u64 v) {
  return v > 0xffffffffull ? 0xffffffffu : static_cast<u32>(v);
}

}  // namespace

ChaosEngine::ChaosEngine(const DeviceConfig& baseline) : baseline_(baseline) {}

Status ChaosEngine::arm(ChaosPlan plan, const DeviceConfig& cfg,
                        std::string* diagnostic) {
  const auto fail = [&](const ChaosEvent& ev, const std::string& msg) {
    if (diagnostic) {
      *diagnostic = std::to_string(ev.line) + ": " + msg;
    }
    return Status::InvalidConfig;
  };
  for (const ChaosEvent& ev : plan.events) {
    switch (ev.action) {
      case ChaosAction::LinkRetrain:
      case ChaosAction::KillLink:
      case ChaosAction::ReviveLink:
        if (ev.a >= cfg.num_links) {
          return fail(ev, std::string(to_string(ev.action)) + " link " +
                              std::to_string(ev.a) + " out of range (" +
                              std::to_string(cfg.num_links) +
                              " links configured)");
        }
        break;
      case ChaosAction::VaultFail:
      case ChaosAction::VaultUnfail:
      case ChaosAction::Wedge:
      case ChaosAction::Unwedge:
        if (ev.a >= cfg.num_vaults()) {
          return fail(ev, std::string(to_string(ev.action)) + " vault " +
                              std::to_string(ev.a) + " out of range (" +
                              std::to_string(cfg.num_vaults()) +
                              " vaults configured)");
        }
        break;
      default:
        break;
    }
  }
  if (!plan_.empty()) {
    // A campaign is already armed (checkpoint restore).  Re-passing the
    // same plan is the resume idiom; a different plan would desynchronize
    // the checkpointed cursor.
    if (chaos_plan_crc(plan) == chaos_plan_crc(plan_)) return Status::Ok;
    if (diagnostic) {
      *diagnostic = "chaos plan does not match the checkpointed campaign";
    }
    return Status::InvalidConfig;
  }
  plan_ = std::move(plan);
  return Status::Ok;
}

void ChaosEngine::apply_due(Simulator& sim) {
  if (cursor_ >= plan_.events.size()) return;
  const Cycle now = sim.cycle_;
  bool any = false;
  while (cursor_ < plan_.events.size() &&
         plan_.events[cursor_].cycle <= now) {
    apply_event(sim, plan_.events[cursor_]);
    ++cursor_;
    ++events_applied_;
    any = true;
  }
  // An event mutated simulated state; the armed fast path (if any) must
  // re-prove its eligibility against the new state.
  if (any) sim.ff_invalidate();
}

void ChaosEngine::apply_event(Simulator& sim, const ChaosEvent& ev) {
  DeviceConfig& cfg = sim.config_.device;
  // Rate knobs mutate both the simulator's master config and every
  // device's copy: the per-device injectors read the device copy, and the
  // checkpoint CFG section serializes the master, so a restored run
  // resumes under the rates that were live at save time.
  const auto set_rate = [&](u32 DeviceConfig::*field, u32 value) {
    cfg.*field = value;
    for (auto& dev : sim.devices_) dev->mutable_config().*field = value;
  };
  switch (ev.action) {
    case ChaosAction::LinkErrorPpm:
      set_rate(&DeviceConfig::link_error_rate_ppm,
               ev.restore ? baseline_.link_error_rate_ppm : clamp_u32(ev.a));
      break;
    case ChaosAction::LinkBurst:
      set_rate(&DeviceConfig::link_error_burst_len,
               ev.restore ? baseline_.link_error_burst_len
                          : std::max<u32>(1, clamp_u32(ev.a)));
      break;
    case ChaosAction::LinkRetrain:
      for (auto& dev : sim.devices_) {
        LinkProtoState& st = dev->links[ev.a].proto;
        st.retrain_until = std::max(st.retrain_until, sim.cycle_ + ev.b);
      }
      break;
    case ChaosAction::KillLink:
      for (auto& dev : sim.devices_) dev->links[ev.a].proto.dead = true;
      break;
    case ChaosAction::ReviveLink:
      for (auto& dev : sim.devices_) {
        LinkProtoState& st = dev->links[ev.a].proto;
        st.dead = false;
        st.fail_count = 0;  // a revived link earns a fresh escalation budget
      }
      break;
    case ChaosAction::DramSbePpm:
      set_rate(&DeviceConfig::dram_sbe_rate_ppm,
               ev.restore ? baseline_.dram_sbe_rate_ppm : clamp_u32(ev.a));
      break;
    case ChaosAction::DramDbePpm:
      set_rate(&DeviceConfig::dram_dbe_rate_ppm,
               ev.restore ? baseline_.dram_dbe_rate_ppm : clamp_u32(ev.a));
      break;
    case ChaosAction::VaultFail:
      for (auto& dev : sim.devices_) {
        dev->ras.failed_vaults |= u64{1} << ev.a;
      }
      break;
    case ChaosAction::VaultUnfail:
      for (auto& dev : sim.devices_) {
        dev->ras.failed_vaults &= ~(u64{1} << ev.a);
        dev->ras.vault_uncorrectable[ev.a] = 0;
      }
      break;
    case ChaosAction::Wedge:
      for (auto& dev : sim.devices_) {
        for (Cycle& busy : dev->vaults[ev.a].bank_busy_until) {
          busy = ~Cycle{0};
        }
      }
      break;
    case ChaosAction::Unwedge:
      for (auto& dev : sim.devices_) {
        for (Cycle& busy : dev->vaults[ev.a].bank_busy_until) busy = 0;
      }
      break;
    case ChaosAction::HostTimeout: {
      const u64 value = ev.restore ? ht_baseline_ : ev.a;
      ht_active_ = !ev.restore;
      ht_value_ = value;
      if (ht_hook_) ht_hook_(value);
      break;
    }
    case ChaosAction::BreakInvariant:
      // Test-only hook: corrupt one closed-form identity so the checker
      // and the shrinker can be exercised end to end.  Under the link
      // protocol the token-conservation ledger is corrupted; otherwise the
      // scrub accounting is (observable whenever scrubbing is configured).
      if (!sim.devices_.empty()) {
        Device& d0 = *sim.devices_.front();
        if (cfg.link_protocol) {
          d0.links[0].proto.tokens_debited += ev.a;
        } else {
          d0.stats.scrub_steps += ev.a;
        }
      }
      break;
  }
}

Cycle ChaosEngine::next_event_cycle() const {
  return cursor_ < plan_.events.size() ? plan_.events[cursor_].cycle
                                       : ~Cycle{0};
}

void ChaosEngine::check_cadence(Simulator& sim) {
  const u32 interval = sim.config_.device.chaos_invariants;
  if (violated_ || interval == 0) return;
  if (sim.cycle_ % interval != 0) return;
  ++invariant_checks_;
  (void)run_checks(sim);
}

bool ChaosEngine::check_now(Simulator& sim) {
  if (violated_) return false;
  return run_checks(sim);
}

void ChaosEngine::fail(Simulator& sim, const char* invariant,
                       std::string detail) {
  violated_ = true;
  violation_.invariant = invariant;
  violation_.cycle = sim.cycle_;
  violation_.detail = std::move(detail);
  // Freeze for post-mortem exactly like the watchdog: close any open
  // fast-forward span, disarm the fast path, snapshot the machine.
  sim.ff_close_skip_span();
  sim.ff_armed_ = false;
  std::ostringstream os;
  os << "chaos invariant violation: " << violation_.invariant << " at cycle "
     << violation_.cycle << '\n'
     << "  " << violation_.detail << '\n'
     << sim.build_state_dump();
  report_ = os.str();
}

bool ChaosEngine::run_checks(Simulator& sim) {
  const DeviceConfig& cfg = sim.config_.device;
  const Cycle now = sim.cycle_;
  for (const auto& dev_ptr : sim.devices_) {
    const Device& dev = *dev_ptr;
    if (cfg.link_protocol) {
      const i64 pool = resolved_link_tokens(cfg);
      for (u32 l = 0; l < cfg.num_links; ++l) {
        const LinkProtoState& st = dev.links[l].proto;
        const i64 in_flight = static_cast<i64>(st.tokens_debited) -
                              static_cast<i64>(st.tokens_returned);
        if (in_flight != pool - st.tokens) {
          std::ostringstream d;
          d << "dev " << dev.id() << " link " << l << ": debited "
            << st.tokens_debited << " - returned " << st.tokens_returned
            << " = " << in_flight << " but pool " << pool << " - tokens "
            << st.tokens << " = " << (pool - st.tokens);
          fail(sim, "link_token_identity", d.str());
          return false;
        }
        if (st.tokens < 0 || st.tokens > pool) {
          std::ostringstream d;
          d << "dev " << dev.id() << " link " << l << ": tokens "
            << st.tokens << " outside [0, " << pool << "]";
          fail(sim, "link_token_bounds", d.str());
          return false;
        }
        if (st.retry_buf_flits > cfg.link_retry_buffer_flits) {
          std::ostringstream d;
          d << "dev " << dev.id() << " link " << l << ": retry buffer holds "
            << st.retry_buf_flits << " FLITs, capacity "
            << cfg.link_retry_buffer_flits;
          fail(sim, "link_retry_buffer_bound", d.str());
          return false;
        }
      }
    }
    for (u32 l = 0; l < cfg.num_links; ++l) {
      const LinkState& link = dev.links[l];
      if (link.rqst.size() > cfg.xbar_depth ||
          link.rsp.size() > cfg.xbar_depth) {
        std::ostringstream d;
        d << "dev " << dev.id() << " link " << l << ": rqst="
          << link.rqst.size() << " rsp=" << link.rsp.size()
          << " exceed xbar_depth " << cfg.xbar_depth;
        fail(sim, "queue_bound", d.str());
        return false;
      }
    }
    if (dev.mode_rsp.size() > cfg.xbar_depth) {
      std::ostringstream d;
      d << "dev " << dev.id() << ": mode_rsp=" << dev.mode_rsp.size()
        << " exceeds xbar_depth " << cfg.xbar_depth;
      fail(sim, "queue_bound", d.str());
      return false;
    }
    for (u32 v = 0; v < cfg.num_vaults(); ++v) {
      const VaultState& vault = dev.vaults[v];
      if (vault.rqst.size() > cfg.vault_depth ||
          vault.rsp.size() > cfg.vault_depth) {
        std::ostringstream d;
        d << "dev " << dev.id() << " vault " << v << ": rqst="
          << vault.rqst.size() << " rsp=" << vault.rsp.size()
          << " exceed vault_depth " << cfg.vault_depth;
        fail(sim, "queue_bound", d.str());
        return false;
      }
    }
    if (cfg.scrub_interval_cycles != 0 && now != 0) {
      // Stage 6 runs a scrub step at every cycle c with c % interval == 0
      // and the fast-forward horizon never skips one, so after `now` cycles
      // the counter is an exact closed form of the clock.
      const u64 expected = (now - 1) / cfg.scrub_interval_cycles + 1;
      if (dev.stats.scrub_steps != expected) {
        std::ostringstream d;
        d << "dev " << dev.id() << ": scrub_steps " << dev.stats.scrub_steps
          << " != expected " << expected << " (interval "
          << cfg.scrub_interval_cycles << ", cycle " << now << ")";
        fail(sim, "scrub_accounting", d.str());
        return false;
      }
    }
    if (cfg.refresh_interval_cycles != 0 && now != 0) {
      // Staggered per-vault offsets make the exact count vault-dependent;
      // the closed-form upper bound still catches runaway refresh storms.
      const u64 per_vault = (now - 1) / cfg.refresh_interval_cycles + 2;
      const u64 bound = u64{cfg.num_vaults()} * per_vault;
      if (dev.stats.refreshes > bound) {
        std::ostringstream d;
        d << "dev " << dev.id() << ": refreshes " << dev.stats.refreshes
          << " exceed bound " << bound;
        fail(sim, "refresh_bound", d.str());
        return false;
      }
    }
    if (cfg.num_vaults() < 64 &&
        (dev.ras.failed_vaults >> cfg.num_vaults()) != 0) {
      std::ostringstream d;
      d << "dev " << dev.id() << ": failed_vaults 0x" << std::hex
        << dev.ras.failed_vaults << std::dec << " has bits past vault "
        << cfg.num_vaults() - 1;
      fail(sim, "vault_fail_mask", d.str());
      return false;
    }
  }
  if (cfg.watchdog_cycles != 0 && !sim.watchdog_fired_ &&
      sim.watchdog_stall_cycles_ > cfg.watchdog_cycles) {
    std::ostringstream d;
    d << "stall count " << sim.watchdog_stall_cycles_
      << " ran past the watchdog threshold " << cfg.watchdog_cycles
      << " without firing";
    fail(sim, "watchdog_liveness", d.str());
    return false;
  }
  if (host_probe_) {
    std::string msg;
    if (!host_probe_(&msg)) {
      fail(sim, "host_conservation", std::move(msg));
      return false;
    }
  }
  return true;
}

void ChaosEngine::set_host_timeout_hook(std::function<void(u64)> hook,
                                        u64 baseline) {
  ht_hook_ = std::move(hook);
  ht_baseline_ = baseline;
  // Checkpoint resume: a squeeze that was live at save time re-applies as
  // soon as the (re-created) driver wires itself back up.
  if (ht_active_ && ht_hook_) ht_hook_(ht_value_);
}

void ChaosEngine::set_host_probe(std::function<bool(std::string*)> probe) {
  host_probe_ = std::move(probe);
}

Status ChaosEngine::restore_progress(u64 cursor, u64 events_applied,
                                     u64 invariant_checks, bool ht_active,
                                     u64 ht_value) {
  if (cursor > plan_.events.size()) return Status::InvalidArgument;
  cursor_ = cursor;
  events_applied_ = events_applied;
  invariant_checks_ = invariant_checks;
  ht_active_ = ht_active;
  ht_value_ = ht_value;
  return Status::Ok;
}

void ChaosEngine::restore_baseline(u32 link_error_ppm, u32 link_burst,
                                   u32 dram_sbe, u32 dram_dbe) {
  baseline_.link_error_rate_ppm = link_error_ppm;
  baseline_.link_error_burst_len = link_burst;
  baseline_.dram_sbe_rate_ppm = dram_sbe;
  baseline_.dram_dbe_rate_ppm = dram_dbe;
}

void ChaosEngine::reset_progress() {
  cursor_ = 0;
  events_applied_ = 0;
  invariant_checks_ = 0;
  violated_ = false;
  violation_ = ChaosViolation{};
  report_.clear();
  ht_active_ = false;
  ht_value_ = 0;
}

}  // namespace hmcsim
