#include "chaos/shrink.hpp"

#include <algorithm>

namespace hmcsim {
namespace {

/// The shrink predicate: the candidate must reproduce the exact violation,
/// not just any violation — shrinking toward a different bug would hand the
/// user a reproducer for something else.
bool same_violation(const ChaosOracleResult& got,
                    const ChaosOracleResult& target) {
  return got.tripped && got.invariant == target.invariant &&
         got.cycle == target.cycle;
}

ChaosPlan plan_from(const std::vector<ChaosEvent>& events) {
  ChaosPlan p;
  p.events = events;
  return p;
}

}  // namespace

ChaosShrinkResult shrink_chaos_plan(const ChaosPlan& plan,
                                    const ChaosOracleResult& target,
                                    const ChaosOracle& oracle, u32 max_runs) {
  ChaosShrinkResult result;
  result.repro = target;

  std::vector<ChaosEvent> current = plan.events;
  u32 runs = 0;
  const auto probe = [&](const std::vector<ChaosEvent>& events,
                         ChaosOracleResult* out) {
    if (runs >= max_runs) return false;
    ++runs;
    const ChaosOracleResult got = oracle(plan_from(events));
    if (out != nullptr) *out = got;
    return same_violation(got, target);
  };

  // Phase 1: ddmin over the event list.  Partition into n chunks; try each
  // chunk alone, then each complement; on success recurse into the reduced
  // list, otherwise double the granularity until chunks are single events.
  usize n = 2;
  while (current.size() >= 2 && runs < max_runs) {
    n = std::min(n, current.size());
    const usize chunk = (current.size() + n - 1) / n;
    bool reduced = false;
    // Subsets first: a single chunk is the biggest possible cut.
    for (usize start = 0; start < current.size() && !reduced; start += chunk) {
      const usize stop = std::min(start + chunk, current.size());
      std::vector<ChaosEvent> subset(current.begin() + start,
                                     current.begin() + stop);
      if (subset.size() == current.size()) break;
      if (probe(subset, nullptr)) {
        current = std::move(subset);
        n = 2;
        reduced = true;
      }
    }
    if (reduced) continue;
    // Complements: drop one chunk at a time.
    for (usize start = 0; start < current.size() && !reduced; start += chunk) {
      const usize stop = std::min(start + chunk, current.size());
      std::vector<ChaosEvent> rest;
      rest.reserve(current.size() - (stop - start));
      rest.insert(rest.end(), current.begin(), current.begin() + start);
      rest.insert(rest.end(), current.begin() + stop, current.end());
      if (rest.empty() || rest.size() == current.size()) continue;
      if (probe(rest, nullptr)) {
        current = std::move(rest);
        n = std::max<usize>(2, n - 1);
        reduced = true;
      }
    }
    if (reduced) continue;
    if (n >= current.size()) break;  // 1-minimal at single-event granularity
    n = std::min(current.size(), n * 2);
  }

  // Phase 2: magnitude minimization.  For each surviving rate event,
  // binary-search the smallest `a` that still reproduces.
  for (usize i = 0; i < current.size() && runs < max_runs; ++i) {
    ChaosEvent& ev = current[i];
    if (!chaos_action_has_magnitude(ev.action) || ev.restore || ev.a == 0) {
      continue;
    }
    u64 lo = 0;       // exclusive: known (or assumed) not to reproduce
    u64 hi = ev.a;    // inclusive: known to reproduce
    while (hi - lo > 1 && runs < max_runs) {
      const u64 mid = lo + (hi - lo) / 2;
      std::vector<ChaosEvent> candidate = current;
      candidate[i].a = mid;
      if (probe(candidate, nullptr)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    ev.a = hi;
  }

  // Re-verify the final plan so result.repro reflects what it actually
  // trips (and so a probe-budget exhaustion can never hand back an
  // unverified candidate).
  ChaosOracleResult final_check;
  ++runs;
  final_check = oracle(plan_from(current));
  if (same_violation(final_check, target)) {
    result.plan = plan_from(current);
    result.repro = final_check;
  } else {
    result.plan = plan;  // fall back to the known-tripping original
  }
  result.oracle_runs = runs;
  return result;
}

}  // namespace hmcsim
