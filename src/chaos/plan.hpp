// Chaos plans: deterministic, scriptable fault campaigns (docs/CHAOS.md).
//
// A plan is a small line-oriented file compiled into a flat, cycle-sorted
// event list.  Each event arms, retargets, or disarms one of the existing
// fault injectors (link errors, dead links, DRAM fault rates, vault
// failure, vault wedges, host-timeout squeeze) at a precise cycle; the
// clock loop applies events exactly at their cycle on both the staged and
// the fast-forward path, so a plan replays bit-identically for any thread
// count.
//
// Grammar (one directive per line, `#` comments):
//
//   at <cycle> <action> [args...]
//   at <cycle> restore <action>            # reset a rate to its baseline
//   every <period> [from <cycle>] until <cycle> <action> [args...]
//   ramp <start> <end> <steps> <action> <from> <to>
//   storm <start> <end>                    # block: actions applied at
//     <action> [args...]                   # <start>, undone at <end>
//     ...
//   end
//   quiet <start> <end>                    # zero all fault rates, restore
//
// Parsing follows the config/trace loader discipline: every rejection is a
// typed "<line>: <message>" error, lines longer than 64 KiB are refused,
// and no input can crash the process (tests/chaos/test_plan_fuzz.cpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hmcsim {

enum class ChaosAction : u8 {
  LinkErrorPpm,    ///< a = transient link error odds per packet, ppm
  LinkBurst,       ///< a = consecutive packets hit per injected error
  LinkRetrain,     ///< a = link, b = forced retraining window, cycles
  KillLink,        ///< a = link (dead-link escalation: LINK_FAILED replies)
  ReviveLink,      ///< a = link (clear dead + the retry-exhaustion count)
  DramSbePpm,      ///< a = single-bit DRAM fault odds per access, ppm
  DramDbePpm,      ///< a = double-bit DRAM fault odds per access, ppm
  VaultFail,       ///< a = vault (mark failed, as if degraded out)
  VaultUnfail,     ///< a = vault (clear failed + the uncorrectable count)
  Wedge,           ///< a = vault (every bank busy forever)
  Unwedge,         ///< a = vault (release all banks)
  HostTimeout,     ///< a = host response timeout, cycles (0 = off)
  BreakInvariant,  ///< a = token-count corruption (test-only checker hook)
};

/// One compiled plan entry.  `restore` marks the closing edge of a
/// storm/quiet block (or an explicit `restore` directive): re-arm the
/// injector with the value the configuration started with.
struct ChaosEvent {
  Cycle cycle{0};
  ChaosAction action{ChaosAction::LinkErrorPpm};
  u64 a{0};
  u64 b{0};
  bool restore{false};
  /// Source line in the plan file (diagnostics; excluded from the CRC).
  u32 line{0};
};

/// A compiled plan: events stably sorted by cycle, so same-cycle events
/// apply in file order.
struct ChaosPlan {
  std::vector<ChaosEvent> events;
  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// A plan may expand (`every`, `ramp`, `storm`) but never past this.
inline constexpr usize kMaxChaosEvents = 65536;

struct ChaosPlanParseResult {
  bool ok{false};
  ChaosPlan plan;
  /// "<line>: <message>" on failure, mirroring ConfigParseResult.
  std::string error;
};

[[nodiscard]] ChaosPlanParseResult parse_chaos_plan(std::istream& in);
[[nodiscard]] ChaosPlanParseResult parse_chaos_plan_string(
    const std::string& text);

/// Emit `plan` as flat `at` directives; parse_chaos_plan(write_chaos_plan(p))
/// reproduces the same event list (the shrinker's reproducer format).
void write_chaos_plan(std::ostream& os, const ChaosPlan& plan);

/// Stable identity of the compiled event list, used to verify that a
/// checkpointed mid-campaign cursor is resumed against the same plan.
[[nodiscard]] u64 chaos_plan_crc(const ChaosPlan& plan);

[[nodiscard]] const char* to_string(ChaosAction action);
[[nodiscard]] bool chaos_action_from_string(const std::string& name,
                                            ChaosAction* out);
/// Actions whose first argument is a rate/magnitude (shrinkable, rampable,
/// baseline-restorable) rather than a structural index.
[[nodiscard]] bool chaos_action_has_magnitude(ChaosAction action);
/// Number of arguments the action takes in plan text.
[[nodiscard]] u32 chaos_action_arity(ChaosAction action);

}  // namespace hmcsim
