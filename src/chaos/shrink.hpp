// Automatic chaos-scenario shrinking (docs/CHAOS.md).
//
// When a plan trips an invariant, the full campaign is rarely the smallest
// reproducer.  shrink_chaos_plan() runs classic ddmin delta-debugging over
// the compiled event list — repeatedly re-running the simulation through a
// caller-supplied oracle — to find a 1-minimal subset of events that still
// trips the SAME invariant at the SAME first-violation cycle, then
// binary-searches each surviving rate magnitude down to the smallest value
// that still reproduces.  The result replays bit-identically: the oracle
// runs a fresh simulator per candidate, so no state leaks between probes.
#pragma once

#include <functional>

#include "chaos/plan.hpp"

namespace hmcsim {

/// What one oracle run of a candidate plan observed.
struct ChaosOracleResult {
  bool tripped{false};
  std::string invariant;  ///< violated invariant name ("" when clean)
  Cycle cycle{0};         ///< first-violation cycle
};

/// Runs the workload under `plan` in a fresh simulator and reports whether
/// an invariant tripped.  Must be deterministic.
using ChaosOracle = std::function<ChaosOracleResult(const ChaosPlan&)>;

struct ChaosShrinkResult {
  ChaosPlan plan;        ///< minimal reproducer (events in cycle order)
  ChaosOracleResult repro;  ///< what the minimal plan trips
  u32 oracle_runs{0};    ///< probes spent (diagnostics)
};

/// Shrink `plan` against `target` (the violation the full plan produced).
/// Every candidate the search keeps reproduces target.invariant at
/// target.cycle exactly; if nothing smaller reproduces, the original plan
/// comes back unchanged.  `max_runs` bounds the probe budget.
[[nodiscard]] ChaosShrinkResult shrink_chaos_plan(const ChaosPlan& plan,
                                                  const ChaosOracleResult& target,
                                                  const ChaosOracle& oracle,
                                                  u32 max_runs = 512);

}  // namespace hmcsim
