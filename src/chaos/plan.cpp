#include "chaos/plan.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "io/bounded_line.hpp"
#include "packet/crc32.hpp"

namespace hmcsim {
namespace {

struct ActionInfo {
  const char* name;
  ChaosAction action;
  u32 arity;
  bool magnitude;
};

// Order matches the ChaosAction enum (to_string indexes into it).
constexpr ActionInfo kActions[] = {
    {"link_error_ppm", ChaosAction::LinkErrorPpm, 1, true},
    {"link_burst", ChaosAction::LinkBurst, 1, true},
    {"link_retrain", ChaosAction::LinkRetrain, 2, false},
    {"kill_link", ChaosAction::KillLink, 1, false},
    {"revive_link", ChaosAction::ReviveLink, 1, false},
    {"dram_sbe_ppm", ChaosAction::DramSbePpm, 1, true},
    {"dram_dbe_ppm", ChaosAction::DramDbePpm, 1, true},
    {"vault_fail", ChaosAction::VaultFail, 1, false},
    {"vault_unfail", ChaosAction::VaultUnfail, 1, false},
    {"wedge", ChaosAction::Wedge, 1, false},
    {"unwedge", ChaosAction::Unwedge, 1, false},
    {"host_timeout", ChaosAction::HostTimeout, 1, true},
    {"break_invariant", ChaosAction::BreakInvariant, 1, true},
};

const ActionInfo& info(ChaosAction action) {
  return kActions[static_cast<usize>(action)];
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool parse_number(const std::string& text, u64& out) {
  std::string_view sv = text;
  if (sv.empty()) return false;
  int base = 10;
  if (sv.size() > 2 && sv[0] == '0' && (sv[1] == 'x' || sv[1] == 'X')) {
    sv.remove_prefix(2);
    base = 16;
  }
  const auto [ptr, ec] =
      std::from_chars(sv.data(), sv.data() + sv.size(), out, base);
  return ec == std::errc{} && ptr == sv.data() + sv.size();
}

ChaosPlanParseResult fail(usize line, const std::string& message) {
  ChaosPlanParseResult r;
  r.error = std::to_string(line) + ": " + message;
  return r;
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream fields(line);
  std::string word;
  while (fields >> word) words.push_back(word);
  return words;
}

/// The closing edge a storm emits for an opening action: rate actions
/// restore the baseline, structural actions apply their inverse, and
/// self-expiring actions (retrain windows, the test hook) close nothing.
bool closing_event(const ChaosEvent& open, ChaosEvent* close) {
  if (info(open.action).magnitude &&
      open.action != ChaosAction::BreakInvariant) {
    *close = open;
    close->a = 0;
    close->b = 0;
    close->restore = true;
    return true;
  }
  switch (open.action) {
    case ChaosAction::KillLink:
      *close = open;
      close->action = ChaosAction::ReviveLink;
      return true;
    case ChaosAction::VaultFail:
      *close = open;
      close->action = ChaosAction::VaultUnfail;
      return true;
    case ChaosAction::Wedge:
      *close = open;
      close->action = ChaosAction::Unwedge;
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* to_string(ChaosAction action) { return info(action).name; }

bool chaos_action_from_string(const std::string& name, ChaosAction* out) {
  for (const ActionInfo& a : kActions) {
    if (name == a.name) {
      *out = a.action;
      return true;
    }
  }
  return false;
}

bool chaos_action_has_magnitude(ChaosAction action) {
  return info(action).magnitude;
}

u32 chaos_action_arity(ChaosAction action) { return info(action).arity; }

ChaosPlanParseResult parse_chaos_plan(std::istream& in) {
  ChaosPlan plan;
  std::string raw;
  usize line_no = 0;

  // A storm block collects its body until `end`, then emits the opening
  // events at storm_start and the closing events at storm_end.
  bool in_storm = false;
  Cycle storm_start = 0;
  Cycle storm_end = 0;
  std::vector<ChaosEvent> storm_body;

  const auto push_event = [&plan](const ChaosEvent& ev) {
    if (plan.events.size() >= kMaxChaosEvents) return false;
    plan.events.push_back(ev);
    return true;
  };

  // Parse "<action> [args...]" starting at words[at]; fills action/a/b (or
  // restore) and returns an empty string, else the error message.
  const auto parse_action =
      [&](const std::vector<std::string>& words, usize at, ChaosEvent& ev,
          bool allow_restore) -> std::string {
    if (at >= words.size()) return "missing action";
    usize i = at;
    if (words[i] == "restore") {
      if (!allow_restore) return "'restore' is not valid here";
      ++i;
      if (i >= words.size()) return "restore needs an action name";
      if (!chaos_action_from_string(words[i], &ev.action)) {
        return "unknown action '" + words[i] + "'";
      }
      if (!chaos_action_has_magnitude(ev.action) ||
          ev.action == ChaosAction::BreakInvariant) {
        return "only rate actions can be restored (got '" + words[i] + "')";
      }
      if (i + 1 != words.size()) return "restore takes no arguments";
      ev.restore = true;
      ev.a = 0;
      ev.b = 0;
      return "";
    }
    if (!chaos_action_from_string(words[i], &ev.action)) {
      return "unknown action '" + words[i] + "'";
    }
    const u32 arity = chaos_action_arity(ev.action);
    if (words.size() - i - 1 != arity) {
      return std::string(words[i]) + " takes " + std::to_string(arity) +
             " argument" + (arity == 1 ? "" : "s") + ", got " +
             std::to_string(words.size() - i - 1);
    }
    u64 args[2] = {0, 0};
    for (u32 k = 0; k < arity; ++k) {
      if (!parse_number(words[i + 1 + k], args[k])) {
        return "bad number '" + words[i + 1 + k] + "'";
      }
    }
    ev.a = args[0];
    ev.b = args[1];
    ev.restore = false;
    return "";
  };

  for (;;) {
    const io::LineRead lr = io::getline_bounded(in, raw);
    if (lr == io::LineRead::Eof) break;
    ++line_no;
    if (lr == io::LineRead::TooLong) {
      return fail(line_no, "line exceeds " +
                               std::to_string(io::kMaxLineBytes) + " bytes");
    }
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const std::vector<std::string> words = split_words(line);
    const std::string& head = words[0];

    if (in_storm) {
      if (head == "end") {
        if (words.size() != 1) return fail(line_no, "end takes no arguments");
        for (const ChaosEvent& open : storm_body) {
          if (!push_event(open)) {
            return fail(line_no, "plan expands past " +
                                     std::to_string(kMaxChaosEvents) +
                                     " events");
          }
          ChaosEvent close;
          if (closing_event(open, &close)) {
            close.cycle = storm_end;
            close.line = open.line;
            if (!push_event(close)) {
              return fail(line_no, "plan expands past " +
                                       std::to_string(kMaxChaosEvents) +
                                       " events");
            }
          }
        }
        storm_body.clear();
        in_storm = false;
        continue;
      }
      if (head == "at" || head == "every" || head == "ramp" ||
          head == "storm" || head == "quiet") {
        return fail(line_no,
                    "'" + head + "' is not valid inside a storm block "
                    "(missing 'end'?)");
      }
      ChaosEvent ev;
      ev.cycle = storm_start;
      ev.line = static_cast<u32>(line_no);
      const std::string err = parse_action(words, 0, ev, false);
      if (!err.empty()) return fail(line_no, err);
      storm_body.push_back(ev);
      continue;
    }

    if (head == "at") {
      if (words.size() < 3) {
        return fail(line_no, "at needs: at <cycle> <action> [args...]");
      }
      ChaosEvent ev;
      if (!parse_number(words[1], ev.cycle)) {
        return fail(line_no, "bad cycle '" + words[1] + "'");
      }
      ev.line = static_cast<u32>(line_no);
      const std::string err = parse_action(words, 2, ev, true);
      if (!err.empty()) return fail(line_no, err);
      if (!push_event(ev)) {
        return fail(line_no, "plan expands past " +
                                 std::to_string(kMaxChaosEvents) + " events");
      }
    } else if (head == "every") {
      // every <period> [from <cycle>] until <cycle> <action> [args...]
      if (words.size() < 4) {
        return fail(line_no,
                    "every needs: every <period> [from <cycle>] "
                    "until <cycle> <action> [args...]");
      }
      u64 period = 0;
      if (!parse_number(words[1], period) || period == 0) {
        return fail(line_no, "every needs a nonzero period");
      }
      usize i = 2;
      u64 from = 0;
      if (words[i] == "from") {
        if (i + 1 >= words.size() || !parse_number(words[i + 1], from)) {
          return fail(line_no, "from needs a cycle");
        }
        i += 2;
      }
      if (i >= words.size() || words[i] != "until") {
        return fail(line_no, "every needs an 'until <cycle>' bound");
      }
      ++i;
      u64 until = 0;
      if (i >= words.size() || !parse_number(words[i], until)) {
        return fail(line_no, "until needs a cycle");
      }
      ++i;
      if (until < from) {
        return fail(line_no, "until must not precede from");
      }
      ChaosEvent proto;
      proto.line = static_cast<u32>(line_no);
      const std::string err = parse_action(words, i, proto, true);
      if (!err.empty()) return fail(line_no, err);
      for (u64 c = from;; c += period) {
        ChaosEvent ev = proto;
        ev.cycle = c;
        if (!push_event(ev)) {
          return fail(line_no, "plan expands past " +
                                   std::to_string(kMaxChaosEvents) +
                                   " events");
        }
        if (until - c < period) break;  // next firing would pass `until`
      }
    } else if (head == "ramp") {
      // ramp <start> <end> <steps> <action> <from> <to>
      if (words.size() != 7) {
        return fail(line_no,
                    "ramp needs: ramp <start> <end> <steps> <action> "
                    "<from> <to>");
      }
      u64 start = 0, end = 0, steps = 0, lo = 0, hi = 0;
      if (!parse_number(words[1], start) || !parse_number(words[2], end)) {
        return fail(line_no, "bad ramp cycle bounds");
      }
      if (end <= start) return fail(line_no, "ramp end must follow start");
      if (!parse_number(words[3], steps) || steps == 0) {
        return fail(line_no, "ramp needs a nonzero step count");
      }
      ChaosEvent proto;
      proto.line = static_cast<u32>(line_no);
      if (!chaos_action_from_string(words[4], &proto.action)) {
        return fail(line_no, "unknown action '" + words[4] + "'");
      }
      if (!chaos_action_has_magnitude(proto.action)) {
        return fail(line_no, "ramp needs a rate action (got '" + words[4] +
                                 "')");
      }
      if (!parse_number(words[5], lo) || !parse_number(words[6], hi)) {
        return fail(line_no, "bad ramp value bounds");
      }
      for (u64 s = 0; s <= steps; ++s) {
        ChaosEvent ev = proto;
        ev.cycle = start + (end - start) * s / steps;
        ev.a = lo <= hi ? lo + (hi - lo) * s / steps
                        : lo - (lo - hi) * s / steps;
        if (!push_event(ev)) {
          return fail(line_no, "plan expands past " +
                                   std::to_string(kMaxChaosEvents) +
                                   " events");
        }
      }
    } else if (head == "storm") {
      if (words.size() != 3) {
        return fail(line_no, "storm needs: storm <start> <end>");
      }
      if (!parse_number(words[1], storm_start) ||
          !parse_number(words[2], storm_end)) {
        return fail(line_no, "bad storm cycle bounds");
      }
      if (storm_end <= storm_start) {
        return fail(line_no, "storm end must follow start");
      }
      in_storm = true;
    } else if (head == "quiet") {
      // Zero every fault rate at <start>, restore the baselines at <end>.
      if (words.size() != 3) {
        return fail(line_no, "quiet needs: quiet <start> <end>");
      }
      u64 start = 0, end = 0;
      if (!parse_number(words[1], start) || !parse_number(words[2], end)) {
        return fail(line_no, "bad quiet cycle bounds");
      }
      if (end <= start) return fail(line_no, "quiet end must follow start");
      constexpr ChaosAction kRates[] = {ChaosAction::LinkErrorPpm,
                                        ChaosAction::DramSbePpm,
                                        ChaosAction::DramDbePpm};
      for (const ChaosAction rate : kRates) {
        ChaosEvent open;
        open.cycle = start;
        open.action = rate;
        open.a = 0;
        open.line = static_cast<u32>(line_no);
        ChaosEvent close = open;
        close.cycle = end;
        close.restore = true;
        if (!push_event(open) || !push_event(close)) {
          return fail(line_no, "plan expands past " +
                                   std::to_string(kMaxChaosEvents) +
                                   " events");
        }
      }
    } else if (head == "end") {
      return fail(line_no, "'end' without a matching storm block");
    } else {
      return fail(line_no, "unknown directive '" + head + "'");
    }
  }

  if (in_storm) {
    return fail(line_no == 0 ? 1 : line_no,
                "unterminated storm block (missing 'end')");
  }

  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const ChaosEvent& x, const ChaosEvent& y) { return x.cycle < y.cycle; });
  ChaosPlanParseResult r;
  r.ok = true;
  r.plan = std::move(plan);
  return r;
}

ChaosPlanParseResult parse_chaos_plan_string(const std::string& text) {
  std::istringstream in(text);
  return parse_chaos_plan(in);
}

void write_chaos_plan(std::ostream& os, const ChaosPlan& plan) {
  os << "# hmcsim chaos plan (compiled event list)\n";
  for (const ChaosEvent& ev : plan.events) {
    os << "at " << ev.cycle << ' ';
    if (ev.restore) {
      os << "restore " << to_string(ev.action) << '\n';
      continue;
    }
    os << to_string(ev.action);
    const u32 arity = chaos_action_arity(ev.action);
    if (arity >= 1) os << ' ' << ev.a;
    if (arity >= 2) os << ' ' << ev.b;
    os << '\n';
  }
}

u64 chaos_plan_crc(const ChaosPlan& plan) {
  // Canonical little-endian serialization of the semantic fields (the
  // source line number is diagnostic only).
  std::vector<u8> bytes;
  bytes.reserve(plan.events.size() * 26);
  const auto put_u64 = [&bytes](u64 v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<u8>(v >> (i * 8)));
  };
  for (const ChaosEvent& ev : plan.events) {
    put_u64(ev.cycle);
    bytes.push_back(static_cast<u8>(ev.action));
    bytes.push_back(ev.restore ? 1 : 0);
    put_u64(ev.a);
    put_u64(ev.b);
  }
  const u64 count = plan.events.size();
  return crc::crc32k(bytes) ^ (count << 32);
}

}  // namespace hmcsim
