// Chaos-orchestration engine: deterministic fault-campaign playback plus a
// live invariant checker (docs/CHAOS.md).
//
// The engine owns a compiled ChaosPlan and a cursor into it.  The clock
// loop calls apply_due() at the top of every clock() — before the stage
// dispatch AND before the fast-forward dispatch, so an event lands at its
// exact cycle on both paths and the replay is bit-identical for any thread
// count.  Events retarget the existing injectors: fault-rate knobs mutate
// the device configuration in place (so checkpoints capture the live
// rates), structural events flip the same state bits the RAS machinery
// maintains (dead links, failed vaults, busy banks).
//
// The invariant checker rides stage 6 after the cycle increment, every
// `chaos_invariants` cycles.  Every check is a closed-form conservation
// identity or occupancy bound over simulated state, so a pass costs a few
// hundred comparisons and nothing when the knob is off.  The first
// violation freezes the machine exactly like the forward-progress
// watchdog: clock() refuses further edges and a post-mortem report
// (violation + the watchdog-style state dump) is kept for inspection.
#pragma once

#include <functional>
#include <string>

#include "chaos/plan.hpp"
#include "common/status.hpp"
#include "core/config.hpp"

namespace hmcsim {

class Simulator;

/// The first invariant violation the checker observed.
struct ChaosViolation {
  std::string invariant;  ///< stable identifier, e.g. "link_token_identity"
  Cycle cycle{0};         ///< post-increment cycle of the failing check
  std::string detail;     ///< human-readable expected-vs-got description
};

class ChaosEngine {
 public:
  /// Captures the restore baselines (the fault rates the configuration
  /// started with) from `baseline`; `restore` events re-arm these values.
  explicit ChaosEngine(const DeviceConfig& baseline);

  /// Arm a compiled plan.  Validates every structural index against the
  /// configuration (link < num_links, vault < num_vaults); re-arming with
  /// a plan whose CRC matches the current one is a no-op so a checkpoint
  /// resume may re-pass the same plan file without resetting the cursor.
  [[nodiscard]] Status arm(ChaosPlan plan, const DeviceConfig& cfg,
                           std::string* diagnostic);

  [[nodiscard]] const ChaosPlan& plan() const { return plan_; }
  [[nodiscard]] u64 plan_crc() const { return chaos_plan_crc(plan_); }

  /// Apply every event due at the simulator's current cycle.  Called from
  /// clock() before any stage or fast-forward dispatch; invalidates the
  /// fast path when an event lands.
  void apply_due(Simulator& sim);

  /// Run the invariant suite when the cadence divides the (already
  /// incremented) cycle counter.  Called from stage 6; on the fast-forward
  /// path the arm horizon guarantees cadence cycles execute staged.
  void check_cadence(Simulator& sim);

  /// Run the invariant suite unconditionally (tools and tests).  Returns
  /// false — and latches the violation — on the first failing identity.
  bool check_now(Simulator& sim);

  /// First cycle >= the simulator's current cycle with a pending event
  /// (~Cycle{0} when the campaign is exhausted).  Fast-forward horizon.
  [[nodiscard]] Cycle next_event_cycle() const;

  [[nodiscard]] bool violated() const { return violated_; }
  [[nodiscard]] const ChaosViolation& violation() const { return violation_; }
  /// Violation + state dump, built when the first check failed ("" before).
  [[nodiscard]] const std::string& report() const { return report_; }

  /// Host-timeout squeeze wiring: `hook(cycles)` retargets the host
  /// driver's response deadline; `baseline` is the value `restore` re-arms.
  /// Installing the hook re-applies a live override (checkpoint resume).
  void set_host_timeout_hook(std::function<void(u64)> hook, u64 baseline);
  /// Host-side conservation probe (zombie-tag accounting); consulted by
  /// every invariant pass when installed.
  void set_host_probe(std::function<bool(std::string*)> probe);

  // Campaign progress, serialized in a checkpoint's CHAO section.
  [[nodiscard]] u64 cursor() const { return cursor_; }
  [[nodiscard]] u64 events_applied() const { return events_applied_; }
  [[nodiscard]] u64 invariant_checks() const { return invariant_checks_; }
  [[nodiscard]] bool host_timeout_active() const { return ht_active_; }
  [[nodiscard]] u64 host_timeout_value() const { return ht_value_; }
  [[nodiscard]] const DeviceConfig& baseline() const { return baseline_; }

  /// Adopt checkpointed campaign progress (restore path).  The cursor must
  /// not run past the plan.
  [[nodiscard]] Status restore_progress(u64 cursor, u64 events_applied,
                                        u64 invariant_checks, bool ht_active,
                                        u64 ht_value);
  /// Overwrite the captured baselines (restore path: the live config in the
  /// checkpoint already carries mid-campaign rates).
  void restore_baseline(u32 link_error_ppm, u32 link_burst, u32 dram_sbe,
                        u32 dram_dbe);

  /// Rewind campaign progress and clear any latched violation (reset()).
  /// Does not touch the baselines or the plan.
  void reset_progress();

 private:
  void apply_event(Simulator& sim, const ChaosEvent& ev);
  /// Returns false and records `violation_` on the first failing check.
  bool run_checks(Simulator& sim);
  void fail(Simulator& sim, const char* invariant, std::string detail);

  ChaosPlan plan_;
  u64 cursor_{0};           ///< next un-applied plan event
  u64 events_applied_{0};
  u64 invariant_checks_{0};
  bool violated_{false};
  ChaosViolation violation_;
  std::string report_;

  DeviceConfig baseline_;   ///< pre-campaign fault rates (restore targets)
  std::function<void(u64)> ht_hook_;
  u64 ht_baseline_{0};
  bool ht_active_{false};   ///< a host-timeout override is currently armed
  u64 ht_value_{0};
  std::function<bool(std::string*)> host_probe_;
};

}  // namespace hmcsim
