// Trace-driven workloads.
//
// Trace-driven memory simulation is the classic methodology the paper's
// related-work section surveys (Uhlig & Mudge [15]); real adopters replay
// application address traces rather than synthetic streams.  This module
// defines a minimal, line-oriented request-trace format and a Generator
// that replays it through the standard HostDriver:
//
//   # comment
//   R 0x1a2b40 64        read  of 64 bytes at 0x1a2b40
//   W 0x000100 128       write of 128 bytes
//   A 0x000200           16-byte atomic (2ADD8)
//
// Sizes must be 16..128 in multiples of 16 (HMC request granularity); the
// replay wraps around at end-of-trace so a short trace can drive an
// arbitrarily long run.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace hmcsim {

/// Parse one trace line.  Returns false for malformed lines; comments and
/// blank lines return false with `is_comment` set.  For malformed lines
/// `why` (when non-null) receives the reason — "unknown op 'X'",
/// "bad address", "bad size", "trailing garbage" — so loaders can name
/// exactly what is wrong and where instead of skipping it silently.
bool parse_trace_request(const std::string& line, RequestDesc& out,
                         bool* is_comment = nullptr,
                         std::string* why = nullptr);

/// Serialize requests in the canonical text form (inverse of the parser).
void write_request_trace(std::ostream& os,
                         std::span<const RequestDesc> requests);

/// Generator replaying a request trace, wrapping at the end.
class TraceFileGenerator final : public Generator {
 public:
  /// Load every request from `in`.  Malformed lines are counted and
  /// skipped; the trace is invalid when it ends up empty.
  explicit TraceFileGenerator(std::istream& in);

  /// Wrap an in-memory request list directly.
  explicit TraceFileGenerator(std::vector<RequestDesc> requests);

  [[nodiscard]] bool valid() const { return !requests_.empty(); }
  [[nodiscard]] usize size() const { return requests_.size(); }
  [[nodiscard]] usize malformed_lines() const { return malformed_; }

  /// Context for the first malformed line: 1-based line number and the
  /// parser's reason.  Zero/empty when the whole trace parsed cleanly.
  [[nodiscard]] usize first_error_line() const { return first_error_line_; }
  [[nodiscard]] const std::string& first_error() const {
    return first_error_;
  }

  RequestDesc next() override;
  [[nodiscard]] const char* name() const override { return "trace_file"; }

 private:
  std::vector<RequestDesc> requests_;
  usize malformed_{0};
  usize first_error_line_{0};
  std::string first_error_;
  usize pos_{0};
};

}  // namespace hmcsim
