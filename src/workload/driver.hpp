// Host driver: the paper's test application loop.
//
// "The application will send as many memory requests as possible to the
// target device or devices until an appropriate stall is received
// indicating that the crossbar arbitration queues are full.  The
// application selects appropriate HMC links in a simple round-robin fashion
// in order to naively balance the traffic across all possible injection
// points." (§VI.A)
//
// The driver owns tag allocation (9-bit tag space per host port), response
// correlation, latency accounting, and the send/drain/clock cycle loop.
// An alternative locality-aware injection policy backs the paper's
// corollary that "locality-aware host devices have the potential to reduce
// memory latency and reduce internal memory device contention" (§VI.B,
// ablation A3).
#pragma once

#include <array>
#include <vector>

#include "common/latency.hpp"
#include "core/policy.hpp"
#include "core/simulator.hpp"
#include "workload/generator.hpp"

namespace hmcsim {

enum class TargetPolicy : u8 {
  FixedCube,       ///< all requests target DriverConfig::target_cub
  RoundRobinCubes, ///< spread requests across every configured device
};

struct DriverConfig {
  u64 total_requests{u64{1} << 20};
  /// Maximum in-flight requests per host port; capped by the 512-entry tag
  /// space.
  u32 max_outstanding_per_port{512};
  InjectionPolicy policy{InjectionPolicy::RoundRobin};
  TargetPolicy targets{TargetPolicy::FixedCube};
  u32 target_cub{0};
  /// Abort the run after this many cycles (0 = unlimited).  A safety net
  /// for deliberately misconfigured topologies that can never complete.
  Cycle max_cycles{0};
};

// LatencyStats (send cycle -> response-drain cycle aggregation) lives in
// common/latency.hpp so the lifecycle observability layer can reuse it.

struct DriverResult {
  Cycle cycles{0};        ///< simulated clock at completion
  u64 sent{0};
  u64 completed{0};       ///< responses received (plus posted sends)
  u64 errors{0};          ///< ERROR responses among completed
  u64 send_stalls{0};     ///< Stalled returns observed by the host
  bool hit_cycle_cap{false};
  LatencyStats latency;
};

class HostDriver {
 public:
  /// The simulator must be initialized; the generator outlives the driver.
  HostDriver(Simulator& sim, Generator& generator, DriverConfig config);

  /// Run to completion: inject config.total_requests requests and drain
  /// every response.
  DriverResult run();

 private:
  struct PortState {
    u32 dev;
    u32 link;
    std::vector<u16> free_tags;                 // LIFO free list
    std::array<Cycle, 512> sent_at{};           // tag -> send cycle
    u32 outstanding{0};
  };

  /// Drain every ready response on every port; updates latency/errors.
  void drain_responses(DriverResult& result);

  /// Inject until every port stalls or the request budget is exhausted.
  void inject(DriverResult& result);

  /// Pick the port for the next request under the configured policy;
  /// returns nullptr when no port can take it right now.
  PortState* pick_port(const RequestDesc& desc, u64 blocked_mask,
                       usize& port_index);

  Simulator& sim_;
  Generator& gen_;
  DriverConfig cfg_;
  std::vector<PortState> ports_;
  usize rr_next_{0};
  u32 next_cube_{0};
  bool have_pending_{false};
  RequestDesc pending_{};
  u32 pending_cub_{0};
};

}  // namespace hmcsim
