// Host driver: the paper's test application loop.
//
// "The application will send as many memory requests as possible to the
// target device or devices until an appropriate stall is received
// indicating that the crossbar arbitration queues are full.  The
// application selects appropriate HMC links in a simple round-robin fashion
// in order to naively balance the traffic across all possible injection
// points." (§VI.A)
//
// The driver owns tag allocation (9-bit tag space per host port), response
// correlation, latency accounting, and the send/drain/clock cycle loop.
// An alternative locality-aware injection policy backs the paper's
// corollary that "locality-aware host devices have the potential to reduce
// memory latency and reduce internal memory device contention" (§VI.B,
// ablation A3).
//
// Host-side resilience (RAS): with response_timeout_cycles set, the driver
// arms a per-tag deadline on every non-posted send.  A missed deadline
// marks the tag a *zombie* — the tag stays allocated until the (possibly
// very late) response actually surfaces, so a retry can never collide with
// a stale in-flight packet — and the request is resent under a fresh tag
// after an exponential backoff, up to retry_limit times.  Past the budget
// the request terminates as a host-side timeout (DriverResult::abandoned),
// preserving conservation: every injected request completes exactly once,
// as data, as an ERROR response, or as an abandonment.
#pragma once

#include <array>
#include <deque>
#include <iosfwd>
#include <vector>

#include "common/latency.hpp"
#include "core/policy.hpp"
#include "core/simulator.hpp"
#include "workload/generator.hpp"

namespace hmcsim {

enum class TargetPolicy : u8 {
  FixedCube,       ///< all requests target DriverConfig::target_cub
  RoundRobinCubes, ///< spread requests across every configured device
};

struct DriverConfig {
  u64 total_requests{u64{1} << 20};
  /// Maximum in-flight requests per host port; capped by the 512-entry tag
  /// space.
  u32 max_outstanding_per_port{512};
  InjectionPolicy policy{InjectionPolicy::RoundRobin};
  TargetPolicy targets{TargetPolicy::FixedCube};
  u32 target_cub{0};
  /// Abort the run after this many cycles (0 = unlimited).  A safety net
  /// for deliberately misconfigured topologies that can never complete.
  Cycle max_cycles{0};
  /// Cycles to wait for a response before declaring a host-side timeout
  /// (0 = never time out).
  Cycle response_timeout_cycles{0};
  /// Resends attempted per request after a timeout; past the budget the
  /// request is abandoned (DriverResult::abandoned) instead of retried.
  u32 retry_limit{0};
  /// Backoff before the first resend; doubles per subsequent resend of the
  /// same request (capped at base << 16).  0 = resend on the next cycle.
  Cycle retry_backoff_cycles{0};
};

// LatencyStats (send cycle -> response-drain cycle aggregation) lives in
// common/latency.hpp so the lifecycle observability layer can reuse it.

struct DriverResult {
  Cycle cycles{0};        ///< simulated clock at completion
  u64 sent{0};            ///< logical requests injected (excludes resends)
  u64 completed{0};       ///< responses received (plus posted sends)
  u64 errors{0};          ///< ERROR responses among completed
  u64 send_stalls{0};     ///< Stalled returns observed by the host
  u64 timeouts{0};        ///< response deadlines missed by the host
  u64 retries{0};         ///< resends performed after a timeout
  u64 abandoned{0};       ///< requests given up after the retry budget
  bool hit_cycle_cap{false};
  bool watchdog_fired{false};  ///< simulator watchdog tripped mid-run
  LatencyStats latency;
};

class HostDriver {
 public:
  /// The simulator must be initialized; the generator outlives the driver.
  HostDriver(Simulator& sim, Generator& generator, DriverConfig config);

  /// Run to completion: inject config.total_requests requests and drain
  /// every response (or retry/abandon it under the resilience policy).
  DriverResult run();

  /// One drive-loop iteration: drain responses, scan deadlines, inject,
  /// clock.  Returns true while the run is incomplete.  Accumulates into
  /// the caller-owned result so a run can be checkpointed mid-flight.
  bool step(DriverResult& result);

  /// Final response collection after an external step() loop ends — run()
  /// is exactly `while (step(r)) {}` followed by finish(r).  Harnesses
  /// that drive step() themselves (e.g. to interleave periodic
  /// checkpoints, tools/hmcsim_run.cpp) must call this once afterwards.
  void finish(DriverResult& result);

  /// Serialize tag/retry/progress state so a run can resume after a
  /// simulator checkpoint restore.  The caller re-creates the driver over
  /// an identically-seeded generator; restore() replays the generator by
  /// recorded call count to re-synchronize it.
  [[nodiscard]] Status save(std::ostream& os) const;
  [[nodiscard]] Status restore(std::istream& is);

  /// In-flight (tag-table) occupancy summed over every host port.  Feeds the
  /// host-tag occupancy telemetry track.
  [[nodiscard]] u32 outstanding_total() const {
    u32 n = 0;
    for (const PortState& p : ports_) n += p.outstanding;
    return n;
  }

  /// Retarget the response deadline mid-run (chaos host_timeout events).
  /// Applies to sends from the next injection on; deadlines already armed
  /// keep the value they were stamped with.
  void set_response_timeout(Cycle cycles) {
    cfg_.response_timeout_cycles = cycles;
  }
  [[nodiscard]] Cycle response_timeout() const {
    return cfg_.response_timeout_cycles;
  }

  /// Host-side conservation identities, checked against the caller-owned
  /// accumulated result: per-port tag-pool conservation (free + outstanding
  /// == capacity), zombie-tag accounting (zombies never exceed outstanding)
  /// and logical request conservation (sent − completed == live in-flight +
  /// queued retries).  The chaos invariant checker consults this through
  /// ChaosEngine::set_host_probe.  Returns false and describes the first
  /// broken identity in `detail`.
  [[nodiscard]] bool invariants_ok(const DriverResult& result,
                                   std::string* detail) const;

 private:
  /// Book-keeping for one allocated tag.
  struct InFlight {
    RequestDesc desc{};
    Cycle sent_at{0};
    Cycle deadline{0};  ///< 0 = no timeout armed
    u32 cub{0};
    u32 attempts{0};    ///< resends so far (0 = first transmission)
    bool zombie{false}; ///< timed out; tag held until the response lands
  };

  struct PortState {
    u32 dev;
    u32 link;
    std::vector<u16> free_tags;                 // LIFO free list
    std::array<InFlight, 512> inflight{};       // tag -> book-keeping
    u32 outstanding{0};
  };

  /// A timed-out request waiting out its backoff before the resend.
  struct RetryEntry {
    RequestDesc desc{};
    u32 cub{0};
    u32 attempts{0};
    Cycle not_before{0};
  };

  /// Drain every ready response on every port; updates latency/errors.
  /// Responses to zombie tags only release the tag.
  void drain_responses(DriverResult& result);

  /// Scan armed deadlines; zombify expired tags and schedule resends (or
  /// abandon past the retry budget).
  void check_timeouts(DriverResult& result);

  /// Inject until every port stalls or nothing is sendable this cycle.
  /// Due retries take priority over fresh generator requests.
  void inject(DriverResult& result);

  /// Pick the port for the next request under the configured policy;
  /// returns nullptr when no port can take it right now.
  PortState* pick_port(const RequestDesc& desc, u64 blocked_mask,
                       usize& port_index);

  Simulator& sim_;
  Generator& gen_;
  DriverConfig cfg_;
  std::vector<PortState> ports_;
  std::deque<RetryEntry> retry_queue_;
  usize rr_next_{0};
  u32 next_cube_{0};
  bool have_pending_{false};
  RequestDesc pending_{};
  u32 pending_cub_{0};
  u32 pending_attempts_{0};
  bool pending_is_retry_{false};
  u64 gen_calls_{0};  ///< generator invocations, for restore replay
};

/// Bundle the driver's tag/retry/progress state together with the
/// caller-owned accumulated DriverResult (which driver.save alone does not
/// cover — latency histograms and counters live with the caller) into one
/// opaque blob.  This is what rides in a checkpoint's HOST section so an
/// interrupted run resumes bit-identical to an uninterrupted one.
[[nodiscard]] std::string save_host_state(const HostDriver& driver,
                                          const DriverResult& result);

/// Inverse of save_host_state.  `driver` must be freshly constructed over
/// the restored simulator and an identically-seeded generator (restore
/// replays the generator to re-synchronize it).  Hostile-input safe: any
/// malformed blob yields a non-Ok status, never an abort or OOB access.
[[nodiscard]] Status restore_host_state(const std::string& blob,
                                        HostDriver& driver,
                                        DriverResult& result);

}  // namespace hmcsim
