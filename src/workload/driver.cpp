#include "workload/driver.hpp"

namespace hmcsim {

HostDriver::HostDriver(Simulator& sim, Generator& generator,
                       DriverConfig config)
    : sim_(sim), gen_(generator), cfg_(config) {
  const u32 cap = std::min<u32>(cfg_.max_outstanding_per_port, 512);
  for (const auto& hp : sim_.topology().host_ports()) {
    PortState port;
    port.dev = hp.dev;
    port.link = hp.link;
    port.free_tags.reserve(cap);
    // LIFO: tag (cap-1) is handed out first; ordering is arbitrary.
    for (u32 t = 0; t < cap; ++t) {
      port.free_tags.push_back(static_cast<u16>(t));
    }
    ports_.push_back(std::move(port));
  }
}

void HostDriver::drain_responses(DriverResult& result) {
  PacketBuffer pkt;
  for (auto& port : ports_) {
    while (ok(sim_.recv(port.dev, port.link, pkt))) {
      ResponseFields f;
      if (!ok(decode_response(pkt, f))) continue;  // cannot happen in-spec
      if (f.cmd == Command::Error) ++result.errors;
      if (f.tag < port.sent_at.size() && port.outstanding > 0) {
        result.latency.add(sim_.now() - port.sent_at[f.tag]);
        port.free_tags.push_back(f.tag);
        --port.outstanding;
      }
      ++result.completed;
    }
  }
}

HostDriver::PortState* HostDriver::pick_port(const RequestDesc& desc,
                                             u64 blocked_mask,
                                             usize& port_index) {
  if (ports_.empty()) return nullptr;
  if (cfg_.policy == InjectionPolicy::LocalityAware) {
    // Prefer the host port whose link index matches the destination quad
    // on the target device (link i is closest to quad i).
    const Device& dev = sim_.device(pending_cub_ < sim_.num_devices()
                                        ? pending_cub_
                                        : 0);
    const u32 vault = dev.address_map().in_range(desc.addr)
                          ? dev.address_map().vault_of(desc.addr)
                          : 0;
    const u32 quad = vault / spec::kVaultsPerQuad;
    for (usize i = 0; i < ports_.size(); ++i) {
      if (ports_[i].link == quad && !(blocked_mask & (u64{1} << i)) &&
          !ports_[i].free_tags.empty()) {
        port_index = i;
        return &ports_[i];
      }
    }
    // Fall through to round-robin when the preferred port cannot take it.
  }
  for (usize n = 0; n < ports_.size(); ++n) {
    const usize i = (rr_next_ + n) % ports_.size();
    if (!(blocked_mask & (u64{1} << i)) && !ports_[i].free_tags.empty()) {
      port_index = i;
      rr_next_ = (i + 1) % ports_.size();
      return &ports_[i];
    }
  }
  return nullptr;
}

void HostDriver::inject(DriverResult& result) {
  u64 blocked_mask = 0;  // ports that returned Stalled this cycle
  const u64 all_blocked = (u64{1} << ports_.size()) - 1;

  while (result.sent < cfg_.total_requests && blocked_mask != all_blocked) {
    if (!have_pending_) {
      pending_ = gen_.next();
      pending_cub_ = cfg_.target_cub;
      if (cfg_.targets == TargetPolicy::RoundRobinCubes) {
        pending_cub_ = next_cube_;
        next_cube_ = (next_cube_ + 1) % sim_.num_devices();
      }
      have_pending_ = true;
    }

    usize port_index = 0;
    PortState* port = pick_port(pending_, blocked_mask, port_index);
    if (port == nullptr) break;  // no free tags anywhere usable

    const u16 tag = port->free_tags.back();
    PacketBuffer pkt;
    u64 payload[spec::kMaxPayloadBytes / 8] = {};
    const usize payload_words = request_data_bytes(pending_.cmd) / 8;
    const Status bs = build_memrequest(pending_cub_, pending_.addr, tag,
                                       pending_.cmd, port->link,
                                       {payload, payload_words}, pkt);
    if (!ok(bs)) {
      // Generator produced an unencodable request; drop it.
      have_pending_ = false;
      continue;
    }
    const Status ss = sim_.send(port->dev, port->link, pkt);
    if (ss == Status::Stalled) {
      ++result.send_stalls;
      blocked_mask |= u64{1} << port_index;
      continue;  // keep the pending request; try another port
    }
    if (!ok(ss)) {
      have_pending_ = false;  // unroutable by construction; skip it
      continue;
    }
    port->free_tags.pop_back();
    port->sent_at[tag] = sim_.now();
    ++port->outstanding;
    ++result.sent;
    have_pending_ = false;
    if (is_posted(pending_.cmd)) ++result.completed;  // no response due
  }
}

DriverResult HostDriver::run() {
  DriverResult result;
  if (ports_.empty()) return result;

  while (result.completed < cfg_.total_requests) {
    drain_responses(result);
    inject(result);
    sim_.clock();
    if (cfg_.max_cycles != 0 && sim_.now() >= cfg_.max_cycles) {
      result.hit_cycle_cap = true;
      break;
    }
  }
  // Collect any responses registered on the final cycle.
  drain_responses(result);
  result.cycles = sim_.now();
  return result;
}

}  // namespace hmcsim
