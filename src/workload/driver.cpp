#include "workload/driver.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

namespace hmcsim {
namespace {

// Little-endian u64 framing for HostDriver::save/restore, matching the
// simulator checkpoint convention.
constexpr u64 kDriverMagic = 0x3154534f48434d48ull;  // "HMCHOST1" LE

void put_u64(std::ostream& os, u64 v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  os.write(bytes, 8);
}

bool get_u64(std::istream& is, u64& v) {
  char bytes[8];
  if (!is.read(bytes, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<u64>(static_cast<u8>(bytes[i])) << (8 * i);
  }
  return true;
}

}  // namespace

HostDriver::HostDriver(Simulator& sim, Generator& generator,
                       DriverConfig config)
    : sim_(sim), gen_(generator), cfg_(config) {
  const u32 cap = std::min<u32>(cfg_.max_outstanding_per_port, 512);
  for (const auto& hp : sim_.topology().host_ports()) {
    PortState port;
    port.dev = hp.dev;
    port.link = hp.link;
    port.free_tags.reserve(cap);
    // LIFO: tag (cap-1) is handed out first; ordering is arbitrary.
    for (u32 t = 0; t < cap; ++t) {
      port.free_tags.push_back(static_cast<u16>(t));
    }
    ports_.push_back(std::move(port));
  }
}

void HostDriver::drain_responses(DriverResult& result) {
  PacketBuffer pkt;
  for (auto& port : ports_) {
    while (ok(sim_.recv(port.dev, port.link, pkt))) {
      ResponseFields f;
      if (!ok(decode_response(pkt, f))) continue;  // cannot happen in-spec
      if (f.tag < port.inflight.size() && port.outstanding > 0) {
        InFlight& fl = port.inflight[f.tag];
        port.free_tags.push_back(f.tag);
        --port.outstanding;
        fl.deadline = 0;
        if (fl.zombie) {
          // The request already terminated host-side (timeout path); the
          // late response only releases the tag.
          fl.zombie = false;
          continue;
        }
        result.latency.add(sim_.now() - fl.sent_at);
      }
      if (f.cmd == Command::Error) ++result.errors;
      ++result.completed;
    }
  }
}

void HostDriver::check_timeouts(DriverResult& result) {
  const Cycle now = sim_.now();
  for (auto& port : ports_) {
    if (port.outstanding == 0) continue;
    for (InFlight& fl : port.inflight) {
      if (fl.deadline == 0 || fl.zombie || now < fl.deadline) continue;
      ++result.timeouts;
      fl.deadline = 0;
      fl.zombie = true;  // hold the tag until the response surfaces
      if (fl.attempts < cfg_.retry_limit) {
        const u32 shift = std::min<u32>(fl.attempts, 16);
        retry_queue_.push_back({fl.desc, fl.cub, fl.attempts + 1,
                                now + (cfg_.retry_backoff_cycles << shift)});
      } else {
        ++result.abandoned;
        ++result.completed;  // terminates as a host-side timeout
      }
    }
  }
}

HostDriver::PortState* HostDriver::pick_port(const RequestDesc& desc,
                                             u64 blocked_mask,
                                             usize& port_index) {
  if (ports_.empty()) return nullptr;
  if (cfg_.policy == InjectionPolicy::LocalityAware) {
    // Prefer the host port whose link index matches the destination quad
    // on the target device (link i is closest to quad i).
    const Device& dev = sim_.device(pending_cub_ < sim_.num_devices()
                                        ? pending_cub_
                                        : 0);
    const u32 vault = dev.address_map().in_range(desc.addr)
                          ? dev.address_map().vault_of(desc.addr)
                          : 0;
    const u32 quad = vault / spec::kVaultsPerQuad;
    for (usize i = 0; i < ports_.size(); ++i) {
      if (ports_[i].link == quad && !(blocked_mask & (u64{1} << i)) &&
          !ports_[i].free_tags.empty()) {
        port_index = i;
        return &ports_[i];
      }
    }
    // Fall through to round-robin when the preferred port cannot take it.
  }
  for (usize n = 0; n < ports_.size(); ++n) {
    const usize i = (rr_next_ + n) % ports_.size();
    if (!(blocked_mask & (u64{1} << i)) && !ports_[i].free_tags.empty()) {
      port_index = i;
      rr_next_ = (i + 1) % ports_.size();
      return &ports_[i];
    }
  }
  return nullptr;
}

void HostDriver::inject(DriverResult& result) {
  u64 blocked_mask = 0;  // ports that returned Stalled this cycle
  const u64 all_blocked = (u64{1} << ports_.size()) - 1;

  while (blocked_mask != all_blocked) {
    if (!have_pending_) {
      if (!retry_queue_.empty() &&
          retry_queue_.front().not_before <= sim_.now()) {
        const RetryEntry e = retry_queue_.front();
        retry_queue_.pop_front();
        pending_ = e.desc;
        pending_cub_ = e.cub;
        pending_attempts_ = e.attempts;
        pending_is_retry_ = true;
      } else if (result.sent < cfg_.total_requests) {
        pending_ = gen_.next();
        ++gen_calls_;
        pending_cub_ = cfg_.target_cub;
        if (cfg_.targets == TargetPolicy::RoundRobinCubes) {
          pending_cub_ = next_cube_;
          next_cube_ = (next_cube_ + 1) % sim_.num_devices();
        }
        pending_attempts_ = 0;
        pending_is_retry_ = false;
      } else {
        break;  // nothing sendable until a backoff expires
      }
      have_pending_ = true;
    }

    usize port_index = 0;
    PortState* port = pick_port(pending_, blocked_mask, port_index);
    if (port == nullptr) break;  // no free tags anywhere usable

    const u16 tag = port->free_tags.back();
    PacketBuffer pkt;
    u64 payload[spec::kMaxPayloadBytes / 8] = {};
    const usize payload_words = request_data_bytes(pending_.cmd) / 8;
    const Status bs = build_memrequest(pending_cub_, pending_.addr, tag,
                                       pending_.cmd, port->link,
                                       {payload, payload_words}, pkt);
    if (!ok(bs)) {
      // Generator produced an unencodable request; drop it.
      have_pending_ = false;
      continue;
    }
    const Status ss = sim_.send(port->dev, port->link, pkt);
    if (ss == Status::Stalled) {
      ++result.send_stalls;
      blocked_mask |= u64{1} << port_index;
      continue;  // keep the pending request; try another port
    }
    if (!ok(ss)) {
      // Unroutable by construction; skip it.  A retry still has to
      // terminate for conservation, so account it as abandoned.
      if (pending_is_retry_) {
        ++result.abandoned;
        ++result.completed;
      }
      have_pending_ = false;
      continue;
    }
    port->free_tags.pop_back();
    InFlight& fl = port->inflight[tag];
    fl.desc = pending_;
    fl.cub = pending_cub_;
    fl.attempts = pending_attempts_;
    fl.sent_at = sim_.now();
    fl.zombie = false;
    fl.deadline = (cfg_.response_timeout_cycles != 0 &&
                   !is_posted(pending_.cmd))
                      ? sim_.now() + cfg_.response_timeout_cycles
                      : 0;
    ++port->outstanding;
    if (pending_is_retry_) {
      ++result.retries;
    } else {
      ++result.sent;
    }
    have_pending_ = false;
    if (is_posted(pending_.cmd)) ++result.completed;  // no response due
  }
}

bool HostDriver::step(DriverResult& result) {
  if (ports_.empty() || result.completed >= cfg_.total_requests) {
    return false;
  }
  drain_responses(result);
  if (cfg_.response_timeout_cycles != 0) check_timeouts(result);
  inject(result);
  sim_.clock();
  result.cycles = sim_.now();
  // Host-tag occupancy rides the simulator's sampling cadence: one sample
  // per telemetry interval, on the same cycles the device queues sample.
  if (Telemetry* tel = sim_.telemetry()) {
    const u32 interval = sim_.config().device.telemetry_interval_cycles;
    if (interval != 0 && sim_.now() % interval == 0) {
      tel->sample_host_tags(outstanding_total());
    }
  }
  if (sim_.watchdog_fired()) {
    result.watchdog_fired = true;
    return false;
  }
  // A chaos invariant violation froze the machine; stop driving it so the
  // post-mortem state dump reflects the violating cycle.
  if (sim_.chaos_violated()) return false;
  if (cfg_.max_cycles != 0 && sim_.now() >= cfg_.max_cycles) {
    result.hit_cycle_cap = true;
    return false;
  }
  return result.completed < cfg_.total_requests;
}

DriverResult HostDriver::run() {
  DriverResult result;
  if (ports_.empty()) return result;

  while (step(result)) {
  }
  finish(result);
  return result;
}

void HostDriver::finish(DriverResult& result) {
  // Collect any responses registered on the final cycle.
  drain_responses(result);
  result.cycles = sim_.now();
}

bool HostDriver::invariants_ok(const DriverResult& result,
                               std::string* detail) const {
  const auto fail = [detail](std::string msg) {
    if (detail != nullptr) *detail = std::move(msg);
    return false;
  };
  const u64 cap = std::min<u32>(cfg_.max_outstanding_per_port, 512);
  u64 outstanding = 0;
  u64 zombies = 0;
  for (usize i = 0; i < ports_.size(); ++i) {
    const PortState& p = ports_[i];
    if (p.free_tags.size() + p.outstanding != cap) {
      return fail("port " + std::to_string(i) + ": free tags " +
                  std::to_string(p.free_tags.size()) + " + outstanding " +
                  std::to_string(p.outstanding) + " != tag pool " +
                  std::to_string(cap));
    }
    u64 port_zombies = 0;
    for (const InFlight& fl : p.inflight) {
      if (fl.zombie) ++port_zombies;
    }
    if (port_zombies > p.outstanding) {
      return fail("port " + std::to_string(i) + ": " +
                  std::to_string(port_zombies) + " zombie tags exceed " +
                  std::to_string(p.outstanding) + " outstanding");
    }
    outstanding += p.outstanding;
    zombies += port_zombies;
  }
  if (result.sent < result.completed) {
    return fail("completed " + std::to_string(result.completed) +
                " exceeds sent " + std::to_string(result.sent));
  }
  // Every sent-but-incomplete request is live under exactly one tag, queued
  // for a resend, or staged as the pending retry.  Zombie tags are excluded:
  // their request already completed (abandoned) or moved to the retry queue.
  const u64 live = outstanding - zombies + retry_queue_.size() +
                   ((have_pending_ && pending_is_retry_) ? u64{1} : u64{0});
  if (result.sent - result.completed != live) {
    return fail("sent " + std::to_string(result.sent) + " - completed " +
                std::to_string(result.completed) + " != live in-flight " +
                std::to_string(live) + " (outstanding " +
                std::to_string(outstanding) + ", zombies " +
                std::to_string(zombies) + ", retry queue " +
                std::to_string(retry_queue_.size()) + ")");
  }
  return true;
}

Status HostDriver::save(std::ostream& os) const {
  put_u64(os, kDriverMagic);
  put_u64(os, ports_.size());
  for (const PortState& port : ports_) {
    put_u64(os, port.free_tags.size());
    for (const u16 tag : port.free_tags) put_u64(os, tag);
    put_u64(os, port.outstanding);
    for (const InFlight& fl : port.inflight) {
      put_u64(os, static_cast<u8>(fl.desc.cmd));
      put_u64(os, fl.desc.addr);
      put_u64(os, fl.sent_at);
      put_u64(os, fl.deadline);
      put_u64(os, fl.cub);
      put_u64(os, fl.attempts);
      put_u64(os, fl.zombie ? 1 : 0);
    }
  }
  put_u64(os, retry_queue_.size());
  for (const RetryEntry& e : retry_queue_) {
    put_u64(os, static_cast<u8>(e.desc.cmd));
    put_u64(os, e.desc.addr);
    put_u64(os, e.cub);
    put_u64(os, e.attempts);
    put_u64(os, e.not_before);
  }
  put_u64(os, rr_next_);
  put_u64(os, next_cube_);
  put_u64(os, have_pending_ ? 1 : 0);
  put_u64(os, static_cast<u8>(pending_.cmd));
  put_u64(os, pending_.addr);
  put_u64(os, pending_cub_);
  put_u64(os, pending_attempts_);
  put_u64(os, pending_is_retry_ ? 1 : 0);
  put_u64(os, gen_calls_);
  os.flush();
  return os ? Status::Ok : Status::Internal;
}

Status HostDriver::restore(std::istream& is) {
  u64 magic = 0, num_ports = 0;
  if (!get_u64(is, magic) || magic != kDriverMagic) {
    return Status::MalformedPacket;
  }
  if (!get_u64(is, num_ports) || num_ports != ports_.size()) {
    return Status::MalformedPacket;
  }
  for (PortState& port : ports_) {
    u64 num_free = 0;
    if (!get_u64(is, num_free) || num_free > port.inflight.size()) {
      return Status::MalformedPacket;
    }
    port.free_tags.clear();
    for (u64 i = 0; i < num_free; ++i) {
      u64 tag = 0;
      if (!get_u64(is, tag) || tag >= port.inflight.size()) {
        return Status::MalformedPacket;
      }
      port.free_tags.push_back(static_cast<u16>(tag));
    }
    u64 outstanding = 0;
    if (!get_u64(is, outstanding)) return Status::MalformedPacket;
    port.outstanding = static_cast<u32>(outstanding);
    for (InFlight& fl : port.inflight) {
      u64 cmd = 0, cub = 0, attempts = 0, zombie = 0;
      if (!get_u64(is, cmd) || !get_u64(is, fl.desc.addr) ||
          !get_u64(is, fl.sent_at) || !get_u64(is, fl.deadline) ||
          !get_u64(is, cub) || !get_u64(is, attempts) ||
          !get_u64(is, zombie)) {
        return Status::MalformedPacket;
      }
      fl.desc.cmd = static_cast<Command>(cmd);
      fl.cub = static_cast<u32>(cub);
      fl.attempts = static_cast<u32>(attempts);
      fl.zombie = zombie != 0;
    }
  }
  u64 num_retries = 0;
  if (!get_u64(is, num_retries)) return Status::MalformedPacket;
  retry_queue_.clear();
  for (u64 i = 0; i < num_retries; ++i) {
    RetryEntry e;
    u64 cmd = 0, cub = 0, attempts = 0;
    if (!get_u64(is, cmd) || !get_u64(is, e.desc.addr) ||
        !get_u64(is, cub) || !get_u64(is, attempts) ||
        !get_u64(is, e.not_before)) {
      return Status::MalformedPacket;
    }
    e.desc.cmd = static_cast<Command>(cmd);
    e.cub = static_cast<u32>(cub);
    e.attempts = static_cast<u32>(attempts);
    retry_queue_.push_back(e);
  }
  u64 rr = 0, cube = 0, have_pending = 0, pcmd = 0, pcub = 0, pattempts = 0,
      pretry = 0, gen_calls = 0;
  if (!get_u64(is, rr) || !get_u64(is, cube) || !get_u64(is, have_pending) ||
      !get_u64(is, pcmd) || !get_u64(is, pending_.addr) ||
      !get_u64(is, pcub) || !get_u64(is, pattempts) ||
      !get_u64(is, pretry) || !get_u64(is, gen_calls)) {
    return Status::MalformedPacket;
  }
  rr_next_ = static_cast<usize>(rr);
  next_cube_ = static_cast<u32>(cube);
  have_pending_ = have_pending != 0;
  pending_.cmd = static_cast<Command>(pcmd);
  pending_cub_ = static_cast<u32>(pcub);
  pending_attempts_ = static_cast<u32>(pattempts);
  pending_is_retry_ = pretry != 0;
  // The generator is drawn once per fresh request (retries reuse their
  // descriptor), so a legitimate count can never exceed the request budget
  // plus the held pending draw; a forged count must not drive the replay
  // loop below unbounded.
  if (gen_calls > cfg_.total_requests + 1) return Status::MalformedPacket;
  // Re-synchronize the (freshly re-seeded) generator by replaying the
  // recorded number of draws.
  gen_calls_ = 0;
  for (u64 i = 0; i < gen_calls; ++i) gen_.next();
  gen_calls_ = gen_calls;
  return Status::Ok;
}

// ---- host blob (checkpoint HOST section) -----------------------------------

namespace {

// Distinct magic so a driver-state stream can never be confused with a
// full host blob (which embeds one).
constexpr u64 kHostBlobMagic = 0x31424c42484d4348ull;  // "HCMHBLB1" LE

void put_result(std::ostream& os, const DriverResult& r) {
  put_u64(os, r.cycles);
  put_u64(os, r.sent);
  put_u64(os, r.completed);
  put_u64(os, r.errors);
  put_u64(os, r.send_stalls);
  put_u64(os, r.timeouts);
  put_u64(os, r.retries);
  put_u64(os, r.abandoned);
  put_u64(os, r.hit_cycle_cap ? 1 : 0);
  put_u64(os, r.watchdog_fired ? 1 : 0);
  put_u64(os, r.latency.count);
  put_u64(os, r.latency.sum);
  put_u64(os, r.latency.min);
  put_u64(os, r.latency.max);
  for (const u64 bucket : r.latency.log2_buckets) put_u64(os, bucket);
}

bool get_result(std::istream& is, DriverResult& r) {
  u64 cap = 0, fired = 0;
  if (!get_u64(is, r.cycles) || !get_u64(is, r.sent) ||
      !get_u64(is, r.completed) || !get_u64(is, r.errors) ||
      !get_u64(is, r.send_stalls) || !get_u64(is, r.timeouts) ||
      !get_u64(is, r.retries) || !get_u64(is, r.abandoned) ||
      !get_u64(is, cap) || !get_u64(is, fired) ||
      !get_u64(is, r.latency.count) || !get_u64(is, r.latency.sum) ||
      !get_u64(is, r.latency.min) || !get_u64(is, r.latency.max)) {
    return false;
  }
  r.hit_cycle_cap = cap != 0;
  r.watchdog_fired = fired != 0;
  for (u64& bucket : r.latency.log2_buckets) {
    if (!get_u64(is, bucket)) return false;
  }
  return true;
}

}  // namespace

std::string save_host_state(const HostDriver& driver,
                            const DriverResult& result) {
  std::ostringstream os;
  put_u64(os, kHostBlobMagic);
  put_result(os, result);
  if (!ok(driver.save(os))) return std::string{};
  return os.str();
}

Status restore_host_state(const std::string& blob, HostDriver& driver,
                          DriverResult& result) {
  std::istringstream is(blob);
  u64 magic = 0;
  if (!get_u64(is, magic) || magic != kHostBlobMagic) {
    return Status::MalformedPacket;
  }
  DriverResult r;
  if (!get_result(is, r)) return Status::MalformedPacket;
  const Status st = driver.restore(is);
  if (!ok(st)) return st;
  // Reject trailing garbage: the blob must be exactly one result + one
  // driver state.
  if (is.peek() != std::istringstream::traits_type::eof()) {
    return Status::MalformedPacket;
  }
  result = r;
  return Status::Ok;
}

}  // namespace hmcsim
