#include "workload/generator.hpp"

#include <cassert>

namespace hmcsim {

namespace {

/// Two 31-bit glibc rand() draws folded into one 62-bit value: enough
/// entropy for any HMC capacity while staying faithful to the paper's
/// randomness source ("provided by the GNU libc library").
u64 next_u64(GlibcRandom& rng) {
  return (static_cast<u64>(rng.next()) << 31) | rng.next();
}

bool draw_read(GlibcRandom& rng, double read_fraction) {
  // Compare a 31-bit draw against the threshold; exact for 0.0/0.5/1.0.
  return static_cast<double>(rng.next()) <
         read_fraction * 2147483648.0;
}

}  // namespace

RandomAccessGenerator::RandomAccessGenerator(const GeneratorConfig& config)
    : cfg_(config),
      rng_(config.seed),
      blocks_(config.capacity_bytes / config.request_bytes) {}

RequestDesc RandomAccessGenerator::next() {
  RequestDesc d;
  d.addr = (next_u64(rng_) % blocks_) * cfg_.request_bytes;
  d.cmd = draw_read(rng_, cfg_.read_fraction)
              ? read_command_for(cfg_.request_bytes)
              : write_command_for(cfg_.request_bytes);
  return d;
}

StreamGenerator::StreamGenerator(const GeneratorConfig& config, u64 start)
    : cfg_(config), rng_(config.seed), pos_(start / config.request_bytes) {}

RequestDesc StreamGenerator::next() {
  RequestDesc d;
  const u64 blocks = cfg_.capacity_bytes / cfg_.request_bytes;
  d.addr = (pos_ % blocks) * cfg_.request_bytes;
  ++pos_;
  d.cmd = draw_read(rng_, cfg_.read_fraction)
              ? read_command_for(cfg_.request_bytes)
              : write_command_for(cfg_.request_bytes);
  return d;
}

StrideGenerator::StrideGenerator(const GeneratorConfig& config,
                                 u64 stride_bytes)
    : cfg_(config), rng_(config.seed), stride_(stride_bytes) {}

RequestDesc StrideGenerator::next() {
  RequestDesc d;
  d.addr = pos_ % cfg_.capacity_bytes;
  // Keep the access inside capacity even for non-dividing strides.
  if (d.addr + cfg_.request_bytes > cfg_.capacity_bytes) {
    pos_ = 0;
    d.addr = 0;
  }
  pos_ += stride_;
  d.cmd = draw_read(rng_, cfg_.read_fraction)
              ? read_command_for(cfg_.request_bytes)
              : write_command_for(cfg_.request_bytes);
  return d;
}

HotspotGenerator::HotspotGenerator(const GeneratorConfig& config,
                                   double hot_fraction, u64 hot_bytes)
    : cfg_(config),
      rng_(config.seed),
      hot_fraction_(hot_fraction),
      hot_blocks_(hot_bytes / config.request_bytes),
      blocks_(config.capacity_bytes / config.request_bytes) {
  if (hot_blocks_ == 0) hot_blocks_ = 1;
}

RequestDesc HotspotGenerator::next() {
  RequestDesc d;
  const bool hot = static_cast<double>(rng_.next()) <
                   hot_fraction_ * 2147483648.0;
  const u64 block =
      hot ? next_u64(rng_) % hot_blocks_ : next_u64(rng_) % blocks_;
  d.addr = block * cfg_.request_bytes;
  d.cmd = draw_read(rng_, cfg_.read_fraction)
              ? read_command_for(cfg_.request_bytes)
              : write_command_for(cfg_.request_bytes);
  return d;
}

PointerChaseGenerator::PointerChaseGenerator(const GeneratorConfig& config)
    : cfg_(config),
      state_(config.seed == 0 ? 1 : config.seed),
      blocks_(config.capacity_bytes / config.request_bytes) {}

RequestDesc PointerChaseGenerator::next() {
  // SplitMix64 step: a bijection over u64, so the chain never settles into
  // a short cycle within any practical run length.
  SplitMix64 mix(state_);
  state_ = mix.next();
  RequestDesc d;
  d.addr = (state_ % blocks_) * cfg_.request_bytes;
  d.cmd = read_command_for(cfg_.request_bytes);
  return d;
}

}  // namespace hmcsim
