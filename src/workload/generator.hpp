// Host-side workload generators.
//
// The paper's evaluation drives a random access memory test harness: "a
// randomized stream of mixed reads and writes of varying block sizes
// against a specified HMC device configuration", randomness via the GNU
// libc linear congruential method, 50/50 read/write mix, 64-byte requests
// (§VI.A).  `RandomAccessGenerator` reproduces that harness; the other
// generators cover the access patterns the paper's introduction motivates
// (streaming, strided scientific kernels, hot-spotted key-value traffic,
// dependent pointer chasing).
#pragma once

#include <memory>

#include "common/random.hpp"
#include "common/types.hpp"
#include "packet/command.hpp"

namespace hmcsim {

/// One host memory request, before packetization.
struct RequestDesc {
  Command cmd{Command::Rd64};
  PhysAddr addr{0};
};

class Generator {
 public:
  virtual ~Generator() = default;
  /// Produce the next request in the stream.
  virtual RequestDesc next() = 0;
  /// Human-readable name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Shared sizing/mix parameters.
struct GeneratorConfig {
  u64 capacity_bytes{u64{2} * 1024 * 1024 * 1024};
  /// Request block size in bytes (16..128, multiple of 16).  Both the read
  /// and write command are derived from it.
  u32 request_bytes{64};
  /// Fraction of reads in [0,1]; the paper uses 0.5.
  double read_fraction{0.5};
  u32 seed{1};
};

/// The paper's harness: uniformly random block-aligned addresses from a
/// glibc-style LCG, reads/writes mixed per read_fraction.
class RandomAccessGenerator final : public Generator {
 public:
  explicit RandomAccessGenerator(const GeneratorConfig& config);
  RequestDesc next() override;
  [[nodiscard]] const char* name() const override { return "random_access"; }

 private:
  GeneratorConfig cfg_;
  GlibcRandom rng_;
  u64 blocks_;
};

/// Sequential block stream (unit stride), wrapping at capacity.
class StreamGenerator final : public Generator {
 public:
  explicit StreamGenerator(const GeneratorConfig& config, u64 start = 0);
  RequestDesc next() override;
  [[nodiscard]] const char* name() const override { return "stream"; }

 private:
  GeneratorConfig cfg_;
  GlibcRandom rng_;
  u64 pos_;
};

/// Fixed-stride block stream; stride is in bytes.
class StrideGenerator final : public Generator {
 public:
  StrideGenerator(const GeneratorConfig& config, u64 stride_bytes);
  RequestDesc next() override;
  [[nodiscard]] const char* name() const override { return "stride"; }

 private:
  GeneratorConfig cfg_;
  GlibcRandom rng_;
  u64 stride_;
  u64 pos_{0};
};

/// `hot_fraction` of requests fall in a region of `hot_bytes`; the rest are
/// uniform.  Models skewed key-value traffic.
class HotspotGenerator final : public Generator {
 public:
  HotspotGenerator(const GeneratorConfig& config, double hot_fraction,
                   u64 hot_bytes);
  RequestDesc next() override;
  [[nodiscard]] const char* name() const override { return "hotspot"; }

 private:
  GeneratorConfig cfg_;
  GlibcRandom rng_;
  double hot_fraction_;
  u64 hot_blocks_;
  u64 blocks_;
};

/// Dependent-read chain: each address is derived from the previous one via
/// a bijective mix, modelling pointer chasing (reads only; the driver
/// limits such streams to one outstanding request).
class PointerChaseGenerator final : public Generator {
 public:
  explicit PointerChaseGenerator(const GeneratorConfig& config);
  RequestDesc next() override;
  [[nodiscard]] const char* name() const override { return "pointer_chase"; }

 private:
  GeneratorConfig cfg_;
  u64 state_;
  u64 blocks_;
};

}  // namespace hmcsim
