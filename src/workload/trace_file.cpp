#include "workload/trace_file.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/limits.hpp"
#include "io/bounded_line.hpp"

namespace hmcsim {

bool parse_trace_request(const std::string& line, RequestDesc& out,
                         bool* is_comment, std::string* why) {
  if (is_comment != nullptr) *is_comment = false;
  const auto fail = [why](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  std::istringstream fields(line);
  std::string op;
  if (!(fields >> op)) {
    if (is_comment != nullptr) *is_comment = true;  // blank line
    return false;
  }
  if (op[0] == '#') {
    if (is_comment != nullptr) *is_comment = true;
    return false;
  }
  if (op != "R" && op != "W" && op != "A") {
    return fail("unknown op '" + op + "' (want R, W, or A)");
  }

  std::string addr_text;
  if (!(fields >> addr_text)) return fail("missing address");
  u64 addr = 0;
  {
    std::string_view sv = addr_text;
    int base = 10;
    if (sv.size() > 2 && sv[0] == '0' && (sv[1] == 'x' || sv[1] == 'X')) {
      sv.remove_prefix(2);
      base = 16;
    }
    const auto [ptr, ec] =
        std::from_chars(sv.data(), sv.data() + sv.size(), addr, base);
    if (ec != std::errc{} || ptr != sv.data() + sv.size()) {
      return fail("bad address '" + addr_text + "'");
    }
  }
  if (addr > spec::kAddrMask) {
    return fail("address '" + addr_text + "' above the 34-bit device space");
  }

  u32 bytes = 16;
  if (op != "A") {
    if (!(fields >> bytes)) return fail("missing or non-numeric size");
    if (bytes < 16 || bytes > spec::kMaxPayloadBytes || bytes % 16 != 0) {
      return fail("bad size " + std::to_string(bytes) +
                  " (want 16..128 in multiples of 16)");
    }
  }

  // Trailing garbage invalidates the line (catches column mistakes).
  std::string rest;
  if (fields >> rest) return fail("trailing garbage '" + rest + "'");

  out.addr = addr;
  out.cmd = op == "R"   ? read_command_for(bytes)
            : op == "W" ? write_command_for(bytes)
                        : Command::TwoAdd8;
  return true;
}

void write_request_trace(std::ostream& os,
                         std::span<const RequestDesc> requests) {
  for (const RequestDesc& r : requests) {
    if (is_atomic(r.cmd)) {
      os << "A 0x" << std::hex << r.addr << std::dec << '\n';
    } else {
      os << (is_read(r.cmd) ? 'R' : 'W') << " 0x" << std::hex << r.addr
         << std::dec << ' ' << access_bytes(r.cmd) << '\n';
    }
  }
}

TraceFileGenerator::TraceFileGenerator(std::istream& in) {
  std::string line;
  usize line_no = 0;
  for (;;) {
    const io::LineRead lr = io::getline_bounded(in, line);
    if (lr == io::LineRead::Eof) break;
    ++line_no;
    if (lr == io::LineRead::TooLong) {
      ++malformed_;
      if (first_error_line_ == 0) {
        first_error_line_ = line_no;
        first_error_ = "line exceeds " + std::to_string(io::kMaxLineBytes) +
                       " bytes";
      }
      continue;
    }
    RequestDesc desc;
    bool comment = false;
    std::string why;
    if (parse_trace_request(line, desc, &comment, &why)) {
      requests_.push_back(desc);
    } else if (!comment) {
      ++malformed_;
      if (first_error_line_ == 0) {
        first_error_line_ = line_no;
        first_error_ = why;
      }
    }
  }
}

TraceFileGenerator::TraceFileGenerator(std::vector<RequestDesc> requests)
    : requests_(std::move(requests)) {}

RequestDesc TraceFileGenerator::next() {
  if (requests_.empty()) return RequestDesc{};
  const RequestDesc desc = requests_[pos_];
  pos_ = (pos_ + 1) % requests_.size();
  return desc;
}

}  // namespace hmcsim
