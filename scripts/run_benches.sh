#!/usr/bin/env bash
# Performance benchmark runner: build an optimized tree, run the simulator
# throughput benches, and emit the committed machine-readable record
# BENCH_fastforward.json (engine cycles/sec, parallel scaling, and the
# fast-forward on/off speedup).
#
# Usage:
#   scripts/run_benches.sh                 # writes BENCH_fastforward.json,
#                                          #   BENCH_linkretry.json,
#                                          #   BENCH_profile.json and
#                                          #   BENCH_checkpoint.json
#   OUT=/tmp/b.json scripts/run_benches.sh # write elsewhere
#
# BENCH_backend.json records the vault timing-backend costs: the
# hmc_dram virtual-dispatch premium (gated < 2% of end-to-end run time;
# see docs/BACKENDS.md) and per-backend throughput.
#
# Acceptance gates: fast-forward must be >= 5x on the sparse (~1%
# occupancy) GUPS workload with every run pair bit-identical
# (bench_fast_forward exits nonzero otherwise), the link-layer retry
# protocol must cost ~0 when switched off (bench_link_retry gates its two
# protocol-off runs within 10% of each other; see docs/LINK_LAYER.md), the
# observability layer (docs/OBSERVABILITY.md) must cost < 2% when all
# off and < 10% fully on (bench_profile_overhead gates both itself),
# periodic auto-checkpointing (docs/FORMATS.md §5) must cost < 5% at the
# default 10k-cycle cadence (bench_checkpoint gates itself), and the chaos
# invariant checker (docs/CHAOS.md) must cost < 2% when off and < 5% at
# the default 1024-cycle cadence (bench_chaos gates itself, recorded in
# BENCH_chaos.json).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build-release}
OUT=${OUT:-BENCH_fastforward.json}
OUT_LINK=${OUT_LINK:-BENCH_linkretry.json}
OUT_PROFILE=${OUT_PROFILE:-BENCH_profile.json}
OUT_CKPT=${OUT_CKPT:-BENCH_checkpoint.json}
OUT_BACKEND=${OUT_BACKEND:-BENCH_backend.json}
OUT_CHAOS=${OUT_CHAOS:-BENCH_chaos.json}
GEN=()
command -v ninja >/dev/null && GEN=(-G Ninja)

echo "== configure & build ($BUILD, Release) =="
cmake -B "$BUILD" "${GEN[@]}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target \
  bench_sim_speed bench_parallel_speedup bench_fast_forward bench_link_retry \
  bench_profile_overhead bench_checkpoint bench_backend bench_chaos

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== bench_fast_forward =="
"$BUILD"/bench/bench_fast_forward --json "$tmp/fast_forward.json"

echo "== bench_link_retry =="
"$BUILD"/bench/bench_link_retry --json "$OUT_LINK"

echo "== bench_profile_overhead =="
"$BUILD"/bench/bench_profile_overhead --json "$OUT_PROFILE"

echo "== bench_checkpoint =="
"$BUILD"/bench/bench_checkpoint --json "$OUT_CKPT"

echo "== bench_backend =="
"$BUILD"/bench/bench_backend --json "$OUT_BACKEND"

echo "== bench_chaos =="
"$BUILD"/bench/bench_chaos --json "$OUT_CHAOS"

echo "== bench_sim_speed =="
"$BUILD"/bench/bench_sim_speed \
  --benchmark_out="$tmp/sim_speed.json" --benchmark_out_format=json \
  --benchmark_format=console

echo "== bench_parallel_speedup =="
"$BUILD"/bench/bench_parallel_speedup \
  --benchmark_out="$tmp/parallel.json" --benchmark_out_format=json \
  --benchmark_format=console

jq -n \
  --slurpfile ff "$tmp/fast_forward.json" \
  --slurpfile ss "$tmp/sim_speed.json" \
  --slurpfile ps "$tmp/parallel.json" '
  {
    generated_by: "scripts/run_benches.sh",
    build_type: "Release",
    fast_forward: $ff[0],
    sim_speed: $ss[0],
    parallel_speedup: $ps[0]
  }' > "$OUT"

sparse=$(jq -r '.fast_forward.workloads[]
                | select(.name == "sparse_gups") | .speedup' "$OUT")
echo
echo "sparse_gups fast-forward speedup: ${sparse}x (gate: >= 5x)"
if ! jq -e '.fast_forward.workloads[]
            | select(.name == "sparse_gups") | .speedup >= 5' \
     "$OUT" >/dev/null; then
  echo "FAIL: sparse_gups speedup below the 5x acceptance floor" >&2
  exit 1
fi
echo "wrote $OUT"

off_gap=$(jq -r '.protocol_off_overhead_pct' "$OUT_LINK")
echo "link-retry protocol-off overhead: ${off_gap}% (gate: < 10%)"
if ! jq -e '.protocol_off_overhead_pct < 10' "$OUT_LINK" >/dev/null; then
  echo "FAIL: protocol-off overhead above the ~0 acceptance gate" >&2
  exit 1
fi
echo "wrote $OUT_LINK"

prof_off=$(jq -r '.observability_off_overhead_pct' "$OUT_PROFILE")
prof_on=$(jq -r '.observability_on_overhead_pct' "$OUT_PROFILE")
echo "observability all-off overhead: ${prof_off}% (gate: < 2%)"
echo "observability all-on overhead: ${prof_on}% (gate: < 10%)"
if ! jq -e '.observability_off_overhead_pct < 2 and
            .observability_on_overhead_pct < 10' "$OUT_PROFILE" >/dev/null; then
  echo "FAIL: observability overhead above the acceptance gates" >&2
  exit 1
fi
echo "wrote $OUT_PROFILE"

ckpt_on=$(jq -r '.checkpoint_on_overhead_pct' "$OUT_CKPT")
save_ms=$(jq -r '.save_ms' "$OUT_CKPT")
restore_ms=$(jq -r '.restore_ms' "$OUT_CKPT")
echo "auto-checkpoint overhead at 10k-cycle cadence: ${ckpt_on}% (gate: < 5%)"
echo "checkpoint save: ${save_ms} ms, restore: ${restore_ms} ms"
if ! jq -e '.checkpoint_off_overhead_pct < 2 and
            .checkpoint_on_overhead_pct < 5' "$OUT_CKPT" >/dev/null; then
  echo "FAIL: auto-checkpoint overhead above the acceptance gates" >&2
  exit 1
fi
echo "wrote $OUT_CKPT"

dispatch=$(jq -r '.hmc_dram_dispatch_overhead_pct' "$OUT_BACKEND")
echo "hmc_dram backend dispatch overhead: ${dispatch}% (gate: < 2%)"
if ! jq -e '.hmc_dram_dispatch_overhead_pct < 2' "$OUT_BACKEND" >/dev/null; then
  echo "FAIL: backend dispatch overhead above the 2% acceptance gate" >&2
  exit 1
fi
echo "wrote $OUT_BACKEND"

chaos_off=$(jq -r '.chaos_off_overhead_pct' "$OUT_CHAOS")
chaos_on=$(jq -r '.chaos_checker_overhead_pct' "$OUT_CHAOS")
echo "chaos subsystem off-path overhead: ${chaos_off}% (gate: < 2%)"
echo "chaos checker overhead at 1024-cycle cadence: ${chaos_on}% (gate: < 5%)"
if ! jq -e '.chaos_off_overhead_pct < 2 and
            .chaos_checker_overhead_pct < 5' "$OUT_CHAOS" >/dev/null; then
  echo "FAIL: chaos checker overhead above the acceptance gates" >&2
  exit 1
fi
echo "wrote $OUT_CHAOS"
