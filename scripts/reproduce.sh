#!/usr/bin/env bash
# One-command reproduction: build, test, run every experiment harness, and
# collect the outputs EXPERIMENTS.md references.
#
# Usage:
#   scripts/reproduce.sh            # default (CI-friendly) scale
#   FULL=1 scripts/reproduce.sh     # the paper's 2^25-request Table I
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== configure & build =="
cmake -B build -G Ninja
cmake --build build

echo
echo "== test suite =="
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt | tail -3

echo
echo "== experiment harnesses =="
if [[ "${FULL:-0}" == "1" ]]; then
  export HMCSIM_TABLE1_REQUESTS=33554432
  echo "(full paper scale: HMCSIM_TABLE1_REQUESTS=$HMCSIM_TABLE1_REQUESTS)"
fi
for b in build/bench/*; do
  echo "### $b"
  "$b"
  echo
done 2>&1 | tee bench_output.txt | grep -E '^###|passed|Speedup|speedup' || true

echo
echo "done: see test_output.txt and bench_output.txt"
