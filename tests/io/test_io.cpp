// Atomic-file and failpoint unit tests: every failure branch of the
// checkpoint writer must be deterministically reachable, and a failed
// write must never tear the destination file.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "io/atomic_file.hpp"
#include "io/failpoint.hpp"

namespace hmcsim::io {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hmcsim_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    disarm_failpoint();
  }
  void TearDown() override {
    disarm_failpoint();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  /// Number of directory entries, temp debris included.
  [[nodiscard]] usize entries() const {
    usize n = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) ++n;
    return n;
  }

  fs::path dir_;
};

TEST_F(IoTest, AtomicWriteRoundTrips) {
  const std::string payload(100000, 'x');
  std::string error;
  ASSERT_TRUE(atomic_write_file(path("a.bin"), payload.data(), payload.size(),
                                &error))
      << error;
  EXPECT_EQ(slurp(path("a.bin")), payload);
  EXPECT_EQ(entries(), 1u);  // no temp debris after success
}

TEST_F(IoTest, AtomicWriteReplacesWholeFile) {
  const std::string v1(5000, 'a');
  const std::string v2(10, 'b');
  ASSERT_TRUE(atomic_write_file(path("a.bin"), v1.data(), v1.size()));
  ASSERT_TRUE(atomic_write_file(path("a.bin"), v2.data(), v2.size()));
  EXPECT_EQ(slurp(path("a.bin")), v2);  // no stale tail from v1
}

TEST_F(IoTest, ShortWriteFailpointPreservesOldContents) {
  const std::string v1 = "the good old contents";
  ASSERT_TRUE(atomic_write_file(path("a.bin"), v1.data(), v1.size()));

  const std::string v2(8192, 'n');
  arm_failpoint(FailMode::ShortWrite, 1000);
  std::string error;
  EXPECT_FALSE(
      atomic_write_file(path("a.bin"), v2.data(), v2.size(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(failpoint_armed());  // fired and disarmed
  // Old contents intact, temp unlinked.
  EXPECT_EQ(slurp(path("a.bin")), v1);
  EXPECT_EQ(entries(), 1u);
}

TEST_F(IoTest, EnospcAndEioFailpointsReportTheirErrno) {
  const std::string payload(4096, 'p');
  arm_failpoint(FailMode::Enospc, 100);
  std::string error;
  EXPECT_FALSE(
      atomic_write_file(path("a.bin"), payload.data(), payload.size(),
                        &error));
  EXPECT_NE(error.find("No space"), std::string::npos) << error;

  arm_failpoint(FailMode::Eio, 100);
  error.clear();
  EXPECT_FALSE(
      atomic_write_file(path("b.bin"), payload.data(), payload.size(),
                        &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(entries(), 0u);  // both temps unlinked, nothing renamed
}

TEST_F(IoTest, FailpointAllowsPrefixThroughBeforeFiring) {
  // The trigger byte is cumulative: a write fully below it passes, and the
  // one crossing it fails.  That is what lets one env setting interrupt a
  // run of many checkpoint generations at a reproducible point.
  const std::string small(100, 's');
  const std::string big(8192, 'b');
  arm_failpoint(FailMode::Eio, 4096);
  ASSERT_TRUE(atomic_write_file(path("a.bin"), small.data(), small.size()));
  EXPECT_TRUE(failpoint_armed());
  EXPECT_FALSE(atomic_write_file(path("b.bin"), big.data(), big.size()));
  EXPECT_FALSE(failpoint_armed());
}

TEST_F(IoTest, ReadFileRoundTripsAndEnforcesCap) {
  const std::string payload(10000, 'r');
  ASSERT_TRUE(atomic_write_file(path("a.bin"), payload.data(),
                                payload.size()));
  std::string out;
  std::string error;
  ASSERT_TRUE(read_file(path("a.bin"), out, u64{1} << 32, &error)) << error;
  EXPECT_EQ(out, payload);

  // Hostile-input guard: an over-cap file is rejected without reading.
  out.clear();
  EXPECT_FALSE(read_file(path("a.bin"), out, 100, &error));
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(read_file(path("missing.bin"), out, 100, &error));
}

TEST_F(IoTest, ArmFromEnvParsesEveryModeAndRejectsGarbage) {
  ::setenv("HMCSIM_FAILPOINT", "eio:1234", 1);
  EXPECT_TRUE(arm_failpoint_from_env());
  EXPECT_TRUE(failpoint_armed());
  disarm_failpoint();

  ::setenv("HMCSIM_FAILPOINT", "bogus:12", 1);
  EXPECT_FALSE(arm_failpoint_from_env());
  EXPECT_FALSE(failpoint_armed());

  ::setenv("HMCSIM_FAILPOINT", "eio:notanumber", 1);
  EXPECT_FALSE(arm_failpoint_from_env());

  ::unsetenv("HMCSIM_FAILPOINT");
  EXPECT_FALSE(arm_failpoint_from_env());
}

}  // namespace
}  // namespace hmcsim::io
