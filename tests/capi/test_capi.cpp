// The C-compatible API shim: the paper's Figure 4 calling sequence plus
// error handling, tracing hooks, and the classic return-code protocol.
#include "capi/hmc_sim.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

struct HmcFixture : ::testing::Test {
  void SetUp() override {
    ASSERT_EQ(hmcsim_init(&hmc, 1, 4, 16, 64, 8, 8, 2, 128), 0);
    for (uint32_t i = 0; i < 4; ++i) {
      ASSERT_EQ(hmcsim_link_config(&hmc, 2, 0, i, i, HMC_LINK_HOST_DEV), 0);
    }
  }
  void TearDown() override { EXPECT_EQ(hmcsim_free(&hmc), 0); }

  hmcsim_t hmc{};
};

TEST(CApiInit, RejectsBadGeometry) {
  hmcsim_t hmc{};
  // num_vaults must equal num_links * 4.
  EXPECT_EQ(hmcsim_init(&hmc, 1, 4, 32, 64, 8, 8, 2, 128), -1);
  // capacity mismatch (4-link/8-bank must be 2 GB).
  EXPECT_EQ(hmcsim_init(&hmc, 1, 4, 16, 64, 8, 8, 8, 128), -1);
  // bad link count.
  EXPECT_EQ(hmcsim_init(&hmc, 1, 6, 24, 64, 8, 8, 2, 128), -1);
  // null object.
  EXPECT_EQ(hmcsim_init(nullptr, 1, 4, 16, 64, 8, 8, 2, 128), -1);
}

TEST(CApiInit, ZeroCapacityDerivesFromGeometry) {
  hmcsim_t hmc{};
  ASSERT_EQ(hmcsim_init(&hmc, 1, 8, 32, 64, 16, 8, 0, 128), 0);
  EXPECT_EQ(hmcsim_free(&hmc), 0);
}

TEST_F(HmcFixture, Figure4Sequence) {
  uint64_t payload[8];
  for (int i = 0; i < 8; ++i) payload[i] = 0x0101010101010101ull * (i + 1);
  uint64_t packet[HMC_MAX_UQ_PACKET];
  uint64_t head = 0, tail = 0;

  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x5000, 1, HMC_WR64, 0, payload,
                                    &head, &tail, packet),
            0);
  EXPECT_NE(head, 0u);
  EXPECT_NE(tail, 0u);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);

  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x5000, 2, HMC_RD64, 0, nullptr,
                                    &head, &tail, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);

  int received = 0;
  bool saw_write = false, saw_read = false;
  for (int cycle = 0; cycle < 64 && received < 2; ++cycle) {
    ASSERT_EQ(hmcsim_clock(&hmc), 0);
    while (hmcsim_recv(&hmc, 0, 0, packet) == 0) {
      hmc_rsp_t type;
      uint16_t tag;
      uint32_t errstat;
      ASSERT_EQ(hmcsim_decode_memresponse(&hmc, packet, &type, &tag,
                                          &errstat),
                0);
      EXPECT_EQ(errstat, 0u);
      if (type == HMC_RSP_WR) {
        saw_write = true;
        EXPECT_EQ(tag, 1);
      }
      if (type == HMC_RSP_RD) {
        saw_read = true;
        EXPECT_EQ(tag, 2);
        EXPECT_EQ(packet[1], payload[0]);  // first data word round-trips
      }
      ++received;
    }
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_read);
  EXPECT_GT(hmcsim_get_clock(&hmc), 0u);
}

TEST_F(HmcFixture, StallProtocol) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  // Fill link 0's 128-slot crossbar queue without clocking.
  int sent = 0, rc = 0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 64 * i, i % 512, HMC_RD16, 0,
                                      nullptr, nullptr, nullptr, packet),
              0);
    rc = hmcsim_send(&hmc, packet);
    if (rc != 0) break;
    ++sent;
  }
  EXPECT_EQ(rc, HMC_STALL);
  EXPECT_EQ(sent, 128);
}

TEST_F(HmcFixture, RecvProtocol) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  // 1 == no response pending (distinct from -1 hard errors).
  EXPECT_EQ(hmcsim_recv(&hmc, 0, 0, packet), 1);
  EXPECT_EQ(hmcsim_recv(&hmc, 0, 99, packet), -1);
  EXPECT_EQ(hmcsim_recv(&hmc, 7, 0, packet), -1);
}

TEST_F(HmcFixture, ZeroCrcIsSealedByShim) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x100, 3, HMC_RD16, 1, nullptr,
                                    nullptr, nullptr, packet),
            0);
  packet[1] &= 0x00000000FFFFFFFFull;  // zero the CRC field of the tail
  EXPECT_EQ(hmcsim_send(&hmc, packet), 0);
}

TEST_F(HmcFixture, CorruptCrcRejected) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x100, 3, HMC_RD16, 1, nullptr,
                                    nullptr, nullptr, packet),
            0);
  packet[1] ^= 0xDEAD00000000ull;  // corrupt (nonzero) CRC
  EXPECT_EQ(hmcsim_send(&hmc, packet), -1);
}

TEST_F(HmcFixture, JtagRegisterInterface) {
  uint64_t value = 0;
  ASSERT_EQ(hmcsim_jtag_reg_read(&hmc, 0, 0x2f0001u, &value), 0);  // RVID
  EXPECT_NE(value, 0u);
  ASSERT_EQ(hmcsim_jtag_reg_write(&hmc, 0, 0x280000u, 0x99), 0);   // GC
  ASSERT_EQ(hmcsim_jtag_reg_read(&hmc, 0, 0x280000u, &value), 0);
  EXPECT_EQ(value, 0x99u);
  EXPECT_EQ(hmcsim_jtag_reg_read(&hmc, 0, 0x424242u, &value), -1);
  EXPECT_EQ(hmcsim_jtag_reg_write(&hmc, 0, 0x2f0001u, 1), -1);  // RO
}

TEST_F(HmcFixture, BuildRequestValidation) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  // Write without payload pointer.
  EXPECT_EQ(hmcsim_build_memrequest(&hmc, 0, 0, 0, HMC_WR64, 0, nullptr,
                                    nullptr, nullptr, packet),
            -1);
  // Null packet buffer.
  EXPECT_EQ(hmcsim_build_memrequest(&hmc, 0, 0, 0, HMC_RD16, 0, nullptr,
                                    nullptr, nullptr, nullptr),
            -1);
  // Address beyond the 34-bit field.
  EXPECT_EQ(hmcsim_build_memrequest(&hmc, 0, 1ull << 34, 0, HMC_RD16, 0,
                                    nullptr, nullptr, nullptr, packet),
            -1);
}

TEST(CApiTopology, LinkConfigRules) {
  hmcsim_t hmc{};
  ASSERT_EQ(hmcsim_init(&hmc, 2, 4, 16, 64, 8, 8, 0, 128), 0);
  // Host links require a host-side id greater than the device count.
  EXPECT_EQ(hmcsim_link_config(&hmc, 0, 0, 0, 0, HMC_LINK_HOST_DEV), -1);
  EXPECT_EQ(hmcsim_link_config(&hmc, 3, 0, 0, 0, HMC_LINK_HOST_DEV), 0);
  // Loopback rejected.
  EXPECT_EQ(hmcsim_link_config(&hmc, 1, 1, 1, 2, HMC_LINK_DEV_DEV), -1);
  // Proper chain link.
  EXPECT_EQ(hmcsim_link_config(&hmc, 0, 1, 3, 0, HMC_LINK_DEV_DEV), 0);
  EXPECT_EQ(hmcsim_free(&hmc), 0);
}

TEST(CApiTopology, ChainedAccessThroughCApi) {
  hmcsim_t hmc{};
  ASSERT_EQ(hmcsim_init(&hmc, 2, 4, 16, 64, 8, 8, 0, 128), 0);
  ASSERT_EQ(hmcsim_link_config(&hmc, 3, 0, 0, 0, HMC_LINK_HOST_DEV), 0);
  ASSERT_EQ(hmcsim_link_config(&hmc, 0, 1, 3, 0, HMC_LINK_DEV_DEV), 0);

  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, /*cub=*/1, 0x40, 7, HMC_RD16, 0,
                                    nullptr, nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  int got = 1;
  for (int i = 0; i < 100; ++i) {
    hmcsim_clock(&hmc);
    got = hmcsim_recv(&hmc, 0, 0, packet);
    if (got == 0) break;
  }
  EXPECT_EQ(got, 0);
  hmc_rsp_t type;
  uint16_t tag;
  uint32_t errstat;
  ASSERT_EQ(hmcsim_decode_memresponse(&hmc, packet, &type, &tag, &errstat),
            0);
  EXPECT_EQ(type, HMC_RSP_RD);
  EXPECT_EQ(tag, 7);
  EXPECT_EQ(errstat, 0u);
  EXPECT_EQ(hmcsim_free(&hmc), 0);
}

TEST_F(HmcFixture, UtilityBlockSizeAndDecode) {
  uint32_t bsize = 0;
  ASSERT_EQ(hmcsim_util_get_max_blocksize(&hmc, 0, &bsize), 0);
  EXPECT_EQ(bsize, 128u);  // default
  ASSERT_EQ(hmcsim_util_set_max_blocksize(&hmc, 0, 64), 0);
  ASSERT_EQ(hmcsim_util_get_max_blocksize(&hmc, 0, &bsize), 0);
  EXPECT_EQ(bsize, 64u);
  EXPECT_EQ(hmcsim_util_set_max_blocksize(&hmc, 0, 48), -1);
  EXPECT_EQ(hmcsim_util_set_max_blocksize(&hmc, 9, 64), -1);

  // With 64-byte blocks, consecutive blocks interleave across vaults.
  uint32_t vault = 99, bank = 99, quad = 99;
  ASSERT_EQ(hmcsim_util_decode_vault(&hmc, 0, &vault), 0);
  EXPECT_EQ(vault, 0u);
  ASSERT_EQ(hmcsim_util_decode_vault(&hmc, 64, &vault), 0);
  EXPECT_EQ(vault, 1u);
  ASSERT_EQ(hmcsim_util_decode_bank(&hmc, 0, &bank), 0);
  EXPECT_EQ(bank, 0u);
  ASSERT_EQ(hmcsim_util_decode_quad(&hmc, 64 * 5, &quad), 0);
  EXPECT_EQ(quad, 1u);  // vault 5 lives in quad 1
  // Out-of-capacity address rejected.
  EXPECT_EQ(hmcsim_util_decode_vault(&hmc, 1ull << 33, &vault), -1);

  // Block size cannot change after the topology freezes.
  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x40, 1, HMC_RD16, 0, nullptr,
                                    nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  EXPECT_EQ(hmcsim_util_set_max_blocksize(&hmc, 0, 128), -1);
}

TEST_F(HmcFixture, TimingBackendSelection) {
  // Pre-freeze: selections are accepted; a repeat replaces the earlier one.
  ASSERT_EQ(hmcsim_timing_backend(&hmc, "pcm_like"), 0);
  ASSERT_EQ(hmcsim_timing_backend(&hmc, "generic_ddr"), 0);
  ASSERT_EQ(hmcsim_vault_timing_backend(&hmc, 3, "pcm_like"), 0);
  ASSERT_EQ(hmcsim_vault_timing_backend(&hmc, 3, "hmc_dram"), 0);
  // Unknown names and out-of-range vaults are rejected — and leave the
  // configuration usable.
  EXPECT_EQ(hmcsim_timing_backend(&hmc, "nvdimm"), -1);
  EXPECT_EQ(hmcsim_timing_backend(&hmc, nullptr), -1);
  EXPECT_EQ(hmcsim_vault_timing_backend(&hmc, 99, "pcm_like"), -1);

  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x100, 1, HMC_RD16, 0, nullptr,
                                    nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  for (int i = 0; i < 32; ++i) ASSERT_EQ(hmcsim_clock(&hmc), 0);
  uint64_t v = ~0ull;
  EXPECT_EQ(hmcsim_get_stat(&hmc, 0, "pcm_write_throttle_stalls", &v), 0);
  EXPECT_EQ(v, 0u);  // read-only traffic never trips the write throttle
  hmcsim_stats stats{};
  ASSERT_EQ(hmcsim_get_stats(&hmc, 0, &stats), 0);
  EXPECT_EQ(stats.pcm_write_throttle_stalls, 0u);

  // Post-freeze selections are rejected like every topology-time setter.
  EXPECT_EQ(hmcsim_timing_backend(&hmc, "hmc_dram"), -1);
  EXPECT_EQ(hmcsim_vault_timing_backend(&hmc, 0, "hmc_dram"), -1);
}

TEST_F(HmcFixture, StatCounters) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x40, 1, HMC_RD16, 0, nullptr,
                                    nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  for (int i = 0; i < 10; ++i) hmcsim_clock(&hmc);
  (void)hmcsim_recv(&hmc, 0, 0, packet);

  uint64_t value = 0;
  ASSERT_EQ(hmcsim_get_stat(&hmc, 0, "reads", &value), 0);
  EXPECT_EQ(value, 1u);
  ASSERT_EQ(hmcsim_get_stat(&hmc, 0, "sends", &value), 0);
  EXPECT_EQ(value, 1u);
  ASSERT_EQ(hmcsim_get_stat(&hmc, 0, "recvs", &value), 0);
  EXPECT_EQ(value, 1u);
  ASSERT_EQ(hmcsim_get_stat(&hmc, 0, "writes", &value), 0);
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(hmcsim_get_stat(&hmc, 0, "bogus", &value), -1);
  EXPECT_EQ(hmcsim_get_stat(&hmc, 5, "reads", &value), -1);
}

TEST_F(HmcFixture, JsonDump) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x40, 1, HMC_RD16, 0, nullptr,
                                    nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  for (int i = 0; i < 10; ++i) hmcsim_clock(&hmc);

  FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ASSERT_EQ(hmcsim_dump_stats_json(&hmc, tmp), 0);
  EXPECT_EQ(hmcsim_dump_stats_json(&hmc, nullptr), -1);
  std::rewind(tmp);
  std::string contents;
  char buf[512];
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) contents += buf;
  std::fclose(tmp);
  EXPECT_NE(contents.find("\"simulator\":\"hmcsim++\""), std::string::npos);
  EXPECT_NE(contents.find("\"reads\":1"), std::string::npos);
}

namespace {

// CMC handler for the C API test: fetch-and-add on word 0; old value back.
void c_fetch_add(uint64_t* memory, const uint64_t* operand,
                 uint64_t* response, void* user) {
  *static_cast<int*>(user) += 1;  // user-context plumbed through
  response[0] = memory[0];
  response[1] = 0;
  memory[0] += operand[0];
}

}  // namespace

TEST_F(HmcFixture, CustomCommandThroughTheCApi) {
  // Registration requires the frozen (clocked) state.
  ASSERT_EQ(hmcsim_clock(&hmc), 0);
  int handler_calls = 0;
  ASSERT_EQ(hmcsim_register_cmc(&hmc, 0x05, /*rqst_flits=*/2,
                                /*rsp_flits=*/2, /*access_bytes=*/16,
                                c_fetch_add, &handler_calls),
            0);
  // Duplicate and invalid registrations fail.
  EXPECT_EQ(hmcsim_register_cmc(&hmc, 0x05, 2, 2, 16, c_fetch_add, nullptr),
            -1);
  EXPECT_EQ(hmcsim_register_cmc(&hmc, 0x30, 2, 2, 16, c_fetch_add, nullptr),
            -1);  // RD16 is taken
  EXPECT_EQ(hmcsim_register_cmc(&hmc, 0x06, 2, 2, 16, nullptr, nullptr),
            -1);

  uint64_t packet[HMC_MAX_UQ_PACKET];
  const uint64_t operand[2] = {7, 0};
  // Unregistered encoding rejected by the builder.
  EXPECT_EQ(hmcsim_build_custom_request(&hmc, 0, 0x40, 1, 0x07, 0, operand,
                                        packet),
            -1);

  // Two fetch-adds: 0 -> 7 -> 14, old values 0 then 7.
  uint64_t expected_old = 0;
  for (int round = 0; round < 2; ++round) {
    ASSERT_EQ(hmcsim_build_custom_request(&hmc, 0, 0x40,
                                          static_cast<uint16_t>(round + 1),
                                          0x05, 0, operand, packet),
              0);
    ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
    int rc = 1;
    for (int i = 0; i < 50 && rc != 0; ++i) {
      hmcsim_clock(&hmc);
      rc = hmcsim_recv(&hmc, 0, 0, packet);
    }
    ASSERT_EQ(rc, 0);
    hmc_rsp_t type;
    uint16_t tag;
    uint32_t errstat;
    ASSERT_EQ(hmcsim_decode_memresponse(&hmc, packet, &type, &tag, &errstat),
              0);
    EXPECT_EQ(type, HMC_RSP_RD);  // 2-FLIT CMC responses decode as RD_RS
    EXPECT_EQ(errstat, 0u);
    EXPECT_EQ(packet[1], expected_old);
    expected_old += operand[0];
  }
  EXPECT_EQ(handler_calls, 2);
  uint64_t counter = 0;
  ASSERT_EQ(hmcsim_get_stat(&hmc, 0, "custom_ops", &counter), 0);
  EXPECT_EQ(counter, 2u);
}

TEST_F(HmcFixture, GetStatsMatchesNamedCounters) {
  uint64_t packet[HMC_MAX_UQ_PACKET];
  uint64_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x40, 1, HMC_RD16, 0, nullptr,
                                    nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x80, 2, HMC_WR64, 1, payload,
                                    nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  for (int i = 0; i < 20; ++i) hmcsim_clock(&hmc);
  (void)hmcsim_recv(&hmc, 0, 0, packet);
  (void)hmcsim_recv(&hmc, 0, 1, packet);

  struct hmcsim_stats stats;
  ASSERT_EQ(hmcsim_get_stats(&hmc, 0, &stats), 0);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.sends, 2u);
  EXPECT_EQ(stats.bytes_written, 64u);
  // Every field must agree with its hmcsim_get_stat counterpart.
  const struct {
    const char* name;
    uint64_t value;
  } rows[] = {
      {"reads", stats.reads},
      {"writes", stats.writes},
      {"atomics", stats.atomics},
      {"bytes_read", stats.bytes_read},
      {"bytes_written", stats.bytes_written},
      {"responses", stats.responses},
      {"bank_conflicts", stats.bank_conflicts},
      {"xbar_rqst_stalls", stats.xbar_rqst_stalls},
      {"sends", stats.sends},
      {"recvs", stats.recvs},
  };
  for (const auto& row : rows) {
    uint64_t value = ~0ull;
    ASSERT_EQ(hmcsim_get_stat(&hmc, 0, row.name, &value), 0) << row.name;
    EXPECT_EQ(value, row.value) << row.name;
  }
  // Invalid arguments.
  EXPECT_EQ(hmcsim_get_stats(&hmc, 5, &stats), -1);
  EXPECT_EQ(hmcsim_get_stats(&hmc, 0, nullptr), -1);
  EXPECT_EQ(hmcsim_get_stats(nullptr, 0, &stats), -1);
}

TEST_F(HmcFixture, LifecycleStatsAfterTraffic) {
  ASSERT_EQ(hmcsim_lifecycle_enable(&hmc), 0);
  ASSERT_EQ(hmcsim_lifecycle_enable(&hmc), 0);  // idempotent

  uint64_t packet[HMC_MAX_UQ_PACKET];
  uint64_t payload[8] = {0};
  int drained = 0;
  for (int r = 0; r < 4; ++r) {
    const bool write = (r % 2) == 1;
    ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x40u * (r + 1),
                                      static_cast<uint16_t>(r + 1),
                                      write ? HMC_WR64 : HMC_RD64, 0,
                                      write ? payload : nullptr, nullptr,
                                      nullptr, packet),
              0);
    ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  }
  for (int i = 0; i < 100 && drained < 4; ++i) {
    hmcsim_clock(&hmc);
    while (hmcsim_recv(&hmc, 0, 0, packet) == 0) ++drained;
  }
  ASSERT_EQ(drained, 4);

  hmcsim_latency_t total;
  ASSERT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_ALL, HMC_LC_TOTAL, &total), 0);
  EXPECT_EQ(total.count, 4u);
  EXPECT_GT(total.mean, 0.0);
  EXPECT_GE(total.max, total.min);
  EXPECT_GE(total.p99, total.p50);

  hmcsim_latency_t reads, writes;
  ASSERT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_READ, HMC_LC_TOTAL, &reads),
            0);
  ASSERT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_WRITE, HMC_LC_TOTAL, &writes),
            0);
  EXPECT_EQ(reads.count, 2u);
  EXPECT_EQ(writes.count, 2u);

  // Segment sums must be consistent with the end-to-end totals.
  uint64_t segment_sum = 0;
  for (int s = HMC_LC_XBAR; s <= HMC_LC_DRAIN; ++s) {
    hmcsim_latency_t seg;
    ASSERT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_ALL,
                                     static_cast<hmc_lifecycle_segment_t>(s),
                                     &seg),
              0);
    EXPECT_EQ(seg.count, 4u);
    segment_sum += static_cast<uint64_t>(seg.mean * seg.count + 0.5);
  }
  const uint64_t total_sum =
      static_cast<uint64_t>(total.mean * total.count + 0.5);
  EXPECT_NEAR(static_cast<double>(segment_sum),
              static_cast<double>(total_sum), 1.0);

  // Invalid arguments.
  EXPECT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_ALL, HMC_LC_TOTAL, nullptr),
            -1);
  EXPECT_EQ(hmcsim_lifecycle_stats(&hmc,
                                   static_cast<hmc_op_class_t>(99),
                                   HMC_LC_TOTAL, &total),
            -1);
  EXPECT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_ALL,
                                   static_cast<hmc_lifecycle_segment_t>(99),
                                   &total),
            -1);
}

TEST(CApiLifecycle, StatsBeforeEnableFail) {
  hmcsim_t hmc{};
  ASSERT_EQ(hmcsim_init(&hmc, 1, 4, 16, 8, 8, 8, 0, 8), 0);
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(hmcsim_link_config(&hmc, 2, 0, i, i, HMC_LINK_HOST_DEV), 0);
  }
  hmcsim_latency_t out;
  EXPECT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_ALL, HMC_LC_TOTAL, &out), -1);
  // Enabling after the topology froze still works.
  ASSERT_EQ(hmcsim_clock(&hmc), 0);
  ASSERT_EQ(hmcsim_lifecycle_enable(&hmc), 0);
  ASSERT_EQ(hmcsim_lifecycle_stats(&hmc, HMC_OP_ALL, HMC_LC_TOTAL, &out), 0);
  EXPECT_EQ(out.count, 0u);
  EXPECT_EQ(hmcsim_free(&hmc), 0);
}

TEST(CApiTrace, TextTraceWrittenToFile) {
  hmcsim_t hmc{};
  ASSERT_EQ(hmcsim_init(&hmc, 1, 4, 16, 8, 8, 8, 0, 8), 0);
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(hmcsim_link_config(&hmc, 2, 0, i, i, HMC_LINK_HOST_DEV), 0);
  }
  FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ASSERT_EQ(hmcsim_trace_handle(&hmc, tmp), 0);
  ASSERT_EQ(hmcsim_trace_level(&hmc, 3), 0);
  EXPECT_EQ(hmcsim_trace_level(&hmc, 9), -1);

  uint64_t packet[HMC_MAX_UQ_PACKET];
  ASSERT_EQ(hmcsim_build_memrequest(&hmc, 0, 0x40, 1, HMC_RD16, 0, nullptr,
                                    nullptr, nullptr, packet),
            0);
  ASSERT_EQ(hmcsim_send(&hmc, packet), 0);
  for (int i = 0; i < 10; ++i) hmcsim_clock(&hmc);
  (void)hmcsim_recv(&hmc, 0, 0, packet);
  EXPECT_EQ(hmcsim_free(&hmc), 0);

  std::rewind(tmp);
  std::string contents;
  char buf[256];
  while (std::fgets(buf, sizeof buf, tmp) != nullptr) contents += buf;
  std::fclose(tmp);
  EXPECT_NE(contents.find("HMCSIM_TRACE"), std::string::npos);
  EXPECT_NE(contents.find("RD16"), std::string::npos);
}

}  // namespace
