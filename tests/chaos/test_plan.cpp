// Chaos-plan compiler (src/chaos/plan.cpp): grammar, expansion directives,
// typed "<line>: <message>" rejections, the event-count cap, the reproducer
// round-trip, and the CRC identity the checkpoint CHAO section keys off.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "chaos/plan.hpp"

namespace hmcsim {
namespace {

ChaosPlan must_parse(const std::string& text) {
  ChaosPlanParseResult r = parse_chaos_plan_string(text);
  EXPECT_TRUE(r.ok) << r.error;
  return std::move(r.plan);
}

std::string must_fail(const std::string& text) {
  ChaosPlanParseResult r = parse_chaos_plan_string(text);
  EXPECT_FALSE(r.ok) << "accepted: " << text;
  EXPECT_FALSE(r.error.empty());
  return r.error;
}

TEST(ChaosPlan, AtDirectivesCompileSorted) {
  const ChaosPlan plan = must_parse(
      "at 300 dram_sbe_ppm 9000\n"
      "# comment line\n"
      "at 100 link_error_ppm 5000   # trailing comment\n"
      "at 200 link_retrain 1 64\n");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].cycle, 100u);
  EXPECT_EQ(plan.events[0].action, ChaosAction::LinkErrorPpm);
  EXPECT_EQ(plan.events[0].a, 5000u);
  EXPECT_EQ(plan.events[1].cycle, 200u);
  EXPECT_EQ(plan.events[1].action, ChaosAction::LinkRetrain);
  EXPECT_EQ(plan.events[1].a, 1u);
  EXPECT_EQ(plan.events[1].b, 64u);
  EXPECT_EQ(plan.events[2].cycle, 300u);
  // Diagnostics carry the source line.
  EXPECT_EQ(plan.events[0].line, 3u);
  EXPECT_EQ(plan.events[2].action, ChaosAction::DramSbePpm);
}

TEST(ChaosPlan, SameCycleEventsKeepFileOrder) {
  const ChaosPlan plan = must_parse(
      "at 50 wedge 1\n"
      "at 50 kill_link 0\n"
      "at 50 unwedge 1\n");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].action, ChaosAction::Wedge);
  EXPECT_EQ(plan.events[1].action, ChaosAction::KillLink);
  EXPECT_EQ(plan.events[2].action, ChaosAction::Unwedge);
}

TEST(ChaosPlan, HexNumbersAccepted) {
  const ChaosPlan plan = must_parse("at 0x40 link_burst 0x10\n");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].cycle, 0x40u);
  EXPECT_EQ(plan.events[0].a, 0x10u);
}

TEST(ChaosPlan, RestoreDirectiveMarksClosingEdge) {
  const ChaosPlan plan = must_parse("at 500 restore link_error_ppm\n");
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_TRUE(plan.events[0].restore);
  EXPECT_EQ(plan.events[0].action, ChaosAction::LinkErrorPpm);
  EXPECT_EQ(plan.events[0].a, 0u);
  // Only rate actions have a baseline to restore to.
  EXPECT_NE(must_fail("at 10 restore kill_link\n").find("rate actions"),
            std::string::npos);
  EXPECT_NE(must_fail("at 10 restore break_invariant\n").find("rate actions"),
            std::string::npos);
  EXPECT_NE(must_fail("at 10 restore link_error_ppm 5\n")
                .find("no arguments"),
            std::string::npos);
}

TEST(ChaosPlan, EveryExpandsThroughInclusiveBound) {
  // Fires at from, from+period, ... up to and including `until` when the
  // period lands on it exactly.
  const ChaosPlan a = must_parse("every 10 from 100 until 130 link_burst 2\n");
  ASSERT_EQ(a.events.size(), 4u);
  EXPECT_EQ(a.events[0].cycle, 100u);
  EXPECT_EQ(a.events[3].cycle, 130u);
  // Without `from` the train starts at cycle 0; a misaligned `until` stops
  // short.
  const ChaosPlan b = must_parse("every 7 until 20 dram_dbe_ppm 50\n");
  ASSERT_EQ(b.events.size(), 3u);
  EXPECT_EQ(b.events[0].cycle, 0u);
  EXPECT_EQ(b.events[1].cycle, 7u);
  EXPECT_EQ(b.events[2].cycle, 14u);
}

TEST(ChaosPlan, RampInterpolatesInclusive) {
  const ChaosPlan up = must_parse("ramp 100 200 4 link_error_ppm 0 1000\n");
  ASSERT_EQ(up.events.size(), 5u);  // steps+1 points, both ends included
  EXPECT_EQ(up.events.front().cycle, 100u);
  EXPECT_EQ(up.events.front().a, 0u);
  EXPECT_EQ(up.events[2].cycle, 150u);
  EXPECT_EQ(up.events[2].a, 500u);
  EXPECT_EQ(up.events.back().cycle, 200u);
  EXPECT_EQ(up.events.back().a, 1000u);
  // Descending ramps interpolate downward.
  const ChaosPlan down = must_parse("ramp 0 10 2 dram_sbe_ppm 100 0\n");
  ASSERT_EQ(down.events.size(), 3u);
  EXPECT_EQ(down.events[0].a, 100u);
  EXPECT_EQ(down.events[1].a, 50u);
  EXPECT_EQ(down.events[2].a, 0u);
}

TEST(ChaosPlan, StormEmitsClosingEdges) {
  const ChaosPlan plan = must_parse(
      "storm 50 80\n"
      "  wedge 1\n"
      "  kill_link 0\n"
      "  link_error_ppm 5000\n"
      "  link_retrain 1 16\n"
      "  break_invariant 3\n"
      "end\n");
  // Five opening events at 50; wedge/kill_link/link_error_ppm each close at
  // 80 (inverse or baseline restore); the retrain window self-expires and
  // the test hook is one-shot, so neither closes.
  ASSERT_EQ(plan.events.size(), 8u);
  u32 opens = 0;
  u32 closes = 0;
  bool saw_unwedge = false;
  bool saw_revive = false;
  bool saw_restore_rate = false;
  for (const ChaosEvent& ev : plan.events) {
    if (ev.cycle == 50) ++opens;
    if (ev.cycle == 80) {
      ++closes;
      saw_unwedge |= ev.action == ChaosAction::Unwedge;
      saw_revive |= ev.action == ChaosAction::ReviveLink;
      saw_restore_rate |= ev.action == ChaosAction::LinkErrorPpm && ev.restore;
    }
  }
  EXPECT_EQ(opens, 5u);
  EXPECT_EQ(closes, 3u);
  EXPECT_TRUE(saw_unwedge);
  EXPECT_TRUE(saw_revive);
  EXPECT_TRUE(saw_restore_rate);
}

TEST(ChaosPlan, QuietZeroesEveryFaultRate) {
  const ChaosPlan plan = must_parse("quiet 1000 2000\n");
  ASSERT_EQ(plan.events.size(), 6u);
  for (const ChaosEvent& ev : plan.events) {
    if (ev.cycle == 1000) {
      EXPECT_FALSE(ev.restore);
      EXPECT_EQ(ev.a, 0u);
    } else {
      EXPECT_EQ(ev.cycle, 2000u);
      EXPECT_TRUE(ev.restore);
    }
  }
}

TEST(ChaosPlan, RejectionsAreTypedWithLineNumbers) {
  // Every rejection is "<line>: <message>" — scripts parse the prefix.
  EXPECT_EQ(must_fail("at 10 link_burst 1\nbogus 5\n").substr(0, 2), "2:");
  EXPECT_NE(must_fail("bogus 5\n").find("unknown directive"),
            std::string::npos);
  EXPECT_NE(must_fail("at abc link_burst 1\n").find("bad cycle"),
            std::string::npos);
  EXPECT_NE(must_fail("at 10\n").find("at needs"), std::string::npos);
  EXPECT_NE(must_fail("at 10 melt_cube 1\n").find("unknown action"),
            std::string::npos);
  EXPECT_NE(must_fail("at 10 link_retrain 1\n").find("takes 2 arguments"),
            std::string::npos);
  EXPECT_NE(must_fail("at 10 wedge 1 2\n").find("takes 1 argument"),
            std::string::npos);
  EXPECT_NE(must_fail("at 10 link_burst 1x\n").find("bad number"),
            std::string::npos);
  EXPECT_NE(must_fail("every 0 until 10 link_burst 1\n")
                .find("nonzero period"),
            std::string::npos);
  EXPECT_NE(must_fail("every 5 from 20 until 10 link_burst 1\n")
                .find("must not precede"),
            std::string::npos);
  EXPECT_NE(must_fail("ramp 20 10 2 link_error_ppm 0 5\n")
                .find("end must follow start"),
            std::string::npos);
  EXPECT_NE(must_fail("ramp 0 10 0 link_error_ppm 0 5\n")
                .find("nonzero step count"),
            std::string::npos);
  EXPECT_NE(must_fail("ramp 0 10 2 kill_link 0 5\n").find("rate action"),
            std::string::npos);
  EXPECT_NE(must_fail("storm 10 10\nend\n").find("end must follow start"),
            std::string::npos);
  EXPECT_NE(must_fail("storm 10 20\nat 5 wedge 1\nend\n")
                .find("not valid inside a storm"),
            std::string::npos);
  EXPECT_NE(must_fail("storm 10 20\nrestore link_error_ppm\nend\n")
                .find("not valid here"),
            std::string::npos);
  EXPECT_NE(must_fail("end\n").find("without a matching storm"),
            std::string::npos);
  EXPECT_NE(must_fail("storm 10 20\nwedge 1\n").find("unterminated storm"),
            std::string::npos);
}

TEST(ChaosPlan, OverlongLinesAreRefused) {
  std::string text = "at 10 link_burst 1\nat 20 link_burst ";
  text.append(70000, '1');
  text += "\n";
  const std::string err = must_fail(text);
  EXPECT_EQ(err.substr(0, 2), "2:");
  EXPECT_NE(err.find("65536"), std::string::npos);
}

TEST(ChaosPlan, EventCapIsEnforced) {
  // `every 1` over 100k cycles would expand past kMaxChaosEvents.
  const std::string err =
      must_fail("every 1 until 100000 link_burst 1\n");
  EXPECT_NE(err.find("expands past"), std::string::npos);
  // Exactly at the cap is fine.
  std::ostringstream big;
  big << "every 1 until " << (kMaxChaosEvents - 1) << " link_burst 1\n";
  EXPECT_TRUE(parse_chaos_plan_string(big.str()).ok);
}

TEST(ChaosPlan, WriterRoundTripsTheCompiledList) {
  const ChaosPlan plan = must_parse(
      "at 100 link_error_ppm 5000\n"
      "at 200 restore link_error_ppm\n"
      "at 300 link_retrain 1 64\n"
      "storm 400 500\n"
      "  wedge 2\n"
      "end\n");
  std::ostringstream os;
  write_chaos_plan(os, plan);
  const ChaosPlan again = must_parse(os.str());
  ASSERT_EQ(again.events.size(), plan.events.size());
  for (usize i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(again.events[i].cycle, plan.events[i].cycle) << i;
    EXPECT_EQ(again.events[i].action, plan.events[i].action) << i;
    EXPECT_EQ(again.events[i].a, plan.events[i].a) << i;
    EXPECT_EQ(again.events[i].b, plan.events[i].b) << i;
    EXPECT_EQ(again.events[i].restore, plan.events[i].restore) << i;
  }
  EXPECT_EQ(chaos_plan_crc(again), chaos_plan_crc(plan));
}

TEST(ChaosPlan, CrcCoversSemanticsNotDiagnostics) {
  const ChaosPlan a = must_parse("at 100 link_error_ppm 5000\n");
  // Same semantics, different source line: identical identity.
  const ChaosPlan b = must_parse("# pushed down a line\nat 100 link_error_ppm 5000\n");
  EXPECT_NE(a.events[0].line, b.events[0].line);
  EXPECT_EQ(chaos_plan_crc(a), chaos_plan_crc(b));
  // Any semantic change moves the CRC.
  const ChaosPlan c = must_parse("at 100 link_error_ppm 5001\n");
  const ChaosPlan d = must_parse("at 101 link_error_ppm 5000\n");
  const ChaosPlan e = must_parse("at 100 restore link_error_ppm\n");
  EXPECT_NE(chaos_plan_crc(c), chaos_plan_crc(a));
  EXPECT_NE(chaos_plan_crc(d), chaos_plan_crc(a));
  EXPECT_NE(chaos_plan_crc(e), chaos_plan_crc(a));
  // The empty plan and a one-event plan differ (count is folded in).
  EXPECT_NE(chaos_plan_crc(ChaosPlan{}), chaos_plan_crc(a));
}

TEST(ChaosPlan, ActionTableIsSelfConsistent) {
  for (u8 v = 0; v <= static_cast<u8>(ChaosAction::BreakInvariant); ++v) {
    const auto action = static_cast<ChaosAction>(v);
    ChaosAction back{};
    ASSERT_TRUE(chaos_action_from_string(to_string(action), &back));
    EXPECT_EQ(back, action);
    EXPECT_GE(chaos_action_arity(action), 1u);
    EXPECT_LE(chaos_action_arity(action), 2u);
  }
  ChaosAction out{};
  EXPECT_FALSE(chaos_action_from_string("not_an_action", &out));
}

}  // namespace
}  // namespace hmcsim
