// Chaos engine on the live simulator (src/chaos/engine.cpp): events land
// at their exact cycle on the staged and the fast-forward path, the live
// invariant checker stays green through a six-axis storm (and across every
// execution strategy, bit-identically), the break_invariant test hook
// freezes the machine with a post-mortem report, and a checkpoint saved
// mid-storm restores and replays byte-identically.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "chaos/plan.hpp"
#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"

namespace hmcsim {
namespace {

ChaosPlan compile(const std::string& text) {
  ChaosPlanParseResult r = parse_chaos_plan_string(text);
  EXPECT_TRUE(r.ok) << r.error;
  return std::move(r.plan);
}

void arm(Simulator& sim, const std::string& text) {
  std::string diag;
  ASSERT_EQ(sim.set_chaos_plan(compile(text), &diag), Status::Ok) << diag;
}

TEST(ChaosSim, EventsApplyAtTheirExactCycle) {
  Simulator sim = test::make_simple_sim();
  arm(sim, "at 10 link_error_ppm 7777\n");
  for (int i = 0; i < 10; ++i) sim.clock();
  // Cycle 10 has not executed yet: the event is still pending.
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 0u);
  EXPECT_EQ(sim.chaos()->events_applied(), 0u);
  sim.clock();  // executes cycle 10; apply_due runs before the stages
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 7777u);
  EXPECT_EQ(sim.chaos()->events_applied(), 1u);
  EXPECT_EQ(sim.chaos()->cursor(), 1u);
}

TEST(ChaosSim, RestoreReturnsToTheConfiguredBaseline) {
  DeviceConfig dc = test::small_device();
  dc.link_error_rate_ppm = 1234;
  Simulator sim = test::make_simple_sim(dc);
  arm(sim,
      "at 5 link_error_ppm 9999\n"
      "at 10 restore link_error_ppm\n");
  for (int i = 0; i < 8; ++i) sim.clock();
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 9999u);
  for (int i = 0; i < 8; ++i) sim.clock();
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 1234u);
  EXPECT_EQ(sim.chaos()->events_applied(), 2u);
}

TEST(ChaosSim, ArmValidatesStructuralIndices) {
  Simulator sim = test::make_simple_sim();  // 4 links, 16 vaults
  std::string diag;
  EXPECT_EQ(sim.set_chaos_plan(compile("at 10 kill_link 4\n"), &diag),
            Status::InvalidConfig);
  EXPECT_NE(diag.find("out of range"), std::string::npos);
  EXPECT_NE(diag.find("1:"), std::string::npos);  // plan-file line number
  diag.clear();
  EXPECT_EQ(sim.set_chaos_plan(compile("at 10 wedge 16\n"), &diag),
            Status::InvalidConfig);
  EXPECT_NE(diag.find("out of range"), std::string::npos);
}

TEST(ChaosSim, WedgedVaultsStallUntilTheStormLifts) {
  // Wedge every vault for a window mid-run: the driver must stall during
  // the wedge and complete once the storm's closing edges release the
  // banks — end-to-end proof the structural events hit the real machine.
  Simulator sim = test::make_simple_sim();
  std::ostringstream plan;
  plan << "storm 20 400\n";
  for (u32 v = 0; v < sim.config().device.num_vaults(); ++v) {
    plan << "  wedge " << v << "\n";
  }
  plan << "end\n";
  arm(sim, plan.str());

  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.seed = 99;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 4000;
  dcfg.max_cycles = 100000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 4000u);
  EXPECT_FALSE(r.hit_cycle_cap);
  // The wedge window forces the run past the storm's closing edge.
  EXPECT_GT(r.cycles, 400u);
  EXPECT_EQ(sim.chaos()->events_applied(),
            sim.chaos()->plan().events.size());
}

TEST(ChaosSim, CheckerAloneRunsWithoutAPlan) {
  // chaos_invariants != 0 creates the engine even with no campaign: the
  // checker must observe a healthy machine under real traffic.
  DeviceConfig dc = test::small_device();
  dc.chaos_invariants = 16;
  dc.scrub_interval_cycles = 64;
  Simulator sim = test::make_simple_sim(dc);
  ASSERT_NE(sim.chaos(), nullptr);

  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.seed = 7;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 500;
  dcfg.max_cycles = 100000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 500u);
  EXPECT_FALSE(sim.chaos_violated());
  EXPECT_GT(sim.chaos()->invariant_checks(), 0u);
}

TEST(ChaosSim, BreakInvariantFreezesTheMachineWithAReport) {
  DeviceConfig dc = test::small_device();
  dc.link_protocol = true;
  dc.link_retry_limit = 8;
  dc.chaos_invariants = 64;
  Simulator sim = test::make_simple_sim(dc);
  arm(sim, "at 100 break_invariant 5\n");
  for (int i = 0; i < 400 && !sim.chaos_violated(); ++i) sim.clock();
  ASSERT_TRUE(sim.chaos_violated());
  const ChaosViolation& v = sim.chaos()->violation();
  EXPECT_EQ(v.invariant, "link_token_identity");
  EXPECT_GT(v.cycle, 100u);  // first cadence check after the corruption
  EXPECT_EQ(v.cycle % 64, 0u);
  EXPECT_FALSE(v.detail.empty());
  // The report carries the violation plus the watchdog-style state dump.
  EXPECT_NE(sim.chaos_report().find("link_token_identity"),
            std::string::npos);
  EXPECT_NE(sim.chaos_report().find("cycle"), std::string::npos);
  // Frozen exactly like the watchdog: the clock refuses further edges.
  const Cycle frozen = sim.now();
  for (int i = 0; i < 5; ++i) sim.clock();
  EXPECT_EQ(sim.now(), frozen);
}

TEST(ChaosSim, BreakInvariantTripsScrubAccountingWithoutLinkProtocol) {
  DeviceConfig dc = test::small_device();
  dc.scrub_interval_cycles = 32;
  dc.chaos_invariants = 64;
  Simulator sim = test::make_simple_sim(dc);
  arm(sim, "at 100 break_invariant 3\n");
  for (int i = 0; i < 400 && !sim.chaos_violated(); ++i) sim.clock();
  ASSERT_TRUE(sim.chaos_violated());
  EXPECT_EQ(sim.chaos()->violation().invariant, "scrub_accounting");
}

// ---- determinism across execution strategies -------------------------------

/// The six-axis storm scenario: link errors + bursts, a dead-then-revived
/// link, a retrain window, DRAM single/double-bit fault rates, a failed
/// vault, a wedged vault, and a host-timeout squeeze — all under the link
/// protocol with the invariant checker on a prime cadence.
DeviceConfig storm_device() {
  DeviceConfig dc = test::small_device();
  dc.link_protocol = true;
  dc.link_retry_limit = 8;
  dc.link_retry_latency = 4;
  dc.model_data = true;  // DRAM fault injection needs backing data
  dc.scrub_interval_cycles = 128;
  dc.chaos_invariants = 97;
  return dc;
}

const char* storm_plan() {
  return
      "at 50 link_error_ppm 20000\n"
      "at 60 link_burst 4\n"
      "at 80 kill_link 3\n"
      "at 300 revive_link 3\n"
      "at 120 link_retrain 1 64\n"
      "storm 200 900\n"
      "  dram_sbe_ppm 30000\n"
      "  dram_dbe_ppm 5000\n"
      "  vault_fail 2\n"
      "  wedge 5\n"
      "  host_timeout 4000\n"
      "end\n"
      "quiet 1200 1400\n"
      "ramp 1500 1800 3 link_error_ppm 0 10000\n"
      "at 2500 restore link_error_ppm\n";
}

struct StormOutcome {
  DriverResult result;
  std::string checkpoint;
  u64 events_applied{0};
  u64 checks{0};
  u64 skipped{0};
};

StormOutcome run_storm(u32 threads, bool fast_forward, bool idle_tail) {
  StormOutcome out;
  DeviceConfig dc = storm_device();
  dc.sim_threads = threads;
  dc.fast_forward = fast_forward;
  Simulator sim;
  std::string diag;
  EXPECT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;
  arm(sim, storm_plan());

  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.seed = 4242;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 1500;
  dcfg.max_cycles = 200000;
  dcfg.response_timeout_cycles = 20000;
  dcfg.retry_limit = 2;
  HostDriver driver(sim, gen, dcfg);
  if (ChaosEngine* chaos = sim.chaos()) {
    chaos->set_host_timeout_hook(
        [&driver](u64 cycles) { driver.set_response_timeout(cycles); },
        dcfg.response_timeout_cycles);
  }
  DriverResult r;
  // The host probe reads the in-progress result, so drive step by step.
  sim.chaos()->set_host_probe([&driver, &r](std::string* detail) {
    return driver.invariants_ok(r, detail);
  });
  while (driver.step(r)) {
  }
  if (idle_tail) {
    // An idle tail past the last plan event, so fast-forward runs get a
    // genuine skip window that must stop at the chaos event horizon.
    while (sim.now() < 4000) sim.clock();
  }
  out.result = r;
  std::ostringstream os;
  EXPECT_EQ(sim.save_checkpoint(os), Status::Ok);
  out.checkpoint = std::move(os).str();
  out.events_applied = sim.chaos()->events_applied();
  out.checks = sim.chaos()->invariant_checks();
  out.skipped = sim.cycles_skipped();
  EXPECT_FALSE(sim.chaos_violated()) << sim.chaos_report();
  EXPECT_EQ(out.events_applied, sim.chaos()->plan().events.size());
  EXPECT_GT(out.checks, 0u);
  return out;
}

TEST(ChaosSimDifferential, StormIsBitIdenticalAcrossStrategies) {
  const StormOutcome ref = run_storm(1, false, true);
  EXPECT_EQ(ref.result.completed, 1500u);
  const StormOutcome par = run_storm(4, false, true);
  const StormOutcome ff = run_storm(1, true, true);
  for (const StormOutcome* other : {&par, &ff}) {
    EXPECT_EQ(other->result.cycles, ref.result.cycles);
    EXPECT_EQ(other->result.sent, ref.result.sent);
    EXPECT_EQ(other->result.completed, ref.result.completed);
    EXPECT_EQ(other->result.errors, ref.result.errors);
    EXPECT_EQ(other->result.timeouts, ref.result.timeouts);
    EXPECT_EQ(other->result.retries, ref.result.retries);
    EXPECT_EQ(other->events_applied, ref.events_applied);
    EXPECT_EQ(other->checks, ref.checks);
    EXPECT_EQ(other->checkpoint, ref.checkpoint)
        << "checkpoint bytes diverged";
  }
  // Non-vacuousness: the fast-forward leg actually skipped cycles.
  EXPECT_GT(ff.skipped, 0u);
  EXPECT_EQ(ref.skipped, 0u);
}

TEST(ChaosSim, FastForwardStopsAtTheEventHorizon) {
  // An idle machine with a far-future event: the skip engine must treat
  // the pending chaos event as a horizon and land it at its exact cycle.
  DeviceConfig dc = test::small_device();
  dc.fast_forward = true;
  Simulator sim = test::make_simple_sim(dc);
  arm(sim, "at 500 link_error_ppm 7777\n");
  while (sim.now() < 499) sim.clock();
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 0u);
  sim.clock();  // cycle 499 executes
  sim.clock();  // cycle 500 executes: the event lands
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 7777u);
  EXPECT_GT(sim.cycles_skipped(), 0u);  // the idle run-up genuinely skipped
}

// ---- mid-storm checkpointing ----------------------------------------------

TEST(ChaosSim, MidStormCheckpointRestoresAndReplaysBitIdentically) {
  DeviceConfig dc = storm_device();
  Simulator sim;
  std::string diag;
  ASSERT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;
  arm(sim, storm_plan());
  // Run into the storm window (plan events 200..900 partially applied).
  while (sim.now() < 400) sim.clock();
  ASSERT_GT(sim.chaos()->events_applied(), 0u);
  ASSERT_LT(sim.chaos()->cursor(), sim.chaos()->plan().events.size());
  std::ostringstream saved;
  ASSERT_EQ(sim.save_checkpoint(saved), Status::Ok);
  const std::string bytes = std::move(saved).str();

  // The original continues through the storm's closing edges.
  while (sim.now() < 2000) sim.clock();
  std::ostringstream after_a;
  ASSERT_EQ(sim.save_checkpoint(after_a), Status::Ok);

  // A fresh machine restores the mid-storm snapshot and replays.  The
  // chaos_invariants cadence is an observability knob preserved from the
  // pre-restore config (not serialized), so the twin must start from the
  // same device config for the check counters to line up.
  Simulator sim2;
  ASSERT_EQ(sim2.init_simple(storm_device(), &diag), Status::Ok);
  std::istringstream in(bytes);
  ASSERT_EQ(sim2.restore_checkpoint(in), Status::Ok);
  ASSERT_NE(sim2.chaos(), nullptr);
  EXPECT_EQ(sim2.chaos()->cursor(), sim2.chaos()->events_applied());
  EXPECT_EQ(sim2.chaos()->plan_crc(), chaos_plan_crc(compile(storm_plan())));
  // Re-arming the same plan is the resume idiom: CRC-equal, no-op, the
  // restored cursor survives.
  const u64 cursor = sim2.chaos()->cursor();
  std::string rediag;
  ASSERT_EQ(sim2.set_chaos_plan(compile(storm_plan()), &rediag), Status::Ok)
      << rediag;
  EXPECT_EQ(sim2.chaos()->cursor(), cursor);
  // A different plan would desynchronize the checkpointed campaign.
  EXPECT_EQ(sim2.set_chaos_plan(compile("at 9 link_burst 2\n"), &rediag),
            Status::InvalidConfig);
  EXPECT_NE(rediag.find("does not match"), std::string::npos);

  while (sim2.now() < 2000) sim2.clock();
  std::ostringstream after_b;
  ASSERT_EQ(sim2.save_checkpoint(after_b), Status::Ok);
  EXPECT_EQ(after_a.str(), after_b.str())
      << "mid-storm restore diverged from the uninterrupted run";
  EXPECT_FALSE(sim2.chaos_violated());
}

TEST(ChaosSim, ResetRewindsTheCampaign) {
  Simulator sim = test::make_simple_sim();
  arm(sim, "at 10 link_error_ppm 7777\n");
  for (int i = 0; i < 20; ++i) sim.clock();
  EXPECT_EQ(sim.chaos()->events_applied(), 1u);
  sim.reset();
  EXPECT_EQ(sim.chaos()->events_applied(), 0u);
  EXPECT_EQ(sim.chaos()->cursor(), 0u);
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 0u);
  // The plan replays identically after the rewind.
  for (int i = 0; i < 20; ++i) sim.clock();
  EXPECT_EQ(sim.chaos()->events_applied(), 1u);
  EXPECT_EQ(sim.config().device.link_error_rate_ppm, 7777u);
}

}  // namespace
}  // namespace hmcsim
