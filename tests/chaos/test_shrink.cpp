// Scenario shrinking (src/chaos/shrink.cpp): ddmin over the event list,
// then magnitude binary search — proven against synthetic oracles whose
// minimal reproducers are known exactly.  The end-to-end tool path
// (--chaos-shrink against a real simulator) is pinned in
// tests/tools/test_exit_codes.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "chaos/plan.hpp"
#include "chaos/shrink.hpp"

namespace hmcsim {
namespace {

ChaosEvent rate_event(Cycle cycle, u64 ppm) {
  ChaosEvent ev;
  ev.cycle = cycle;
  ev.action = ChaosAction::LinkErrorPpm;
  ev.a = ppm;
  return ev;
}

ChaosEvent structural_event(Cycle cycle, ChaosAction action, u64 index) {
  ChaosEvent ev;
  ev.cycle = cycle;
  ev.action = action;
  ev.a = index;
  return ev;
}

const ChaosOracleResult kTarget{true, "link_token_identity", 1024};

/// Oracle: trips the target iff the candidate contains a LinkErrorPpm
/// event at cycle 13 with magnitude >= `threshold`.
ChaosOracle threshold_oracle(u64 threshold, u32* calls = nullptr) {
  return [threshold, calls](const ChaosPlan& plan) {
    if (calls != nullptr) ++*calls;
    for (const ChaosEvent& ev : plan.events) {
      if (ev.cycle == 13 && ev.action == ChaosAction::LinkErrorPpm &&
          ev.a >= threshold) {
        return kTarget;
      }
    }
    return ChaosOracleResult{};
  };
}

TEST(ChaosShrink, ReducesToTheSingleCulprit) {
  ChaosPlan plan;
  for (Cycle c = 10; c < 18; ++c) plan.events.push_back(rate_event(c, 1000));
  plan.events[3].cycle = 13;  // the culprit (others at 10,11,12,14..17)

  const ChaosShrinkResult r =
      shrink_chaos_plan(plan, kTarget, threshold_oracle(1));
  ASSERT_EQ(r.plan.events.size(), 1u);
  EXPECT_EQ(r.plan.events[0].cycle, 13u);
  EXPECT_TRUE(r.repro.tripped);
  EXPECT_EQ(r.repro.invariant, kTarget.invariant);
  EXPECT_EQ(r.repro.cycle, kTarget.cycle);
  EXPECT_GT(r.oracle_runs, 0u);
}

TEST(ChaosShrink, BinarySearchesMagnitudesDown) {
  ChaosPlan plan;
  plan.events.push_back(rate_event(13, 1000));
  // Trips only at >= 37: the minimal magnitude must come back exactly.
  const ChaosShrinkResult r =
      shrink_chaos_plan(plan, kTarget, threshold_oracle(37));
  ASSERT_EQ(r.plan.events.size(), 1u);
  EXPECT_EQ(r.plan.events[0].a, 37u);
}

TEST(ChaosShrink, KeepsConjunctionsIntact) {
  // Both events are required: dropping either un-trips the violation, so
  // ddmin must keep the pair (1-minimality, not 0-minimality).
  ChaosPlan plan;
  plan.events.push_back(structural_event(5, ChaosAction::KillLink, 0));
  plan.events.push_back(structural_event(9, ChaosAction::Wedge, 1));
  plan.events.push_back(structural_event(20, ChaosAction::VaultFail, 2));
  plan.events.push_back(structural_event(30, ChaosAction::KillLink, 3));
  const ChaosOracle oracle = [](const ChaosPlan& candidate) {
    bool killed = false;
    bool wedged = false;
    for (const ChaosEvent& ev : candidate.events) {
      killed |= ev.action == ChaosAction::KillLink && ev.a == 0;
      wedged |= ev.action == ChaosAction::Wedge;
    }
    return killed && wedged ? kTarget : ChaosOracleResult{};
  };
  const ChaosShrinkResult r = shrink_chaos_plan(plan, kTarget, oracle);
  ASSERT_EQ(r.plan.events.size(), 2u);
  EXPECT_EQ(r.plan.events[0].action, ChaosAction::KillLink);
  EXPECT_EQ(r.plan.events[1].action, ChaosAction::Wedge);
}

TEST(ChaosShrink, DifferentViolationDoesNotCount) {
  // A subset that trips a DIFFERENT invariant (or the same one at another
  // cycle) must not be accepted as a reproducer.
  ChaosPlan plan;
  plan.events.push_back(rate_event(13, 1000));
  plan.events.push_back(rate_event(14, 1000));
  const ChaosOracle oracle = [](const ChaosPlan& candidate) {
    if (candidate.events.size() == 2) return kTarget;
    // Any strict subset trips elsewhere.
    return ChaosOracleResult{true, "queue_bound", 7};
  };
  const ChaosShrinkResult r = shrink_chaos_plan(plan, kTarget, oracle);
  EXPECT_EQ(r.plan.events.size(), 2u);
  EXPECT_EQ(r.repro.invariant, kTarget.invariant);
  EXPECT_EQ(r.repro.cycle, kTarget.cycle);
}

TEST(ChaosShrink, BudgetExhaustionFallsBackToTheOriginal) {
  ChaosPlan plan;
  for (Cycle c = 10; c < 26; ++c) plan.events.push_back(rate_event(c, 1000));
  plan.events[3].cycle = 13;
  u32 calls = 0;
  // A budget of 1 cannot even finish the final verification honestly; the
  // result must still be a plan known to reproduce (the original).
  const ChaosShrinkResult r =
      shrink_chaos_plan(plan, kTarget, threshold_oracle(1, &calls), 1);
  EXPECT_LE(r.oracle_runs, 2u);  // 1 probe + the final re-verify
  EXPECT_TRUE(r.repro.tripped);
  // Whatever came back reproduces the target when re-run.
  const ChaosOracleResult check = threshold_oracle(1)(r.plan);
  EXPECT_TRUE(check.tripped);
  EXPECT_EQ(check.invariant, kTarget.invariant);
  EXPECT_EQ(check.cycle, kTarget.cycle);
}

TEST(ChaosShrink, ShrunkPlanSurvivesTheWriterRoundTrip) {
  // The tool writes the reproducer with write_chaos_plan; parsing it back
  // must yield the same compiled list (same CRC), or the "replayable
  // bit-identically" promise breaks at the file boundary.
  ChaosPlan plan;
  for (Cycle c = 10; c < 18; ++c) plan.events.push_back(rate_event(c, 1000));
  plan.events[3].cycle = 13;
  const ChaosShrinkResult r =
      shrink_chaos_plan(plan, kTarget, threshold_oracle(200));
  std::ostringstream os;
  write_chaos_plan(os, r.plan);
  const ChaosPlanParseResult again = parse_chaos_plan_string(os.str());
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(chaos_plan_crc(again.plan), chaos_plan_crc(r.plan));
}

}  // namespace
}  // namespace hmcsim
