// Robustness fuzzing for the chaos-plan compiler, mirroring
// tests/core/test_config_fuzz.cpp: arbitrary text soup, structure-aware
// directive soup, and single-character mutations of valid plans must never
// crash parse_chaos_plan_string — only a clean accept (whose compiled list
// round-trips through the writer) or a clean reject with a line-numbered
// diagnostic.
#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <string>

#include "chaos/plan.hpp"
#include "common/random.hpp"

namespace hmcsim {
namespace {

const std::string kAlphabet =
    "abcdefghijklmnopqrstuvwxyz_0123456789 #\t-+x\n\"\\";

std::string random_text(SplitMix64& rng, usize max_len) {
  std::string text;
  const usize len = rng.next_below(max_len);
  for (usize i = 0; i < len; ++i) {
    text += kAlphabet[rng.next_below(kAlphabet.size())];
  }
  return text;
}

void expect_clean_outcome(const std::string& text) {
  const ChaosPlanParseResult r = parse_chaos_plan_string(text);
  if (r.ok) {
    // Accepted plans are sorted, within the cap, and writer-stable.
    ASSERT_LE(r.plan.events.size(), kMaxChaosEvents);
    for (usize i = 1; i < r.plan.events.size(); ++i) {
      ASSERT_LE(r.plan.events[i - 1].cycle, r.plan.events[i].cycle);
    }
    std::ostringstream os;
    write_chaos_plan(os, r.plan);
    const ChaosPlanParseResult round = parse_chaos_plan_string(os.str());
    ASSERT_TRUE(round.ok) << "accepted plan failed to round-trip: "
                          << round.error;
    ASSERT_EQ(chaos_plan_crc(round.plan), chaos_plan_crc(r.plan));
  } else {
    ASSERT_FALSE(r.error.empty()) << "rejection without a diagnostic";
    // Typed "<line>: <message>" shape.
    const auto colon = r.error.find(':');
    ASSERT_NE(colon, std::string::npos) << r.error;
    ASSERT_GT(colon, 0u);
  }
}

TEST(ChaosPlanFuzz, RandomTextNeverCrashesTheParser) {
  SplitMix64 rng(0xC4A05);
  for (int i = 0; i < 20000; ++i) {
    expect_clean_outcome(random_text(rng, 200));
  }
}

/// Structure-aware soup: lines shaped like real directives with randomized
/// keywords, cycle bounds, action names, arities, and block nesting, so the
/// expansion paths (every/ramp/storm/quiet) and their range checks get hit,
/// not just the tokenizer.
std::string random_directive_soup(SplitMix64& rng) {
  static constexpr const char* kHeads[] = {"at",    "every", "ramp", "storm",
                                           "quiet", "end",   "restore"};
  static constexpr const char* kActions[] = {
      "link_error_ppm", "link_burst",  "link_retrain",  "kill_link",
      "revive_link",    "dram_sbe_ppm", "dram_dbe_ppm", "vault_fail",
      "vault_unfail",   "wedge",        "unwedge",      "host_timeout",
      "break_invariant", "melt_cube",   "from",         "until"};
  std::string text;
  const usize lines = 1 + rng.next_below(12);
  for (usize l = 0; l < lines; ++l) {
    std::string line = kHeads[rng.next_below(std::size(kHeads))];
    const usize words = rng.next_below(6);
    for (usize w = 0; w < words; ++w) {
      line += ' ';
      switch (rng.next_below(4)) {
        case 0:
          line += kActions[rng.next_below(std::size(kActions))];
          break;
        case 1:
          line += std::to_string(rng.next_below(100000));
          break;
        case 2:
          line += "restore";
          break;
        default:
          line += std::to_string(rng.next_below(20));
          break;
      }
    }
    if (rng.next_below(8) == 0) line += " # chaff";
    text += line;
    text += '\n';
  }
  return text;
}

TEST(ChaosPlanFuzz, DirectiveShapedSoupNeverCrashes) {
  SplitMix64 rng(0x5702);
  for (int i = 0; i < 20000; ++i) {
    expect_clean_outcome(random_directive_soup(rng));
  }
}

TEST(ChaosPlanFuzz, MutationsOfAValidPlanNeverCrash) {
  const std::string seed_plan =
      "at 100 link_error_ppm 5000\n"
      "at 150 link_retrain 1 64\n"
      "every 50 from 200 until 400 dram_sbe_ppm 9000\n"
      "ramp 500 600 4 link_burst 1 8\n"
      "storm 700 900\n"
      "  wedge 1\n"
      "  kill_link 0\n"
      "  host_timeout 500\n"
      "end\n"
      "quiet 1000 1100\n"
      "at 1200 restore link_error_ppm\n";
  ASSERT_TRUE(parse_chaos_plan_string(seed_plan).ok);
  SplitMix64 rng(0xD00D);
  for (int i = 0; i < 20000; ++i) {
    std::string mutated = seed_plan;
    const usize edits = 1 + rng.next_below(4);
    for (usize e = 0; e < edits; ++e) {
      const usize pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:
          mutated[pos] = kAlphabet[rng.next_below(kAlphabet.size())];
          break;
        case 1:
          mutated.erase(pos, 1 + rng.next_below(8));
          break;
        default:
          mutated.insert(pos, 1, kAlphabet[rng.next_below(kAlphabet.size())]);
          break;
      }
      if (mutated.empty()) break;
    }
    expect_clean_outcome(mutated);
  }
}

TEST(ChaosPlanFuzz, TruncationsOfAValidPlanNeverCrash) {
  const std::string seed_plan =
      "at 100 link_error_ppm 5000\n"
      "storm 700 900\n"
      "  wedge 1\n"
      "end\n"
      "quiet 1000 1100\n";
  for (usize len = 0; len <= seed_plan.size(); ++len) {
    expect_clean_outcome(seed_plan.substr(0, len));
  }
}

}  // namespace
}  // namespace hmcsim
