# Re-applies multi-valued LABELS to gtest-discovered tests.
#
# gtest_discover_tests cannot carry a label *list* through to the generated
# <binary>[1]_tests.cmake files: GoogleTestAddTests.cmake expands the
# property list unquoted (twice), so "tier1;fuzz" collapses to two separate
# arguments and only the first one registers.  Instead, discovery runs with
# the primary label only, and tests/CMakeLists.txt appends a generated
# include file — processed by ctest *after* the discovery files — that calls
# hmcsim_apply_labels() to overwrite each test's LABELS with the full list.

# Parse the discovery file for `binary` and set LABELS on every test in it.
# `labels_csv` uses commas so the list survives being passed as one argument.
function(hmcsim_apply_labels binary labels_csv)
  set(discovery_file "${CMAKE_CURRENT_LIST_DIR}/${binary}[1]_tests.cmake")
  if(NOT EXISTS "${discovery_file}")
    return()  # binary not built yet; its tests are not registered either
  endif()
  string(REPLACE "," ";" labels "${labels_csv}")
  file(STRINGS "${discovery_file}" lines REGEX "^add_test")
  foreach(line IN LISTS lines)
    if(line MATCHES "^add_test\\( *\\[=\\[([^]]+)\\]=\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES LABELS "${labels}")
    endif()
  endforeach()
endfunction()
