#include "trace/series.hpp"

#include <gtest/gtest.h>

namespace hmcsim {
namespace {

TraceRecord make(TraceEvent event, Cycle cycle, u32 vault, u32 dev = 0) {
  TraceRecord rec;
  rec.event = event;
  rec.cycle = cycle;
  rec.vault = vault;
  rec.dev = dev;
  return rec;
}

TEST(VaultSeriesSink, AccumulatesPerVaultPerBucket) {
  VaultSeriesSink sink(4, /*bucket_width=*/10);
  sink.record(make(TraceEvent::ReadRequest, 0, 0));
  sink.record(make(TraceEvent::ReadRequest, 5, 0));
  sink.record(make(TraceEvent::WriteRequest, 5, 1));
  sink.record(make(TraceEvent::BankConflict, 12, 2));
  sink.record(make(TraceEvent::ReadRequest, 25, 3));

  ASSERT_EQ(sink.buckets().size(), 3u);
  EXPECT_EQ(sink.buckets()[0].reads[0], 2u);
  EXPECT_EQ(sink.buckets()[0].writes[1], 1u);
  EXPECT_EQ(sink.buckets()[1].conflicts[2], 1u);
  EXPECT_EQ(sink.buckets()[2].reads[3], 1u);
  EXPECT_EQ(sink.buckets()[0].first_cycle, 0u);
  EXPECT_EQ(sink.buckets()[1].first_cycle, 10u);
  EXPECT_EQ(sink.buckets()[2].first_cycle, 20u);
}

TEST(VaultSeriesSink, BucketWidthOneGivesPerCycleData) {
  VaultSeriesSink sink(2, 1);
  sink.record(make(TraceEvent::ReadRequest, 7, 1));
  ASSERT_EQ(sink.buckets().size(), 8u);
  EXPECT_EQ(sink.buckets()[7].reads[1], 1u);
  EXPECT_EQ(sink.buckets()[6].reads[1], 0u);
}

TEST(VaultSeriesSink, DeviceWideCountersIgnoreVault) {
  VaultSeriesSink sink(2, 1);
  TraceRecord rec = make(TraceEvent::XbarRqstStall, 3, kNoCoord);
  sink.record(rec);
  rec = make(TraceEvent::LatencyPenalty, 3, kNoCoord);
  sink.record(rec);
  EXPECT_EQ(sink.buckets()[3].xbar_stalls, 1u);
  EXPECT_EQ(sink.buckets()[3].latency_penalties, 1u);
}

TEST(VaultSeriesSink, AtomicsCountAsWrites) {
  VaultSeriesSink sink(2, 1);
  sink.record(make(TraceEvent::AtomicRequest, 0, 1));
  EXPECT_EQ(sink.buckets()[0].writes[1], 1u);
}

TEST(VaultSeriesSink, FiltersByDevice) {
  VaultSeriesSink sink(2, 1, /*dev_filter=*/1);
  sink.record(make(TraceEvent::ReadRequest, 0, 0, /*dev=*/0));
  sink.record(make(TraceEvent::ReadRequest, 0, 0, /*dev=*/1));
  EXPECT_EQ(sink.total_reads(), 1u);
}

TEST(VaultSeriesSink, IgnoresIrrelevantEventsAndBadVaults) {
  VaultSeriesSink sink(2, 1);
  sink.record(make(TraceEvent::PacketSend, 0, 0));
  sink.record(make(TraceEvent::ReadRequest, 0, 99));  // vault out of range
  sink.record(make(TraceEvent::ReadRequest, 0, kNoCoord));
  EXPECT_EQ(sink.total_reads(), 0u);
  // Untracked events must not even materialize buckets.
  EXPECT_TRUE(sink.buckets().empty());
}

TEST(VaultSeriesSink, Totals) {
  VaultSeriesSink sink(4, 16);
  for (Cycle c = 0; c < 100; ++c) {
    sink.record(make(TraceEvent::ReadRequest, c, static_cast<u32>(c % 4)));
    if (c % 2 == 0) {
      sink.record(make(TraceEvent::WriteRequest, c, static_cast<u32>(c % 4)));
    }
    if (c % 5 == 0) {
      sink.record(make(TraceEvent::BankConflict, c, static_cast<u32>(c % 4)));
      sink.record(make(TraceEvent::XbarRqstStall, c, kNoCoord));
      sink.record(make(TraceEvent::LatencyPenalty, c, kNoCoord));
    }
  }
  EXPECT_EQ(sink.total_reads(), 100u);
  EXPECT_EQ(sink.total_writes(), 50u);
  EXPECT_EQ(sink.total_conflicts(), 20u);
  EXPECT_EQ(sink.total_xbar_stalls(), 20u);
  EXPECT_EQ(sink.total_latency_penalties(), 20u);
}

TEST(VaultSeriesSink, ZeroBucketWidthClampsToOne) {
  VaultSeriesSink sink(1, 0);
  EXPECT_EQ(sink.bucket_width(), 1u);
}

}  // namespace
}  // namespace hmcsim
