#include "trace/lifecycle.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "trace/chrome.hpp"
#include "trace/reader.hpp"
#include "trace/tracer.hpp"

namespace hmcsim {
namespace {

PacketLifecycle sample_life() {
  PacketLifecycle lc;
  lc.inject = 10;
  lc.vault_arrive = 14;
  lc.first_conflict = 16;
  lc.retire = 25;
  lc.rsp_register = 27;
  lc.drain = 31;
  lc.dev = 0;
  lc.vault = 3;
  lc.link = 1;
  lc.tag = 7;
  lc.cmd = Command::Rd64;
  return lc;
}

TEST(LifecycleSegments, DecomposeAndSumToTotal) {
  const PacketLifecycle lc = sample_life();
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::Xbar), 4u);
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::VaultQueue), 2u);
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::BankConflict), 9u);
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::Response), 2u);
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::Drain), 4u);
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::Total), 21u);
  Cycle sum = 0;
  for (usize s = 0; s < kLifecycleSegmentCount - 1; ++s) {
    sum += segment_cycles(lc, static_cast<LifecycleSegment>(s));
  }
  EXPECT_EQ(sum, segment_cycles(lc, LifecycleSegment::Total));
}

TEST(LifecycleSegments, NoConflictCollapsesBankSegment) {
  PacketLifecycle lc = sample_life();
  lc.first_conflict = 0;
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::BankConflict), 0u);
  // The vault-queue segment then spans arrival -> retire.
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::VaultQueue), 11u);
  Cycle sum = 0;
  for (usize s = 0; s < kLifecycleSegmentCount - 1; ++s) {
    sum += segment_cycles(lc, static_cast<LifecycleSegment>(s));
  }
  EXPECT_EQ(sum, segment_cycles(lc, LifecycleSegment::Total));
}

TEST(LifecycleSegments, PartialStampsSaturateInsteadOfWrapping) {
  PacketLifecycle lc;  // all-zero: nothing stamped
  for (usize s = 0; s < kLifecycleSegmentCount; ++s) {
    EXPECT_EQ(segment_cycles(lc, static_cast<LifecycleSegment>(s)), 0u);
  }
  // Out-of-order stamps (possible only under a corrupted checkpoint) must
  // not produce ~0-sized segments.
  lc = sample_life();
  lc.first_conflict = lc.retire + 5;
  EXPECT_EQ(segment_cycles(lc, LifecycleSegment::BankConflict), 0u);
}

TEST(OpClassOf, ClassifiesTheCommandSet) {
  EXPECT_EQ(op_class_of(Command::Rd16), OpClass::Read);
  EXPECT_EQ(op_class_of(Command::Rd128), OpClass::Read);
  EXPECT_EQ(op_class_of(Command::Wr64), OpClass::Write);
  EXPECT_EQ(op_class_of(Command::PostedWr16), OpClass::Write);
  EXPECT_EQ(op_class_of(Command::Add16), OpClass::Atomic);
  EXPECT_EQ(op_class_of(Command::BitWrite), OpClass::Atomic);
  EXPECT_EQ(op_class_of(Command::Null), OpClass::Other);
}

TEST(LifecycleSink, AggregatesPerClassAndSegment) {
  LifecycleSink sink;
  PacketLifecycle rd = sample_life();
  rd.cmd = Command::Rd64;
  sink.complete(rd);
  sink.complete(rd);
  PacketLifecycle wr = sample_life();
  wr.cmd = Command::Wr64;
  wr.first_conflict = 0;  // never conflicted
  sink.complete(wr);

  EXPECT_EQ(sink.completed(), 3u);
  EXPECT_EQ(sink.conflicted(), 2u);
  EXPECT_EQ(sink.stats(OpClass::Read, LifecycleSegment::Total).count, 2u);
  EXPECT_EQ(sink.stats(OpClass::Write, LifecycleSegment::Total).count, 1u);
  EXPECT_EQ(sink.stats(OpClass::Atomic, LifecycleSegment::Total).count, 0u);
  EXPECT_EQ(sink.stats(OpClass::Read, LifecycleSegment::Xbar).sum, 8u);
  EXPECT_EQ(sink.merged(LifecycleSegment::Total).count, 3u);
  EXPECT_EQ(sink.merged(LifecycleSegment::Total).sum, 63u);

  sink.clear();
  EXPECT_EQ(sink.completed(), 0u);
  EXPECT_EQ(sink.merged(LifecycleSegment::Total).count, 0u);
}

TEST(LatencyStats, MergeFoldsHistograms) {
  LatencyStats a, b;
  a.add(3);
  a.add(100);
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 110u);
  EXPECT_EQ(a.min, 3u);
  EXPECT_EQ(a.max, 100u);
  LatencyStats c;
  c.merge(a);
  EXPECT_EQ(c.count, 3u);
  c.merge(LatencyStats{});  // merging an empty summary is a no-op
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.min, 3u);
}

// ---- Chrome trace export ---------------------------------------------------

/// Minimal structural JSON scan: balanced braces/brackets outside strings,
/// terminated strings, valid escape pairs.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

usize count_occurrences(const std::string& text, const std::string& needle) {
  usize count = 0;
  for (usize pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTraceSink, EmptyRunIsValidJson) {
  std::ostringstream os;
  {
    ChromeTraceSink sink(os);
    sink.finish();
  }
  const std::string text = os.str();
  EXPECT_TRUE(json_balanced(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceSink, EmitsDurationChainAndFlows) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  sink.complete(sample_life());
  PacketLifecycle second = sample_life();
  second.first_conflict = 0;
  second.tag = 8;
  sink.complete(second);
  sink.finish();
  EXPECT_EQ(sink.packets_emitted(), 2u);

  const std::string text = os.str();
  EXPECT_TRUE(json_balanced(text)) << text;
  // 5 duration events for the conflicted packet, 4 for the clean one.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), 9u);
  EXPECT_EQ(count_occurrences(text, "\"bank_conflict\""), 1u);
  // Two flow arrows (s/f pairs) per packet.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"s\""), 4u);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"f\""), 4u);
  // Track metadata: link and vault thread names plus the process name.
  EXPECT_EQ(count_occurrences(text, "\"thread_name\""), 2u);
  EXPECT_EQ(count_occurrences(text, "\"process_name\""), 1u);
  EXPECT_NE(text.find("\"vault 3\""), std::string::npos);
}

TEST(ChromeTraceSink, FinishIsIdempotentAndStopsAccepting) {
  std::ostringstream os;
  ChromeTraceSink sink(os);
  sink.complete(sample_life());
  sink.finish();
  const std::string closed = os.str();
  sink.finish();
  sink.complete(sample_life());
  EXPECT_EQ(os.str(), closed);
  EXPECT_EQ(sink.packets_emitted(), 1u);
}

// ---- level gating and text round-trip of the new event ---------------------

TEST(TraceLevels, EveryEventGatesExactlyAtItsLevel) {
  // Table-driven: for every (event, configured level) pair, the tracer
  // must enable the event iff the level reaches level_for(event).
  const TraceLevel levels[] = {TraceLevel::Off, TraceLevel::Stalls,
                               TraceLevel::Events, TraceLevel::SubCycle};
  Tracer tracer;
  tracer.add_sink(std::make_shared<CountingSink>());
  for (const TraceLevel level : levels) {
    tracer.set_level(level);
    for (usize e = 0; e < kTraceEventCount; ++e) {
      const auto event = static_cast<TraceEvent>(e);
      const bool expected = static_cast<u8>(level) != 0 &&
                            static_cast<u8>(level_for(event)) <=
                                static_cast<u8>(level);
      EXPECT_EQ(tracer.enabled(event), expected)
          << to_string(event) << " at level " << static_cast<int>(level);
    }
  }
}

TEST(TraceLevels, VaultArrivalIsSubCycle) {
  EXPECT_EQ(level_for(TraceEvent::VaultArrival), TraceLevel::SubCycle);
  EXPECT_EQ(to_string(TraceEvent::VaultArrival), "VAULT_ARRIVAL");
}

TEST(TraceReaderLifecycle, VaultArrivalRoundTrips) {
  TraceRecord rec;
  rec.event = TraceEvent::VaultArrival;
  rec.stage = 2;
  rec.cycle = 777;
  rec.dev = 0;
  rec.link = 1;
  rec.quad = 0;
  rec.vault = 2;
  rec.bank = kNoCoord;
  rec.addr = 0x1000;
  rec.tag = 12;
  rec.cmd = Command::Wr32;
  const auto parsed = parse_trace_line(TextSink::format(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->event, TraceEvent::VaultArrival);
  EXPECT_EQ(parsed->cycle, 777u);
  EXPECT_EQ(parsed->vault, 2u);
  EXPECT_EQ(parsed->cmd, Command::Wr32);
}

}  // namespace
}  // namespace hmcsim
