#include "trace/sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "trace/tracer.hpp"

namespace hmcsim {
namespace {

TraceRecord sample_record() {
  TraceRecord rec;
  rec.event = TraceEvent::BankConflict;
  rec.stage = 3;
  rec.cycle = 1234;
  rec.dev = 0;
  rec.vault = 5;
  rec.bank = 2;
  rec.addr = 0xABCD;
  rec.tag = 42;
  rec.cmd = Command::Rd64;
  return rec;
}

TEST(TextSink, FormatsLocalityAndClock) {
  const std::string line = TextSink::format(sample_record());
  // Every trace event is marked with its physical locality and the clock
  // tick at which it was raised (§IV.E).
  EXPECT_NE(line.find("1234"), std::string::npos);
  EXPECT_NE(line.find("BANK_CONFLICT"), std::string::npos);
  EXPECT_NE(line.find("s3"), std::string::npos);
  EXPECT_NE(line.find("0xabcd"), std::string::npos);
  EXPECT_NE(line.find("RD64"), std::string::npos);
  EXPECT_NE(line.find("HMCSIM_TRACE"), std::string::npos);
}

TEST(TextSink, NotApplicableCoordsRenderAsDash) {
  TraceRecord rec = sample_record();
  rec.link = kNoCoord;
  rec.quad = kNoCoord;
  const std::string line = TextSink::format(rec);
  EXPECT_NE(line.find(":-:"), std::string::npos);
}

TEST(TextSink, WritesOneLinePerRecord) {
  std::ostringstream os;
  TextSink sink(os);
  sink.record(sample_record());
  sink.record(sample_record());
  sink.flush();
  const std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(MemorySink, RetainsRecords) {
  MemorySink sink;
  sink.record(sample_record());
  TraceRecord second = sample_record();
  second.cycle = 9999;
  sink.record(second);
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].cycle, 1234u);
  EXPECT_EQ(sink.records()[1].cycle, 9999u);
  EXPECT_EQ(sink.total_recorded(), 2u);
}

TEST(MemorySink, BoundedModeKeepsRecentWindow) {
  MemorySink sink(4);
  for (u64 i = 0; i < 10; ++i) {
    TraceRecord rec = sample_record();
    rec.cycle = i;
    sink.record(rec);
  }
  EXPECT_EQ(sink.total_recorded(), 10u);
  ASSERT_EQ(sink.records().size(), 4u);
  // All retained cycles are from the last 4 records {6,7,8,9}.
  for (const auto& rec : sink.records()) {
    EXPECT_GE(rec.cycle, 6u);
  }
}

TEST(CountingSink, CountsPerEvent) {
  CountingSink sink;
  TraceRecord rec = sample_record();
  sink.record(rec);
  sink.record(rec);
  rec.event = TraceEvent::ReadRequest;
  sink.record(rec);
  EXPECT_EQ(sink.count(TraceEvent::BankConflict), 2u);
  EXPECT_EQ(sink.count(TraceEvent::ReadRequest), 1u);
  EXPECT_EQ(sink.count(TraceEvent::WriteRequest), 0u);
  EXPECT_EQ(sink.total(), 3u);
  sink.clear();
  EXPECT_EQ(sink.total(), 0u);
}

TEST(Tracer, LevelGatesEvents) {
  Tracer tracer;
  auto sink = std::make_shared<CountingSink>();
  tracer.add_sink(sink);

  tracer.set_level(TraceLevel::Off);
  EXPECT_FALSE(tracer.enabled(TraceEvent::BankConflict));
  EXPECT_FALSE(tracer.enabled(TraceEvent::ReadRequest));

  tracer.set_level(TraceLevel::Stalls);
  EXPECT_TRUE(tracer.enabled(TraceEvent::BankConflict));
  EXPECT_TRUE(tracer.enabled(TraceEvent::XbarRqstStall));
  EXPECT_FALSE(tracer.enabled(TraceEvent::ReadRequest));
  EXPECT_FALSE(tracer.enabled(TraceEvent::RouteHop));

  tracer.set_level(TraceLevel::Events);
  EXPECT_TRUE(tracer.enabled(TraceEvent::ReadRequest));
  EXPECT_FALSE(tracer.enabled(TraceEvent::PacketSend));

  tracer.set_level(TraceLevel::SubCycle);
  EXPECT_TRUE(tracer.enabled(TraceEvent::PacketSend));
  EXPECT_TRUE(tracer.enabled(TraceEvent::RouteHop));
}

TEST(Tracer, NoSinksMeansDisabled) {
  Tracer tracer;
  tracer.set_level(TraceLevel::SubCycle);
  EXPECT_FALSE(tracer.enabled(TraceEvent::BankConflict));
}

TEST(Tracer, EmitFansOutToAllSinks) {
  Tracer tracer;
  auto a = std::make_shared<CountingSink>();
  auto b = std::make_shared<MemorySink>();
  tracer.add_sink(a);
  tracer.add_sink(b);
  tracer.set_level(TraceLevel::SubCycle);
  tracer.emit_if_enabled(sample_record());
  EXPECT_EQ(a->total(), 1u);
  EXPECT_EQ(b->records().size(), 1u);
}

TEST(Tracer, EmitIfEnabledRespectsLevel) {
  Tracer tracer;
  auto sink = std::make_shared<CountingSink>();
  tracer.add_sink(sink);
  tracer.set_level(TraceLevel::Stalls);
  TraceRecord rec = sample_record();
  rec.event = TraceEvent::ReadRequest;  // Events-level; gated out
  tracer.emit_if_enabled(rec);
  EXPECT_EQ(sink->total(), 0u);
  rec.event = TraceEvent::BankConflict;
  tracer.emit_if_enabled(rec);
  EXPECT_EQ(sink->total(), 1u);
}

TEST(TraceEventNames, AllDistinct) {
  std::set<std::string_view> names;
  for (usize i = 0; i < kTraceEventCount; ++i) {
    EXPECT_TRUE(names.insert(to_string(static_cast<TraceEvent>(i))).second);
  }
}

}  // namespace
}  // namespace hmcsim
