#include "trace/reader.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.hpp"
#include "trace/series.hpp"

namespace hmcsim {
namespace {

TraceRecord sample() {
  TraceRecord rec;
  rec.event = TraceEvent::BankConflict;
  rec.stage = 3;
  rec.cycle = 987654321;
  rec.dev = 1;
  rec.link = kNoCoord;
  rec.quad = 2;
  rec.vault = 9;
  rec.bank = 4;
  rec.addr = 0x2BCDEF123ull;  // within the 34-bit ADRS field
  rec.tag = 511;
  rec.cmd = Command::PostedTwoAdd8;
  return rec;
}

void expect_same(const TraceRecord& a, const TraceRecord& b) {
  EXPECT_EQ(a.event, b.event);
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.cycle, b.cycle);
  EXPECT_EQ(a.dev, b.dev);
  EXPECT_EQ(a.link, b.link);
  EXPECT_EQ(a.quad, b.quad);
  EXPECT_EQ(a.vault, b.vault);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.addr, b.addr);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.cmd, b.cmd);
}

TEST(TraceReader, RoundTripsTheWriterFormat) {
  const TraceRecord rec = sample();
  const auto parsed = parse_trace_line(TextSink::format(rec));
  ASSERT_TRUE(parsed.has_value());
  expect_same(rec, *parsed);
}

TEST(TraceReader, RoundTripsEveryEventAndCommand) {
  SplitMix64 rng(3);
  for (usize e = 0; e < kTraceEventCount; ++e) {
    for (u8 raw = 0; raw < 64; ++raw) {
      if (!is_valid_command(raw)) continue;
      TraceRecord rec = sample();
      rec.event = static_cast<TraceEvent>(e);
      rec.cmd = static_cast<Command>(raw);
      rec.cycle = rng.next();
      rec.addr = rng.next() & ((u64{1} << 34) - 1);
      const auto parsed = parse_trace_line(TextSink::format(rec));
      ASSERT_TRUE(parsed.has_value())
          << TextSink::format(rec);
      expect_same(rec, *parsed);
    }
  }
}

TEST(TraceReader, RejectsGarbage) {
  EXPECT_FALSE(parse_trace_line("").has_value());
  EXPECT_FALSE(parse_trace_line("random log output").has_value());
  EXPECT_FALSE(parse_trace_line("HMCSIM_TRACE : not-a-number : s1 : SEND : "
                                "0:0:0:0:0 : 0x0 : 0 : RD16")
                   .has_value());
  EXPECT_FALSE(parse_trace_line("HMCSIM_TRACE : 5 : s1 : BOGUS_EVENT : "
                                "0:0:0:0:0 : 0x0 : 0 : RD16")
                   .has_value());
  EXPECT_FALSE(parse_trace_line("HMCSIM_TRACE : 5 : s1 : SEND : 0:0:0:0 : "
                                "0x0 : 0 : RD16")
                   .has_value());  // 4 coords
  EXPECT_FALSE(parse_trace_line("HMCSIM_TRACE : 5 : s1 : SEND : 0:0:0:0:0 : "
                                "1234 : 0 : RD16")
                   .has_value());  // address without 0x
  EXPECT_FALSE(parse_trace_line("HMCSIM_TRACE : 5 : s1 : SEND : 0:0:0:0:0 : "
                                "0x0 : 0 : NOT_A_CMD")
                   .has_value());
  EXPECT_FALSE(parse_trace_line("HMCSIM_TRACE : 5 : s9 : SEND : 0:0:0:0:0 : "
                                "0x0 : 0 : RD16")
                   .has_value());  // stage out of range
}

TEST(TraceReader, SymbolLookups) {
  EXPECT_EQ(trace_event_from_string("BANK_CONFLICT"),
            TraceEvent::BankConflict);
  EXPECT_EQ(trace_event_from_string("RECV"), TraceEvent::PacketRecv);
  EXPECT_FALSE(trace_event_from_string("nope").has_value());
  EXPECT_EQ(command_from_string("P_WR128"), Command::PostedWr128);
  EXPECT_EQ(command_from_string("MD_RD_RS"), Command::ModeReadResponse);
  EXPECT_FALSE(command_from_string("WR256").has_value());
}

TEST(TraceReader, ReplayIntoCountingSink) {
  std::ostringstream text;
  TextSink writer(text);
  for (int i = 0; i < 5; ++i) {
    TraceRecord rec = sample();
    rec.cycle = static_cast<Cycle>(i);
    writer.record(rec);
  }
  text << "interleaved non-trace line\n";
  TraceRecord other = sample();
  other.event = TraceEvent::ReadRequest;
  writer.record(other);

  std::istringstream in(text.str());
  CountingSink counter;
  usize malformed = 0;
  const usize replayed = replay_trace(in, counter, &malformed);
  EXPECT_EQ(replayed, 6u);
  EXPECT_EQ(malformed, 1u);
  EXPECT_EQ(counter.count(TraceEvent::BankConflict), 5u);
  EXPECT_EQ(counter.count(TraceEvent::ReadRequest), 1u);
}

TEST(TraceReader, ReplayRebuildsFigureFiveSeries) {
  // Write a synthetic trace, replay it into a VaultSeriesSink, and check
  // that the offline aggregation matches what an online sink would see.
  std::ostringstream text;
  TextSink writer(text);
  VaultSeriesSink online(4, 8);
  SplitMix64 rng(11);
  for (int i = 0; i < 500; ++i) {
    TraceRecord rec;
    rec.dev = 0;
    rec.cycle = rng.next_below(256);
    rec.vault = static_cast<u32>(rng.next_below(4));
    rec.event = (i % 3 == 0)   ? TraceEvent::BankConflict
                : (i % 3 == 1) ? TraceEvent::ReadRequest
                               : TraceEvent::WriteRequest;
    rec.cmd = Command::Rd64;
    writer.record(rec);
    online.record(rec);
  }

  std::istringstream in(text.str());
  VaultSeriesSink offline(4, 8);
  usize malformed = 0;
  (void)replay_trace(in, offline, &malformed);
  EXPECT_EQ(malformed, 0u);
  EXPECT_EQ(offline.total_conflicts(), online.total_conflicts());
  EXPECT_EQ(offline.total_reads(), online.total_reads());
  EXPECT_EQ(offline.total_writes(), online.total_writes());
  ASSERT_EQ(offline.buckets().size(), online.buckets().size());
  for (usize b = 0; b < offline.buckets().size(); ++b) {
    EXPECT_EQ(offline.buckets()[b].conflicts, online.buckets()[b].conflicts);
    EXPECT_EQ(offline.buckets()[b].reads, online.buckets()[b].reads);
  }
}

}  // namespace
}  // namespace hmcsim
