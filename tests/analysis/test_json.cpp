#include "analysis/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

/// Tiny structural validator: brace/bracket balance, quote pairing, and no
/// trailing commas.  Not a full parser, but catches every class of bug a
/// hand-rolled emitter can produce.
bool looks_like_valid_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  char prev_significant = 0;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[':
        ++depth;
        prev_significant = c;
        break;
      case '}': case ']':
        if (depth == 0) return false;
        if (prev_significant == ',') return false;  // trailing comma
        --depth;
        prev_significant = c;
        break;
      case ',':
        if (prev_significant == ',' || prev_significant == '{' ||
            prev_significant == '[') {
          return false;
        }
        prev_significant = c;
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) {
          prev_significant = c;
        }
    }
  }
  return depth == 0 && !in_string;
}

TEST(JsonWriter, PrimitivesAndNesting) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.kv("int", u64{42});
  json.kv("float", 3.5);
  json.kv("flag", true);
  json.kv("text", "hello");
  json.key("list").begin_array();
  json.value(u64{1});
  json.value(u64{2});
  json.end_array();
  json.key("nested").begin_object();
  json.kv("inner", u64{7});
  json.end_object();
  json.end_object();
  EXPECT_TRUE(json.balanced());
  const std::string text = os.str();
  EXPECT_EQ(text,
            R"({"int":42,"float":3.5,"flag":true,"text":"hello",)"
            R"("list":[1,2],"nested":{"inner":7}})");
  EXPECT_TRUE(looks_like_valid_json(text));
}

TEST(JsonWriter, EscapesStrings) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.kv("quote", "a\"b");
  json.kv("backslash", "c\\d");
  json.kv("newline", "e\nf");
  json.end_object();
  EXPECT_EQ(os.str(),
            R"({"quote":"a\"b","backslash":"c\\d","newline":"e\nf"})");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter json(os);
  json.begin_object();
  json.kv("nan", std::nan(""));
  json.kv("inf", std::numeric_limits<double>::infinity());
  json.end_object();
  EXPECT_EQ(os.str(), R"({"nan":null,"inf":null})");
}

TEST(StatsJson, FullReportIsStructurallyValid) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Wr16, 0x40, 1, 0, {1, 2}),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());

  std::ostringstream os;
  write_stats_json(os, sim);
  const std::string text = os.str();
  EXPECT_TRUE(looks_like_valid_json(text)) << text;
  for (const char* expected :
       {"\"simulator\":\"hmcsim++\"", "\"config\":", "\"totals\":",
        "\"devices\":[", "\"links\":[", "\"power\":", "\"writes\":1",
        "\"num_vaults\":16", "\"map_mode\":\"low_interleave\""}) {
    EXPECT_NE(text.find(expected), std::string::npos) << expected;
  }
}

TEST(StatsJson, UninitializedSimulatorProducesMinimalDocument) {
  Simulator sim;
  std::ostringstream os;
  write_stats_json(os, sim);
  EXPECT_TRUE(looks_like_valid_json(os.str()));
  EXPECT_NE(os.str().find("\"cycle\":0"), std::string::npos);
  EXPECT_EQ(os.str().find("\"config\""), std::string::npos);
}

TEST(StatsJson, MultiDeviceArraysSized) {
  SimConfig sc;
  sc.num_devices = 3;
  sc.device = test::small_device();
  std::string err;
  Topology topo = make_chain(3, 4, 2, 1, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);
  for (int i = 0; i < 5; ++i) sim.clock();

  std::ostringstream os;
  write_stats_json(os, sim);
  const std::string text = os.str();
  EXPECT_TRUE(looks_like_valid_json(text));
  // 3 devices x 4 links = 12 link records.
  usize count = 0;
  for (usize pos = text.find("\"rqst_util\""); pos != std::string::npos;
       pos = text.find("\"rqst_util\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 12u);
}

}  // namespace
}  // namespace hmcsim
