#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/driver.hpp"

namespace hmcsim {
namespace {

VaultSeriesSink make_filled_series() {
  VaultSeriesSink sink(2, /*bucket_width=*/10);
  for (Cycle c = 0; c < 30; ++c) {
    TraceRecord rec;
    rec.cycle = c;
    rec.dev = 0;
    rec.vault = static_cast<u32>(c % 2);
    rec.event = TraceEvent::ReadRequest;
    sink.record(rec);
    if (c % 3 == 0) {
      rec.event = TraceEvent::WriteRequest;
      sink.record(rec);
    }
    if (c % 5 == 0) {
      rec.event = TraceEvent::BankConflict;
      sink.record(rec);
      rec.event = TraceEvent::XbarRqstStall;
      sink.record(rec);
      rec.event = TraceEvent::LatencyPenalty;
      sink.record(rec);
    }
  }
  return sink;
}

TEST(Fig5Summary, TotalsAndMeans) {
  const VaultSeriesSink sink = make_filled_series();
  const Fig5Summary s = summarize_series(sink);
  EXPECT_EQ(s.cycles, 30u);
  EXPECT_EQ(s.total_reads, 30u);
  EXPECT_EQ(s.total_writes, 10u);
  EXPECT_EQ(s.total_conflicts, 6u);
  EXPECT_EQ(s.total_xbar_stalls, 6u);
  EXPECT_EQ(s.total_latency_penalties, 6u);
  EXPECT_DOUBLE_EQ(s.mean_reads_per_cycle, 1.0);
  EXPECT_NEAR(s.mean_conflicts_per_cycle, 0.2, 1e-9);
  EXPECT_GT(s.peak_conflicts_per_cycle, 0.0);
}

TEST(Fig5Summary, EmptySeries) {
  VaultSeriesSink sink(2, 1);
  const Fig5Summary s = summarize_series(sink);
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.total_reads, 0u);
}

TEST(Fig5Csv, HeaderAndRowShape) {
  const VaultSeriesSink sink = make_filled_series();
  std::ostringstream os;
  write_fig5_csv(os, sink);
  const std::string csv = os.str();

  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("cycle,xbar_stalls,latency_penalties,conflicts,"
                         "reads,writes",
                         0),
            0u);
  EXPECT_NE(header.find("conflicts_v0"), std::string::npos);
  EXPECT_NE(header.find("writes_v1"), std::string::npos);

  // 3 buckets -> 3 data rows, each with the same column count as the header.
  const auto columns = [](const std::string& line) {
    return 1 + std::count(line.begin(), line.end(), ',');
  };
  const auto expected_cols = columns(header);
  int rows = 0;
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(columns(line), expected_cols);
    ++rows;
  }
  EXPECT_EQ(rows, 3);
}

TEST(Fig5Csv, FirstRowAggregatesMatchTotalsOfBucket) {
  const VaultSeriesSink sink = make_filled_series();
  std::ostringstream os;
  write_fig5_csv(os, sink);
  std::istringstream lines(os.str());
  std::string header, row0;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row0));
  // Bucket 0 covers cycles 0..9: 10 reads, 4 writes (0,3,6,9), 2 of each
  // conflict/stall/penalty (cycles 0,5).
  EXPECT_EQ(row0.rfind("0,2,2,2,10,4", 0), 0u) << row0;
}

TEST(Table1Format, SpeedupsRelativeToFirstRow) {
  std::vector<Table1Row> rows;
  rows.push_back({"4-Link; 8-Bank; 2GB", 1000, 1 << 20, {}});
  rows.push_back({"4-Link; 16-Bank; 4GB", 500, 1 << 20, {}});
  const std::string text = format_table1(rows);
  EXPECT_NE(text.find("Simulation Runtime in Clock Cycles"),
            std::string::npos);
  EXPECT_NE(text.find("4-Link; 8-Bank; 2GB"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
  EXPECT_NE(text.find("1.000x"), std::string::npos);
  EXPECT_NE(text.find("2.000x"), std::string::npos);
}

TEST(Table1Format, EmptyAndZeroCycleRowsAreSafe) {
  EXPECT_FALSE(format_table1({}).empty());
  std::vector<Table1Row> rows;
  rows.push_back({"broken", 0, 0, {}});
  const std::string text = format_table1(rows);
  EXPECT_NE(text.find("0.000x"), std::string::npos);
}

TEST(VaultFairness, UniformRandomIsFairLinearStreamIsNot) {
  const auto fairness = [](AddrMapMode mode, bool sequential) {
    DeviceConfig dc;
    dc.xbar_depth = 16;
    dc.vault_depth = 8;
    dc.bank_busy_cycles = 2;
    dc.map_mode = mode;
    dc.model_data = false;
    Simulator sim;
    EXPECT_EQ(sim.init_simple(dc), Status::Ok);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    DriverConfig dcfg;
    dcfg.total_requests = 3000;
    dcfg.max_cycles = 1000000;
    DriverResult r;
    if (sequential) {
      StreamGenerator gen(gc);
      r = HostDriver(sim, gen, dcfg).run();
    } else {
      RandomAccessGenerator gen(gc);
      r = HostDriver(sim, gen, dcfg).run();
    }
    EXPECT_EQ(r.completed, 3000u);
    return vault_load_fairness(sim);
  };
  // Uniform random over the low-interleave map: near-perfect fairness.
  EXPECT_GT(fairness(AddrMapMode::LowInterleave, false), 0.95);
  // A sequential stream under the LINEAR map grinds through one vault at a
  // time: pathological imbalance.
  EXPECT_LT(fairness(AddrMapMode::Linear, true), 0.2);
}

TEST(VaultFairness, EdgeCases) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(vault_load_fairness(sim), 0.0);  // uninitialized
  DeviceConfig dc;
  ASSERT_EQ(sim.init_simple(dc), Status::Ok);
  EXPECT_DOUBLE_EQ(vault_load_fairness(sim), 0.0);  // no traffic yet
}

TEST(Bandwidth, Formula) {
  // 64 bytes per cycle at 1.25 GHz = 80 GB/s.
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(6400, 100, 1.25), 80.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(100, 0), 0.0);
}

TEST(LinkRate, PhysicalRatesMapToFlitBudgets) {
  // 16 lanes x 10 Gbps at a 1.25 GHz device clock = exactly 1 FLIT/cycle.
  EXPECT_DOUBLE_EQ(link_flits_per_cycle(16, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(link_flits_per_cycle(16, 12.5), 1.25);
  EXPECT_DOUBLE_EQ(link_flits_per_cycle(16, 15.0), 1.5);
  // 8-lane half-width links halve the budget.
  EXPECT_DOUBLE_EQ(link_flits_per_cycle(8, 10.0), 0.5);
}

TEST(LinkUtilizationReport, TracksForwardedFlits) {
  DeviceConfig dc;
  dc.xbar_depth = 8;
  dc.vault_depth = 4;
  dc.xbar_flits_per_cycle = 4;
  dc.bank_busy_cycles = 2;
  Simulator sim;
  ASSERT_EQ(sim.init_simple(dc), Status::Ok);

  // Uninitialized/zero-cycle runs return an empty report.
  EXPECT_TRUE(link_utilization(Simulator{}).empty());
  EXPECT_TRUE(link_utilization(sim).empty());

  // One RD16 (1 FLIT each way) through link 0.
  PacketBuffer pkt;
  ASSERT_EQ(build_memrequest(0, 0x40, 1, Command::Rd16, 0, {}, pkt),
            Status::Ok);
  ASSERT_EQ(sim.send(0, 0, pkt), Status::Ok);
  for (int i = 0; i < 10; ++i) sim.clock();

  const auto utils = link_utilization(sim);
  ASSERT_EQ(utils.size(), 4u);
  EXPECT_EQ(utils[0].rqst_flits, 1u);
  EXPECT_EQ(utils[0].rsp_flits, 2u);  // RD16 response = 2 FLITs
  EXPECT_GT(utils[0].rqst_util, 0.0);
  EXPECT_LE(utils[0].rqst_util, 1.0);
  EXPECT_EQ(utils[1].rqst_flits, 0u);  // other links idle
}

TEST(LinkUtilizationReport, NeverExceedsTheBudget) {
  // Saturate a 1-FLIT/cycle link and verify utilization caps at 100%.
  DeviceConfig dc;
  dc.xbar_flits_per_cycle = 1;
  dc.model_data = false;
  Simulator sim;
  ASSERT_EQ(sim.init_simple(dc), Status::Ok);
  PacketBuffer pkt;
  u64 sent = 0;
  for (int cycle = 0; cycle < 400; ++cycle) {
    for (Tag t = 0; t < 8; ++t) {
      ASSERT_EQ(build_memrequest(0, 64 * ((sent * 8 + t) % 512),
                                 static_cast<Tag>((sent + t) % 512),
                                 Command::Wr64, 0,
                                 std::vector<u64>(8, 1), pkt),
                Status::Ok);
      if (ok(sim.send(0, 0, pkt))) ++sent;
    }
    while (ok(sim.recv(0, 0, pkt))) {
    }
    sim.clock();
  }
  const auto utils = link_utilization(sim);
  // Request direction saturated, and the accumulator model keeps the
  // forwarded total within one packet of the theoretical ceiling.
  EXPECT_GT(utils[0].rqst_util, 0.9);
  EXPECT_LE(utils[0].rqst_flits, sim.now() + 9);
}

TEST(Bandwidth, StaysUnderSpecCeilingForRealisticRuns) {
  // A sane simulated run must not exceed the spec's 320 GB/s per-device
  // ceiling by an order of magnitude; guard the unit conversion.
  const double gbs =
      effective_bandwidth_gbs(u64{1} << 30, 1 << 23, 1.25);  // 128 B/cycle
  EXPECT_LT(gbs, 320.0 * 2);
}

}  // namespace
}  // namespace hmcsim
