#include "analysis/power.hpp"

#include <gtest/gtest.h>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

TEST(Power, UninitializedSimulatorIsZero) {
  Simulator sim;
  const PowerReport p = estimate_power(sim);
  EXPECT_DOUBLE_EQ(p.total_nj, 0.0);
  EXPECT_DOUBLE_EQ(p.average_w, 0.0);
}

TEST(Power, IdleRunIsStaticOnly) {
  Simulator sim = test::make_simple_sim();
  for (int i = 0; i < 100; ++i) sim.clock();
  const PowerReport p = estimate_power(sim);
  EXPECT_DOUBLE_EQ(p.dram_nj, 0.0);
  EXPECT_DOUBLE_EQ(p.logic_nj, 0.0);
  EXPECT_DOUBLE_EQ(p.link_nj, 0.0);
  EXPECT_GT(p.static_nj, 0.0);
  EXPECT_DOUBLE_EQ(p.total_nj, p.static_nj);
  // Idle power equals the configured static power.
  EXPECT_NEAR(p.average_w, PowerConfig{}.static_w_per_device, 1e-9);
  EXPECT_DOUBLE_EQ(p.pj_per_byte, 0.0);  // no data moved
}

TEST(Power, SingleReadAccounting) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd64, 0x40, 1),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());

  PowerConfig cfg;
  const PowerReport p = estimate_power(sim, cfg);
  // 64 bytes of bank traffic.
  EXPECT_NEAR(p.dram_nj, 64 * cfg.dram_pj_per_byte * 1e-3, 1e-9);
  EXPECT_NEAR(p.logic_nj, 64 * cfg.logic_pj_per_byte * 1e-3, 1e-9);
  // 1 request FLIT + 5 response FLITs crossed link 0.
  EXPECT_NEAR(p.link_nj, 6 * cfg.link_pj_per_flit * 1e-3, 1e-9);
  EXPECT_GT(p.total_nj, p.static_nj);
}

TEST(Power, EnergyScalesWithWork) {
  const auto run_energy = [](u64 requests) {
    DeviceConfig dc = test::small_device();
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = requests;
    HostDriver driver(sim, gen, dcfg);
    (void)driver.run();
    const PowerReport p = estimate_power(sim);
    return p.dram_nj + p.logic_nj + p.link_nj;
  };
  const double e1 = run_energy(500);
  const double e2 = run_energy(1000);
  // Dynamic energy is workload-proportional (within RNG mix noise).
  EXPECT_NEAR(e2 / e1, 2.0, 0.1);
}

TEST(Power, CoefficientOverridesApply) {
  Simulator sim = test::make_simple_sim();
  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40, 1),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  PowerConfig doubled;
  doubled.dram_pj_per_byte *= 2;
  const PowerReport base = estimate_power(sim);
  const PowerReport more = estimate_power(sim, doubled);
  EXPECT_NEAR(more.dram_nj, base.dram_nj * 2, 1e-9);
  EXPECT_DOUBLE_EQ(more.link_nj, base.link_nj);
}

TEST(Power, NonLocalRoutingCostsEnergy) {
  // Identical work via a non-co-located link vs the local link: the
  // penalty hop shows up in routing_nj.
  const auto routing_energy = [](u32 link) {
    Simulator sim = test::make_simple_sim();
    // Vault 0 is co-located with link 0; link 3 pays the penalty.
    EXPECT_EQ(test::send_request(sim, 0, link, Command::Rd16, 0x0, 1),
              Status::Ok);
    EXPECT_TRUE(test::await_response(sim, 0, link).has_value());
    return estimate_power(sim).routing_nj;
  };
  EXPECT_DOUBLE_EQ(routing_energy(0), 0.0);
  EXPECT_GT(routing_energy(3), 0.0);
}

}  // namespace
}  // namespace hmcsim
