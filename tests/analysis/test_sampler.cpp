#include "analysis/sampler.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/json.hpp"
#include "tests/core/helpers.hpp"
#include "trace/lifecycle.hpp"

namespace hmcsim {
namespace {

TEST(MetricsSampler, AttachedSamplerFiresOnTheInterval) {
  Simulator sim = test::make_simple_sim();
  MetricsSampler sampler;
  sampler.attach(sim, 10);
  EXPECT_EQ(sampler.interval(), 10u);

  for (int i = 0; i < 35; ++i) sim.clock();
  ASSERT_EQ(sampler.samples().size(), 3u);
  EXPECT_EQ(sampler.samples()[0].cycle, 10u);
  EXPECT_EQ(sampler.samples()[1].cycle, 20u);
  EXPECT_EQ(sampler.samples()[2].cycle, 30u);

  // Detach: no further samples accumulate.
  sampler.attach(sim, 0);
  for (int i = 0; i < 20; ++i) sim.clock();
  EXPECT_EQ(sampler.samples().size(), 3u);
}

TEST(MetricsSampler, SnapshotSeesQueuedWorkAndCounters) {
  Simulator sim = test::make_simple_sim();
  // Park a few requests in the link queues without clocking.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0x40u * (i + 1),
                                 static_cast<Tag>(i + 1)),
              Status::Ok);
  }
  MetricsSampler sampler;
  sampler.sample(sim);
  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_EQ(sampler.samples()[0].link_rqst, 3u);
  EXPECT_EQ(sampler.samples()[0].vault_rqst, 0u);

  test::drain_all(sim);
  sampler.sample(sim);
  ASSERT_EQ(sampler.samples().size(), 2u);
  EXPECT_EQ(sampler.samples()[1].link_rqst, 0u);

  sampler.clear();
  EXPECT_TRUE(sampler.samples().empty());
}

TEST(MetricsSampler, CsvHasHeaderAndOneRowPerSample) {
  Simulator sim = test::make_simple_sim();
  MetricsSampler sampler;
  sampler.attach(sim, 5);
  for (int i = 0; i < 12; ++i) sim.clock();

  std::ostringstream os;
  sampler.write_csv(os);
  const std::string text = os.str();
  EXPECT_EQ(text.find("cycle,link_rqst,link_rsp,vault_rqst,vault_rsp,"
                      "mode_rsp,bank_conflicts,xbar_rqst_stalls,"
                      "xbar_rsp_stalls,vault_rsp_stalls,send_stalls"),
            0u);
  usize lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + sampler.samples().size());
}

TEST(StatsJsonExtras, LifecycleAndSamplesSectionsAppear) {
  Simulator sim = test::make_simple_sim();
  auto lifecycle = std::make_shared<LifecycleSink>();
  sim.add_lifecycle_observer(lifecycle);
  MetricsSampler sampler;
  sampler.attach(sim, 8);

  ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd64, 0x40, 1),
            Status::Ok);
  ASSERT_TRUE(test::await_response(sim, 0, 0).has_value());
  ASSERT_EQ(lifecycle->completed(), 1u);
  // The response may drain before the first sampling interval elapses;
  // idle-clock past it so the samples section has content.
  for (int i = 0; i < 10; ++i) sim.clock();
  ASSERT_FALSE(sampler.samples().empty());

  std::ostringstream os;
  ReportExtras extras;
  extras.lifecycle = lifecycle.get();
  extras.sampler = &sampler;
  write_stats_json(os, sim, {}, extras);
  const std::string text = os.str();
  for (const char* expected :
       {"\"latency_breakdown\":", "\"completed\":1", "\"classes\":",
        "\"read\":", "\"total\":", "\"merged\":", "\"samples\":",
        "\"interval\":8", "\"link_rqst\":"}) {
    EXPECT_NE(text.find(expected), std::string::npos) << expected;
  }
  // Without extras the sections stay out of the document.
  std::ostringstream plain;
  write_stats_json(plain, sim);
  EXPECT_EQ(plain.str().find("\"latency_breakdown\""), std::string::npos);
  EXPECT_EQ(plain.str().find("\"samples\""), std::string::npos);
}

}  // namespace
}  // namespace hmcsim
