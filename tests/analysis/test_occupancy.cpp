#include "analysis/occupancy.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::small_device;

TEST(OccupancyProbe, IdleSimulatorIsEmpty) {
  Simulator sim = test::make_simple_sim();
  OccupancyProbe probe;
  for (int i = 0; i < 5; ++i) {
    probe.sample(sim);
    sim.clock();
  }
  ASSERT_EQ(probe.samples().size(), 5u);
  for (const auto& s : probe.samples()) {
    EXPECT_DOUBLE_EQ(s.xbar_rqst_fill, 0.0);
    EXPECT_DOUBLE_EQ(s.vault_rqst_fill, 0.0);
  }
  EXPECT_DOUBLE_EQ(probe.mean().vault_rqst_fill, 0.0);
}

TEST(OccupancyProbe, UninitializedSimulatorIsSkipped) {
  Simulator sim;
  OccupancyProbe probe;
  probe.sample(sim);
  EXPECT_TRUE(probe.samples().empty());
}

TEST(OccupancyProbe, SaturationShowsFullXbarQueues) {
  DeviceConfig dc = small_device();
  dc.xbar_depth = 4;
  dc.bank_busy_cycles = 100;  // clog everything
  Simulator sim = test::make_simple_sim(dc);
  // Fill link 0's queue completely.
  for (Tag t = 0; t < 4; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, 0, t), Status::Ok);
  }
  OccupancyProbe probe;
  probe.sample(sim);
  ASSERT_EQ(probe.samples().size(), 1u);
  // One of four link queues is 100% full -> mean 0.25.
  EXPECT_NEAR(probe.samples()[0].xbar_rqst_fill, 0.25, 1e-9);
}

TEST(OccupancyProbe, IntervalSkipsSamples) {
  Simulator sim = test::make_simple_sim();
  OccupancyProbe probe(/*interval=*/4);
  for (int i = 0; i < 10; ++i) {
    probe.sample(sim);
    sim.clock();
  }
  EXPECT_EQ(probe.samples().size(), 3u);  // calls 0, 4, 8
  EXPECT_EQ(probe.samples()[1].cycle, 4u);
}

TEST(OccupancyProbe, MeanAndPeak) {
  DeviceConfig dc = small_device();
  dc.bank_busy_cycles = 4;
  Simulator sim = test::make_simple_sim(dc);
  OccupancyProbe probe;
  Tag tag = 0;
  for (int cycle = 0; cycle < 60; ++cycle) {
    for (u32 l = 0; l < 4; ++l) {
      (void)test::send_request(sim, 0, l, Command::Rd16,
                               64 * ((tag * 7) % 256), tag);
      tag = static_cast<Tag>((tag + 1) % 512);
    }
    PacketBuffer pkt;
    for (u32 l = 0; l < 4; ++l) {
      while (ok(sim.recv(0, l, pkt))) {
      }
    }
    probe.sample(sim);
    sim.clock();
  }
  const auto mean = probe.mean();
  const auto peak = probe.peak();
  EXPECT_GT(mean.vault_rqst_fill, 0.0);
  EXPECT_GE(peak.vault_rqst_fill, mean.vault_rqst_fill);
  EXPECT_LE(peak.vault_rqst_fill, 1.0);
  EXPECT_EQ(peak.cycle, probe.samples().back().cycle);
}

TEST(OccupancyProbe, CsvShape) {
  Simulator sim = test::make_simple_sim();
  OccupancyProbe probe;
  probe.sample(sim);
  sim.clock();
  probe.sample(sim);
  std::ostringstream os;
  probe.write_csv(os);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "cycle,xbar_rqst,xbar_rsp,vault_rqst,vault_rsp");
  int rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace hmcsim
