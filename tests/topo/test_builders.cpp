// Tests for the Figure 1 topology builders: simple, ring, mesh, 2-D torus.
#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace hmcsim {
namespace {

TEST(SimpleTopology, AllLinksHostConnected) {
  for (const u32 links : {4u, 8u}) {
    std::string err;
    const Topology t = make_simple(links, &err);
    ASSERT_EQ(t.num_devices(), 1u) << err;
    EXPECT_EQ(t.host_ports().size(), links);
    EXPECT_TRUE(t.finalized());
    EXPECT_TRUE(t.is_root(CubeId{0}));
  }
}

TEST(ChainTopology, LineOfDevices) {
  std::string err;
  const Topology t = make_chain(4, 4, /*host_links=*/2, /*trunk_links=*/1,
                                &err);
  ASSERT_EQ(t.num_devices(), 4u) << err;
  EXPECT_EQ(t.host_ports().size(), 2u);
  // Hop distance grows linearly down the chain.
  for (u32 d = 0; d < 4; ++d) {
    EXPECT_EQ(t.hops(CubeId{0}, CubeId{d}), d);
    EXPECT_EQ(t.host_distance(CubeId{d}), d);
  }
}

TEST(ChainTopology, SingleDeviceDegeneratesToSimple) {
  std::string err;
  const Topology t = make_chain(1, 4, 4, 1, &err);
  ASSERT_EQ(t.num_devices(), 1u) << err;
  EXPECT_EQ(t.host_ports().size(), 4u);
}

TEST(ChainTopology, RejectsOverSubscribedLinks) {
  std::string err;
  const Topology t = make_chain(3, 4, /*host_links=*/4, /*trunk_links=*/1,
                                &err);
  EXPECT_EQ(t.num_devices(), 0u);
  EXPECT_FALSE(err.empty());
}

TEST(ChainTopology, WideTrunks) {
  std::string err;
  const Topology t = make_chain(2, 8, /*host_links=*/4, /*trunk_links=*/4,
                                &err);
  ASSERT_EQ(t.num_devices(), 2u) << err;
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{1}), 1u);
}

TEST(RingTopology, CycleRouting) {
  std::string err;
  const Topology t = make_ring(5, 4, /*host_links=*/2, &err);
  ASSERT_EQ(t.num_devices(), 5u) << err;
  // Shortest path wraps around the ring: 0->3 is 2 hops (0-4-3), 0->2 is 2
  // hops (0-1-2).
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{1}), 1u);
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{2}), 2u);
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{3}), 2u);
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{4}), 1u);
}

TEST(RingTopology, RejectsTooFewDevices) {
  std::string err;
  EXPECT_EQ(make_ring(2, 4, 2, &err).num_devices(), 0u);
  EXPECT_FALSE(err.empty());
}

TEST(RingTopology, RejectsLinkBudgetOverflow) {
  std::string err;
  EXPECT_EQ(make_ring(3, 4, /*host_links=*/3, &err).num_devices(), 0u);
}

TEST(MeshTopology, GridRouting) {
  std::string err;
  const Topology t = make_mesh(2, 3, 4, /*host_links=*/2, &err);
  ASSERT_EQ(t.num_devices(), 6u) << err;
  // Manhattan distances from the host corner (device 0 at (0,0)).
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{1}), 1u);  // (0,1)
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{2}), 2u);  // (0,2)
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{3}), 1u);  // (1,0)
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{5}), 3u);  // (1,2)
  EXPECT_TRUE(t.is_root(CubeId{0}));
  EXPECT_FALSE(t.is_root(CubeId{5}));
}

TEST(MeshTopology, RejectsTooManyDevices) {
  std::string err;
  EXPECT_EQ(make_mesh(3, 3, 4, 1, &err).num_devices(), 0u);  // 9 > 7 cubes
  EXPECT_NE(err.find("CUB"), std::string::npos);
}

TEST(MeshTopology, CornerLinkBudget) {
  // Interior corner has 2 free links on a 4-link part; asking for 3 host
  // links must fail.
  std::string err;
  EXPECT_EQ(make_mesh(2, 3, 4, /*host_links=*/3, &err).num_devices(), 0u);
}

TEST(TorusTopology, WrapRouting) {
  std::string err;
  const Topology t = make_torus2d(2, 3, 8, /*host_links=*/2, &err);
  ASSERT_EQ(t.num_devices(), 6u) << err;
  // With wraparound, (0,0)->(0,2) is a single west hop.
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{2}), 1u);
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{5}), 2u);
  EXPECT_EQ(t.host_ports().size(), 2u);
}

TEST(TorusTopology, RequiresEightLinkParts) {
  std::string err;
  EXPECT_EQ(make_torus2d(2, 2, 4, 2, &err).num_devices(), 0u);
  EXPECT_FALSE(err.empty());
}

TEST(TorusTopology, RejectsUnderTwoByTwo) {
  std::string err;
  EXPECT_EQ(make_torus2d(1, 3, 8, 2, &err).num_devices(), 0u);
}

TEST(Builders, AllDevicesReachableInEveryBuiltTopology) {
  std::string err;
  const Topology topologies[] = {
      make_simple(4, &err),
      make_chain(4, 4, 2, 1, &err),
      make_ring(6, 4, 2, &err),
      make_mesh(2, 3, 4, 2, &err),
      make_torus2d(2, 3, 8, 2, &err),
  };
  for (const Topology& t : topologies) {
    ASSERT_GT(t.num_devices(), 0u);
    for (u32 a = 0; a < t.num_devices(); ++a) {
      EXPECT_TRUE(t.host_distance(CubeId{a}).has_value());
      for (u32 b = 0; b < t.num_devices(); ++b) {
        EXPECT_TRUE(t.hops(CubeId{a}, CubeId{b}).has_value())
            << a << "->" << b;
      }
    }
  }
}

TEST(Builders, TorusBeatsMeshOnDiameter) {
  // The torus wrap links shrink the network diameter versus the mesh —
  // the structural benefit Figure 1 hints at.
  std::string err;
  const Topology mesh = make_mesh(2, 3, 8, 2, &err);
  const Topology torus = make_torus2d(2, 3, 8, 2, &err);
  ASSERT_GT(mesh.num_devices(), 0u);
  ASSERT_GT(torus.num_devices(), 0u);
  u32 mesh_diameter = 0, torus_diameter = 0;
  for (u32 b = 0; b < 6; ++b) {
    mesh_diameter = std::max(mesh_diameter, *mesh.hops(CubeId{0}, CubeId{b}));
    torus_diameter =
        std::max(torus_diameter, *torus.hops(CubeId{0}, CubeId{b}));
  }
  EXPECT_LT(torus_diameter, mesh_diameter);
}

}  // namespace
}  // namespace hmcsim
