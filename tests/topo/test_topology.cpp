#include "topo/topology.hpp"

#include <gtest/gtest.h>

namespace hmcsim {
namespace {

TEST(Topology, ConnectHostWiring) {
  Topology t(2, 4);
  ASSERT_EQ(t.connect_host(CubeId{0}, LinkId{0}), Status::Ok);
  EXPECT_EQ(t.endpoint(CubeId{0}, LinkId{0}).kind, EndpointKind::Host);
  EXPECT_EQ(t.endpoint(CubeId{0}, LinkId{1}).kind, EndpointKind::Unconnected);
  EXPECT_TRUE(t.is_root(CubeId{0}));
  EXPECT_FALSE(t.is_root(CubeId{1}));
}

TEST(Topology, ConnectDeviceWiresBothSides) {
  Topology t(2, 4);
  ASSERT_EQ(t.connect(CubeId{0}, LinkId{3}, CubeId{1}, LinkId{0}), Status::Ok);
  const LinkEndpoint& a = t.endpoint(CubeId{0}, LinkId{3});
  EXPECT_EQ(a.kind, EndpointKind::Device);
  EXPECT_EQ(a.peer_dev, 1u);
  EXPECT_EQ(a.peer_link, 0u);
  const LinkEndpoint& b = t.endpoint(CubeId{1}, LinkId{0});
  EXPECT_EQ(b.kind, EndpointKind::Device);
  EXPECT_EQ(b.peer_dev, 0u);
  EXPECT_EQ(b.peer_link, 3u);
}

TEST(Topology, RejectsLoopbacks) {
  // Loopbacks breed zombie response packets (paper §V.B): hard error.
  Topology t(2, 4);
  EXPECT_EQ(t.connect(CubeId{0}, LinkId{0}, CubeId{0}, LinkId{1}),
            Status::InvalidConfig);
}

TEST(Topology, RejectsDoubleWiring) {
  Topology t(2, 4);
  ASSERT_EQ(t.connect_host(CubeId{0}, LinkId{0}), Status::Ok);
  EXPECT_EQ(t.connect_host(CubeId{0}, LinkId{0}), Status::InvalidConfig);
  EXPECT_EQ(t.connect(CubeId{0}, LinkId{0}, CubeId{1}, LinkId{0}),
            Status::InvalidConfig);
}

TEST(Topology, RejectsBadIndices) {
  Topology t(2, 4);
  EXPECT_EQ(t.connect_host(CubeId{2}, LinkId{0}), Status::InvalidArgument);
  EXPECT_EQ(t.connect_host(CubeId{0}, LinkId{4}), Status::InvalidArgument);
  EXPECT_EQ(t.connect(CubeId{0}, LinkId{0}, CubeId{5}, LinkId{0}),
            Status::InvalidArgument);
}

TEST(Topology, ValidateRequiresAHostLink) {
  // "The user must configure at least one device that connects to a host
  // link.  Otherwise, the host will have no access to main memory." (§V.B)
  Topology t(2, 4);
  (void)t.connect(CubeId{0}, LinkId{0}, CubeId{1}, LinkId{0});
  std::string diag;
  EXPECT_EQ(t.validate(&diag), Status::InvalidConfig);
  EXPECT_FALSE(diag.empty());
  (void)t.connect_host(CubeId{0}, LinkId{1});
  EXPECT_EQ(t.validate(), Status::Ok);
}

TEST(Topology, DisconnectUnwiresBothSides) {
  Topology t(2, 4);
  ASSERT_EQ(t.connect(CubeId{0}, LinkId{0}, CubeId{1}, LinkId{1}), Status::Ok);
  ASSERT_EQ(t.disconnect(CubeId{0}, LinkId{0}), Status::Ok);
  EXPECT_EQ(t.endpoint(CubeId{0}, LinkId{0}).kind, EndpointKind::Unconnected);
  EXPECT_EQ(t.endpoint(CubeId{1}, LinkId{1}).kind, EndpointKind::Unconnected);
}

TEST(Topology, HostPortsEnumeration) {
  Topology t(3, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect_host(CubeId{0}, LinkId{2});
  (void)t.connect_host(CubeId{2}, LinkId{1});
  const auto ports = t.host_ports();
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_EQ(ports[0], (Topology::HostPort{0, 0}));
  EXPECT_EQ(ports[1], (Topology::HostPort{0, 2}));
  EXPECT_EQ(ports[2], (Topology::HostPort{2, 1}));
}

TEST(Topology, ChainRouting) {
  // 0 -- 1 -- 2 in a line, host on 0.
  Topology t(3, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{3}, CubeId{1}, LinkId{0});
  (void)t.connect(CubeId{1}, LinkId{3}, CubeId{2}, LinkId{0});
  ASSERT_EQ(t.finalize(), Status::Ok);

  EXPECT_EQ(t.hops(CubeId{0}, CubeId{0}), 0u);
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{1}), 1u);
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{2}), 2u);
  EXPECT_EQ(t.next_hop(CubeId{0}, CubeId{2}), LinkId{3});
  EXPECT_EQ(t.next_hop(CubeId{1}, CubeId{2}), LinkId{3});
  EXPECT_EQ(t.next_hop(CubeId{2}, CubeId{0}), LinkId{0});
  EXPECT_EQ(t.host_distance(CubeId{0}), 0u);
  EXPECT_EQ(t.host_distance(CubeId{2}), 2u);
}

TEST(Topology, UnreachableDevicesAreSoftErrors) {
  // Deliberate misconfiguration: device 2 floats unconnected.  validate()
  // and finalize() succeed; routing queries return nullopt.
  Topology t(3, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{1}, CubeId{1}, LinkId{0});
  ASSERT_EQ(t.validate(), Status::Ok);
  ASSERT_EQ(t.finalize(), Status::Ok);
  EXPECT_FALSE(t.next_hop(CubeId{0}, CubeId{2}).has_value());
  EXPECT_FALSE(t.hops(CubeId{0}, CubeId{2}).has_value());
  EXPECT_FALSE(t.host_distance(CubeId{2}).has_value());
}

TEST(Topology, RoutingQueriesRequireFinalize) {
  Topology t(2, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{1}, CubeId{1}, LinkId{0});
  EXPECT_FALSE(t.finalized());
  EXPECT_FALSE(t.next_hop(CubeId{0}, CubeId{1}).has_value());
  ASSERT_EQ(t.finalize(), Status::Ok);
  EXPECT_TRUE(t.finalized());
  EXPECT_TRUE(t.next_hop(CubeId{0}, CubeId{1}).has_value());
  // Rewiring invalidates the route tables.
  (void)t.disconnect(CubeId{0}, LinkId{1});
  EXPECT_FALSE(t.finalized());
}

TEST(Topology, ShortestPathIsPicked) {
  // Square: 0-1, 1-3, 0-2, 2-3 plus direct 0-3.  Route 0->3 must be 1 hop.
  Topology t(4, 8);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{1}, CubeId{1}, LinkId{1});
  (void)t.connect(CubeId{1}, LinkId{2}, CubeId{3}, LinkId{2});
  (void)t.connect(CubeId{0}, LinkId{3}, CubeId{2}, LinkId{3});
  (void)t.connect(CubeId{2}, LinkId{4}, CubeId{3}, LinkId{4});
  (void)t.connect(CubeId{0}, LinkId{5}, CubeId{3}, LinkId{5});
  ASSERT_EQ(t.finalize(), Status::Ok);
  EXPECT_EQ(t.hops(CubeId{0}, CubeId{3}), 1u);
  EXPECT_EQ(t.next_hop(CubeId{0}, CubeId{3}), LinkId{5});
}

TEST(Topology, NextHopsEnumeratesParallelTrunks) {
  // Two parallel links between cubes 0 and 1: both are shortest next hops.
  Topology t(2, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{2}, CubeId{1}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{3}, CubeId{1}, LinkId{1});
  ASSERT_EQ(t.finalize(), Status::Ok);
  const auto hops = t.next_hops(CubeId{0}, CubeId{1});
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], LinkId{2});
  EXPECT_EQ(hops[1], LinkId{3});
  // Reverse direction likewise.
  EXPECT_EQ(t.next_hops(CubeId{1}, CubeId{0}).size(), 2u);
}

TEST(Topology, NextHopsExcludesLongerPaths) {
  // 0-1 direct plus 0-2-1 detour: only the direct link is a next hop.
  Topology t(3, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{1}, CubeId{1}, LinkId{1});
  (void)t.connect(CubeId{0}, LinkId{2}, CubeId{2}, LinkId{2});
  (void)t.connect(CubeId{2}, LinkId{3}, CubeId{1}, LinkId{3});
  ASSERT_EQ(t.finalize(), Status::Ok);
  const auto hops = t.next_hops(CubeId{0}, CubeId{1});
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_EQ(hops[0], LinkId{1});
}

TEST(Topology, NextHopsEdgeCases) {
  Topology t(2, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{1}, CubeId{1}, LinkId{1});
  // Unfinalized: empty.
  EXPECT_TRUE(t.next_hops(CubeId{0}, CubeId{1}).empty());
  ASSERT_EQ(t.finalize(), Status::Ok);
  // Self route: empty (local delivery).
  EXPECT_TRUE(t.next_hops(CubeId{0}, CubeId{0}).empty());
  // Out-of-range cube: empty.
  EXPECT_TRUE(t.next_hops(CubeId{0}, CubeId{7}).empty());
}

TEST(Topology, MultiRootHostDistance) {
  Topology t(3, 4);
  (void)t.connect_host(CubeId{0}, LinkId{0});
  (void)t.connect_host(CubeId{2}, LinkId{0});
  (void)t.connect(CubeId{0}, LinkId{1}, CubeId{1}, LinkId{1});
  (void)t.connect(CubeId{1}, LinkId{2}, CubeId{2}, LinkId{2});
  ASSERT_EQ(t.finalize(), Status::Ok);
  EXPECT_EQ(t.host_distance(CubeId{0}), 0u);
  EXPECT_EQ(t.host_distance(CubeId{1}), 1u);
  EXPECT_EQ(t.host_distance(CubeId{2}), 0u);
}

}  // namespace
}  // namespace hmcsim
