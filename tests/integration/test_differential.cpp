// Differential proof that the parallel clock engine is equivalent to the
// serial one, and that the idle-cycle fast-forward engine is equivalent to
// the staged path.
//
// The clock engine (core/simulator.cpp) promises bit-identical simulation
// for every sim_threads value — static index-range sharding, per-shard
// mutable state, and fixed-shard-order merges make the parallel schedule a
// pure reordering of independent work — and for either fast_forward value:
// the fast path only arms once every per-cycle idle mutation has reached
// its fixed point, and disarms before any cycle with a bounded event
// (scrub, refresh, hook), so skipping is unobservable.  This harness
// *proves* both promises over a matrix of seeded workloads: each scenario
// runs under 1 thread (reference), 2 threads, and a saturated worker
// count, with the fast-forward axis injecting idle windows between request
// bursts so the skip engine genuinely engages, and every observable output
// must match exactly —
//
//   * final per-device DeviceStats (field-wise),
//   * the complete checkpoint byte stream (queues, banks, RNGs, memory),
//   * the packet-lifecycle latency histograms (count/sum/min/max/buckets
//     per class and segment),
//   * driver-observed completions, errors, and finish cycle.
//
// On a checkpoint mismatch the harness re-runs the two configurations in
// lockstep, checkpointing every cycle, and reports the first cycle at
// which the machines diverge plus the first differing byte offset — the
// exact foothold needed to debug a determinism regression.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "tests/core/helpers.hpp"
#include "topo/topology.hpp"
#include "trace/lifecycle.hpp"
#include "workload/driver.hpp"
#include "workload/trace_file.hpp"

namespace hmcsim {
namespace {

enum class Kind : u8 { Random, Stream, TraceFile };

/// Link-layer reliability storm flavors (link_protocol on, see
/// docs/LINK_LAYER.md).  Each flavor keeps the spec retry machine — retry
/// buffers, token credits, IRTRY error-abort — continuously busy in a
/// different way, and all of it must stay bit-identical across execution
/// strategies.
enum class LinkStorm : u8 {
  None,
  Uniform,     ///< independent per-arrival CRC/SEQ corruption
  Burst,       ///< errors cluster: one roll opens a multi-packet burst
  Retraining,  ///< periodic stuck-link windows backpressure every link
};

struct Scenario {
  const char* name;
  Kind kind;
  u32 links;    ///< 4 or 8
  u32 devices;  ///< 1 = single cube, >1 = chain (exercises peer forwards)
  bool ras;     ///< DRAM faults + scrubber + vault degradation + link errors
  u64 requests;
  LinkStorm storm{LinkStorm::None};
  /// Vault timing backend (simulation-visible; must match between any two
  /// compared runs).  The base scenarios all use the default hmc_dram;
  /// NonDefaultBackends* re-runs them under the other backends.
  TimingBackend backend{TimingBackend::HmcDram};
};

// Keep runtimes modest: each scenario runs 3x (plus 2x more on failure).
constexpr Scenario kScenarios[] = {
    {"random_4link", Kind::Random, 4, 1, false, 3000},
    {"random_8link_ras", Kind::Random, 8, 1, true, 3000},
    {"stream_4link_ras", Kind::Stream, 4, 1, true, 2500},
    {"trace_8link", Kind::TraceFile, 8, 1, false, 2500},
    {"random_chain3_ras", Kind::Random, 8, 3, true, 1500},
    {"linkstorm_uniform_4link", Kind::Random, 4, 1, false, 2000,
     LinkStorm::Uniform},
    {"linkstorm_burst_8link", Kind::Random, 8, 1, false, 2000,
     LinkStorm::Burst},
    {"linkstorm_retrain_chain3", Kind::Random, 8, 3, true, 1200,
     LinkStorm::Retraining},
};

DeviceConfig scenario_device(const Scenario& s) {
  DeviceConfig dc = test::small_device();
  dc.num_links = s.links;
  if (s.ras) {
    // Rates are orders of magnitude above realistic so a few-thousand
    // request run reliably exercises every RAS path: ECC corrections,
    // uncorrectable responses, vault failure + drain, link retries.
    dc.dram_sbe_rate_ppm = 20000;
    dc.dram_dbe_rate_ppm = 4000;
    dc.scrub_interval_cycles = 128;
    dc.vault_fail_threshold = 2;
    dc.link_error_rate_ppm = 2000;
    dc.link_retry_limit = 3;
  }
  if (s.storm != LinkStorm::None) {
    dc.link_protocol = true;
    dc.link_retry_limit = 8;
    dc.link_retry_latency = 4;
    switch (s.storm) {
      case LinkStorm::Uniform:
        dc.link_error_rate_ppm = 30000;
        break;
      case LinkStorm::Burst:
        dc.link_error_rate_ppm = 20000;
        dc.link_error_burst_len = 4;
        break;
      case LinkStorm::Retraining:
        dc.link_error_rate_ppm = 10000;
        dc.link_stuck_interval_cycles = 512;
        dc.link_stuck_window_cycles = 32;
        break;
      case LinkStorm::None:
        break;
    }
  }
  switch (s.backend) {
    case TimingBackend::HmcDram:
      break;
    case TimingBackend::GenericDdr:
      // Parameters scaled to the small-device busy window, chosen so the
      // row-cycle floor (tRAS) and precharge paths all fire.
      dc.timing_backend = TimingBackend::GenericDdr;
      dc.ddr_tcl = 3;
      dc.ddr_trcd = 2;
      dc.ddr_trp = 2;
      dc.ddr_tras = 6;
      break;
    case TimingBackend::PcmLike:
      // Asymmetric enough that write queues back up and the vault-wide
      // write gap gates issues (pcm_write_throttle_stalls > 0).
      dc.timing_backend = TimingBackend::PcmLike;
      dc.pcm_read_cycles = 4;
      dc.pcm_write_cycles = 12;
      dc.pcm_write_gap_cycles = 6;
      break;
  }
  return dc;
}

std::unique_ptr<Generator> make_generator(const Scenario& s, u64 capacity) {
  GeneratorConfig gc;
  gc.capacity_bytes = capacity;
  gc.seed = 1234;
  switch (s.kind) {
    case Kind::Random:
      return std::make_unique<RandomAccessGenerator>(gc);
    case Kind::Stream:
      return std::make_unique<StreamGenerator>(gc);
    case Kind::TraceFile: {
      SplitMix64 rng(0xd1ffe7e57u);
      const u64 blocks = capacity / 128;
      std::vector<RequestDesc> reqs;
      reqs.reserve(256);
      for (int i = 0; i < 256; ++i) {
        RequestDesc d;
        const PhysAddr addr = 128 * rng.next_below(blocks);
        const u64 pick = rng.next_below(8);
        if (pick < 4) {
          static constexpr Command kReads[] = {Command::Rd16, Command::Rd32,
                                               Command::Rd64, Command::Rd128};
          d.cmd = kReads[pick % 4];
        } else if (pick < 7) {
          static constexpr Command kWrites[] = {Command::Wr16, Command::Wr64,
                                                Command::Wr128};
          d.cmd = kWrites[pick % 3];
        } else {
          d.cmd = Command::TwoAdd8;
        }
        d.addr = addr;
        reqs.push_back(d);
      }
      return std::make_unique<TraceFileGenerator>(std::move(reqs));
    }
  }
  return nullptr;
}

/// Everything one run can observe, captured for exact comparison.
struct Outcome {
  Cycle cycles{0};
  u64 sent{0};
  u64 completed{0};
  u64 errors{0};
  bool watchdog{false};
  u64 cycles_skipped{0};
  std::vector<DeviceStats> stats;
  std::string checkpoint;
  u64 life_completed{0};
  u64 life_conflicted{0};
  LatencyStats life[kOpClassCount][kLifecycleSegmentCount];
};

/// One run's execution strategy (never simulation-visible).
struct RunCfg {
  u32 threads{1};
  bool fast_forward{false};
  /// Interleave idle windows between request bursts and append an idle
  /// tail, so fast-forward runs genuinely enter and leave the skip path
  /// mid-traffic.  Pure execution pacing: the clock advances identically
  /// whether or not the skip engine is on.
  bool idle_windows{false};
  /// Turn the whole observability layer on (profiler + telemetry + flight
  /// recorder).  All three are pure observation, so every simulation
  /// observable must stay bit-identical to an observability-off run.
  bool observability{false};
};

Status build_sim(const Scenario& s, const RunCfg& cfg, Simulator& sim,
                 std::string* diag) {
  DeviceConfig dc = scenario_device(s);
  dc.sim_threads = cfg.threads;
  dc.fast_forward = cfg.fast_forward;
  if (cfg.observability) {
    dc.self_profile = true;
    // An odd interval stresses the fast-forward stop-bound arithmetic.
    dc.telemetry_interval_cycles = 7;
    dc.flight_recorder_depth = 64;
  }
  if (s.devices == 1) return sim.init_simple(dc, diag);
  SimConfig sc;
  sc.num_devices = s.devices;
  sc.device = dc;
  Topology topo =
      make_chain(s.devices, s.links, /*host_links=*/2, /*trunk_links=*/2, diag);
  if (topo.num_devices() == 0) return Status::InvalidConfig;
  return sim.init(sc, std::move(topo), diag);
}

constexpr u64 kIdleWindowEverySteps = 192;
constexpr u32 kIdleWindowCycles = 300;
constexpr u32 kIdleTailCycles = 4000;

Outcome run_scenario(const Scenario& s, const RunCfg& cfg) {
  Outcome out;
  Simulator sim;
  std::string diag;
  EXPECT_EQ(build_sim(s, cfg, sim, &diag), Status::Ok) << diag;
  auto sink = std::make_shared<LifecycleSink>();
  sim.add_lifecycle_observer(sink);

  auto gen = make_generator(s, sim.config().device.derived_capacity());
  DriverConfig dcfg;
  dcfg.total_requests = s.requests;
  dcfg.max_cycles = 400000;
  if (s.devices > 1) dcfg.targets = TargetPolicy::RoundRobinCubes;
  HostDriver driver(sim, *gen, dcfg);
  DriverResult r;
  if (cfg.idle_windows) {
    // Bursty pacing: periodically stop injecting/draining and let the
    // device run dry, then resume.  Extra clocks shift absolute cycle
    // numbers, but identically so for every execution strategy.
    u64 steps = 0;
    bool live = true;
    while (live) {
      live = driver.step(r);
      if (++steps % kIdleWindowEverySteps == 0) {
        for (u32 i = 0; i < kIdleWindowCycles; ++i) sim.clock();
      }
    }
    for (u32 i = 0; i < kIdleTailCycles; ++i) sim.clock();
  } else {
    r = driver.run();
  }

  if (cfg.observability) {
    // Non-vacuousness: the observability layer must actually be observing,
    // or the equivalence below proves nothing.
    sim.flush_observability();
    EXPECT_NE(sim.profiler(), nullptr);
    EXPECT_GT(sim.profiler()->staged_cycles(), 0u);
    EXPECT_GT(sim.telemetry()->sample_passes(), 0u);
  }

  out.cycles = r.cycles;
  out.cycles_skipped = sim.cycles_skipped();
  out.sent = r.sent;
  out.completed = r.completed;
  out.errors = r.errors;
  out.watchdog = r.watchdog_fired;
  for (u32 d = 0; d < sim.num_devices(); ++d) out.stats.push_back(sim.stats(d));
  std::ostringstream ckpt;
  EXPECT_EQ(sim.save_checkpoint(ckpt), Status::Ok);
  out.checkpoint = std::move(ckpt).str();
  out.life_completed = sink->completed();
  out.life_conflicted = sink->conflicted();
  for (usize c = 0; c < kOpClassCount; ++c) {
    for (usize seg = 0; seg < kLifecycleSegmentCount; ++seg) {
      out.life[c][seg] = sink->stats(static_cast<OpClass>(c),
                                     static_cast<LifecycleSegment>(seg));
    }
  }
  return out;
}

std::string describe(const RunCfg& cfg) {
  return std::to_string(cfg.threads) + " threads, fast_forward " +
         (cfg.fast_forward ? "on" : "off") + ", observability " +
         (cfg.observability ? "on" : "off");
}

/// Failure diagnostics: re-run configuration `a` vs `b` in lockstep,
/// checkpoint both machines every cycle, and report the first cycle they
/// diverge.  Idle windows are replayed too, so a skip-path divergence is
/// pinned to the exact cycle the fast path first corrupted state.
void diagnose_divergence(const Scenario& s, const RunCfg& a, const RunCfg& b) {
  Simulator sim_a;
  Simulator sim_b;
  ASSERT_EQ(build_sim(s, a, sim_a, nullptr), Status::Ok);
  ASSERT_EQ(build_sim(s, b, sim_b, nullptr), Status::Ok);
  auto gen_a = make_generator(s, sim_a.config().device.derived_capacity());
  auto gen_b = make_generator(s, sim_b.config().device.derived_capacity());
  DriverConfig dcfg;
  dcfg.total_requests = s.requests;
  dcfg.max_cycles = 400000;
  if (s.devices > 1) dcfg.targets = TargetPolicy::RoundRobinCubes;
  HostDriver driver_a(sim_a, *gen_a, dcfg);
  HostDriver driver_b(sim_b, *gen_b, dcfg);
  const bool idle_windows = a.idle_windows || b.idle_windows;
  DriverResult ra;
  DriverResult rb;
  bool live_a = true;
  bool live_b = true;
  u64 steps = 0;
  u32 idle_left = 0;
  while (live_a || live_b || idle_left > 0) {
    if (idle_left > 0) {
      --idle_left;
      sim_a.clock();
      sim_b.clock();
    } else {
      if (live_a) live_a = driver_a.step(ra);
      if (live_b) live_b = driver_b.step(rb);
      if (idle_windows && ++steps % kIdleWindowEverySteps == 0) {
        idle_left = kIdleWindowCycles;
      }
      if (idle_windows && !live_a && !live_b) idle_left = kIdleTailCycles;
    }
    std::ostringstream ca;
    std::ostringstream cb;
    ASSERT_EQ(sim_a.save_checkpoint(ca), Status::Ok);
    ASSERT_EQ(sim_b.save_checkpoint(cb), Status::Ok);
    const std::string bytes_a = std::move(ca).str();
    const std::string bytes_b = std::move(cb).str();
    if (bytes_a == bytes_b) continue;
    usize first = 0;
    const usize limit = std::min(bytes_a.size(), bytes_b.size());
    while (first < limit && bytes_a[first] == bytes_b[first]) ++first;
    ADD_FAILURE() << "scenario " << s.name << ": " << describe(a) << " vs "
                  << describe(b) << " first diverge at cycle " << sim_a.now()
                  << " (checkpoint byte " << first << " of " << bytes_a.size()
                  << "/" << bytes_b.size() << ")";
    return;
  }
  ADD_FAILURE() << "scenario " << s.name
                << ": end states differ but lockstep checkpoints never "
                   "diverged (host-edge bookkeeping mismatch?)";
}

void expect_equivalent(const Scenario& s, const RunCfg& ref_cfg,
                       const RunCfg& got_cfg, const Outcome& ref,
                       const Outcome& got) {
  SCOPED_TRACE(std::string(s.name) + " @" + describe(got_cfg));
  EXPECT_EQ(ref.cycles, got.cycles);
  EXPECT_EQ(ref.sent, got.sent);
  EXPECT_EQ(ref.completed, got.completed);
  EXPECT_EQ(ref.errors, got.errors);
  EXPECT_EQ(ref.watchdog, got.watchdog);
  ASSERT_EQ(ref.stats.size(), got.stats.size());
  for (usize d = 0; d < ref.stats.size(); ++d) {
    EXPECT_EQ(ref.stats[d], got.stats[d]) << "device " << d << " stats";
  }
  EXPECT_EQ(ref.life_completed, got.life_completed);
  EXPECT_EQ(ref.life_conflicted, got.life_conflicted);
  for (usize c = 0; c < kOpClassCount; ++c) {
    for (usize seg = 0; seg < kLifecycleSegmentCount; ++seg) {
      EXPECT_EQ(ref.life[c][seg], got.life[c][seg])
          << "lifecycle class " << c << " segment " << seg;
    }
  }
  if (ref.checkpoint != got.checkpoint) {
    EXPECT_EQ(ref.checkpoint.size(), got.checkpoint.size());
    diagnose_divergence(s, ref_cfg, got_cfg);
  }
}

u32 saturated_threads() {
  // On small CI machines hardware_threads() can be 1; the engine still
  // spawns the requested workers, so force a genuinely oversubscribed
  // count to stress the shard scheduler.
  return std::max(4u, ThreadPool::hardware_threads());
}

class Differential : public ::testing::TestWithParam<Scenario> {};

TEST_P(Differential, ParallelMatchesSerialExactly) {
  const Scenario& s = GetParam();
  const RunCfg ref_cfg{};
  const Outcome ref = run_scenario(s, ref_cfg);
  // The reference run must itself be a real run, or the comparisons below
  // are vacuous.
  ASSERT_EQ(ref.sent, s.requests);
  ASSERT_EQ(ref.completed, s.requests);
  ASSERT_FALSE(ref.checkpoint.empty());
  if (s.ras) {
    u64 ecc_events = 0;
    for (const DeviceStats& st : ref.stats) {
      ecc_events += st.dram_sbes + st.dram_dbes + st.link_errors;
    }
    EXPECT_GT(ecc_events, 0u) << "RAS scenario produced no faults; the "
                                 "differential coverage is weaker than "
                                 "intended";
  }
  if (s.storm != LinkStorm::None) {
    u64 protocol_events = 0;
    u64 retrain = 0;
    for (const DeviceStats& st : ref.stats) {
      protocol_events += st.link_crc_errors + st.link_seq_errors;
      retrain += st.link_retrain_cycles;
    }
    EXPECT_GT(protocol_events, 0u)
        << "link storm produced no protocol recoveries; the differential "
           "coverage is weaker than intended";
    if (s.storm == LinkStorm::Retraining) {
      EXPECT_GT(retrain, 0u) << "retraining storm never held a window open";
    }
  }

  for (const u32 threads : {2u, saturated_threads()}) {
    const RunCfg got_cfg{threads};
    expect_equivalent(s, ref_cfg, got_cfg, ref, run_scenario(s, got_cfg));
  }
}

TEST_P(Differential, NonDefaultBackendsParallelMatchSerialExactly) {
  // The backend axis: every scenario re-run under the generic_ddr and
  // pcm_like vault timing backends, serial reference vs 2 threads and a
  // saturated worker count, with the same lockstep first-divergence
  // diagnosis on mismatch.  (The default hmc_dram backend is what every
  // other test in this file runs under.)  Backends keep per-vault private
  // state (e.g. pcm_like's write-gap deadline), so this is the proof that
  // the sharded stage-3/4 schedule never races that state either.
  for (const TimingBackend backend :
       {TimingBackend::GenericDdr, TimingBackend::PcmLike}) {
    Scenario s = GetParam();
    s.backend = backend;
    SCOPED_TRACE(std::string("backend ") + to_string(backend));
    const RunCfg ref_cfg{};
    const Outcome ref = run_scenario(s, ref_cfg);
    ASSERT_EQ(ref.sent, s.requests);
    ASSERT_EQ(ref.completed, s.requests);
    ASSERT_FALSE(ref.checkpoint.empty());
    if (backend == TimingBackend::PcmLike) {
      u64 throttle = 0;
      for (const DeviceStats& st : ref.stats) {
        throttle += st.pcm_write_throttle_stalls;
      }
      EXPECT_GT(throttle, 0u)
          << "pcm_like run never hit the write-bandwidth throttle; the "
             "backend-state race coverage is weaker than intended";
    }
    for (const u32 threads : {2u, saturated_threads()}) {
      const RunCfg got_cfg{threads};
      expect_equivalent(s, ref_cfg, got_cfg, ref, run_scenario(s, got_cfg));
    }
  }
}

TEST_P(Differential, FastForwardMatchesStagedExactly) {
  // The fast-forward axis: the same bursty workload — idle windows between
  // request bursts plus a long idle tail — run with the skip engine off
  // (reference) and on, at 1, 2, and oversubscribed thread counts.  Every
  // observable (stats, checkpoint bytes, latency histograms, finish cycle)
  // must match exactly, and the skip runs must actually skip, or the proof
  // is vacuous.
  const Scenario& s = GetParam();
  const RunCfg ref_cfg{1, /*fast_forward=*/false, /*idle_windows=*/true};
  const Outcome ref = run_scenario(s, ref_cfg);
  ASSERT_EQ(ref.sent, s.requests);
  ASSERT_EQ(ref.completed, s.requests);
  ASSERT_EQ(ref.cycles_skipped, 0u)
      << "reference run must take the staged path every cycle";

  u64 min_skipped = ~u64{0};
  for (const u32 threads : {1u, 2u, saturated_threads()}) {
    const RunCfg got_cfg{threads, /*fast_forward=*/true, /*idle_windows=*/true};
    const Outcome got = run_scenario(s, got_cfg);
    expect_equivalent(s, ref_cfg, got_cfg, ref, got);
    min_skipped = std::min(min_skipped, got.cycles_skipped);
  }
  // The idle tail alone is thousands of cycles with no bounded event for
  // long stretches, so a healthy skip engine fast-forwards plenty.
  EXPECT_GT(min_skipped, 100u)
      << "skip engine never meaningfully engaged; the fast-forward "
         "equivalence above is vacuous";
}

TEST_P(Differential, ObservabilityOnMatchesOffExactly) {
  // The observability axis: profiler + telemetry + flight recorder all on
  // versus all off.  Every simulation observable — stats, checkpoint
  // bytes, lifecycle histograms, finish cycle — must match exactly on the
  // staged path (serial and parallel) and on the fast-forward path, where
  // telemetry sampling bounds the skip spans.  (cycles_skipped is NOT an
  // observable: sampling legitimately splits skip spans.)
  const Scenario& s = GetParam();
  const RunCfg ref_cfg{};
  const Outcome ref = run_scenario(s, ref_cfg);
  ASSERT_EQ(ref.completed, s.requests);

  for (const u32 threads : {1u, saturated_threads()}) {
    RunCfg got_cfg{threads};
    got_cfg.observability = true;
    expect_equivalent(s, ref_cfg, got_cfg, ref, run_scenario(s, got_cfg));
  }

  const RunCfg ff_ref{1, /*fast_forward=*/true, /*idle_windows=*/true};
  const Outcome ff_off = run_scenario(s, ff_ref);
  RunCfg ff_got{1, /*fast_forward=*/true, /*idle_windows=*/true};
  ff_got.observability = true;
  const Outcome ff_on = run_scenario(s, ff_got);
  expect_equivalent(s, ff_ref, ff_got, ff_off, ff_on);
  EXPECT_GT(ff_on.cycles_skipped, 0u)
      << "telemetry sampling must shorten skip spans, not disable skipping";
}

TEST_P(Differential, SerialRerunIsBitIdentical) {
  // Harness self-check: two identical serial runs must agree, otherwise
  // the scenario itself is nondeterministic and the parallel comparison
  // proves nothing.
  const Scenario& s = GetParam();
  const Outcome a = run_scenario(s, RunCfg{});
  const Outcome b = run_scenario(s, RunCfg{});
  EXPECT_EQ(a.checkpoint, b.checkpoint);
  EXPECT_EQ(a.cycles, b.cycles);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, Differential,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(DifferentialExtras, ThreadsZeroResolvesToHardwareConcurrency) {
  DeviceConfig dc = test::small_device();
  dc.sim_threads = 0;
  Simulator sim;
  ASSERT_EQ(sim.init_simple(dc), Status::Ok);
  EXPECT_EQ(sim.sim_threads(), ThreadPool::hardware_threads());
}

TEST(DifferentialExtras, CheckpointBytesOmitThreadCount) {
  // sim_threads is an execution-strategy knob, not simulated state: a
  // checkpoint taken under N threads must restore cleanly into a 1-thread
  // simulator and vice versa, and the bytes must not encode N.
  DeviceConfig dc = test::small_device();
  dc.sim_threads = 3;
  Simulator sim;
  ASSERT_EQ(sim.init_simple(dc), Status::Ok);
  std::ostringstream os;
  ASSERT_EQ(sim.save_checkpoint(os), Status::Ok);
  const std::string bytes = std::move(os).str();

  Simulator restored;
  DeviceConfig dc1 = test::small_device();
  dc1.sim_threads = 1;
  ASSERT_EQ(restored.init_simple(dc1), Status::Ok);
  std::istringstream is(bytes);
  ASSERT_EQ(restored.restore_checkpoint(is), Status::Ok);
  // The restoring simulator keeps its own execution strategy...
  EXPECT_EQ(restored.sim_threads(), 1u);
  // ...and re-saving reproduces the identical bytes.
  std::ostringstream os2;
  ASSERT_EQ(restored.save_checkpoint(os2), Status::Ok);
  EXPECT_EQ(std::move(os2).str(), bytes);
}

TEST(DifferentialExtras, CheckpointBytesOmitFastForward) {
  // fast_forward is likewise an execution-strategy knob: a checkpoint from
  // a skip-enabled run (mid-skip, even) must byte-match one from a staged
  // run at the same cycle, and restore cleanly across the knob boundary.
  auto run_to = [](bool fast_forward, u32 cycles, std::string* bytes) {
    DeviceConfig dc = test::small_device();
    dc.fast_forward = fast_forward;
    Simulator sim;
    ASSERT_EQ(sim.init_simple(dc), Status::Ok);
    test::send_request(sim, 0, 0, Command::Wr64, 0x1000, 7);
    for (u32 i = 0; i < cycles; ++i) sim.clock();
    if (fast_forward) EXPECT_GT(sim.cycles_skipped(), 0u);
    std::ostringstream os;
    ASSERT_EQ(sim.save_checkpoint(os), Status::Ok);
    *bytes = std::move(os).str();
  };
  std::string staged;
  std::string skipped;
  run_to(false, 500, &staged);
  run_to(true, 500, &skipped);
  EXPECT_EQ(staged, skipped);

  Simulator restored;
  DeviceConfig dc = test::small_device();
  dc.fast_forward = true;
  ASSERT_EQ(restored.init_simple(dc), Status::Ok);
  std::istringstream is(staged);
  ASSERT_EQ(restored.restore_checkpoint(is), Status::Ok);
  EXPECT_EQ(restored.cycles_skipped(), 0u);
  std::ostringstream os2;
  ASSERT_EQ(restored.save_checkpoint(os2), Status::Ok);
  EXPECT_EQ(std::move(os2).str(), staged);
}

TEST(DifferentialExtras, CheckpointBytesOmitObservability) {
  // The observability knobs are execution-strategy state, never simulated
  // state: a checkpoint from an instrumented run must byte-match one from
  // a bare run at the same cycle, and restore cleanly across the knob
  // boundary without disturbing the restoring simulator's own attachments.
  auto run_to = [](bool observability, u32 cycles, std::string* bytes) {
    DeviceConfig dc = test::small_device();
    dc.fast_forward = false;
    if (observability) {
      dc.self_profile = true;
      dc.telemetry_interval_cycles = 3;
      dc.flight_recorder_depth = 16;
    }
    Simulator sim;
    ASSERT_EQ(sim.init_simple(dc), Status::Ok);
    test::send_request(sim, 0, 0, Command::Wr64, 0x1000, 7);
    for (u32 i = 0; i < cycles; ++i) sim.clock();
    std::ostringstream os;
    ASSERT_EQ(sim.save_checkpoint(os), Status::Ok);
    *bytes = std::move(os).str();
  };
  std::string bare;
  std::string instrumented;
  run_to(false, 300, &bare);
  run_to(true, 300, &instrumented);
  EXPECT_EQ(bare, instrumented);

  Simulator restored;
  DeviceConfig dc = test::small_device();
  dc.self_profile = true;
  dc.telemetry_interval_cycles = 3;
  dc.flight_recorder_depth = 16;
  ASSERT_EQ(restored.init_simple(dc), Status::Ok);
  std::istringstream is(bare);
  ASSERT_EQ(restored.restore_checkpoint(is), Status::Ok);
  // The restoring simulator keeps its own observability attachments...
  EXPECT_NE(restored.profiler(), nullptr);
  EXPECT_NE(restored.telemetry(), nullptr);
  EXPECT_NE(restored.flight_recorder(), nullptr);
  // ...and re-saving reproduces the identical bytes.
  std::ostringstream os2;
  ASSERT_EQ(restored.save_checkpoint(os2), Status::Ok);
  EXPECT_EQ(std::move(os2).str(), bare);
}

}  // namespace
}  // namespace hmcsim
