// Acceptance property for the lifecycle attribution layer: the per-packet
// segment stamps must decompose exactly the latency the host driver
// measures from the outside (send cycle -> drain cycle), packet by packet
// and in aggregate.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/simulator.hpp"
#include "tests/core/helpers.hpp"
#include "trace/lifecycle.hpp"
#include "workload/driver.hpp"
#include "workload/generator.hpp"

namespace hmcsim {
namespace {

/// Observer retaining every completed record for per-packet checks.
struct RecordingObserver final : LifecycleObserver {
  std::vector<PacketLifecycle> records;
  void complete(const PacketLifecycle& lc) override {
    records.push_back(lc);
  }
};

TEST(LifecycleConsistency, SegmentsDecomposeDriverLatency) {
  Simulator sim = test::make_simple_sim();
  auto sink = std::make_shared<LifecycleSink>();
  auto recorder = std::make_shared<RecordingObserver>();
  sim.add_lifecycle_observer(sink);
  sim.add_lifecycle_observer(recorder);

  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.request_bytes = 64;
  gc.read_fraction = 0.5;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 4096;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult result = driver.run();

  // Aggregate equivalence: the lifecycle Total distribution is the same
  // population the driver aggregated externally.
  const LatencyStats total = sink->merged(LifecycleSegment::Total);
  EXPECT_EQ(total.count, result.latency.count);
  EXPECT_EQ(total.sum, result.latency.sum);
  EXPECT_EQ(total.min, result.latency.min);
  EXPECT_EQ(total.max, result.latency.max);
  EXPECT_EQ(sink->completed(), result.completed);

  // Per-packet equivalence: the five segments partition each packet's
  // end-to-end latency with no gap and no overlap.
  ASSERT_EQ(recorder->records.size(), result.completed);
  for (const PacketLifecycle& lc : recorder->records) {
    Cycle sum = 0;
    for (usize s = 0; s < kLifecycleSegmentCount - 1; ++s) {
      sum += segment_cycles(lc, static_cast<LifecycleSegment>(s));
    }
    ASSERT_EQ(sum, segment_cycles(lc, LifecycleSegment::Total))
        << "tag " << lc.tag << " vault " << lc.vault;
    // Stamps are monotone through the pipeline.
    ASSERT_LE(lc.inject, lc.vault_arrive);
    ASSERT_LE(lc.vault_arrive, lc.retire);
    ASSERT_LE(lc.retire, lc.rsp_register);
    ASSERT_LE(lc.rsp_register, lc.drain);
  }

  // The class split covers the whole population (reads + writes here).
  EXPECT_EQ(sink->stats(OpClass::Read, LifecycleSegment::Total).count +
                sink->stats(OpClass::Write, LifecycleSegment::Total).count,
            total.count);
  EXPECT_GT(sink->stats(OpClass::Read, LifecycleSegment::Total).count, 0u);
  EXPECT_GT(sink->stats(OpClass::Write, LifecycleSegment::Total).count, 0u);

  // Per-segment counts all cover the same population, and the segment sums
  // fold back to the end-to-end sum.
  u64 segment_sum = 0;
  for (usize s = 0; s < kLifecycleSegmentCount - 1; ++s) {
    const LatencyStats seg = sink->merged(static_cast<LifecycleSegment>(s));
    EXPECT_EQ(seg.count, total.count);
    segment_sum += seg.sum;
  }
  EXPECT_EQ(segment_sum, total.sum);
}

TEST(LifecycleConsistency, CheckpointRestorePreservesInFlightStamps) {
  // Stamps ride the checkpoint: a restored simulator completes in-flight
  // packets with the same attribution as the original.
  Simulator sim = test::make_simple_sim();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(test::send_request(sim, 0, static_cast<u32>(i % 4),
                                 Command::Rd64, 0x40u * (i + 1),
                                 static_cast<Tag>(i + 1)),
              Status::Ok);
  }
  for (int i = 0; i < 3; ++i) sim.clock();  // some in flight, none drained

  std::stringstream snap;
  ASSERT_EQ(sim.save_checkpoint(snap), Status::Ok);

  auto finish = [](Simulator& s) {
    auto sink = std::make_shared<LifecycleSink>();
    s.add_lifecycle_observer(sink);
    test::drain_all(s);
    return sink;
  };

  Simulator restored = test::make_simple_sim();
  ASSERT_EQ(restored.restore_checkpoint(snap), Status::Ok);
  const auto original = finish(sim);
  const auto copy = finish(restored);

  ASSERT_EQ(original->completed(), 8u);
  ASSERT_EQ(copy->completed(), 8u);
  for (usize s = 0; s < kLifecycleSegmentCount; ++s) {
    const auto seg = static_cast<LifecycleSegment>(s);
    EXPECT_EQ(original->merged(seg).sum, copy->merged(seg).sum)
        << to_string(seg);
  }
}

}  // namespace
}  // namespace hmcsim
