// Weak-ordering property verification via the trace stream.
//
// The spec's one hard ordering rule (§III.C): every reordering point must
// preserve the order of a stream of packets from a specific link to a
// specific bank within a vault.  These tests reconstruct per-(host link,
// vault, bank) retirement sequences from stage-4 trace records and verify
// they match injection order under randomized saturating traffic — for
// both vault schedulers, with multipath trunks, and under fault injection.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "tests/core/helpers.hpp"

namespace hmcsim {
namespace {

using test::small_device;

using StreamKey = std::tuple<u32, u32, u32>;  // (host link, vault, bank)

/// Captures only stage-4 retirement records (the unbounded MemorySink would
/// also retain millions of per-cycle conflict recognitions).
class RetireSink final : public TraceSink {
 public:
  void record(const TraceRecord& rec) override {
    if (rec.event == TraceEvent::ReadRequest ||
        rec.event == TraceEvent::WriteRequest) {
      records_.push_back(rec);
    }
  }
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

 private:
  std::vector<TraceRecord> records_;
};

/// Drive `total` uniquely-tagged requests (tags increase in send order per
/// link) and return, per stream, the retired tag sequence.
std::map<StreamKey, std::vector<Tag>> run_and_collect(DeviceConfig dc,
                                                      u64 total,
                                                      u64 seed) {
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  auto sink = std::make_shared<RetireSink>();
  sim.tracer().set_level(TraceLevel::Events);
  sim.tracer().add_sink(sink);

  // Per-link monotone tag counters: tag order == send order per link.
  std::array<Tag, 8> next_tag{};
  std::map<StreamKey, std::vector<Tag>> sent;
  SplitMix64 rng(seed);
  const AddressMap& map = sim.device(0).address_map();

  u64 issued = 0, retired_target = total;
  PacketBuffer pkt;
  while (issued < total) {
    for (u32 l = 0; l < dc.num_links && issued < total; ++l) {
      if (next_tag[l] >= 500) continue;  // stay within the tag space
      const PhysAddr addr =
          rng.next_below(dc.derived_capacity() / 64) * 64;
      const Tag tag = next_tag[l];
      if (!ok(build_memrequest(0, addr, tag, Command::Rd16, l, {}, pkt))) {
        continue;
      }
      if (sim.send(0, l, pkt) != Status::Ok) continue;
      ++next_tag[l];
      ++issued;
      sent[{l, map.vault_of(addr), map.bank_of(addr)}].push_back(tag);
    }
    // Keep the response path drained so the pipeline never wedges.
    PacketBuffer out;
    for (u32 l = 0; l < dc.num_links; ++l) {
      while (ok(sim.recv(0, l, out))) {
      }
    }
    sim.clock();
  }
  // Drain.
  for (int guard = 0; guard < 5000 && !sim.quiescent(); ++guard) {
    PacketBuffer out;
    for (u32 l = 0; l < dc.num_links; ++l) {
      while (ok(sim.recv(0, l, out))) {
      }
    }
    sim.clock();
  }
  EXPECT_TRUE(sim.quiescent());

  // Reconstruct retirement order per stream from the stage-4 records.
  std::map<StreamKey, std::vector<Tag>> retired;
  for (const TraceRecord& rec : sink->records()) {
    if (rec.event != TraceEvent::ReadRequest &&
        rec.event != TraceEvent::WriteRequest) {
      continue;
    }
    retired[{rec.link, rec.vault, rec.bank}].push_back(rec.tag);
  }
  (void)retired_target;

  // Sanity: everything sent must have retired.
  u64 sent_count = 0, retired_count = 0;
  for (const auto& [key, tags] : sent) sent_count += tags.size();
  for (const auto& [key, tags] : retired) retired_count += tags.size();
  EXPECT_EQ(sent_count, retired_count);
  return retired;
}

void expect_streams_ordered(
    const std::map<StreamKey, std::vector<Tag>>& retired) {
  usize multi_entry_streams = 0;
  for (const auto& [key, tags] : retired) {
    if (tags.size() > 1) ++multi_entry_streams;
    for (usize i = 1; i < tags.size(); ++i) {
      ASSERT_LT(tags[i - 1], tags[i])
          << "stream (link " << std::get<0>(key) << ", vault "
          << std::get<1>(key) << ", bank " << std::get<2>(key)
          << ") retired out of order at position " << i;
    }
  }
  // The property is vacuous unless some streams actually carried multiple
  // packets.
  EXPECT_GT(multi_entry_streams, 10u);
}

TEST(WeakOrdering, BankReadySchedulerPreservesStreams) {
  expect_streams_ordered(run_and_collect(small_device(), 1500, 1));
}

TEST(WeakOrdering, StrictFifoPreservesStreams) {
  DeviceConfig dc = small_device();
  dc.vault_schedule = VaultSchedule::StrictFifo;
  expect_streams_ordered(run_and_collect(dc, 1500, 2));
}

TEST(WeakOrdering, HoldsUnderDeepQueuesAndSlowBanks) {
  DeviceConfig dc = small_device();
  dc.vault_depth = 32;
  dc.xbar_depth = 64;
  dc.bank_busy_cycles = 9;
  expect_streams_ordered(run_and_collect(dc, 2000, 3));
}

TEST(WeakOrdering, HoldsUnderLinkRetries) {
  DeviceConfig dc = small_device();
  dc.link_error_rate_ppm = 200'000;
  dc.link_retry_limit = 10;  // survivable: replays must not reorder
  expect_streams_ordered(run_and_collect(dc, 1500, 4));
}

TEST(WeakOrdering, HoldsOnEightLinkParts) {
  DeviceConfig dc = small_device();
  dc.num_links = 8;
  dc.banks_per_vault = 16;
  expect_streams_ordered(run_and_collect(dc, 2500, 5));
}

}  // namespace
}  // namespace hmcsim
