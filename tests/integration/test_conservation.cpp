// Stats-conservation metamorphic tests.
//
// The differential harness (test_differential.cpp) proves runs are
// bit-identical across execution strategies; this file proves the numbers
// themselves are *right*.  Every run must satisfy closed-form conservation
// laws derived from what the host injected:
//
//   * every accepted request is counted exactly once in `sends`, and —
//     because the workload is all non-posted commands — drained exactly
//     once, so `recvs` equals the injected total;
//   * every request terminates as either a retirement (reads + writes +
//     atomics + custom_ops) or an Error response the driver observed, so
//     retired() == injected − driver errors, with RAS storms on or off;
//   * scheduled maintenance is never lost or duplicated: per-device
//     scrub_steps and refreshes match the analytic count implied by the
//     schedule formulas and the final cycle number;
//   * cycles_skipped is bounded by the clock, zero exactly when the
//     fast-forward engine is off, and positive when it is on and the
//     workload has idle windows to skip.
//
// The metamorphic axis: the same workload re-run across thread counts and
// fast-forward settings must produce identical device stats and finish
// cycle while cycles_skipped (pure execution bookkeeping) is free to vary.
//
// Every law above is backend-independent, so the whole matrix also runs
// under each vault timing backend (hmc_dram / generic_ddr / pcm_like):
// backends reshape *when* banks free up, never how many requests exist.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/link_layer.hpp"
#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"
#include "workload/trace_file.hpp"

namespace hmcsim {
namespace {

constexpr u64 kRequests = 2000;
constexpr u64 kTraceEntries = 256;
constexpr u64 kIdleWindowEverySteps = 160;
constexpr u32 kIdleWindowCycles = 256;
constexpr u32 kIdleTailCycles = 3000;

DeviceConfig conservation_device(bool ras,
                                 TimingBackend backend = TimingBackend::HmcDram) {
  DeviceConfig dc = test::small_device();
  // A short refresh schedule so the analytic refresh count is exercised
  // thousands of times, with a narrow busy window so traffic still flows.
  dc.refresh_interval_cycles = 512;
  dc.refresh_busy_cycles = 8;
  dc.timing_backend = backend;
  if (backend == TimingBackend::GenericDdr) {
    dc.ddr_tcl = 3;
    dc.ddr_trcd = 2;
    dc.ddr_trp = 2;
    dc.ddr_tras = 6;
  } else if (backend == TimingBackend::PcmLike) {
    // Asymmetric enough that the write gap gates issues mid-run.
    dc.pcm_read_cycles = 4;
    dc.pcm_write_cycles = 12;
    dc.pcm_write_gap_cycles = 6;
  }
  if (ras) {
    dc.dram_sbe_rate_ppm = 20000;
    dc.dram_dbe_rate_ppm = 4000;
    dc.scrub_interval_cycles = 128;
    dc.vault_fail_threshold = 2;
    dc.link_error_rate_ppm = 2000;
    dc.link_retry_limit = 3;
  }
  return dc;
}

/// Deterministic all-non-posted request mix with a composition the test
/// can recompute exactly: every command below elicits a response, so the
/// injected totals are fully observable at the host edge.
std::vector<RequestDesc> conservation_trace(u64 capacity) {
  static constexpr Command kReads[] = {Command::Rd16, Command::Rd64,
                                       Command::Rd128};
  static constexpr Command kWrites[] = {Command::Wr16, Command::Wr64,
                                        Command::Wr128};
  SplitMix64 rng(0xc0de5eed0ddba11ull);
  const u64 blocks = capacity / 128;
  std::vector<RequestDesc> reqs;
  reqs.reserve(kTraceEntries);
  for (u64 i = 0; i < kTraceEntries; ++i) {
    RequestDesc d;
    d.addr = 128 * rng.next_below(blocks);
    const u64 pick = rng.next_below(8);
    if (pick < 4) {
      d.cmd = kReads[pick % 3];
    } else if (pick < 7) {
      d.cmd = kWrites[pick % 3];
    } else {
      d.cmd = Command::TwoAdd8;
    }
    reqs.push_back(d);
  }
  return reqs;
}

struct InjectedTotals {
  u64 reads{0};
  u64 writes{0};
  u64 atomics{0};
};

/// Composition of the first `kRequests` generator pulls (the trace file
/// generator wraps around its entry vector).
InjectedTotals injected_totals(const std::vector<RequestDesc>& trace) {
  InjectedTotals t;
  for (u64 i = 0; i < kRequests; ++i) {
    switch (trace[i % trace.size()].cmd) {
      case Command::TwoAdd8: ++t.atomics; break;
      case Command::Wr16:
      case Command::Wr64:
      case Command::Wr128: ++t.writes; break;
      default: ++t.reads; break;
    }
  }
  return t;
}

/// Analytic per-device refresh count: the clock call at cycle c refreshes
/// vault v iff (c + offset_v) % interval == 0, offsets staggered across
/// the interval — the same formula process_vault() evaluates.  Vaults in
/// `exclude_mask` (failed, hence no longer clocked) are left out.
u64 expected_refreshes(const DeviceConfig& dc, Cycle now, u64 exclude_mask) {
  if (dc.refresh_interval_cycles == 0) return 0;
  const Cycle interval = dc.refresh_interval_cycles;
  u64 total = 0;
  for (u32 v = 0; v < dc.num_vaults(); ++v) {
    if (exclude_mask >> v & 1) continue;
    const Cycle offset = Cycle{v} * interval / dc.num_vaults();
    // First firing cycle for this vault, then one per interval.
    const Cycle first = (interval - offset % interval) % interval;
    if (first < now) total += 1 + (now - 1 - first) / interval;
  }
  return total;
}

/// Analytic per-device scrub count: the clock call at cycle c scrubs iff
/// c % scrub_interval == 0 (stage6_clock_update's schedule).
u64 expected_scrub_steps(const DeviceConfig& dc, Cycle now) {
  if (dc.scrub_interval_cycles == 0 || now == 0) return 0;
  return 1 + (now - 1) / dc.scrub_interval_cycles;
}

struct RunResult {
  DriverResult driver;
  DeviceStats stats;
  Cycle now{0};
  u64 cycles_skipped{0};
  u64 failed_vaults{0};
};

RunResult run_conservation(bool ras, TimingBackend backend, u32 threads,
                           bool fast_forward,
                           const std::vector<RequestDesc>& trace) {
  RunResult out;
  DeviceConfig dc = conservation_device(ras, backend);
  dc.sim_threads = threads;
  dc.fast_forward = fast_forward;
  Simulator sim;
  std::string diag;
  EXPECT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;

  TraceFileGenerator gen{std::vector<RequestDesc>(trace)};
  DriverConfig dcfg;
  dcfg.total_requests = kRequests;
  dcfg.max_cycles = 400000;
  HostDriver driver(sim, gen, dcfg);

  // Bursty pacing so fast-forward runs genuinely skip mid-workload, plus
  // an idle tail long enough to cross many refresh/scrub boundaries.
  u64 steps = 0;
  bool live = true;
  while (live) {
    live = driver.step(out.driver);
    if (++steps % kIdleWindowEverySteps == 0) {
      for (u32 i = 0; i < kIdleWindowCycles; ++i) sim.clock();
    }
  }
  for (u32 i = 0; i < kIdleTailCycles; ++i) sim.clock();

  out.stats = sim.total_stats();
  out.now = sim.now();
  out.cycles_skipped = sim.cycles_skipped();
  out.failed_vaults = sim.device(0).ras.failed_vaults;
  EXPECT_FALSE(out.driver.watchdog_fired);
  EXPECT_FALSE(out.driver.hit_cycle_cap);
  return out;
}

void check_conservation(bool ras, TimingBackend backend, u32 threads,
                        bool fast_forward,
                        const std::vector<RequestDesc>& trace,
                        const RunResult& run) {
  SCOPED_TRACE(std::string(ras ? "ras" : "clean") + " " +
               to_string(backend) + " @" + std::to_string(threads) +
               " threads, fast_forward " + (fast_forward ? "on" : "off"));
  const DeviceConfig dc = conservation_device(ras, backend);
  const DeviceStats& s = run.stats;

  // Host-edge totals: everything injected was accepted, everything
  // accepted was answered, and nothing was answered twice.
  EXPECT_EQ(run.driver.sent, kRequests);
  EXPECT_EQ(run.driver.retries, 0u);
  EXPECT_EQ(run.driver.abandoned, 0u);
  EXPECT_EQ(run.driver.completed, kRequests);
  EXPECT_EQ(s.sends, kRequests);
  EXPECT_EQ(s.recvs, kRequests);
  EXPECT_EQ(s.flow_packets, 0u);

  // Termination conservation: each request retired at a bank or came back
  // as an Error the driver saw — never both, never neither.
  EXPECT_EQ(s.retired() + run.driver.errors, kRequests);

  const InjectedTotals inj = injected_totals(trace);
  if (ras) {
    // Faults can convert any retirement into an error, but never mint one.
    EXPECT_GT(run.driver.errors, 0u)
        << "RAS storm produced no errors; conservation coverage is weaker "
           "than intended";
    EXPECT_LE(s.reads, inj.reads);
    EXPECT_LE(s.writes, inj.writes);
    EXPECT_LE(s.atomics, inj.atomics);
  } else {
    // Clean runs conserve the exact injected composition.
    EXPECT_EQ(run.driver.errors, 0u);
    EXPECT_EQ(s.reads, inj.reads);
    EXPECT_EQ(s.writes, inj.writes);
    EXPECT_EQ(s.atomics, inj.atomics);
  }
  EXPECT_EQ(s.mode_ops, 0u);
  EXPECT_EQ(s.custom_ops, 0u);

  // The write-bandwidth throttle exists only inside pcm_like; any other
  // backend counting a stall would mean the counter leaks across the
  // backend seam.  Under pcm_like with a nonzero gap, this mixed workload
  // must actually hit it, or the per-backend runs prove nothing extra.
  if (backend == TimingBackend::PcmLike) {
    EXPECT_GT(s.pcm_write_throttle_stalls, 0u);
  } else {
    EXPECT_EQ(s.pcm_write_throttle_stalls, 0u);
  }

  // Scheduled maintenance: skipping cycles must not skip the schedule.
  // A vault stops being clocked — and hence refreshed — once it fails, so
  // under RAS storms the exact count lies between "every vault refreshed
  // all run" and "the finally-failed vaults never refreshed at all".
  EXPECT_LE(s.refreshes, expected_refreshes(dc, run.now, 0));
  EXPECT_GE(s.refreshes,
            expected_refreshes(dc, run.now, run.failed_vaults));
  if (!ras) {
    EXPECT_EQ(run.failed_vaults, 0u);
    EXPECT_EQ(s.refreshes, expected_refreshes(dc, run.now, 0));
  }
  EXPECT_EQ(s.scrub_steps, expected_scrub_steps(dc, run.now));

  // Clock conservation: cycles_skipped + cycles_executed == clock, with
  // skipping happening exactly when the engine is enabled and idle.
  EXPECT_LE(run.cycles_skipped, run.now);
  if (fast_forward) {
    EXPECT_GT(run.cycles_skipped, 0u);
    EXPECT_GT(run.now - run.cycles_skipped, 0u);
  } else {
    EXPECT_EQ(run.cycles_skipped, 0u);
  }
}

class Conservation
    : public ::testing::TestWithParam<std::tuple<bool, TimingBackend>> {};

TEST_P(Conservation, CountsSumToInjectedTotals) {
  const auto [ras, backend] = GetParam();
  const std::vector<RequestDesc> trace =
      conservation_trace(conservation_device(ras).derived_capacity());

  struct Cfg {
    u32 threads;
    bool fast_forward;
  };
  const Cfg cfgs[] = {{1, false},
                      {1, true},
                      {2, true},
                      {2, false},
                      {std::max(4u, ThreadPool::hardware_threads()), true}};

  std::vector<RunResult> runs;
  for (const Cfg& c : cfgs) {
    runs.push_back(
        run_conservation(ras, backend, c.threads, c.fast_forward, trace));
    check_conservation(ras, backend, c.threads, c.fast_forward, trace,
                       runs.back());
  }

  // Metamorphic equality: simulation-visible outputs agree across every
  // execution strategy; only the skip bookkeeping may differ.
  for (usize i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i) + " vs reference");
    EXPECT_EQ(runs[i].now, runs[0].now);
    EXPECT_EQ(runs[i].stats, runs[0].stats);
    EXPECT_EQ(runs[i].driver.errors, runs[0].driver.errors);
    EXPECT_EQ(runs[i].driver.cycles, runs[0].driver.cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CleanAndRasPerBackend, Conservation,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(TimingBackend::HmcDram,
                                         TimingBackend::GenericDdr,
                                         TimingBackend::PcmLike)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "ras" : "clean") + "_" +
             to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Link-layer token conservation.
//
// The credit loop obeys a closed-form identity at every instant:
//
//   tokens_debited − tokens_returned == pool − tokens   (FLITs in flight)
//
// with 0 ≤ in-flight ≤ pool, and at quiescence in-flight == 0 exactly:
// every debit was matched by a return, the pool sits at its fixed point,
// and the retry buffer is empty — even after an error storm full of
// replays and IRTRY recoveries.
// ---------------------------------------------------------------------------

void expect_token_identity(const Simulator& sim, bool at_quiescence) {
  const i64 pool = resolved_link_tokens(sim.config().device);
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    const Device& dev = sim.device(d);
    for (u32 l = 0; l < dev.links.size(); ++l) {
      const LinkProtoState& st = dev.links[l].proto;
      SCOPED_TRACE("dev " + std::to_string(d) + " link " + std::to_string(l));
      const i64 in_flight = pool - st.tokens;
      EXPECT_GE(in_flight, 0);
      EXPECT_LE(in_flight, pool);
      EXPECT_EQ(st.tokens_debited - st.tokens_returned,
                static_cast<u64>(in_flight));
      if (at_quiescence) {
        EXPECT_EQ(st.tokens, pool);
        EXPECT_EQ(st.tokens_debited, st.tokens_returned);
        EXPECT_EQ(st.retry_buf_flits, 0u);
        EXPECT_FALSE(st.replay_pending);
      }
    }
  }
}

TEST(TokenConservation, CreditLoopBalancesMidFlightAndAtQuiescence) {
  DeviceConfig dc = conservation_device(true);
  dc.link_protocol = true;
  dc.link_retry_limit = 8;
  dc.link_retry_latency = 4;
  dc.link_error_rate_ppm = 20000;
  Simulator sim;
  std::string diag;
  ASSERT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;

  const std::vector<RequestDesc> trace =
      conservation_trace(dc.derived_capacity());
  TraceFileGenerator gen{std::vector<RequestDesc>(trace)};
  DriverConfig dcfg;
  dcfg.total_requests = kRequests;
  dcfg.max_cycles = 400000;
  HostDriver driver(sim, gen, dcfg);

  // The identity is an invariant, not an end-state property: sample it
  // mid-storm while replays and aborts are in flight.
  DriverResult r;
  u64 steps = 0;
  bool live = true;
  while (live) {
    live = driver.step(r);
    if (++steps % 64 == 0) expect_token_identity(sim, false);
  }
  EXPECT_EQ(r.completed, kRequests);

  for (u32 i = 0; i < kIdleTailCycles; ++i) sim.clock();
  ASSERT_TRUE(sim.quiescent());
  expect_token_identity(sim, true);

  // The aggregate statistics agree with the per-link ledgers.
  const DeviceStats s = sim.total_stats();
  EXPECT_EQ(s.link_tokens_debited, s.link_tokens_returned);
  EXPECT_GT(s.link_tokens_debited, 0u);
}

}  // namespace
}  // namespace hmcsim
