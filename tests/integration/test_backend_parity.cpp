// Backend-parity proof suite.
//
// The vault timing model sits behind the VaultTimingBackend seam
// (src/backend/); this harness proves the seam changed nothing it did not
// mean to:
//
//   * `hmc_dram` (the default backend) reproduces the pre-refactor
//     simulator bit-for-bit.  The committed goldens under
//     tests/golden/backend_parity/ were generated from the tree *before*
//     the backend extraction and lock every observable a checkpoint
//     encodes: final cycle, every DeviceStats counter, the end-state
//     per-vault bank timing arrays, the per-vault DRAM RNG streams, and
//     the full packet-lifecycle latency histograms
//     (count/sum/min/max/buckets per class and segment).
//   * serial == parallel == fast-forward holds for every backend, not
//     just the default one (the differential harness covers hmc_dram;
//     here the same lockstep capture runs under generic_ddr and
//     pcm_like).
//   * metamorphic timing identities per backend: a generic_ddr
//     parameterization algebraically equal to the hmc_dram model
//     reproduces its counters exactly, and pcm_like's asymmetric
//     latencies are visible in the measured histograms (write total
//     latency stochastically dominates read latency).
//
// To regenerate the goldens after an *intentional* timing change:
//
//   HMCSIM_UPDATE_GOLDEN=1 ctest -R BackendParity
//
// then review the diff like any other source change.  Do NOT regenerate
// to paper over an unintended divergence — the whole point of the file is
// to catch those.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "tests/core/helpers.hpp"
#include "trace/lifecycle.hpp"
#include "workload/driver.hpp"
#include "workload/trace_file.hpp"

#ifndef HMCSIM_GOLDEN_DIR
#define HMCSIM_GOLDEN_DIR "tests/golden"
#endif

namespace hmcsim {
namespace {

enum class Kind : u8 { Random, Stream, TraceFile };

struct Scenario {
  const char* name;
  Kind kind;
  bool open_page;  ///< OpenPage row policy (row-hit/miss timing paths)
  bool refresh;    ///< staggered refresh schedule on
  u64 requests;
};

// Each scenario exercises a different slice of the vault timing model:
// closed-page busy windows, open-page hit/miss latencies, refresh
// participation, and the atomic (read-modify-write) path.
constexpr Scenario kScenarios[] = {
    {"random_closed_refresh", Kind::Random, false, true, 2500},
    {"random_open", Kind::Random, true, false, 2500},
    {"stream_open_refresh", Kind::Stream, true, true, 2000},
    {"trace_mixed", Kind::TraceFile, false, false, 2000},
};

DeviceConfig scenario_device(const Scenario& s) {
  DeviceConfig dc = test::small_device();
  if (s.open_page) {
    dc.row_policy = RowPolicy::OpenPage;
    // Defaults (6/22) scaled down to the small-device busy window.
    dc.row_hit_cycles = 2;
    dc.row_miss_cycles = 7;
  }
  if (s.refresh) {
    dc.refresh_interval_cycles = 512;
    dc.refresh_busy_cycles = 8;
  }
  return dc;
}

std::unique_ptr<Generator> make_generator(const Scenario& s, u64 capacity) {
  GeneratorConfig gc;
  gc.capacity_bytes = capacity;
  gc.seed = 4242;
  switch (s.kind) {
    case Kind::Random:
      return std::make_unique<RandomAccessGenerator>(gc);
    case Kind::Stream:
      return std::make_unique<StreamGenerator>(gc);
    case Kind::TraceFile: {
      SplitMix64 rng(0xbacc7e57u);
      const u64 blocks = capacity / 128;
      std::vector<RequestDesc> reqs;
      reqs.reserve(256);
      for (int i = 0; i < 256; ++i) {
        RequestDesc d;
        d.addr = 128 * rng.next_below(blocks);
        const u64 pick = rng.next_below(8);
        if (pick < 4) {
          static constexpr Command kReads[] = {Command::Rd16, Command::Rd32,
                                               Command::Rd64, Command::Rd128};
          d.cmd = kReads[pick % 4];
        } else if (pick < 7) {
          static constexpr Command kWrites[] = {Command::Wr16, Command::Wr64,
                                                Command::Wr128};
          d.cmd = kWrites[pick % 3];
        } else {
          d.cmd = Command::TwoAdd8;
        }
        reqs.push_back(d);
      }
      return std::make_unique<TraceFileGenerator>(std::move(reqs));
    }
  }
  return nullptr;
}

void append_stats(std::ostream& os, const DeviceStats& s) {
  const struct {
    const char* name;
    u64 value;
  } fields[] = {
      {"reads", s.reads},
      {"writes", s.writes},
      {"atomics", s.atomics},
      {"mode_ops", s.mode_ops},
      {"custom_ops", s.custom_ops},
      {"bytes_read", s.bytes_read},
      {"bytes_written", s.bytes_written},
      {"responses", s.responses},
      {"error_responses", s.error_responses},
      {"bank_conflicts", s.bank_conflicts},
      {"xbar_rqst_stalls", s.xbar_rqst_stalls},
      {"xbar_rsp_stalls", s.xbar_rsp_stalls},
      {"vault_rsp_stalls", s.vault_rsp_stalls},
      {"latency_penalties", s.latency_penalties},
      {"route_hops", s.route_hops},
      {"misroutes", s.misroutes},
      {"link_errors", s.link_errors},
      {"link_retries", s.link_retries},
      {"refreshes", s.refreshes},
      {"row_hits", s.row_hits},
      {"row_misses", s.row_misses},
      {"sends", s.sends},
      {"send_stalls", s.send_stalls},
      {"recvs", s.recvs},
      {"flow_packets", s.flow_packets},
      {"dram_sbes", s.dram_sbes},
      {"dram_dbes", s.dram_dbes},
      {"scrub_steps", s.scrub_steps},
      {"scrub_corrections", s.scrub_corrections},
      {"scrub_uncorrectables", s.scrub_uncorrectables},
      {"vault_failures", s.vault_failures},
      {"vault_remaps", s.vault_remaps},
      {"degraded_drops", s.degraded_drops},
      {"link_crc_errors", s.link_crc_errors},
      {"link_seq_errors", s.link_seq_errors},
      {"link_abort_entries", s.link_abort_entries},
      {"link_irtry_tx", s.link_irtry_tx},
      {"link_irtry_rx", s.link_irtry_rx},
      {"link_pret_tx", s.link_pret_tx},
      {"link_tret_tx", s.link_tret_tx},
      {"link_replayed_flits", s.link_replayed_flits},
      {"link_token_stalls", s.link_token_stalls},
      {"link_retrain_cycles", s.link_retrain_cycles},
      {"link_failures", s.link_failures},
      {"link_tokens_debited", s.link_tokens_debited},
      {"link_tokens_returned", s.link_tokens_returned},
      {"pcm_write_throttle_stalls", s.pcm_write_throttle_stalls},
  };
  for (const auto& f : fields) os << "stat " << f.name << ' ' << f.value
                                  << '\n';
}

void append_latency(std::ostream& os, const LifecycleSink& sink) {
  os << "life completed " << sink.completed() << '\n';
  os << "life conflicted " << sink.conflicted() << '\n';
  for (usize c = 0; c < kOpClassCount; ++c) {
    for (usize seg = 0; seg < kLifecycleSegmentCount; ++seg) {
      const LatencyStats& ls = sink.stats(static_cast<OpClass>(c),
                                          static_cast<LifecycleSegment>(seg));
      if (ls.count == 0) continue;
      os << "hist " << c << ' ' << seg << ' ' << ls.count << ' ' << ls.sum
         << ' ' << ls.min << ' ' << ls.max << " |";
      for (usize b = 0; b < ls.log2_buckets.size(); ++b) {
        if (ls.log2_buckets[b] != 0) {
          os << ' ' << b << ':' << ls.log2_buckets[b];
        }
      }
      os << '\n';
    }
  }
}

/// Execution strategy for one capture run (never simulation-visible).
struct RunCfg {
  u32 threads{1};
  bool fast_forward{false};
};

/// Canonical text rendering of everything the vault timing model can
/// influence: the finish cycle, every stats counter, the end-state bank
/// timing arrays and RNG streams, and the latency histograms.  Two runs
/// are timing-equivalent iff their captures are string-equal.
std::string capture(const Scenario& s, DeviceConfig dc, const RunCfg& cfg) {
  dc.sim_threads = cfg.threads;
  dc.fast_forward = cfg.fast_forward;
  Simulator sim;
  std::string diag;
  EXPECT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;
  auto sink = std::make_shared<LifecycleSink>();
  sim.add_lifecycle_observer(sink);

  auto gen = make_generator(s, sim.config().device.derived_capacity());
  DriverConfig dcfg;
  dcfg.total_requests = s.requests;
  dcfg.max_cycles = 400000;
  HostDriver driver(sim, *gen, dcfg);
  const DriverResult r = driver.run();
  // An idle tail crosses more refresh boundaries and (in fast-forward
  // runs) guarantees the skip engine engages.
  for (u32 i = 0; i < 2000; ++i) sim.clock();

  std::ostringstream os;
  os << "scenario " << s.name << '\n';
  os << "cycle " << sim.now() << '\n';
  os << "driver cycles " << r.cycles << " sent " << r.sent << " completed "
     << r.completed << " errors " << r.errors << '\n';
  for (u32 d = 0; d < sim.num_devices(); ++d) {
    os << "device " << d << '\n';
    append_stats(os, sim.stats(d));
    const Device& dev = sim.device(d);
    for (usize v = 0; v < dev.vaults.size(); ++v) {
      const VaultState& vault = dev.vaults[v];
      os << "vault " << v << " busy";
      for (const Cycle busy : vault.bank_busy_until) os << ' ' << busy;
      os << '\n';
      os << "vault " << v << " row";
      for (const u64 row : vault.open_row) os << ' ' << row;
      os << '\n';
      os << "vault " << v << " rng " << vault.dram_rng.state() << '\n';
    }
  }
  append_latency(os, *sink);
  return std::move(os).str();
}

std::string golden_path(const Scenario& s) {
  return std::string(HMCSIM_GOLDEN_DIR) + "/backend_parity/" + s.name +
         ".txt";
}

void expect_matches_golden(const Scenario& s, const std::string& got) {
  const std::string path = golden_path(s);
  if (std::getenv("HMCSIM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path
                            << " (does tests/golden/backend_parity/ exist?)";
    out << got;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with HMCSIM_UPDATE_GOLDEN=1 ctest -R BackendParity";
  std::ostringstream want;
  want << in.rdbuf();
  const std::string expected = std::move(want).str();
  if (got == expected) return;
  // Point at the first differing line so the failure reads like a diff.
  std::istringstream ga(expected);
  std::istringstream gb(got);
  std::string la;
  std::string lb;
  usize line = 0;
  while (true) {
    const bool ha = static_cast<bool>(std::getline(ga, la));
    const bool hb = static_cast<bool>(std::getline(gb, lb));
    ++line;
    if (!ha && !hb) break;
    if (la != lb || ha != hb) {
      FAIL() << s.name << " diverges from the pre-refactor golden at line "
             << line << "\n  golden: " << (ha ? la : "<eof>")
             << "\n  got:    " << (hb ? lb : "<eof>")
             << "\nThe hmc_dram backend must be bit-identical to the "
                "pre-refactor simulator; only regenerate for an intentional "
                "timing change.";
    }
  }
}

/// Non-default backend parameterizations for the cross-strategy equality
/// runs.  Values are scaled to the small-device geometry (bank_busy 2) so
/// the scenarios finish quickly but still overlap refresh windows and the
/// pcm write throttle.
DeviceConfig with_backend(DeviceConfig dc, TimingBackend backend) {
  dc.timing_backend = backend;
  if (backend == TimingBackend::GenericDdr) {
    dc.ddr_tcl = 3;
    dc.ddr_trcd = 2;
    dc.ddr_trp = 2;
    dc.ddr_tras = 6;
  } else if (backend == TimingBackend::PcmLike) {
    dc.pcm_read_cycles = 4;
    dc.pcm_write_cycles = 12;
    dc.pcm_write_gap_cycles = 6;
  }
  return dc;
}

class BackendParity : public ::testing::TestWithParam<Scenario> {};

// The headline proof: the default backend reproduces the pre-refactor
// simulator exactly, scenario by scenario.
TEST_P(BackendParity, HmcDramMatchesPreRefactorGolden) {
  const Scenario& s = GetParam();
  const std::string got = capture(s, scenario_device(s), RunCfg{});
  // Non-vacuousness: the run must have been a real run.
  EXPECT_NE(got.find("completed " + std::to_string(s.requests)),
            std::string::npos);
  expect_matches_golden(s, got);
}

// serial == parallel == fast-forward must hold for the new backends too:
// their gate()/issue() decisions may only depend on absolute cycles, never
// on how the clock engine sliced the work.
TEST_P(BackendParity, SerialParallelFastForwardAgreePerBackend) {
  const Scenario& s = GetParam();
  for (const TimingBackend backend :
       {TimingBackend::GenericDdr, TimingBackend::PcmLike}) {
    SCOPED_TRACE(to_string(backend));
    const DeviceConfig dc = with_backend(scenario_device(s), backend);
    const std::string serial = capture(s, dc, RunCfg{1, false});
    const std::string parallel = capture(s, dc, RunCfg{4, false});
    const std::string skipping = capture(s, dc, RunCfg{2, true});
    EXPECT_EQ(serial, parallel)
        << "parallel execution changed " << to_string(backend) << " timing";
    EXPECT_EQ(serial, skipping)
        << "fast-forward changed " << to_string(backend) << " timing";
  }
}

// Metamorphic identity: a generic_ddr parameterization algebraically equal
// to the hmc_dram model (hit = tCL, miss = max(tRCD+tCL, tRAS)+tRP) must
// reproduce the default backend bit-for-bit — same counters, same bank
// arrays, same histograms.
TEST_P(BackendParity, GenericDdrEquivalenceMappingMatchesHmcDram) {
  const Scenario& s = GetParam();
  const DeviceConfig hmc = scenario_device(s);
  DeviceConfig ddr = hmc;
  ddr.timing_backend = TimingBackend::GenericDdr;
  ddr.ddr_trcd = 0;
  ddr.ddr_tras = 0;
  if (hmc.row_policy == RowPolicy::OpenPage) {
    ddr.ddr_tcl = hmc.row_hit_cycles;
    ddr.ddr_trp = hmc.row_miss_cycles - hmc.row_hit_cycles;
  } else {
    ddr.ddr_tcl = hmc.bank_busy_cycles;
    ddr.ddr_trp = 0;
  }
  EXPECT_EQ(capture(s, ddr, RunCfg{}), capture(s, hmc, RunCfg{}))
      << "generic_ddr with the hmc_dram-equivalent parameters must be "
         "indistinguishable from hmc_dram";
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, BackendParity,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---- pcm_like asymmetry ----------------------------------------------------

struct PcmRun {
  u64 cycles{0};
  u64 throttle_stalls{0};
  LatencyStats read_service;
  LatencyStats write_service;
};

/// Drive `requests` random accesses with the given read mix through a
/// pcm_like device and measure drain time, throttle stalls, and the
/// per-class bank-service histograms (vault arrival to retire).
PcmRun pcm_run(double read_fraction, u64 requests) {
  DeviceConfig dc =
      with_backend(test::small_device(), TimingBackend::PcmLike);
  Simulator sim;
  std::string diag;
  EXPECT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;
  auto sink = std::make_shared<LifecycleSink>();
  sim.add_lifecycle_observer(sink);
  GeneratorConfig gc;
  gc.capacity_bytes = sim.config().device.derived_capacity();
  gc.seed = 777;
  gc.read_fraction = read_fraction;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = requests;
  dcfg.max_cycles = 400000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, requests);

  PcmRun out;
  out.cycles = r.cycles;
  out.throttle_stalls = sim.total_stats().pcm_write_throttle_stalls;
  const auto service = [&](OpClass c) {
    // Bank-service window: vault arrival through retire (VaultQueue +
    // BankConflict), the part of the pipeline the backend owns.
    LatencyStats merged = sink->stats(c, LifecycleSegment::VaultQueue);
    merged.merge(sink->stats(c, LifecycleSegment::BankConflict));
    return merged;
  };
  out.read_service = service(OpClass::Read);
  out.write_service = service(OpClass::Write);
  return out;
}

// The backend's defining asymmetry must show up in measured behavior, not
// just in the configuration: a write-only workload drains slower than the
// identical read-only one, the vault-wide write gap produces throttle
// stalls only when writes flow, and in a mixed run the write bank-service
// histogram sits above the read one.
TEST(BackendMetamorphic, PcmWriteLatencyDominatesReadLatency) {
  const PcmRun reads = pcm_run(1.0, 1500);
  const PcmRun writes = pcm_run(0.0, 1500);
  EXPECT_GT(writes.cycles, reads.cycles)
      << "pcm writes occupy banks 3x longer than reads; an all-write run "
         "cannot drain as fast as an all-read run";
  EXPECT_GT(writes.throttle_stalls, 0u);
  EXPECT_EQ(reads.throttle_stalls, 0u)
      << "the write-bandwidth throttle must never gate reads";

  const PcmRun mixed = pcm_run(0.5, 1500);
  ASSERT_GT(mixed.read_service.count, 0u);
  ASSERT_GT(mixed.write_service.count, 0u);
  const double read_mean = static_cast<double>(mixed.read_service.sum) /
                           static_cast<double>(mixed.read_service.count);
  const double write_mean = static_cast<double>(mixed.write_service.sum) /
                            static_cast<double>(mixed.write_service.count);
  EXPECT_GE(write_mean, read_mean)
      << "mixed-run write bank-service latency must dominate reads";
  EXPECT_GE(mixed.write_service.max, mixed.read_service.min);
}

}  // namespace
}  // namespace hmcsim
