// Checkpoint backward-compatibility: every format version back to 2 must
// restore into the current simulator and replay deterministically.
//
// Committed binary fixtures live under tests/golden/checkpoints/:
//
//   checkpoint_v2.bin  pre-RAS era: no RAS config/stats/registers, no
//                      fault sidecar, no watchdog tail, no per-vault RNG
//   checkpoint_v3.bin  RAS era: full config/stats/registers + RAS tail,
//                      but the DRAM fault RNG is still device-wide
//   checkpoint_v4.bin  per-vault DRAM RNG, but no link-layer protocol
//                      records
//   checkpoint_v5.bin  link-layer config/stats/registers and per-link
//                      retry/token state, still one continuous stream
//   checkpoint_v6.bin  framed container: same records, split into
//                      sections with per-section length + CRC-32K and a
//                      trailer magic — but no timing-backend records
//   checkpoint_v7.bin  adds the backend config knobs, the
//                      pcm_write_throttle_stalls counter, and a per-vault
//                      backend-private state frame (this fixture runs
//                      pcm_like/generic_ddr vault overrides so the frames
//                      carry real state)
//   checkpoint_v8.bin  current: adds the optional CHAO section (this
//                      fixture freezes a machine mid-chaos-storm, events
//                      applied AND still pending, so the campaign cursor,
//                      baselines, and plan bytes are all exercised)
//
// Each fixture snapshots a mid-flight workload — requests in crossbar and
// vault queues, banks busy, memory pages resident — so restore exercises
// every record type, not just the config header.  The tests restore each
// fixture into a fresh simulator, replay 1000 cycles, and require (a) the
// machine drains and retires work, and (b) the replay is bit-identical
// across thread counts and fast-forward settings — proving old-version
// restores land in a fully coherent state, not merely a parseable one.
//
// The v2/v3 writers below mirror the historical put-side of
// src/core/checkpoint.cpp.  To regenerate after an intentional format
// change:
//
//   HMCSIM_UPDATE_GOLDEN=1 ctest -R CheckpointCompat
//
// then commit the new fixtures like any other source change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/plan.hpp"
#include "tests/core/helpers.hpp"
#include "topo/topology.hpp"
#include "workload/driver.hpp"

#ifndef HMCSIM_GOLDEN_DIR
#define HMCSIM_GOLDEN_DIR "tests/golden"
#endif

namespace hmcsim {
namespace {

constexpr char kMagic[8] = {'H', 'M', 'C', 'S', 'I', 'M', 'C', 'K'};
constexpr usize kV2RegCount = 43;
constexpr usize kV3RegCount = 49;
constexpr usize kV2StatsCount = 25;
constexpr usize kV3StatsCount = 33;

std::string fixture_path(u32 version) {
  return std::string(HMCSIM_GOLDEN_DIR) + "/checkpoints/checkpoint_v" +
         std::to_string(version) + ".bin";
}

// ---- legacy put-side (mirrors src/core/checkpoint.cpp's framing) ----------

void put_u64(std::ostream& os, u64 v) {
  u8 bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<u8>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(bytes), 8);
}

void put_u32(std::ostream& os, u32 v) { put_u64(os, v); }
void put_u8(std::ostream& os, u8 v) { put_u64(os, v); }

void put_packet(std::ostream& os, const PacketBuffer& pkt) {
  put_u32(os, pkt.flits);
  for (usize i = 0; i < pkt.word_count(); ++i) put_u64(os, pkt.words[i]);
}

void put_queue_stats(std::ostream& os, const QueueStats& s) {
  put_u64(os, s.total_pushes);
  put_u64(os, s.total_pops);
  put_u64(os, s.rejected_full);
  put_u64(os, s.high_water);
}

void put_lifecycle(std::ostream& os, const PacketLifecycle& lc) {
  put_u64(os, lc.inject);
  put_u64(os, lc.vault_arrive);
  put_u64(os, lc.first_conflict);
  put_u64(os, lc.retire);
  put_u64(os, lc.rsp_register);
  put_u64(os, lc.drain);
  put_u32(os, lc.dev);
  put_u32(os, lc.vault);
  put_u32(os, lc.link);
  put_u32(os, lc.tag);
  put_u8(os, static_cast<u8>(lc.cmd));
}

void put_request_queue(std::ostream& os, const BoundedQueue<RequestEntry>& q) {
  put_u64(os, q.size());
  for (const RequestEntry& e : q) {
    put_packet(os, e.pkt);
    put_u64(os, e.ready_cycle);
    put_u32(os, e.home_dev);
    put_u32(os, e.home_link);
    put_u32(os, e.ingress_link);
    put_u8(os, e.penalty_applied ? 1 : 0);
    put_u8(os, e.retries);
    put_lifecycle(os, e.life);
  }
  put_queue_stats(os, q.stats());
}

void put_response_queue(std::ostream& os,
                        const BoundedQueue<ResponseEntry>& q) {
  put_u64(os, q.size());
  for (const ResponseEntry& e : q) {
    put_packet(os, e.pkt);
    put_u64(os, e.ready_cycle);
    put_u32(os, e.home_dev);
    put_u32(os, e.home_link);
    put_lifecycle(os, e.life);
  }
  put_queue_stats(os, q.stats());
}

void put_stats(std::ostream& os, const DeviceStats& s, u32 version) {
  const u64 fields[] = {s.reads, s.writes, s.atomics, s.mode_ops,
                        s.custom_ops, s.bytes_read, s.bytes_written,
                        s.responses, s.error_responses, s.bank_conflicts,
                        s.xbar_rqst_stalls, s.xbar_rsp_stalls,
                        s.vault_rsp_stalls, s.latency_penalties, s.route_hops,
                        s.misroutes, s.link_errors, s.link_retries,
                        s.refreshes, s.row_hits, s.row_misses, s.sends,
                        s.send_stalls, s.recvs, s.flow_packets,
                        s.dram_sbes, s.dram_dbes, s.scrub_steps,
                        s.scrub_corrections, s.scrub_uncorrectables,
                        s.vault_failures, s.vault_remaps, s.degraded_drops,
                        s.link_crc_errors, s.link_seq_errors,
                        s.link_abort_entries, s.link_irtry_tx,
                        s.link_irtry_rx, s.link_pret_tx, s.link_tret_tx,
                        s.link_replayed_flits, s.link_token_stalls,
                        s.link_retrain_cycles, s.link_failures,
                        s.link_tokens_debited, s.link_tokens_returned};
  const usize count = version >= 5   ? std::size(fields)
                      : version >= 3 ? kV3StatsCount
                                     : kV2StatsCount;
  for (usize i = 0; i < count; ++i) put_u64(os, fields[i]);
}

void put_device_config(std::ostream& os, const DeviceConfig& c, u32 version) {
  put_u32(os, c.num_links);
  put_u32(os, c.banks_per_vault);
  put_u32(os, c.drams_per_bank);
  put_u64(os, c.xbar_depth);
  put_u64(os, c.vault_depth);
  put_u64(os, c.capacity_bytes);
  put_u8(os, static_cast<u8>(c.map_mode));
  put_u64(os, c.max_block_bytes);
  put_u32(os, c.bank_busy_cycles);
  put_u32(os, c.xbar_flits_per_cycle);
  put_u32(os, c.vault_drain_limit);
  put_u32(os, c.nonlocal_penalty_cycles);
  put_u32(os, c.conflict_window);
  put_u8(os, static_cast<u8>(c.vault_schedule));
  put_u32(os, c.link_error_rate_ppm);
  put_u64(os, c.fault_seed);
  put_u32(os, c.link_retry_limit);
  put_u32(os, c.refresh_interval_cycles);
  put_u32(os, c.refresh_busy_cycles);
  put_u8(os, static_cast<u8>(c.row_policy));
  put_u32(os, c.row_hit_cycles);
  put_u32(os, c.row_miss_cycles);
  put_u8(os, c.model_data ? 1 : 0);
  if (version >= 3) {
    put_u32(os, c.dram_sbe_rate_ppm);
    put_u32(os, c.dram_dbe_rate_ppm);
    put_u32(os, c.scrub_interval_cycles);
    put_u64(os, c.scrub_window_bytes);
    put_u32(os, c.vault_fail_threshold);
    put_u64(os, c.failed_vault_mask);
    put_u8(os, c.vault_remap ? 1 : 0);
    put_u32(os, c.watchdog_cycles);
  }
  if (version >= 5) {
    put_u8(os, c.link_protocol ? 1 : 0);
    put_u32(os, c.link_tokens);
    put_u32(os, c.link_retry_buffer_flits);
    put_u32(os, c.link_retry_latency);
    put_u32(os, c.link_error_burst_len);
    put_u32(os, c.link_stuck_interval_cycles);
    put_u32(os, c.link_stuck_window_cycles);
    put_u32(os, c.link_fail_threshold);
  }
}

void put_link_proto(std::ostream& os, const LinkProtoState& st) {
  put_u64(os, static_cast<u64>(st.tokens));
  put_u64(os, st.tokens_debited);
  put_u64(os, st.tokens_returned);
  put_u32(os, st.retry_buf_flits);
  put_u8(os, st.tx_frp);
  put_u8(os, st.rx_rrp);
  put_u8(os, st.tx_seq);
  put_u8(os, st.rx_seq);
  put_u64(os, st.retrain_until);
  put_u32(os, st.burst_remaining);
  put_u32(os, st.fail_count);
  put_u8(os, st.dead ? 1 : 0);
  put_u8(os, st.replay_pending ? 1 : 0);
  if (st.replay_pending) {
    put_packet(os, st.replay.pkt);
    put_u64(os, st.replay.ready_cycle);
    put_u32(os, st.replay.home_dev);
    put_u32(os, st.replay.home_link);
    put_u32(os, st.replay.ingress_link);
    put_u8(os, st.replay.penalty_applied ? 1 : 0);
    put_u8(os, st.replay.retries);
    put_lifecycle(os, st.replay.life);
  }
}

/// Serialize `sim` in a historical checkpoint format (version 2..5).
/// Mirrors what those writers emitted: one continuous unframed stream, the
/// register prefix of the era, link-layer records only from v5, per-vault
/// RNG only from v4, and (for v2) no RAS or watchdog records.
void write_legacy_checkpoint(const Simulator& sim, u32 version,
                             std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  put_u32(os, version);
  put_u32(os, sim.num_devices());
  put_device_config(os, sim.config().device, version);

  const Topology& topo = sim.topology();
  put_u32(os, topo.num_devices());
  put_u32(os, topo.links_per_device());
  for (u32 d = 0; d < topo.num_devices(); ++d) {
    for (u32 l = 0; l < topo.links_per_device(); ++l) {
      const LinkEndpoint& e = topo.endpoint(CubeId{d}, LinkId{l});
      put_u8(os, static_cast<u8>(e.kind));
      put_u32(os, e.peer_dev);
      put_u32(os, e.peer_link);
    }
  }

  put_u64(os, sim.now());

  for (u32 d = 0; d < sim.num_devices(); ++d) {
    const Device& dev = sim.device(d);
    put_stats(os, dev.stats, version);

    const RegisterFile::Snapshot regs = dev.regs.snapshot();
    const usize reg_count = version >= 5   ? regs.values.size()
                            : version >= 3 ? kV3RegCount
                                           : kV2RegCount;
    for (usize r = 0; r < reg_count; ++r) put_u64(os, regs.values[r]);
    for (usize r = 0; r < reg_count; ++r) {
      put_u8(os, regs.pending_self_clear[r] ? 1 : 0);
    }

    std::vector<u64> page_indices;
    page_indices.reserve(dev.store.resident_pages());
    dev.store.for_each_page([&](u64 index, std::span<const u8>) {
      page_indices.push_back(index);
    });
    std::sort(page_indices.begin(), page_indices.end());
    put_u64(os, page_indices.size());
    std::vector<u8> page_bytes(SparseStore::kPageBytes);
    for (const u64 index : page_indices) {
      put_u64(os, index);
      (void)dev.store.read(index * SparseStore::kPageBytes, page_bytes);
      os.write(reinterpret_cast<const char*>(page_bytes.data()),
               static_cast<std::streamsize>(page_bytes.size()));
    }

    for (const LinkState& link : dev.links) {
      put_request_queue(os, link.rqst);
      put_response_queue(os, link.rsp);
      put_u64(os, link.rqst_flits_forwarded);
      put_u64(os, link.rsp_flits_forwarded);
      put_u64(os, static_cast<u64>(link.rqst_budget));
      put_u64(os, static_cast<u64>(link.rsp_budget));
      if (version >= 5) put_link_proto(os, link.proto);
    }
    for (const VaultState& vault : dev.vaults) {
      put_request_queue(os, vault.rqst);
      put_response_queue(os, vault.rsp);
      for (const Cycle busy : vault.bank_busy_until) put_u64(os, busy);
      for (const u64 row : vault.open_row) put_u64(os, row);
      // No per-vault DRAM RNG before version 4.
      if (version >= 4) put_u64(os, vault.dram_rng.state());
    }
    put_response_queue(os, dev.mode_rsp);

    if (version >= 3) {
      put_u64(os, dev.fault_rng.state());
      put_u64(os, dev.store.fault_count());
      dev.store.for_each_fault([&](u64 word, u64 data_flips, u8 check_flips) {
        put_u64(os, word);
        put_u64(os, data_flips);
        put_u8(os, check_flips);
      });
      put_u64(os, dev.ras.failed_vaults);
      for (const u32 count : dev.ras.vault_uncorrectable) put_u32(os, count);
      put_u64(os, dev.ras.scrub_cursor);
      put_u64(os, dev.ras.scrub_passes);
      put_u64(os, dev.ras.last_error_addr);
      put_u8(os, dev.ras.last_error_stat);
    }
  }

  if (version >= 3) {
    put_u8(os, sim.watchdog_fired() ? 1 : 0);
    put_u32(os, 0);  // stall cycles: fixture sims never configure a watchdog
    put_u64(os, 0);  // frozen fingerprint likewise unused
  }
}

// ---- fixture workload ------------------------------------------------------

/// A v2-era fixture must not depend on RAS; v3+ fixtures turn the storm on;
/// the v5 fixture additionally runs the link retry/token protocol so the
/// per-link LinkProtoState records are exercised mid-recovery.
DeviceConfig fixture_device(u32 version) {
  DeviceConfig dc = test::small_device();
  if (version >= 3) {
    dc.dram_sbe_rate_ppm = 20000;
    dc.dram_dbe_rate_ppm = 4000;
    dc.scrub_interval_cycles = 128;
    dc.vault_fail_threshold = 4;
    dc.link_error_rate_ppm = 2000;
    dc.link_retry_limit = 3;
  }
  if (version >= 5) {
    dc.link_protocol = true;
    dc.link_retry_latency = 6;
    dc.link_error_burst_len = 2;
  }
  if (version >= 7) {
    // Mixed per-vault backends with a write gap so the v7 fixture's
    // backend-state frames hold live (nonzero) private state.
    dc.vault_backends = {{1, TimingBackend::PcmLike},
                         {2, TimingBackend::GenericDdr}};
    dc.pcm_write_gap_cycles = 12;
  }
  return dc;
}

/// Drive a seeded workload and stop mid-flight, leaving requests in
/// crossbar and vault queues so the fixture exercises every record type.
void build_fixture_state(u32 version, Simulator& sim) {
  ASSERT_EQ(sim.init_simple(fixture_device(version)), Status::Ok);
  if (version >= 8) {
    // Freeze mid-campaign: some events already applied (the storm is open
    // when the fixture snapshots), one far-future event still pending, so
    // the CHAO cursor sits strictly inside the plan.
    const char* kPlan =
        "at 10 link_error_ppm 3000\n"
        "at 30 dram_sbe_ppm 9000\n"
        "storm 40 50000\n"
        "  wedge 1\n"
        "  host_timeout 500\n"
        "end\n"
        "at 100000 link_burst 4\n";
    ChaosPlanParseResult parsed = parse_chaos_plan_string(kPlan);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::string diag;
    ASSERT_EQ(sim.set_chaos_plan(std::move(parsed.plan), &diag), Status::Ok)
        << diag;
  }
  GeneratorConfig gc;
  // Confine traffic to a 256 KiB window: the low-interleave map still
  // spreads it across every vault and bank, but the resident-page count is
  // bounded so the committed fixtures stay small.
  gc.capacity_bytes =
      std::min<u64>(sim.config().device.derived_capacity(), u64{1} << 18);
  gc.seed = 20240 + version;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.max_cycles = 100000;
  HostDriver driver(sim, gen, dcfg);
  DriverResult r;
  for (int steps = 0; steps < 120 && driver.step(r); ++steps) {
  }
  ASSERT_FALSE(sim.quiescent())
      << "fixture must snapshot a busy machine, not a drained one";
}

void regenerate_fixture(u32 version) {
  Simulator sim;
  build_fixture_state(version, sim);
  std::ofstream out(fixture_path(version), std::ios::binary);
  ASSERT_TRUE(out) << "cannot write " << fixture_path(version)
                   << " (does tests/golden/checkpoints/ exist?)";
  if (version >= 6) {
    ASSERT_EQ(sim.save_checkpoint(out), Status::Ok);
  } else {
    write_legacy_checkpoint(sim, version, out);
    ASSERT_TRUE(out);
  }
}

std::string read_fixture(u32 version) {
  std::ifstream in(fixture_path(version), std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << fixture_path(version)
                  << "; regenerate with HMCSIM_UPDATE_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Defined first in the suite so regeneration happens before the restore
// tests read the files back.
TEST(CheckpointCompat, RegenerateFixtures) {
  if (std::getenv("HMCSIM_UPDATE_GOLDEN") == nullptr) {
    GTEST_SKIP() << "set HMCSIM_UPDATE_GOLDEN=1 to rewrite fixtures";
  }
  // v6 and v7 are deliberately absent: save_checkpoint now writes v8, so
  // the committed v6/v7 fixtures are frozen — regenerating them would
  // silently turn them into v8 streams and lose the coverage.
  for (const u32 version : {2u, 3u, 4u, 5u, 8u}) {
    SCOPED_TRACE("v" + std::to_string(version));
    regenerate_fixture(version);
  }
}

struct ReplayOutcome {
  Cycle start{0};
  Cycle end{0};
  u64 retired_delta{0};
  std::string checkpoint;
};

ReplayOutcome restore_and_replay(const std::string& bytes, u32 threads,
                                 bool fast_forward) {
  ReplayOutcome out;
  Simulator sim;
  // Pre-init with the desired execution strategy: restore replaces the
  // simulated config from the stream but keeps sim_threads/fast_forward.
  DeviceConfig dc = test::small_device();
  dc.sim_threads = threads;
  dc.fast_forward = fast_forward;
  EXPECT_EQ(sim.init_simple(dc), Status::Ok);
  std::istringstream is(bytes);
  EXPECT_EQ(sim.restore_checkpoint(is), Status::Ok);
  if (sim.now() == 0) return out;  // restore failed; EXPECTs already flagged
  out.start = sim.now();
  const u64 retired_before = sim.total_stats().retired();
  for (int i = 0; i < 1000; ++i) sim.clock();
  out.end = sim.now();
  out.retired_delta = sim.total_stats().retired() - retired_before;
  std::ostringstream ckpt;
  EXPECT_EQ(sim.save_checkpoint(ckpt), Status::Ok);
  out.checkpoint = std::move(ckpt).str();
  return out;
}

class CheckpointCompatVersions : public ::testing::TestWithParam<u32> {};

TEST_P(CheckpointCompatVersions, RestoresAndReplays1kCycles) {
  const u32 version = GetParam();
  const std::string bytes = read_fixture(version);
  ASSERT_FALSE(bytes.empty());

  const ReplayOutcome ref = restore_and_replay(bytes, 1, false);
  ASSERT_GT(ref.start, 0u) << "fixture restored to cycle 0 — empty state?";
  EXPECT_EQ(ref.end, ref.start + 1000);
  // The fixture froze a busy machine: replay must retire the in-flight
  // work, proving the restored queues/banks/registers are coherent.
  EXPECT_GT(ref.retired_delta, 0u);
  ASSERT_FALSE(ref.checkpoint.empty());

  // Old-version restores must land in a state the *current* engine treats
  // as canonical: replays agree bit-for-bit across thread counts and
  // fast-forward settings.
  for (const u32 threads : {2u, 4u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const ReplayOutcome got = restore_and_replay(bytes, threads, true);
    EXPECT_EQ(got.end, ref.end);
    EXPECT_EQ(got.retired_delta, ref.retired_delta);
    EXPECT_EQ(got.checkpoint, ref.checkpoint);
  }
}

TEST_P(CheckpointCompatVersions, ResaveUpgradesToCurrentVersion) {
  const u32 version = GetParam();
  const std::string bytes = read_fixture(version);
  ASSERT_FALSE(bytes.empty());

  Simulator sim;
  std::istringstream is(bytes);
  ASSERT_EQ(sim.restore_checkpoint(is), Status::Ok);
  std::ostringstream resaved;
  ASSERT_EQ(sim.save_checkpoint(resaved), Status::Ok);
  const std::string upgraded = std::move(resaved).str();

  // The re-save is a current-version stream that round-trips exactly.
  Simulator again;
  std::istringstream is2(upgraded);
  ASSERT_EQ(again.restore_checkpoint(is2), Status::Ok);
  std::ostringstream resaved2;
  ASSERT_EQ(again.save_checkpoint(resaved2), Status::Ok);
  EXPECT_EQ(std::move(resaved2).str(), upgraded);

  if (version == 8) {
    // Same-version fixtures must survive restore→save byte-identically.
    EXPECT_EQ(upgraded, bytes);
  } else {
    EXPECT_NE(upgraded, bytes) << "legacy stream cannot equal a v8 stream";
  }
}

TEST(CheckpointCompat, UnknownVersionsStillRejected) {
  // Truncate-proofing: versions below 2 and above the current one fail
  // cleanly rather than misparsing fields at shifted offsets.
  const std::string bytes = read_fixture(4);
  ASSERT_GT(bytes.size(), 16u);
  for (const u64 bad_version : {0ull, 1ull, 9ull, 255ull}) {
    std::string mutated = bytes;
    for (int i = 0; i < 8; ++i) {
      mutated[8 + i] = static_cast<char>(bad_version >> (8 * i));
    }
    Simulator sim;
    std::istringstream is(mutated);
    EXPECT_EQ(sim.restore_checkpoint(is), Status::MalformedPacket)
        << "version " << bad_version;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVersions, CheckpointCompatVersions,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hmcsim
