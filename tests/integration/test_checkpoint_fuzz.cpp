// Checkpoint restore under hostile input: a structure-aware mutator
// derives >10k corrupted checkpoints from a valid base — truncations, bit
// flips, word-level splices, forged lengths and versions — and every one
// must come back as a typed CheckpointError.  No abort, no sanitizer
// report, no silent acceptance of damaged state (the section CRCs make a
// mutated-but-accepted stream effectively impossible).
//
// Labeled fuzz+slow, not tier1: the loop is minutes-scale under
// sanitizers and the merge gate covers the same paths via
// test_checkpoint_compat.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/random.hpp"
#include "core/simulator.hpp"
#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

/// A mid-flight simulator with host-driver state attached: every section
/// type (CFG, TOPO, CLK, DEVC, WDOG, HOST) is present in the base stream.
/// Mixed per-vault timing backends put non-empty v7 backend-state frames
/// (kind + length + blob) and the CFG override list in the mutator's
/// blast radius too.
std::string make_base_checkpoint() {
  DeviceConfig dc = test::small_device();
  dc.vault_backends = {{1, TimingBackend::PcmLike},
                       {2, TimingBackend::GenericDdr}};
  dc.pcm_write_gap_cycles = 12;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = 1u << 20;
  gc.seed = 7;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 400;
  HostDriver driver(sim, gen, dcfg);
  DriverResult result;
  for (int i = 0; i < 200 && driver.step(result); ++i) {}
  std::ostringstream os;
  const std::string host = save_host_state(driver, result);
  EXPECT_EQ(sim.save_checkpoint(os, nullptr, host), Status::Ok);
  return os.str();
}

/// One structure-aware mutation.  The container is a sequence of 8-byte LE
/// words, so word-aligned edits with boundary values (0, ~0, off-by-one)
/// probe length/count/version handling far better than plain bit noise —
/// which is still mixed in for coverage of the byte-level paths.
std::string mutate(const std::string& base, SplitMix64& rng) {
  std::string m = base;
  if (m.size() < 16) {  // too short for word edits (stacked truncation)
    m += static_cast<char>(rng.next_below(256));
    return m;
  }
  switch (rng.next_below(6)) {
    case 0:  // truncate anywhere, including inside the magic
      m.resize(rng.next_below(m.size()));
      break;
    case 1:  // flip a single bit
      m[rng.next_below(m.size())] ^=
          static_cast<char>(1u << rng.next_below(8));
      break;
    case 2: {  // overwrite an aligned word with a boundary value
      const u64 values[] = {0ull,          ~0ull,         1ull,
                            m.size(),      m.size() + 1,  u64{1} << 32,
                            (u64{1} << 32) + 1, 0x7fffffffffffffffull};
      const u64 v = values[rng.next_below(std::size(values))];
      const usize word = rng.next_below(m.size() / 8);
      for (usize b = 0; b < 8; ++b) {
        m[word * 8 + b] = static_cast<char>(v >> (8 * b));
      }
      break;
    }
    case 3: {  // splice: duplicate a random chunk over another position
      const usize len = 1 + rng.next_below(256);
      const usize src = rng.next_below(m.size());
      const usize dst = rng.next_below(m.size());
      for (usize i = 0; i < len && src + i < m.size() && dst + i < m.size();
           ++i) {
        m[dst + i] = m[src + i];
      }
      break;
    }
    case 4: {  // forge the version word (offset 8)
      const u64 v = rng.next_below(2) == 0 ? rng.next_below(300)
                                           : rng.next();
      for (usize b = 0; b < 8; ++b) {
        m[8 + b] = static_cast<char>(v >> (8 * b));
      }
      break;
    }
    case 5: {  // append garbage past the trailer
      const usize len = 1 + rng.next_below(64);
      for (usize i = 0; i < len; ++i) {
        m += static_cast<char>(rng.next_below(256));
      }
      break;
    }
  }
  return m;
}

TEST(CheckpointFuzz, MutatedCheckpointsAlwaysFailTyped) {
  const std::string base = make_base_checkpoint();
  ASSERT_GT(base.size(), 64u);
  SplitMix64 rng(0xC4EC4);

  int rejected = 0;
  int accepted = 0;
  for (int iter = 0; iter < 12000; ++iter) {
    std::string m = mutate(base, rng);
    if (rng.next_below(4) == 0) m = mutate(m, rng);  // stacked damage
    if (m == base) continue;

    std::istringstream is(m);
    Simulator sim;
    CheckpointError err;
    std::string host_blob;
    const Status st = sim.restore_checkpoint(is, &err, &host_blob);
    if (ok(st)) {
      // Acceptance is legal in exactly one case: the damage lives entirely
      // past the trailer, where a stream consumer never reads (v2..v5
      // checkpoints are open-ended streams, so the trailer must terminate
      // parsing).  Any accepted input whose *consumed* bytes differ from
      // the base is silent corruption — the bug this fuzzer exists for.
      ++accepted;
      ASSERT_GT(m.size(), base.size()) << "iter " << iter;
      ASSERT_EQ(m.compare(0, base.size(), base), 0)
          << "iter " << iter << ": mutation inside the stream was accepted";
      EXPECT_TRUE(sim.initialized());
    } else {
      ++rejected;
      EXPECT_NE(err.code, CheckpointErrorCode::None)
          << "untyped failure at iter " << iter;
      EXPECT_FALSE(err.message().empty());
    }
  }
  // Mutations that touch consumed bytes must all land in `rejected` (about
  // 5 of the 6 mutation classes); `accepted` is the unread-tail class.
  EXPECT_GT(rejected, 9000);
  EXPECT_GT(accepted, 0);
}

TEST(CheckpointFuzz, MutatedHostBlobsAlwaysFailCleanly) {
  Simulator sim = test::make_simple_sim();
  GeneratorConfig gc;
  gc.capacity_bytes = 1u << 20;
  gc.seed = 7;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 400;
  HostDriver driver(sim, gen, dcfg);
  DriverResult result;
  for (int i = 0; i < 200 && driver.step(result); ++i) {}
  const std::string base = save_host_state(driver, result);
  ASSERT_FALSE(base.empty());

  SplitMix64 rng(0xB10B);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string m = mutate(base, rng);
    if (m == base) continue;
    // A fresh driver over a fresh identically-built sim, as resume does.
    Simulator sim2 = test::make_simple_sim();
    RandomAccessGenerator gen2(gc);
    HostDriver driver2(sim2, gen2, dcfg);
    DriverResult result2;
    (void)restore_host_state(m, driver2, result2);  // must not crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace hmcsim
