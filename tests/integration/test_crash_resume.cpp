// Kill-mid-write resume proof: a run interrupted at an arbitrary point in
// its checkpoint schedule must resume bit-identical to a run that was
// never interrupted — same final checkpoint bytes, same driver counters,
// same latency histogram, and the same bytes for every generation written
// after the resume point.
//
// The harness replays >=50 randomized interruption scenarios against one
// uninterrupted reference: a clean kill between generations, a torn
// (truncated or bit-flipped) newest generation that resume must fall back
// past, and `*.tmp.*` debris that the scanner must ignore — exactly the
// disk states a SIGKILL inside io::atomic_write_file can leave.  The
// out-of-process variant (HMCSIM_FAILPOINT=crash:<bytes> against
// tools/hmcsim_run) is exercised by the CI crash-recovery job.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/random.hpp"
#include "core/simulator.hpp"
#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

namespace fs = std::filesystem;

constexpr u64 kRequests = 3000;
constexpr u64 kInterval = 16;  // cycles between generations

DeviceConfig harness_device() {
  DeviceConfig dc = test::small_device();
  dc.watchdog_cycles = 0;
  return dc;
}

GeneratorConfig harness_generator() {
  GeneratorConfig gc;
  gc.capacity_bytes = 1u << 22;
  gc.seed = 11;
  return gc;
}

DriverConfig harness_driver() {
  DriverConfig dcfg;
  dcfg.total_requests = kRequests;
  return dcfg;
}

/// Mirror of the tools/hmcsim_run drive loop: step, and at every interval
/// boundary write generation `next_gen` into `dir`.  Returns the final
/// accumulated result.
DriverResult drive_with_checkpoints(Simulator& sim, HostDriver& driver,
                                    DriverResult r, const std::string& dir,
                                    u64 next_gen) {
  u64 next_ckpt = (sim.now() / kInterval + 1) * kInterval;
  while (driver.step(r)) {
    if (sim.now() < next_ckpt) continue;
    CheckpointError err;
    EXPECT_EQ(sim.save_checkpoint_file(
                  checkpoint_generation_path(dir, next_gen), &err,
                  save_host_state(driver, r)),
              Status::Ok)
        << err.message();
    ++next_gen;
    next_ckpt = (sim.now() / kInterval + 1) * kInterval;
  }
  driver.finish(r);
  return r;
}

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
}

/// Final-state fingerprint: the complete checkpoint bytes (device state,
/// stats, registers, memory) plus the driver-side result, which carries
/// the latency histogram.
std::string fingerprint(const Simulator& sim, const HostDriver& driver,
                        const DriverResult& r) {
  std::ostringstream os;
  EXPECT_EQ(sim.save_checkpoint(os, nullptr, save_host_state(driver, r)),
            Status::Ok);
  return os.str();
}

class CrashResume : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("hmcsim_crash_" + std::to_string(::getpid()));
    fs::create_directories(root_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  fs::path root_;
};

TEST_F(CrashResume, FiftyRandomizedInterruptionPointsResumeBitIdentical) {
  // ---- the uninterrupted reference ----------------------------------------
  const std::string ref_dir = (root_ / "ref").string();
  fs::create_directories(ref_dir);
  Simulator ref_sim;
  std::string diag;
  ASSERT_EQ(ref_sim.init_simple(harness_device(), &diag), Status::Ok)
      << diag;
  GeneratorConfig gc = harness_generator();
  RandomAccessGenerator ref_gen(gc);
  HostDriver ref_driver(ref_sim, ref_gen, harness_driver());
  const DriverResult ref_result = drive_with_checkpoints(
      ref_sim, ref_driver, DriverResult{}, ref_dir, 0);
  ASSERT_EQ(ref_result.completed, kRequests);
  const std::string ref_final =
      fingerprint(ref_sim, ref_driver, ref_result);

  const std::vector<CheckpointGeneration> gens =
      list_checkpoint_generations(ref_dir);
  ASSERT_GE(gens.size(), 4u) << "reference run produced too few "
                                "generations for a meaningful harness";
  std::map<u64, std::string> gen_bytes;
  for (const CheckpointGeneration& g : gens) {
    gen_bytes[g.gen] = slurp(g.path);
  }

  // ---- randomized interruption scenarios ----------------------------------
  SplitMix64 rng(0xDEAD);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string dir =
        (root_ / ("trial" + std::to_string(trial))).string();
    fs::create_directories(dir);

    // The run died somewhere after generation `g` landed.
    const u64 g = rng.next_below(gens.size());
    for (u64 i = 0; i <= g; ++i) {
      spit(checkpoint_generation_path(dir, i), gen_bytes[i]);
    }
    // In 2 of 3 trials the death was mid-write of generation g+1: leave a
    // torn or bit-rotted next file (resume must fall back past it) or
    // `.tmp.` debris (the scanner must ignore it).
    const u64 scenario = rng.next_below(3);
    if (scenario == 1 && g + 1 < gens.size()) {
      std::string torn = gen_bytes[g + 1];
      if (rng.next_below(2) == 0) {
        torn.resize(rng.next_below(torn.size()));  // truncated
      } else {
        torn[rng.next_below(torn.size())] ^= 0x40;  // bit-rotted
      }
      spit(checkpoint_generation_path(dir, g + 1), torn);
    } else if (scenario == 2) {
      spit(dir + "/ckpt-000000000099.bin.tmp.12345", "torn temp debris");
    }

    // ---- resume ------------------------------------------------------------
    Simulator sim;
    u64 resumed_gen = 0;
    std::string host_blob;
    CheckpointError err;
    ASSERT_EQ(resume_from_directory(sim, dir, &resumed_gen, &host_blob,
                                    &err),
              Status::Ok)
        << "trial " << trial << ": " << err.message();
    ASSERT_EQ(resumed_gen, g) << "trial " << trial
                              << ": resumed the wrong generation";

    RandomAccessGenerator gen2(gc);
    HostDriver driver(sim, gen2, harness_driver());
    DriverResult r;
    ASSERT_EQ(restore_host_state(host_blob, driver, r), Status::Ok)
        << "trial " << trial;

    const DriverResult final_r =
        drive_with_checkpoints(sim, driver, r, dir, g + 1);

    // ---- bit-identity ------------------------------------------------------
    EXPECT_EQ(final_r.completed, ref_result.completed) << "trial " << trial;
    EXPECT_EQ(final_r.errors, ref_result.errors) << "trial " << trial;
    EXPECT_EQ(final_r.cycles, ref_result.cycles) << "trial " << trial;
    EXPECT_EQ(final_r.latency.count, ref_result.latency.count);
    EXPECT_EQ(final_r.latency.sum, ref_result.latency.sum);
    EXPECT_EQ(final_r.latency.min, ref_result.latency.min);
    EXPECT_EQ(final_r.latency.max, ref_result.latency.max);
    ASSERT_EQ(fingerprint(sim, driver, final_r), ref_final)
        << "trial " << trial << " diverged after resuming generation " << g;

    // Every generation re-written after the resume point must match the
    // reference bytes: the interrupted schedule converges onto the
    // uninterrupted one, not merely onto an equivalent end state.
    for (const CheckpointGeneration& after :
         list_checkpoint_generations(dir)) {
      if (after.gen <= g) continue;
      ASSERT_NE(gen_bytes.find(after.gen), gen_bytes.end())
          << "trial " << trial << " wrote unexpected generation "
          << after.gen;
      EXPECT_EQ(slurp(after.path), gen_bytes[after.gen])
          << "trial " << trial << " generation " << after.gen;
    }

    std::error_code ec;
    fs::remove_all(dir, ec);
  }
}

TEST_F(CrashResume, ResumeFromEmptyDirectoryReportsNoResponse) {
  const std::string dir = (root_ / "empty").string();
  fs::create_directories(dir);
  Simulator sim;
  CheckpointError err;
  EXPECT_EQ(resume_from_directory(sim, dir, nullptr, nullptr, &err),
            Status::NoResponse);
  // Ditto for a directory that does not exist at all.
  EXPECT_EQ(resume_from_directory(sim, (root_ / "nope").string()),
            Status::NoResponse);
}

TEST_F(CrashResume, AllGenerationsDamagedSurfacesNewestError) {
  const std::string dir = (root_ / "alldead").string();
  fs::create_directories(dir);
  spit(checkpoint_generation_path(dir, 0), "not a checkpoint");
  spit(checkpoint_generation_path(dir, 1), "also not a checkpoint");
  Simulator sim;
  CheckpointError err;
  const Status st = resume_from_directory(sim, dir, nullptr, nullptr, &err);
  EXPECT_FALSE(ok(st));
  EXPECT_NE(st, Status::NoResponse);
  EXPECT_EQ(err.code, CheckpointErrorCode::BadMagic);
  // The message names the file that was tried (the newest generation).
  EXPECT_NE(err.message().find("ckpt-000000000001.bin"), std::string::npos)
      << err.message();
}

}  // namespace
}  // namespace hmcsim
