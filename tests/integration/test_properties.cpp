// Property-style parameterized sweeps: structural and conservation
// invariants that must hold for EVERY device configuration the simulator
// accepts.
#include <gtest/gtest.h>

#include <tuple>

#include "tests/core/helpers.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

// (links, banks, xbar_depth, vault_depth)
using ConfigTuple = std::tuple<u32, u32, u32, u32>;

class ConfigSweep : public ::testing::TestWithParam<ConfigTuple> {
 protected:
  DeviceConfig make_config() const {
    const auto [links, banks, xbar, vault] = GetParam();
    DeviceConfig dc;
    dc.num_links = links;
    dc.banks_per_vault = banks;
    dc.xbar_depth = xbar;
    dc.vault_depth = vault;
    dc.bank_busy_cycles = 4;
    dc.model_data = false;
    return dc;
  }
};

TEST_P(ConfigSweep, StructureMatchesGeometry) {
  const DeviceConfig dc = make_config();
  ASSERT_EQ(dc.validate(), Status::Ok);
  Simulator sim = test::make_simple_sim(dc);
  const Device& dev = sim.device(0);
  EXPECT_EQ(dev.links.size(), dc.num_links);
  EXPECT_EQ(dev.vaults.size(), dc.num_vaults());
  for (const auto& link : dev.links) {
    EXPECT_EQ(link.rqst.capacity(), dc.xbar_depth);
    EXPECT_EQ(link.rsp.capacity(), dc.xbar_depth);
  }
  for (const auto& vault : dev.vaults) {
    EXPECT_EQ(vault.rqst.capacity(), dc.vault_depth);
    EXPECT_EQ(vault.bank_busy_until.size(), dc.banks_per_vault);
  }
  EXPECT_EQ(dev.store.capacity(), dc.derived_capacity());
}

TEST_P(ConfigSweep, ConservationUnderRandomLoad) {
  // No request is ever lost or duplicated, for any geometry/queue sizing.
  const DeviceConfig dc = make_config();
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.seed = static_cast<u32>(std::get<0>(GetParam()) * 1000 +
                             std::get<1>(GetParam()));
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 1500;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();

  ASSERT_FALSE(r.hit_cycle_cap);
  EXPECT_EQ(r.sent, 1500u);
  EXPECT_EQ(r.completed, 1500u);
  EXPECT_EQ(r.errors, 0u);
  const DeviceStats s = sim.total_stats();
  EXPECT_EQ(s.retired(), 1500u);
  EXPECT_EQ(s.responses, 1500u);
  EXPECT_EQ(s.recvs, 1500u);
  EXPECT_TRUE(sim.quiescent());
}

TEST_P(ConfigSweep, EveryVaultEventuallyServesTraffic) {
  const DeviceConfig dc = make_config();
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = dc.num_vaults() * 64;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  (void)driver.run();
  for (u32 v = 0; v < dc.num_vaults(); ++v) {
    EXPECT_GT(sim.device(0).vaults[v].rqst.stats().total_pops, 0u)
        << "vault " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConfigSweep,
    ::testing::Values(ConfigTuple{4, 8, 8, 4}, ConfigTuple{4, 8, 128, 64},
                      ConfigTuple{4, 16, 16, 8}, ConfigTuple{8, 8, 16, 8},
                      ConfigTuple{8, 16, 32, 16}, ConfigTuple{4, 8, 1, 1},
                      ConfigTuple{8, 16, 2, 1}),
    [](const auto& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "B" +
             std::to_string(std::get<1>(info.param)) + "X" +
             std::to_string(std::get<2>(info.param)) + "V" +
             std::to_string(std::get<3>(info.param));
    });

// Address-map-mode sweep: every map mode preserves conservation and the
// low-interleave map minimizes bank conflicts for sequential traffic.
class MapModeSweep : public ::testing::TestWithParam<AddrMapMode> {};

TEST_P(MapModeSweep, ConservationHolds) {
  DeviceConfig dc = test::small_device();
  dc.map_mode = GetParam();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  StreamGenerator gen(gc);  // sequential: the worst case for linear maps
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_FALSE(r.hit_cycle_cap);
}

INSTANTIATE_TEST_SUITE_P(Modes, MapModeSweep,
                         ::testing::Values(AddrMapMode::LowInterleave,
                                           AddrMapMode::BankFirst,
                                           AddrMapMode::Linear),
                         [](const auto& info) {
                           switch (info.param) {
                             case AddrMapMode::LowInterleave:
                               return "LowInterleave";
                             case AddrMapMode::BankFirst:
                               return "BankFirst";
                             case AddrMapMode::Linear:
                               return "Linear";
                           }
                           return "Unknown";
                         });

TEST(MapModeProperty, LowInterleaveBeatsLinearOnSequentialTraffic) {
  // The spec's default map exists to avoid bank conflicts on sequential
  // streams (§III.B); the linear map serializes everything through one
  // vault/bank and must be dramatically slower.
  const auto run_cycles = [](AddrMapMode mode) {
    DeviceConfig dc = test::small_device();
    dc.map_mode = mode;
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    StreamGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 2000;
    dcfg.max_cycles = 1000000;
    HostDriver driver(sim, gen, dcfg);
    return driver.run().cycles;
  };
  const Cycle low = run_cycles(AddrMapMode::LowInterleave);
  const Cycle linear = run_cycles(AddrMapMode::Linear);
  EXPECT_LT(low * 3, linear);
}

// Vault scheduling sweep: both schedulers conserve traffic; strict FIFO is
// strictly slower under random load (it gives up the §III.C reordering
// freedom).
class VaultScheduleSweep : public ::testing::TestWithParam<VaultSchedule> {};

TEST_P(VaultScheduleSweep, ConservationHolds) {
  DeviceConfig dc = test::small_device();
  dc.vault_schedule = GetParam();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_FALSE(r.hit_cycle_cap);
}

INSTANTIATE_TEST_SUITE_P(Schedules, VaultScheduleSweep,
                         ::testing::Values(VaultSchedule::BankReady,
                                           VaultSchedule::StrictFifo),
                         [](const auto& info) {
                           return info.param == VaultSchedule::BankReady
                                      ? "BankReady"
                                      : "StrictFifo";
                         });

TEST(VaultScheduleProperty, ReorderingBeatsStrictFifo) {
  const auto run_cycles = [](VaultSchedule schedule) {
    DeviceConfig dc = test::small_device();
    dc.vault_schedule = schedule;
    dc.model_data = false;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 4000;
    dcfg.max_cycles = 1000000;
    HostDriver driver(sim, gen, dcfg);
    return driver.run().cycles;
  };
  const Cycle ready = run_cycles(VaultSchedule::BankReady);
  const Cycle strict = run_cycles(VaultSchedule::StrictFifo);
  EXPECT_LT(ready, strict);
}

TEST(VaultScheduleProperty, StrictFifoRespondsInArrivalOrderPerVault) {
  // With strict FIFO and a single vault target, responses must come back in
  // exactly the issue order even across different banks.
  DeviceConfig dc = test::small_device();
  dc.vault_schedule = VaultSchedule::StrictFifo;
  Simulator sim = test::make_simple_sim(dc);
  const AddressMap& map = sim.device(0).address_map();
  std::vector<PhysAddr> vault0_addrs;
  for (PhysAddr a = 0; vault0_addrs.size() < 8 && a < (1u << 20); a += 16) {
    if (map.vault_of(a) == 0) vault0_addrs.push_back(a);
  }
  for (Tag t = 0; t < 8; ++t) {
    ASSERT_EQ(test::send_request(sim, 0, 0, Command::Rd16, vault0_addrs[t],
                                 t),
              Status::Ok);
  }
  const auto responses = test::drain_all(sim, 2000);
  ASSERT_EQ(responses.size(), 8u);
  for (Tag t = 0; t < 8; ++t) {
    EXPECT_EQ(responses[t].tag, t);
  }
}

// Block-size sweep: all request sizes complete under load.
class BlockSizeSweep : public ::testing::TestWithParam<u32> {};

TEST_P(BlockSizeSweep, AllSizesComplete) {
  DeviceConfig dc = test::small_device();
  dc.model_data = false;
  Simulator sim = test::make_simple_sim(dc);
  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.request_bytes = GetParam();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 800;
  dcfg.max_cycles = 500000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 800u);
  EXPECT_EQ(r.errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockSizeSweep,
                         ::testing::Values(16, 32, 64, 128),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hmcsim
