// End-to-end integration: the paper's workloads at reduced scale, ordering
// guarantees, and multi-device topologies under load.
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "tests/core/helpers.hpp"
#include "trace/series.hpp"
#include "workload/driver.hpp"

namespace hmcsim {
namespace {

using test::await_response;
using test::send_request;
using test::small_device;

TEST(EndToEnd, SameLinkSameBankStreamStaysOrdered) {
  // "All reordering points ... must maintain the order of a stream of
  // packets from a specific link to a specific bank within a vault"
  // (§III.C).  Five writes to one address from one link, then a read: the
  // read must observe the last write, and the write responses must come
  // back in issue order.
  Simulator sim = test::make_simple_sim();
  for (Tag t = 1; t <= 5; ++t) {
    ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x40, t, 0,
                           {u64{t}, 0}),
              Status::Ok);
  }
  ASSERT_EQ(send_request(sim, 0, 0, Command::Rd16, 0x40, 6), Status::Ok);

  std::vector<Tag> order;
  PacketBuffer raw;
  for (int guard = 0; guard < 10 && order.size() < 6; ++guard) {
    auto rsp = await_response(sim, 0, 0, 500, &raw);
    ASSERT_TRUE(rsp.has_value());
    order.push_back(rsp->tag);
    if (rsp->cmd == Command::ReadResponse) {
      EXPECT_EQ(raw.payload()[0], 5u);  // the LAST write won
    }
  }
  ASSERT_EQ(order.size(), 6u);
  for (Tag t = 0; t < 6; ++t) EXPECT_EQ(order[t], t + 1);
}

TEST(EndToEnd, PostedWriteThenReadSameBankSeesTheData) {
  // A posted write followed by a read of the same address from the same
  // link: the §III.C stream rule makes the write retire first, so the read
  // must observe it even though the write never acknowledges.
  Simulator sim = test::make_simple_sim();
  PacketBuffer raw;
  for (int round = 0; round < 16; ++round) {
    const PhysAddr addr = 0x4000 + 16 * static_cast<PhysAddr>(round);
    ASSERT_EQ(send_request(sim, 0, 1, Command::PostedWr16, addr,
                           static_cast<Tag>(round), 0,
                           {u64{0x9000} + round, 0}),
              Status::Ok);
    // Back-to-back, same cycle, no drain between: the read must still see
    // the posted data because the stream stays ordered.
    ASSERT_EQ(send_request(sim, 0, 1, Command::Rd16, addr,
                           static_cast<Tag>(100 + round)),
              Status::Ok);
    auto rsp = await_response(sim, 0, 1, 500, &raw);
    ASSERT_TRUE(rsp.has_value());
    ASSERT_EQ(rsp->cmd, Command::ReadResponse);
    EXPECT_EQ(rsp->tag, 100 + round);
    EXPECT_EQ(raw.payload()[0], u64{0x9000} + round) << "round " << round;
  }
}

TEST(EndToEnd, RandomAccessHarnessConservation) {
  // Paper §VI.A harness at small scale: every request injected must come
  // back as exactly one response; reads+writes retired == requests.
  for (const bool eight_link : {false, true}) {
    DeviceConfig dc = small_device();
    if (eight_link) dc.num_links = 8;
    Simulator sim = test::make_simple_sim(dc);
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 3000;
    HostDriver driver(sim, gen, dcfg);
    const DriverResult r = driver.run();
    EXPECT_EQ(r.sent, 3000u);
    EXPECT_EQ(r.completed, 3000u);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(sim.total_stats().retired(), 3000u);
    EXPECT_EQ(sim.total_stats().responses, 3000u);
    EXPECT_TRUE(sim.quiescent());
  }
}

TEST(EndToEnd, Table1ShapeMoreBanksAndLinksAreFaster) {
  // The Table I result at reduced scale: 16-bank devices finish the same
  // request count in fewer cycles than 8-bank devices; 8-link devices beat
  // 4-link devices.
  const auto run_cycles = [](DeviceConfig dc) {
    dc.model_data = false;
    Simulator sim;
    std::string diag;
    EXPECT_EQ(sim.init_simple(dc, &diag), Status::Ok) << diag;
    GeneratorConfig gc;
    gc.capacity_bytes = dc.derived_capacity();
    RandomAccessGenerator gen(gc);
    DriverConfig dcfg;
    dcfg.total_requests = 1 << 14;
    HostDriver driver(sim, gen, dcfg);
    return driver.run().cycles;
  };
  const Cycle a = run_cycles(table1_config_4link_8bank());
  const Cycle b = run_cycles(table1_config_4link_16bank());
  const Cycle c = run_cycles(table1_config_8link_8bank());
  const Cycle d = run_cycles(table1_config_8link_16bank());

  EXPECT_LT(b, a);  // more banks help at 4 links
  EXPECT_LT(d, c);  // more banks help at 8 links
  EXPECT_LT(c, a);  // more links help at 8 banks
  EXPECT_LT(d, b);  // more links help at 16 banks
  // Speedup factors in the paper's ballpark (>= 1.3x each axis).
  EXPECT_GT(static_cast<double>(a) / b, 1.3);
  EXPECT_GT(static_cast<double>(a) / c, 1.5);
}

TEST(EndToEnd, Fig5SeriesCapturesContention) {
  // Run the harness with tracing enabled and verify the Figure 5 series
  // contains the five plotted quantities.
  DeviceConfig dc = table1_config_4link_8bank();
  dc.model_data = false;
  Simulator sim;
  ASSERT_EQ(sim.init_simple(dc), Status::Ok);
  auto series = std::make_shared<VaultSeriesSink>(dc.num_vaults(), 64);
  sim.tracer().set_level(TraceLevel::Events);
  sim.tracer().add_sink(series);

  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 1 << 13;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();

  EXPECT_EQ(series->total_reads() + series->total_writes(), r.completed);
  EXPECT_GT(series->total_conflicts(), 0u);
  EXPECT_GT(series->total_latency_penalties(), 0u);
  // Trace counters agree with the always-on stats.
  const DeviceStats s = sim.total_stats();
  EXPECT_EQ(series->total_reads(), s.reads);
  EXPECT_EQ(series->total_writes(), s.writes);
  EXPECT_EQ(series->total_conflicts(), s.bank_conflicts);
  EXPECT_EQ(series->total_xbar_stalls(), s.xbar_rqst_stalls);
  EXPECT_EQ(series->total_latency_penalties(), s.latency_penalties);

  // The summary is consistent with the series.
  const Fig5Summary summary = summarize_series(*series);
  EXPECT_EQ(summary.total_reads, s.reads);
  EXPECT_GT(summary.cycles, 0u);
}

TEST(EndToEnd, TorusUnderLoadCompletesEverything) {
  SimConfig sc;
  sc.num_devices = 6;
  DeviceConfig dc = small_device();
  dc.num_links = 8;
  sc.device = dc;
  std::string err;
  Topology topo = make_torus2d(2, 3, 8, /*host_links=*/2, &err);
  ASSERT_GT(topo.num_devices(), 0u) << err;
  Simulator sim;
  ASSERT_EQ(sim.init(sc, std::move(topo)), Status::Ok);

  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.targets = TargetPolicy::RoundRobinCubes;
  dcfg.max_cycles = 200000;
  HostDriver driver(sim, gen, dcfg);
  const DriverResult r = driver.run();
  EXPECT_EQ(r.completed, 2000u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_FALSE(r.hit_cycle_cap);
  for (u32 d = 0; d < 6; ++d) {
    EXPECT_GT(sim.stats(d).retired(), 0u) << "device " << d;
  }
}

TEST(EndToEnd, TextTraceRoundTripThroughRealRun) {
  DeviceConfig dc = small_device();
  Simulator sim = test::make_simple_sim(dc);
  std::ostringstream trace_text;
  sim.tracer().set_level(TraceLevel::SubCycle);
  sim.tracer().add_sink(std::make_shared<TextSink>(trace_text));

  ASSERT_EQ(send_request(sim, 0, 0, Command::Wr16, 0x40, 1, 0, {7, 0}),
            Status::Ok);
  ASSERT_TRUE(await_response(sim, 0, 0).has_value());
  sim.tracer().flush();
  const std::string text = trace_text.str();
  EXPECT_NE(text.find("SEND"), std::string::npos);
  EXPECT_NE(text.find("WR_REQUEST"), std::string::npos);
  EXPECT_NE(text.find("RESPONSE"), std::string::npos);
  EXPECT_NE(text.find("RECV"), std::string::npos);
}

TEST(EndToEnd, MixedCommandSoup) {
  // Throw every request class at the device at once and verify exact
  // response accounting.
  Simulator sim = test::make_simple_sim();
  u64 expect_responses = 0;
  Tag tag = 0;
  const std::vector<Command> soup = {
      Command::Rd16,    Command::Wr32,        Command::PostedWr16,
      Command::TwoAdd8, Command::Add16,       Command::BitWrite,
      Command::Rd128,   Command::PostedAdd16, Command::Wr128,
      Command::Rd64,    Command::PostedWr128, Command::PostedBitWrite};
  for (int round = 0; round < 8; ++round) {
    for (const Command cmd : soup) {
      const Status s = send_request(
          sim, 0, static_cast<u32>(tag % 4), cmd,
          (u64{tag} * 256) % (1 << 22), tag, 0,
          std::vector<u64>(request_data_bytes(cmd) / 8, tag));
      if (s == Status::Stalled) {
        sim.clock();
        continue;
      }
      ASSERT_EQ(s, Status::Ok);
      if (!is_posted(cmd)) ++expect_responses;
      ++tag;
    }
  }
  const auto responses = test::drain_all(sim, 5000);
  EXPECT_EQ(responses.size(), expect_responses);
  for (const auto& r : responses) {
    EXPECT_NE(r.cmd, Command::Error);
  }
  EXPECT_TRUE(sim.quiescent());
}

}  // namespace
}  // namespace hmcsim
