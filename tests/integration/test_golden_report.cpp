// Golden-file regression test for the JSON report.
//
// A fixed workload (seeded random access, RAS knobs on, 1 thread) runs to
// completion and its full JSON report is compared byte-for-byte against
// tests/golden/report_small_random.json.  Every integer statistic is
// locked exactly; floating-point values (means, power estimates, link
// utilization) are masked to "0.0" before comparison because their last
// printed digit can legitimately differ across libc printf
// implementations.
//
// To regenerate after an intentional behavior change:
//
//   HMCSIM_UPDATE_GOLDEN=1 ctest -R GoldenReport
//
// then review the diff like any other source change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <string>

#include "analysis/json.hpp"
#include "analysis/report.hpp"
#include "tests/core/helpers.hpp"
#include "trace/lifecycle.hpp"
#include "workload/driver.hpp"

#ifndef HMCSIM_GOLDEN_DIR
#define HMCSIM_GOLDEN_DIR "tests/golden"
#endif

namespace hmcsim {
namespace {

/// Mask every float-formatted number ("1.5", "2e-07", "inf-adjacent") so
/// the comparison only locks integers, keys, and structure.
std::string mask_floats(const std::string& json) {
  static const std::regex kFloat(
      R"((-?\d+\.\d+([eE][+-]?\d+)?|-?\d+[eE][+-]?\d+))");
  return std::regex_replace(json, kFloat, "0.0");
}

std::string render_report() {
  DeviceConfig dc = test::small_device();
  dc.sim_threads = 1;
  dc.dram_sbe_rate_ppm = 500;
  dc.dram_dbe_rate_ppm = 100;
  dc.scrub_interval_cycles = 256;
  dc.vault_fail_threshold = 8;
  Simulator sim = test::make_simple_sim(dc);
  auto sink = std::make_shared<LifecycleSink>();
  sim.add_lifecycle_observer(sink);

  GeneratorConfig gc;
  gc.capacity_bytes = dc.derived_capacity();
  gc.seed = 42;
  RandomAccessGenerator gen(gc);
  DriverConfig dcfg;
  dcfg.total_requests = 2000;
  dcfg.max_cycles = 200000;
  HostDriver driver(sim, gen, dcfg);
  (void)driver.run();

  std::ostringstream os;
  ReportExtras extras;
  extras.lifecycle = sink.get();
  write_stats_json(os, sim, PowerConfig{}, extras);
  return mask_floats(std::move(os).str());
}

TEST(GoldenReport, JsonReportMatchesGoldenFile) {
  const std::string path =
      std::string(HMCSIM_GOLDEN_DIR) + "/report_small_random.json";
  const std::string got = render_report();

  if (std::getenv("HMCSIM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "golden file regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with HMCSIM_UPDATE_GOLDEN=1 ctest -R GoldenReport";
  std::ostringstream want;
  want << in.rdbuf();
  const std::string expected = std::move(want).str();

  if (got != expected) {
    // Point at the first differing line so the failure reads like a diff.
    std::istringstream ga(expected);
    std::istringstream gb(got);
    std::string la;
    std::string lb;
    usize line = 0;
    while (true) {
      const bool ha = static_cast<bool>(std::getline(ga, la));
      const bool hb = static_cast<bool>(std::getline(gb, lb));
      ++line;
      if (!ha && !hb) break;
      if (la != lb || ha != hb) {
        FAIL() << "report diverges from golden at line " << line
               << "\n  golden: " << (ha ? la : "<eof>")
               << "\n  got:    " << (hb ? lb : "<eof>")
               << "\nIf the change is intentional, regenerate with "
                  "HMCSIM_UPDATE_GOLDEN=1 and review the diff.";
      }
    }
  }
  SUCCEED();
}

TEST(GoldenReport, MaskerOnlyTouchesFloats) {
  EXPECT_EQ(mask_floats(R"({"a":12,"b":1.5,"c":2e-07,"d":"x1.5y"})"),
            R"({"a":12,"b":0.0,"c":0.0,"d":"x0.0y"})");
  EXPECT_EQ(mask_floats(R"("count":144,"mean":37.59375)"),
            R"("count":144,"mean":0.0)");
}

}  // namespace
}  // namespace hmcsim
