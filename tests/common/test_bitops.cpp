#include "common/bitops.hpp"

#include <gtest/gtest.h>

namespace hmcsim {
namespace {

TEST(Bitops, MaskWidths) {
  EXPECT_EQ(mask(0), 0u);
  EXPECT_EQ(mask(1), 1u);
  EXPECT_EQ(mask(8), 0xffu);
  EXPECT_EQ(mask(34), 0x3ffffffffull);
  EXPECT_EQ(mask(63), 0x7fffffffffffffffull);
  EXPECT_EQ(mask(64), ~u64{0});
}

TEST(Bitops, ExtractBasic) {
  const u64 word = 0xABCD'EF01'2345'6789ull;
  EXPECT_EQ(extract(word, 0, 4), 0x9u);
  EXPECT_EQ(extract(word, 4, 4), 0x8u);
  EXPECT_EQ(extract(word, 0, 64), word);
  EXPECT_EQ(extract(word, 60, 4), 0xAu);
  EXPECT_EQ(extract(word, 32, 16), 0xEF01u);
}

TEST(Bitops, DepositBasic) {
  EXPECT_EQ(deposit(0, 0, 4, 0xF), 0xFu);
  EXPECT_EQ(deposit(0, 60, 4, 0xA), 0xA000'0000'0000'0000ull);
  // Deposit truncates the value to the field width.
  EXPECT_EQ(deposit(0, 0, 4, 0x1F), 0xFu);
  // Deposit preserves surrounding bits.
  EXPECT_EQ(deposit(0xFFFF'FFFF'FFFF'FFFFull, 8, 8, 0), 0xFFFF'FFFF'FFFF'00FFull);
}

TEST(Bitops, DepositExtractRoundTrip) {
  u64 word = 0;
  word = deposit(word, 0, 6, 0x2B);
  word = deposit(word, 7, 4, 9);
  word = deposit(word, 15, 9, 0x1FF);
  word = deposit(word, 24, 34, 0x3'DEAD'BEEFull);
  word = deposit(word, 61, 3, 5);
  EXPECT_EQ(extract(word, 0, 6), 0x2Bu);
  EXPECT_EQ(extract(word, 7, 4), 9u);
  EXPECT_EQ(extract(word, 15, 9), 0x1FFu);
  EXPECT_EQ(extract(word, 24, 34), 0x3'DEAD'BEEFull);
  EXPECT_EQ(extract(word, 61, 3), 5u);
}

TEST(Bitops, AdjacentFieldsDoNotInterfere) {
  u64 word = 0;
  word = deposit(word, 0, 8, 0xAA);
  word = deposit(word, 8, 8, 0xBB);
  word = deposit(word, 16, 8, 0xCC);
  EXPECT_EQ(extract(word, 0, 8), 0xAAu);
  EXPECT_EQ(extract(word, 8, 8), 0xBBu);
  EXPECT_EQ(extract(word, 16, 8), 0xCCu);
  // Overwriting the middle field leaves neighbors intact.
  word = deposit(word, 8, 8, 0x11);
  EXPECT_EQ(extract(word, 0, 8), 0xAAu);
  EXPECT_EQ(extract(word, 8, 8), 0x11u);
  EXPECT_EQ(extract(word, 16, 8), 0xCCu);
}

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(u64{1} << 33));
  EXPECT_FALSE(is_pow2((u64{1} << 33) + 1));
}

TEST(Bitops, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(u64{16} * 1024 * 1024), 24u);
  EXPECT_EQ(log2_exact(u64{1} << 63), 63u);
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(144, 16), 9u);
}

TEST(Bitops, ConstexprUsable) {
  static_assert(mask(6) == 0x3f);
  static_assert(extract(deposit(0, 24, 34, 0x123), 24, 34) == 0x123);
  static_assert(is_pow2(1024));
  static_assert(log2_exact(1024) == 10);
  SUCCEED();
}

}  // namespace
}  // namespace hmcsim
