#include "common/status.hpp"

#include <gtest/gtest.h>

namespace hmcsim {
namespace {

TEST(Status, OkHelper) {
  EXPECT_TRUE(ok(Status::Ok));
  EXPECT_FALSE(ok(Status::Stalled));
  EXPECT_FALSE(ok(Status::Internal));
}

TEST(Status, EveryCodeHasAName) {
  for (const Status s :
       {Status::Ok, Status::Stalled, Status::NoResponse,
        Status::InvalidArgument, Status::InvalidConfig,
        Status::MalformedPacket, Status::Unroutable, Status::NoSuchRegister,
        Status::ReadOnlyRegister, Status::Internal}) {
    EXPECT_FALSE(to_string(s).empty());
    EXPECT_NE(to_string(s), "Unknown");
  }
}

TEST(Status, CReturnProtocol) {
  // The classic C API conventions: 0 ok, 2 == HMC_STALL, 1 == no packet,
  // -1 == hard error.
  EXPECT_EQ(to_c_return(Status::Ok), 0);
  EXPECT_EQ(to_c_return(Status::Stalled), 2);
  EXPECT_EQ(to_c_return(Status::NoResponse), 1);
  EXPECT_EQ(to_c_return(Status::InvalidArgument), -1);
  EXPECT_EQ(to_c_return(Status::MalformedPacket), -1);
  EXPECT_EQ(to_c_return(Status::Internal), -1);
}

}  // namespace
}  // namespace hmcsim
