#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

namespace hmcsim {
namespace {

TEST(Lcg31, KnownSequence) {
  // x' = x * 1103515245 + 12345 (mod 2^31), from seed 1.
  Lcg31 rng(1);
  EXPECT_EQ(rng.next(), (1u * 1103515245u + 12345u) & 0x7fffffffu);
}

TEST(Lcg31, DeterministicAcrossInstances) {
  Lcg31 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Lcg31, DifferentSeedsDiverge) {
  Lcg31 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Lcg31, NextBelowBounds) {
  Lcg31 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Lcg31, NextBelowCoversRange) {
  Lcg31 rng(7);
  std::set<u32> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(GlibcRandom, MatchesHostGlibcRand) {
  // We run on glibc: srand/rand IS the TYPE_3 additive generator, so we can
  // check bit-exactness directly against the host implementation.
  for (const unsigned seed : {1u, 2u, 42u, 0xdeadbeefu}) {
    srand(seed);
    GlibcRandom rng(seed);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(rng.next(), static_cast<u32>(rand()))
          << "seed " << seed << " index " << i;
    }
  }
}

TEST(GlibcRandom, SeedZeroBehavesLikeSeedOne) {
  GlibcRandom a(0), b(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the canonical splitmix64
  // implementation (Vigna).
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(rng.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(rng.next(), 0x06c45d188009454full);
}

TEST(SplitMix64, NextBelowIsBounded) {
  SplitMix64 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(1000), 1000u);
  }
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, RoughUniformity) {
  SplitMix64 rng(5);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

}  // namespace
}  // namespace hmcsim
