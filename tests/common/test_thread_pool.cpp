// ThreadPool unit tests: coverage of every shard, static partitioning,
// in-range ordering, repeated dispatch, and inline fallbacks — the
// properties the clock engine's determinism proof builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace hmcsim {
namespace {

TEST(ThreadPool, EveryShardRunsExactlyOnce) {
  for (const u32 threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    for (const u32 shards : {0u, 1u, 2u, 7u, 64u, 257u}) {
      std::vector<std::atomic<u32>> hits(shards);
      pool.parallel_for(shards,
                        [&](u32 s) { hits[s].fetch_add(1); });
      for (u32 s = 0; s < shards; ++s) {
        EXPECT_EQ(hits[s].load(), 1u)
            << "threads=" << threads << " shards=" << shards << " s=" << s;
      }
    }
  }
}

TEST(ThreadPool, ShardsWithinOneThreadRunAscending) {
  // Each executing thread's shard sequence must be strictly ascending:
  // the engine's merge logic relies on a worker's shards running in index
  // order (contiguous static ranges).
  ThreadPool pool(4);
  constexpr u32 kShards = 97;
  std::mutex mu;
  std::map<std::thread::id, std::vector<u32>> per_thread;
  pool.parallel_for(kShards, [&](u32 s) {
    std::lock_guard<std::mutex> lock(mu);
    per_thread[std::this_thread::get_id()].push_back(s);
  });
  u32 total = 0;
  for (const auto& [tid, seq] : per_thread) {
    for (usize i = 1; i < seq.size(); ++i) {
      EXPECT_LT(seq[i - 1], seq[i]);
    }
    // Static contiguous partitioning: one thread's shards are a range.
    if (!seq.empty()) {
      EXPECT_EQ(seq.back() - seq.front() + 1, seq.size());
    }
    total += static_cast<u32>(seq.size());
  }
  EXPECT_EQ(total, kShards);
}

TEST(ThreadPool, RepeatedDispatchesStaySound) {
  // The engine dispatches up to three sections per simulated cycle over
  // millions of cycles; hammer the epoch/condvar handshake.
  ThreadPool pool(3);
  std::atomic<u64> sum{0};
  u64 expected = 0;
  for (u32 round = 0; round < 2000; ++round) {
    const u32 shards = 1 + round % 7;
    pool.parallel_for(shards, [&](u32 s) { sum.fetch_add(s + 1); });
    expected += u64{shards} * (shards + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<u32> order;
  pool.parallel_for(5, [&](u32 s) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(s);
  });
  EXPECT_EQ(order, (std::vector<u32>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, OversubscriptionIsHarmless) {
  // More threads than shards (and than cores, on CI): extra workers just
  // get empty ranges.
  ThreadPool pool(16);
  std::vector<std::atomic<u32>> hits(3);
  pool.parallel_for(3, [&](u32 s) { hits[s].fetch_add(1); });
  for (u32 s = 0; s < 3; ++s) EXPECT_EQ(hits[s].load(), 1u);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace hmcsim
