// Golden-sequence lock-down for the deterministic generators.
//
// The paper-reproduction contract (and the parallel clock engine's
// differential test) both rest on these generators never changing output:
// a silent reseed or algorithm tweak would invalidate every golden file
// and checkpoint in the tree.  This test pins the first 64 outputs of
// GlibcRandom — and shorter prefixes of Lcg31 and SplitMix64 — for the
// documented seeds.  GlibcRandom seed 1 is additionally the canonical
// glibc sequence (first value 1804289383), so a mismatch here means we
// have drifted from real glibc rand(), not just from ourselves.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/random.hpp"

namespace hmcsim {
namespace {

TEST(RandomGolden, GlibcRandomSeed1First64) {
  static constexpr u32 kExpected[64] = {
      1804289383u, 846930886u,  1681692777u, 1714636915u, 1957747793u,
      424238335u,  719885386u,  1649760492u, 596516649u,  1189641421u,
      1025202362u, 1350490027u, 783368690u,  1102520059u, 2044897763u,
      1967513926u, 1365180540u, 1540383426u, 304089172u,  1303455736u,
      35005211u,   521595368u,  294702567u,  1726956429u, 336465782u,
      861021530u,  278722862u,  233665123u,  2145174067u, 468703135u,
      1101513929u, 1801979802u, 1315634022u, 635723058u,  1369133069u,
      1125898167u, 1059961393u, 2089018456u, 628175011u,  1656478042u,
      1131176229u, 1653377373u, 859484421u,  1914544919u, 608413784u,
      756898537u,  1734575198u, 1973594324u, 149798315u,  2038664370u,
      1129566413u, 184803526u,  412776091u,  1424268980u, 1911759956u,
      749241873u,  137806862u,  42999170u,   982906996u,  135497281u,
      511702305u,  2084420925u, 1937477084u, 1827336327u};
  GlibcRandom rng(1);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(rng.next(), kExpected[i]) << "output " << i;
  }
}

TEST(RandomGolden, GlibcRandomSeed42First64) {
  static constexpr u32 kExpected[64] = {
      71876166u,   708592740u,  1483128881u, 907283241u,  442951012u,
      537146758u,  1366999021u, 1854614940u, 647800535u,  53523743u,
      783815874u,  1643643143u, 682599717u,  291474504u,  229233696u,
      1633529762u, 175389892u,  1183169448u, 1212580698u, 1596161259u,
      2108313867u, 469976352u,  975807809u,  1113801033u, 1232315727u,
      1192349579u, 1564541169u, 1350496504u, 1709672141u, 1253520176u,
      590056433u,  1781548307u, 1962112916u, 2073185314u, 541347900u,
      257580280u,  462848424u,  1908346921u, 2112195221u, 1110648960u,
      1961870665u, 748527447u,  606808455u,  496986734u,  1040001951u,
      836042151u,  2130516497u, 1215391843u, 2019211600u, 1195613547u,
      664069454u,  1980041819u, 1665589900u, 1639877263u, 946359204u,
      750421979u,  684743195u,  363416725u,  2100918483u, 246931688u,
      1616936901u, 543491269u,  2028479995u, 1431566170u};
  GlibcRandom rng(42);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(rng.next(), kExpected[i]) << "output " << i;
  }
}

TEST(RandomGolden, Lcg31DocumentedSeeds) {
  static constexpr u32 kSeed1[16] = {
      1103527590u, 377401575u,  662824084u, 1147902781u, 2035015474u,
      368800899u,  1508029952u, 486256185u, 1062517886u, 267834847u,
      180171308u,  836760821u,  595337866u, 790425851u,  2111915288u,
      1149758321u};
  static constexpr u32 kSeed42[16] = {
      1250496027u, 1116302264u, 1000676753u, 1668674806u, 908095735u,
      71666532u,   896336333u,  1736731266u, 1314989459u, 1535244752u,
      391441865u,  1108520142u, 1206814703u, 534045436u,  1974836613u,
      238077914u};
  Lcg31 a(1);
  Lcg31 b(42);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), kSeed1[i]) << "seed 1 output " << i;
    EXPECT_EQ(b.next(), kSeed42[i]) << "seed 42 output " << i;
  }
}

TEST(RandomGolden, SplitMix64DocumentedSeeds) {
  // 0x5eed is DeviceConfig::fault_seed's default: the RAS fault model (and
  // the per-vault DRAM RNG sharding derived from it) depends on this exact
  // stream.
  static constexpr u64 kSeed5eed[8] = {
      0x9f1fd9d03f0a9b4ull,  0x553274161bbf8475ull, 0x5d5bca4696b343b3ull,
      0x70d29b6c7d22528dull, 0xbf2b716f9915475ull,  0x5eb7f92b95387ccaull,
      0x296cd0f2c21d7f90ull, 0x1289a69805c125b1ull};
  static constexpr u64 kSeed1[8] = {
      0x910a2dec89025cc1ull, 0xbeeb8da1658eec67ull, 0xf893a2eefb32555eull,
      0x71c18690ee42c90bull, 0x71bb54d8d101b5b9ull, 0xc34d0bff90150280ull,
      0xe099ec6cd7363ca5ull, 0x85e7bb0f12278575ull};
  SplitMix64 a(0x5eed);
  SplitMix64 b(1);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next(), kSeed5eed[i]) << "seed 0x5eed output " << i;
    EXPECT_EQ(b.next(), kSeed1[i]) << "seed 1 output " << i;
  }
}

TEST(RandomGolden, CopiedGeneratorsDivergeNever) {
  // Value semantics: a copy replays the identical stream — the property
  // the checkpoint layer and the differential harness both rely on.
  GlibcRandom a(7);
  for (int i = 0; i < 100; ++i) (void)a.next();
  GlibcRandom b = a;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());

  SplitMix64 s(99);
  (void)s.next();
  SplitMix64 t(s.state());  // checkpoint round-trip via state()
  EXPECT_EQ(s.next(), t.next());
}

}  // namespace
}  // namespace hmcsim
