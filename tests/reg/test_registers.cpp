#include "reg/registers.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hmcsim {
namespace {

TEST(RegisterTable, PhysicalIndicesAreUniqueAndNonLinear) {
  std::set<u32> phys;
  for (const auto& def : register_table()) {
    EXPECT_TRUE(phys.insert(def.phys).second) << def.name;
  }
  // "Register indexing on physical HMC devices is not purely linear and
  // does not begin at zero" (§IV.D).
  EXPECT_EQ(phys.count(0), 0u);
  EXPECT_GT(*phys.rbegin() - *phys.begin(),
            static_cast<u32>(register_table().size()));
}

TEST(RegisterTable, TranslationRoundTrips) {
  for (const auto& def : register_table()) {
    const auto linear = reg_from_phys(def.phys);
    ASSERT_TRUE(linear.has_value()) << def.name;
    EXPECT_EQ(*linear, def.linear);
    EXPECT_EQ(phys_from_reg(def.linear), def.phys);
  }
}

TEST(RegisterTable, UnknownPhysIndexTranslatesToNothing) {
  EXPECT_FALSE(reg_from_phys(0).has_value());
  EXPECT_FALSE(reg_from_phys(0xdeadbeef).has_value());
  EXPECT_FALSE(reg_from_phys(0x240001).has_value());
}

TEST(RegisterFile, ResetValues) {
  RegisterFile rf(4);
  u64 v = 0;
  ASSERT_EQ(rf.read(Reg::Rvid, v), Status::Ok);
  EXPECT_NE(v, 0u);  // revision/vendor id is architected nonzero
  ASSERT_EQ(rf.read(Reg::Gc, v), Status::Ok);
  EXPECT_EQ(v, 0u);
}

TEST(RegisterFile, RwReadsBackWrites) {
  RegisterFile rf(4);
  ASSERT_EQ(rf.write(Reg::Gc, 0xABCD), Status::Ok);
  u64 v = 0;
  ASSERT_EQ(rf.read(Reg::Gc, v), Status::Ok);
  EXPECT_EQ(v, 0xABCDu);
  // Survives clock edges (RW does not self-clear).
  rf.clock_edge();
  ASSERT_EQ(rf.read(Reg::Gc, v), Status::Ok);
  EXPECT_EQ(v, 0xABCDu);
}

TEST(RegisterFile, RoRejectsWrites) {
  RegisterFile rf(4);
  EXPECT_EQ(rf.write(Reg::Err, 1), Status::ReadOnlyRegister);
  EXPECT_EQ(rf.write(Reg::Feat, 1), Status::ReadOnlyRegister);
  EXPECT_EQ(rf.write(Reg::Rvid, 1), Status::ReadOnlyRegister);
  u64 v = 1;
  ASSERT_EQ(rf.read(Reg::Err, v), Status::Ok);
  EXPECT_EQ(v, 0u);  // unchanged
}

TEST(RegisterFile, RwsSelfClearsAtClockEdge) {
  RegisterFile rf(4);
  ASSERT_EQ(rf.write(Reg::Edr0, 0xF00D), Status::Ok);
  u64 v = 0;
  // Visible until the next clock edge...
  ASSERT_EQ(rf.read(Reg::Edr0, v), Status::Ok);
  EXPECT_EQ(v, 0xF00Du);
  // ...then self-clears.
  rf.clock_edge();
  ASSERT_EQ(rf.read(Reg::Edr0, v), Status::Ok);
  EXPECT_EQ(v, 0u);
  // Only written-this-cycle RWS registers clear; a second edge is a no-op.
  rf.clock_edge();
  ASSERT_EQ(rf.read(Reg::Edr0, v), Status::Ok);
  EXPECT_EQ(v, 0u);
}

TEST(RegisterFile, FourLinkPartsLackHighLinkRegisters) {
  RegisterFile rf4(4);
  u64 v = 0;
  EXPECT_EQ(rf4.read(Reg::Lc3, v), Status::Ok);
  EXPECT_EQ(rf4.read(Reg::Lc4, v), Status::NoSuchRegister);
  EXPECT_EQ(rf4.write(Reg::Lr7, 1), Status::NoSuchRegister);

  RegisterFile rf8(8);
  EXPECT_EQ(rf8.read(Reg::Lc4, v), Status::Ok);
  EXPECT_EQ(rf8.write(Reg::Lr7, 1), Status::Ok);
}

TEST(RegisterFile, PhysAccessPath) {
  RegisterFile rf(4);
  ASSERT_EQ(rf.write_phys(0x280000u, 0x42), Status::Ok);  // GC
  u64 v = 0;
  ASSERT_EQ(rf.read_phys(0x280000u, v), Status::Ok);
  EXPECT_EQ(v, 0x42u);
  EXPECT_EQ(rf.read_phys(0x123456u, v), Status::NoSuchRegister);
  EXPECT_EQ(rf.write_phys(0x123456u, 1), Status::NoSuchRegister);
}

TEST(RegisterFile, ResetRestoresArchitectedState) {
  RegisterFile rf(4);
  (void)rf.write(Reg::Gc, 0x1111);
  (void)rf.write(Reg::Ac, 0x2222);
  rf.reset();
  u64 v = 1;
  ASSERT_EQ(rf.read(Reg::Gc, v), Status::Ok);
  EXPECT_EQ(v, 0u);
  ASSERT_EQ(rf.read(Reg::Rvid, v), Status::Ok);
  EXPECT_NE(v, 0u);
}

TEST(RegisterFile, EveryTableEntryAccessibleOn8Link) {
  RegisterFile rf(8);
  for (const auto& def : register_table()) {
    u64 v = 0;
    EXPECT_EQ(rf.read(def.linear, v), Status::Ok) << def.name;
    const Status ws = rf.write(def.linear, 1);
    if (def.cls == RegClass::RO) {
      EXPECT_EQ(ws, Status::ReadOnlyRegister) << def.name;
    } else {
      EXPECT_EQ(ws, Status::Ok) << def.name;
    }
  }
}

TEST(RegisterFile, NamesResolve) {
  EXPECT_EQ(to_string(Reg::Gc), "GC");
  EXPECT_EQ(to_string(Reg::Edr3), "EDR3");
  EXPECT_EQ(to_string(Reg::Rvid), "RVID");
}

}  // namespace
}  // namespace hmcsim
