// SparseStore fault sidecar: planted faults are REAL bit flips in the
// stored pages, discovered and repaired (or poisoned) by the SECDED codec.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "mem/storage.hpp"

namespace hmcsim {
namespace {

std::vector<u8> pattern(usize n) {
  std::vector<u8> v(n);
  for (usize i = 0; i < n; ++i) v[i] = static_cast<u8>(i * 7 + 1);
  return v;
}

TEST(FaultStore, SingleBitFaultIsCorrected) {
  SparseStore store(1 << 16);
  const auto data = pattern(16);
  ASSERT_TRUE(store.write(0x100, data));
  const std::array<u32, 1> bits = {5};
  ASSERT_TRUE(store.plant_fault(0x100, bits));
  EXPECT_EQ(store.fault_count(), 1u);
  EXPECT_TRUE(store.has_fault(0x100, 16));

  // The flip is visible in the raw bytes until the codec runs.
  std::vector<u8> raw(16);
  ASSERT_TRUE(store.read(0x100, raw));
  EXPECT_NE(raw, data);

  const SparseStore::FaultSummary sum = store.check_and_repair(0x100, 16);
  EXPECT_EQ(sum.corrected, 1u);
  EXPECT_EQ(sum.uncorrectable, 0u);
  EXPECT_EQ(store.fault_count(), 0u);

  std::vector<u8> back(16);
  ASSERT_TRUE(store.read(0x100, back));
  EXPECT_EQ(back, data);
}

TEST(FaultStore, DoubleBitFaultStaysPoisoned) {
  SparseStore store(1 << 16);
  const auto data = pattern(16);
  ASSERT_TRUE(store.write(0x200, data));
  const std::array<u32, 2> bits = {3, 40};
  ASSERT_TRUE(store.plant_fault(0x200, bits));

  const SparseStore::FaultSummary sum = store.check_and_repair(0x200, 16);
  EXPECT_EQ(sum.corrected, 0u);
  EXPECT_EQ(sum.uncorrectable, 1u);
  // Poisoned: the record stays, and the data is still wrong.
  EXPECT_EQ(store.fault_count(), 1u);
  std::vector<u8> back(16);
  ASSERT_TRUE(store.read(0x200, back));
  EXPECT_NE(back, data);

  // Re-checking keeps reporting it.
  EXPECT_EQ(store.check_and_repair(0x200, 16).uncorrectable, 1u);
}

TEST(FaultStore, ScrubRetiresUncorrectableWords) {
  SparseStore store(1 << 16);
  const auto data = pattern(16);
  ASSERT_TRUE(store.write(0x300, data));
  const std::array<u32, 2> bits = {10, 62};
  ASSERT_TRUE(store.plant_fault(0x300, bits));

  const SparseStore::FaultSummary sum = store.scrub_span(0, 1 << 16);
  EXPECT_EQ(sum.uncorrectable, 1u);
  EXPECT_EQ(store.fault_count(), 0u);  // rebuilt from ground truth
  std::vector<u8> back(16);
  ASSERT_TRUE(store.read(0x300, back));
  EXPECT_EQ(back, data);
}

TEST(FaultStore, WriteSupersedesFault) {
  SparseStore store(1 << 16);
  ASSERT_TRUE(store.write(0x400, pattern(16)));
  const std::array<u32, 2> bits = {1, 2};
  ASSERT_TRUE(store.plant_fault(0x400, bits));
  EXPECT_EQ(store.fault_count(), 1u);

  const auto fresh = pattern(16);
  ASSERT_TRUE(store.write(0x400, fresh));
  EXPECT_EQ(store.fault_count(), 0u);
  std::vector<u8> back(16);
  ASSERT_TRUE(store.read(0x400, back));
  EXPECT_EQ(back, fresh);
  EXPECT_EQ(store.check_and_repair(0x400, 16).uncorrectable, 0u);
}

TEST(FaultStore, CheckFlipsAreVirtual) {
  // A fault in the check bits (positions 64..71) corrupts no stored data;
  // the codec corrects it without touching the word.
  SparseStore store(1 << 16);
  const auto data = pattern(8);
  ASSERT_TRUE(store.write(0x500, data));
  const std::array<u32, 1> bits = {67};
  ASSERT_TRUE(store.plant_fault(0x500, bits));
  std::vector<u8> raw(8);
  ASSERT_TRUE(store.read(0x500, raw));
  EXPECT_EQ(raw, data);  // data bits untouched
  const SparseStore::FaultSummary sum = store.check_and_repair(0x500, 8);
  EXPECT_EQ(sum.corrected, 1u);
  EXPECT_EQ(store.fault_count(), 0u);
}

TEST(FaultStore, DoubleFlipSamePositionCancels) {
  SparseStore store(1 << 16);
  ASSERT_TRUE(store.write(0x600, pattern(8)));
  const std::array<u32, 1> bit = {12};
  ASSERT_TRUE(store.plant_fault(0x600, bit));
  ASSERT_TRUE(store.plant_fault(0x600, bit));  // cancels
  EXPECT_EQ(store.fault_count(), 0u);
  EXPECT_EQ(store.check_and_repair(0x600, 8).corrected, 0u);
}

TEST(FaultStore, RoundTripThroughRestore) {
  SparseStore a(1 << 16);
  ASSERT_TRUE(a.write(0x700, pattern(16)));
  const std::array<u32, 2> bits = {7, 33};
  ASSERT_TRUE(a.plant_fault(0x700, bits));
  const std::array<u32, 1> one = {70};
  ASSERT_TRUE(a.plant_fault(0x708, one));

  // Mirror pages + sidecar into a second store, checkpoint style.
  SparseStore b(1 << 16);
  a.for_each_page([&](u64 page, std::span<const u8> bytes) {
    ASSERT_TRUE(b.write(page * SparseStore::kPageBytes, bytes));
  });
  a.for_each_fault([&](u64 word, u64 data_flips, u8 check_flips) {
    ASSERT_TRUE(b.restore_fault(word, data_flips, check_flips));
  });
  EXPECT_EQ(b.fault_count(), a.fault_count());

  const SparseStore::FaultSummary sa = a.check_and_repair(0x700, 16);
  const SparseStore::FaultSummary sb = b.check_and_repair(0x700, 16);
  EXPECT_EQ(sa.corrected, sb.corrected);
  EXPECT_EQ(sa.uncorrectable, sb.uncorrectable);
}

TEST(FaultStore, ClearDropsFaults) {
  SparseStore store(1 << 16);
  ASSERT_TRUE(store.write(0x800, pattern(8)));
  const std::array<u32, 1> bit = {0};
  ASSERT_TRUE(store.plant_fault(0x800, bit));
  store.clear();
  EXPECT_EQ(store.fault_count(), 0u);
}

}  // namespace
}  // namespace hmcsim
